package repro_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/packet"
	"repro/internal/runner"
)

// Each benchmark regenerates one figure of the paper's evaluation with a
// statistically small but structurally complete run (the cmd/btexp
// binary runs the full-resolution versions). b.N scales repetitions, so
// -benchtime controls statistical depth; every iteration reports the
// headline scalar through b.ReportMetric for at-a-glance comparison
// with the paper.

// BenchmarkFig5PiconetCreationWaveform: creation of a master + 3 slave
// piconet with full waveform tracing (paper Fig 5).
func BenchmarkFig5PiconetCreationWaveform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		links, err := experiments.Fig5Waveforms(io.Discard, uint64(i)+1)
		if err != nil || links != 3 {
			b.Fatalf("creation failed: links=%d err=%v", links, err)
		}
	}
}

// BenchmarkFig6InquiryVsBER: mean slots to complete inquiry across the
// paper's BER sweep (paper: ~1556 TS noiseless, nearly flat).
func BenchmarkFig6InquiryVsBER(b *testing.B) {
	bers := []experiments.BERPoint{{Label: "1/100", Value: 0.01}, {Label: "1/30", Value: 1.0 / 30}}
	var mean float64
	for i := 0; i < b.N; i++ {
		rows := experiments.InquirySweep(bers, 4)
		mean = rows[0].MeanTS
	}
	b.ReportMetric(mean, "TS@1/100")
}

// BenchmarkFig7PageVsBER: mean slots to complete page (paper: ~17 TS
// noiseless, rising with BER).
func BenchmarkFig7PageVsBER(b *testing.B) {
	bers := []experiments.BERPoint{{Label: "0", Value: 0}, {Label: "1/30", Value: 1.0 / 30}}
	var mean float64
	for i := 0; i < b.N; i++ {
		rows := experiments.PageSweep(bers, 4)
		mean = rows[0].MeanTS
	}
	b.ReportMetric(mean, "TS@clean")
}

// BenchmarkFig8CreationFailure: failure probability of both phases at
// the paper's worst BER (paper: page fails almost always at 1/30 and is
// the creation bottleneck).
func BenchmarkFig8CreationFailure(b *testing.B) {
	bers := []experiments.BERPoint{{Label: "1/30", Value: 1.0 / 30}}
	var pageFail float64
	for i := 0; i < b.N; i++ {
		inq := experiments.InquirySweep(bers, 4)
		page := experiments.PageSweep(bers, 4)
		_ = inq
		pageFail = page[0].FailRate
	}
	b.ReportMetric(pageFail, "pageFail@1/30")
}

// BenchmarkFig9SniffWaveform: two slaves in sniff mode with waveform
// tracing (paper Fig 9).
func BenchmarkFig9SniffWaveform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig9Waveforms(io.Discard, 20, 2, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10MasterActivity: master RF activity vs duty cycle
// (paper: linear, ~0.25-0.3% TX at 2% duty cycle, TX above RX).
func BenchmarkFig10MasterActivity(b *testing.B) {
	var tx float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10MasterActivity([]float64{0.02}, 10000, uint64(i)+1)
		tx = rows[0].TxActivity
	}
	b.ReportMetric(tx*100, "%TX@2%duty")
}

// BenchmarkFig11SniffActivity: slave activity active vs sniff at
// Tsniff=100 (paper: ~30% saving).
func BenchmarkFig11SniffActivity(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11SniffActivity([]int{100}, 100, 10000, uint64(i)+1)
		saving = 1 - rows[0].Sniff/rows[0].Active
	}
	b.ReportMetric(saving*100, "%saving@T100")
}

// BenchmarkFig12HoldActivity: slave activity active vs repeating hold at
// Thold=120, the paper's crossover point (hold ≈ active ≈ 2.6%).
func BenchmarkFig12HoldActivity(b *testing.B) {
	var hold, active float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12HoldActivity([]int{120}, 20000, uint64(i)+1)
		hold, active = rows[0].Hold, rows[0].Active
	}
	b.ReportMetric(hold*100, "%hold@T120")
	b.ReportMetric(active*100, "%active")
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationBackoffSpan(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationBackoff([]int{127, 1023}, 0.01, 3)
		mean = rows[0].MeanTS
	}
	b.ReportMetric(mean, "TS@span127")
}

func BenchmarkAblationNInquiry(b *testing.B) {
	var fail float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationNInquiry([]int{256}, 0.01, 3)
		fail = rows[0].FailRate
	}
	b.ReportMetric(fail, "fail@spec256")
}

func BenchmarkAblationCorrelator(b *testing.B) {
	var fail float64
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationCorrelator([]int{1}, 1.0/30, 3)
		fail = rows[0].FailRate
	}
	b.ReportMetric(fail, "fail@th1")
}

// BenchmarkAblationPacketTypes: DM vs DH goodput under noise (the
// packet-choice trade-off the paper's introduction motivates).
func BenchmarkAblationPacketTypes(b *testing.B) {
	types := []packet.Type{packet.TypeDM1, packet.TypeDH5}
	bers := []experiments.BERPoint{{Label: "1/300", Value: 1.0 / 300}}
	var dm1, dh5 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.PacketTypeThroughput(types, bers, 3000, uint64(i)+1)
		dm1, dh5 = rows[0].GoodputKbs, rows[1].GoodputKbs
	}
	b.ReportMetric(dm1, "DM1_kbps")
	b.ReportMetric(dh5, "DH5_kbps")
}

// BenchmarkVoiceQuality: SCO frame quality per HV type at BER 1/200.
func BenchmarkVoiceQuality(b *testing.B) {
	types := []packet.Type{packet.TypeHV1, packet.TypeHV3}
	bers := []experiments.BERPoint{{Label: "1/200", Value: 1.0 / 200}}
	var hv1, hv3 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.VoiceQuality(types, bers, 3000, uint64(i)+1)
		hv1, hv3 = rows[0].BitPerfect, rows[1].BitPerfect
	}
	b.ReportMetric(hv1, "HV1_perfect")
	b.ReportMetric(hv3, "HV3_perfect")
}

// BenchmarkCoexistenceAFH: goodput recovery via adaptive frequency
// hopping under an 802.11-style interferer.
func BenchmarkCoexistenceAFH(b *testing.B) {
	var plain, afh float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Coexistence([]float64{0.9}, 6000, uint64(i)+1)
		plain, afh = rows[0].PlainKbs, rows[0].AFHKbs
	}
	b.ReportMetric(plain, "plain_kbps")
	b.ReportMetric(afh, "afh_kbps")
}

// BenchmarkMultiPiconetInterference: per-link goodput with co-located
// piconets (FHSS collision resilience).
func BenchmarkMultiPiconetInterference(b *testing.B) {
	var perLink float64
	for i := 0; i < b.N; i++ {
		rows := experiments.MultiPiconet([]int{3}, 6000, uint64(i)+1)
		perLink = rows[0].PerLinkKbs
	}
	b.ReportMetric(perLink, "kbps@3piconets")
}

// BenchmarkRunnerReplicasPerSec is the runner-level smoke benchmark: a
// Fig-6-class inquiry sweep (2 BER points × 16 seeds) through the
// worker pool at 1, 2 and 4 workers, reporting replicas/sec. The tables
// are byte-identical at every pool width (TestRunnerDeterminism); only
// the wall clock changes, so the replicas/s ratio between the sub-
// benchmarks is the parallel speedup on this machine.
func BenchmarkRunnerReplicasPerSec(b *testing.B) {
	bers := []experiments.BERPoint{{Label: "1/100", Value: 0.01}, {Label: "1/30", Value: 1.0 / 30}}
	const seeds = 16
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runner.SetDefaultWorkers(workers)
			defer runner.SetDefaultWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				experiments.InquirySweep(bers, seeds)
			}
			replicas := float64(len(bers) * seeds * b.N)
			b.ReportMetric(replicas/b.Elapsed().Seconds(), "replicas/s")
		})
	}
	// shards=*: the intra-replica counterpart — the same sweep, serial
	// across replicas, with each replica's kernel sharded 1 vs 4 ways.
	// Output is byte-identical (TestFiguresShardEquivalence); the ratio
	// shows what conservative windowing costs or buys per world. On a
	// single core shards=4 only measures barrier overhead — see
	// bench/README.md on reading these numbers.
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			runner.SetDefaultWorkers(runner.Serial)
			core.SetDefaultShards(shards)
			defer runner.SetDefaultWorkers(0)
			defer core.SetDefaultShards(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				experiments.InquirySweep(bers, seeds)
			}
			replicas := float64(len(bers) * seeds * b.N)
			b.ReportMetric(replicas/b.Elapsed().Seconds(), "replicas/s")
		})
	}
}

// BenchmarkRunnerSerialBaseline is the same sweep with no pool at all —
// the reference point for the pool's scheduling overhead.
func BenchmarkRunnerSerialBaseline(b *testing.B) {
	bers := []experiments.BERPoint{{Label: "1/100", Value: 0.01}, {Label: "1/30", Value: 1.0 / 30}}
	const seeds = 16
	runner.SetDefaultWorkers(runner.Serial)
	defer runner.SetDefaultWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.InquirySweep(bers, seeds)
	}
	replicas := float64(len(bers) * seeds * b.N)
	b.ReportMetric(replicas/b.Elapsed().Seconds(), "replicas/s")
}

// BenchmarkScatternetForwarding exercises the whole scatternet
// pipeline — chain build, bridge paging, presence negotiation, the
// membership scheduler and the L2CAP store-and-forward relay —
// reporting end-to-end goodput through one bridge at 80% presence duty.
func BenchmarkScatternetForwarding(b *testing.B) {
	var kbps float64
	for i := 0; i < b.N; i++ {
		rows := experiments.ScatternetSweep([]float64{0.8}, 6000, 1, uint64(i)+1)
		kbps = rows[0].GoodputKbps
	}
	b.ReportMetric(kbps, "kbps@duty0.8")
}
