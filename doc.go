// Package repro is a from-scratch Go reproduction of "System Level
// Analysis of the Bluetooth Standard" (Conti & Moretti, DATE 2005): a
// discrete-event, behavioural-level model of the Bluetooth 1.2 lower
// layers (baseband link controller, link manager, thin HCI) over a noisy
// shared channel, with the instrumentation needed to regenerate every
// figure of the paper's evaluation.
//
// The public API lives in internal/core (simulation assembly and
// scenario helpers), internal/baseband (devices, links, power modes),
// internal/lmp and internal/hci. internal/coex is the multi-piconet
// coexistence engine: several piconets on one shared medium, with
// adaptive channel classification learning AFH maps from per-frequency
// reception errors. internal/scatternet chains piconets through bridge
// devices that are slaves in two piconets at once — each bridge
// timeshares its radio over per-piconet baseband memberships, pins
// presence windows via the LMP slot-offset/sniff handshake, and relays
// L2CAP frames store-and-forward between the piconets.
// internal/runner is the declarative trial engine:
// experiment sweeps declare their axes and a per-seed trial function,
// and the engine fans the replicas out across a worker pool while
// keeping every table byte-identical to a serial run. See README.md for
// a package tour, ARCHITECTURE.md for the layer map and slot-level data
// flow, and EXPERIMENTS.md for the figure-by-figure reproduction guide.
// The benchmarks in bench_test.go regenerate each figure; run them with
//
//	go test -bench=. -benchmem
package repro
