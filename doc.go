// Package repro is a from-scratch Go reproduction of "System Level
// Analysis of the Bluetooth Standard" (Conti & Moretti, DATE 2005): a
// discrete-event, behavioural-level model of the Bluetooth 1.2 lower
// layers (baseband link controller, link manager, thin HCI) over a noisy
// shared channel, with the instrumentation needed to regenerate every
// figure of the paper's evaluation.
//
// The public API lives in internal/core (simulation assembly and
// scenario helpers), internal/baseband (devices, links, power modes),
// internal/lmp and internal/hci. internal/netspec is the declarative
// topology layer: one Spec value — piconet, bridge, traffic, jammer,
// power-mode and probe stanzas — compiles into any world the model can
// express, from a lone piconet to a jammed multi-piconet room to a
// bridged scatternet with crossing flows, and the built World exposes
// one unified Metrics surface. It subsumes the engines that grew
// underneath it: several piconets on one shared medium with adaptive
// channel classification learning AFH maps from per-frequency
// reception errors, and scatternet bridges that are slaves in two
// piconets at once, timesharing one radio over per-piconet baseband
// memberships (the LMP slot-offset/sniff handshake pins the presence
// windows) while relaying L2CAP frames store-and-forward.
// internal/coex and internal/scatternet remain as thin deprecated
// adapters over netspec. internal/runner is the declarative trial engine:
// experiment sweeps declare their axes and a per-seed trial function,
// and the engine fans the replicas out across a worker pool while
// keeping every table byte-identical to a serial run. See README.md for
// a package tour, ARCHITECTURE.md for the layer map and slot-level data
// flow, and EXPERIMENTS.md for the figure-by-figure reproduction guide.
// The benchmarks in bench_test.go regenerate each figure; run them with
//
//	go test -bench=. -benchmem
package repro
