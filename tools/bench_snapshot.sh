#!/bin/sh
# bench_snapshot.sh [--allow-dirty] [name] — capture one perf-trajectory
# snapshot into bench/: runs the benchmark smoke suite (-benchtime 1x,
# the same invocation as the CI bench job) and converts the output to
# bench/BENCH_<name>.json via tools/bench_to_json.sh.
#
# CI uploads the same JSON as a workflow artifact, but artifacts do not
# accumulate where the repo can see them — committing the bench/ file
# is what makes the trajectory visible in-tree (see EXPERIMENTS.md,
# "Perf trajectory"). <name> defaults to the current short commit sha.
#
# A dirty worktree is refused by default: a snapshot stamped with a sha
# whose code it does not measure poisons the trajectory baseline (the
# repo once carried only a *-dirty snapshot, so nothing could be
# compared against cleanly). Pass --allow-dirty to override for local
# experiments; the file is then suffixed "-dirty" so it can never be
# mistaken for a commit's figures.
set -eu
cd "$(dirname "$0")/.."

allow_dirty=0
if [ "${1:-}" = "--allow-dirty" ]; then
    allow_dirty=1
    shift
fi

# Porcelain (not diff --quiet) so untracked files also count as dirty:
# a snapshot must not claim a sha its code does not match.
dirty=""
if [ -n "$(git status --porcelain)" ]; then
    dirty=1
fi

name="${1:-}"
if [ -z "$name" ]; then
    name=$(git rev-parse --short HEAD)
    if [ -n "$dirty" ]; then
        name="${name}-dirty"
    fi
fi

if [ -n "$dirty" ] && [ "$allow_dirty" != 1 ]; then
    echo "bench_snapshot.sh: working tree is dirty; commit first or pass --allow-dirty" >&2
    git status --porcelain | head >&2
    exit 1
fi

mkdir -p bench
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# No pipe: plain sh has no pipefail, and a tee pipeline would mask a
# failing benchmark run behind tee's exit 0 (set -e stops us here).
go test -run '^$' -bench . -benchtime 1x ./... > "$raw"
sh tools/bench_to_json.sh "$raw" "bench/BENCH_${name}.json"
echo "wrote bench/BENCH_${name}.json"
