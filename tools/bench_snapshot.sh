#!/bin/sh
# bench_snapshot.sh [name] — capture one perf-trajectory snapshot into
# bench/: runs the benchmark smoke suite (-benchtime 1x, the same
# invocation as the CI bench job) and converts the output to
# bench/BENCH_<name>.json via tools/bench_to_json.sh.
#
# CI uploads the same JSON as a workflow artifact, but artifacts do not
# accumulate where the repo can see them — committing the bench/ file
# is what makes the trajectory visible in-tree (see EXPERIMENTS.md,
# "Perf trajectory"). <name> defaults to the current short commit sha,
# with a "-dirty" suffix when the working tree has uncommitted changes
# (i.e. the snapshot measures a tree that is not exactly that commit).
set -eu
cd "$(dirname "$0")/.."

name="${1:-}"
if [ -z "$name" ]; then
    name=$(git rev-parse --short HEAD)
    # Porcelain (not diff --quiet) so untracked files also count as
    # dirty: the snapshot must not claim a sha its code does not match.
    if [ -n "$(git status --porcelain)" ]; then
        name="${name}-dirty"
    fi
fi

mkdir -p bench
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# No pipe: plain sh has no pipefail, and a tee pipeline would mask a
# failing benchmark run behind tee's exit 0 (set -e stops us here).
go test -run '^$' -bench . -benchtime 1x ./... > "$raw"
sh tools/bench_to_json.sh "$raw" "bench/BENCH_${name}.json"
echo "wrote bench/BENCH_${name}.json"
