#!/bin/sh
# bench_to_json.sh <bench-output.txt> <out.json> — converts raw
# `go test -bench` output into the per-commit JSON artifact the CI
# bench job uploads (BENCH_<sha>.json), so the perf trajectory
# accumulates one parseable file per commit. Each benchmark's metrics
# are broken out as JSON, and the raw benchmark-format lines (header
# included) are preserved under "lines", which keeps the artifact
# benchstat-parseable:
#
#   jq -r '.lines[]' BENCH_<sha>.json | benchstat /dev/stdin
#
# or, comparing two commits:
#
#   jq -r '.lines[]' BENCH_old.json > old.txt
#   jq -r '.lines[]' BENCH_new.json > new.txt
#   benchstat old.txt new.txt
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 <bench-output.txt> <out.json>" >&2
    exit 2
fi

awk '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); gsub(/\t/, "\\t", s); return s }
BEGIN { nb = 0; nl = 0 }
/^(goos|goarch|pkg|cpu): / {
    split($0, kv, ": ")
    hdr[kv[1]] = kv[2]
    line[nl++] = $0
}
/^Benchmark/ && NF >= 2 {
    line[nl++] = $0
    m = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        m = m sprintf("%s\"%s\": %s", (m == "" ? "" : ", "), jesc($(i+1)), $i)
    }
    b[nb++] = sprintf("{\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}",
                      jesc($1), $2, m)
}
END {
    printf "{\n"
    printf "  \"goos\": \"%s\",\n", jesc(hdr["goos"])
    printf "  \"goarch\": \"%s\",\n", jesc(hdr["goarch"])
    printf "  \"cpu\": \"%s\",\n", jesc(hdr["cpu"])
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < nb; i++) printf "    %s%s\n", b[i], (i < nb - 1 ? "," : "")
    printf "  ],\n"
    printf "  \"lines\": [\n"
    for (i = 0; i < nl; i++) printf "    \"%s\"%s\n", jesc(line[i]), (i < nl - 1 ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$1" > "$2"
