#!/bin/sh
# check_pkg_docs.sh — the CI docs gate: every internal/ package must
# carry a proper godoc package comment ("// Package <name> ..." directly
# above its package clause in at least one file) AND a row in the
# ARCHITECTURE.md package map, so a new package cannot land without its
# place in the layer diagram. Exits nonzero and lists the offenders
# otherwise.
set -u

fail=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    found=0
    for f in "$dir"*.go; do
        [ -e "$f" ] || continue
        case "$f" in
        *_test.go) continue ;;
        esac
        if grep -q "^// Package $pkg " "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "missing package comment: $dir"
        fail=1
    fi
    if ! grep -q "| \`$pkg\`" ARCHITECTURE.md; then
        echo "missing from ARCHITECTURE.md package map: $pkg"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "add a '// Package <name> ...' comment (see ARCHITECTURE.md for the package map)"
fi
exit "$fail"
