#!/bin/sh
# bench_compare.sh <raw-bench-output.txt> — warn-only trajectory check:
# compares a fresh `go test -bench` run against the newest committed
# bench/BENCH_*.json and prints per-benchmark deltas for ns/op and for
# every custom b.ReportMetric column, flagging regressions beyond each
# metric's noise threshold. Always exits 0 — single-iteration smoke
# runs on shared CI machines are far too noisy to gate a merge; the
# point is that a regression is *visible* in the job log, not that it
# blocks.
#
# Metrics fall into two classes with different thresholds:
#   - timing/throughput (ns/op, replicas/s, jobs/s): machine-dependent,
#     so only deltas past 25% are flagged;
#   - figure result metrics (kbps, %saving@T100, TS@..., fail@...):
#     fully seed-determined, so ANY drift beyond float formatting
#     means the simulation's behaviour changed and is flagged.
#
# Shard-scaling rows (BenchmarkShardedKernel*, .../shards=N) and the
# checkpoint-fork rows (BenchmarkCheckpointFork/*) are timing-class
# for every unit — their custom metrics (including replicas/s) are
# throughputs that scale with the iteration count, so the
# result-metric gate would false-positive.
# A benchmark absent from the baseline prints as "(new)" instead of
# warning: first appearance is not a regression.
#
# If benchstat is available the raw benchstat comparison is appended
# (the committed JSON preserves benchmark-format lines for exactly
# this), but the awk delta table never requires it.
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 <raw-bench-output.txt>" >&2
    exit 2
fi
# Resolve before the cd below so relative paths keep working from any
# invocation directory.
case $1 in
/*) new_raw=$1 ;;
*) new_raw=$(pwd)/$1 ;;
esac
cd "$(dirname "$0")/.."

# Newest snapshot by commit date, not filename: the snapshots are named
# by short commit hash, so lexicographic order is meaningless. Fall back
# to file mtime outside a git checkout.
pick_newest() {
    if git rev-parse --git-dir >/dev/null 2>&1; then
        for f in "$@"; do
            printf '%s %s\n' "$(git log -1 --format=%ct -- "$f" 2>/dev/null || echo 0)" "$f"
        done | sort -n | tail -1 | cut -d' ' -f2-
    else
        ls -1t "$@" | head -1
    fi
}
base=""
clean=$(ls -1 bench/BENCH_*.json 2>/dev/null | grep -v -- '-dirty' || true)
if [ -n "$clean" ]; then
    # shellcheck disable=SC2086
    base=$(pick_newest $clean)
elif ls bench/BENCH_*.json >/dev/null 2>&1; then
    base=$(pick_newest bench/BENCH_*.json)
fi
if [ -z "$base" ]; then
    echo "bench_compare: no committed bench/BENCH_*.json baseline; skipping"
    exit 0
fi
echo "bench_compare: baseline $base"

old_lines=$(mktemp)
trap 'rm -f "$old_lines"' EXIT
# Extract the preserved benchmark-format lines from the JSON without
# requiring jq: each line entry is a quoted string in the "lines" array.
awk '
/"lines": \[/ { in_lines = 1; next }
in_lines && /^  \]/ { in_lines = 0 }
in_lines {
    s = $0
    sub(/^[ ]*"/, "", s); sub(/",?$/, "", s)
    gsub(/\\t/, "\t", s); gsub(/\\"/, "\"", s); gsub(/\\\\/, "\\", s)
    print s
}' "$base" > "$old_lines"

# Join old and new per (benchmark, metric unit) and print the delta
# table: ns/op first, then every custom metric column the new run
# reports. go's benchmark line format is `Name iterations v1 unit1 v2
# unit2 ...`, so value/unit pairs start at field 3.
awk '
/^Benchmark/ && NF >= 2 {
    name = $1
    for (i = 3; i + 1 <= NF; i += 2) {
        u = $(i + 1)
        if (FILENAME == ARGV[1]) { old[name SUBSEP u] = $i }
        else {
            new[name SUBSEP u] = $i
            if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
            if (!((name SUBSEP u) in useen)) { units[name] = units[name] u "\n"; useen[name, u] = 1 }
        }
    }
}
END {
    printf "%-52s %14s %14s %8s\n", "benchmark", "old", "new", "delta"
    warned = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        m = split(units[name], us, "\n")
        shown = 0
        for (j = 1; j <= m; j++) {
            u = us[j]
            if (u == "") continue
            o = old[name SUBSEP u]
            w = new[name SUBSEP u]
            if (w == "") continue
            if (o == "" || o + 0 == 0) {
                # First appearance of a benchmark/metric: informational,
                # never a warning. The next committed snapshot becomes
                # its baseline.
                label = name
                if (shown) label = ""
                shown = 1
                printf "%-52s %14s %14.3f %8s %s (new benchmark; no baseline)\n", label, "-", w, "", u
                continue
            }
            d = (w - o) / o * 100
            flag = ""
            timing = (u == "ns/op" || u == "replicas/s" || u == "jobs/s")
            # Shard-scaling and checkpoint-fork rows: timing-class
            # thresholds for any unit.
            if (name ~ /^BenchmarkShardedKernel/ || name ~ /\/shards=/ || name ~ /^BenchmarkCheckpointFork/) timing = 1
            if (timing) {
                # Smoke runs are single-iteration: only yell past 25%.
                if (u == "replicas/s" || u == "jobs/s") {
                    if (d < -25) { flag = "  <-- fewer " u; warned = 1 }
                } else if (d > 25 || d < -25) {
                    if (u == "ns/op") { if (d > 25) { flag = "  <-- slower"; warned = 1 } }
                    else { flag = "  <-- shard timing moved"; warned = 1 }
                }
            } else {
                # Custom figure metrics are seed-determined results, not
                # timings: any drift beyond float-print noise means the
                # simulation produced different numbers.
                if (d > 0.05 || d < -0.05) { flag = "  <-- result metric drifted"; warned = 1 }
            }
            label = name
            if (shown) label = ""
            shown = 1
            printf "%-52s %14.3f %14.3f %+7.1f%% %s%s\n", label, o, w, d, u, flag
        }
    }
    if (warned) print "\nbench_compare: WARNING - regression or result drift vs committed baseline (warn-only; see deltas above)"
    else print "\nbench_compare: no timing regression beyond 25%, no result-metric drift"
}' "$old_lines" "$new_raw"

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "--- benchstat ---"
    benchstat "$old_lines" "$new_raw" || true
fi
exit 0
