#!/bin/sh
# bench_compare.sh <raw-bench-output.txt> — warn-only trajectory check:
# compares a fresh `go test -bench` run against the newest committed
# bench/BENCH_*.json and prints per-benchmark deltas for ns/op and for
# the replicas/s throughput metrics, flagging regressions beyond the
# noise threshold. Always exits 0 — single-iteration smoke runs on
# shared CI machines are far too noisy to gate a merge; the point is
# that a regression is *visible* in the job log, not that it blocks.
#
# If benchstat is available the raw benchstat comparison is appended
# (the committed JSON preserves benchmark-format lines for exactly
# this), but the awk delta table never requires it.
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 <raw-bench-output.txt>" >&2
    exit 2
fi
# Resolve before the cd below so relative paths keep working from any
# invocation directory.
case $1 in
/*) new_raw=$1 ;;
*) new_raw=$(pwd)/$1 ;;
esac
cd "$(dirname "$0")/.."

base=$(ls -1 bench/BENCH_*.json 2>/dev/null | grep -v -- '-dirty' | tail -1 || true)
if [ -z "$base" ]; then
    base=$(ls -1 bench/BENCH_*.json 2>/dev/null | tail -1 || true)
fi
if [ -z "$base" ]; then
    echo "bench_compare: no committed bench/BENCH_*.json baseline; skipping"
    exit 0
fi
echo "bench_compare: baseline $base"

old_lines=$(mktemp)
trap 'rm -f "$old_lines"' EXIT
# Extract the preserved benchmark-format lines from the JSON without
# requiring jq: each line entry is a quoted string in the "lines" array.
awk '
/"lines": \[/ { in_lines = 1; next }
in_lines && /^  \]/ { in_lines = 0 }
in_lines {
    s = $0
    sub(/^[ ]*"/, "", s); sub(/",?$/, "", s)
    gsub(/\\t/, "\t", s); gsub(/\\"/, "\"", s); gsub(/\\\\/, "\\", s)
    print s
}' "$base" > "$old_lines"

# Join old and new per benchmark name and print the delta table.
awk '
/^Benchmark/ && NF >= 2 {
    name = $1
    nsop = ""
    rps = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "replicas/s") rps = $i
    }
    if (FILENAME == ARGV[1]) { oldns[name] = nsop; oldrps[name] = rps }
    else { newns[name] = nsop; newrps[name] = rps; if (!(name in seen)) { order[n++] = name; seen[name] = 1 } }
}
END {
    printf "%-52s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta"
    warned = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in oldns) || oldns[name] == "" || newns[name] == "") continue
        d = (newns[name] - oldns[name]) / oldns[name] * 100
        flag = ""
        # Smoke runs are single-iteration: only yell past 25%.
        if (d > 25) { flag = "  <-- slower"; warned = 1 }
        printf "%-52s %14d %14d %+7.1f%%%s\n", name, oldns[name], newns[name], d, flag
        if (oldrps[name] != "" && newrps[name] != "") {
            r = (newrps[name] - oldrps[name]) / oldrps[name] * 100
            rflag = ""
            if (r < -25) { rflag = "  <-- fewer replicas/s"; warned = 1 }
            printf "%-52s %14.1f %14.1f %+7.1f%% replicas/s%s\n", "", oldrps[name], newrps[name], r, rflag
        }
    }
    if (warned) print "\nbench_compare: WARNING - possible perf regression vs committed baseline (warn-only; see deltas above)"
    else print "\nbench_compare: no regression beyond the 25% noise threshold"
}' "$old_lines" "$new_raw"

if command -v benchstat >/dev/null 2>&1; then
    echo
    echo "--- benchstat ---"
    benchstat "$old_lines" "$new_raw" || true
fi
exit 0
