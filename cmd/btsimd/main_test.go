package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/simd"
)

// TestBtsimdEndToEnd is the service smoke test: serve the real handler,
// submit the shipped example spec as a small campaign, follow its SSE
// stream to completion, read the result back, and confirm that
// resubmitting the identical campaign is answered from the cache.
func TestBtsimdEndToEnd(t *testing.T) {
	engine := simd.New(simd.Options{
		MaxJobs:       1,
		QueueDepth:    4,
		CacheSize:     8,
		Workers:       2,
		SnapshotSlots: 1000,
	})
	defer engine.Close()
	ts := httptest.NewServer(engine.Handler())
	defer ts.Close()

	spec, err := os.ReadFile("../../examples/specs/office-floor.json")
	if err != nil {
		t.Fatalf("reading example spec: %v", err)
	}
	body := fmt.Sprintf(`{"spec": %s, "seeds": {"first": 1, "count": 2}, "slots": 4000}`, spec)

	// Submit.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var st simd.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}

	// Stream SSE until the server closes the stream, then check the
	// last frame is the terminal done state.
	events, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer events.Body.Close()
	var lastEvent, lastData string
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	deadline := time.AfterFunc(60*time.Second, func() { events.Body.Close() })
	for sc.Scan() {
		line := sc.Text()
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			lastEvent = after
		}
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			lastData = after
		}
	}
	deadline.Stop()
	if lastEvent != "state" || !strings.Contains(lastData, `"done"`) {
		t.Fatalf("stream ended on %s frame %s, want state/done", lastEvent, lastData)
	}

	// The completed job carries the campaign result.
	final := getJSON[simd.Status](t, ts.URL+"/v1/jobs/"+st.ID)
	if final.State != simd.StateDone || final.Result == nil {
		t.Fatalf("final status %+v, want done with result", final)
	}
	if len(final.Result.Points) != 1 || len(final.Result.Points[0].Replicas) != 2 {
		t.Fatalf("result shape %+v, want 1 point x 2 replicas", final.Result)
	}

	// Resubmitting the identical campaign hits the cache: HTTP 200,
	// cached flag set, and a hit on the counters.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200\n%s", resp2.StatusCode, data)
	}
	var st2 simd.Status
	if err := json.Unmarshal(data, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != simd.StateDone {
		t.Fatalf("resubmit status %+v, want cached done", st2)
	}

	stats := getJSON[simd.Stats](t, ts.URL+"/v1/stats")
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("stats %+v, want hits=1 misses=1", stats.Cache)
	}
}

// TestBtsimdGracefulShutdown pins the drain sequence main runs on
// SIGTERM: with a campaign mid-flight and a live SSE subscriber, Drain
// lets the job finish, the subscriber's stream ends with the terminal
// done frame rather than being severed, and the server then shuts down
// without waiting out its timeout on the stream.
func TestBtsimdGracefulShutdown(t *testing.T) {
	engine := simd.New(simd.Options{MaxJobs: 1, Workers: 2})
	ts := httptest.NewServer(engine.Handler())
	defer ts.Close()

	spec, err := os.ReadFile("../../examples/specs/office-floor.json")
	if err != nil {
		t.Fatalf("reading example spec: %v", err)
	}
	// Long enough to still be running when the drain starts.
	body := fmt.Sprintf(`{"spec": %s, "seeds": {"first": 1, "count": 1}, "slots": 300000}`, spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var st simd.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()

	events, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer events.Body.Close()
	type streamEnd struct {
		event, data string
	}
	stream := make(chan streamEnd, 1)
	go func() {
		var lastEvent, lastData string
		sc := bufio.NewScanner(events.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if after, ok := strings.CutPrefix(line, "event: "); ok {
				lastEvent = after
			}
			if after, ok := strings.CutPrefix(line, "data: "); ok {
				lastData = after
			}
		}
		stream <- streamEnd{lastEvent, lastData}
	}()

	// The drain sequence main runs on SIGTERM.
	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := engine.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	engine.Close()

	select {
	case end := <-stream:
		if end.event != "state" || !strings.Contains(end.data, `"done"`) {
			t.Fatalf("stream ended on %s frame %s, want state/done", end.event, end.data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not close after drain")
	}
	// Intake is closed: a late submission gets 503, not a new job.
	late, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST after drain: %v", err)
	}
	late.Body.Close()
	if late.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: HTTP %d, want 503", late.StatusCode)
	}
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return v
}
