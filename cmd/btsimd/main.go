// Command btsimd serves replica campaigns over HTTP: POST a netspec
// Spec (or a list of parameter points), a seed range and a slot
// horizon to /v1/jobs and the service runs the campaign on the
// internal/runner pool, streams progress and live metrics snapshots as
// server-sent events, and caches completed results by canonical spec
// hash so a resubmitted campaign is a lookup rather than a simulation.
// The results are byte-identical to running the same campaign
// in-process — the service adds scheduling, not noise.
//
// Usage:
//
//	btsimd -addr :8080
//	curl -s localhost:8080/v1/jobs -d @examples/specs/office-floor.json
//	curl -N localhost:8080/v1/jobs/j1/events
//	curl -s localhost:8080/v1/jobs/j1
//	curl -s localhost:8080/v1/stats
//	curl -s -X DELETE localhost:8080/v1/jobs/j1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/simd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxJobs := flag.Int("max-jobs", 2, "campaigns running concurrently")
	queue := flag.Int("queue", 16, "jobs queued behind the running ones before submissions get 429")
	cacheSize := flag.Int("cache", 64, "result-cache capacity in campaigns (negative disables)")
	ckCache := flag.Int("ck-cache", 16, "checkpoint-cache capacity in settled worlds for forked campaigns (negative disables)")
	workers := flag.Int("workers", 0, "worker pool size per campaign (0 = GOMAXPROCS, -1 = serial)")
	shards := flag.Int("shards", 1, "kernel event-queue shards per replica world (output is identical for any value)")
	snapshot := flag.Uint64("snapshot-slots", 2000, "live-metrics snapshot period in slots for SSE streams (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget: SIGTERM stops intake and lets running campaigns finish for up to this long before they are canceled")
	flag.Parse()

	core.SetDefaultShards(*shards)
	engine := simd.New(simd.Options{
		MaxJobs:             *maxJobs,
		QueueDepth:          *queue,
		CacheSize:           *cacheSize,
		CheckpointCacheSize: *ckCache,
		Workers:             *workers,
		SnapshotSlots:       *snapshot,
	})
	srv := &http.Server{Addr: *addr, Handler: engine.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		// Drain before touching the HTTP server: running campaigns
		// finish (queued ones cancel), every SSE subscriber gets its
		// terminal frame and its handler returns, and only then does
		// Shutdown wait out the connections — in the old order it
		// stalled on the very streams the engine was about to close.
		fmt.Fprintln(os.Stderr, "btsimd: draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := engine.Drain(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "btsimd: drain budget exhausted; canceling remaining jobs")
		}
		cancel()
		engine.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	fmt.Fprintf(os.Stderr, "btsimd: listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "btsimd: %v\n", err)
		os.Exit(1)
	}
	<-done
}
