// Command btexp regenerates the data behind every figure in the paper's
// evaluation section (Figs 5-12), plus the design-choice ablations, and
// prints them as aligned tables or CSV.
//
// Sweeps fan their (parameter, seed) replicas out across a worker pool
// (internal/runner); -workers sets the pool size and the tables are
// byte-identical at any setting.
//
// Usage:
//
//	btexp -fig all            # every figure, default seeds
//	btexp -fig 6 -seeds 100   # just Fig 6, more statistics
//	btexp -fig 6 -workers 8   # same table, 8-way parallel
//	btexp -fig 5 -out fig5.vcd
//	btexp -fig ablations
//	btexp -fig throughput -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/stats"
)

// stderrIsTerminal reports whether stderr is a character device (a
// terminal rather than a pipe or file).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5..12, all, ablations, throughput, voice, coexistence, interference, coex, afh-adaptive, scatternet, density, fork")
	seeds := flag.Int("seeds", 40, "simulation repetitions per sweep point (Figs 6-8)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	out := flag.String("out", "", "output file for waveform figures (5, 9); default fig<N>.vcd")
	seed := flag.Uint64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, -1 = serial)")
	jobs := flag.Int("jobs", 1, "replicas batched per scheduled job")
	shards := flag.Int("shards", 1, "kernel event-queue shards per replica world (output is identical for any value)")
	progress := flag.Bool("progress", true, "stream sweep progress to stderr")
	flag.Parse()

	runner.SetDefaultWorkers(*workers)
	runner.SetDefaultJobs(*jobs)
	core.SetDefaultShards(*shards)
	// Stream progress only on a terminal unless -progress was given
	// explicitly, so piped stderr stays free of carriage returns.
	explicitProgress := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "progress" {
			explicitProgress = true
		}
	})
	// The hook rides in a per-run Config rather than runner.SetProgress:
	// the global hook remains as a fallback for code that has no Config
	// plumbing, but a process that knows its runs (like this one, or the
	// service layer with many overlapping jobs) passes it explicitly.
	var runCfg runner.Config
	if *progress && (explicitProgress || stderrIsTerminal()) {
		var mu sync.Mutex
		last := make(map[string]int)
		runCfg.Progress = func(name string, done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done <= last[name] {
				return // stale report from a straggling worker
			}
			last[name] = done
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials", name, done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
		}
	}

	emit := func(t *stats.Table) {
		if *csv {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	var inq, page []experiments.PhaseResult
	needInq := func() []experiments.PhaseResult {
		if inq == nil {
			inq = experiments.InquirySweep(experiments.PaperBERs(), *seeds, runCfg)
		}
		return inq
	}
	needPage := func() []experiments.PhaseResult {
		if page == nil {
			page = experiments.PageSweep(experiments.PaperBERs(), *seeds, runCfg)
		}
		return page
	}

	runFig := func(name string) error {
		switch name {
		case "5":
			path := *out
			if path == "" {
				path = "fig5.vcd"
			}
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			links, err := experiments.Fig5Waveforms(f, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("Fig 5: piconet creation waveforms (master + %d slaves) written to %s\n", links, path)
		case "6":
			emit(experiments.Fig6Table(needInq()))
		case "7":
			emit(experiments.Fig7Table(needPage()))
		case "8":
			emit(experiments.Fig8Table(needInq(), needPage()))
		case "9":
			path := *out
			if path == "" {
				path = "fig9.vcd"
			}
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := experiments.Fig9Waveforms(f, 20, 2, *seed); err != nil {
				return err
			}
			fmt.Printf("Fig 9: sniff-mode waveforms (2 slaves sniffing) written to %s\n", path)
		case "10":
			rows := experiments.Fig10MasterActivity(
				[]float64{0, 0.0025, 0.005, 0.0075, 0.01, 0.0125, 0.015, 0.0175, 0.02}, 40000, *seed, runCfg)
			emit(experiments.Fig10Table(rows))
		case "11":
			rows := experiments.Fig11SniffActivity([]int{20, 30, 40, 60, 80, 100}, 100, 40000, *seed, runCfg)
			emit(experiments.Fig11Table(rows))
		case "12":
			rows := experiments.Fig12HoldActivity(
				[]int{50, 100, 120, 150, 200, 400, 600, 800, 1000}, 60000, *seed, runCfg)
			emit(experiments.Fig12Table(rows))
		case "ablations":
			emit(experiments.AblationTable(
				"Ablation: inquiry-response backoff span (BER 1/100)", "backoff_max",
				experiments.AblationBackoff([]int{127, 255, 511, 1023, 2047}, 0.01, *seeds, runCfg)))
			emit(experiments.AblationTable(
				"Ablation: train repetitions NInquiry (BER 1/100, 1.28 s timeout)", "NInquiry",
				experiments.AblationNInquiry([]int{16, 32, 64, 128, 256}, 0.01, *seeds, runCfg)))
			emit(experiments.AblationTable(
				"Ablation: correlator sync-error threshold (BER 1/30)", "threshold",
				experiments.AblationCorrelator([]int{1, 3, 7, 10, 14}, 1.0/30, *seeds, runCfg)))
		case "voice":
			rows := experiments.VoiceQuality(
				[]packet.Type{packet.TypeHV1, packet.TypeHV2, packet.TypeHV3},
				[]experiments.BERPoint{{Label: "0", Value: 0}, {Label: "1/500", Value: 1.0 / 500},
					{Label: "1/200", Value: 1.0 / 200}, {Label: "1/100", Value: 0.01}},
				10000, *seed, runCfg)
			emit(experiments.VoiceTable(rows))
		case "coexistence":
			rows := experiments.Coexistence([]float64{0, 0.25, 0.5, 0.75, 1.0}, 20000, *seed, runCfg)
			emit(experiments.CoexistenceTable(rows))
		case "interference":
			rows := experiments.MultiPiconet([]int{1, 2, 3, 4}, 20000, *seed, runCfg)
			emit(experiments.MultiPiconetTable(rows))
		case "coex":
			rows := experiments.CoexSweep([]int{1, 2, 3, 4, 5, 6, 7, 8}, 20000, 4, *seed, runCfg)
			emit(experiments.CoexTable(rows))
		case "afh-adaptive":
			rows := experiments.AdaptiveAFH([]int{7, 15, 23, 31, 39}, 0.9, 2000, 20000, *seed, runCfg)
			emit(experiments.AdaptiveAFHTable(0.9, rows))
		case "scatternet":
			rows := experiments.ScatternetSweep([]float64{0.2, 0.4, 0.6, 0.8, 1.0}, 20000, 4, *seed, runCfg)
			emit(experiments.ScatternetTable(rows))
		case "density":
			rows := experiments.DensitySweep([]int{1, 2, 4, 8, 16, 32, 48}, 20000, 4, *seed, runCfg)
			emit(experiments.DensityTable(rows))
		case "fork":
			rows := experiments.ForkEnsemble([]int{2, 4}, 20000, 4000, 4, *seed, runCfg)
			emit(experiments.ForkTable(rows))
		case "throughput":
			rows := experiments.PacketTypeThroughput(
				[]packet.Type{packet.TypeDM1, packet.TypeDH1, packet.TypeDM3,
					packet.TypeDH3, packet.TypeDM5, packet.TypeDH5},
				[]experiments.BERPoint{{Label: "0", Value: 0}, {Label: "1/1000", Value: 0.001},
					{Label: "1/300", Value: 1.0 / 300}, {Label: "1/100", Value: 0.01}},
				8000, *seed, runCfg)
			emit(experiments.ThroughputTable(rows))
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		return nil
	}

	var names []string
	if *fig == "all" {
		names = []string{"5", "6", "7", "8", "9", "10", "11", "12"}
	} else {
		names = []string{*fig}
	}
	for _, n := range names {
		if err := runFig(n); err != nil {
			fmt.Fprintf(os.Stderr, "btexp: %v\n", err)
			os.Exit(1)
		}
	}
}
