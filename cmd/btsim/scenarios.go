package main

import (
	"fmt"
	"io"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/stats"
)

// trialParams carries the scenario knobs into one run or replica.
type trialParams struct {
	slaves int
	ber    float64
	seed   uint64
	slots  uint64
	tsniff int
	thold  int
}

// trialOutcome is the mergeable result of one scenario run: named
// outcome counters, the per-device RF-activity observations, and the
// first panic message if the replica crashed.
type trialOutcome struct {
	Out    stats.CounterMap
	Tx, Rx stats.Sample
	Panic  string
}

func (a *trialOutcome) merge(b *trialOutcome) {
	if a.Out == nil {
		a.Out = stats.CounterMap{}
	}
	a.Out.Merge(b.Out)
	a.Tx.Merge(&b.Tx)
	a.Rx.Merge(&b.Rx)
	if a.Panic == "" {
		a.Panic = b.Panic
	}
}

// validScenario reports whether name is a known -scenario value; the
// runScenario switch below is the single list of scenarios.
func validScenario(name string) bool {
	switch name {
	case "creation", "discovery", "sniff", "hold", "park", "transfer":
		return true
	}
	return false
}

// buildWorld assembles the master + N slave world every scenario
// starts from.
func buildWorld(seed uint64, ber float64, slaves int, trace io.Writer) (*core.Simulation, *baseband.Device, []*baseband.Device) {
	s := core.NewSimulation(core.Options{Seed: seed, BER: ber, TraceTo: trace})
	master := s.AddDevice("master", baseband.Config{
		Addr: baseband.BDAddr{LAP: 0x101000, UAP: 0x01, NAP: 0x0001},
	})
	var devs []*baseband.Device
	for i := 0; i < slaves; i++ {
		devs = append(devs, s.AddDevice(fmt.Sprintf("slave%d", i+1), baseband.Config{
			Addr: baseband.BDAddr{LAP: 0x202000 + uint32(i)*0x10100, UAP: uint8(i + 2), NAP: 0x0002},
		}))
	}
	return s, master, devs
}

// runScenario drives one scenario on its own simulation world. logf
// receives the narrative a single interactive run prints (nil for the
// silent replicas of a -trials campaign); the returned outcome carries
// the statistics either way. Setup failures under heavy noise panic,
// as BuildPiconet does — the -trials path recovers per replica, a
// single run crashes loudly.
func runScenario(scenario string, seed uint64, p trialParams, trace io.Writer, logf func(string, ...any)) (*core.Simulation, trialOutcome) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var out trialOutcome
	out.Out = stats.CounterMap{}
	s, master, devs := buildWorld(seed, p.ber, p.slaves, trace)

	switch scenario {
	case "discovery":
		for _, d := range devs {
			d.StartInquiryScan()
		}
		logf("master entering INQUIRY; slaves in INQUIRY SCAN\n")
		found := 0
		master.StartInquiry(4096, len(devs), func(rs []baseband.InquiryResult, ok bool) {
			logf("inquiry complete after %d slots: %d device(s) found (ok=%v)\n",
				master.InquirySlots(), len(rs), ok)
			for _, r := range rs {
				logf("  found %v class=%06X clkn=%d\n", r.Addr, r.Class, r.CLKN)
			}
			found = len(rs)
			out.Out.Observe("inquiry_ok", ok)
		})
		s.RunSlots(5000)
		out.Out.Observe("all_found", found == len(devs))
	case "creation":
		logf("building piconet: master + %d slaves (paper Fig 5 scenario)\n", len(devs))
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		for _, l := range links {
			logf("  connected %v as AM_ADDR %d at slot %d\n", l.Peer, l.AMAddr, s.Now())
		}
		if len(links) > 0 {
			links[0].Send([]byte("hello piconet"), packet.LLIDL2CAPStart)
		}
		s.RunSlots(p.slots)
	case "sniff":
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		logf("piconet up; putting %d slave(s) into SNIFF (Tsniff=%d slots) — paper Fig 9\n",
			max(len(links)-1, 1), p.tsniff)
		// First slave stays active (as in Fig 9), the rest sniff.
		for i := 1; i < len(links); i++ {
			links[i].EnterSniff(p.tsniff, 2, 0)
			devs[i].MasterLink().EnterSniff(p.tsniff, 2, 0)
		}
		if len(links) == 1 {
			links[0].EnterSniff(p.tsniff, 2, 0)
			devs[0].MasterLink().EnterSniff(p.tsniff, 2, 0)
		}
		for _, d := range devs {
			core.ResetMeters(d)
		}
		s.RunSlots(p.slots)
	case "hold":
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		logf("piconet up; slaves entering repeating HOLD (Thold=%d slots) — paper Fig 12 workload\n", p.thold)
		for i, l := range links {
			l.EnterHoldRepeating(p.thold)
			devs[i].MasterLink().EnterHoldRepeating(p.thold)
		}
		for _, d := range devs {
			core.ResetMeters(d)
		}
		s.RunSlots(p.slots)
	case "park":
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		logf("piconet up; parking every slave (beacon every 64 slots)\n")
		for i, l := range links {
			l.EnterPark(64)
			devs[i].MasterLink().EnterPark(64)
		}
		for _, d := range devs {
			core.ResetMeters(d)
		}
		s.RunSlots(p.slots)
	case "transfer":
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		total := 0
		for _, d := range devs {
			d.OnData = func(_ *baseband.Link, pl []byte, _ uint8) { total += len(pl) }
		}
		const chunk = 1024
		for _, l := range links {
			l.PacketType = packet.TypeDM3
			l.Send(make([]byte, chunk), packet.LLIDL2CAPStart)
		}
		logf("piconet up; sending %d bytes to each of %d slaves (DM3, BER from -ber)\n", chunk, len(links))
		s.RunSlots(p.slots)
		logf("delivered %d/%d bytes; master retransmissions: %d\n",
			total, chunk*len(links), master.Counters.Retransmits)
		out.Out.Observe("all_delivered", total == chunk*len(links))
	default:
		panic(fmt.Sprintf("unknown scenario %q", scenario))
	}

	for _, d := range devs {
		tx, rx := core.Activity(d)
		out.Tx.Add(tx)
		out.Rx.Add(rx)
	}
	return s, out
}
