package main

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/coex"
	"repro/internal/core"
	"repro/internal/hop"
	"repro/internal/packet"
	"repro/internal/scatternet"
	"repro/internal/stats"
)

// trialParams carries the scenario knobs into one run or replica.
type trialParams struct {
	slaves       int
	ber          float64
	seed         uint64
	slots        uint64
	tsniff       int
	thold        int
	piconets     int     // coex scenarios: co-located piconets
	assessWindow int     // afh-adaptive: classification window in slots
	jamDuty      float64 // afh-adaptive: jammer duty cycle
	jamWidth     int     // afh-adaptive: jammed channels starting at 30
	bridges      int     // scatternet: bridge count (piconets = bridges+1)
	presence     float64 // scatternet: bridge presence duty cycle
}

// trialOutcome is the mergeable result of one scenario run: named
// outcome counters, the per-device RF-activity observations, and the
// first panic message if the replica crashed.
type trialOutcome struct {
	Out    stats.CounterMap
	Tx, Rx stats.Sample
	Panic  string
}

func (a *trialOutcome) merge(b *trialOutcome) {
	if a.Out == nil {
		a.Out = stats.CounterMap{}
	}
	a.Out.Merge(b.Out)
	a.Tx.Merge(&b.Tx)
	a.Rx.Merge(&b.Rx)
	if a.Panic == "" {
		a.Panic = b.Panic
	}
}

// scenarioInfo registers one -scenario value with the one-line summary
// the usage text prints.
type scenarioInfo struct {
	name    string
	summary string
}

// scenarioRegistry is the single source of truth for the scenario list:
// the -scenario flag help, the full usage text and the validator all
// derive from it (the README scenario table mirrors it). Keep an entry
// here for every case runScenario handles.
var scenarioRegistry = []scenarioInfo{
	{"creation", "master + N slaves create a piconet (paper Fig 5)"},
	{"discovery", "inquiry finds the neighbours under noise (paper Fig 6)"},
	{"sniff", "slaves enter sniff mode, -tsniff anchors (paper Fig 9)"},
	{"hold", "slaves cycle repeating hold, -thold slots (paper Fig 12)"},
	{"park", "slaves parked on the 64-slot beacon channel"},
	{"transfer", "bulk DM3 transfer to every slave, ARQ vs -ber"},
	{"coex", "-piconets co-located piconets colliding on one medium"},
	{"coex2", "two co-located piconets"},
	{"coex4", "four co-located piconets"},
	{"afh-adaptive", "one piconet learns its AFH map under a -jam-duty jammer"},
	{"scatternet", "-bridges bridges chain -bridges+1 piconets, L2CAP forwarded end to end"},
}

// validScenario reports whether name is registered.
func validScenario(name string) bool {
	for _, s := range scenarioRegistry {
		if s.name == name {
			return true
		}
	}
	return false
}

// scenarioList renders the registered names for the -scenario flag help.
func scenarioList() string {
	names := make([]string, len(scenarioRegistry))
	for i, s := range scenarioRegistry {
		names[i] = s.name
	}
	return strings.Join(names, " | ")
}

// scenarioUsage renders the per-scenario summaries for the usage text.
func scenarioUsage() string {
	var sb strings.Builder
	sb.WriteString("Scenarios:\n")
	for _, s := range scenarioRegistry {
		fmt.Fprintf(&sb, "  %-13s %s\n", s.name, s.summary)
	}
	return sb.String()
}

// buildWorld assembles the master + N slave world every scenario
// starts from.
func buildWorld(seed uint64, ber float64, slaves int, trace io.Writer) (*core.Simulation, *baseband.Device, []*baseband.Device) {
	s := core.NewSimulation(core.Options{Seed: seed, BER: ber, TraceTo: trace})
	master := s.AddDevice("master", baseband.Config{
		Addr: baseband.BDAddr{LAP: 0x101000, UAP: 0x01, NAP: 0x0001},
	})
	var devs []*baseband.Device
	for i := 0; i < slaves; i++ {
		devs = append(devs, s.AddDevice(fmt.Sprintf("slave%d", i+1), baseband.Config{
			Addr: baseband.BDAddr{LAP: 0x202000 + uint32(i)*0x10100, UAP: uint8(i + 2), NAP: 0x0002},
		}))
	}
	return s, master, devs
}

// runScenario drives one scenario on its own simulation world. logf
// receives the narrative a single interactive run prints (nil for the
// silent replicas of a -trials campaign); the returned outcome carries
// the statistics either way. Setup failures under heavy noise panic,
// as BuildPiconet does — the -trials path recovers per replica, a
// single run crashes loudly.
func runScenario(scenario string, seed uint64, p trialParams, trace io.Writer, logf func(string, ...any)) (*core.Simulation, trialOutcome) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	switch scenario {
	case "coex", "coex2", "coex4":
		return runCoexScenario(scenario, seed, p, trace, logf)
	case "afh-adaptive":
		return runAdaptiveScenario(seed, p, trace, logf)
	case "scatternet":
		return runScatternetScenario(seed, p, trace, logf)
	}
	var out trialOutcome
	out.Out = stats.CounterMap{}
	s, master, devs := buildWorld(seed, p.ber, p.slaves, trace)

	switch scenario {
	case "discovery":
		for _, d := range devs {
			d.StartInquiryScan()
		}
		logf("master entering INQUIRY; slaves in INQUIRY SCAN\n")
		found := 0
		master.StartInquiry(4096, len(devs), func(rs []baseband.InquiryResult, ok bool) {
			logf("inquiry complete after %d slots: %d device(s) found (ok=%v)\n",
				master.InquirySlots(), len(rs), ok)
			for _, r := range rs {
				logf("  found %v class=%06X clkn=%d\n", r.Addr, r.Class, r.CLKN)
			}
			found = len(rs)
			out.Out.Observe("inquiry_ok", ok)
		})
		s.RunSlots(5000)
		out.Out.Observe("all_found", found == len(devs))
	case "creation":
		logf("building piconet: master + %d slaves (paper Fig 5 scenario)\n", len(devs))
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		for _, l := range links {
			logf("  connected %v as AM_ADDR %d at slot %d\n", l.Peer, l.AMAddr, s.Now())
		}
		if len(links) > 0 {
			links[0].Send([]byte("hello piconet"), packet.LLIDL2CAPStart)
		}
		s.RunSlots(p.slots)
	case "sniff":
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		logf("piconet up; putting %d slave(s) into SNIFF (Tsniff=%d slots) — paper Fig 9\n",
			max(len(links)-1, 1), p.tsniff)
		// First slave stays active (as in Fig 9), the rest sniff.
		for i := 1; i < len(links); i++ {
			links[i].EnterSniff(p.tsniff, 2, 0)
			devs[i].MasterLink().EnterSniff(p.tsniff, 2, 0)
		}
		if len(links) == 1 {
			links[0].EnterSniff(p.tsniff, 2, 0)
			devs[0].MasterLink().EnterSniff(p.tsniff, 2, 0)
		}
		for _, d := range devs {
			core.ResetMeters(d)
		}
		s.RunSlots(p.slots)
	case "hold":
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		logf("piconet up; slaves entering repeating HOLD (Thold=%d slots) — paper Fig 12 workload\n", p.thold)
		for i, l := range links {
			l.EnterHoldRepeating(p.thold)
			devs[i].MasterLink().EnterHoldRepeating(p.thold)
		}
		for _, d := range devs {
			core.ResetMeters(d)
		}
		s.RunSlots(p.slots)
	case "park":
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		logf("piconet up; parking every slave (beacon every 64 slots)\n")
		for i, l := range links {
			l.EnterPark(64)
			devs[i].MasterLink().EnterPark(64)
		}
		for _, d := range devs {
			core.ResetMeters(d)
		}
		s.RunSlots(p.slots)
	case "transfer":
		links := s.BuildPiconet(master, devs...)
		out.Out.Observe("setup_ok", true)
		total := 0
		for _, d := range devs {
			d.OnData = func(_ *baseband.Link, pl []byte, _ uint8) { total += len(pl) }
		}
		const chunk = 1024
		for _, l := range links {
			l.PacketType = packet.TypeDM3
			l.Send(make([]byte, chunk), packet.LLIDL2CAPStart)
		}
		logf("piconet up; sending %d bytes to each of %d slaves (DM3, BER from -ber)\n", chunk, len(links))
		s.RunSlots(p.slots)
		logf("delivered %d/%d bytes; master retransmissions: %d\n",
			total, chunk*len(links), master.Counters.Retransmits)
		out.Out.Observe("all_delivered", total == chunk*len(links))
	default:
		panic(fmt.Sprintf("unknown scenario %q", scenario))
	}

	for _, d := range devs {
		tx, rx := core.Activity(d)
		out.Tx.Add(tx)
		out.Rx.Add(rx)
	}
	return s, out
}

// validateParams rejects flag values that would wrap or hang a run
// (negative windows convert to huge uint64 horizons).
func validateParams(p trialParams) error {
	if p.assessWindow < 1 {
		return fmt.Errorf("-assess-window must be >= 1, got %d", p.assessWindow)
	}
	if p.piconets < 1 {
		return fmt.Errorf("-piconets must be >= 1, got %d", p.piconets)
	}
	if p.jamWidth < 1 || p.jamWidth > hop.NumChannels {
		return fmt.Errorf("-jam-width must be in 1..%d, got %d", hop.NumChannels, p.jamWidth)
	}
	if p.jamDuty < 0 || p.jamDuty > 1 {
		return fmt.Errorf("-jam-duty must be in 0..1, got %g", p.jamDuty)
	}
	if p.tsniff < 1 || p.thold < 1 {
		return fmt.Errorf("-tsniff and -thold must be >= 1, got %d and %d", p.tsniff, p.thold)
	}
	if p.bridges < 1 || p.bridges > 6 {
		return fmt.Errorf("-bridges must be in 1..6, got %d", p.bridges)
	}
	if p.presence <= 0 || p.presence > 1 {
		return fmt.Errorf("-presence must be in (0,1], got %g", p.presence)
	}
	return nil
}

// coexPiconetCount resolves the piconet count for a coex scenario: the
// numbered aliases pin it, plain "coex" takes the -piconets flag.
func coexPiconetCount(scenario string, p trialParams) int {
	switch scenario {
	case "coex2":
		return 2
	case "coex4":
		return 4
	}
	return max(p.piconets, 1)
}

// coexSlaves clamps the -slaves flag to the 1..7 a piconet supports.
func coexSlaves(p trialParams) int {
	return min(max(p.slaves, 1), 7)
}

// runCoexScenario stands N independent piconets up on one shared
// channel and reports per-piconet goodput plus the attributed
// inter-/intra-piconet collision counts.
func runCoexScenario(scenario string, seed uint64, p trialParams, trace io.Writer, logf func(string, ...any)) (*core.Simulation, trialOutcome) {
	var out trialOutcome
	out.Out = stats.CounterMap{}
	piconets := coexPiconetCount(scenario, p)
	slaves := coexSlaves(p)
	s := core.NewSimulation(core.Options{Seed: seed, BER: p.ber, TraceTo: trace})
	net := coex.Build(s, coex.Config{Piconets: piconets, Slaves: slaves})
	out.Out.Observe("setup_ok", true)
	logf("built %d piconets (1 master + %d slave(s) each) on one shared 79-channel medium\n",
		piconets, slaves)
	net.StartTraffic()
	s.RunSlots(64)
	net.ResetStats()
	// Channel-level counters are lifetime; snapshot them so the worst-
	// channel report below covers the same window as the other lines.
	before := s.Ch.Stats()
	s.RunSlots(p.slots)
	tot := net.Totals()
	for i, bytes := range tot.PerPiconet {
		logf("  piconet %d: %.1f kbps goodput\n", i, coex.GoodputKbps(bytes, p.slots))
	}
	logf("collisions over %d slots: %d inter-piconet, %d intra-piconet; %d master retransmissions\n",
		p.slots, tot.Inter, tot.Intra, tot.Retransmits)
	if ch, count := worstChannel(before, s.Ch.Stats()); ch >= 0 {
		logf("most-collided RF channel this window: %d (%d collisions)\n", ch, count)
	}
	out.Out.Observe("all_piconets_delivered", minInt(tot.PerPiconet) > 0)
	out.Out.Observe("inter_collisions_seen", tot.Inter > 0)
	addCoexActivity(net, &out)
	return s, out
}

// runAdaptiveScenario runs one piconet under an 802.11-style jammer
// with adaptive channel classification enabled and reports the learned
// map against the known jammed band.
func runAdaptiveScenario(seed uint64, p trialParams, trace io.Writer, logf func(string, ...any)) (*core.Simulation, trialOutcome) {
	var out trialOutcome
	out.Out = stats.CounterMap{}
	lo := 30
	hi := lo + max(p.jamWidth, 1) - 1
	if hi >= hop.NumChannels {
		hi = hop.NumChannels - 1
	}
	s := core.NewSimulation(core.Options{Seed: seed, BER: p.ber, TraceTo: trace})
	net := coex.Build(s, coex.Config{
		Piconets:          1,
		Slaves:            coexSlaves(p),
		AFH:               coex.AFHAdaptive,
		AssessWindowSlots: p.assessWindow,
	})
	s.Ch.AddJammer(lo, hi, p.jamDuty)
	out.Out.Observe("setup_ok", true)
	logf("piconet up under a %d-channel jammer (channels %d-%d, duty %.0f%%); assessing every %d slots\n",
		hi-lo+1, lo, hi, p.jamDuty*100, p.assessWindow)
	net.StartTraffic()
	warm := coex.ConvergenceSlots(p.assessWindow)
	s.RunSlots(warm)
	net.ResetStats()
	s.RunSlots(p.slots)
	pic := net.Piconets[0]
	cm := pic.CurrentMap()
	excluded := 0
	if cm != nil {
		for ch := lo; ch <= hi; ch++ {
			if !cm.Used(ch) {
				excluded++
			}
		}
		logf("learned channel map after %d update(s): %d/%d channels in use, %d/%d jammed channels excluded\n",
			pic.MapUpdates, cm.N(), hop.NumChannels, excluded, hi-lo+1)
	} else {
		logf("classifier never narrowed the hop set (%d updates)\n", pic.MapUpdates)
	}
	tot := net.Totals()
	logf("goodput over the %d-slot measurement window: %.1f kbps\n",
		p.slots, coex.GoodputKbps(tot.Bytes, p.slots))
	out.Out.Observe("map_installed", cm != nil)
	out.Out.Observe("jam_band_excluded", cm != nil && excluded >= (hi-lo+1)*8/10)
	addCoexActivity(net, &out)
	return s, out
}

// runScatternetScenario chains -bridges+1 piconets through timesharing
// bridges and pushes the canonical end-to-end flow (first master to a
// slave of the last piconet) across them, reporting goodput, bridge
// store-and-forward statistics and the presence schedule's retunes.
func runScatternetScenario(seed uint64, p trialParams, trace io.Writer, logf func(string, ...any)) (*core.Simulation, trialOutcome) {
	var out trialOutcome
	out.Out = stats.CounterMap{}
	piconets := p.bridges + 1
	// A master hosts its slaves plus one bridge (chain ends) or two
	// (middle masters) within the 7 active members a piconet supports.
	maxSlaves := 6
	if piconets > 2 {
		maxSlaves = 5
	}
	slaves := min(coexSlaves(p), maxSlaves)
	s := core.NewSimulation(core.Options{Seed: seed, BER: p.ber, TraceTo: trace})
	cfg := scatternet.Config{Piconets: piconets, Slaves: slaves, PresenceDuty: p.presence}
	net := scatternet.Build(s, cfg)
	out.Out.Observe("setup_ok", true)
	logf("built a %d-piconet chain (1 master + %d slave(s) each) joined by %d bridge(s); presence duty %.0f%%, period %d slots\n",
		piconets, slaves, len(net.Bridges), p.presence*100, 256)
	net.StartTraffic()
	flow := net.Flows[0]
	logf("flow: %s -> %s, store-and-forward through every bridge\n", flow.From, flow.To)
	s.RunSlots(uint64(3 * 256))
	net.ResetStats()
	s.RunSlots(p.slots)
	tot := net.Totals()
	logf("delivered %d bytes end-to-end over %d slots (%.1f kbps goodput)\n",
		tot.DeliveredBytes, p.slots, scatternet.GoodputKbps(tot.DeliveredBytes, p.slots))
	logf("bridges forwarded %d frame(s), dropped %d; store-and-forward latency %.0f slots mean\n",
		tot.ForwardedFrames, tot.DroppedFrames, tot.FwdLatencyMeanSlots)
	logf("bridge queue depth: %.1f mean (time-weighted), %d max; %d membership retunes\n",
		tot.QueueMeanDepth, tot.QueueMaxDepth, tot.MembershipSwitches)
	out.Out.Observe("delivered_across_piconets", tot.DeliveredBytes > 0)
	out.Out.Observe("no_route_misses", tot.RouteMisses == 0)
	out.Out.Observe("radio_timeshared", tot.MembershipSwitches > 0)
	for _, b := range net.Bridges {
		tx, rx := core.Activity(b.Dev)
		out.Tx.Add(tx)
		out.Rx.Add(rx)
	}
	return s, out
}

// addCoexActivity folds every slave's RF activity into the outcome.
func addCoexActivity(net *coex.Net, out *trialOutcome) {
	for _, pic := range net.Piconets {
		for _, sl := range pic.Slaves {
			tx, rx := core.Activity(sl)
			out.Tx.Add(tx)
			out.Rx.Add(rx)
		}
	}
}

// worstChannel returns the RF channel with the most collisions between
// two stats snapshots and its count (-1 if the air stayed clean).
func worstChannel(before, after channel.Stats) (int, int) {
	best, worst := 0, -1
	for ch := range after.PerFreq {
		delta := after.PerFreq[ch].Collisions - before.PerFreq[ch].Collisions
		if delta > best {
			best, worst = delta, ch
		}
	}
	return worst, best
}

// minInt returns the smallest element (0 for an empty slice).
func minInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
