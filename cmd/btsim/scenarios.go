package main

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hop"
	"repro/internal/netspec"
	"repro/internal/packet"
	"repro/internal/stats"
)

// trialParams carries the scenario knobs into one run or replica.
type trialParams struct {
	slaves       int
	ber          float64
	seed         uint64
	slots        uint64
	tsniff       int
	thold        int
	piconets     int     // coex/mixed scenarios: co-located piconets
	assessWindow int     // afh-adaptive: classification window in slots
	jamDuty      float64 // afh-adaptive: jammer duty cycle
	jamWidth     int     // afh-adaptive: jammed channels starting at 30
	bridges      int     // scatternet: bridge count (piconets = bridges+1)
	presence     float64 // scatternet/mesh: bridge presence duty cycle
}

// trialOutcome is the mergeable result of one scenario run: named
// outcome counters, the per-device RF-activity observations, and the
// first panic message if the replica crashed.
type trialOutcome struct {
	Out    stats.CounterMap
	Tx, Rx stats.Sample
	Panic  string
}

func (a *trialOutcome) merge(b *trialOutcome) {
	if a.Out == nil {
		a.Out = stats.CounterMap{}
	}
	a.Out.Merge(b.Out)
	a.Tx.Merge(&b.Tx)
	a.Rx.Merge(&b.Rx)
	if a.Panic == "" {
		a.Panic = b.Panic
	}
}

// scenarioInfo registers one -scenario value with the one-line summary
// the usage text prints.
type scenarioInfo struct {
	name    string
	summary string
}

// scenarioRegistry is the single source of truth for the scenario list:
// the -scenario flag help, the full usage text and the validator all
// derive from it (the README scenario table mirrors it). Keep an entry
// here for every case runScenario handles; TestScenarioRegistryRuns
// executes each one, so a registered scenario cannot rot.
var scenarioRegistry = []scenarioInfo{
	{"creation", "master + N slaves create a piconet (paper Fig 5)"},
	{"discovery", "inquiry finds the neighbours under noise (paper Fig 6)"},
	{"sniff", "slaves enter sniff mode, -tsniff anchors (paper Fig 9)"},
	{"hold", "slaves cycle repeating hold, -thold slots (paper Fig 12)"},
	{"park", "slaves parked on the 64-slot beacon channel"},
	{"transfer", "bulk DM3 transfer to every slave, ARQ vs -ber"},
	{"coex", "-piconets co-located piconets colliding on one medium"},
	{"coex2", "two co-located piconets"},
	{"coex4", "four co-located piconets"},
	{"afh-adaptive", "one piconet learns its AFH map under a -jam-duty jammer"},
	{"scatternet", "-bridges bridges chain -bridges+1 piconets, L2CAP forwarded end to end"},
	{"mixed", "-piconets piconets share the medium: SCO voice on the first, bulk ACL on the rest"},
	{"mesh", "3-piconet scatternet with crossing end-to-end flows in both directions"},
	{"dense", "-piconets piconets on a spatial office grid: path-loss range model, cell-sharded medium"},
}

// validScenario reports whether name is registered.
func validScenario(name string) bool {
	for _, s := range scenarioRegistry {
		if s.name == name {
			return true
		}
	}
	return false
}

// scenarioList renders the registered names for the -scenario flag help.
func scenarioList() string {
	names := make([]string, len(scenarioRegistry))
	for i, s := range scenarioRegistry {
		names[i] = s.name
	}
	return strings.Join(names, " | ")
}

// scenarioUsage renders the per-scenario summaries for the usage text.
func scenarioUsage() string {
	var sb strings.Builder
	sb.WriteString("Scenarios:\n")
	for _, s := range scenarioRegistry {
		fmt.Fprintf(&sb, "  %-13s %s\n", s.name, s.summary)
	}
	return sb.String()
}

// slaveProbe is the activity probe every piconet-scenario spec carries
// so the replica campaigns can fold slave RF activity.
var slaveProbe = netspec.Probe{Name: "slaves", Kind: netspec.ProbeSlaveActivity, Piconet: netspec.AllPiconets}

// bridgeProbe samples the bridges of the relay scenarios.
var bridgeProbe = netspec.Probe{Name: "bridges", Kind: netspec.ProbeBridgeActivity}

// buildSpec compiles one scenario's world description. Every scenario
// is a netspec.Spec literal plus the flag overrides in p — adding one
// means adding a case here and a registry entry above.
func buildSpec(scenario string, p trialParams) netspec.Spec {
	switch scenario {
	case "creation", "transfer":
		return netspec.Spec{
			Piconets: []netspec.Piconet{netspec.NewPiconet(p.slaves, netspec.WithR1PageScan())},
			Probes:   []netspec.Probe{slaveProbe},
		}
	case "discovery":
		return netspec.Spec{
			Piconets: []netspec.Piconet{netspec.NewPiconet(p.slaves, netspec.Detached(), netspec.WithR1PageScan())},
			Probes:   []netspec.Probe{slaveProbe},
		}
	case "sniff":
		// First slave stays active (as in Fig 9), the rest sniff.
		var modes []netspec.PowerMode
		first := 2
		if p.slaves == 1 {
			first = 1
		}
		for j := first; j <= p.slaves; j++ {
			modes = append(modes, netspec.PowerMode{
				Kind: netspec.SniffMode, Slave: j, TsniffSlots: p.tsniff,
			})
		}
		return netspec.Spec{
			Piconets: []netspec.Piconet{netspec.NewPiconet(p.slaves, netspec.WithR1PageScan())},
			Modes:    modes,
			Probes:   []netspec.Probe{slaveProbe},
		}
	case "hold":
		return netspec.Spec{
			Piconets: []netspec.Piconet{netspec.NewPiconet(p.slaves, netspec.WithR1PageScan())},
			Modes:    []netspec.PowerMode{{Kind: netspec.HoldMode, TholdSlots: p.thold}},
			Probes:   []netspec.Probe{slaveProbe},
		}
	case "park":
		return netspec.Spec{
			Piconets: []netspec.Piconet{netspec.NewPiconet(p.slaves, netspec.WithR1PageScan())},
			Modes:    []netspec.PowerMode{{Kind: netspec.ParkMode, BeaconSlots: 64}},
			Probes:   []netspec.Probe{slaveProbe},
		}
	case "coex", "coex2", "coex4":
		piconets := map[string]int{"coex2": 2, "coex4": 4}[scenario]
		if piconets == 0 {
			piconets = p.piconets
		}
		return netspec.Spec{
			Piconets: netspec.HomogeneousPiconets(piconets, p.slaves, netspec.WithTpoll(netspec.TpollNever)),
			Traffic:  []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
			Probes:   []netspec.Probe{slaveProbe},
		}
	case "afh-adaptive":
		lo, hi := jamBand(p)
		return netspec.Spec{
			Piconets: []netspec.Piconet{
				netspec.NewPiconet(p.slaves, netspec.WithAdaptiveAFH(p.assessWindow),
					netspec.WithTpoll(netspec.TpollNever)),
			},
			Traffic: []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
			Jammers: []netspec.Jammer{{Lo: lo, Hi: hi, Duty: p.jamDuty}},
			Probes:  []netspec.Probe{slaveProbe},
		}
	case "scatternet":
		piconets := p.bridges + 1
		return netspec.Spec{
			Piconets: netspec.HomogeneousPiconets(piconets, chainSlaves(p.slaves, piconets)),
			Bridges:  netspec.ChainBridges(piconets, netspec.WithPresence(p.presence)),
			Traffic: []netspec.Traffic{
				netspec.FlowTraffic(netspec.MasterName(0), netspec.SlaveName(piconets-1, 1)),
			},
			Probes: []netspec.Probe{bridgeProbe},
		}
	case "mixed":
		piconets := p.piconets // validateParams pins >= 2 for mixed
		// HV3 reserves one even slot in three, so at most three voice
		// streams interleave on the first piconet.
		pics := []netspec.Piconet{netspec.NewPiconet(min(p.slaves, 3))}
		traffic := []netspec.Traffic{netspec.VoiceTraffic(0, packet.TypeHV3)}
		for i := 1; i < piconets; i++ {
			pics = append(pics, netspec.NewPiconet(p.slaves, netspec.WithTpoll(netspec.TpollNever)))
			traffic = append(traffic, netspec.BulkTraffic(i))
		}
		return netspec.Spec{Piconets: pics, Traffic: traffic, Probes: []netspec.Probe{slaveProbe}}
	case "dense":
		spec := experiments.DensitySpec(p.piconets)
		spec.Probes = []netspec.Probe{slaveProbe}
		return spec
	case "mesh":
		return netspec.Spec{
			Piconets: netspec.HomogeneousPiconets(3, chainSlaves(p.slaves, 3)),
			Bridges:  netspec.ChainBridges(3, netspec.WithPresence(p.presence)),
			Traffic: []netspec.Traffic{
				netspec.FlowTraffic(netspec.MasterName(0), netspec.SlaveName(2, 1)),
				netspec.FlowTraffic(netspec.MasterName(2), netspec.SlaveName(0, 1)),
			},
			Probes: []netspec.Probe{bridgeProbe},
		}
	}
	panic(fmt.Sprintf("unknown scenario %q", scenario))
}

// chainSlaves clamps the slave count so a chain master can host its
// slaves plus one bridge (chain ends) or two (middle masters) within
// the 7 active members a piconet supports.
func chainSlaves(slaves, piconets int) int {
	maxSlaves := 6
	if piconets > 2 {
		maxSlaves = 5
	}
	return min(slaves, maxSlaves)
}

// jamBand resolves the afh-adaptive jammer band from the flags.
func jamBand(p trialParams) (lo, hi int) {
	lo = 30
	hi = lo + max(p.jamWidth, 1) - 1
	if hi >= hop.NumChannels {
		hi = hop.NumChannels - 1
	}
	return lo, hi
}

// runScenario drives one scenario on its own simulation world: compile
// the spec, build, start traffic, run the measurement window, read the
// unified metrics. logf receives the narrative a single interactive
// run prints (nil for the silent replicas of a -trials campaign); the
// returned outcome carries the statistics either way. Setup failures
// under heavy noise panic, as BuildPiconet does — the -trials path
// recovers per replica, a single run crashes loudly.
func runScenario(scenario string, seed uint64, p trialParams, trace io.Writer, logf func(string, ...any)) (*core.Simulation, trialOutcome) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var out trialOutcome
	out.Out = stats.CounterMap{}

	s := core.NewSimulation(core.Options{Seed: seed, BER: p.ber, TraceTo: trace})
	w, err := netspec.Build(s, buildSpec(scenario, p))
	if err != nil {
		panic(fmt.Sprintf("btsim: %v", err))
	}
	out.Out.Observe("setup_ok", true)

	var m *netspec.Metrics
	switch scenario {
	case "discovery":
		runDiscovery(w, p, logf, &out)
	case "creation":
		pic := w.Piconets[0]
		logf("built piconet: master + %d slaves (paper Fig 5 scenario)\n", len(pic.Slaves))
		for _, l := range pic.Links {
			logf("  connected %v as AM_ADDR %d by slot %d\n", l.Peer, l.AMAddr, s.Now())
		}
		pic.Links[0].Send([]byte("hello piconet"), packet.LLIDL2CAPStart)
		s.RunSlots(p.slots)
	case "sniff":
		logf("piconet up; putting %d slave(s) into SNIFF (Tsniff=%d slots) — paper Fig 9\n",
			max(p.slaves-1, 1), p.tsniff)
		w.ResetMetrics()
		s.RunSlots(p.slots)
	case "hold":
		logf("piconet up; slaves entering repeating HOLD (Thold=%d slots) — paper Fig 12 workload\n", p.thold)
		w.ResetMetrics()
		s.RunSlots(p.slots)
	case "park":
		logf("piconet up; parking every slave (beacon every 64 slots)\n")
		w.ResetMetrics()
		s.RunSlots(p.slots)
	case "transfer":
		m = runTransfer(w, p, logf, &out)
	case "coex", "coex2", "coex4":
		m = runCoex(w, p, logf, &out)
	case "afh-adaptive":
		m = runAdaptive(w, p, logf, &out)
	case "scatternet":
		m = runChain(w, p, logf, &out, true)
	case "mixed":
		m = runMixed(w, p, logf, &out)
	case "dense":
		m = runDense(w, p, logf, &out)
	case "mesh":
		m = runChain(w, p, logf, &out, false)
	}

	if m == nil {
		mm := w.Metrics()
		m = &mm
	}
	addActivity(m, &out)
	return s, out
}

// runDiscovery drives the inquiry procedure over the detached world.
func runDiscovery(w *netspec.World, p trialParams, logf func(string, ...any), out *trialOutcome) {
	pic := w.Piconets[0]
	for _, d := range pic.Slaves {
		d.StartInquiryScan()
	}
	logf("master entering INQUIRY; slaves in INQUIRY SCAN\n")
	found := 0
	pic.Master.StartInquiry(4096, len(pic.Slaves), func(rs []baseband.InquiryResult, ok bool) {
		logf("inquiry complete after %d slots: %d device(s) found (ok=%v)\n",
			pic.Master.InquirySlots(), len(rs), ok)
		for _, r := range rs {
			logf("  found %v class=%06X clkn=%d\n", r.Addr, r.Class, r.CLKN)
		}
		found = len(rs)
		out.Out.Observe("inquiry_ok", ok)
	})
	w.Sim.RunSlots(5000)
	out.Out.Observe("all_found", found == len(pic.Slaves))
}

// runTransfer pushes one DM3 bulk chunk to every slave and verifies
// arrival through the metrics surface.
func runTransfer(w *netspec.World, p trialParams, logf func(string, ...any), out *trialOutcome) *netspec.Metrics {
	pic := w.Piconets[0]
	const chunk = 1024
	for _, l := range pic.Links {
		l.PacketType = packet.TypeDM3
		l.Send(make([]byte, chunk), packet.LLIDL2CAPStart)
	}
	logf("piconet up; sending %d bytes to each of %d slaves (DM3, BER from -ber)\n", chunk, len(pic.Links))
	w.Sim.RunSlots(p.slots)
	m := w.Metrics()
	logf("delivered %d/%d bytes; master retransmissions: %d\n",
		m.Bytes, chunk*len(pic.Links), m.Retransmits)
	out.Out.Observe("all_delivered", m.Bytes == chunk*len(pic.Links))
	return &m
}

// runCoex drives the co-located-piconet scenarios and reports
// per-piconet goodput plus the attributed collision counts.
func runCoex(w *netspec.World, p trialParams, logf func(string, ...any), out *trialOutcome) *netspec.Metrics {
	logf("built %d piconets (1 master + %d slave(s) each) on one shared 79-channel medium\n",
		len(w.Piconets), len(w.Piconets[0].Slaves))
	w.Start()
	w.Sim.RunSlots(64)
	w.ResetMetrics()
	w.Sim.RunSlots(p.slots)
	m := w.Metrics()
	for i := range w.Piconets {
		logf("  piconet %d: %.1f kbps goodput\n", i, m.PiconetGoodputKbps(i))
	}
	logf("collisions over %d slots: %d inter-piconet, %d intra-piconet; %d master retransmissions\n",
		m.Slots, m.Inter, m.Intra, m.Retransmits)
	if ch, count := m.WorstChannel(); ch >= 0 {
		logf("most-collided RF channel this window: %d (%d collisions)\n", ch, count)
	}
	delivered := true
	for _, b := range m.PerPiconet {
		delivered = delivered && b > 0
	}
	out.Out.Observe("all_piconets_delivered", delivered)
	out.Out.Observe("inter_collisions_seen", m.Inter > 0)
	return &m
}

// runAdaptive runs one piconet under an 802.11-style jammer with
// adaptive channel classification enabled and reports the learned map
// against the known jammed band.
func runAdaptive(w *netspec.World, p trialParams, logf func(string, ...any), out *trialOutcome) *netspec.Metrics {
	lo, hi := jamBand(p)
	logf("piconet up under a %d-channel jammer (channels %d-%d, duty %.0f%%); assessing every %d slots\n",
		hi-lo+1, lo, hi, p.jamDuty*100, p.assessWindow)
	w.Start()
	w.Sim.RunSlots(netspec.ConvergenceSlots(p.assessWindow))
	w.ResetMetrics()
	w.Sim.RunSlots(p.slots)
	pic := w.Piconets[0]
	cm := pic.CurrentMap()
	excluded := 0
	if cm != nil {
		for ch := lo; ch <= hi; ch++ {
			if !cm.Used(ch) {
				excluded++
			}
		}
		logf("learned channel map after %d update(s): %d/%d channels in use, %d/%d jammed channels excluded\n",
			pic.MapUpdates, cm.N(), hop.NumChannels, excluded, hi-lo+1)
	} else {
		logf("classifier never narrowed the hop set (%d updates)\n", pic.MapUpdates)
	}
	m := w.Metrics()
	logf("goodput over the %d-slot measurement window: %.1f kbps\n", m.Slots, m.GoodputKbps())
	out.Out.Observe("map_installed", cm != nil)
	out.Out.Observe("jam_band_excluded", cm != nil && excluded >= (hi-lo+1)*8/10)
	return &m
}

// runChain drives the bridged scenarios (scatternet chain and mesh
// cross-traffic) and reports the relay statistics; chain additionally
// narrates the single canonical flow.
func runChain(w *netspec.World, p trialParams, logf func(string, ...any), out *trialOutcome, chain bool) *netspec.Metrics {
	logf("built a %d-piconet chain (1 master + %d slave(s) each) joined by %d bridge(s); presence duty %.0f%%, period %d slots\n",
		len(w.Piconets), len(w.Piconets[0].Slaves), len(w.Bridges), p.presence*100, 256)
	w.Start()
	for _, f := range w.Flows {
		logf("flow: %s -> %s, store-and-forward through every bridge\n", f.From, f.To)
	}
	w.Sim.RunSlots(uint64(3 * 256))
	w.ResetMetrics()
	w.Sim.RunSlots(p.slots)
	m := w.Metrics()
	logf("delivered %d bytes end-to-end over %d slots (%.1f kbps goodput)\n",
		m.EndToEndBytes, m.Slots, m.GoodputKbps())
	for _, f := range m.Flows {
		logf("  %s -> %s: %d bytes, mean latency %.0f slots\n",
			f.From, f.To, f.DeliveredBytes, f.Latency.Mean())
	}
	logf("bridges forwarded %d frame(s), dropped %d; store-and-forward latency %.0f slots mean\n",
		m.ForwardedFrames, m.DroppedFrames, m.FwdLatency.Mean())
	logf("bridge queue depth: %.1f mean (time-weighted), %d max; %d membership retunes\n",
		m.Queue.Mean, m.Queue.Max, m.MembershipSwitches)
	if chain {
		out.Out.Observe("delivered_across_piconets", m.EndToEndBytes > 0)
	} else {
		delivered := true
		for _, f := range m.Flows {
			delivered = delivered && f.DeliveredBytes > 0
		}
		out.Out.Observe("both_flows_delivered", delivered)
	}
	out.Out.Observe("no_route_misses", m.RouteMisses == 0)
	out.Out.Observe("radio_timeshared", m.MembershipSwitches > 0)
	return &m
}

// runDense drives the spatial office-floor scenario: piconets on a
// grid, delivery and interference governed by the path-loss range
// model, the medium sharded into cells. Unlike coex, piconets far
// enough apart here reuse the band instead of colliding.
func runDense(w *netspec.World, p trialParams, logf func(string, ...any), out *trialOutcome) *netspec.Metrics {
	logf("built %d piconets on a spatial office grid: %gm pitch, %gm delivery range, %gm interference reach\n",
		len(w.Piconets), float64(experiments.DensitySpacingM), float64(experiments.DensityRangeM),
		float64(experiments.DensityInterferenceM))
	if pos, ok := w.Sim.Ch.PositionOf(netspec.MasterName(len(w.Piconets) - 1)); ok {
		logf("last master sits at (%.0f, %.0f) m\n", pos.X, pos.Y)
	}
	w.Start()
	w.Sim.RunSlots(64)
	w.ResetMetrics()
	w.Sim.RunSlots(p.slots)
	m := w.Metrics()
	total := 0.0
	for i := range w.Piconets {
		total += m.PiconetGoodputKbps(i)
	}
	logf("aggregate goodput %.1f kbps (%.1f kbps per link); collisions: %d inter-piconet, %d intra-piconet\n",
		total, total/float64(len(w.Piconets)), m.Inter, m.Intra)
	delivered := true
	for _, b := range m.PerPiconet {
		delivered = delivered && b > 0
	}
	out.Out.Observe("spatial_medium", w.Sim.Ch.Spatial())
	out.Out.Observe("all_piconets_delivered", delivered)
	return &m
}

// runMixed drives voice and bulk piconets on one medium and reports
// both service classes from the one metrics read.
func runMixed(w *netspec.World, p trialParams, logf func(string, ...any), out *trialOutcome) *netspec.Metrics {
	logf("built %d piconets on one medium: piconet 0 carries HV3 voice to %d slave(s), the rest pump bulk ACL\n",
		len(w.Piconets), len(w.Piconets[0].Slaves))
	w.Start()
	w.Sim.RunSlots(64)
	w.ResetMetrics()
	w.Sim.RunSlots(p.slots)
	m := w.Metrics()
	voiceOK := len(m.Voice) > 0
	for _, v := range m.Voice {
		rate, clean := 0.0, 0.0
		if v.TxFrames > 0 {
			rate = float64(v.RxFrames) / float64(v.TxFrames)
			clean = float64(v.BitPerfect) / float64(v.TxFrames)
		}
		logf("  voice p%d.slave%d: %d/%d frames delivered (%.1f%%), %.1f%% bit-perfect\n",
			v.Piconet, v.Slave, v.RxFrames, v.TxFrames, rate*100, clean*100)
		voiceOK = voiceOK && v.RxFrames > 0
	}
	bulkOK := true
	for i := 1; i < len(w.Piconets); i++ {
		logf("  bulk  piconet %d: %.1f kbps goodput\n", i, m.PiconetGoodputKbps(i))
		bulkOK = bulkOK && m.PerPiconet[i] > 0
	}
	logf("collisions over %d slots: %d inter-piconet, %d intra-piconet\n", m.Slots, m.Inter, m.Intra)
	out.Out.Observe("voice_delivered", voiceOK)
	out.Out.Observe("bulk_delivered", bulkOK)
	out.Out.Observe("inter_collisions_seen", m.Inter > 0)
	return &m
}

// addActivity folds the world's activity probes into the outcome,
// reusing the metrics the scenario runner already read.
func addActivity(m *netspec.Metrics, out *trialOutcome) {
	for _, name := range []string{"slaves", "bridges"} {
		if pm, ok := m.Probes[name]; ok {
			out.Tx.Merge(&pm.Tx)
			out.Rx.Merge(&pm.Rx)
		}
	}
}

// validateParams rejects flag values that would wrap or hang a run
// (negative windows convert to huge uint64 horizons) or that the
// scenario cannot honour.
func validateParams(scenario string, p trialParams) error {
	if p.slaves < 1 || p.slaves > 7 {
		return fmt.Errorf("-slaves must be in 1..7, got %d", p.slaves)
	}
	if scenario == "mixed" && p.piconets < 2 {
		return fmt.Errorf("-scenario mixed needs -piconets >= 2 (voice + at least one bulk piconet), got %d", p.piconets)
	}
	if p.assessWindow < 1 {
		return fmt.Errorf("-assess-window must be >= 1, got %d", p.assessWindow)
	}
	if p.piconets < 1 {
		return fmt.Errorf("-piconets must be >= 1, got %d", p.piconets)
	}
	if p.jamWidth < 1 || p.jamWidth > hop.NumChannels {
		return fmt.Errorf("-jam-width must be in 1..%d, got %d", hop.NumChannels, p.jamWidth)
	}
	if p.jamDuty < 0 || p.jamDuty > 1 {
		return fmt.Errorf("-jam-duty must be in 0..1, got %g", p.jamDuty)
	}
	if p.tsniff < 1 || p.thold < 1 {
		return fmt.Errorf("-tsniff and -thold must be >= 1, got %d and %d", p.tsniff, p.thold)
	}
	if p.bridges < 1 || p.bridges > 6 {
		return fmt.Errorf("-bridges must be in 1..6, got %d", p.bridges)
	}
	if p.presence <= 0 || p.presence > 1 {
		return fmt.Errorf("-presence must be in (0,1], got %g", p.presence)
	}
	return nil
}
