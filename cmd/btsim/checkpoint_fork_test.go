package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/sim"
)

// memTracer records every signal transition in memory. Shard workers
// may emit changes concurrently inside one conservative window, so the
// record order is schedule-dependent — the harness compares sorted
// records, which pins the set of (time, signal, value) transitions
// without pinning the intra-window callback order.
type memTracer struct {
	mu      sync.Mutex
	names   []string
	records []traceRecord
}

type traceRecord struct {
	t    sim.Time
	line string
}

func (m *memTracer) Declare(name, kind string, width int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.names = append(m.names, name)
	return len(m.names) - 1
}

func (m *memTracer) Change(t sim.Time, h int, v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records = append(m.records, traceRecord{t, fmt.Sprintf("%d %s %v", t, m.names[h], v)})
}

// suffix returns the sorted transitions strictly after cut. Records at
// the cut instant are pre-capture work on the straight arm and
// declaration artifacts on the restored arm; everything later is the
// behaviour the fork must reproduce.
func (m *memTracer) suffix(cut sim.Time) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, r := range m.records {
		if r.t > cut {
			out = append(out, r.line)
		}
	}
	sort.Strings(out)
	return out
}

// TestCheckpointForkMatrix is the checkpoint feature's headline pin:
// for the dense, mixed and mesh scenarios — spatial medium, SCO voice
// beside bulk ACL, bridged scatternet flows — under shard counts 1 and
// 4, settling to S, snapshotting, restoring and running to T must be
// byte-identical to running straight to T, in both World.Metrics and
// the signal trace after S. A second fork from the same bytes stays
// byte-equal to the first; a fork under a different seed diverges.
// Both arms are traced (tracing disables event-eliding fast paths, so
// an untraced straight arm would not be the same schedule). Runs under
// -race in its own CI step.
func TestCheckpointForkMatrix(t *testing.T) {
	p := trialParams{
		slaves: 2, ber: 1.0 / 500, seed: 1,
		tsniff: 50, thold: 100,
		piconets: 2, assessWindow: 500, jamDuty: 0.9, jamWidth: 23,
		bridges: 1, presence: 0.8,
	}
	const settle, rest = 400, 600

	for _, scenario := range []string{"dense", "mixed", "mesh"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", scenario, shards), func(t *testing.T) {
				opts := core.Options{Seed: p.seed, BER: p.ber, Shards: shards}
				spec := buildSpec(scenario, p)

				// Straight arm: settle, capture, keep running to T.
				tr := &memTracer{}
				s := core.NewSimulation(opts)
				s.K.AddTracer(tr)
				w, err := netspec.Build(s, spec)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				w.Start()
				s.RunSlots(settle)
				ck, err := w.Snapshot()
				if err != nil {
					t.Fatalf("Snapshot: %v", err)
				}
				enc, err := ck.Encode()
				if err != nil {
					t.Fatalf("Encode: %v", err)
				}
				cut := ck.Core.At
				w.ResetMetrics()
				s.RunSlots(rest)
				straight := metricsJSON(t, w)

				fork := func(forkSeed uint64) (string, []string) {
					dck, err := netspec.DecodeCheckpoint(enc)
					if err != nil {
						t.Fatalf("DecodeCheckpoint: %v", err)
					}
					ftr := &memTracer{}
					fs := core.NewSimulation(opts)
					fw, err := netspec.RestoreWorld(fs, dck, core.RestoreOptions{ForkSeed: forkSeed, Tracer: ftr})
					if err != nil {
						t.Fatalf("RestoreWorld: %v", err)
					}
					fw.ResetMetrics()
					fs.RunSlots(rest)
					return metricsJSON(t, fw), ftr.suffix(cut)
				}

				restored, restoredTrace := fork(0)
				if restored != straight {
					t.Errorf("restored metrics diverge from straight run:\n--- straight\n%s\n--- restored\n%s", straight, restored)
				}
				straightTrace := tr.suffix(cut)
				if len(straightTrace) == 0 {
					t.Fatal("straight arm recorded no post-capture transitions; the trace comparison is vacuous")
				}
				if a, b := len(straightTrace), len(restoredTrace); a != b {
					t.Errorf("trace suffix lengths differ: straight %d, restored %d", a, b)
				} else {
					for i := range straightTrace {
						if straightTrace[i] != restoredTrace[i] {
							t.Errorf("trace suffix diverges at %d:\n  straight: %s\n  restored: %s",
								i, straightTrace[i], restoredTrace[i])
							break
						}
					}
				}

				again, _ := fork(0)
				if again != restored {
					t.Error("two identical forks diverge")
				}
				other, _ := fork(7)
				if other == restored {
					t.Error("fork seed 7 did not diverge from seed 0")
				}
			})
		}
	}
}

func metricsJSON(t *testing.T, w *netspec.World) string {
	t.Helper()
	b, err := json.Marshal(w.Metrics())
	if err != nil {
		t.Fatalf("Metrics marshal: %v", err)
	}
	return string(b)
}
