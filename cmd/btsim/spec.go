package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/netspec"
	"repro/internal/runner"
	"repro/internal/simd"
)

// runSpecFile runs a world described by a netspec Spec JSON file (see
// examples/specs/) instead of a named scenario, under the exact replica
// discipline the btsimd service uses. A single run prints one Metrics
// window; -trials N prints the campaign Result over seeds seed..seed+N-1.
// Either way the JSON is byte-identical to what the service returns for
// the same spec, seeds and horizon — the CLI and the server share
// simd.RunReplica.
func runSpecFile(path string, seed, slots, settle uint64, trials, workers int, fork bool, progress func(string, int, int)) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("btsim: %v", err)
	}
	var spec netspec.Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fatalf("btsim: decoding %s: %v", path, err)
	}
	if err := spec.Validate(); err != nil {
		fatalf("btsim: %s: %v", path, err)
	}

	if trials <= 1 {
		var m netspec.Metrics
		if fork {
			// One settled world, one fork with seed 0: the straight
			// continuation of the checkpoint — same discipline as
			// replica 0 of a forked campaign.
			ck, err := simd.SettleCheckpoint(spec, seed, settle)
			if err != nil {
				fatalf("btsim: %v", err)
			}
			if m, err = simd.ForkReplica(nil, ck, 0, slots); err != nil {
				fatalf("btsim: %v", err)
			}
		} else {
			var err error
			if m, err = simd.RunReplica(nil, spec, seed, settle, slots); err != nil {
				fatalf("btsim: %v", err)
			}
		}
		printJSON(m)
		return
	}
	res, err := simd.Run(context.Background(), simd.Request{
		Spec:        &spec,
		Seeds:       simd.SeedRange{First: seed, Count: trials},
		Slots:       slots,
		SettleSlots: settle,
		Fork:        fork,
	}, runner.Config{Workers: workers, Progress: progress})
	if err != nil {
		fatalf("btsim: %v", err)
	}
	printJSON(res)
}

func printJSON(v any) {
	out, err := json.Marshal(v)
	if err != nil {
		fatalf("btsim: encoding result: %v", err)
	}
	fmt.Printf("%s\n", out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
