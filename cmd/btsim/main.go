// Command btsim runs interactive scenarios on the Bluetooth system-level
// model and reports protocol events and RF-activity summaries; with -vcd
// it also dumps the waveforms (enable_tx_RF / enable_rx_RF / state) the
// paper's Figs 5 and 9 show.
//
// With -trials N (N > 1) the scenario instead runs as N independent
// replicas — one fresh simulation per seed — fanned out across the
// internal/runner worker pool, and btsim reports the merged outcome and
// RF-activity statistics.
//
// With -spec file.json the world comes from a netspec Spec JSON file
// (see examples/specs/) instead of a named scenario: btsim runs -slots
// measured slots from -seed and prints the Metrics window as JSON —
// with -trials N, the whole campaign result over N seeds — under the
// same replica discipline as the btsimd service, so the output is
// byte-identical to the corresponding service response fields. -settle
// adds warm-up slots before the measurement window; -fork settles once,
// snapshots the world at a quiescent slot edge, and forks the replicas
// from the checkpoint instead of rebuilding and re-settling each one.
//
// The scenario list is registered in scenarios.go (scenarioRegistry) and
// rendered into the usage text at run time, so `btsim -h` always
// enumerates every scenario the binary actually accepts — run it for
// the authoritative list and one-line summaries.
//
// Usage:
//
//	btsim -scenario creation -slaves 3 -vcd creation.vcd
//	btsim -scenario creation -ber 0.01 -trials 200 -workers 8
//	btsim -scenario coex -piconets 6 -trials 50 -workers 8
//	btsim -scenario afh-adaptive -jam-duty 0.9 -assess-window 2000
//	btsim -scenario scatternet -bridges 2 -presence 0.8
//	btsim -scenario mixed -piconets 3
//	btsim -scenario mesh -presence 0.8
//	btsim -spec examples/specs/office-floor.json -slots 20000 -trials 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	scenario := flag.String("scenario", "creation", scenarioList())
	specPath := flag.String("spec", "", "run a netspec Spec JSON file instead of a named scenario (prints Metrics JSON; with -trials, the campaign result)")
	slaves := flag.Int("slaves", 3, "number of slaves in the piconet")
	ber := flag.Float64("ber", 0, "channel bit error rate")
	seed := flag.Uint64("seed", 1, "random seed")
	vcdPath := flag.String("vcd", "", "write waveforms (VCD) to this file")
	slots := flag.Uint64("slots", 2000, "extra slots to run after setup")
	tsniff := flag.Int("tsniff", 100, "Tsniff in slots (sniff scenario)")
	thold := flag.Int("thold", 400, "Thold in slots (hold scenario)")
	piconets := flag.Int("piconets", 2, "co-located piconets (coex scenario)")
	assessWindow := flag.Int("assess-window", 2000, "channel-assessment window in slots (afh-adaptive scenario)")
	jamDuty := flag.Float64("jam-duty", 0.9, "jammer duty cycle (afh-adaptive scenario)")
	jamWidth := flag.Int("jam-width", 23, "jammed channels starting at channel 30 (afh-adaptive scenario)")
	bridges := flag.Int("bridges", 1, "scatternet bridges; the chain has bridges+1 piconets (scatternet scenario)")
	presence := flag.Float64("presence", 0.8, "bridge presence duty cycle in (0,1] (scatternet scenario)")
	settle := flag.Uint64("settle", 0, "warm-up slots before the measurement window opens (-spec only)")
	fork := flag.Bool("fork", false, "settle once, snapshot, and fork the replicas from the checkpoint instead of rebuilding each world (-spec only)")
	trials := flag.Int("trials", 1, "replicate the scenario this many times through the parallel runner")
	workers := flag.Int("workers", 0, "worker pool size for -trials (0 = GOMAXPROCS, -1 = serial)")
	shards := flag.Int("shards", 1, "kernel event-queue shards per world (output is identical for any value)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s", scenarioUsage())
	}
	flag.Parse()

	core.SetDefaultShards(*shards)

	if *specPath != "" {
		runSpecFile(*specPath, *seed, *slots, *settle, *trials, *workers, *fork, trialProgress())
		return
	}
	if *fork || *settle != 0 {
		fmt.Fprintln(os.Stderr, "btsim: -fork and -settle apply to -spec runs only")
		os.Exit(1)
	}

	p := trialParams{
		slaves: *slaves, ber: *ber, seed: *seed,
		slots: *slots, tsniff: *tsniff, thold: *thold,
		piconets: *piconets, assessWindow: *assessWindow,
		jamDuty: *jamDuty, jamWidth: *jamWidth,
		bridges: *bridges, presence: *presence,
	}
	if err := validateParams(*scenario, p); err != nil {
		fmt.Fprintf(os.Stderr, "btsim: %v\n", err)
		os.Exit(1)
	}

	if *trials > 1 {
		if *vcdPath != "" {
			fmt.Fprintln(os.Stderr, "btsim: -vcd is single-run only; ignoring it for -trials")
		}
		runTrials(*scenario, *trials, *workers, p, trialProgress())
		return
	}

	if !validScenario(*scenario) {
		fmt.Fprintf(os.Stderr, "btsim: unknown scenario %q\n", *scenario)
		os.Exit(1)
	}

	var trace io.Writer
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		trace = f
	}

	s, _ := runScenario(*scenario, *seed, p, trace, func(format string, args ...any) {
		fmt.Printf(format, args...)
	})
	report(s)

	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "btsim: closing trace: %v\n", err)
		os.Exit(1)
	}
	if *vcdPath != "" {
		fmt.Printf("waveforms written to %s\n", *vcdPath)
	}
}

// report prints the RF-activity summary of every device.
func report(s *core.Simulation) {
	fmt.Printf("\n%-8s %-12s %10s %10s %8s\n", "device", "state", "tx_act", "rx_act", "tx_pkts")
	for _, d := range s.Devices() {
		tx, rx := core.Activity(d)
		fmt.Printf("%-8s %-12s %9.3f%% %9.3f%% %8d\n",
			d.Name(), d.State(), tx*100, rx*100, d.Counters.TxPackets)
	}
}
