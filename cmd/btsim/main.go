// Command btsim runs interactive scenarios on the Bluetooth system-level
// model and reports protocol events and RF-activity summaries; with -vcd
// it also dumps the waveforms (enable_tx_RF / enable_rx_RF / state) the
// paper's Figs 5 and 9 show.
//
// Usage:
//
//	btsim -scenario creation -slaves 3 -vcd creation.vcd
//	btsim -scenario discovery -ber 0.01
//	btsim -scenario sniff -tsniff 100
//	btsim -scenario hold -thold 400
//	btsim -scenario park
//	btsim -scenario transfer -ber 0.003
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/packet"
)

func main() {
	scenario := flag.String("scenario", "creation", "creation | discovery | sniff | hold | park | transfer")
	slaves := flag.Int("slaves", 3, "number of slaves in the piconet")
	ber := flag.Float64("ber", 0, "channel bit error rate")
	seed := flag.Uint64("seed", 1, "random seed")
	vcdPath := flag.String("vcd", "", "write waveforms (VCD) to this file")
	slots := flag.Uint64("slots", 2000, "extra slots to run after setup")
	tsniff := flag.Int("tsniff", 100, "Tsniff in slots (sniff scenario)")
	thold := flag.Int("thold", 400, "Thold in slots (hold scenario)")
	flag.Parse()

	var trace io.Writer
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		trace = f
	}

	s := core.NewSimulation(core.Options{Seed: *seed, BER: *ber, TraceTo: trace})
	master := s.AddDevice("master", baseband.Config{
		Addr: baseband.BDAddr{LAP: 0x101000, UAP: 0x01, NAP: 0x0001},
	})
	var devs []*baseband.Device
	for i := 0; i < *slaves; i++ {
		devs = append(devs, s.AddDevice(fmt.Sprintf("slave%d", i+1), baseband.Config{
			Addr: baseband.BDAddr{LAP: 0x202000 + uint32(i)*0x10100, UAP: uint8(i + 2), NAP: 0x0002},
		}))
	}

	switch *scenario {
	case "discovery":
		runDiscovery(s, master, devs)
	case "creation":
		runCreation(s, master, devs, *slots)
	case "sniff":
		runSniff(s, master, devs, *tsniff, *slots)
	case "hold":
		runHold(s, master, devs, *thold, *slots)
	case "park":
		runPark(s, master, devs, *slots)
	case "transfer":
		runTransfer(s, master, devs, *slots)
	default:
		fmt.Fprintf(os.Stderr, "btsim: unknown scenario %q\n", *scenario)
		os.Exit(1)
	}

	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "btsim: closing trace: %v\n", err)
		os.Exit(1)
	}
	if *vcdPath != "" {
		fmt.Printf("waveforms written to %s\n", *vcdPath)
	}
}

// report prints the RF-activity summary of every device.
func report(s *core.Simulation) {
	fmt.Printf("\n%-8s %-12s %10s %10s %8s\n", "device", "state", "tx_act", "rx_act", "tx_pkts")
	for _, d := range s.Devices() {
		tx, rx := core.Activity(d)
		fmt.Printf("%-8s %-12s %9.3f%% %9.3f%% %8d\n",
			d.Name(), d.State(), tx*100, rx*100, d.Counters.TxPackets)
	}
}

func runDiscovery(s *core.Simulation, master *baseband.Device, devs []*baseband.Device) {
	for _, d := range devs {
		d.StartInquiryScan()
	}
	fmt.Println("master entering INQUIRY; slaves in INQUIRY SCAN")
	master.StartInquiry(4096, len(devs), func(rs []baseband.InquiryResult, ok bool) {
		fmt.Printf("inquiry complete after %d slots: %d device(s) found (ok=%v)\n",
			master.InquirySlots(), len(rs), ok)
		for _, r := range rs {
			fmt.Printf("  found %v class=%06X clkn=%d\n", r.Addr, r.Class, r.CLKN)
		}
	})
	s.RunSlots(5000)
	report(s)
}

func runCreation(s *core.Simulation, master *baseband.Device, devs []*baseband.Device, extra uint64) {
	fmt.Printf("building piconet: master + %d slaves (paper Fig 5 scenario)\n", len(devs))
	links := s.BuildPiconet(master, devs...)
	for _, l := range links {
		fmt.Printf("  connected %v as AM_ADDR %d at slot %d\n", l.Peer, l.AMAddr, s.Now())
	}
	links[0].Send([]byte("hello piconet"), packet.LLIDL2CAPStart)
	s.RunSlots(extra)
	report(s)
}

func runSniff(s *core.Simulation, master *baseband.Device, devs []*baseband.Device, tsniff int, extra uint64) {
	links := s.BuildPiconet(master, devs...)
	fmt.Printf("piconet up; putting %d slave(s) into SNIFF (Tsniff=%d slots) — paper Fig 9\n",
		max(len(links)-1, 1), tsniff)
	// First slave stays active (as in Fig 9), the rest sniff.
	for i := 1; i < len(links); i++ {
		links[i].EnterSniff(tsniff, 2, 0)
		devs[i].MasterLink().EnterSniff(tsniff, 2, 0)
	}
	if len(links) == 1 {
		links[0].EnterSniff(tsniff, 2, 0)
		devs[0].MasterLink().EnterSniff(tsniff, 2, 0)
	}
	for _, d := range devs {
		core.ResetMeters(d)
	}
	s.RunSlots(extra)
	report(s)
}

func runHold(s *core.Simulation, master *baseband.Device, devs []*baseband.Device, thold int, extra uint64) {
	links := s.BuildPiconet(master, devs...)
	fmt.Printf("piconet up; slaves entering repeating HOLD (Thold=%d slots) — paper Fig 12 workload\n", thold)
	for i, l := range links {
		l.EnterHoldRepeating(thold)
		devs[i].MasterLink().EnterHoldRepeating(thold)
	}
	for _, d := range devs {
		core.ResetMeters(d)
	}
	s.RunSlots(extra)
	report(s)
}

func runPark(s *core.Simulation, master *baseband.Device, devs []*baseband.Device, extra uint64) {
	links := s.BuildPiconet(master, devs...)
	fmt.Println("piconet up; parking every slave (beacon every 64 slots)")
	for i, l := range links {
		l.EnterPark(64)
		devs[i].MasterLink().EnterPark(64)
	}
	for _, d := range devs {
		core.ResetMeters(d)
	}
	s.RunSlots(extra)
	report(s)
}

func runTransfer(s *core.Simulation, master *baseband.Device, devs []*baseband.Device, extra uint64) {
	links := s.BuildPiconet(master, devs...)
	total := 0
	for _, d := range devs {
		d.OnData = func(_ *baseband.Link, p []byte, _ uint8) { total += len(p) }
	}
	const chunk = 1024
	for _, l := range links {
		l.PacketType = packet.TypeDM3
		l.Send(make([]byte, chunk), packet.LLIDL2CAPStart)
	}
	fmt.Printf("piconet up; sending %d bytes to each of %d slaves (DM3, BER from -ber)\n", chunk, len(links))
	s.RunSlots(extra)
	fmt.Printf("delivered %d/%d bytes; master retransmissions: %d\n",
		total, chunk*len(links), master.Counters.Retransmits)
	report(s)
}
