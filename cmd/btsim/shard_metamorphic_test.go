package main

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/stats"
)

// Metamorphic determinism matrix for the sharded conservative kernel:
// the dense, mixed and mesh scenarios — the three workloads that
// exercise many piconets, bridged chains and the spatial medium — must
// produce identical World.Metrics() for every combination of kernel
// shard count {1, 2, 4, 8} and GOMAXPROCS {1, 4}. Shard assignment,
// window placement and forked queue refresh are implementation details;
// any metric that moves with them is a determinism bug. Runs under
// -race in its own CI step (GOMAXPROCS=4 forces the forked refresh
// path even on single-core runners).
func TestShardMetamorphicMatrix(t *testing.T) {
	p := trialParams{
		slaves: 2, ber: 0, seed: 1, slots: 600,
		tsniff: 50, thold: 100,
		piconets: 2, assessWindow: 500, jamDuty: 0.9, jamWidth: 23,
		bridges: 1, presence: 0.8,
	}
	noop := func(string, ...any) {}
	run := func(scenario string, shards, procs int) netspec.Metrics {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		s := core.NewSimulation(core.Options{Seed: p.seed, BER: p.ber, Shards: shards})
		w, err := netspec.Build(s, buildSpec(scenario, p))
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		var out trialOutcome
		out.Out = stats.CounterMap{}
		var m *netspec.Metrics
		switch scenario {
		case "dense":
			m = runDense(w, p, noop, &out)
		case "mixed":
			m = runMixed(w, p, noop, &out)
		case "mesh":
			m = runChain(w, p, noop, &out, false)
		}
		if st := s.K.ShardStats(); shards > 1 && st.Windows == 0 {
			t.Fatalf("%s shards=%d: conservative windowing never engaged", scenario, shards)
		}
		return *m
	}
	for _, scenario := range []string{"dense", "mixed", "mesh"} {
		t.Run(scenario, func(t *testing.T) {
			want := run(scenario, 1, 1)
			for _, shards := range []int{1, 2, 4, 8} {
				for _, procs := range []int{1, 4} {
					if shards == 1 && procs == 1 {
						continue
					}
					got := run(scenario, shards, procs)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("shards=%d GOMAXPROCS=%d metrics diverged:\ngot:  %+v\nwant: %+v",
							shards, procs, got, want)
					}
				}
			}
		})
	}
}
