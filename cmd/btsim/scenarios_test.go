package main

import "testing"

// TestScenarioRegistryRuns executes every registered scenario for a
// short horizon, so no -scenario value can rot unexecuted: a scenario
// that panics, fails validation or never reaches setup_ok fails here
// before it fails a user. The CI workflow runs this check next to the
// godoc-example race job.
func TestScenarioRegistryRuns(t *testing.T) {
	p := trialParams{
		slaves: 2, ber: 0, seed: 1, slots: 600,
		tsniff: 50, thold: 100,
		piconets: 2, assessWindow: 500, jamDuty: 0.9, jamWidth: 23,
		bridges: 1, presence: 0.8,
	}
	for _, sc := range scenarioRegistry {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			if !validScenario(sc.name) {
				t.Fatalf("registry entry %q fails its own validator", sc.name)
			}
			if err := validateParams(sc.name, p); err != nil {
				t.Fatalf("registry params invalid for %q: %v", sc.name, err)
			}
			_, out := runScenario(sc.name, p.seed, p, nil, nil)
			c := out.Out.Get("setup_ok")
			if c.Total == 0 || c.Rate() < 1 {
				t.Fatalf("scenario %q did not set up: %v", sc.name, out.Out)
			}
		})
	}
}

// TestTrialsPathRecoversPanics pins the replica campaign's contract:
// a setup crash becomes a counted outcome, not a dead worker pool.
func TestTrialsPathRecoversPanics(t *testing.T) {
	p := trialParams{
		slaves: 2, ber: 1.0 / 3, seed: 1, slots: 64, // absurd BER: paging fails
		tsniff: 50, thold: 100, piconets: 1, assessWindow: 500,
		jamDuty: 0.5, jamWidth: 23, bridges: 1, presence: 0.8,
	}
	out := runScenarioTrial("creation", p.seed, p)
	if out.Panic == "" {
		t.Skip("paging survived BER 1/3; nothing to recover")
	}
	c := out.Out.Get("panicked")
	if c.Total != 1 || c.Rate() != 1 {
		t.Fatalf("panic not converted to an outcome: %v", out.Out)
	}
}
