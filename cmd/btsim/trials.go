package main

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/runner"
	"repro/internal/stats"
)

// trialProgress returns a per-run progress hook that rewrites one
// stderr line, or nil when stderr is not a terminal (piped output must
// stay free of carriage returns).
func trialProgress() func(name string, done, total int) {
	if fi, err := os.Stderr.Stat(); err != nil || fi.Mode()&os.ModeCharDevice == 0 {
		return nil
	}
	var mu sync.Mutex
	last := 0
	return func(name string, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done <= last {
			return // stale report from a straggling worker
		}
		last = done
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials", name, done, total)
		if done == total {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
	}
}

// runScenarioTrial runs one silent replica of the scenario on its own
// simulation world. A setup panic (BuildPiconet giving up under heavy
// noise) becomes a failed outcome instead of killing the pool; the
// panic message is preserved so crashes are never silently converted
// into statistics.
func runScenarioTrial(scenario string, seed uint64, p trialParams) (out trialOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out = trialOutcome{Out: stats.CounterMap{}, Panic: fmt.Sprint(r)}
			out.Out.Observe("setup_ok", false)
			out.Out.Observe("panicked", true)
		}
	}()
	_, out = runScenario(scenario, seed, p, nil, nil)
	return out
}

// runTrials replicates the scenario through the parallel runner and
// prints the merged outcome and slave RF-activity statistics. The
// progress hook travels in the run's own Config — never the global
// runner.SetProgress fallback — so btsim stays well-behaved even if it
// is ever embedded next to other concurrent sweeps.
func runTrials(scenario string, trials, workers int, p trialParams, progress func(name string, done, total int)) {
	if !validScenario(scenario) {
		fmt.Fprintf(os.Stderr, "btsim: unknown scenario %q\n", scenario)
		os.Exit(1)
	}
	sw := runner.Sweep[string, trialOutcome]{
		Name:     scenario,
		Points:   []string{scenario},
		Replicas: trials,
		Seed:     func(_, replica int) uint64 { return p.seed + uint64(replica) },
		Trial: func(seed uint64, sc string) trialOutcome {
			return runScenarioTrial(sc, seed, p)
		},
	}
	res := sw.Run(runner.Config{Workers: workers, Progress: progress})

	var acc trialOutcome
	for i := range res[0] {
		acc.merge(&res[0][i])
	}
	t := stats.NewTable(fmt.Sprintf("%s: %d replicas (BER %g, %d slaves)", scenario, trials, p.ber, p.slaves),
		"outcome", "rate", "n")
	for _, k := range acc.Out.Keys() {
		c := acc.Out.Get(k)
		t.AddRow(k, c.Rate(), c.Total)
	}
	t.AddRow("slave_tx_activity_mean", acc.Tx.Mean(), acc.Tx.N())
	t.AddRow("slave_rx_activity_mean", acc.Rx.Mean(), acc.Rx.N())
	fmt.Println(t)
	if acc.Panic != "" {
		n := acc.Out.Get("panicked").Total
		fmt.Fprintf(os.Stderr, "btsim: %d replica(s) panicked during setup; first: %s\n", n, acc.Panic)
	}
}
