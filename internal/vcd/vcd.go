// Package vcd writes Value Change Dump files, the waveform format the
// paper's Figs 5 and 9 were plotted from (SystemC's sc_trace equivalent).
// It implements sim.Tracer so any traced signal lands in the dump.
//
// Signals declare themselves through the sim.Tracer interface when they
// are constructed; the header is emitted lazily at the first timestamp
// flush (so declarations and time-zero initial values interleave
// freely), timestamps are kernel ticks (0.5 µs), and same-tick changes
// collapse into one timestamped group — the output loads directly into
// GTKWave or any other VCD viewer for comparison against the paper's
// screenshots.
package vcd

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

type variable struct {
	name  string
	kind  string
	width int
	code  string
	last  string
	dirty bool
}

// Writer accumulates signal declarations and changes and serialises them
// as a VCD file. Changes may arrive before Flush in any time order within
// a tick; across ticks the kernel guarantees monotone time.
type Writer struct {
	w       io.Writer
	vars    []*variable
	header  bool
	curTime sim.Time
	started bool
	err     error
}

// New returns a Writer emitting to w. Call Close (or Flush) at the end of
// the simulation to emit the final pending changes.
func New(w io.Writer) *Writer {
	return &Writer{w: w}
}

var _ sim.Tracer = (*Writer)(nil)

// Declare registers a new VCD variable; part of sim.Tracer.
func (v *Writer) Declare(name, kind string, width int) int {
	if v.header {
		panic("vcd: Declare after first Change")
	}
	v.vars = append(v.vars, &variable{name: name, kind: kind, width: width, code: idCode(len(v.vars))})
	return len(v.vars) - 1
}

// idCode generates the compact VCD identifier for variable index i.
func idCode(i int) string {
	const first, last = 33, 126 // printable ASCII range per VCD spec
	var sb strings.Builder
	for {
		sb.WriteByte(byte(first + i%(last-first+1)))
		i /= (last - first + 1)
		if i == 0 {
			return sb.String()
		}
		i--
	}
}

// Change records a value change; part of sim.Tracer. The header is
// emitted lazily at the first timestamp flush, so declarations and
// initial values (all at time zero) may interleave freely.
func (v *Writer) Change(t sim.Time, h int, val any) {
	if v.err != nil {
		return
	}
	if t != v.curTime || !v.started {
		v.flushTime()
		v.curTime = t
		v.started = true
	}
	va := v.vars[h]
	va.last = formatValue(va, val)
	va.dirty = true
}

func formatValue(va *variable, val any) string {
	switch x := val.(type) {
	case bool:
		if x {
			return "1" + va.code
		}
		return "0" + va.code
	case int64:
		return fmt.Sprintf("b%b %s", uint64(x), va.code)
	case uint64:
		return fmt.Sprintf("b%b %s", x, va.code)
	case int:
		return fmt.Sprintf("b%b %s", uint64(x), va.code)
	case string:
		return fmt.Sprintf("s%s %s", sanitize(x), va.code)
	default:
		return fmt.Sprintf("s%v %s", x, va.code)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '_'
		}
		return r
	}, s)
}

func (v *Writer) writeHeader() {
	v.header = true
	v.printf("$timescale 500ns $end\n$scope module bluetooth $end\n")
	// Group variables by dotted prefix for readable hierarchy.
	byScope := map[string][]*variable{}
	var scopes []string
	for _, va := range v.vars {
		scope, leaf := splitName(va.name)
		if _, ok := byScope[scope]; !ok {
			scopes = append(scopes, scope)
		}
		va.name = leaf
		byScope[scope] = append(byScope[scope], va)
	}
	sort.Strings(scopes)
	for _, sc := range scopes {
		if sc != "" {
			v.printf("$scope module %s $end\n", sc)
		}
		for _, va := range byScope[sc] {
			kind := va.kind
			if kind == "string" {
				kind = "real" // closest VCD analogue; value emitted as string token
			}
			v.printf("$var %s %d %s %s $end\n", kind, va.width, va.code, va.name)
		}
		if sc != "" {
			v.printf("$upscope $end\n")
		}
	}
	v.printf("$upscope $end\n$enddefinitions $end\n")
}

func splitName(name string) (scope, leaf string) {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

func (v *Writer) flushTime() {
	if !v.started {
		return
	}
	if !v.header {
		v.writeHeader()
	}
	wrote := false
	for _, va := range v.vars {
		if va.dirty {
			if !wrote {
				v.printf("#%d\n", uint64(v.curTime))
				wrote = true
			}
			v.printf("%s\n", va.last)
			va.dirty = false
		}
	}
}

func (v *Writer) printf(format string, args ...any) {
	if v.err != nil {
		return
	}
	_, v.err = fmt.Fprintf(v.w, format, args...)
}

// Flush writes any buffered changes for the current timestamp.
func (v *Writer) Flush() error {
	if !v.header {
		v.writeHeader()
	}
	v.flushTime()
	return v.err
}

// Close flushes the writer. The underlying io.Writer is not closed.
func (v *Writer) Close() error { return v.Flush() }
