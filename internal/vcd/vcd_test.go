package vcd

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestBasicDump(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	h := w.Declare("master.rx_on", "wire", 1)
	w.Change(0, h, false)
	w.Change(100, h, true)
	w.Change(250, h, false)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 500ns $end",
		"$scope module master $end",
		"$var wire 1 ! rx_on $end",
		"#100", "#250",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Initial value at #0, then 1 at #100, then 0 at #250.
	if strings.Index(out, "0!") > strings.Index(out, "1!") {
		t.Fatalf("initial 0 should precede 1:\n%s", out)
	}
}

func TestCoalesceSameTimestamp(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	h := w.Declare("x", "wire", 1)
	w.Change(10, h, true)
	w.Change(10, h, false) // same tick: last write wins
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "#10") != 1 {
		t.Fatalf("timestamp #10 emitted more than once:\n%s", out)
	}
	if strings.Contains(out, "1!") {
		t.Fatalf("overwritten value leaked:\n%s", out)
	}
}

func TestIntAndStringValues(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	hi := w.Declare("freq", "integer", 7)
	hs := w.Declare("state", "string", 8)
	w.Change(0, hi, int64(78))
	w.Change(0, hs, "PAGE SCAN")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "b1001110 !") {
		t.Fatalf("int change missing:\n%s", out)
	}
	if !strings.Contains(out, "sPAGE_SCAN") {
		t.Fatalf("string change missing or not sanitised:\n%s", out)
	}
}

func TestIDCodesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("duplicate id code %q at %d", c, i)
		}
		seen[c] = true
	}
	if idCode(0) != "!" {
		t.Fatalf("idCode(0) = %q", idCode(0))
	}
	if len(idCode(200)) != 2 {
		t.Fatalf("idCode(200) = %q, want 2 chars", idCode(200))
	}
}

func TestDeclareInterleavesWithInitialValues(t *testing.T) {
	// Signals register lazily: declares and time-zero initial values may
	// interleave (devices are built one after another).
	var sb strings.Builder
	w := New(&sb)
	ha := w.Declare("a", "wire", 1)
	w.Change(0, ha, true)
	hb := w.Declare("b", "wire", 1)
	w.Change(0, hb, false)
	w.Change(10, ha, false)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "$var wire 1 ! a $end") || !strings.Contains(out, `$var wire 1 " b $end`) {
		t.Fatalf("both vars must be declared:\n%s", out)
	}
}

func TestDeclareAfterHeaderPanics(t *testing.T) {
	w := New(&strings.Builder{})
	h := w.Declare("a", "wire", 1)
	w.Change(0, h, true)
	w.Change(5, h, false) // forces the header out
	defer func() {
		if recover() == nil {
			t.Error("Declare after header emission did not panic")
		}
	}()
	w.Declare("b", "wire", 1)
}

func TestIntegrationWithKernelSignals(t *testing.T) {
	var sb strings.Builder
	k := sim.NewKernel()
	w := New(&sb)
	k.AddTracer(w)
	s := sim.NewBool(k, "slave1.tx_on", false)
	k.Schedule(sim.Slots(1), func() { s.Set(true) })
	k.Schedule(sim.Slots(2), func() { s.Set(false) })
	k.Run()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "$scope module slave1 $end") {
		t.Fatalf("missing scope:\n%s", out)
	}
	if !strings.Contains(out, "#1250") || !strings.Contains(out, "#2500") {
		t.Fatalf("missing slot-boundary timestamps:\n%s", out)
	}
}

func TestEmptyDumpStillValid(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.Declare("unused", "wire", 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "$enddefinitions $end") {
		t.Fatal("header missing on empty dump")
	}
}
