// Package access builds and correlates Bluetooth access codes: the 72-bit
// (or standalone 68-bit) preamble + sync word that opens every packet and
// that ID packets consist of entirely. The 64-bit sync word is derived
// from a 24-bit LAP with the BCH(64,30) construction of Bluetooth 1.2
// part B §6.3.3, and reception is modelled as the sliding correlator of a
// real baseband: a packet is caught iff the received sync word is within
// the correlator's error threshold of the expected one.
package access

import (
	"sync"

	"repro/internal/bits"
)

// GIAC is the general inquiry access code LAP shared by all devices.
const GIAC uint32 = 0x9E8B33

// bchGen is the BCH(64,30) generator polynomial, octal 260534236651
// (degree 34), per the spec's sync-word construction.
const bchGen uint64 = 0o260534236651

// pnSequence is the 64-bit pseudo-random sequence XORed over the
// information and the codeword (spec part B §6.3.3.1), given here with
// bit 0 = first transmitted bit.
const pnSequence uint64 = 0x83848D96BBCC54FC

// SyncWord derives the 64-bit sync word for a LAP. Layout, LSB (first on
// air) to MSB: 6 Barker bits, 24 LAP bits, 34 BCH parity bits — with the
// PN whitening applied as in the standard.
func SyncWord(lap uint32) uint64 {
	lap &= 0xFFFFFF
	// Barker extension chosen by the MSB of the LAP to balance DC.
	var barker uint64 = 0b001101
	if lap&0x800000 != 0 {
		barker = 0b110010
	}
	info := barker | uint64(lap)<<6 // 30 bits
	info ^= pnSequence & 0x3FFFFFFF
	parity := bchParity(info)
	word := info | parity<<30
	word ^= pnSequence &^ 0x3FFFFFFF // re-whiten only the parity half
	return word
}

// bchParity divides info(D)·D^34 by the generator and returns the 34
// parity bits.
func bchParity(info uint64) uint64 {
	reg := info << 34
	for i := 63; i >= 34; i-- {
		if reg&(1<<i) != 0 {
			reg ^= bchGen << (i - 34)
		}
	}
	return reg & ((1 << 34) - 1)
}

// codeCache holds the fully derived access code of one LAP: the sync
// word plus the expanded 72-bit air pattern (preamble, sync, trailer)
// in the one-byte-per-bit layout of bits.Vec, ready to copy.
type codeCache struct {
	sync uint64
	air  [72]uint8
}

// syncCache memoises the access-code derivation per LAP: it is pure, a
// simulation uses a handful of LAPs, and the result is needed on every
// single transmit and correlate. Concurrent worlds (runner workers)
// share the cache, hence sync.Map. Entries are immutable once stored —
// callers only read the sync word and copy the air pattern out.
var syncCache sync.Map // uint32 LAP → *codeCache

func codeFor(lap uint32) *codeCache {
	lap &= 0xFFFFFF
	if c, ok := syncCache.Load(lap); ok {
		return c.(*codeCache)
	}
	c := &codeCache{sync: SyncWord(lap)}
	pre, tr := preambleFor(c.sync), trailerFor(c.sync)
	for i := 0; i < 4; i++ {
		c.air[i] = uint8(pre>>i) & 1
		c.air[68+i] = uint8(tr>>i) & 1
	}
	for i := 0; i < 64; i++ {
		c.air[4+i] = uint8(c.sync>>i) & 1
	}
	syncCache.Store(lap, c)
	return c
}

// preambleFor returns the 4-bit preamble: 0101 or 1010 chosen so it
// alternates into the sync word's first bit.
func preambleFor(sync uint64) uint64 {
	if sync&1 == 1 {
		return 0b0101 // ends in 1·? first air bit 1... LSB-first: 1,0,1,0
	}
	return 0b1010
}

// trailerFor returns the 4-bit trailer extending the alternation out of
// the sync word's last bit.
func trailerFor(sync uint64) uint64 {
	if sync>>63 == 1 {
		return 0b1010
	}
	return 0b0101
}

// Code returns the access code bits for a LAP. withTrailer selects the
// 72-bit form used when a header follows; ID packets use the 68-bit form.
func Code(lap uint32, withTrailer bool) *bits.Vec {
	n := 68
	if withTrailer {
		n = 72
	}
	v := bits.NewVec(n)
	AppendCode(v, lap, withTrailer)
	return v
}

// AppendCode appends the access code bits directly to v, sparing the
// assembly path a temporary vector: one copy out of the per-LAP cache.
func AppendCode(v *bits.Vec, lap uint32, withTrailer bool) {
	c := codeFor(lap)
	n := 68
	if withTrailer {
		n = 72
	}
	copy(v.Grow(n), c.air[:n])
}

// DefaultCorrelatorThreshold is the maximum number of sync-word bit
// errors the sliding correlator accepts. 7 of 64 corresponds to the
// customary 57-of-64 correlation threshold of baseband receivers.
const DefaultCorrelatorThreshold = 7

// Correlate reports whether received access-code bits match the expected
// LAP within threshold sync-word bit errors. Only the 64 sync bits are
// correlated; preamble/trailer exist for DC balance and carry no
// information. ok is false if rx is too short to contain a sync word.
func Correlate(rx *bits.Vec, lap uint32, threshold int) (errors int, ok bool) {
	if rx.Len() < 68 {
		return 0, false
	}
	want := codeFor(lap).sync
	got := rx.Uint(4, 64)
	diff := want ^ got
	n := 0
	for diff != 0 {
		diff &= diff - 1
		n++
	}
	return n, n <= threshold
}
