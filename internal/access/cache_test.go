package access

import (
	"testing"

	"repro/internal/bits"
)

// TestAppendCodeMatchesCode holds the cached, direct-fill code builder
// to the original AppendUint construction, trailer and bare forms, for
// LAPs exercising both Barker variants.
func TestAppendCodeMatchesCode(t *testing.T) {
	laps := []uint32{0x000000, 0x9E8B33, 0xFFFFFF, 0x123456, 0xABCDEF}
	for _, lap := range laps {
		for _, trailer := range []bool{false, true} {
			sync := SyncWord(lap)
			n := 68
			if trailer {
				n = 72
			}
			want := bits.NewVec(n)
			want.AppendUint(preambleFor(sync), 4)
			want.AppendUint(sync, 64)
			if trailer {
				want.AppendUint(trailerFor(sync), 4)
			}
			got := Code(lap, trailer)
			if !got.Equal(want) {
				t.Fatalf("lap=%#x trailer=%v: Code diverges from reference build", lap, trailer)
			}
			// Appending onto a non-empty vector must not disturb the prefix.
			pre := bits.FromBools(true, false, true)
			app := pre.Clone()
			AppendCode(app, lap, trailer)
			ref := pre.Clone()
			ref.AppendVec(want)
			if !app.Equal(ref) {
				t.Fatalf("lap=%#x trailer=%v: AppendCode broke the prefix", lap, trailer)
			}
		}
	}
}

// TestCodeReturnsFreshVectors guards the cache design: callers (tests,
// the channel's noise model) mutate returned vectors, so Code must never
// hand out shared storage.
func TestCodeReturnsFreshVectors(t *testing.T) {
	a := Code(0x123456, false)
	a.FlipBit(10)
	b := Code(0x123456, false)
	if a.Equal(b) {
		t.Fatal("Code returned shared storage; mutation leaked into the next call")
	}
}
