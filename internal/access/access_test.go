package access

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSyncWordDeterministicAndDistinct(t *testing.T) {
	a := SyncWord(0x123456)
	if a != SyncWord(0x123456) {
		t.Fatal("sync word not deterministic")
	}
	if a == SyncWord(0x123457) {
		t.Fatal("adjacent LAPs share a sync word")
	}
	if SyncWord(GIAC) == SyncWord(0x000000) {
		t.Fatal("GIAC collides with zero LAP")
	}
}

func TestSyncWordMinimumDistance(t *testing.T) {
	// BCH(64,30) has minimum distance 14 before PN whitening; whitening
	// is a fixed XOR so pairwise distances are preserved. Check a sample
	// of LAP pairs keeps distance comfortably above the correlator
	// threshold (so distinct devices never alias).
	r := sim.NewRand(11)
	for trial := 0; trial < 200; trial++ {
		l1 := uint32(r.Uint64()) & 0xFFFFFF
		l2 := uint32(r.Uint64()) & 0xFFFFFF
		if l1 == l2 {
			continue
		}
		diff := SyncWord(l1) ^ SyncWord(l2)
		n := 0
		for diff != 0 {
			diff &= diff - 1
			n++
		}
		if n < 14 {
			t.Fatalf("LAPs %06x/%06x sync distance %d < 14", l1, l2, n)
		}
	}
}

func TestBCHParityLinear(t *testing.T) {
	// Parity of XOR = XOR of parities (code linearity).
	f := func(a, b uint32) bool {
		x, y := uint64(a)&0x3FFFFFFF, uint64(b)&0x3FFFFFFF
		return bchParity(x^y) == bchParity(x)^bchParity(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodeLengths(t *testing.T) {
	if Code(GIAC, false).Len() != 68 {
		t.Fatal("ID-form access code must be 68 bits")
	}
	if Code(GIAC, true).Len() != 72 {
		t.Fatal("header-form access code must be 72 bits")
	}
}

func TestPreambleAlternation(t *testing.T) {
	f := func(lapRaw uint32) bool {
		lap := lapRaw & 0xFFFFFF
		c := Code(lap, true)
		// Preamble must alternate: bits 0..3 strictly alternate and bit 3
		// differs from sync bit 0 continuing the alternation.
		for i := 1; i < 4; i++ {
			if c.Bit(i) == c.Bit(i-1) {
				return false
			}
		}
		if c.Bit(3) == c.Bit(4) {
			return false
		}
		// Trailer alternates out of the last sync bit.
		if c.Bit(67) == c.Bit(68) {
			return false
		}
		for i := 69; i < 72; i++ {
			if c.Bit(i) == c.Bit(i-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelateClean(t *testing.T) {
	c := Code(0xABCDEF, false)
	errs, ok := Correlate(c, 0xABCDEF, DefaultCorrelatorThreshold)
	if !ok || errs != 0 {
		t.Fatalf("clean correlate failed (errs=%d)", errs)
	}
}

func TestCorrelateRejectsWrongLAP(t *testing.T) {
	c := Code(0xABCDEF, false)
	if _, ok := Correlate(c, 0x123456, DefaultCorrelatorThreshold); ok {
		t.Fatal("correlator accepted wrong LAP")
	}
}

func TestCorrelateToleratesErrorsUpToThreshold(t *testing.T) {
	r := sim.NewRand(3)
	base := Code(GIAC, false)
	for trial := 0; trial < 50; trial++ {
		c := base.Clone()
		// Flip exactly threshold distinct sync-word bits.
		flipped := map[int]bool{}
		for len(flipped) < DefaultCorrelatorThreshold {
			i := 4 + r.Intn(64)
			if !flipped[i] {
				flipped[i] = true
				c.FlipBit(i)
			}
		}
		errs, ok := Correlate(c, GIAC, DefaultCorrelatorThreshold)
		if !ok || errs != DefaultCorrelatorThreshold {
			t.Fatalf("threshold errors rejected (errs=%d ok=%v)", errs, ok)
		}
		// One more flip must push it over.
		for {
			i := 4 + r.Intn(64)
			if !flipped[i] {
				c.FlipBit(i)
				break
			}
		}
		if _, ok := Correlate(c, GIAC, DefaultCorrelatorThreshold); ok {
			t.Fatal("threshold+1 errors accepted")
		}
	}
}

func TestCorrelatePreambleErrorsIgnored(t *testing.T) {
	c := Code(GIAC, false)
	c.FlipBit(0)
	c.FlipBit(1)
	if errs, ok := Correlate(c, GIAC, 0); !ok || errs != 0 {
		t.Fatal("preamble errors must not count against the correlator")
	}
}

func TestCorrelateShortInput(t *testing.T) {
	c := Code(GIAC, false).Slice(0, 50)
	if _, ok := Correlate(c, GIAC, 64); ok {
		t.Fatal("short input accepted")
	}
}
