package experiments

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/packet"
	"repro/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/figures.golden from the current output")

// renderAllFigures regenerates every figure in the evaluation section —
// the eleven tables plus the two VCD waveform figures (hashed) — at
// deliberately tiny parameters so the whole sweep fits in a test run.
// The output is one deterministic string: any change to simulator
// behaviour, sweep scheduling, table formatting or VCD emission shows
// up as a diff against testdata/figures.golden.
func renderAllFigures() string {
	var out bytes.Buffer

	vcd := func(name string, emit func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := emit(&buf); err != nil {
			fmt.Fprintf(&out, "%s: ERROR %v\n", name, err)
			return
		}
		fmt.Fprintf(&out, "%s: sha256 %x (%d bytes)\n", name, sha256.Sum256(buf.Bytes()), buf.Len())
	}
	vcd("fig5.vcd", func(w *bytes.Buffer) error {
		_, err := Fig5Waveforms(w, 1)
		return err
	})
	vcd("fig9.vcd", func(w *bytes.Buffer) error {
		return Fig9Waveforms(w, 20, 2, 1)
	})

	bers := []BERPoint{{Label: "0", Value: 0}, {Label: "1/100", Value: 0.01}}
	inq := InquirySweep(bers, 4)
	page := PageSweep(bers, 4)
	out.WriteString(Fig6Table(inq).String())
	out.WriteString(Fig7Table(page).String())
	out.WriteString(Fig8Table(inq, page).String())

	out.WriteString(Fig10Table(Fig10MasterActivity([]float64{0, 0.01}, 2000, 1)).String())
	out.WriteString(Fig11Table(Fig11SniffActivity([]int{20, 100}, 100, 3000, 1)).String())
	out.WriteString(Fig12Table(Fig12HoldActivity([]int{50, 400}, 4000, 1)).String())

	out.WriteString(AblationTable("Ablation: inquiry-response backoff span (BER 1/100)", "backoff_max",
		AblationBackoff([]int{127, 1023}, 0.01, 2)).String())
	out.WriteString(AblationTable("Ablation: train repetitions NInquiry (BER 1/100, 1.28 s timeout)", "NInquiry",
		AblationNInquiry([]int{16, 256}, 0.01, 2)).String())
	out.WriteString(AblationTable("Ablation: correlator sync-error threshold (BER 1/30)", "threshold",
		AblationCorrelator([]int{1, 14}, 1.0/30, 2)).String())

	out.WriteString(VoiceTable(VoiceQuality(
		[]packet.Type{packet.TypeHV1, packet.TypeHV3}, bers, 2000, 1)).String())
	out.WriteString(ThroughputTable(PacketTypeThroughput(
		[]packet.Type{packet.TypeDM1, packet.TypeDH5}, bers, 2000, 1)).String())

	out.WriteString(CoexistenceTable(Coexistence([]float64{0, 1.0}, 2000, 1)).String())
	out.WriteString(MultiPiconetTable(MultiPiconet([]int{1, 3}, 2000, 1)).String())
	out.WriteString(CoexTable(CoexSweep([]int{1, 4}, 2000, 2, 1)).String())
	out.WriteString(AdaptiveAFHTable(0.9, AdaptiveAFH([]int{7, 39}, 0.9, 500, 2000, 1)).String())
	out.WriteString(ScatternetTable(ScatternetSweep([]float64{0.2, 1.0}, 2000, 2, 1)).String())
	out.WriteString(DensityTable(DensitySweep([]int{1, 8}, 2000, 2, 1)).String())

	return out.String()
}

// TestAllFiguresGolden pins the entire figure pipeline — every table
// and both waveform files — against a committed golden snapshot, and
// re-renders on a 4-worker pool to pin the scheduling-independence
// contract in the same breath. Regenerate with
//
//	go test ./internal/experiments -run TestAllFiguresGolden -update
//
// and review the diff like any other code change.
func TestAllFiguresGolden(t *testing.T) {
	defer runner.SetDefaultWorkers(0)

	runner.SetDefaultWorkers(runner.Serial)
	serial := renderAllFigures()

	golden := filepath.Join("testdata", "figures.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden snapshot (regenerate with -update): %v", err)
	}
	if serial != string(want) {
		t.Errorf("figures diverged from %s (regenerate with -update if intended):\n--- golden ---\n%s\n--- got ---\n%s",
			golden, want, serial)
	}

	runner.SetDefaultWorkers(4)
	if parallel := renderAllFigures(); parallel != serial {
		t.Errorf("figures depend on the worker schedule:\n--- serial ---\n%s\n--- 4 workers ---\n%s",
			serial, parallel)
	}
}
