package experiments

import (
	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/runner"
	"repro/internal/stats"
)

// The density sweep is the experiment the spatial medium exists for:
// an office floor packed with piconets well past the global medium's
// 8-piconet ceiling. On the shared ether, aggregate goodput saturates
// as every transmission interferes with every co-channel transmission
// world-wide; with positions and a path-loss range, piconets outside
// each other's interference reach reuse the band, so per-link goodput
// levels off at the local-neighbourhood interference instead of
// collapsing with world size — and per-packet receiver work is bounded
// by cell occupancy, which is what lets the sweep run at all.

// DensityRow is one point of the dense-deployment sweep.
type DensityRow struct {
	Piconets    int
	PerLinkKbs  float64
	Retransmits float64
	Inter       float64 // inter-piconet collision pairs
	Intra       float64 // same-piconet collision pairs
	N           int     // replicas averaged
}

// Office-floor geometry: desks on a 10 m grid, a 12 m delivery range
// (one desk neighbourhood plus margin) and a 22 m interference reach —
// the classic "can't decode but still jams" penumbra.
const (
	DensitySpacingM      = 10
	DensityRangeM        = 12
	DensityInterferenceM = 22
)

// DensitySpec is the office-floor world at one density: `piconets`
// single-slave piconets with saturating pumps on a spatial grid.
func DensitySpec(piconets int) netspec.Spec {
	return netspec.Spec{
		Piconets:  netspec.HomogeneousPiconets(piconets, 1, netspec.WithTpoll(netspec.TpollNever)),
		Traffic:   []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
		Placement: netspec.GridPlacement(DensityRangeM, DensitySpacingM).WithInterference(DensityInterferenceM),
	}
}

// DensitySweep measures per-link goodput and collision attribution as
// the office floor fills up. Counts may (and should) go well past the
// CoexSweep ceiling: 32+ piconets is the regime where spatial reuse
// separates from the shared-ether model. Replicas average over clock
// phases exactly as CoexSweep does.
func DensitySweep(counts []int, measureSlots uint64, replicas int, seed uint64, cfg ...runner.Config) []DensityRow {
	sw := runner.Sweep[int, coexObs]{
		Name:     "density",
		Points:   counts,
		Replicas: replicas,
		Seed: func(point, replica int) uint64 {
			return seed + uint64(counts[point])*131 + uint64(replica)*7919
		},
		Trial: func(seed uint64, piconets int) coexObs {
			w := netspec.MustBuild(core.NewSimulation(core.Options{Seed: seed}), DensitySpec(piconets))
			w.Start()
			w.Sim.RunSlots(coexTrialSettleSlots)
			w.ResetMetrics()
			w.Sim.RunSlots(measureSlots)
			m := w.Metrics()
			return coexObs{Bytes: m.Bytes, Retransmits: m.Retransmits, Inter: m.Inter, Intra: m.Intra}
		},
	}
	return runner.ReducePoints(counts, sw.Run(oneCfg(cfg)), func(piconets int, obs []coexObs) DensityRow {
		row := DensityRow{Piconets: piconets, N: len(obs)}
		for _, o := range obs {
			row.PerLinkKbs += netspec.GoodputKbps(o.Bytes, measureSlots) / float64(piconets)
			row.Retransmits += float64(o.Retransmits)
			row.Inter += float64(o.Inter)
			row.Intra += float64(o.Intra)
		}
		n := float64(len(obs))
		row.PerLinkKbs /= n
		row.Retransmits /= n
		row.Inter /= n
		row.Intra /= n
		return row
	})
}

// DensityTable renders the dense-deployment sweep.
func DensityTable(rows []DensityRow) *stats.Table {
	t := stats.NewTable("Density: per-link goodput and collisions vs piconets on a spatial office grid (replica means)",
		"piconets", "per_link_kbps", "retransmits", "inter_collisions", "intra_collisions", "n")
	for _, r := range rows {
		t.AddRow(r.Piconets, r.PerLinkKbs, r.Retransmits, r.Inter, r.Intra, r.N)
	}
	return t
}
