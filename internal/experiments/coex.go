package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/runner"
	"repro/internal/stats"
)

// CoexRow is one point of the co-located-piconet sweep run through the
// coexistence engine: per-link goodput, ARQ cost and the attributed
// collision counts, averaged over the replicas.
type CoexRow struct {
	Piconets    int
	PerLinkKbs  float64
	Retransmits float64
	Inter       float64 // inter-piconet collision pairs
	Intra       float64 // same-piconet collision pairs
	N           int     // replicas averaged
}

// coexObs is one replica's raw observation.
type coexObs struct {
	Bytes, Retransmits, Inter, Intra int
}

// coexTrialSettleSlots is the post-build settle window before a
// measurement starts (lets every pump reach steady state).
const coexTrialSettleSlots = 64

// CoexSweep measures throughput and retransmissions as 1..N independent
// piconets share the band — the paper's reference [4] scenario run on
// the coexistence engine, with collisions attributed to inter- vs
// intra-piconet interference.
//
// Each point averages several replicas (fresh clock phases per seed)
// because the spec's hop kernel makes collision counts between two
// piconets heavily offset-dependent: the piconet clocks never drift in
// this model, so the relative offset is constant for a whole run, and a
// few percent of offsets yield basic hop sequences that are
// collision-free for tens of thousands of slots. A single replica can
// therefore legitimately report zero inter-piconet collisions;
// averaging over clock phases restores the expected ~1/79 picture.
func CoexSweep(counts []int, measureSlots uint64, replicas int, seed uint64, cfg ...runner.Config) []CoexRow {
	sw := runner.Sweep[int, coexObs]{
		Name:     "coex",
		Points:   counts,
		Replicas: replicas,
		Seed: func(point, replica int) uint64 {
			return seed + uint64(counts[point])*101 + uint64(replica)*7919
		},
		Trial: func(seed uint64, piconets int) coexObs {
			w := netspec.MustBuild(core.NewSimulation(core.Options{Seed: seed}), netspec.Spec{
				Piconets: netspec.HomogeneousPiconets(piconets, 1, netspec.WithTpoll(netspec.TpollNever)),
				Traffic:  []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
			})
			w.Start()
			w.Sim.RunSlots(coexTrialSettleSlots)
			w.ResetMetrics()
			w.Sim.RunSlots(measureSlots)
			m := w.Metrics()
			return coexObs{Bytes: m.Bytes, Retransmits: m.Retransmits, Inter: m.Inter, Intra: m.Intra}
		},
	}
	return runner.ReducePoints(counts, sw.Run(oneCfg(cfg)), func(piconets int, obs []coexObs) CoexRow {
		row := CoexRow{Piconets: piconets, N: len(obs)}
		for _, o := range obs {
			row.PerLinkKbs += netspec.GoodputKbps(o.Bytes, measureSlots) / float64(piconets)
			row.Retransmits += float64(o.Retransmits)
			row.Inter += float64(o.Inter)
			row.Intra += float64(o.Intra)
		}
		n := float64(len(obs))
		row.PerLinkKbs /= n
		row.Retransmits /= n
		row.Inter /= n
		row.Intra /= n
		return row
	})
}

// CoexTable renders the co-located piconet sweep.
func CoexTable(rows []CoexRow) *stats.Table {
	t := stats.NewTable("Coex: per-link goodput and collisions vs co-located piconets (replica means)",
		"piconets", "per_link_kbps", "retransmits", "inter_collisions", "intra_collisions", "n")
	for _, r := range rows {
		t.AddRow(r.Piconets, r.PerLinkKbs, r.Retransmits, r.Inter, r.Intra, r.N)
	}
	return t
}

// AdaptiveAFHRow compares hop-set strategies under one jammer width:
// classic hopping, the oracle ExcludeRange map, and the map learned by
// the adaptive classifier.
type AdaptiveAFHRow struct {
	Width      int // jammed channels
	PlainKbs   float64
	OracleKbs  float64
	LearnedKbs float64
	LearnedN   int // channels in the learned map (79 = never narrowed)
}

// afhBandLo anchors the jammed band; a width-w jammer occupies channels
// afhBandLo..afhBandLo+w-1 (w=23 reproduces the classic 802.11 DSSS
// footprint of channels 30-52).
const afhBandLo = 30

// adaptiveArm measures one hop-set strategy under a jammer of the given
// width. Every arm — off, oracle, adaptive — runs the identical
// protocol: build jam-free (netspec installs jammers after topology
// construction), pump traffic through the same convergence warm-up,
// then measure a clean steady-state window. Only then are the columns
// of one row comparable.
func adaptiveArm(seed uint64, mode netspec.AFHMode, width int, duty float64,
	assessWindow int, measureSlots uint64) (float64, int) {
	hi := afhBandLo + width - 1
	w := netspec.MustBuild(core.NewSimulation(core.Options{Seed: seed}), netspec.Spec{
		Piconets: []netspec.Piconet{{
			Slaves:            1,
			TpollSlots:        netspec.TpollNever,
			AFH:               mode,
			OracleLo:          afhBandLo,
			OracleHi:          hi,
			AssessWindowSlots: assessWindow,
		}},
		Traffic: []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
		Jammers: []netspec.Jammer{{Lo: afhBandLo, Hi: hi, Duty: duty}},
	})
	w.Start()
	w.Sim.RunSlots(netspec.ConvergenceSlots(assessWindow))
	w.ResetMetrics()
	w.Sim.RunSlots(measureSlots)
	mapN := 79
	if cm := w.Piconets[0].CurrentMap(); cm != nil {
		mapN = cm.N()
	}
	return netspec.GoodputKbps(w.Metrics().Bytes, measureSlots), mapN
}

// AdaptiveAFH sweeps the jammer width, measuring goodput for classic
// hopping, the oracle map and the learned map on identical worlds — the
// learned-vs-oracle ablation of the v1.2 AFH mechanism.
func AdaptiveAFH(widths []int, duty float64, assessWindow int, measureSlots uint64, seed uint64, cfg ...runner.Config) []AdaptiveAFHRow {
	sw := runner.Sweep[int, AdaptiveAFHRow]{
		Name:   "afh-adaptive",
		Points: widths,
		Seed:   func(point, _ int) uint64 { return seed + uint64(widths[point])*977 },
		Trial: func(seed uint64, width int) AdaptiveAFHRow {
			plain, _ := adaptiveArm(seed, netspec.AFHOff, width, duty, assessWindow, measureSlots)
			oracle, _ := adaptiveArm(seed, netspec.AFHOracle, width, duty, assessWindow, measureSlots)
			learned, n := adaptiveArm(seed, netspec.AFHAdaptive, width, duty, assessWindow, measureSlots)
			return AdaptiveAFHRow{
				Width: width, PlainKbs: plain, OracleKbs: oracle, LearnedKbs: learned, LearnedN: n,
			}
		},
	}
	return runner.Flatten(sw.Run(oneCfg(cfg)))
}

// AdaptiveAFHTable renders the learned-vs-oracle comparison.
func AdaptiveAFHTable(duty float64, rows []AdaptiveAFHRow) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Adaptive AFH: goodput vs jammer width (duty %.0f%%), learned map vs oracle", duty*100),
		"jam_width", "plain_kbps", "oracle_kbps", "learned_kbps", "learned_channels", "learned_vs_oracle")
	for _, r := range rows {
		ratio := 0.0
		if r.OracleKbs > 0 {
			ratio = r.LearnedKbs / r.OracleKbs
		}
		t.AddRow(r.Width, r.PlainKbs, r.OracleKbs, r.LearnedKbs, r.LearnedN, ratio)
	}
	return t
}
