package experiments

import (
	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/runner"
	"repro/internal/stats"
)

// The checkpoint-fork ensemble compares the two ways of replicating a
// stochastic measurement. The straight ensemble builds and settles an
// independent world per replica — fresh clock phases, fresh noise —
// and pays the warm-up every time. The forked ensemble settles one
// world, snapshots it at a quiescent slot edge, and forks the replicas
// from the checkpoint under perturbed RNG streams: one warm-up, N
// post-fork noise realisations. Forked replicas share every pre-fork
// draw (clock phases, settled ARQ pipelines), so their spread measures
// post-fork channel noise alone — typically tighter than the straight
// ensemble's, which folds warm-up variation in. The table shows both
// side by side; the fork column is the what-if-arm discipline.

// forkDemoBER keeps stochastic draws flowing after the fork instant —
// every reception consults the channel noise stream — so perturbed
// fork seeds genuinely diverge.
const forkDemoBER = 1.0 / 500

// forkDemoSpec is the office-floor world with poisson bursts instead
// of DensitySpec's saturating pumps: continuous saturation on
// phase-offset piconets can leave no globally quiescent slot edge for
// the snapshot probe, while poisson inter-burst gaps guarantee one —
// and the per-burst arrival draws keep the forked arms diverging.
func forkDemoSpec(piconets int) netspec.Spec {
	sp := DensitySpec(piconets)
	sp.Traffic = []netspec.Traffic{{
		Kind: netspec.TrafficPoisson, Piconet: netspec.AllPiconets,
		MeanGapSlots: 40, BurstBytes: 256,
	}}
	return sp
}

// ForkRow is one point of the checkpoint-fork ensemble comparison.
type ForkRow struct {
	Piconets    int
	StraightKbs float64 // mean per-link goodput, independent replicas
	StraightSD  float64
	ForkKbs     float64 // mean per-link goodput, forked replicas
	ForkSD      float64
	N           int
}

func forkDemoOptions(seed uint64) core.Options {
	return core.Options{Seed: seed, BER: forkDemoBER}
}

// ForkEnsemble runs the comparison over the office-floor worlds of
// DensitySweep: per piconet count, `replicas` independent replicas and
// `replicas` forks of one settled world, both measured over
// measureSlots after settleSlots of warm-up.
func ForkEnsemble(counts []int, measureSlots, settleSlots uint64, replicas int, seed uint64, cfg ...runner.Config) []ForkRow {
	baseSeed := func(point int) uint64 { return seed + uint64(counts[point])*131 }
	perLink := func(w *netspec.World, piconets int) float64 {
		return netspec.GoodputKbps(w.Metrics().Bytes, measureSlots) / float64(piconets)
	}
	straight := runner.Sweep[int, float64]{
		Name:     "fork-straight",
		Points:   counts,
		Replicas: replicas,
		Seed: func(point, replica int) uint64 {
			return baseSeed(point) + uint64(replica)*7919
		},
		Trial: func(sd uint64, piconets int) float64 {
			w := netspec.MustBuild(core.NewSimulation(forkDemoOptions(sd)), forkDemoSpec(piconets))
			w.Start()
			w.Sim.RunSlots(settleSlots)
			w.ResetMetrics()
			w.Sim.RunSlots(measureSlots)
			return perLink(w, piconets)
		},
	}
	forked := runner.ForkSweep[int, float64]{
		Name:     "fork-arms",
		Points:   counts,
		Replicas: replicas,
		Seed: func(point, replica int) uint64 {
			return baseSeed(point) + uint64(replica)*7919
		},
		Prepare: func(sd uint64, piconets int) ([]byte, error) {
			s := core.NewSimulation(forkDemoOptions(sd))
			w, err := netspec.Build(s, forkDemoSpec(piconets))
			if err != nil {
				return nil, err
			}
			w.Start()
			s.RunSlots(settleSlots)
			ck, err := w.Snapshot()
			if err != nil {
				return nil, err
			}
			return ck.Encode()
		},
		Trial: func(ckb []byte, forkSeed uint64, piconets int) float64 {
			// Decode/restore failures on bytes Prepare just produced are
			// programmer errors; panic like MustBuild does.
			ck, err := netspec.DecodeCheckpoint(ckb)
			if err != nil {
				panic(err)
			}
			// The restore target rebuilds under the capture seed but must
			// repeat the channel config itself: BER is world configuration,
			// not checkpointed state.
			s := core.NewSimulation(forkDemoOptions(ck.Core.Seed))
			w, err := netspec.RestoreWorld(s, ck, core.RestoreOptions{ForkSeed: forkSeed})
			if err != nil {
				panic(err)
			}
			w.ResetMetrics()
			s.RunSlots(measureSlots)
			return perLink(w, piconets)
		},
	}
	c := oneCfg(cfg)
	srows := straight.Run(c)
	frows, err := forked.Run(c)
	if err != nil {
		panic(err)
	}
	rows := make([]ForkRow, len(counts))
	for i, piconets := range counts {
		var sObs, fObs stats.Sample
		for _, v := range srows[i] {
			sObs.Add(v)
		}
		for _, v := range frows[i] {
			fObs.Add(v)
		}
		rows[i] = ForkRow{
			Piconets:    piconets,
			StraightKbs: sObs.Mean(), StraightSD: sObs.StdDev(),
			ForkKbs: fObs.Mean(), ForkSD: fObs.StdDev(),
			N: replicas,
		}
	}
	return rows
}

// ForkTable renders the ensemble comparison.
func ForkTable(rows []ForkRow) *stats.Table {
	t := stats.NewTable("Checkpoint fork: per-link goodput, independent replicas vs forks of one settled world (BER 1/500)",
		"piconets", "straight_kbps", "straight_sd", "fork_kbps", "fork_sd", "n")
	for _, r := range rows {
		t.AddRow(r.Piconets, r.StraightKbs, r.StraightSD, r.ForkKbs, r.ForkSD, r.N)
	}
	return t
}
