package experiments

import (
	"strings"
	"testing"

	"repro/internal/packet"
)

func TestVoiceQualityOrdering(t *testing.T) {
	types := []packet.Type{packet.TypeHV1, packet.TypeHV2, packet.TypeHV3}
	bers := []BERPoint{{"1/200", 1.0 / 200}}
	rows := VoiceQuality(types, bers, 3000, 21)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(ty packet.Type) VoiceRow {
		for _, r := range rows {
			if r.Type == ty {
				return r
			}
		}
		t.Fatalf("missing %v", ty)
		return VoiceRow{}
	}
	hv1, hv2, hv3 := get(packet.TypeHV1), get(packet.TypeHV2), get(packet.TypeHV3)
	if hv1.BitPerfect < hv2.BitPerfect || hv2.BitPerfect < hv3.BitPerfect {
		t.Fatalf("quality ordering violated: %.2f %.2f %.2f",
			hv1.BitPerfect, hv2.BitPerfect, hv3.BitPerfect)
	}
	if hv1.BitPerfect < 0.9 {
		t.Fatalf("HV1 quality %.2f too low at BER 1/200", hv1.BitPerfect)
	}
	// HV3 still *delivers* (no CRC to reject frames) even when corrupted.
	if hv3.Delivered < hv3.BitPerfect {
		t.Fatal("delivery cannot be below bit-perfect rate")
	}
	if !strings.Contains(VoiceTable(rows).String(), "bit_perfect") {
		t.Fatal("table broken")
	}
}

func TestVoiceCleanChannelPerfect(t *testing.T) {
	rows := VoiceQuality([]packet.Type{packet.TypeHV3}, []BERPoint{{"0", 0}}, 2000, 22)
	if len(rows) != 1 || rows[0].BitPerfect < 0.99 {
		t.Fatalf("clean channel voice imperfect: %+v", rows)
	}
}
