package experiments

import (
	"reflect"
	"testing"

	"repro/internal/runner"
)

// TestForkEnsemble pins the shape and determinism of the fork
// comparison: forks produce real (nonzero, spread-out) goodput
// observations, and the whole table is schedule-independent.
func TestForkEnsemble(t *testing.T) {
	counts := []int{2}
	rows := ForkEnsemble(counts, 2000, 500, 3, 1)
	if len(rows) != 1 {
		t.Fatalf("rows %d, want 1", len(rows))
	}
	r := rows[0]
	if r.N != 3 || r.Piconets != 2 {
		t.Fatalf("row identity %+v", r)
	}
	if r.StraightKbs <= 0 || r.ForkKbs <= 0 {
		t.Fatalf("goodput means not positive: %+v", r)
	}
	// Perturbed fork seeds must actually spread the forked ensemble;
	// a zero SD means every fork replayed the same streams.
	if r.ForkSD == 0 {
		t.Fatalf("forked ensemble has zero spread: %+v", r)
	}

	again := ForkEnsemble(counts, 2000, 500, 3, 1, runner.Config{Workers: runner.Serial})
	if !reflect.DeepEqual(rows, again) {
		t.Fatalf("ensemble not schedule-independent:\n  pooled: %+v\n  serial: %+v", rows, again)
	}
}
