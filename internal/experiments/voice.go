package experiments

import (
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/stats"
)

// VoiceRow reports SCO voice quality for one packet type at one BER.
type VoiceRow struct {
	Type packet.Type
	BER  BERPoint
	// Delivered is the fraction of frames that arrived at all.
	Delivered float64
	// BitPerfect is the fraction of frames that arrived without any
	// residual error (the audio-quality proxy).
	BitPerfect float64
}

// VoiceQuality measures full-rate SCO voice under noise for each HV
// type: HV1's repetition code trades capacity for robustness, HV3 the
// reverse — the synchronous-link side of the packet-choice analysis the
// paper's introduction motivates.
func VoiceQuality(types []packet.Type, bers []BERPoint, measureSlots uint64, seed uint64, cfg ...runner.Config) []VoiceRow {
	points := runner.Cross(types, bers)
	sw := runner.Sweep[runner.Pair[packet.Type, BERPoint], VoiceRow]{
		Name:   "voice",
		Points: points,
		Seed:   func(point, _ int) uint64 { return seed + uint64(points[point].A) },
		Trial: func(seed uint64, p runner.Pair[packet.Type, BERPoint]) VoiceRow {
			ty, b := p.A, p.B
			s, m, sl := twoDevicesCfg(seed, b.Value, nil)
			lks := s.BuildPiconet(m, sl)
			// Full-rate period for the type so capacities are comparable.
			tsco := map[packet.Type]int{
				packet.TypeHV1: 2, packet.TypeHV2: 4, packet.TypeHV3: 6,
			}[ty]
			msco := m.AddSCO(lks[0], ty, tsco, 0)
			ssco := sl.AcceptSCO(ty, tsco, 0)
			pattern := byte(0x5A)
			msco.Source = func() []byte {
				f := make([]byte, ty.MaxPayload())
				for i := range f {
					f[i] = pattern
				}
				return f
			}
			perfect := 0
			ssco.Sink = func(f []byte) {
				for _, by := range f {
					if by != pattern {
						return
					}
				}
				perfect++
			}
			s.RunSlots(measureSlots)
			if msco.TxFrames == 0 {
				// Degenerate run; filtered out of the table below.
				return VoiceRow{Type: ty, BER: b, Delivered: -1}
			}
			return VoiceRow{
				Type:       ty,
				BER:        b,
				Delivered:  float64(ssco.RxFrames) / float64(msco.TxFrames),
				BitPerfect: float64(perfect) / float64(msco.TxFrames),
			}
		},
	}
	rows := runner.Flatten(sw.Run(oneCfg(cfg)))
	out := rows[:0]
	for _, r := range rows {
		if r.Delivered >= 0 {
			out = append(out, r)
		}
	}
	return out
}

// VoiceTable renders the voice-quality sweep.
func VoiceTable(rows []VoiceRow) *stats.Table {
	t := stats.NewTable("SCO voice quality under noise (full-rate HV links)",
		"type", "BER", "delivered", "bit_perfect")
	for _, r := range rows {
		t.AddRow(r.Type.String(), r.BER.Label, r.Delivered, r.BitPerfect)
	}
	return t
}
