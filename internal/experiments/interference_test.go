package experiments

import (
	"strings"
	"testing"
)

func TestCoexistenceAFHRecoversGoodput(t *testing.T) {
	rows := Coexistence([]float64{0, 0.9}, 4000, 11)
	clean, jammed := rows[0], rows[1]
	if clean.PlainKbs <= 0 {
		t.Fatal("no baseline goodput")
	}
	// Without interference AFH costs nothing (same capacity).
	if ratio := clean.AFHKbs / clean.PlainKbs; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("AFH on a clean channel changed goodput by %vx", ratio)
	}
	// A 90%-duty jammer over 23/79 channels costs classic hopping a
	// large fraction of its goodput; AFH avoids the band entirely.
	if jammed.PlainKbs >= clean.PlainKbs*0.85 {
		t.Fatalf("jammer had no effect: %v vs clean %v", jammed.PlainKbs, clean.PlainKbs)
	}
	if jammed.AFHKbs <= jammed.PlainKbs*1.1 {
		t.Fatalf("AFH did not help: %v vs plain %v", jammed.AFHKbs, jammed.PlainKbs)
	}
	if jammed.AFHKbs < clean.PlainKbs*0.9 {
		t.Fatalf("AFH should restore nearly full goodput: %v vs clean %v",
			jammed.AFHKbs, clean.PlainKbs)
	}
	if !strings.Contains(CoexistenceTable(rows).String(), "afh_gain") {
		t.Fatal("table broken")
	}
}

func TestMultiPiconetDegradation(t *testing.T) {
	rows := MultiPiconet([]int{1, 3}, 4000, 13)
	single, triple := rows[0], rows[1]
	if single.PerLinkKbs <= 0 {
		t.Fatal("no single-piconet goodput")
	}
	if single.Collisions != 0 {
		t.Fatalf("a lone piconet cannot collide with itself: %d", single.Collisions)
	}
	if triple.Collisions == 0 {
		t.Fatal("co-located piconets must collide occasionally")
	}
	// Degradation exists but FHSS keeps it mild (~1-2 collisions per 79
	// slot-pairs per foreign piconet).
	if triple.PerLinkKbs >= single.PerLinkKbs {
		t.Fatalf("no degradation: %v vs %v", triple.PerLinkKbs, single.PerLinkKbs)
	}
	if triple.PerLinkKbs < single.PerLinkKbs*0.7 {
		t.Fatalf("degradation implausibly harsh: %v vs %v", triple.PerLinkKbs, single.PerLinkKbs)
	}
	if !strings.Contains(MultiPiconetTable(rows).String(), "per_link_kbps") {
		t.Fatal("table broken")
	}
}
