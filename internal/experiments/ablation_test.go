package experiments

import (
	"strings"
	"testing"

	"repro/internal/packet"
)

func TestAblationBackoffMonotone(t *testing.T) {
	rows := AblationBackoff([]int{127, 1023}, 0.01, 8)
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	short, long := rows[0], rows[1]
	// The backoff dominates the inquiry mean: a short span must discover
	// much faster.
	if short.MeanTS >= long.MeanTS {
		t.Fatalf("backoff 127 mean %v >= backoff 1023 mean %v", short.MeanTS, long.MeanTS)
	}
	if short.FailRate > long.FailRate+0.2 {
		t.Fatalf("short backoff should not fail more: %v vs %v", short.FailRate, long.FailRate)
	}
}

func TestAblationNInquirySpecValueTimesOut(t *testing.T) {
	rows := AblationNInquiry([]int{64, 256}, 0.01, 8)
	paper, spec := rows[0], rows[1]
	// With the spec's 256 repetitions the A→B swap happens after the
	// paper's timeout: scanners on a B-train phase are unreachable, so
	// failures rise substantially.
	if spec.FailRate <= paper.FailRate {
		t.Fatalf("NInquiry=256 must fail more under a 1.28s timeout: %v vs %v",
			spec.FailRate, paper.FailRate)
	}
}

func TestAblationCorrelatorStrictThresholdHurts(t *testing.T) {
	// Threshold 1 (not 0: zero-valued config fields mean "default") at
	// BER 1/30: only ~37%% of sync words arrive with at most one error,
	// and every lost FHS costs a full backoff cycle.
	rows := AblationCorrelator([]int{1, 7}, 1.0/30, 12)
	strict, normal := rows[0], rows[1]
	if strict.FailRate <= normal.FailRate {
		t.Fatalf("threshold 1 must fail more at BER 1/30: %v vs %v",
			strict.FailRate, normal.FailRate)
	}
}

func TestPacketTypeThroughputTradeoffs(t *testing.T) {
	types := []packet.Type{packet.TypeDM1, packet.TypeDH5}
	bers := []BERPoint{{"0", 0}, {"1/150", 1.0 / 150}}
	rows := PacketTypeThroughput(types, bers, 3000, 5)
	get := func(ty packet.Type, label string) ThroughputRow {
		for _, r := range rows {
			if r.Type == ty && r.BER.Label == label {
				return r
			}
		}
		t.Fatalf("missing row %v/%s", ty, label)
		return ThroughputRow{}
	}
	dm1c, dh5c := get(packet.TypeDM1, "0"), get(packet.TypeDH5, "0")
	// Clean channel: the big unprotected packet wins by a wide margin.
	if dh5c.GoodputKbs <= dm1c.GoodputKbs*2 {
		t.Fatalf("DH5 clean %v should dwarf DM1 clean %v", dh5c.GoodputKbs, dm1c.GoodputKbs)
	}
	dh5n := get(packet.TypeDH5, "1/150")
	// Noise collapses DH5: a 2871-bit packet with one CRC almost always
	// dies at BER 1/150.
	if dh5n.GoodputKbs > dh5c.GoodputKbs/3 {
		t.Fatalf("DH5 under noise %v did not collapse (clean %v)", dh5n.GoodputKbs, dh5c.GoodputKbs)
	}
	dm1n := get(packet.TypeDM1, "1/150")
	// The FEC-protected type keeps most of its goodput.
	if dm1n.GoodputKbs < dm1c.GoodputKbs/2 {
		t.Fatalf("DM1 under noise %v lost too much (clean %v)", dm1n.GoodputKbs, dm1c.GoodputKbs)
	}
	if !strings.Contains(ThroughputTable(rows).String(), "goodput_kbps") {
		t.Fatal("table broken")
	}
}

func TestAblationTableRenders(t *testing.T) {
	tbl := AblationTable("t", "p", []AblationRow{{Param: 64, MeanTS: 900, FailRate: 0.1}})
	if !strings.Contains(tbl.String(), "900") {
		t.Fatal("table missing data")
	}
}
