package experiments

import (
	"testing"

	"repro/internal/runner"
)

// TestRunnerDeterminism asserts the tentpole contract of the parallel
// runner: a Fig-6-class sweep rendered as tables must be byte-identical
// whether the replicas ran inline on one goroutine, on a single-worker
// pool, or fanned out across N workers. The table strings (not just the
// rows) are compared so formatting-order bugs would also surface.
func TestRunnerDeterminism(t *testing.T) {
	defer runner.SetDefaultWorkers(0)

	bers := []BERPoint{{"1/100", 0.01}, {"1/50", 0.02}, {"1/30", 1.0 / 30}}
	render := func() string {
		inq := InquirySweep(bers, 8)
		page := PageSweep(bers, 8)
		abl := AblationBackoff([]int{127, 1023}, 0.01, 4)
		return Fig6Table(inq).String() +
			Fig7Table(page).String() +
			Fig8Table(inq, page).CSV() +
			AblationTable("abl", "span", abl).String()
	}

	runner.SetDefaultWorkers(runner.Serial)
	want := render()

	for _, workers := range []int{1, 4, 16} {
		runner.SetDefaultWorkers(workers)
		if got := render(); got != want {
			t.Fatalf("tables diverged at %d workers:\n--- serial ---\n%s\n--- %d workers ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestSingleReplicaSweepsDeterministic covers the single-replica
// figures (activity measurements and goodput sweeps) across schedules.
func TestSingleReplicaSweepsDeterministic(t *testing.T) {
	defer runner.SetDefaultWorkers(0)

	render := func() string {
		f10 := Fig10MasterActivity([]float64{0, 0.01, 0.02}, 2000, 1)
		f11 := Fig11SniffActivity([]int{20, 100}, 100, 3000, 2)
		f12 := Fig12HoldActivity([]int{50, 400}, 4000, 3)
		return Fig10Table(f10).String() + Fig11Table(f11).String() + Fig12Table(f12).String()
	}

	runner.SetDefaultWorkers(runner.Serial)
	want := render()
	runner.SetDefaultWorkers(4)
	if got := render(); got != want {
		t.Fatalf("single-replica tables diverged:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}
