package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

// TestFiguresShardEquivalence is the headline shard-equivalence pin:
// every figure table in the paper set plus both VCD waveform digests,
// rendered on a serial kernel and on a 4-shard conservative kernel,
// must be byte-identical. The sharded kernel changes how event queues
// are stored and advanced — never what fires when — so any divergence
// here means the conservative windowing reordered an event, which
// would silently corrupt every figure. Runs under -race in its own CI
// step (shard refresh is the kernel's only forked code path).
func TestFiguresShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every figure twice")
	}
	defer runner.SetDefaultWorkers(0)
	defer core.SetDefaultShards(0)
	runner.SetDefaultWorkers(runner.Serial)

	core.SetDefaultShards(1)
	serial := renderAllFigures()

	core.SetDefaultShards(4)
	sharded := renderAllFigures()

	if serial != sharded {
		t.Fatalf("shards=4 output diverged from shards=1:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s",
			serial, sharded)
	}
}
