// Package experiments regenerates every figure of the paper's evaluation
// (Figs 5-12) plus the ablations DESIGN.md calls out. Each Fig* function
// declares its sweep — parameter points, replica seeds, a trial kernel —
// and hands it to internal/runner, which fans the independent replicas
// out across a worker pool and folds the results back in deterministic
// replica order. The cmd/btexp binary and the benchmark harness share
// one implementation; serial and parallel schedules produce byte-for-
// byte identical tables.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/stats"
)

// BERPoint is one x-axis position of the paper's noise sweeps.
type BERPoint struct {
	Label string
	Value float64
}

// PaperBERs returns the sweep of the paper's Figs 6-8: 1/100 .. 1/30.
func PaperBERs() []BERPoint {
	return []BERPoint{
		{"1/100", 1.0 / 100}, {"1/90", 1.0 / 90}, {"1/80", 1.0 / 80},
		{"1/70", 1.0 / 70}, {"1/60", 1.0 / 60}, {"1/50", 1.0 / 50},
		{"1/40", 1.0 / 40}, {"1/30", 1.0 / 30},
	}
}

// TimeoutSlots is the paper's inquiry/page timeout: 1.28 s = 2048 slots.
const TimeoutSlots = 2048

// oneCfg picks the optional runner.Config off a variadic tail. Every
// sweep entry point takes `cfg ...runner.Config` so callers that need a
// per-run Progress hook or cancellation context (the service layer, a
// progress-bar CLI) can pass one without the zero-config callers — the
// tests, the benchmarks — changing at all.
func oneCfg(cfg []runner.Config) runner.Config {
	if len(cfg) > 0 {
		return cfg[0]
	}
	return runner.Config{}
}

// twoDevices builds the standard master/slave pair for a trial.
func twoDevices(seed uint64, ber float64) (*core.Simulation, *baseband.Device, *baseband.Device) {
	return twoDevicesCfg(seed, ber, nil)
}

// twoDevicesCfg is twoDevices with a config hook applied to both ends.
func twoDevicesCfg(seed uint64, ber float64, mut func(*baseband.Config)) (*core.Simulation, *baseband.Device, *baseband.Device) {
	s := core.NewSimulation(core.Options{Seed: seed, BER: ber})
	mc := baseband.Config{Addr: baseband.BDAddr{LAP: 0x21043A, UAP: 0x47, NAP: 0x0001}}
	sc := baseband.Config{Addr: baseband.BDAddr{LAP: 0x5A3F19, UAP: 0x9C, NAP: 0x0002}}
	if mut != nil {
		mut(&mc)
		mut(&sc)
	}
	m := s.AddDevice("master", mc)
	sl := s.AddDevice("slave", sc)
	return s, m, sl
}

// PhaseResult summarises one phase of the creation sweep at one BER.
type PhaseResult struct {
	BER      BERPoint
	MeanTS   float64
	CI95     float64
	FailRate float64
	N        int
}

// phaseStats is the mergeable accumulator one creation-phase replica
// produces: a zero-or-one element time sample plus a one-trial counter.
// Folding replicas in replica order reproduces the serial accumulation
// bit for bit, whatever schedule computed them.
type phaseStats struct {
	TS   stats.Sample
	Fail stats.Counter
}

func (a *phaseStats) merge(b *phaseStats) {
	a.TS.Merge(&b.TS)
	a.Fail.Merge(b.Fail)
}

// phaseResult folds the per-replica accumulators of one sweep point.
func phaseResult(b BERPoint, reps []phaseStats) PhaseResult {
	var acc phaseStats
	for i := range reps {
		acc.merge(&reps[i])
	}
	return PhaseResult{
		BER:      b,
		MeanTS:   acc.TS.Mean(),
		CI95:     acc.TS.CI95(),
		FailRate: acc.Fail.FailureRate(),
		N:        acc.Fail.Total,
	}
}

// inquiryTrial returns a trial running one inquiry attempt at the
// point's BER, with mut applied to both ends (nil for the paper setup).
func inquiryTrial(mut func(*baseband.Config)) func(uint64, BERPoint) phaseStats {
	return func(seed uint64, b BERPoint) phaseStats {
		s, m, sl := twoDevicesCfg(seed, b.Value, mut)
		sl.StartInquiryScan()
		var ok bool
		m.StartInquiry(TimeoutSlots, 1, func(rs []baseband.InquiryResult, o bool) { ok = o })
		s.RunSlots(TimeoutSlots + 64)
		var out phaseStats
		out.Fail.Observe(ok)
		if ok {
			out.TS.Add(float64(m.InquirySlots()))
		}
		return out
	}
}

// InquirySweep measures the inquiry phase vs BER (Fig 6 data and the
// inquiry curve of Fig 8): mean time slots over successful trials, and
// the failure probability at the paper's timeout.
func InquirySweep(bers []BERPoint, seeds int, cfg ...runner.Config) []PhaseResult {
	sw := runner.Sweep[BERPoint, phaseStats]{
		Name:     "inquiry",
		Points:   bers,
		Replicas: seeds,
		Seed:     func(_, replica int) uint64 { return uint64(replica)*7919 + 1 },
		Trial:    inquiryTrial(nil),
	}
	return runner.ReducePoints(bers, sw.Run(oneCfg(cfg)), phaseResult)
}

// PageSweep measures the page phase vs BER (Fig 7 data and the page
// curve of Fig 8), with devices already synchronised as after inquiry.
func PageSweep(bers []BERPoint, seeds int, cfg ...runner.Config) []PhaseResult {
	sw := runner.Sweep[BERPoint, phaseStats]{
		Name:     "page",
		Points:   bers,
		Replicas: seeds,
		Seed:     func(_, replica int) uint64 { return uint64(replica)*104729 + 3 },
		Trial: func(seed uint64, b BERPoint) phaseStats {
			s, m, sl := twoDevices(seed, b.Value)
			ok, slots := s.RunPageOnly(m, sl, TimeoutSlots)
			var out phaseStats
			out.Fail.Observe(ok)
			if ok {
				out.TS.Add(float64(slots))
			}
			return out
		},
	}
	return runner.ReducePoints(bers, sw.Run(oneCfg(cfg)), phaseResult)
}

// Fig6Table renders the inquiry sweep as the paper's Fig 6.
func Fig6Table(rows []PhaseResult) *stats.Table {
	t := stats.NewTable("Fig 6: mean time slots to complete INQUIRY vs BER", "BER", "mean_TS", "ci95", "n")
	for _, r := range rows {
		t.AddRow(r.BER.Label, r.MeanTS, r.CI95, r.N)
	}
	return t
}

// Fig7Table renders the page sweep as the paper's Fig 7.
func Fig7Table(rows []PhaseResult) *stats.Table {
	t := stats.NewTable("Fig 7: mean time slots to complete PAGE vs BER", "BER", "mean_TS", "ci95", "n")
	for _, r := range rows {
		t.AddRow(r.BER.Label, r.MeanTS, r.CI95, r.N)
	}
	return t
}

// Fig8Table combines both sweeps into the creation-failure figure.
func Fig8Table(inq, page []PhaseResult) *stats.Table {
	t := stats.NewTable("Fig 8: piconet creation failure probability vs BER",
		"BER", "inquiry_fail", "page_fail", "creation_fail")
	for i := range inq {
		pf := 0.0
		if i < len(page) {
			pf = page[i].FailRate
		}
		// Both phases must succeed to create the piconet.
		cf := 1 - (1-inq[i].FailRate)*(1-pf)
		t.AddRow(inq[i].BER.Label, inq[i].FailRate, pf, cf)
	}
	return t
}

// Fig5Waveforms simulates the creation of a piconet with one master and
// three slaves, dumping the RF-enable waveforms to w as VCD (Fig 5).
// It returns the number of master-side links for verification.
func Fig5Waveforms(w io.Writer, seed uint64) (links int, err error) {
	s := core.NewSimulation(core.Options{Seed: seed, TraceTo: w})
	m := s.AddDevice("master", baseband.Config{Addr: baseband.BDAddr{LAP: 0x101000, UAP: 1}})
	s1 := s.AddDevice("slave1", baseband.Config{Addr: baseband.BDAddr{LAP: 0x202000, UAP: 2}})
	s2 := s.AddDevice("slave2", baseband.Config{Addr: baseband.BDAddr{LAP: 0x303000, UAP: 3}})
	s3 := s.AddDevice("slave3", baseband.Config{Addr: baseband.BDAddr{LAP: 0x404000, UAP: 4}})
	ls := s.BuildPiconet(m, s1, s2, s3)
	// Run on with light traffic so the polling waveform shows.
	ls[0].Send([]byte("fig5"), packet.LLIDL2CAPStart)
	s.RunSlots(400)
	return len(ls), s.Close()
}

// Fig9Waveforms simulates two slaves entering sniff mode (Fig 9),
// dumping waveforms to w. sniffSlots is Tsniff; the paper used a short
// sniff timeout of 2 slots, here the attempt window.
func Fig9Waveforms(w io.Writer, sniffSlots, attempt int, seed uint64) error {
	s := core.NewSimulation(core.Options{Seed: seed, TraceTo: w})
	m := s.AddDevice("master", baseband.Config{Addr: baseband.BDAddr{LAP: 0x111000, UAP: 1}})
	s1 := s.AddDevice("slave1", baseband.Config{Addr: baseband.BDAddr{LAP: 0x222000, UAP: 2}})
	s2 := s.AddDevice("slave2", baseband.Config{Addr: baseband.BDAddr{LAP: 0x333000, UAP: 3}})
	s3 := s.AddDevice("slave3", baseband.Config{Addr: baseband.BDAddr{LAP: 0x444000, UAP: 4}})
	links := s.BuildPiconet(m, s1, s2, s3)
	// Slaves 2 and 3 enter sniff (both ends), slave 1 stays active.
	for _, i := range []int{1, 2} {
		links[i].EnterSniff(sniffSlots, attempt, 0)
		slaves := []*baseband.Device{s1, s2, s3}
		slaves[i].MasterLink().EnterSniff(sniffSlots, attempt, 0)
	}
	s.RunSlots(600)
	return s.Close()
}

// Fig10Row is one duty-cycle point of the master-activity figure.
type Fig10Row struct {
	DutyCycle  float64
	TxActivity float64
	RxActivity float64
}

// Fig10MasterActivity measures the master's RF activity as a function of
// the channel duty cycle (fraction of the master's transmit slots that
// carry data). The paper's Fig 10: both curves linear, TX above RX,
// fractions of a percent.
func Fig10MasterActivity(duties []float64, measureSlots uint64, seed uint64, cfg ...runner.Config) []Fig10Row {
	sw := runner.Sweep[float64, Fig10Row]{
		Name:   "fig10",
		Points: duties,
		Seed:   func(point, _ int) uint64 { return seed + uint64(duties[point]*1e6) },
		Trial: func(seed uint64, duty float64) Fig10Row {
			// Polls would add activity on top of data; push Tpoll beyond the
			// horizon so the duty cycle alone drives the radio.
			s, m, sl := twoDevicesCfg(seed, 0, func(c *baseband.Config) {
				c.TpollSlots = 1 << 20
			})
			lks := s.BuildPiconet(m, sl)
			l := lks[0]
			l.PacketType = packet.TypeDM1
			if duty > 0 {
				period := uint64(2.0 / duty) // master TX opportunity every 2 slots
				var pump func()
				pump = func() {
					l.Send([]byte{0xAB, 0xCD}, packet.LLIDL2CAPStart)
					m.After(period, pump)
				}
				pump()
			}
			core.ResetMeters(m)
			s.RunSlots(measureSlots)
			tx, rx := core.Activity(m)
			return Fig10Row{DutyCycle: duty, TxActivity: tx, RxActivity: rx}
		},
	}
	return runner.Flatten(sw.Run(oneCfg(cfg)))
}

// Fig10Table renders Fig 10.
func Fig10Table(rows []Fig10Row) *stats.Table {
	t := stats.NewTable("Fig 10: master RF activity vs duty cycle", "duty_cycle", "tx_activity", "rx_activity")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.2f%%", r.DutyCycle*100), r.TxActivity, r.RxActivity)
	}
	return t
}

// Fig11Row is one Tsniff point of the slave-activity figure.
type Fig11Row struct {
	TsniffSlots int
	Active      float64 // slave TX+RX activity in active mode
	Sniff       float64 // same with sniff enabled
}

// Fig11SniffActivity measures slave RF activity (TX+RX) vs Tsniff with
// the master transmitting a DH3 data packet every dataPeriod slots (the
// paper fixes 100). The active-mode value is Tsniff-independent; it is
// measured as the Tsniff=0 point of the same sweep.
func Fig11SniffActivity(tsniffs []int, dataPeriod int, measureSlots uint64, seed uint64, cfg ...runner.Config) []Fig11Row {
	points := append([]int{0}, tsniffs...)
	sw := runner.Sweep[int, float64]{
		Name:   "fig11",
		Points: points,
		Seed:   func(_, _ int) uint64 { return seed },
		Trial: func(seed uint64, tsniff int) float64 {
			// With data every dataPeriod slots, a Tpoll of the same length
			// keeps extra polls out of the measurement (the data is the poll).
			s, m, sl := twoDevicesCfg(seed, 0, func(c *baseband.Config) {
				c.TpollSlots = dataPeriod
			})
			lks := s.BuildPiconet(m, sl)
			l := lks[0]
			l.PacketType = packet.TypeDH3
			if tsniff > 0 {
				l.EnterSniff(tsniff, 2, 0)
				sl.MasterLink().EnterSniff(tsniff, 2, 0)
			}
			var pump func()
			pump = func() {
				if l.QueueLen() == 0 {
					l.Send(make([]byte, packet.TypeDH3.MaxPayload()), packet.LLIDL2CAPStart)
				}
				m.After(uint64(dataPeriod), pump)
			}
			pump()
			s.RunSlots(uint64(dataPeriod) * 2) // warm up one period
			core.ResetMeters(sl)
			s.RunSlots(measureSlots)
			tx, rx := core.Activity(sl)
			return tx + rx
		},
	}
	acts := runner.Flatten(sw.Run(oneCfg(cfg)))
	active := acts[0]
	out := make([]Fig11Row, 0, len(tsniffs))
	for i, t := range tsniffs {
		out = append(out, Fig11Row{TsniffSlots: t, Active: active, Sniff: acts[i+1]})
	}
	return out
}

// Fig11Table renders Fig 11.
func Fig11Table(rows []Fig11Row) *stats.Table {
	t := stats.NewTable("Fig 11: slave RF activity (TX+RX) vs Tsniff (data every 100 TS)",
		"Tsniff_slots", "active", "sniff", "saving")
	for _, r := range rows {
		saving := 0.0
		if r.Active > 0 {
			saving = 1 - r.Sniff/r.Active
		}
		t.AddRow(r.TsniffSlots, r.Active, r.Sniff, saving)
	}
	return t
}

// Fig12Row is one Thold point of the hold figure.
type Fig12Row struct {
	TholdSlots int
	Active     float64
	Hold       float64
}

// Fig12HoldActivity measures slave RF activity vs Thold with no user
// data: active mode costs the carrier-sense windows plus the master's
// periodic sync polls (the paper's flat 2.6%), hold costs one resync
// listen per cycle. Active mode is the Thold=0 point of the same sweep.
func Fig12HoldActivity(tholds []int, measureSlots uint64, seed uint64, cfg ...runner.Config) []Fig12Row {
	points := append([]int{0}, tholds...)
	sw := runner.Sweep[int, float64]{
		Name:   "fig12",
		Points: points,
		Seed:   func(_, _ int) uint64 { return seed },
		Trial: func(seed uint64, thold int) float64 {
			s, m, sl := twoDevices(seed, 0)
			lks := s.BuildPiconet(m, sl)
			if thold > 0 {
				lks[0].EnterHoldRepeating(thold)
				sl.MasterLink().EnterHoldRepeating(thold)
				// Let at least one full cycle pass before measuring.
				s.RunSlots(uint64(thold) + 32)
			} else {
				s.RunSlots(64)
			}
			core.ResetMeters(sl)
			s.RunSlots(measureSlots)
			tx, rx := core.Activity(sl)
			return tx + rx
		},
	}
	acts := runner.Flatten(sw.Run(oneCfg(cfg)))
	active := acts[0]
	out := make([]Fig12Row, 0, len(tholds))
	for i, th := range tholds {
		out = append(out, Fig12Row{TholdSlots: th, Active: active, Hold: acts[i+1]})
	}
	return out
}

// Fig12Table renders Fig 12.
func Fig12Table(rows []Fig12Row) *stats.Table {
	t := stats.NewTable("Fig 12: slave RF activity (TX+RX) vs Thold (no data)",
		"Thold_slots", "active", "hold")
	for _, r := range rows {
		t.AddRow(r.TholdSlots, r.Active, r.Hold)
	}
	return t
}
