package experiments

import (
	"strings"
	"testing"

	"repro/internal/runner"
)

func TestCoexSweepDegradation(t *testing.T) {
	rows := CoexSweep([]int{1, 4}, 4000, 3, 17)
	single, quad := rows[0], rows[1]
	if single.PerLinkKbs <= 0 {
		t.Fatal("no single-piconet goodput")
	}
	if single.Inter != 0 {
		t.Fatalf("a lone piconet cannot collide across piconets: %v", single.Inter)
	}
	if quad.Inter == 0 {
		t.Fatal("four co-located piconets must collide across piconets")
	}
	if quad.PerLinkKbs >= single.PerLinkKbs {
		t.Fatalf("no degradation: %v vs %v", quad.PerLinkKbs, single.PerLinkKbs)
	}
	if quad.Retransmits <= single.Retransmits {
		t.Fatalf("inter-piconet collisions must cost retransmissions: %v vs %v",
			quad.Retransmits, single.Retransmits)
	}
	if !strings.Contains(CoexTable(rows).String(), "inter_collisions") {
		t.Fatal("table broken")
	}
}

func TestAdaptiveAFHRecoversOracleGoodput(t *testing.T) {
	rows := AdaptiveAFH([]int{23}, 0.9, 1500, 6000, 19)
	r := rows[0]
	if r.PlainKbs <= 0 || r.OracleKbs <= 0 {
		t.Fatalf("no goodput: %+v", r)
	}
	if r.OracleKbs <= r.PlainKbs*1.1 {
		t.Fatalf("oracle AFH did not help under the jammer: %+v", r)
	}
	// Acceptance bar: the learned map recovers >= 80% of the oracle
	// ExcludeRange throughput under the 22 MHz (23-channel) jammer.
	if r.LearnedKbs < r.OracleKbs*0.8 {
		t.Fatalf("learned map recovers only %.1f%% of oracle goodput: %+v",
			r.LearnedKbs/r.OracleKbs*100, r)
	}
	if r.LearnedN >= 79 {
		t.Fatalf("learned map never narrowed: %+v", r)
	}
	if !strings.Contains(AdaptiveAFHTable(0.9, rows).String(), "learned_vs_oracle") {
		t.Fatal("table broken")
	}
}

// TestCoexSweepsDeterministicAcrossWorkers pins the runner contract for
// the coexistence sweeps: serial and N-worker schedules must render
// byte-identical tables.
func TestCoexSweepsDeterministicAcrossWorkers(t *testing.T) {
	defer runner.SetDefaultWorkers(0)

	render := func() string {
		cs := CoexSweep([]int{1, 2, 3}, 2000, 2, 29)
		af := AdaptiveAFH([]int{11, 23}, 0.9, 1000, 2000, 31)
		return CoexTable(cs).String() + AdaptiveAFHTable(0.9, af).CSV()
	}

	runner.SetDefaultWorkers(runner.Serial)
	want := render()
	for _, workers := range []int{1, 4} {
		runner.SetDefaultWorkers(workers)
		if got := render(); got != want {
			t.Fatalf("coex tables diverged at %d workers:\n--- serial ---\n%s\n--- %d workers ---\n%s",
				workers, want, workers, got)
		}
	}
}
