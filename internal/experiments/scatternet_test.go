package experiments

import (
	"strings"
	"testing"

	"repro/internal/runner"
)

func TestScatternetSweepMonotoneInDuty(t *testing.T) {
	rows := ScatternetSweep([]float64{0.3, 0.6, 0.9}, 8000, 2, 29)
	lo, mid, hi := rows[0], rows[1], rows[2]
	if lo.GoodputKbps <= 0 {
		t.Fatalf("no goodput at duty 0.3: %+v", lo)
	}
	// The acceptance bar: goodput monotone in bridge presence duty.
	if !(lo.GoodputKbps < mid.GoodputKbps && mid.GoodputKbps < hi.GoodputKbps) {
		t.Fatalf("goodput not monotone in duty: %.2f, %.2f, %.2f kbps",
			lo.GoodputKbps, mid.GoodputKbps, hi.GoodputKbps)
	}
	// Wider windows drain the bounded queue faster, so the bridge
	// forwarding latency falls as duty rises.
	if !(lo.FwdLatencyMs > mid.FwdLatencyMs && mid.FwdLatencyMs > hi.FwdLatencyMs) {
		t.Fatalf("forwarding latency not decreasing in duty: %.1f, %.1f, %.1f ms",
			lo.FwdLatencyMs, mid.FwdLatencyMs, hi.FwdLatencyMs)
	}
	if hi.Forwarded <= lo.Forwarded {
		t.Fatalf("forwarded frames not growing with duty: %v vs %v", hi.Forwarded, lo.Forwarded)
	}
	if !strings.Contains(ScatternetTable(rows).String(), "fwd_latency_ms") {
		t.Fatal("table broken")
	}
}

// TestScatternetSweepDeterministicAcrossWorkers pins the acceptance
// criterion that the sweep is byte-identical across worker counts.
func TestScatternetSweepDeterministicAcrossWorkers(t *testing.T) {
	defer runner.SetDefaultWorkers(0)

	render := func() string {
		return ScatternetTable(ScatternetSweep([]float64{0.4, 0.8}, 4000, 2, 31)).String()
	}
	runner.SetDefaultWorkers(runner.Serial)
	want := render()
	for _, workers := range []int{1, 4} {
		runner.SetDefaultWorkers(workers)
		if got := render(); got != want {
			t.Fatalf("tables diverged at %d workers:\n--- serial ---\n%s\n--- %d workers ---\n%s",
				workers, want, workers, got)
		}
	}
}
