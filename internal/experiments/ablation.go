package experiments

import (
	"repro/internal/baseband"
	"repro/internal/packet"
	"repro/internal/stats"
)

// AblationRow is one configuration point of a design-choice sweep.
type AblationRow struct {
	Param    int
	MeanTS   float64
	FailRate float64
}

// AblationBackoff sweeps the inquiry-response random-backoff span: a
// short span speeds discovery (the backoff dominates the inquiry mean)
// but in dense deployments would collide responses; the spec value is
// 1023.
func AblationBackoff(spans []int, ber float64, seeds int) []AblationRow {
	out := make([]AblationRow, 0, len(spans))
	for _, span := range spans {
		var ts stats.Sample
		var fails stats.Counter
		for seed := 0; seed < seeds; seed++ {
			s, m, sl := twoDevicesCfg(uint64(seed)*31337+11, ber, func(c *baseband.Config) {
				c.BackoffMaxSlots = span
			})
			sl.StartInquiryScan()
			var ok bool
			m.StartInquiry(TimeoutSlots, 1, func(rs []baseband.InquiryResult, o bool) { ok = o })
			s.RunSlots(TimeoutSlots + 64)
			fails.Observe(ok)
			if ok {
				ts.Add(float64(m.InquirySlots()))
			}
		}
		out = append(out, AblationRow{Param: span, MeanTS: ts.Mean(), FailRate: fails.FailureRate()})
	}
	return out
}

// AblationNInquiry sweeps the train repetition count: the spec's 256
// repetitions push the A→B train swap past the paper's 1.28 s timeout,
// so scanners parked on a B-train phase are never found — the reason the
// reproduction (and presumably the paper) uses a smaller value.
func AblationNInquiry(ns []int, ber float64, seeds int) []AblationRow {
	out := make([]AblationRow, 0, len(ns))
	for _, n := range ns {
		var ts stats.Sample
		var fails stats.Counter
		for seed := 0; seed < seeds; seed++ {
			s, m, sl := twoDevicesCfg(uint64(seed)*7451+5, ber, func(c *baseband.Config) {
				c.NInquiry = n
			})
			sl.StartInquiryScan()
			var ok bool
			m.StartInquiry(TimeoutSlots, 1, func(rs []baseband.InquiryResult, o bool) { ok = o })
			s.RunSlots(TimeoutSlots + 64)
			fails.Observe(ok)
			if ok {
				ts.Add(float64(m.InquirySlots()))
			}
		}
		out = append(out, AblationRow{Param: n, MeanTS: ts.Mean(), FailRate: fails.FailureRate()})
	}
	return out
}

// AblationCorrelator sweeps the sync-word error threshold: too strict
// and noise drops IDs (discovery slows), too loose and false sync would
// rise in a real radio (the model only shows the robustness side).
func AblationCorrelator(thresholds []int, ber float64, seeds int) []AblationRow {
	out := make([]AblationRow, 0, len(thresholds))
	for _, th := range thresholds {
		var ts stats.Sample
		var fails stats.Counter
		for seed := 0; seed < seeds; seed++ {
			s, m, sl := twoDevicesCfg(uint64(seed)*94261+17, ber, func(c *baseband.Config) {
				c.CorrelatorThreshold = th
			})
			sl.StartInquiryScan()
			var ok bool
			m.StartInquiry(TimeoutSlots, 1, func(rs []baseband.InquiryResult, o bool) { ok = o })
			s.RunSlots(TimeoutSlots + 64)
			fails.Observe(ok)
			if ok {
				ts.Add(float64(m.InquirySlots()))
			}
		}
		out = append(out, AblationRow{Param: th, MeanTS: ts.Mean(), FailRate: fails.FailureRate()})
	}
	return out
}

// AblationTable renders a design sweep.
func AblationTable(title, param string, rows []AblationRow) *stats.Table {
	t := stats.NewTable(title, param, "inquiry_mean_TS", "inquiry_fail")
	for _, r := range rows {
		t.AddRow(r.Param, r.MeanTS, r.FailRate)
	}
	return t
}

// ThroughputRow reports effective one-way goodput for a packet type at
// one BER.
type ThroughputRow struct {
	Type       packet.Type
	BER        BERPoint
	GoodputKbs float64
	Retransmit int
}

// PacketTypeThroughput measures master→slave goodput for each ACL packet
// type under noise: the DM types sacrifice capacity for FEC robustness,
// the DH types win on clean channels and collapse under noise — the
// packet-choice trade-off the paper's introduction motivates.
func PacketTypeThroughput(types []packet.Type, bers []BERPoint, measureSlots uint64, seed uint64) []ThroughputRow {
	out := make([]ThroughputRow, 0, len(types)*len(bers))
	for _, ty := range types {
		for _, b := range bers {
			s, m, sl := twoDevicesCfg(seed+uint64(ty)<<8, b.Value, func(c *baseband.Config) {
				c.TpollSlots = 1 << 20
			})
			lks := s.BuildPiconet(m, sl)
			l := lks[0]
			l.PacketType = ty
			received := 0
			sl.OnData = func(_ *baseband.Link, p []byte, llid uint8) { received += len(p) }
			// Keep the transmit queue saturated.
			chunk := make([]byte, ty.MaxPayload())
			var pump func()
			pump = func() {
				for l.QueueLen() < 4 {
					l.Send(chunk, packet.LLIDL2CAPStart)
				}
				m.After(uint64(ty.Slots())*2, pump)
			}
			pump()
			s.RunSlots(measureSlots)
			seconds := float64(measureSlots) * 625e-6
			out = append(out, ThroughputRow{
				Type:       ty,
				BER:        b,
				GoodputKbs: float64(received) * 8 / 1000 / seconds,
				Retransmit: m.Counters.Retransmits,
			})
		}
	}
	return out
}

// ThroughputTable renders the packet-type ablation.
func ThroughputTable(rows []ThroughputRow) *stats.Table {
	t := stats.NewTable("Packet-type ablation: master→slave goodput under noise",
		"type", "BER", "goodput_kbps", "retransmits")
	for _, r := range rows {
		t.AddRow(r.Type.String(), r.BER.Label, r.GoodputKbs, r.Retransmit)
	}
	return t
}
