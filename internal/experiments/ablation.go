package experiments

import (
	"repro/internal/baseband"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/stats"
)

// AblationRow is one configuration point of a design-choice sweep.
type AblationRow struct {
	Param    int
	MeanTS   float64
	FailRate float64
}

// inquiryAblation runs the shared shape of the design sweeps: an
// inquiry attempt per (param, seed) with one config knob set per point,
// fanned out by the runner and folded per point in replica order.
func inquiryAblation(name string, params []int, ber float64, seeds int, cfg []runner.Config, seedOf func(replica int) uint64, set func(*baseband.Config, int)) []AblationRow {
	sw := runner.Sweep[int, phaseStats]{
		Name:     name,
		Points:   params,
		Replicas: seeds,
		Seed:     func(_, replica int) uint64 { return seedOf(replica) },
		Trial: func(seed uint64, param int) phaseStats {
			trial := inquiryTrial(func(c *baseband.Config) { set(c, param) })
			return trial(seed, BERPoint{Value: ber})
		},
	}
	return runner.ReducePoints(params, sw.Run(oneCfg(cfg)), func(param int, reps []phaseStats) AblationRow {
		var acc phaseStats
		for i := range reps {
			acc.merge(&reps[i])
		}
		return AblationRow{Param: param, MeanTS: acc.TS.Mean(), FailRate: acc.Fail.FailureRate()}
	})
}

// AblationBackoff sweeps the inquiry-response random-backoff span: a
// short span speeds discovery (the backoff dominates the inquiry mean)
// but in dense deployments would collide responses; the spec value is
// 1023.
func AblationBackoff(spans []int, ber float64, seeds int, cfg ...runner.Config) []AblationRow {
	return inquiryAblation("ablation-backoff", spans, ber, seeds, cfg,
		func(replica int) uint64 { return uint64(replica)*31337 + 11 },
		func(c *baseband.Config, span int) { c.BackoffMaxSlots = span })
}

// AblationNInquiry sweeps the train repetition count: the spec's 256
// repetitions push the A→B train swap past the paper's 1.28 s timeout,
// so scanners parked on a B-train phase are never found — the reason the
// reproduction (and presumably the paper) uses a smaller value.
func AblationNInquiry(ns []int, ber float64, seeds int, cfg ...runner.Config) []AblationRow {
	return inquiryAblation("ablation-ninquiry", ns, ber, seeds, cfg,
		func(replica int) uint64 { return uint64(replica)*7451 + 5 },
		func(c *baseband.Config, n int) { c.NInquiry = n })
}

// AblationCorrelator sweeps the sync-word error threshold: too strict
// and noise drops IDs (discovery slows), too loose and false sync would
// rise in a real radio (the model only shows the robustness side).
func AblationCorrelator(thresholds []int, ber float64, seeds int, cfg ...runner.Config) []AblationRow {
	return inquiryAblation("ablation-correlator", thresholds, ber, seeds, cfg,
		func(replica int) uint64 { return uint64(replica)*94261 + 17 },
		func(c *baseband.Config, th int) { c.CorrelatorThreshold = th })
}

// AblationTable renders a design sweep.
func AblationTable(title, param string, rows []AblationRow) *stats.Table {
	t := stats.NewTable(title, param, "inquiry_mean_TS", "inquiry_fail")
	for _, r := range rows {
		t.AddRow(r.Param, r.MeanTS, r.FailRate)
	}
	return t
}

// ThroughputRow reports effective one-way goodput for a packet type at
// one BER.
type ThroughputRow struct {
	Type       packet.Type
	BER        BERPoint
	GoodputKbs float64
	Retransmit int
}

// PacketTypeThroughput measures master→slave goodput for each ACL packet
// type under noise: the DM types sacrifice capacity for FEC robustness,
// the DH types win on clean channels and collapse under noise — the
// packet-choice trade-off the paper's introduction motivates.
func PacketTypeThroughput(types []packet.Type, bers []BERPoint, measureSlots uint64, seed uint64, cfg ...runner.Config) []ThroughputRow {
	points := runner.Cross(types, bers)
	sw := runner.Sweep[runner.Pair[packet.Type, BERPoint], ThroughputRow]{
		Name:   "throughput",
		Points: points,
		Seed:   func(point, _ int) uint64 { return seed + uint64(points[point].A)<<8 },
		Trial: func(seed uint64, p runner.Pair[packet.Type, BERPoint]) ThroughputRow {
			ty, b := p.A, p.B
			s, m, sl := twoDevicesCfg(seed, b.Value, func(c *baseband.Config) {
				c.TpollSlots = 1 << 20
			})
			lks := s.BuildPiconet(m, sl)
			l := lks[0]
			l.PacketType = ty
			received := 0
			sl.OnData = func(_ *baseband.Link, p []byte, llid uint8) { received += len(p) }
			// Keep the transmit queue saturated.
			chunk := make([]byte, ty.MaxPayload())
			var pump func()
			pump = func() {
				for l.QueueLen() < 4 {
					l.Send(chunk, packet.LLIDL2CAPStart)
				}
				m.After(uint64(ty.Slots())*2, pump)
			}
			pump()
			s.RunSlots(measureSlots)
			seconds := float64(measureSlots) * 625e-6
			return ThroughputRow{
				Type:       ty,
				BER:        b,
				GoodputKbs: float64(received) * 8 / 1000 / seconds,
				Retransmit: m.Counters.Retransmits,
			}
		},
	}
	return runner.Flatten(sw.Run(oneCfg(cfg)))
}

// ThroughputTable renders the packet-type ablation.
func ThroughputTable(rows []ThroughputRow) *stats.Table {
	t := stats.NewTable("Packet-type ablation: master→slave goodput under noise",
		"type", "BER", "goodput_kbps", "retransmits")
	for _, r := range rows {
		t.AddRow(r.Type.String(), r.BER.Label, r.GoodputKbs, r.Retransmit)
	}
	return t
}
