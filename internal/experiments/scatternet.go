package experiments

import (
	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/runner"
	"repro/internal/stats"
)

// ScatternetRow is one point of the bridge duty-cycle sweep: end-to-end
// goodput through the bridge, store-and-forward latency at the bridge,
// end-to-end delivery latency and the bridge queue profile, averaged
// over the replicas.
type ScatternetRow struct {
	Duty         float64
	GoodputKbps  float64
	FwdLatencyMs float64 // bridge store-and-forward latency
	E2ELatencyMs float64 // origin send to final delivery
	QueueMean    float64 // time-weighted bridge backlog
	QueueMax     float64
	Forwarded    float64
	Dropped      float64
	N            int // replicas averaged
}

// scatObs is one replica's raw observation.
type scatObs struct {
	Bytes     int
	FwdLatMs  float64
	E2ELatMs  float64
	QueueMean float64
	QueueMax  int
	Forwarded int
	Dropped   int
}

// msPerSlot converts slot latencies to milliseconds (one slot = 625 µs).
const msPerSlot = 0.625

// scatSettlePeriods is how many presence periods a trial runs before
// the measurement window opens, so the relay pipeline — presence
// scheduler, first window exchanges, queue ramp — reaches steady state.
const scatSettlePeriods = 3

// ScatternetSweep measures a two-piconet, one-bridge scatternet as the
// bridge's presence duty cycle sweeps: the canonical end-to-end flow
// (master of piconet 0 to a slave of piconet 1) runs through the
// bridge's store-and-forward relay, and each point reports goodput and
// latency. More presence means wider sniff windows on both bridge
// links, so goodput rises and the queueing latency falls monotonically
// with duty.
//
// Each point averages several replicas (fresh clock phases per seed):
// the relative phase between the two piconets' slot grids shifts how
// much of each presence window survives boundary rounding, so a single
// replica can sit a few percent off the mean.
func ScatternetSweep(duties []float64, measureSlots uint64, replicas int, seed uint64, cfg ...runner.Config) []ScatternetRow {
	sw := runner.Sweep[float64, scatObs]{
		Name:     "scatternet",
		Points:   duties,
		Replicas: replicas,
		Seed: func(point, replica int) uint64 {
			return seed + uint64(point)*131 + uint64(replica)*7919
		},
		Trial: func(seed uint64, duty float64) scatObs {
			w := netspec.MustBuild(core.NewSimulation(core.Options{Seed: seed}), netspec.Spec{
				Piconets: netspec.HomogeneousPiconets(2, 1),
				Bridges:  netspec.ChainBridges(2, netspec.WithPresence(duty)),
				Traffic: []netspec.Traffic{
					netspec.FlowTraffic(netspec.MasterName(0), netspec.SlaveName(1, 1)),
				},
			})
			w.Start()
			w.Sim.RunSlots(uint64(scatSettlePeriods * 256))
			w.ResetMetrics()
			w.Sim.RunSlots(measureSlots)
			m := w.Metrics()
			return scatObs{
				Bytes:     m.EndToEndBytes,
				FwdLatMs:  m.FwdLatency.Mean() * msPerSlot,
				E2ELatMs:  m.E2ELatency.Mean() * msPerSlot,
				QueueMean: m.Queue.Mean,
				QueueMax:  m.Queue.Max,
				Forwarded: m.ForwardedFrames,
				Dropped:   m.DroppedFrames,
			}
		},
	}
	return runner.ReducePoints(duties, sw.Run(oneCfg(cfg)), func(duty float64, obs []scatObs) ScatternetRow {
		row := ScatternetRow{Duty: duty, N: len(obs)}
		for _, o := range obs {
			row.GoodputKbps += netspec.GoodputKbps(o.Bytes, measureSlots)
			row.FwdLatencyMs += o.FwdLatMs
			row.E2ELatencyMs += o.E2ELatMs
			row.QueueMean += o.QueueMean
			row.QueueMax += float64(o.QueueMax)
			row.Forwarded += float64(o.Forwarded)
			row.Dropped += float64(o.Dropped)
		}
		n := float64(len(obs))
		row.GoodputKbps /= n
		row.FwdLatencyMs /= n
		row.E2ELatencyMs /= n
		row.QueueMean /= n
		row.QueueMax /= n
		row.Forwarded /= n
		row.Dropped /= n
		return row
	})
}

// ScatternetTable renders the bridge duty-cycle sweep.
func ScatternetTable(rows []ScatternetRow) *stats.Table {
	t := stats.NewTable("Scatternet: end-to-end goodput and forwarding latency vs bridge presence duty (replica means)",
		"duty", "goodput_kbps", "fwd_latency_ms", "e2e_latency_ms",
		"queue_mean", "queue_max", "forwarded", "dropped", "n")
	for _, r := range rows {
		t.AddRow(r.Duty, r.GoodputKbps, r.FwdLatencyMs, r.E2ELatencyMs,
			r.QueueMean, r.QueueMax, r.Forwarded, r.Dropped, r.N)
	}
	return t
}
