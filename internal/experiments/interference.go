package experiments

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/stats"
)

// CoexistenceRow compares goodput under a static 802.11-style interferer
// across hop-set strategies: classic hopping, the oracle map that
// excludes the jammed band by construction, and the map the adaptive
// classifier learns from per-frequency reception errors.
type CoexistenceRow struct {
	JammerDuty float64
	PlainKbs   float64 // classic 79-channel hopping
	AFHKbs     float64 // oracle hop set excluding the jammed band
	LearnedKbs float64 // hop set learned by adaptive channel classification
}

// jammerLo..jammerHi is the band the simulated 802.11 network occupies
// (a 22 MHz DSSS channel).
const (
	jammerLo = 30
	jammerHi = 52
)

// coexAssessWindowSlots is the classification window the learned-map arm
// of the coexistence sweep uses.
const coexAssessWindowSlots = 1500

// Coexistence measures master→slave goodput with a static interferer
// over channels 30-52, comparing classic hopping, an oracle AFH map
// that excludes the jammed band by construction, and the map learned by
// adaptive channel classification — the interference problem of the
// paper's references [3-5] and the v1.2 fix. All three arms run the
// identical protocol (same builder, same warm-up, same clean
// measurement window) so the columns of one row are comparable.
func Coexistence(duties []float64, measureSlots uint64, seed uint64, cfg ...runner.Config) []CoexistenceRow {
	const width = jammerHi - jammerLo + 1
	sw := runner.Sweep[float64, CoexistenceRow]{
		Name:   "coexistence",
		Points: duties,
		Seed:   func(point, _ int) uint64 { return seed + uint64(duties[point]*1000) },
		Trial: func(seed uint64, duty float64) CoexistenceRow {
			arm := func(mode netspec.AFHMode) float64 {
				kbs, _ := adaptiveArm(seed, mode, width, duty, coexAssessWindowSlots, measureSlots)
				return kbs
			}
			return CoexistenceRow{
				JammerDuty: duty,
				PlainKbs:   arm(netspec.AFHOff),
				AFHKbs:     arm(netspec.AFHOracle),
				LearnedKbs: arm(netspec.AFHAdaptive),
			}
		},
	}
	return runner.Flatten(sw.Run(oneCfg(cfg)))
}

// CoexistenceTable renders the AFH comparison.
func CoexistenceTable(rows []CoexistenceRow) *stats.Table {
	t := stats.NewTable("Coexistence: goodput under an 802.11 interferer on channels 30-52",
		"jammer_duty", "plain_kbps", "afh_kbps", "learned_kbps", "afh_gain")
	for _, r := range rows {
		gain := 0.0
		if r.PlainKbs > 0 {
			gain = r.AFHKbs / r.PlainKbs
		}
		t.AddRow(fmt.Sprintf("%.0f%%", r.JammerDuty*100), r.PlainKbs, r.AFHKbs, r.LearnedKbs, gain)
	}
	return t
}

// InterferenceRow reports per-piconet goodput with n co-located piconets.
type InterferenceRow struct {
	Piconets   int
	PerLinkKbs float64
	Collisions int
}

// MultiPiconet measures goodput degradation when several independent
// piconets share the room: uncoordinated hop sequences collide at the
// ~1/79 chance level per slot, the scenario of the paper's reference [4].
func MultiPiconet(counts []int, measureSlots uint64, seed uint64, cfg ...runner.Config) []InterferenceRow {
	sw := runner.Sweep[int, InterferenceRow]{
		Name:   "interference",
		Points: counts,
		Seed:   func(point, _ int) uint64 { return seed + uint64(counts[point]) },
		Trial: func(seed uint64, n int) InterferenceRow {
			s := core.NewSimulation(core.Options{Seed: seed})
			received := make([]int, n)
			for i := 0; i < n; i++ {
				m := s.AddDevice(fmt.Sprintf("master%d", i), baseband.Config{
					Addr:       baseband.BDAddr{LAP: 0x100000 + uint32(i)*0x1111, UAP: uint8(i + 1)},
					TpollSlots: 1 << 20,
				})
				sl := s.AddDevice(fmt.Sprintf("slave%d", i), baseband.Config{
					Addr:       baseband.BDAddr{LAP: 0x500000 + uint32(i)*0x2222, UAP: uint8(i + 101)},
					TpollSlots: 1 << 20,
					// Other piconets' traffic can collide with the handshake;
					// scan continuously so retries land promptly.
					PageScanWindowSlots:   2048,
					PageScanIntervalSlots: 2048,
				})
				lks := s.BuildPiconet(m, sl)
				l := lks[0]
				l.PacketType = packet.TypeDM1
				idx := i
				sl.OnData = func(_ *baseband.Link, p []byte, llid uint8) { received[idx] += len(p) }
				chunk := make([]byte, packet.TypeDM1.MaxPayload())
				var pump func()
				pump = func() {
					for l.QueueLen() < 4 {
						l.Send(chunk, packet.LLIDL2CAPStart)
					}
					m.After(2, pump)
				}
				pump()
			}
			// Earlier piconets pumped data while later ones were still being
			// set up; start the measurement window now.
			for i := range received {
				received[i] = 0
			}
			s.RunSlots(measureSlots)
			total := 0
			for _, r := range received {
				total += r
			}
			return InterferenceRow{
				Piconets:   n,
				PerLinkKbs: netspec.GoodputKbps(total, measureSlots) / float64(n),
				Collisions: s.Ch.Stats().Collisions,
			}
		},
	}
	return runner.Flatten(sw.Run(oneCfg(cfg)))
}

// MultiPiconetTable renders the co-located piconet sweep.
func MultiPiconetTable(rows []InterferenceRow) *stats.Table {
	t := stats.NewTable("Interference: per-link goodput with co-located piconets",
		"piconets", "per_link_kbps", "collisions")
	for _, r := range rows {
		t.AddRow(r.Piconets, r.PerLinkKbs, r.Collisions)
	}
	return t
}
