package experiments

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/hop"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/stats"
)

// CoexistenceRow compares goodput under a static 802.11-style interferer
// with and without adaptive frequency hopping.
type CoexistenceRow struct {
	JammerDuty float64
	PlainKbs   float64 // classic 79-channel hopping
	AFHKbs     float64 // hop set excluding the jammed band
}

// jammerLo..jammerHi is the band the simulated 802.11 network occupies
// (a 22 MHz DSSS channel).
const (
	jammerLo = 30
	jammerHi = 52
)

// Coexistence measures master→slave goodput with a static interferer
// over channels 30-52, comparing classic hopping against an AFH map that
// excludes the jammed band — the interference problem of the paper's
// references [3-5] and the v1.2 fix.
func Coexistence(duties []float64, measureSlots uint64, seed uint64) []CoexistenceRow {
	measure := func(seed uint64, duty float64, afh bool) float64 {
		s, m, sl := twoDevicesCfg(seed, 0, func(c *baseband.Config) {
			c.TpollSlots = 1 << 20
			// Paging hops the full band even under the jammer; a broken
			// handshake must retry promptly, so scan continuously here.
			c.PageScanWindowSlots = c.PageScanIntervalSlots
			if c.PageScanWindowSlots == 0 {
				c.PageScanWindowSlots = 2048
				c.PageScanIntervalSlots = 2048
			}
		})
		s.Ch.AddJammer(jammerLo, jammerHi, duty)
		lks := s.BuildPiconet(m, sl)
		l := lks[0]
		l.PacketType = packet.TypeDM1
		if afh {
			cm := hop.ExcludeRange(jammerLo, jammerHi)
			m.SetAFH(cm)
			sl.SetAFH(cm)
		}
		received := 0
		sl.OnData = func(_ *baseband.Link, p []byte, llid uint8) { received += len(p) }
		chunk := make([]byte, packet.TypeDM1.MaxPayload())
		var pump func()
		pump = func() {
			for l.QueueLen() < 4 {
				l.Send(chunk, packet.LLIDL2CAPStart)
			}
			m.After(2, pump)
		}
		pump()
		s.RunSlots(measureSlots)
		return float64(received) * 8 / 1000 / (float64(measureSlots) * 625e-6)
	}
	sw := runner.Sweep[float64, CoexistenceRow]{
		Name:   "coexistence",
		Points: duties,
		Seed:   func(point, _ int) uint64 { return seed + uint64(duties[point]*1000) },
		Trial: func(seed uint64, duty float64) CoexistenceRow {
			return CoexistenceRow{
				JammerDuty: duty,
				PlainKbs:   measure(seed, duty, false),
				AFHKbs:     measure(seed, duty, true),
			}
		},
	}
	return runner.Flatten(sw.Run(runner.Config{}))
}

// CoexistenceTable renders the AFH comparison.
func CoexistenceTable(rows []CoexistenceRow) *stats.Table {
	t := stats.NewTable("Coexistence: goodput under an 802.11 interferer on channels 30-52",
		"jammer_duty", "plain_kbps", "afh_kbps", "afh_gain")
	for _, r := range rows {
		gain := 0.0
		if r.PlainKbs > 0 {
			gain = r.AFHKbs / r.PlainKbs
		}
		t.AddRow(fmt.Sprintf("%.0f%%", r.JammerDuty*100), r.PlainKbs, r.AFHKbs, gain)
	}
	return t
}

// InterferenceRow reports per-piconet goodput with n co-located piconets.
type InterferenceRow struct {
	Piconets   int
	PerLinkKbs float64
	Collisions int
}

// MultiPiconet measures goodput degradation when several independent
// piconets share the room: uncoordinated hop sequences collide at the
// ~1/79 chance level per slot, the scenario of the paper's reference [4].
func MultiPiconet(counts []int, measureSlots uint64, seed uint64) []InterferenceRow {
	sw := runner.Sweep[int, InterferenceRow]{
		Name:   "interference",
		Points: counts,
		Seed:   func(point, _ int) uint64 { return seed + uint64(counts[point]) },
		Trial: func(seed uint64, n int) InterferenceRow {
			s := core.NewSimulation(core.Options{Seed: seed})
			received := make([]int, n)
			for i := 0; i < n; i++ {
				m := s.AddDevice(fmt.Sprintf("master%d", i), baseband.Config{
					Addr:       baseband.BDAddr{LAP: 0x100000 + uint32(i)*0x1111, UAP: uint8(i + 1)},
					TpollSlots: 1 << 20,
				})
				sl := s.AddDevice(fmt.Sprintf("slave%d", i), baseband.Config{
					Addr:       baseband.BDAddr{LAP: 0x500000 + uint32(i)*0x2222, UAP: uint8(i + 101)},
					TpollSlots: 1 << 20,
					// Other piconets' traffic can collide with the handshake;
					// scan continuously so retries land promptly.
					PageScanWindowSlots:   2048,
					PageScanIntervalSlots: 2048,
				})
				lks := s.BuildPiconet(m, sl)
				l := lks[0]
				l.PacketType = packet.TypeDM1
				idx := i
				sl.OnData = func(_ *baseband.Link, p []byte, llid uint8) { received[idx] += len(p) }
				chunk := make([]byte, packet.TypeDM1.MaxPayload())
				var pump func()
				pump = func() {
					for l.QueueLen() < 4 {
						l.Send(chunk, packet.LLIDL2CAPStart)
					}
					m.After(2, pump)
				}
				pump()
			}
			// Earlier piconets pumped data while later ones were still being
			// set up; start the measurement window now.
			for i := range received {
				received[i] = 0
			}
			s.RunSlots(measureSlots)
			total := 0
			for _, r := range received {
				total += r
			}
			return InterferenceRow{
				Piconets:   n,
				PerLinkKbs: float64(total) / float64(n) * 8 / 1000 / (float64(measureSlots) * 625e-6),
				Collisions: s.Ch.Stats().Collisions,
			}
		},
	}
	return runner.Flatten(sw.Run(runner.Config{}))
}

// MultiPiconetTable renders the co-located piconet sweep.
func MultiPiconetTable(rows []InterferenceRow) *stats.Table {
	t := stats.NewTable("Interference: per-link goodput with co-located piconets",
		"piconets", "per_link_kbps", "collisions")
	for _, r := range rows {
		t.AddRow(r.Piconets, r.PerLinkKbs, r.Collisions)
	}
	return t
}
