package experiments

import (
	"strings"
	"testing"
)

func TestInquirySweepShape(t *testing.T) {
	rows := InquirySweep([]BERPoint{{"1/100", 0.01}, {"1/30", 1.0 / 30}}, 6)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	lo, hi := rows[0], rows[1]
	if lo.FailRate > 0.6 {
		t.Fatalf("inquiry at BER 1/100 failing %.0f%% of the time", lo.FailRate*100)
	}
	if lo.MeanTS <= 0 || lo.MeanTS > TimeoutSlots {
		t.Fatalf("inquiry mean TS = %v", lo.MeanTS)
	}
	// Inquiry is robust to noise: even at 1/30 it mostly succeeds
	// (ID packets tolerate errors), unlike page.
	if hi.FailRate > 0.9 {
		t.Fatalf("inquiry at 1/30 fail rate %.2f too high", hi.FailRate)
	}
}

func TestPageSweepShape(t *testing.T) {
	rows := PageSweep([]BERPoint{{"0", 0}, {"1/100", 0.01}, {"1/30", 1.0 / 30}}, 8)
	clean, mid, noisy := rows[0], rows[1], rows[2]
	if clean.FailRate != 0 {
		t.Fatalf("noiseless page failed %.2f", clean.FailRate)
	}
	// Paper: ~17 TS noiseless; our handshake lands in the same regime.
	if clean.MeanTS > 64 {
		t.Fatalf("noiseless page mean = %v TS, want tens", clean.MeanTS)
	}
	// Successful pages complete within the scan window, so the mean moves
	// little with noise (the paper's slowdown shows up as failures in our
	// retry discipline); it must at least stay in the same regime.
	if mid.MeanTS > clean.MeanTS*4 {
		t.Fatalf("page mean exploded: %v vs %v", mid.MeanTS, clean.MeanTS)
	}
	if mid.FailRate <= clean.FailRate {
		t.Fatalf("noise must cost page failures: %v <= %v", mid.FailRate, clean.FailRate)
	}
	// Paper: page nearly impossible beyond 1/30.
	if noisy.FailRate < 0.5 {
		t.Fatalf("page at 1/30 fail rate %.2f, want high", noisy.FailRate)
	}
}

func TestFigTablesRender(t *testing.T) {
	inq := []PhaseResult{{BER: BERPoint{"1/100", 0.01}, MeanTS: 1500, FailRate: 0.1, N: 4}}
	pg := []PhaseResult{{BER: BERPoint{"1/100", 0.01}, MeanTS: 20, FailRate: 0.2, N: 4}}
	if !strings.Contains(Fig6Table(inq).String(), "1/100") {
		t.Fatal("fig6 table broken")
	}
	if !strings.Contains(Fig7Table(pg).String(), "20") {
		t.Fatal("fig7 table broken")
	}
	f8 := Fig8Table(inq, pg).CSV()
	if !strings.Contains(f8, "0.28") { // 1-(0.9*0.8) = 0.28
		t.Fatalf("fig8 combined failure wrong:\n%s", f8)
	}
}

func TestFig5WaveformsProduceVCD(t *testing.T) {
	var sb strings.Builder
	links, err := Fig5Waveforms(&sb, 42)
	if err != nil {
		t.Fatal(err)
	}
	if links != 3 {
		t.Fatalf("links = %d, want 3", links)
	}
	out := sb.String()
	for _, want := range []string{"enable_rx_RF", "enable_tx_RF", "slave3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q", want)
		}
	}
}

func TestFig9WaveformsProduceVCD(t *testing.T) {
	var sb strings.Builder
	if err := Fig9Waveforms(&sb, 20, 2, 43); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "slave2") {
		t.Fatal("VCD missing sniffing slave")
	}
}

func TestFig10LinearInDutyCycle(t *testing.T) {
	rows := Fig10MasterActivity([]float64{0, 0.01, 0.02}, 4000, 1)
	if rows[0].TxActivity != 0 {
		t.Fatalf("idle master TX activity = %v", rows[0].TxActivity)
	}
	if rows[1].TxActivity <= 0 || rows[2].TxActivity <= rows[1].TxActivity {
		t.Fatalf("TX not increasing: %+v", rows)
	}
	// Roughly linear: doubling duty ~doubles TX activity.
	ratio := rows[2].TxActivity / rows[1].TxActivity
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("TX linearity off: ratio = %v", ratio)
	}
	// TX above RX (data packets are longer than NULL responses).
	if rows[2].RxActivity >= rows[2].TxActivity {
		t.Fatalf("RX %v >= TX %v", rows[2].RxActivity, rows[2].TxActivity)
	}
	if !strings.Contains(Fig10Table(rows).String(), "duty_cycle") {
		t.Fatal("table broken")
	}
}

func TestFig11SniffCrossover(t *testing.T) {
	rows := Fig11SniffActivity([]int{20, 100}, 100, 6000, 2)
	short, long := rows[0], rows[1]
	if short.Active <= 0 || long.Sniff <= 0 {
		t.Fatalf("degenerate activities: %+v", rows)
	}
	// Paper: sniff saves ~30% at Tsniff=100 but nothing at Tsniff=20.
	if long.Sniff >= long.Active {
		t.Fatalf("sniff at 100 must beat active: %v vs %v", long.Sniff, long.Active)
	}
	if short.Sniff <= long.Sniff {
		t.Fatalf("shorter Tsniff must cost more: %v <= %v", short.Sniff, long.Sniff)
	}
	saving := 1 - long.Sniff/long.Active
	if saving < 0.15 || saving > 0.5 {
		t.Fatalf("saving at Tsniff=100 = %.2f, want ~0.3", saving)
	}
	if !strings.Contains(Fig11Table(rows).String(), "saving") {
		t.Fatal("table broken")
	}
}

func TestFig12HoldCrossover(t *testing.T) {
	rows := Fig12HoldActivity([]int{50, 1000}, 8000, 3)
	short, long := rows[0], rows[1]
	// Active mode: the paper's flat ~2.6%.
	if short.Active < 0.015 || short.Active > 0.04 {
		t.Fatalf("active baseline = %.4f, want ~0.026", short.Active)
	}
	// Short holds cost more than active; long holds much less.
	if short.Hold <= short.Active {
		t.Fatalf("hold at 50 TS should not pay off: %v vs %v", short.Hold, short.Active)
	}
	if long.Hold >= long.Active/2 {
		t.Fatalf("hold at 1000 TS must be cheap: %v vs %v", long.Hold, long.Active)
	}
	if !strings.Contains(Fig12Table(rows).String(), "Thold_slots") {
		t.Fatal("table broken")
	}
}
