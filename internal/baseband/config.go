// Package baseband implements the Bluetooth link controller the paper
// models in SystemC: the device state machine (STANDBY, INQUIRY, INQUIRY
// SCAN/RESPONSE, PAGE, PAGE SCAN, MASTER/SLAVE RESPONSE, CONNECTION),
// the inquiry and page procedures with their frequency trains and random
// backoff, the polling scheme of the connection state with ARQ, and the
// low-power modes (sniff, hold, park) whose RF-activity trade-offs the
// paper's Figs 10-12 quantify.
package baseband

import (
	"fmt"

	"repro/internal/hop"
)

// BDAddr is a 48-bit Bluetooth device address split per the standard.
type BDAddr struct {
	LAP uint32 // lower address part, 24 bits: access codes, hop kernel
	UAP uint8  // upper address part: HEC/CRC seed, hop kernel
	NAP uint16 // non-significant address part
}

// Addr28 returns the hop-kernel address input for this device.
func (a BDAddr) Addr28() uint32 { return hop.Addr28(a.LAP, a.UAP) }

// String renders the address in the usual colon form.
func (a BDAddr) String() string {
	return fmt.Sprintf("%04X:%02X:%06X", a.NAP, a.UAP, a.LAP&0xFFFFFF)
}

// State is the main state-diagram position of a device (paper Fig. 4).
type State int

// Device states.
const (
	StateStandby State = iota
	StateInquiry
	StateInquiryScan
	StateInquiryResponse
	StatePage
	StatePageScan
	StateMasterResponse
	StateSlaveResponse
	StateConnection
	StatePark
)

// String names the state as in the paper's Fig. 4.
func (s State) String() string {
	switch s {
	case StateStandby:
		return "STANDBY"
	case StateInquiry:
		return "INQUIRY"
	case StateInquiryScan:
		return "INQUIRY SCAN"
	case StateInquiryResponse:
		return "INQUIRY RESPONSE"
	case StatePage:
		return "PAGE"
	case StatePageScan:
		return "PAGE SCAN"
	case StateMasterResponse:
		return "MASTER RESPONSE"
	case StateSlaveResponse:
		return "SLAVE RESPONSE"
	case StateConnection:
		return "CONNECTION"
	case StatePark:
		return "PARK"
	}
	return fmt.Sprintf("STATE(%d)", int(s))
}

// Mode is a slave's power mode within the connection state.
type Mode int

// Connection-state power modes.
const (
	ModeActive Mode = iota
	ModeSniff
	ModeHold
	ModePark
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeActive:
		return "ACTIVE"
	case ModeSniff:
		return "SNIFF"
	case ModeHold:
		return "HOLD"
	case ModePark:
		return "PARK"
	}
	return fmt.Sprintf("MODE(%d)", int(m))
}

// Config sets a device's identity and the protocol/RF parameters the
// experiments sweep. Zero values are replaced by defaults (see
// Normalize), which are calibrated in DESIGN.md.
type Config struct {
	Addr       BDAddr
	ClockPhase uint32 // CLKN at simulation time zero (power-on phase)
	Seed       uint64 // per-device randomness (backoff draws)

	// CorrelatorThreshold is the sync-word error budget of the receiver.
	CorrelatorThreshold int
	// NInquiry is the number of train repetitions before the inquiry
	// train swaps A<->B. The spec mandates 256; the paper's 1.28 s
	// timeout only works with a smaller value (see DESIGN.md ablation).
	NInquiry int
	// NPage is the train repetition count in page state before swapping.
	// The default 128 makes train A span a whole R1 scan interval (128 ×
	// 16 slots = 2048), guaranteeing a correctly-estimated scan phase is
	// covered whenever the scan window opens (spec SR=R1 pairing).
	NPage int
	// BackoffMaxSlots bounds the inquiry-response random backoff
	// (uniform over 0..max).
	BackoffMaxSlots int
	// PageRespTimeoutSlots is pagerespTO: handshake steps must follow
	// within this budget or both sides fall back.
	PageRespTimeoutSlots int
	// NewConnTimeoutSlots is newconnectionTO: POLL/response must complete
	// the switch to the channel hopping sequence within this budget.
	NewConnTimeoutSlots int
	// TpollSlots is the master's maximum polling interval per slave.
	TpollSlots int
	// PageScanWindowSlots is how long the page-scan receiver stays open
	// per scan interval (spec Tw_page_scan; the windowing is what makes
	// the page phase noise-fragile in Figs 7-8: a handshake that fails
	// past the window waits a whole interval, which exceeds the paper's
	// 1.28 s timeout).
	PageScanWindowSlots int
	// PageScanIntervalSlots is the page-scan repetition interval
	// (spec T_page_scan, default R1 = 1.28 s).
	PageScanIntervalSlots int

	// CarrierSenseUS is how long an active slave listens at each
	// master-slot start to see whether the master transmits (the "small
	// part of time at the beginning of each time slot" of the paper).
	CarrierSenseUS int
	// RxLeadUS opens listen windows slightly early (uncertainty window).
	RxLeadUS int
	// SniffAttemptSlots is Nsniff-attempt: master slots listened per
	// sniff anchor.
	SniffAttemptSlots int
	// SniffListenUS is the per-attempt-slot listen duration at a sniff
	// anchor when no packet arrives (resync uncertainty makes it longer
	// than the active-mode carrier sense).
	SniffListenUS int
	// HoldResyncUS is the listen window a slave needs to resynchronise
	// with the piconet when returning from hold.
	HoldResyncUS int
	// SupervisionTimeoutSlots drops a link when nothing is heard from
	// the peer for this long (spec link supervision timeout, default
	// 20 s = 32000 slots). Hold periods extend the budget.
	SupervisionTimeoutSlots int
}

// Normalize fills zero fields with calibrated defaults and returns the
// receiver for chaining.
func (c *Config) Normalize() *Config {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&c.CorrelatorThreshold, 7)
	def(&c.NInquiry, 64)
	def(&c.NPage, 128)
	def(&c.BackoffMaxSlots, 1023)
	def(&c.PageRespTimeoutSlots, 8)
	def(&c.NewConnTimeoutSlots, 32)
	def(&c.TpollSlots, 50)
	def(&c.PageScanWindowSlots, 18)
	def(&c.PageScanIntervalSlots, 2048)
	def(&c.CarrierSenseUS, 12)
	def(&c.RxLeadUS, 10)
	def(&c.SniffAttemptSlots, 2)
	def(&c.SniffListenUS, 150)
	def(&c.HoldResyncUS, 3000)
	def(&c.SupervisionTimeoutSlots, 32000)
	if c.Seed == 0 {
		c.Seed = uint64(c.Addr.LAP)<<8 | uint64(c.Addr.UAP) | 1
	}
	return c
}
