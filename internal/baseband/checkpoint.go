package baseband

import (
	"fmt"

	"repro/internal/hop"
	"repro/internal/packet"
	"repro/internal/power"
	"repro/internal/sim"
)

// Checkpoint/restore for the link controller. A device is captured at a
// quiescent slot edge only — no packet mid-air, no transmission leaving
// the antenna, state STANDBY or CONNECTION, no half-finished connection
// handshake — so the whole capture is plain state plus the (at, seq,
// shard) positions of the armed connection timers. Page/inquiry state
// machines never appear in a checkpoint: their states are excluded by
// the contract, and setState stops every timer on the way into STANDBY
// or CONNECTION. Closure-scheduled events (Device.after/at) pending at
// a quiescent instant are generation-guarded no-ops by construction —
// the only connection-state site is the header-abort, which requires a
// reception in progress — so they are deliberately not captured.

// timerFn tags which pre-bound callback a shared timer carries, since
// functions are not comparable at capture time.
type timerFn uint8

const (
	fnTagDefault timerFn = iota
	fnTagListen
	fnTagHoldResync
	fnTagACLRespond
	fnTagSCORespond
)

// TimerID names the connection-state timers a checkpoint may capture.
type TimerID uint8

// Connection-state timers (the only ones armable in STANDBY/CONNECTION).
const (
	TimMasterSlot TimerID = iota
	TimMasterOpen
	TimMasterCls
	TimSlaveSlot
	TimSlaveCls
	TimSlaveResp
	TimSlaveDone
	TimHoldStep
	numCaptureTimers
)

// TimerArm is one armed timer's position in the global event order.
type TimerArm struct {
	Timer TimerID
	At    sim.Time
	Seq   uint64
	Shard int
	Fn    timerFn
}

// OutMsg mirrors one queued upper-layer payload for serialization.
type OutMsg struct {
	Data []byte
	LLID uint8
}

// LinkCheckpoint is the capture of one ACL link end. Links are keyed by
// Peer address, which is unique among a device's links (a scatternet
// bridge's suspended memberships reference different masters).
type LinkCheckpoint struct {
	AMAddr     uint8
	Peer       BDAddr
	Master     BDAddr
	PacketType packet.Type

	Txq         []OutMsg
	Pending     *OutMsg
	PendingSent bool
	SeqnOut     bool
	ArqnOut     bool
	SeqnIn      bool
	SeqnInValid bool

	CreatedAt       sim.Time
	LastAddressedAt sim.Time
	LastHeardAt     sim.Time
	PollFollowUp    bool

	Mode         Mode
	SniffT       int
	SniffAttempt int
	SniffOffset  int
	HoldUntil    sim.Time
	HoldT        int
	AutoHold     bool
	ResyncUntil  sim.Time

	TxData int
	RxData int

	// Attached links live in the master's AM_ADDR table or as the
	// slave's mlink; a detached link belongs to a suspended scatternet
	// membership and is only reachable through the relay layer's
	// membership captures.
	Attached bool
}

// SCOCheckpoint is one voice reservation; the underlying ACL link is
// identified by its peer address. Source/Sink closures are not captured
// — the traffic layer that installed them re-wires them after restore.
type SCOCheckpoint struct {
	ACLPeer   BDAddr
	Type      packet.Type
	TscoSlots int
	DscoEven  int
	TxFrames  int
	RxFrames  int
}

// DeviceCheckpoint is one device's full capture.
type DeviceCheckpoint struct {
	// Config is the post-Normalize configuration including the drawn
	// ClockPhase and Seed, so reconstruction never consumes RNG draws.
	Config      Config
	RNGState    uint64
	ClockOffset uint32

	State        State
	IsMaster     bool
	LastServedAM uint8
	BeaconEvery  int
	AFHMap       []byte // 10-byte LMP bitmask; nil = full 79-channel set
	Assess       Assessment
	Counters     Counters

	TxMeter power.MeterState
	RxMeter power.MeterState

	TunedFreq int // receiver frequency, -1 = chain off
	SigFreq   int64

	QuietUntil     sim.Time
	MasterParked   bool
	ListenSkipping bool
	SkipStart      sim.Time
	SkipK          int

	MasterRespAt sim.Time
	SCORespIdx   int // index into SCOs owing the next return frame, -1 = none
	SlaveSlotFn  timerFn
	SlaveRespFn  timerFn

	Links []LinkCheckpoint
	MLink int // index into Links of the slave's master link, -1 = none
	SCOs  []SCOCheckpoint

	Timers []TimerArm
}

// captureTimer looks up the device's timer for a TimerID.
func (d *Device) captureTimer(id TimerID) *sim.Timer {
	switch id {
	case TimMasterSlot:
		return d.tMasterSlot
	case TimMasterOpen:
		return d.tMasterOpen
	case TimMasterCls:
		return d.tMasterCls
	case TimSlaveSlot:
		return d.tSlaveSlot
	case TimSlaveCls:
		return d.tSlaveCls
	case TimSlaveResp:
		return d.tSlaveResp
	case TimSlaveDone:
		return d.tSlaveDone
	case TimHoldStep:
		return d.tHoldStep
	}
	panic(fmt.Sprintf("baseband: unknown timer id %d", id))
}

// timerCallback resolves the callback a restored timer arm fires.
func (d *Device) timerCallback(id TimerID, tag timerFn) sim.Event {
	switch id {
	case TimMasterSlot:
		return d.masterSlot
	case TimMasterOpen:
		return d.masterRespOpen
	case TimMasterCls, TimSlaveCls:
		return d.rxOffIfIdle
	case TimSlaveSlot:
		if tag == fnTagHoldResync {
			return d.fnSlaveHoldResync
		}
		return d.fnSlaveListenSlot
	case TimSlaveResp:
		if tag == fnTagSCORespond {
			return d.fnScoRespond
		}
		return d.fnSlaveRespond
	case TimSlaveDone:
		return d.slaveRespDone
	case TimHoldStep:
		return d.holdResyncStep
	}
	panic(fmt.Sprintf("baseband: unknown timer id %d", id))
}

// Quiescent reports whether the device is capturable right now: settled
// in STANDBY or CONNECTION with nothing mid-air, mid-transmit or
// mid-handshake. The channel-level half of the contract (no in-flight
// transmissions) is the caller's to check.
func (d *Device) Quiescent() bool { return d.quiescenceBlocker() == "" }

// quiescenceBlocker names what blocks a capture, or returns "".
func (d *Device) quiescenceBlocker() string {
	if d.state != StateStandby && d.state != StateConnection {
		return "state " + d.state.String()
	}
	if d.rxBusy {
		return "reception in progress"
	}
	if d.txCount != 0 {
		return "transmission leaving the antenna"
	}
	for _, l := range d.links {
		if l != nil && l.newconnPending {
			return "connection handshake incomplete"
		}
	}
	if d.mlink != nil && d.mlink.newconnPending {
		return "connection handshake incomplete"
	}
	return ""
}

// Checkpoint captures the device. It fails unless the device is
// quiescent (see Quiescent); extraLinks lists suspended-membership
// links (scatternet bridges) that must ride the capture even though no
// device field references them.
func (d *Device) Checkpoint(extraLinks []*Link) (*DeviceCheckpoint, error) {
	if b := d.quiescenceBlocker(); b != "" {
		return nil, fmt.Errorf("baseband: %s not quiescent: %s", d.name, b)
	}
	ck := &DeviceCheckpoint{
		Config:       d.cfg,
		RNGState:     d.rng.State(),
		ClockOffset:  d.Clock.Offset(),
		State:        d.state,
		IsMaster:     d.isMaster,
		LastServedAM: d.lastServedAM,
		BeaconEvery:  d.beaconEverySlots,
		Assess:       d.assess,
		Counters:     d.Counters,
		TxMeter:      d.TxMeter.CheckpointState(),
		RxMeter:      d.RxMeter.CheckpointState(),
		TunedFreq:    d.ch.Tuned(d),
		SigFreq:      d.SigFreq.Get(),
		QuietUntil:   d.quiet.Until(),
		MasterParked: d.masterParked,

		ListenSkipping: d.listenSkipping,
		SkipStart:      d.skipStart,
		SkipK:          d.skipK,

		MasterRespAt: d.masterRespAt,
		SCORespIdx:   -1,
		SlaveSlotFn:  d.slaveSlotFn,
		SlaveRespFn:  d.slaveRespFn,
		MLink:        -1,
	}
	if d.afhMap != nil {
		ck.AFHMap = d.afhMap.Bitmask()
	}

	capture := func(l *Link, attached bool) {
		lc := LinkCheckpoint{
			AMAddr:     l.AMAddr,
			Peer:       l.Peer,
			Master:     l.Master,
			PacketType: l.PacketType,

			PendingSent: l.pendingSent,
			SeqnOut:     l.seqnOut,
			ArqnOut:     l.arqnOut,
			SeqnIn:      l.seqnIn,
			SeqnInValid: l.seqnInValid,

			CreatedAt:       l.createdAt,
			LastAddressedAt: l.lastAddressedAt,
			LastHeardAt:     l.lastHeardAt,
			PollFollowUp:    l.pollFollowUp,

			Mode:         l.mode,
			SniffT:       l.sniffT,
			SniffAttempt: l.sniffAttempt,
			SniffOffset:  l.sniffOffset,
			HoldUntil:    l.holdUntil,
			HoldT:        l.holdT,
			AutoHold:     l.autoHold,
			ResyncUntil:  l.resyncUntil,

			TxData:   l.TxData,
			RxData:   l.RxData,
			Attached: attached,
		}
		for _, m := range l.txq {
			lc.Txq = append(lc.Txq, OutMsg{Data: append([]byte(nil), m.data...), LLID: m.llid})
		}
		if l.pending != nil {
			lc.Pending = &OutMsg{Data: append([]byte(nil), l.pending.data...), LLID: l.pending.llid}
		}
		ck.Links = append(ck.Links, lc)
	}
	// Fixed AM_ADDR order for the master's table, then the slave link,
	// then suspended-membership links in the caller's order — a
	// deterministic order the restore reproduces exactly.
	for am := uint8(1); am <= 7; am++ {
		if l := d.links[am]; l != nil {
			capture(l, true)
		}
	}
	if d.mlink != nil {
		ck.MLink = len(ck.Links)
		capture(d.mlink, true)
	}
	for _, l := range extraLinks {
		capture(l, false)
	}

	for i, sco := range d.scoLinks {
		if sco.ACL == nil {
			return nil, fmt.Errorf("baseband: %s has an SCO link without an ACL", d.name)
		}
		ck.SCOs = append(ck.SCOs, SCOCheckpoint{
			ACLPeer:   sco.ACL.Peer,
			Type:      sco.Type,
			TscoSlots: sco.TscoSlots,
			DscoEven:  sco.DscoEven,
			TxFrames:  sco.TxFrames,
			RxFrames:  sco.RxFrames,
		})
		if d.scoRespLink == sco {
			ck.SCORespIdx = i
		}
	}

	for id := TimerID(0); id < numCaptureTimers; id++ {
		if at, seq, shard, ok := d.captureTimer(id).Pending(); ok {
			tag := fnTagDefault
			switch id {
			case TimSlaveSlot:
				tag = d.slaveSlotFn
			case TimSlaveResp:
				tag = d.slaveRespFn
			}
			ck.Timers = append(ck.Timers, TimerArm{Timer: id, At: at, Seq: seq, Shard: shard, Fn: tag})
		}
	}
	// Any timer outside the connection set armed here would mean the
	// state contract above is broken; fail loudly rather than silently
	// dropping an event.
	armed := 0
	for _, t := range d.stateTimers {
		if t.Armed() {
			armed++
		}
	}
	if armed != len(ck.Timers) {
		return nil, fmt.Errorf("baseband: %s has %d armed timers but only %d are capturable",
			d.name, armed, len(ck.Timers))
	}
	return ck, nil
}

// RestoreCheckpoint imposes ck on a freshly constructed device whose
// kernel clock already stands at the snapshot instant. Timer re-arms
// are appended to set (executed later, in global (at, seq) order,
// alongside every other layer's). forkSeed perturbs the device's RNG
// stream (see sim.ForkState); zero resumes it exactly. It returns the
// restored links in capture order, so upper layers can re-attach their
// per-link state by index or peer address.
func (d *Device) RestoreCheckpoint(ck *DeviceCheckpoint, forkSeed uint64, set *sim.RearmSet) ([]*Link, error) {
	if d.state != StateStandby || d.nLinks != 0 || d.mlink != nil {
		return nil, fmt.Errorf("baseband: restore target %s is not a fresh device", d.name)
	}
	d.rng.SetState(sim.ForkState(ck.RNGState, forkSeed))
	d.Clock.SetOffset(ck.ClockOffset)
	d.state = ck.State
	d.isMaster = ck.IsMaster
	d.lastServedAM = ck.LastServedAM
	d.beaconEverySlots = ck.BeaconEvery
	d.assess = ck.Assess
	d.Counters = ck.Counters
	if ck.AFHMap != nil {
		m, err := hop.FromBitmask(ck.AFHMap)
		if err != nil {
			return nil, fmt.Errorf("baseband: %s AFH map: %w", d.name, err)
		}
		d.afhMap = m
	}

	links := make([]*Link, 0, len(ck.Links))
	for i := range ck.Links {
		lc := &ck.Links[i]
		l := &Link{
			dev:        d,
			AMAddr:     lc.AMAddr,
			Peer:       lc.Peer,
			Master:     lc.Master,
			sel:        hop.NewSelector(lc.Master.Addr28()),
			PacketType: lc.PacketType,

			pendingSent: lc.PendingSent,
			seqnOut:     lc.SeqnOut,
			arqnOut:     lc.ArqnOut,
			seqnIn:      lc.SeqnIn,
			seqnInValid: lc.SeqnInValid,

			createdAt:       lc.CreatedAt,
			lastAddressedAt: lc.LastAddressedAt,
			lastHeardAt:     lc.LastHeardAt,
			pollFollowUp:    lc.PollFollowUp,

			mode:         lc.Mode,
			sniffT:       lc.SniffT,
			sniffAttempt: lc.SniffAttempt,
			sniffOffset:  lc.SniffOffset,
			holdUntil:    lc.HoldUntil,
			holdT:        lc.HoldT,
			autoHold:     lc.AutoHold,
			resyncUntil:  lc.ResyncUntil,

			TxData: lc.TxData,
			RxData: lc.RxData,
		}
		for _, m := range lc.Txq {
			l.txq = append(l.txq, outMsg{data: append([]byte(nil), m.Data...), llid: m.LLID})
		}
		if lc.Pending != nil {
			l.pending = &outMsg{data: append([]byte(nil), lc.Pending.Data...), llid: lc.Pending.LLID}
		}
		if lc.Attached {
			if ck.IsMaster {
				d.links[l.AMAddr] = l
				d.nLinks++
			} else if i == ck.MLink {
				d.mlink = l
			}
		}
		links = append(links, l)
	}

	for _, sc := range ck.SCOs {
		var acl *Link
		for _, l := range links {
			if l.Peer == sc.ACLPeer {
				acl = l
				break
			}
		}
		if acl == nil {
			return nil, fmt.Errorf("baseband: %s SCO references unknown link %v", d.name, sc.ACLPeer)
		}
		d.scoLinks = append(d.scoLinks, &SCOLink{
			dev: d, ACL: acl, Type: sc.Type,
			TscoSlots: sc.TscoSlots, DscoEven: sc.DscoEven,
			TxFrames: sc.TxFrames, RxFrames: sc.RxFrames,
		})
	}
	if ck.SCORespIdx >= 0 {
		if ck.SCORespIdx >= len(d.scoLinks) {
			return nil, fmt.Errorf("baseband: %s SCO response index %d out of range", d.name, ck.SCORespIdx)
		}
		d.scoRespLink = d.scoLinks[ck.SCORespIdx]
	}

	// Receive dispatch and signals for the restored state.
	d.SigState.Set(d.state.String())
	if d.state == StateConnection {
		if d.isMaster {
			d.onRx = d.masterRx
		} else {
			d.onRx = d.slaveRx
			d.onRxStart = d.slaveRxStart
		}
	}
	if ck.TunedFreq >= 0 {
		d.ch.Tune(d, ck.TunedFreq)
		d.SigRxOn.Set(true)
	}
	d.SigFreq.Set(ck.SigFreq)
	d.TxMeter.RestoreState(ck.TxMeter)
	d.RxMeter.RestoreState(ck.RxMeter)

	d.quiet.RestoreUntil(ck.QuietUntil)
	d.masterParked = ck.MasterParked
	// Listen-skip state is restored here, but the quiet-watcher
	// subscription is the caller's to re-create: subscription order
	// across all devices must match the capture (see
	// channel.QuietWatchers).
	d.listenSkipping = ck.ListenSkipping
	d.skipStart = ck.SkipStart
	d.skipK = ck.SkipK

	d.masterRespAt = ck.MasterRespAt
	d.slaveSlotFn = ck.SlaveSlotFn
	d.slaveRespFn = ck.SlaveRespFn

	for _, arm := range ck.Timers {
		arm := arm
		t := d.captureTimer(arm.Timer)
		fn := d.timerCallback(arm.Timer, arm.Fn)
		set.Add(arm.At, arm.Seq, func() { t.AtOnFn(arm.Shard, arm.At, fn) })
	}
	return links, nil
}
