package baseband

import (
	"repro/internal/bits"
	"repro/internal/btclock"
	"repro/internal/channel"
	"repro/internal/hop"
	"repro/internal/packet"
	"repro/internal/sim"
)

// pageScanState tracks the scan-window discipline across handshake
// attempts: a failed handshake resumes the current window if still open,
// otherwise waits for the next interval.
type pageScanState struct {
	inited     bool
	windowEnd  sim.Time
	nextWindow sim.Time
}

type pageState struct {
	target          BDAddr
	dacSel          *hop.Selector
	id              *cachedID // pre-assembled ID for the target's LAP
	est             *btclock.EstimatedClock
	trainA          bool
	nextTrainSwitch sim.Time
	deadline        sim.Time
	started         sim.Time
	done            func(*Link, bool)
	lastSlotStart   sim.Time
	lastX1, lastX2  uint32
	tookSlots       uint64
}

// EstimateOf converts an inquiry result into the clock estimate paging
// needs, optionally with a deliberate error in half slots (for the
// estimate-robustness ablation).
func (d *Device) EstimateOf(r InquiryResult, errHalfSlots int32) *btclock.EstimatedClock {
	return btclock.Estimate(d.Clock, r.CLKN, r.At, errHalfSlots)
}

// StartPage begins paging target to make it a slave of this device's
// piconet. est is the target-clock estimate from inquiry; done fires
// with the established link, or nil on timeout (in slots).
func (d *Device) StartPage(target BDAddr, est *btclock.EstimatedClock, timeoutSlots int, done func(*Link, bool)) {
	d.setState(StatePage)
	d.pg = pageState{
		target:          target,
		dacSel:          hop.NewSelector(target.Addr28()),
		id:              newCachedID(target.LAP),
		est:             est,
		trainA:          true,
		nextTrainSwitch: d.now() + sim.Time(sim.Slots(uint64(d.cfg.NPage*16))),
		deadline:        d.now() + sim.Time(sim.Slots(uint64(timeoutSlots))),
		started:         d.now(),
		done:            done,
	}
	d.onRx = d.pageRx
	d.armPageDeadline()
	d.tPgSlot.At(d.Clock.NextTickTime(d.now(), 4, 0))
}

// PageSlots reports how many slots the last completed page procedure
// took (frozen at success or failure).
func (d *Device) PageSlots() uint64 { return d.pg.tookSlots }

// armPageDeadline re-registers the overall page timeout under the
// current state generation (transitions invalidate the previous one).
func (d *Device) armPageDeadline() {
	if d.pg.deadline <= d.now() {
		d.pageFail()
		return
	}
	d.tPgDeadln.At(d.pg.deadline)
}

// pageFail aborts the page procedure.
func (d *Device) pageFail() {
	done := d.pg.done
	if done == nil {
		return
	}
	d.pg.done = nil
	d.pg.tookSlots = uint64(d.now()-d.pg.started) / sim.SlotTicks
	d.setState(StateStandby)
	d.rxOffForce()
	done(nil, false)
}

// pageSucceed completes the page procedure with an established link.
func (d *Device) pageSucceed(l *Link) {
	done := d.pg.done
	d.pg.done = nil
	d.pg.tookSlots = uint64(d.now()-d.pg.started) / sim.SlotTicks
	if done != nil {
		done(l, true)
	}
}

// resumePageTrains returns to the page state after a failed handshake.
func (d *Device) resumePageTrains() {
	if d.pg.done == nil {
		return
	}
	d.setState(StatePage)
	d.onRx = d.pageRx
	d.armPageDeadline()
	d.tPgSlot.At(d.Clock.NextTickTime(d.now(), 4, 0))
}

// pageTxSlot transmits a two-ID page train step, mirroring the inquiry
// train but hopping on the target's DAC sequence at the estimated clock.
func (d *Device) pageTxSlot() {
	if d.state != StatePage {
		return
	}
	if d.rxBusy {
		d.tPgSlot.Schedule(sim.Slots(2))
		return
	}
	d.rxOff()
	now := d.now()
	if now >= d.pg.nextTrainSwitch {
		d.pg.trainA = !d.pg.trainA
		d.pg.nextTrainSwitch = now + sim.Time(sim.Slots(uint64(d.cfg.NPage*16)))
	}
	trainA := d.pg.trainA
	clke := d.pg.est.CLKE(now)
	d.pg.lastSlotStart = now
	d.pg.lastX1 = hop.TrainPhase(clke, trainA)
	d.pg.lastX2 = hop.TrainPhase(clke+1, trainA)

	d.transmitID(d.pg.id, d.pg.dacSel.Page(clke, trainA))
	d.tPgSecond.Schedule(sim.HalfSlotTicks)

	d.tPgWin1.Schedule(sim.Slots(1) - d.leadTicks())
	d.tPgWin2.Schedule(sim.Slots(1) + sim.HalfSlotTicks)
	d.tPgSlot.Schedule(sim.Slots(2))
}

// pageSecondID transmits the second page ID half a slot into the step.
func (d *Device) pageSecondID() {
	if d.rxBusy {
		return
	}
	d.transmitID(d.pg.id, d.pg.dacSel.Page(d.pg.est.CLKE(d.now()), d.pg.trainA))
}

// pageRxWin1 opens the response window for the first page ID.
func (d *Device) pageRxWin1() {
	if !d.rxBusy {
		d.rxOn(d.pg.dacSel.RespForX(d.pg.lastX1))
	}
}

// pageRxWin2 opens the response window for the second page ID.
func (d *Device) pageRxWin2() {
	if !d.rxBusy {
		d.rxOn(d.pg.dacSel.RespForX(d.pg.lastX2))
	}
}

// pageRx handles the slave's ID response while paging.
func (d *Device) pageRx(tx *channel.Transmission, rx *bits.Vec, collided bool) {
	defer d.rxOff()
	if collided {
		return
	}
	p, _, err := d.parse(rx, d.pg.target.LAP, 0, 0)
	if err != nil || !p.IsID() {
		if err != nil {
			d.Counters.RxErrors++
		}
		return
	}
	// Which train phase elicited this response? First-half responses
	// arrive one slot after the step start, second-half 1.5 slots.
	x := d.pg.lastX1
	if tx.Start >= d.pg.lastSlotStart+sim.Time(sim.Slots(1))+sim.HalfSlotTicks/2 {
		x = d.pg.lastX2
	}
	d.masterResponse(x, tx.Start)
}

// masterResponse runs the master side of the page handshake: FHS one
// slot after the slave's response, then wait for the slave's ID ack.
func (d *Device) masterResponse(x uint32, respStart sim.Time) {
	d.setState(StateMasterResponse)
	d.armPageDeadline()
	target := d.pg.target
	amaddr := d.allocAMAddr()
	// The FHS is sent in the next master transmit slot (CLK mod 4 == 0),
	// never at a half-slot: its CLK field carries bits 27-2 only, and an
	// even-slot start makes the truncation exact so the slave's slot
	// grid lands precisely on the master's.
	fhsAt := d.nextCLKSlot(respStart + sim.Time(sim.Slots(1)))

	d.at(fhsAt, func() {
		fhs := &packet.Packet{
			AccessLAP: target.LAP,
			Header:    &packet.Header{Type: packet.TypeFHS},
			FHS: &packet.FHSPayload{
				LAP:    d.cfg.Addr.LAP,
				UAP:    d.cfg.Addr.UAP,
				NAP:    d.cfg.Addr.NAP,
				AMAddr: amaddr,
				CLK:    d.Clock.CLK(d.now()),
			},
		}
		d.transmit(fhs, target.UAP, 0, d.pg.dacSel.RespForX(x+1))
	})
	// Listen for the slave's ID acknowledgement one slot after the FHS.
	ackAt := fhsAt + sim.Time(sim.Slots(1))
	d.at(ackAt-sim.Time(d.leadTicks()), func() {
		d.rxOn(d.pg.dacSel.RespForX(x + 2))
	})
	d.onRx = func(tx *channel.Transmission, rx *bits.Vec, collided bool) {
		defer d.rxOff()
		if collided {
			return
		}
		p, _, err := d.parse(rx, target.LAP, 0, 0)
		if err != nil || !p.IsID() {
			return
		}
		// Ack received: the slave joined. Switch to the channel hopping
		// sequence and complete with POLL/response.
		l := newLink(d, amaddr, target, d.cfg.Addr)
		l.newconnPending = true
		d.links[amaddr] = l
		d.nLinks++
		d.startMasterLoop()
		d.armNewConnTimeout(l)
	}
	// pagerespTO: no ack -> back to trains.
	d.after(sim.Slots(uint64(d.cfg.PageRespTimeoutSlots)), func() {
		d.rxOffForce()
		d.resumePageTrains()
	})
}

// armNewConnTimeout reverts an embryonic connection whose POLL/response
// exchange does not complete in time.
func (d *Device) armNewConnTimeout(l *Link) {
	d.after(sim.Slots(uint64(d.cfg.NewConnTimeoutSlots)), func() {
		if !l.newconnPending {
			return
		}
		d.links[l.AMAddr] = nil
		d.nLinks--
		if d.nLinks == 0 {
			d.isMaster = false
		}
		if d.now() < d.pg.deadline {
			d.resumePageTrains()
		} else {
			d.pageFail()
		}
	})
}

// allocAMAddr returns the next free active member address.
func (d *Device) allocAMAddr() uint8 {
	for am := uint8(1); am <= 7; am++ {
		if d.links[am] == nil {
			return am
		}
	}
	panic("baseband: piconet full (7 active slaves)")
}

// StartPageScan makes the device connectable: it listens on its own
// page-scan sequence for a window of PageScanWindowSlots every
// PageScanIntervalSlots (spec R1 discipline) and runs the slave side of
// the page handshake. The windowing is what makes a noise-broken
// handshake fatal within the paper's 1.28 s budget: the next window
// opens a full interval later.
func (d *Device) StartPageScan() {
	d.setState(StatePageScan)
	d.onRx = d.pageScanRx
	now := d.now()
	if !d.pgscan.inited || now >= d.pgscan.nextWindow {
		d.pgscan.inited = true
		d.pgscan.windowEnd = now + sim.Time(sim.Slots(uint64(d.cfg.PageScanWindowSlots)))
		d.pgscan.nextWindow = now + sim.Time(sim.Slots(uint64(d.cfg.PageScanIntervalSlots)))
	}
	if now < d.pgscan.windowEnd {
		d.resumeScan(d.ownSel)
		d.at(d.pgscan.windowEnd, d.pageScanWindowClosed)
		return
	}
	d.at(d.pgscan.nextWindow, d.reopenPageScan)
}

// pageScanWindowClosed darkens the receiver until the next scan window.
func (d *Device) pageScanWindowClosed() {
	if d.state != StatePageScan || d.rxBusy {
		return
	}
	d.rxOffForce()
	d.at(d.pgscan.nextWindow, d.reopenPageScan)
}

// reopenPageScan starts the next scan window.
func (d *Device) reopenPageScan() {
	if d.state != StatePageScan {
		return
	}
	d.pgscan.windowEnd = d.now() + sim.Time(sim.Slots(uint64(d.cfg.PageScanWindowSlots)))
	d.pgscan.nextWindow = d.now() + sim.Time(sim.Slots(uint64(d.cfg.PageScanIntervalSlots)))
	d.resumeScan(d.ownSel)
	d.at(d.pgscan.windowEnd, d.pageScanWindowClosed)
}

// pageScanRx triggers the slave response substate on an ID addressed to
// this device.
func (d *Device) pageScanRx(tx *channel.Transmission, rx *bits.Vec, collided bool) {
	if collided {
		return
	}
	p, _, err := d.parse(rx, d.cfg.Addr.LAP, 0, 0)
	if err != nil || !p.IsID() {
		return
	}
	d.slaveResponse(tx)
}

// slaveResponse answers a page ID: echo the ID one slot later, then wait
// for the master's FHS.
func (d *Device) slaveResponse(idTx *channel.Transmission) {
	d.setState(StateSlaveResponse)
	d.rxOffForce()
	x := hop.ScanX(d.Clock.CLKN(idTx.Start))
	d.at(idTx.Start+sim.Time(sim.Slots(1)), func() {
		d.transmitID(d.idOwn, d.ownSel.RespForX(x))
	})
	fhsAt := idTx.Start + sim.Time(sim.Slots(2))
	d.at(fhsAt-sim.Time(d.leadTicks()), func() {
		d.rxOn(d.ownSel.RespForX(x + 1))
	})
	d.onRx = func(tx *channel.Transmission, rx *bits.Vec, collided bool) {
		if collided {
			return
		}
		p, _, err := d.parse(rx, d.cfg.Addr.LAP, d.cfg.Addr.UAP, 0)
		if err != nil {
			d.Counters.RxErrors++
			return
		}
		if p.IsID() {
			// The master repeated its page ID: restart the response.
			d.slaveResponse(tx)
			return
		}
		if p.Header.Type != packet.TypeFHS || p.FHS == nil {
			return
		}
		d.rxOffForce()
		f := p.FHS
		master := BDAddr{LAP: f.LAP, UAP: f.UAP, NAP: f.NAP}
		d.Clock.SyncTo(f.CLK, tx.Start)
		l := newLink(d, f.AMAddr, master, master)
		l.newconnPending = true
		d.mlink = l
		// Acknowledge with an ID one slot after the FHS started.
		d.at(tx.Start+sim.Time(sim.Slots(1)), func() {
			d.transmitID(d.idOwn, d.ownSel.RespForX(x+2))
			d.after(sim.Microseconds(68), func() {
				d.startSlaveLoop()
				d.armSlaveNewConnTimeout()
			})
		})
	}
	// pagerespTO: no FHS -> back to page scan.
	d.after(sim.Slots(uint64(d.cfg.PageRespTimeoutSlots)), func() {
		d.rxOffForce()
		d.StartPageScan()
	})
}

// armSlaveNewConnTimeout reverts the slave to page scan when the POLL
// never arrives.
func (d *Device) armSlaveNewConnTimeout() {
	l := d.mlink
	d.after(sim.Slots(uint64(d.cfg.NewConnTimeoutSlots)), func() {
		if l != nil && l.newconnPending && d.mlink == l {
			d.mlink = nil
			d.Clock.DropSync()
			d.StartPageScan()
		}
	})
}
