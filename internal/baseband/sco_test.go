package baseband

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// voicePair connects a pair and installs a symmetric SCO channel with
// counting sources/sinks on both ends.
func voicePair(t *testing.T, ber float64, ty packet.Type, tsco int) (r *rig, m, s *Device, msco, ssco *SCOLink) {
	t.Helper()
	r = newRig(ber)
	m = r.device("master", 0x3A3A01, 0)
	s = r.device("slave", 0x4B4B02, 7777)
	ml, _ := connectPair(t, r, m, s)
	msco = m.AddSCO(ml, ty, tsco, 0)
	ssco = s.AcceptSCO(ty, tsco, 0)
	return r, m, s, msco, ssco
}

func TestSCOFullDuplexVoice(t *testing.T) {
	r, _, _, msco, ssco := voicePair(t, 0, packet.TypeHV3, 6)
	seqM, seqS := byte(0), byte(0)
	msco.Source = func() []byte {
		seqM++
		f := make([]byte, 30)
		f[0] = seqM
		return f
	}
	ssco.Source = func() []byte {
		seqS++
		f := make([]byte, 30)
		f[0] = seqS
		return f
	}
	var masterHeard, slaveHeard []byte
	msco.Sink = func(f []byte) { masterHeard = append(masterHeard, f[0]) }
	ssco.Sink = func(f []byte) { slaveHeard = append(slaveHeard, f[0]) }

	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(600)))

	// 600 slots at Tsco=6: 100 reservations each way.
	if msco.TxFrames < 95 || ssco.TxFrames < 95 {
		t.Fatalf("tx frames: master %d slave %d, want ~100", msco.TxFrames, ssco.TxFrames)
	}
	if len(slaveHeard) < 95 || len(masterHeard) < 95 {
		t.Fatalf("heard: master %d slave %d, want ~100", len(masterHeard), len(slaveHeard))
	}
	// Voice must arrive in order (no retransmission, no duplication).
	for i := 1; i < len(slaveHeard); i++ {
		if slaveHeard[i] != slaveHeard[i-1]+1 {
			t.Fatalf("slave voice out of order at %d: %v", i, slaveHeard[i-3:i+1])
		}
	}
}

func TestSCOPeriodsRespected(t *testing.T) {
	for _, c := range []struct {
		ty   packet.Type
		tsco int
	}{
		{packet.TypeHV1, 2}, {packet.TypeHV2, 4}, {packet.TypeHV3, 6},
	} {
		r, _, _, msco, ssco := voicePair(t, 0, c.ty, c.tsco)
		run := uint64(300)
		r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(run)))
		want := int(run) / c.tsco
		if msco.TxFrames < want-3 || msco.TxFrames > want+3 {
			t.Fatalf("%v Tsco=%d: %d frames in %d slots, want ~%d",
				c.ty, c.tsco, msco.TxFrames, run, want)
		}
		if ssco.RxFrames < want-3 {
			t.Fatalf("%v: slave received %d frames, want ~%d", c.ty, ssco.RxFrames, want)
		}
	}
}

func TestSCOCoexistsWithACLData(t *testing.T) {
	r, m, s, msco, ssco := voicePair(t, 0, packet.TypeHV3, 6)
	_ = msco
	got := 0
	s.OnData = func(l *Link, p []byte, llid uint8) { got += len(p) }
	ml := m.Links()[ssco.ACL.AMAddr]
	// Multi-slot data must defer to voice reservations but still flow.
	ml.PacketType = packet.TypeDM3
	ml.Send(make([]byte, 500), packet.LLIDL2CAPStart)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(1500)))
	if got != 500 {
		t.Fatalf("ACL delivered %d/500 bytes alongside SCO", got)
	}
	if msco.RxFrames == 0 {
		t.Fatal("voice starved by data")
	}
}

func TestSCOVoiceRobustnessOrdering(t *testing.T) {
	// Voice quality under noise: the metric is the fraction of frames
	// that arrive bit-perfect. HV3 has no protection, so it "delivers"
	// corrupted audio; HV2 erases frames its Hamming code cannot fix;
	// HV1's repetition code shrugs the noise off.
	const ber = 1.0 / 150
	good := map[packet.Type]float64{}
	for _, c := range []struct {
		ty   packet.Type
		tsco int
	}{
		{packet.TypeHV1, 6}, {packet.TypeHV2, 6}, {packet.TypeHV3, 6},
	} {
		r, _, _, msco, ssco := voicePair(t, ber, c.ty, c.tsco)
		msco.Source = func() []byte {
			f := make([]byte, c.ty.MaxPayload())
			for i := range f {
				f[i] = 0xA5
			}
			return f
		}
		perfect := 0
		ssco.Sink = func(f []byte) {
			for _, b := range f {
				if b != 0xA5 {
					return
				}
			}
			perfect++
		}
		r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(3000)))
		if msco.TxFrames == 0 {
			t.Fatalf("%v: nothing sent", c.ty)
		}
		good[c.ty] = float64(perfect) / float64(msco.TxFrames)
	}
	if good[packet.TypeHV1] < good[packet.TypeHV2] ||
		good[packet.TypeHV2] < good[packet.TypeHV3] {
		t.Fatalf("quality ordering violated: HV1=%.2f HV2=%.2f HV3=%.2f",
			good[packet.TypeHV1], good[packet.TypeHV2], good[packet.TypeHV3])
	}
	if good[packet.TypeHV1] < 0.9 {
		t.Fatalf("HV1 quality %.2f too low at BER 1/150", good[packet.TypeHV1])
	}
	if good[packet.TypeHV3] > 0.6 {
		t.Fatalf("HV3 quality %.2f implausibly high at BER 1/150", good[packet.TypeHV3])
	}
}

func TestRemoveSCOStopsFrames(t *testing.T) {
	r, m, s, msco, ssco := voicePair(t, 0, packet.TypeHV3, 6)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(100)))
	m.RemoveSCO(msco)
	s.RemoveSCO(ssco)
	before := msco.TxFrames
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(200)))
	if msco.TxFrames != before {
		t.Fatalf("frames still flowing after removal: %d -> %d", before, msco.TxFrames)
	}
	if len(m.SCOLinks()) != 0 || len(s.SCOLinks()) != 0 {
		t.Fatal("SCO link lists not emptied")
	}
}

func TestSCOValidation(t *testing.T) {
	r := newRig(0)
	m := r.device("m", 0x5C5C01, 0)
	s := r.device("s", 0x6D6D02, 1)
	ml, _ := connectPair(t, r, m, s)
	for name, fn := range map[string]func(){
		"not a voice type": func() { m.AddSCO(ml, packet.TypeDM1, 6, 0) },
		"odd Tsco":         func() { m.AddSCO(ml, packet.TypeHV3, 5, 0) },
		"HV3 too fast":     func() { m.AddSCO(ml, packet.TypeHV3, 4, 0) },
		"HV2 too fast":     func() { m.AddSCO(ml, packet.TypeHV2, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSupervisionTimeoutOnVanish(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x7E7E01, 0)
	s := r.device("slave", 0x8F8F02, 55)
	// Short supervision budget for the test.
	m.cfg.SupervisionTimeoutSlots = 400
	s.cfg.SupervisionTimeoutSlots = 400
	connectPair(t, r, m, s)
	var gone []string
	m.OnDisconnected = func(l *Link, reason string) { gone = append(gone, "master:"+reason) }
	s.Vanish()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(1000)))
	if len(gone) != 1 || gone[0] != "master:supervision timeout" {
		t.Fatalf("disconnect events = %v", gone)
	}
	if len(m.Links()) != 0 {
		t.Fatal("master kept the dead link")
	}
	if m.IsMaster() {
		t.Fatal("empty piconet must clear the master flag")
	}
}

func TestSlaveSupervisionWhenMasterDies(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x9A9A01, 0)
	s := r.device("slave", 0xABAB02, 99)
	m.cfg.SupervisionTimeoutSlots = 400
	s.cfg.SupervisionTimeoutSlots = 400
	connectPair(t, r, m, s)
	var reason string
	s.OnDisconnected = func(l *Link, r string) { reason = r }
	m.Vanish()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(1000)))
	if reason != "supervision timeout" {
		t.Fatalf("slave disconnect reason = %q", reason)
	}
	if s.MasterLink() != nil || s.State() != StateStandby {
		t.Fatalf("slave not reset: %v", s.State())
	}
}

func TestHoldSuspendsSupervision(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0xBCBC01, 0)
	s := r.device("slave", 0xCDCD02, 11)
	m.cfg.SupervisionTimeoutSlots = 300
	s.cfg.SupervisionTimeoutSlots = 300
	ml, sl := connectPair(t, r, m, s)
	var dropped bool
	m.OnDisconnected = func(l *Link, reason string) { dropped = true }
	// A hold longer than the supervision budget must not kill the link.
	ml.EnterHold(600)
	sl.EnterHold(600)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(1200)))
	if dropped {
		t.Fatal("hold triggered a spurious supervision timeout")
	}
	if sl.Mode() != ModeActive {
		t.Fatalf("slave did not return from hold: %v", sl.Mode())
	}
}
