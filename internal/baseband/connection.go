package baseband

import (
	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/packet"
	"repro/internal/sim"
)

// startMasterLoop enters connection state as piconet master and begins
// the TDD polling scheme: transmit in even CLK slots, listen for the
// addressed slave's response in the following slot.
func (d *Device) startMasterLoop() {
	d.isMaster = true
	d.setState(StateConnection)
	d.onRx = d.masterRx
	d.scheduleMasterSlot(d.now())
}

func (d *Device) scheduleMasterSlot(from sim.Time) {
	t := d.nextCLKSlot(from)
	if t <= d.now() {
		t = d.nextCLKSlot(d.now() + 1)
	}
	d.tMasterSlot.At(t)
}

// masterSlot runs one master transmit opportunity.
func (d *Device) masterSlot() {
	if d.state != StateConnection || !d.isMaster {
		return
	}
	d.masterParked = false
	if d.rxBusy {
		// A multi-slot response is still arriving.
		d.scheduleMasterSlot(d.now() + 1)
		return
	}
	d.rxOff()
	now := d.now()
	d.checkSupervision(now)
	if d.state != StateConnection {
		return // every link supervision-timed-out
	}
	if sco := d.scoDue(now); sco != nil {
		// Reserved voice slots take absolute priority.
		d.transmitSCOSlot(sco, now)
		return
	}
	if d.beaconDue(now) {
		d.transmitBeacon(now)
		d.scheduleMasterSlot(now + 1)
		return
	}
	l := d.pickLink(now)
	if l == nil {
		d.scheduleMasterIdle(now)
		return
	}
	clk := d.Clock.CLK(now)
	p := l.nextPacket(true)
	// Keep multi-slot ACL packets (and their response slot) clear of the
	// next SCO reservation.
	if gap := d.evenSlotsToNextSCO(clk >> 2); uint32(p.Header.Type.Slots()+1+1)/2 > gap {
		if l.pending != nil {
			l.pendingSent = false // not actually sent this time
		}
		p = &packet.Packet{AccessLAP: d.cfg.Addr.LAP,
			Header: &packet.Header{AMAddr: l.AMAddr, Type: packet.TypePoll, ARQN: l.arqnOut}}
	}
	if p.Header.Type == packet.TypePoll {
		d.Counters.Polls++
	}
	d.transmit(p, d.cfg.Addr.UAP, clk, d.chanFreq(d.ownSel, clk))
	l.lastAddressedAt = now
	l.pollFollowUp = false // re-armed if the response carries data

	// Listen for the slave's response in the slot after the packet.
	slots := uint64(p.Header.Type.Slots())
	respAt := now + sim.Time(sim.Slots(slots))
	d.masterRespAt = respAt
	d.tMasterOpen.At(respAt - sim.Time(d.leadTicks()))
	d.tMasterCls.At(respAt + sim.Time(sim.Microseconds(uint64(d.cfg.CarrierSenseUS))))
	d.scheduleMasterSlot(respAt + sim.Time(sim.Slots(1)))
}

// masterRespOpen opens the response listen window armed by the last
// master transmission.
func (d *Device) masterRespOpen() {
	if !d.rxBusy {
		d.rxOn(d.chanFreq(d.ownSel, d.Clock.CLK(d.masterRespAt)))
	}
}

// scheduleMasterIdle re-arms the master loop after a slot with nothing
// to do. When every member is provably quiet for a while — no queued
// traffic, no poll due before Tpoll, no SCO reservation, beacon, sniff
// window, hold expiry or supervision deadline — the loop long-skips to
// the earliest of those deadlines instead of firing a no-op event every
// other slot; new work re-arms it early (see wakeMaster).
func (d *Device) scheduleMasterIdle(now sim.Time) {
	wake, ok := d.masterNextWork(now)
	if !ok || wake <= now+sim.Time(sim.Slots(2)) {
		d.scheduleMasterSlot(now + 1)
		return
	}
	d.masterParked = true
	// The skip is a proof that nothing leaves this antenna before wake;
	// publish it so quiet listeners can skip their windows too.
	d.quiet.Promise(wake)
	d.scheduleMasterSlot(wake)
}

// masterNextWork returns the earliest future time at which the master
// loop could have work, and whether such a bound exists. It mirrors the
// conditions of masterSlot/pickLink exactly: a slot strictly before the
// returned time would find nothing to transmit.
func (d *Device) masterNextWork(now sim.Time) (sim.Time, bool) {
	const none = sim.Time(^uint64(0))
	wake := none
	earlier := func(t sim.Time) {
		if t < wake {
			wake = t
		}
	}
	evenIdx := d.Clock.CLK(now) >> 2
	slotAt := func(idx uint32) sim.Time {
		return now + sim.Time(sim.Slots(uint64(idx-evenIdx)*2))
	}
	budget := sim.Time(sim.Slots(uint64(d.cfg.SupervisionTimeoutSlots)))
	tpoll := sim.Time(sim.Slots(uint64(d.cfg.TpollSlots)))
	for am := uint8(1); am <= 7; am++ {
		l := d.links[am]
		if l == nil {
			continue
		}
		superRef := l.lastHeardAt
		if superRef == 0 {
			superRef = l.createdAt
		}
		switch l.mode {
		case ModePark:
			continue // beacons handled below; supervision suspended
		case ModeHold:
			// The resync poll is due at holdUntil; supervision resumes
			// later still, so the expiry bounds this link.
			earlier(l.holdUntil)
			continue
		case ModeSniff:
			// Next slot inside the sniff window (the window itself is the
			// earliest the master would address this link again).
			period := uint32(l.sniffT / 2)
			if period == 0 {
				earlier(slotAt(evenIdx + 1))
			} else {
				idx := evenIdx + 1
				if pos := (idx - uint32(l.sniffOffset)) % period; pos >= uint32(l.sniffAttempt) {
					idx += period - pos
				}
				earlier(slotAt(idx))
			}
			earlier(superRef + budget)
			continue
		}
		// Active: the next poll is due a full Tpoll after the last
		// address (traffic arrivals re-arm the loop via wakeMaster).
		earlier(l.lastAddressedAt + tpoll)
		earlier(superRef + budget)
	}
	if len(d.scoLinks) > 0 {
		earlier(slotAt(evenIdx + d.evenSlotsToNextSCO(evenIdx)))
	}
	if period := uint32(d.beaconEverySlots / 2); period > 0 {
		for _, l := range d.links {
			if l != nil && l.mode == ModePark {
				idx := evenIdx + 1
				if r := idx % period; r != 0 {
					idx += period - r
				}
				earlier(slotAt(idx))
				break
			}
		}
	}
	return wake, wake != none
}

// wakeMaster re-arms a long-skipped master loop when new work appears:
// queued traffic, a mode change, or a fresh SCO reservation. Work
// arriving from an event exactly on a TX boundary serves this very slot
// (the loop event fires later in the same tick, as the unskipped
// loop's would have); work queued from outside the kernel loop at a
// boundary tick waits for the next boundary, because the unskipped
// loop's event for the current tick has already fired.
func (d *Device) wakeMaster() {
	if d == nil || !d.masterParked || !d.isMaster || d.state != StateConnection {
		return
	}
	d.masterParked = false
	t := d.nextCLKSlot(d.now())
	if t == d.now() && !d.k.Running() {
		t = d.nextCLKSlot(d.now() + 1)
	}
	// Revoke the parked promise before arming the slot: the shrink
	// notification resumes any bulk-skipped listeners synchronously, so
	// their windows are re-armed before the transmit opportunity fires.
	d.quiet.Promise(t)
	d.tMasterSlot.At(t)
}

// pickLink selects which slave (if any) this transmit slot serves:
// traffic first, then poll-due links, respecting sniff windows and hold.
// The data scan starts after the last slave served, so saturated links
// share the channel round-robin instead of the lowest AM_ADDR
// monopolising every transmit opportunity.
func (d *Device) pickLink(now sim.Time) *Link {
	evenIdx := d.Clock.CLK(now) >> 2
	tpoll := sim.Time(sim.Slots(uint64(d.cfg.TpollSlots)))
	var pollDue *Link
	var withData *Link
	for i := uint8(0); i < 7; i++ {
		am := (d.lastServedAM+i)%7 + 1
		l := d.links[am]
		if l == nil {
			continue
		}
		switch l.mode {
		case ModeHold:
			if now < l.holdUntil {
				continue
			}
			// Hold expired: resynchronise the slave with a poll.
			if pollDue == nil {
				pollDue = l
			}
			continue
		case ModeSniff:
			if !l.inSniffWindow(evenIdx) {
				continue
			}
			if l.pollFollowUp && pollDue == nil {
				pollDue = l
			}
		case ModePark:
			continue // parked slaves only get beacons
		}
		if l.hasTraffic() && withData == nil {
			withData = l
		}
		if l.newconnPending || now-l.lastAddressedAt >= tpoll {
			if pollDue == nil {
				pollDue = l
			}
		}
	}
	if withData != nil {
		d.lastServedAM = withData.AMAddr
		return withData
	}
	return pollDue
}

// masterRx handles slave responses.
func (d *Device) masterRx(tx *channel.Transmission, rx *bits.Vec, collided bool) {
	defer d.rxOff()
	if collided {
		d.observeFreq(tx.Freq, false)
		return
	}
	clk := d.Clock.CLK(tx.Start)
	p, _, err := d.parse(rx, d.cfg.Addr.LAP, d.cfg.Addr.UAP, clk)
	if err != nil {
		d.Counters.RxErrors++
		d.observeFreq(tx.Freq, false)
		// We cannot attribute the failure to a link (header unknown), so
		// no ARQ update; the pending packet retransmits on timeout.
		return
	}
	d.Counters.RxPackets++
	d.observeFreq(tx.Freq, true)
	if p.Header.Type.IsSCO() {
		if l := d.links[p.Header.AMAddr]; l != nil {
			l.lastHeardAt = d.now()
		}
		d.handleSCORx(p, tx.Start)
		return
	}
	l := d.links[p.Header.AMAddr]
	if l == nil {
		return
	}
	l.lastHeardAt = d.now()
	if l.newconnPending {
		l.newconnPending = false
		d.completeConnection(l)
	}
	if l.mode == ModeHold && d.now() >= l.holdUntil {
		d.masterHoldResynced(l)
	}
	if l.mode == ModeSniff && len(p.Payload) > 0 {
		// The sniffed slave has traffic; keep polling it while the
		// window is open instead of waiting out Tpoll.
		l.pollFollowUp = true
	}
	deliver := l.processRx(p.Header, len(p.Payload) > 0)
	if deliver {
		d.deliverUp(l, p)
	}
}

// completeConnection finalises a link on the master: page success and
// connection callbacks.
func (d *Device) completeConnection(l *Link) {
	d.pageSucceed(l)
	if d.OnConnected != nil {
		d.OnConnected(l)
	}
}

// deliverUp routes a received payload to the LMP or host callback.
func (d *Device) deliverUp(l *Link, p *packet.Packet) {
	if p.LLID == packet.LLIDLMP {
		if d.OnLMP != nil {
			d.OnLMP(l, p.Payload)
		}
		return
	}
	if d.OnData != nil {
		d.OnData(l, p.Payload, p.LLID)
	}
}

// startSlaveLoop enters connection state as a slave: listen briefly at
// every master transmit slot, receive packets addressed to us, respond
// in the following slot.
func (d *Device) startSlaveLoop() {
	d.isMaster = false
	d.setState(StateConnection)
	d.onRx = d.slaveRx
	d.onRxStart = d.slaveRxStart
	d.scheduleSlaveListen(d.now())
}

// scheduleSlaveListen arms the next listen window: the next master
// transmit slot in active mode, or the next sniff anchor / hold end.
func (d *Device) scheduleSlaveListen(from sim.Time) {
	l := d.mlink
	if l == nil {
		return
	}
	switch l.mode {
	case ModeHold:
		d.slaveSlotFn = fnTagHoldResync
		d.tSlaveSlot.AtFn(maxTime(l.holdUntil, from), d.fnSlaveHoldResync)
		return
	case ModeSniff:
		d.slaveSlotFn = fnTagListen
		d.tSlaveSlot.AtFn(d.nextSniffAnchor(from), d.fnSlaveListenSlot)
		return
	case ModePark:
		d.slaveSlotFn = fnTagListen
		d.tSlaveSlot.AtFn(d.nextBeaconSlot(from), d.fnSlaveListenSlot)
		return
	}
	t := d.nextCLKSlotAfterLead(from)
	d.slaveSlotFn = fnTagListen
	d.tSlaveSlot.AtFn(t-sim.Time(d.leadTicks()), d.fnSlaveListenSlot)
}

// nextSniffAnchor returns the start time of the next even slot inside
// the sniff window at or after `from`.
func (d *Device) nextSniffAnchor(from sim.Time) sim.Time {
	l := d.mlink
	t := d.nextCLKSlotAfterLead(from)
	for i := 0; ; i++ {
		if l.inSniffWindow(d.Clock.CLK(t) >> 2) {
			return t - sim.Time(d.leadTicks())
		}
		t += sim.Time(sim.Slots(2))
		if i > l.sniffT {
			panic("baseband: sniff window never opens")
		}
	}
}

// slaveListenSlot opens the listen window at a master transmit slot.
func (d *Device) slaveListenSlot() {
	d.endListenSkip() // a bulk skip, if any, ends at its wake-up window
	l := d.mlink
	if d.state != StateConnection || l == nil {
		return
	}
	d.checkSupervision(d.now())
	if d.mlink == nil {
		return // supervision timeout fired
	}
	if d.rxBusy || d.txCount > 0 {
		d.scheduleSlaveListen(d.now() + 1)
		return
	}
	if l.mode == ModeActive && d.tryListenSkip(l) {
		return
	}
	// The window opened leadTicks early; the slot boundary is next.
	slotStart := d.nextCLKSlot(d.now())
	d.rxOn(d.chanFreq(l.sel, d.Clock.CLK(slotStart)))
	window := sim.Microseconds(uint64(d.cfg.CarrierSenseUS))
	if l.mode == ModeSniff {
		window = sim.Microseconds(uint64(d.cfg.SniffListenUS))
	}
	d.tSlaveCls.At(slotStart + sim.Time(window))
	d.scheduleSlaveListen(slotStart + sim.Time(sim.Slots(2)) - sim.Time(d.leadTicks()))
}

// slaveRxStart aborts reception after the header when the packet is for
// another piconet member (the paper's Fig 5 shows exactly this: the RF
// stays on only "to the end of the first part of the transmission").
func (d *Device) slaveRxStart(tx *channel.Transmission) {
	meta, ok := tx.Meta.(AirMeta)
	if !ok || d.mlink == nil {
		return
	}
	if meta.AMAddr == d.mlink.AMAddr || meta.AMAddr == 0 {
		return // ours or broadcast: receive fully
	}
	// Access code (72) + FEC-1/3 header (54) = 126 us decides AM_ADDR.
	d.after(sim.Microseconds(126), func() {
		if d.rxBusy {
			d.rxOffForce()
		}
	})
}

// slaveRx handles packets in the slave connection loop.
func (d *Device) slaveRx(tx *channel.Transmission, rx *bits.Vec, collided bool) {
	l := d.mlink
	if l == nil {
		d.rxOff()
		return
	}
	if collided {
		d.rxOff()
		d.observeFreq(tx.Freq, false)
		l.rxFailed()
		return
	}
	clk := d.Clock.CLK(tx.Start)
	p, _, err := d.parse(rx, l.Master.LAP, l.Master.UAP, clk)
	d.rxOff()
	if err != nil {
		d.Counters.RxErrors++
		d.observeFreq(tx.Freq, false)
		l.rxFailed()
		return
	}
	d.Counters.RxPackets++
	d.observeFreq(tx.Freq, true)
	if p.Header.AMAddr != l.AMAddr && p.Header.AMAddr != 0 {
		return // another member's packet that survived to delivery
	}
	l.lastHeardAt = d.now()
	if l.newconnPending {
		l.newconnPending = false
		if d.OnConnected != nil {
			d.OnConnected(l)
		}
	}
	if p.Header.Type.IsSCO() {
		d.handleSCORx(p, tx.Start)
		return
	}
	broadcast := p.Header.AMAddr == 0
	deliver := l.processRx(p.Header, len(p.Payload) > 0)
	if deliver {
		d.deliverUp(l, p)
	}
	if broadcast || p.Header.Type == packet.TypeNull {
		// Broadcasts and NULLs are not responded to.
		d.maybeReenterHold(l)
		return
	}
	// Respond in the slot following the master's packet.
	respAt := tx.Start + sim.Time(sim.Slots(uint64(p.Header.Type.Slots())))
	d.slaveRespFn = fnTagACLRespond
	d.tSlaveResp.AtFn(respAt, d.fnSlaveRespond)
}

// slaveRespond transmits the slave's response in the slot after the
// master's packet.
func (d *Device) slaveRespond() {
	l := d.mlink
	if l == nil {
		return
	}
	rclk := d.Clock.CLK(d.now())
	resp := l.nextPacket(false)
	d.transmit(resp, l.Master.UAP, rclk, d.chanFreq(l.sel, rclk))
	d.tSlaveDone.Schedule(sim.Duration(resp.AirBits() * sim.BitTicks))
}

// slaveRespDone runs after the response leaves the antenna (hold
// re-entry bookkeeping).
func (d *Device) slaveRespDone() {
	if l := d.mlink; l != nil {
		d.maybeReenterHold(l)
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
