package baseband

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// EnterSniff switches the link to sniff mode: the slave only listens at
// anchor windows every tsniffSlots slots (attempt master slots wide) and
// the master only addresses it there. Call on both ends with the same
// parameters (the lmp package negotiates this over the air).
func (l *Link) EnterSniff(tsniffSlots, attempt, offsetEvenSlots int) {
	if tsniffSlots < 2 || tsniffSlots%2 != 0 {
		panic(fmt.Sprintf("baseband: Tsniff must be even and >= 2, got %d", tsniffSlots))
	}
	if attempt < 1 || attempt > tsniffSlots/2 {
		panic(fmt.Sprintf("baseband: sniff attempt %d out of range", attempt))
	}
	l.mode = ModeSniff
	l.sniffT = tsniffSlots
	l.sniffAttempt = attempt
	l.sniffOffset = offsetEvenSlots
	l.dev.rescheduleSlaveLoop()
}

// ExitSniff returns the link to active mode.
func (l *Link) ExitSniff() {
	l.mode = ModeActive
	l.dev.rescheduleSlaveLoop()
}

// EnterHold suspends the link for holdSlots slots: the slave's RF goes
// completely dark, then it resynchronises. Call on both ends.
func (l *Link) EnterHold(holdSlots int) {
	l.enterHold(holdSlots, false)
}

// EnterHoldRepeating is the paper's Fig 12 workload: the slave re-enters
// hold after every resynchronisation, indefinitely.
func (l *Link) EnterHoldRepeating(holdSlots int) {
	l.enterHold(holdSlots, true)
}

func (l *Link) enterHold(holdSlots int, repeat bool) {
	if holdSlots < 1 {
		panic("baseband: hold duration must be positive")
	}
	l.mode = ModeHold
	l.holdT = holdSlots
	l.autoHold = repeat
	l.holdUntil = l.dev.now() + sim.Time(sim.Slots(uint64(holdSlots)))
	l.dev.rescheduleSlaveLoop()
}

// ExitHold cancels hold at its natural expiry (mode flips once the slave
// resynchronises; master resumes polling at holdUntil).
func (l *Link) ExitHold() {
	l.autoHold = false
}

// EnterPark parks the link: the slave stops participating but stays
// synchronised by listening to the master's broadcast beacon every
// beaconSlots slots. Call on both ends with the same period.
func (l *Link) EnterPark(beaconSlots int) {
	if beaconSlots < 2 || beaconSlots%2 != 0 {
		panic(fmt.Sprintf("baseband: beacon period must be even and >= 2, got %d", beaconSlots))
	}
	l.mode = ModePark
	l.dev.beaconEverySlots = beaconSlots
	l.dev.rescheduleSlaveLoop()
}

// Unpark returns a parked link to active mode. The parked silence was
// negotiated, so supervision restarts from the unpark instant —
// parked slaves never transmit, which makes the pre-park baseline
// stale by construction (the same carve-out hold mode gets while
// suspended).
func (l *Link) Unpark() {
	l.mode = ModeActive
	l.lastHeardAt = l.dev.now()
	l.dev.rescheduleSlaveLoop()
}

// rescheduleSlaveLoop re-arms the slave listen loop after a mode change.
// On a master it only wakes a long-skipped TX loop: the mode change may
// have created work earlier than the parked wake-up deadline.
func (d *Device) rescheduleSlaveLoop() {
	if d.isMaster {
		d.wakeMaster()
		return
	}
	if d.state != StateConnection || d.mlink == nil {
		return
	}
	d.endListenSkip()
	d.gen++ // drop previously scheduled closure events
	for _, t := range []*sim.Timer{d.tSlaveSlot, d.tSlaveCls, d.tSlaveResp, d.tSlaveDone, d.tHoldStep} {
		t.Stop() // and the timer-armed listen/close/response windows
	}
	d.rxOff()
	d.onRx = d.slaveRx
	d.onRxStart = d.slaveRxStart
	d.scheduleSlaveListen(d.now())
}

// slaveHoldResync runs when a hold period expires: the receiver stays on
// continuously (retuning at every master slot) until the master is heard
// or the resync window closes — the cost Fig 12 measures.
func (d *Device) slaveHoldResync() {
	l := d.mlink
	if l == nil || d.state != StateConnection {
		return
	}
	l.resyncUntil = d.now() + sim.Time(sim.Microseconds(uint64(d.cfg.HoldResyncUS)))
	d.holdResyncStep()
}

// holdResyncStep retunes the open receiver at each master slot during
// the resync window.
func (d *Device) holdResyncStep() {
	l := d.mlink
	if l == nil || d.state != StateConnection || l.mode != ModeHold {
		return
	}
	now := d.now()
	if now >= l.resyncUntil {
		// Window over. In this exact-clock simulation the slave is still
		// in sync; it just never heard a packet (master had nothing to
		// say). Continue per policy.
		d.rxOff()
		d.finishHoldCycle(l)
		return
	}
	if !d.rxBusy && d.txCount == 0 {
		slot := d.nextCLKSlot(now)
		d.rxOn(d.chanFreq(l.sel, d.Clock.CLK(slot)))
	}
	next := d.nextCLKSlot(now + 1)
	if sim.Time(next) > l.resyncUntil {
		next = l.resyncUntil
	}
	d.tHoldStep.At(next)
}

// resyncSlots is the resync listen window rounded up to whole slots;
// both ends use it to advance the hold anchor deterministically.
func (d *Device) resyncSlots() uint64 {
	ticks := uint64(sim.Microseconds(uint64(d.cfg.HoldResyncUS)))
	return (ticks + sim.SlotTicks - 1) / sim.SlotTicks
}

// nextHoldAnchor advances a repeating hold period: old expiry plus the
// full resync window plus the hold duration. The formula depends only on
// shared state (holdUntil, config), so master and slave stay in
// lockstep without exchanging timing.
func (l *Link) nextHoldAnchor(d *Device) sim.Time {
	base := l.holdUntil + sim.Time(sim.Slots(d.resyncSlots()))
	if base < d.now() {
		base = d.now()
	}
	return d.nextCLKSlot(base) + sim.Time(sim.Slots(uint64(l.holdT)))
}

// finishHoldCycle decides what follows a completed hold+resync cycle.
func (d *Device) finishHoldCycle(l *Link) {
	if l.autoHold {
		l.holdUntil = l.nextHoldAnchor(d)
		d.rescheduleSlaveLoop()
		return
	}
	l.mode = ModeActive
	d.rescheduleSlaveLoop()
}

// maybeReenterHold runs after a slave finishes handling a reception. A
// one-shot hold exits to active on first contact; a repeating hold keeps
// listening for the full resync window (the clock-drift guard the paper
// charges hold mode for), with the window's own expiry closing the cycle.
func (d *Device) maybeReenterHold(l *Link) {
	if l.mode != ModeHold || d.now() < l.holdUntil {
		return
	}
	if l.autoHold {
		return // resync window still running; holdResyncStep closes it
	}
	l.resyncUntil = d.now() // stop the resync loop
	d.rxOff()
	d.finishHoldCycle(l)
}

// masterHoldResynced mirrors finishHoldCycle on the master when the
// held slave answers its resync poll; the shared anchor formula keeps
// the cycles aligned.
func (d *Device) masterHoldResynced(l *Link) {
	if l.autoHold {
		l.holdUntil = l.nextHoldAnchor(d)
		return
	}
	l.mode = ModeActive
}

// nextBeaconSlot returns the next even slot whose index is a beacon
// position (for parked slaves).
func (d *Device) nextBeaconSlot(from sim.Time) sim.Time {
	period := uint32(d.beaconEverySlots / 2)
	if period == 0 {
		period = 32
	}
	t := d.nextCLKSlotAfterLead(from)
	for {
		if (d.Clock.CLK(t)>>2)%period == 0 {
			return t - sim.Time(d.leadTicks())
		}
		t += sim.Time(sim.Slots(2))
	}
}

// beaconDue reports whether the master should broadcast a beacon in the
// even slot starting now (some link is parked and the slot index is a
// beacon position).
func (d *Device) beaconDue(now sim.Time) bool {
	period := uint32(d.beaconEverySlots / 2)
	if period == 0 {
		return false
	}
	parked := false
	for _, l := range d.links {
		if l != nil && l.mode == ModePark {
			parked = true
			break
		}
	}
	return parked && (d.Clock.CLK(now)>>2)%period == 0
}

// transmitBeacon broadcasts the park-mode beacon (an AM_ADDR-0 NULL).
func (d *Device) transmitBeacon(now sim.Time) {
	clk := d.Clock.CLK(now)
	p := &packet.Packet{
		AccessLAP: d.cfg.Addr.LAP,
		Header:    &packet.Header{AMAddr: 0, Type: packet.TypeNull},
	}
	d.transmit(p, d.cfg.Addr.UAP, clk, d.chanFreq(d.ownSel, clk))
}
