package baseband

import (
	"repro/internal/access"
	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/hop"
	"repro/internal/packet"
	"repro/internal/sim"
)

// InquiryResult is one discovered device: everything needed to page it.
type InquiryResult struct {
	Addr  BDAddr
	Class uint32
	CLKN  uint32   // the device's native clock as reported in its FHS
	At    sim.Time // when the FHS was transmitted (reference for CLKN)
}

type inquiryState struct {
	trainA          bool
	nextTrainSwitch sim.Time
	deadline        sim.Time
	started         sim.Time
	results         []InquiryResult
	max             int
	done            func([]InquiryResult, bool)
	lastSlotStart   sim.Time
	lastX1, lastX2  uint32
	tookSlots       uint64
}

type scanState struct {
	armed     bool // backoff completed: respond to the next ID
	inBackoff bool
	respN     uint32 // response phase counter (spec N)
}

// StartInquiry begins the inquiry procedure: ID trains on the GIAC
// inquiry hopping sequence, listening for FHS responses. done fires with
// the discovered devices when maxResults are found or the timeout (in
// slots) expires; ok means at least maxResults responses arrived.
func (d *Device) StartInquiry(timeoutSlots int, maxResults int, done func([]InquiryResult, bool)) {
	d.setState(StateInquiry)
	d.inq = inquiryState{
		trainA:          true,
		nextTrainSwitch: d.now() + sim.Time(sim.Slots(uint64(d.cfg.NInquiry*16))),
		deadline:        d.now() + sim.Time(sim.Slots(uint64(timeoutSlots))),
		started:         d.now(),
		max:             maxResults,
		done:            done,
	}
	d.onRx = d.inquiryRx
	d.tInqDeadln.At(d.inq.deadline)
	// Trains start at the next transmit (CLKN mod 4 == 0) boundary.
	d.tInqSlot.At(d.Clock.NextTickTime(d.now(), 4, 0))
}

// InquirySlots reports how many slots the last completed inquiry took
// (frozen when the procedure finished).
func (d *Device) InquirySlots() uint64 { return d.inq.tookSlots }

// inquiryTxSlot transmits the two-ID train step and arms the response
// windows of the following slot, then reschedules itself.
func (d *Device) inquiryTxSlot() {
	if d.state != StateInquiry {
		return
	}
	if d.rxBusy {
		// An FHS response is still arriving (it may overrun into our TX
		// slot); skip this train step.
		d.tInqSlot.Schedule(sim.Slots(2))
		return
	}
	d.rxOff()
	now := d.now()
	if now >= d.inq.nextTrainSwitch {
		d.inq.trainA = !d.inq.trainA
		d.inq.nextTrainSwitch = now + sim.Time(sim.Slots(uint64(d.cfg.NInquiry*16)))
	}
	trainA := d.inq.trainA
	clkn := d.Clock.CLKN(now)
	d.inq.lastSlotStart = now
	d.inq.lastX1 = hop.TrainPhase(clkn, trainA)
	d.inq.lastX2 = hop.TrainPhase(clkn+1, trainA)

	d.transmitID(d.idGIAC, d.giacSel.Page(clkn, trainA))
	d.tInqSecond.Schedule(sim.HalfSlotTicks)

	// Response windows: FHS replies land one slot after each ID.
	d.tInqWin1.Schedule(sim.Slots(1) - d.leadTicks())
	d.tInqWin2.Schedule(sim.Slots(1) + sim.HalfSlotTicks)
	d.tInqSlot.Schedule(sim.Slots(2))
}

// inquirySecondID transmits the second ID of the train step, half a
// slot after the first.
func (d *Device) inquirySecondID() {
	if d.rxBusy {
		return
	}
	d.transmitID(d.idGIAC, d.giacSel.Page(d.Clock.CLKN(d.now()), d.inq.trainA))
}

// inquiryRxWin1 opens the response window for the first ID of the last
// train step.
func (d *Device) inquiryRxWin1() {
	if !d.rxBusy {
		d.rxOn(d.giacSel.RespForX(d.inq.lastX1))
	}
}

// inquiryRxWin2 opens the response window for the second ID.
func (d *Device) inquiryRxWin2() {
	if !d.rxBusy {
		d.rxOn(d.giacSel.RespForX(d.inq.lastX2))
	}
}

// inquiryRx handles packets while in inquiry state: FHS responses from
// scanners.
func (d *Device) inquiryRx(tx *channel.Transmission, rx *bits.Vec, collided bool) {
	defer d.rxOff()
	if collided {
		return
	}
	p, _, err := d.parse(rx, access.GIAC, 0, 0)
	if err != nil {
		d.Counters.RxErrors++
		return
	}
	if p.IsID() {
		d.Counters.IDsHeard++
		return // another inquirer's train; not for us
	}
	if p.Header.Type != packet.TypeFHS || p.FHS == nil {
		return
	}
	d.Counters.FHSHeard++
	f := p.FHS
	res := InquiryResult{
		Addr:  BDAddr{LAP: f.LAP, UAP: f.UAP, NAP: f.NAP},
		Class: f.Class,
		CLKN:  f.CLK,
		At:    tx.Start,
	}
	// Deduplicate repeat responders.
	for i, r := range d.inq.results {
		if r.Addr == res.Addr {
			d.inq.results[i] = res
			return
		}
	}
	d.inq.results = append(d.inq.results, res)
	if len(d.inq.results) >= d.inq.max {
		d.finishInquiry()
	}
}

// finishInquiry ends the procedure and reports results.
func (d *Device) finishInquiry() {
	d.inq.tookSlots = uint64(d.now()-d.inq.started) / sim.SlotTicks
	st := d.inq
	d.setState(StateStandby)
	d.rxOffForce()
	if st.done != nil {
		st.done(st.results, len(st.results) >= st.max)
	}
}

// StartInquiryScan makes the device discoverable: the receiver stays on
// the inquiry-scan frequency (which moves every 1.28 s) and the device
// answers ID trains with FHS packets after the standard random backoff.
func (d *Device) StartInquiryScan() {
	d.setState(StateInquiryScan)
	d.scan = scanState{}
	d.onRx = d.inquiryScanRx
	d.resumeScan(d.giacSel)
}

// resumeScan opens the always-on scan receiver with sel's scan sequence
// and keeps it retuned at every 1.28 s phase change.
func (d *Device) resumeScan(sel *hop.Selector) {
	d.rxOn(sel.Scan(d.Clock.CLKN(d.now())))
	d.scheduleScanRetune(sel)
}

func (d *Device) scheduleScanRetune(sel *hop.Selector) {
	d.scanRetuneSel = sel
	d.tRetune.At(d.Clock.NextTickTime(d.now()+1, 1<<12, 0))
}

// scanRetune follows the 1.28 s scan-frequency phase while the scan
// receiver is open, then re-arms itself.
func (d *Device) scanRetune() {
	sel := d.scanRetuneSel
	if !d.rxBusy && !d.scan.inBackoff && d.ch.Tuned(d) >= 0 {
		d.rxOn(sel.Scan(d.Clock.CLKN(d.now())))
	}
	d.scheduleScanRetune(sel)
}

// inquiryScanRx: IDs heard while discoverable trigger backoff, then an
// FHS response to the next ID (spec inquiry response procedure).
func (d *Device) inquiryScanRx(tx *channel.Transmission, rx *bits.Vec, collided bool) {
	if collided {
		return // stay listening
	}
	p, _, err := d.parse(rx, access.GIAC, 0, 0)
	if err != nil || !p.IsID() {
		return // noise or a foreign FHS: keep scanning
	}
	d.Counters.IDsHeard++
	if !d.scan.armed {
		// First ID: back off a random number of slots, receiver dark.
		d.scan.inBackoff = true
		d.rxOffForce()
		backoff := uint64(d.rng.Intn(d.cfg.BackoffMaxSlots + 1))
		d.after(sim.Slots(backoff), func() {
			d.scan.inBackoff = false
			d.scan.armed = true
			d.resumeScan(d.giacSel)
		})
		return
	}
	// Second ID: respond with FHS one slot after the ID started.
	d.scan.armed = false
	d.rxOffForce()
	respX := hop.ScanX(d.Clock.CLKN(tx.Start))
	respFreq := d.giacSel.RespForX(respX)
	d.at(tx.Start+sim.Time(sim.Slots(1)), func() {
		fhs := &packet.Packet{
			AccessLAP: access.GIAC,
			Header:    &packet.Header{Type: packet.TypeFHS},
			FHS: &packet.FHSPayload{
				LAP:   d.cfg.Addr.LAP,
				UAP:   d.cfg.Addr.UAP,
				NAP:   d.cfg.Addr.NAP,
				Class: 0x00020C, // phone-ish class; cosmetic
				CLK:   d.Clock.CLKN(d.now()),
			},
		}
		d.transmit(fhs, 0, 0, respFreq)
		d.scan.respN++
		// Return to scanning after the FHS leaves the antenna.
		d.after(sim.Duration(fhs.AirBits()*sim.BitTicks), func() {
			d.rxOn(d.giacSel.Scan(d.Clock.CLKN(d.now())))
		})
	})
}

// StopScan returns a scanning device to standby.
func (d *Device) StopScan() {
	d.setState(StateStandby)
	d.rxOffForce()
}
