package baseband

import "repro/internal/hop"

// Membership is a slave device's attachment to one piconet, detached
// from the radio: the ACL link (which carries the AM_ADDR, the hop
// selector for the master's address and the negotiated power mode), the
// CLKN→CLK offset that aligns the device with that piconet's slot grid,
// and the AFH channel map in force when the membership was captured.
//
// A scatternet bridge holds one Membership per piconet and timeshares
// the single radio between them: ActivateMembership retunes the device
// — clock offset, hop sequence, channel map, listen loop — to one
// piconet, leaving the others' link state (ARQ, sniff windows,
// supervision baseline) frozen until their next activation. The piconet
// clocks in this model never drift, so a captured offset stays valid
// indefinitely.
type Membership struct {
	// Link is the slave-side ACL link of this piconet.
	Link *Link

	clockOffset uint32
	afhMap      *hop.ChannelMap
}

// ClockOffset returns the CLKN→CLK offset the membership captured.
func (m *Membership) ClockOffset() uint32 { return m.clockOffset }

// AFHMap returns the AFH channel map in force at capture (nil = full
// 79-channel set).
func (m *Membership) AFHMap() *hop.ChannelMap { return m.afhMap }

// RestoreMembership rebuilds a suspended membership from checkpointed
// parts: the restored slave-side link, the captured clock offset and the
// AFH map (which checkpoints serialize as an LMP bitmask).
func RestoreMembership(link *Link, clockOffset uint32, afh *hop.ChannelMap) *Membership {
	return &Membership{Link: link, clockOffset: clockOffset, afhMap: afh}
}

// CaptureMembership snapshots the device's current piconet attachment
// without detaching from it. The device must be a connected slave.
func (d *Device) CaptureMembership() *Membership {
	if d.isMaster || d.state != StateConnection || d.mlink == nil {
		panic("baseband: CaptureMembership requires a connected slave")
	}
	return &Membership{Link: d.mlink, clockOffset: d.Clock.Offset(), afhMap: d.afhMap}
}

// SuspendMembership captures the current attachment and detaches the
// radio from it: the device returns to standby with the link state left
// intact for a later ActivateMembership. Unlike Detach or DropLink
// nothing is torn down and no callbacks fire — the piconet's master
// simply stops hearing the device until it comes back.
func (d *Device) SuspendMembership() *Membership {
	m := d.CaptureMembership()
	d.mlink = nil
	d.Clock.DropSync()
	d.afhMap = nil
	d.setState(StateStandby)
	d.rxOffForce()
	return m
}

// ActivateMembership points the radio at m's piconet: the clock offset,
// AFH map and master link are restored and the slave listen loop
// restarts under m's hop sequence. A reception still in flight from the
// previously active piconet is abandoned (the retune semantics of
// channel.Tune: a bridge leaving at a presence-window boundary drops
// whatever was mid-air), and every listen window scheduled for the old
// membership dies with the state generation bump. Valid from standby
// (after SuspendMembership) or from connection state (switching
// directly between memberships); the device must not own a piconet.
//
// The caller is responsible for keeping each absence shorter than the
// link supervision timeout — the presence scheduler of a scatternet
// bridge does so by construction.
func (d *Device) ActivateMembership(m *Membership) {
	if d.isMaster {
		panic("baseband: a piconet master cannot activate memberships")
	}
	if d.state != StateConnection && d.state != StateStandby {
		panic("baseband: ActivateMembership from " + d.state.String())
	}
	if d.state == StateConnection && d.mlink == m.Link {
		return // already attached and listening there
	}
	d.rxOffForce() // abandon any packet mid-air in the old piconet
	d.Clock.SetOffset(m.clockOffset)
	d.afhMap = m.afhMap
	d.mlink = m.Link
	d.Counters.MembershipSwitches++
	d.startSlaveLoop()
}
