package baseband

import (
	"testing"

	"repro/internal/btclock"
	"repro/internal/sim"
)

// pageWithError pages with a deliberate clock-estimate error (in half
// slots) and reports success and duration.
func pageWithError(t *testing.T, errHalfSlots int32, timeout int) (bool, uint64) {
	t.Helper()
	r := newRig(0)
	m := r.device("master", 0xE0E001, 0)
	s := r.device("slave", 0xF0F002, 24681)
	s.StartPageScan()
	est := btclock.Estimate(m.Clock, s.Clock.CLKN(0), 0, errHalfSlots)
	var ok bool
	done := false
	m.StartPage(s.Addr(), est, timeout, func(l *Link, o bool) { ok, done = o, true })
	r.k.RunUntil(sim.Time(sim.Slots(uint64(timeout) + 256)))
	if !done {
		t.Fatal("page never finished")
	}
	return ok, m.PageSlots()
}

func TestPageToleratesSmallEstimateError(t *testing.T) {
	// The FHS truncates CLK bits 1-0, so inquiry-derived estimates are up
	// to ±3 half-slots off; paging must absorb that.
	for _, err := range []int32{-3, -1, 0, 1, 3} {
		ok, slots := pageWithError(t, err, 2048)
		if !ok {
			t.Fatalf("page failed with estimate error %d", err)
		}
		if slots > 128 {
			t.Fatalf("estimate error %d cost %d slots", err, slots)
		}
	}
}

func TestPageToleratesModerateEstimateError(t *testing.T) {
	// The page train sweeps ±8 phases around the estimate, so errors up
	// to a few thousand half-slots (clock bits 16-12 off by one) still
	// land via the train sweep or the A/B swap.
	ok, _ := pageWithError(t, 4096, 2048) // bits 16-12 off by one
	if !ok {
		t.Fatal("page failed with a one-step scan-phase error (train must cover it)")
	}
}

func TestPageScanWindowDiscipline(t *testing.T) {
	// A master that starts paging after the slave's scan window closed
	// must wait for the next interval: with a short timeout it fails,
	// proving the window actually closes.
	r := newRig(0)
	m := r.device("master", 0xD0D001, 0)
	s := r.device("slave", 0xC0C002, 1357)
	s.StartPageScan()
	// Burn past the scan window (default 18 slots).
	r.k.RunUntil(sim.Time(sim.Slots(100)))
	est := btclock.Estimate(m.Clock, s.Clock.CLKN(r.k.Now()), r.k.Now(), 0)
	var ok, done bool
	m.StartPage(s.Addr(), est, 256, func(l *Link, o bool) { ok, done = o, true })
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(600)))
	if !done {
		t.Fatal("page never finished")
	}
	if ok {
		t.Fatal("page into a closed scan window should time out")
	}
	// With a timeout spanning the next window it succeeds.
	s.Detach()
	s.StartPageScan()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(100)))
	est2 := btclock.Estimate(m.Clock, s.Clock.CLKN(r.k.Now()), r.k.Now(), 0)
	var ok2 bool
	m.StartPage(s.Addr(), est2, 4096, func(l *Link, o bool) { ok2 = o })
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(4500)))
	if !ok2 {
		t.Fatal("page spanning the next scan window should succeed")
	}
}

func TestSevenSlavePiconetIsFull(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x0A0A01, 0)
	var slaves []*Device
	for i := 0; i < 7; i++ {
		slaves = append(slaves, r.device(
			map[int]string{0: "s1", 1: "s2", 2: "s3", 3: "s4", 4: "s5", 5: "s6", 6: "s7"}[i],
			0x0B0B10+uint32(i)*0x101, uint32(1000*i+13)))
	}
	idx := 0
	var pageNext func()
	pageNext = func() {
		if idx >= len(slaves) {
			return
		}
		sl := slaves[idx]
		sl.StartPageScan()
		est := m.EstimateOf(InquiryResult{CLKN: sl.Clock.CLKN(r.k.Now()), At: r.k.Now()}, 0)
		m.StartPage(sl.Addr(), est, 2048, func(l *Link, ok bool) {
			if !ok {
				t.Errorf("slave %d failed to join", idx)
				return
			}
			idx++
			pageNext()
		})
	}
	pageNext()
	r.k.RunUntil(sim.Time(sim.Slots(8000)))
	if len(m.Links()) != 7 {
		t.Fatalf("links = %d, want 7", len(m.Links()))
	}
	// All seven AM addresses 1..7 in use; an eighth allocation must panic.
	defer func() {
		if recover() == nil {
			t.Error("eighth slave did not panic the allocator")
		}
	}()
	m.allocAMAddr()
}

func TestBroadcastReachesAllSlaves(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x1C1C01, 0)
	s1 := r.device("s1", 0x2D2D02, 100)
	s2 := r.device("s2", 0x3E3E03, 200)
	connectPair(t, r, m, s1)
	connectPair(t, r, m, s2)
	heard := map[string]int{}
	for _, s := range []*Device{s1, s2} {
		dev := s
		dev.OnData = func(l *Link, p []byte, llid uint8) { heard[dev.Name()] += len(p) }
	}
	// Hand-build a broadcast data packet through the master's scheduler:
	// AM_ADDR 0 on a link-less path isn't in the public API, so emulate a
	// park-style beacon carrying data is out of scope — instead verify
	// that per-link unicast does NOT leak to the other slave.
	ml1 := m.Links()[s1.MasterLink().AMAddr]
	ml1.Send([]byte("only for s1"), 2)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(400)))
	if heard["s1"] == 0 {
		t.Fatal("s1 missed its unicast")
	}
	if heard["s2"] != 0 {
		t.Fatal("unicast leaked to s2")
	}
}
