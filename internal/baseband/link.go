package baseband

import (
	"repro/internal/hop"
	"repro/internal/packet"
	"repro/internal/sim"
)

// outMsg is one queued upper-layer payload.
type outMsg struct {
	data []byte
	llid uint8
}

// Link is one ACL link as seen from one end. Master and slave each hold
// their own Link for the same logical connection; both reference the
// master's address (the piconet channel) for hopping and HEC/CRC.
type Link struct {
	dev *Device

	// AMAddr is the slave's active member address on this piconet.
	AMAddr uint8
	// Peer is the other end's device address.
	Peer BDAddr
	// Master is the piconet master's address (equals Peer on a slave).
	Master BDAddr

	sel *hop.Selector // hop selector for the master's address

	// PacketType is the baseband type used for data (default DM1); the
	// packet-type ablation swaps it.
	PacketType packet.Type

	// ARQ state.
	txq         []outMsg
	pending     *outMsg // sent, awaiting acknowledgement
	pendingSent bool    // pending has been transmitted at least once
	seqnOut     bool
	arqnOut     bool
	seqnIn      bool
	seqnInValid bool

	// Scheduling state.
	createdAt       sim.Time // link establishment, supervision baseline
	lastAddressedAt sim.Time // master: last TX to this slave
	lastHeardAt     sim.Time
	newconnPending  bool
	// pollFollowUp marks a sniffed slave whose last response carried
	// data: the master keeps polling it inside the sniff window until a
	// NULL signals the slave's queue is empty. Scatternet bridges drain
	// their store-and-forward backlog through exactly this path; an
	// idle sniff window (Fig 11) never sets it.
	pollFollowUp bool

	// Power mode.
	mode         Mode
	sniffT       int // Tsniff in slots (even)
	sniffAttempt int // Nsniff-attempt in master slots
	sniffOffset  int // anchor offset in even-slot index units
	holdUntil    sim.Time
	holdT        int  // hold duration in slots (for auto-repeat)
	autoHold     bool // re-enter hold after each resync (paper Fig 12)
	resyncUntil  sim.Time

	// Stats.
	TxData int
	RxData int
}

func newLink(dev *Device, amaddr uint8, peer, master BDAddr) *Link {
	return &Link{
		dev:        dev,
		AMAddr:     amaddr,
		Peer:       peer,
		Master:     master,
		sel:        hop.NewSelector(master.Addr28()),
		PacketType: packet.TypeDM1,
		mode:       ModeActive,
		createdAt:  dev.now(),
	}
}

// Mode returns the link's current power mode.
func (l *Link) Mode() Mode { return l.mode }

// QueueLen reports how many upper-layer messages wait for transmission.
func (l *Link) QueueLen() int {
	n := len(l.txq)
	if l.pending != nil {
		n++
	}
	return n
}

// Send queues an upper-layer payload. Payloads longer than the packet
// type's capacity are split into maximal chunks. On a master, queueing
// re-arms a long-skipped TX loop (see wakeMaster).
func (l *Link) Send(data []byte, llid uint8) {
	maxLen := l.PacketType.MaxPayload()
	for len(data) > maxLen {
		l.txq = append(l.txq, outMsg{data: append([]byte(nil), data[:maxLen]...), llid: llid})
		data = data[maxLen:]
		llid = LLIDContinue(llid)
	}
	l.txq = append(l.txq, outMsg{data: append([]byte(nil), data...), llid: llid})
	l.dev.wakeMaster()
}

// LLIDContinue maps a start LLID to its continuation value.
func LLIDContinue(llid uint8) uint8 {
	if llid == packet.LLIDL2CAPStart {
		return packet.LLIDL2CAPContinue
	}
	return llid
}

// hasTraffic reports whether a data transmission is wanted.
func (l *Link) hasTraffic() bool { return l.pending != nil || len(l.txq) > 0 }

// nextPacket builds the next baseband packet for this link: a
// retransmission, fresh data, or the idle packet (POLL for the master,
// NULL for a slave). The ARQN bit always reflects the last reception.
func (l *Link) nextPacket(master bool) *packet.Packet {
	// Packet and header share one allocation; the pair lives only until
	// the transmit path has assembled it onto the air.
	a := &struct {
		p packet.Packet
		h packet.Header
	}{}
	a.h = packet.Header{AMAddr: l.AMAddr, ARQN: l.arqnOut}
	a.p = packet.Packet{AccessLAP: l.Master.LAP, Header: &a.h}
	if l.pending == nil && len(l.txq) > 0 {
		msg := l.txq[0]
		l.txq = l.txq[1:]
		l.pending = &msg
		l.pendingSent = false
		l.seqnOut = !l.seqnOut
	}
	if l.pending != nil {
		if l.pendingSent {
			l.dev.Counters.Retransmits++
		}
		l.pendingSent = true
		a.h.Type = l.PacketType
		a.h.SEQN = l.seqnOut
		l.TxData++
		a.p.Payload = l.pending.data
		a.p.LLID = l.pending.llid
		return &a.p
	}
	if master {
		a.h.Type = packet.TypePoll
	} else {
		a.h.Type = packet.TypeNull
	}
	return &a.p
}

// processRx updates ARQ state from a received header and reports whether
// the payload (if any) is new (not a duplicate).
func (l *Link) processRx(h *packet.Header, hasPayload bool) (deliver bool) {
	if h.ARQN && l.pending != nil {
		l.pending = nil // acknowledged
	}
	if !hasPayload {
		return false
	}
	if l.seqnInValid && h.SEQN == l.seqnIn {
		l.dev.Counters.DupsFiltered++
		l.arqnOut = true // ack again; the peer missed our ack
		return false
	}
	l.seqnIn = h.SEQN
	l.seqnInValid = true
	l.arqnOut = true
	l.RxData++
	return true
}

// rxFailed records a failed reception: the next outgoing ARQN is NAK.
func (l *Link) rxFailed() { l.arqnOut = false }

// inSniffWindow reports whether the even-slot index lies inside the
// link's sniff anchor window.
func (l *Link) inSniffWindow(evenSlotIdx uint32) bool {
	period := uint32(l.sniffT / 2) // even slots per Tsniff
	if period == 0 {
		return true
	}
	pos := (evenSlotIdx - uint32(l.sniffOffset)) % period
	return pos < uint32(l.sniffAttempt)
}
