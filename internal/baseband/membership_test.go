package baseband

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// joinPiconet pages sl into m's piconet with an exact clock estimate and
// returns the two ends of the new link.
func joinPiconet(t *testing.T, r *rig, m, sl *Device) (masterLink, slaveLink *Link) {
	t.Helper()
	m.OnConnected = func(l *Link) { masterLink = l }
	sl.OnConnected = func(l *Link) { slaveLink = l }
	sl.StartPageScan()
	est := m.EstimateOf(InquiryResult{CLKN: sl.Clock.CLKN(r.k.Now()), At: r.k.Now()}, 0)
	m.StartPage(sl.Addr(), est, 2048, nil)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(600)))
	if masterLink == nil || slaveLink == nil {
		t.Fatalf("%s did not join %s's piconet", sl.Name(), m.Name())
	}
	m.OnConnected, sl.OnConnected = nil, nil
	return masterLink, slaveLink
}

// bridgeRig stands up two piconets sharing one medium with a common
// bridge device: slave of masterA (membership memA, suspended state
// depends on the test) and slave of masterB.
func bridgeRig(t *testing.T) (r *rig, masterA, masterB, bridge *Device, linkA, linkB *Link, memA, memB *Membership) {
	t.Helper()
	r = newRig(0)
	masterA = r.device("masterA", 0x1A1A1A, 0)
	masterB = r.device("masterB", 0x2B2B2B, 4242)
	// The bridge scans continuously so its second page-in is not gated
	// on the R1 scan-interval discipline.
	bridge = New(r.k, r.ch, "bridge", Config{
		Addr:                  BDAddr{LAP: 0x3C3C3C, UAP: 0x3C, NAP: 0x1234},
		ClockPhase:            999,
		Seed:                  31337,
		PageScanWindowSlots:   2048,
		PageScanIntervalSlots: 2048,
	})
	linkA, _ = joinPiconet(t, r, masterA, bridge)
	memA = bridge.SuspendMembership()
	linkB, _ = joinPiconet(t, r, masterB, bridge)
	memB = bridge.CaptureMembership()
	return
}

func TestMembershipSwitchDeliversInBothPiconets(t *testing.T) {
	r, masterA, _, bridge, linkA, linkB, memA, memB := bridgeRig(t)

	var got []string
	bridge.OnData = func(l *Link, payload []byte, _ uint8) { got = append(got, string(payload)) }

	// Active in B: traffic from A must NOT arrive (the radio is on B's
	// hop sequence), traffic from B must.
	linkA.Send([]byte("from-A"), packet.LLIDL2CAPStart)
	linkB.Send([]byte("from-B"), packet.LLIDL2CAPStart)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(200)))
	if len(got) != 1 || got[0] != "from-B" {
		t.Fatalf("active-in-B deliveries = %q, want [from-B]", got)
	}

	// Switch to A: the pending frame drains via the master's ARQ
	// retransmission as soon as the bridge listens on A's grid again.
	bridge.ActivateMembership(memA)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(200)))
	if len(got) != 2 || got[1] != "from-A" {
		t.Fatalf("after switch to A deliveries = %q, want [from-B from-A]", got)
	}
	if bridge.Counters.MembershipSwitches != 1 {
		t.Fatalf("MembershipSwitches = %d, want 1", bridge.Counters.MembershipSwitches)
	}
	// Both master-side links must have survived the whole dance.
	if masterA.Links()[linkA.AMAddr] != linkA {
		t.Fatal("master A dropped the bridge link")
	}
	// Re-activating the already-active membership is a no-op.
	bridge.ActivateMembership(memA)
	if bridge.Counters.MembershipSwitches != 1 {
		t.Fatal("no-op re-activation must not count as a switch")
	}
	_ = memB
}

// TestActivateMembershipMidReceptionAbandons pins the presence-window
// boundary edge case: a bridge that switches piconets while a packet is
// mid-air must abandon the reception cleanly — no delivery, no ARQ
// pollution on the new membership's link — and come up listening on the
// new hop sequence.
func TestActivateMembershipMidReceptionAbandons(t *testing.T) {
	r, _, _, bridge, linkA, linkB, memA, memB := bridgeRig(t)
	bridge.ActivateMembership(memA)

	var got []string
	bridge.OnData = func(l *Link, payload []byte, _ uint8) { got = append(got, string(payload)) }
	// Saturate A→bridge so a packet is regularly mid-air at the bridge.
	linkA.Send(make([]byte, 17), packet.LLIDL2CAPStart)
	linkA.Send(make([]byte, 17), packet.LLIDL2CAPStart)

	// Step in small increments until the switch boundary lands mid-packet.
	caught := false
	for i := 0; i < 20000 && !caught; i++ {
		r.k.RunUntil(r.k.Now() + 50)
		caught = bridge.rxBusy
	}
	if !caught {
		t.Fatal("never caught the bridge mid-reception")
	}
	delivered := len(got)
	arqnB := linkB.arqnOut
	bridge.ActivateMembership(memB)

	if bridge.rxBusy {
		t.Fatal("switch must abandon the in-flight reception")
	}
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(4)))
	if len(got) != delivered {
		t.Fatalf("abandoned packet was delivered anyway (%d -> %d)", delivered, len(got))
	}
	// The old piconet's packet must not have fed the new link's ARQ.
	if linkB.arqnOut != arqnB {
		t.Fatal("abandoned reception polluted the new membership's ARQ state")
	}
	// And the new membership must be live: fresh traffic from B arrives.
	linkB.Send([]byte("post-switch"), packet.LLIDL2CAPStart)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(200)))
	if len(got) == delivered || got[len(got)-1] != "post-switch" {
		t.Fatalf("new membership not listening after mid-reception switch: %q", got)
	}
}

// TestMembershipPreservesModeAndClock pins that suspension freezes link
// state: sniff parameters negotiated before a suspension still govern
// the listen schedule after re-activation, and the piconet clock offset
// is restored exactly.
func TestMembershipPreservesModeAndClock(t *testing.T) {
	r, _, _, bridge, linkA, _, memA, memB := bridgeRig(t)

	// Put membership A's link into sniff on both ends while suspended
	// (the master initiates; the bridge side is applied directly, as the
	// lmp package would on acceptance).
	linkA.EnterSniff(64, 4, 0)
	memA.Link.mode = ModeSniff
	memA.Link.sniffT, memA.Link.sniffAttempt, memA.Link.sniffOffset = 64, 4, 0

	offA := memA.clockOffset
	bridge.ActivateMembership(memA)
	if bridge.Clock.Offset() != offA {
		t.Fatalf("clock offset = %d, want %d", bridge.Clock.Offset(), offA)
	}
	if bridge.MasterLink() != memA.Link || memA.Link.Mode() != ModeSniff {
		t.Fatal("sniff state lost across suspension")
	}
	// The sniffing bridge must still be reachable inside its windows.
	var heard bool
	bridge.OnData = func(*Link, []byte, uint8) { heard = true }
	linkA.Send([]byte("sniffed"), packet.LLIDL2CAPStart)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(300)))
	if !heard {
		t.Fatal("sniffing membership never heard its window traffic")
	}
	// Switching back restores B's offset just as exactly.
	bridge.ActivateMembership(memB)
	if bridge.Clock.Offset() != memB.clockOffset {
		t.Fatal("membership B offset not restored")
	}
}

func TestMembershipAPIGuards(t *testing.T) {
	r := newRig(0)
	m := r.device("m", 0x111111, 0)
	sl := r.device("sl", 0x222222, 7)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		fn()
	}
	// Standby devices hold no membership to capture.
	mustPanic("capture from standby", func() { sl.CaptureMembership() })
	joinPiconet(t, r, m, sl)
	// Masters own their piconet; they cannot capture or activate.
	mustPanic("capture on master", func() { m.CaptureMembership() })
	mem := sl.CaptureMembership()
	mustPanic("activate on master", func() { m.ActivateMembership(mem) })
}
