package baseband

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// SCOLink is a synchronous connection-oriented (voice) link: reserved
// slot pairs every Tsco slots carrying fixed-size HV packets with no CRC
// and no retransmission — the standard's second link type, which the
// paper's introduction lists alongside ACL.
type SCOLink struct {
	dev *Device

	// ACL is the underlying asynchronous link the SCO was set up over.
	ACL *Link
	// Type is the voice packet type: HV1 (1/3 FEC), HV2 (2/3), HV3 (none).
	Type packet.Type
	// TscoSlots is the reservation period: 2 (HV1), 4 (HV2), 6 (HV3) for
	// a full-rate voice channel, or larger for sub-rate links.
	TscoSlots int
	// DscoEven is the reservation offset in even-slot index units.
	DscoEven int

	// Source produces the next outgoing voice frame (exactly
	// Type.MaxPayload() bytes). A nil source sends silence.
	Source func() []byte
	// Sink consumes received voice frames.
	Sink func(frame []byte)

	// Counters.
	TxFrames int
	RxFrames int
}

// scoDue returns the SCO link reserved for the even slot starting now,
// or nil.
func (d *Device) scoDue(now sim.Time) *SCOLink {
	evenIdx := d.Clock.CLK(now) >> 2
	for _, sco := range d.scoLinks {
		if sco.reservedAt(evenIdx) {
			return sco
		}
	}
	return nil
}

func (s *SCOLink) reservedAt(evenIdx uint32) bool {
	period := uint32(s.TscoSlots / 2)
	if period == 0 {
		return false
	}
	return (evenIdx-uint32(s.DscoEven))%period == 0
}

// evenSlotsToNextSCO returns how many even slots remain before the next
// reserved SCO slot strictly after the current one (used by the ACL
// scheduler to keep multi-slot packets out of reservations). It returns
// a large number when no SCO links exist.
func (d *Device) evenSlotsToNextSCO(evenIdx uint32) uint32 {
	const horizon = 1 << 20
	best := uint32(horizon)
	for _, sco := range d.scoLinks {
		period := int64(sco.TscoSlots / 2)
		if period == 0 {
			continue
		}
		// Signed arithmetic: an unsigned subtraction would wrap through
		// 2^32, which is not a multiple of odd periods (Tsco = 6 gave an
		// off-by-one gap that made the scheduler miss HV3 reservations).
		gap := ((int64(sco.DscoEven)-int64(evenIdx)-1)%period + period) % period
		if uint32(gap)+1 < best {
			best = uint32(gap) + 1
		}
	}
	return best
}

// voiceFrame produces the next outgoing frame for the link.
func (s *SCOLink) voiceFrame() []byte {
	if s.Source != nil {
		f := s.Source()
		if len(f) != s.Type.MaxPayload() {
			panic(fmt.Sprintf("baseband: SCO source produced %d bytes, want %d",
				len(f), s.Type.MaxPayload()))
		}
		return f
	}
	return make([]byte, s.Type.MaxPayload())
}

// AddSCO reserves a synchronous voice channel on an established ACL
// link (master side). Call AcceptSCO with the same parameters on the
// slave, or negotiate over the air with lmp.Manager.RequestSCO.
func (d *Device) AddSCO(acl *Link, ty packet.Type, tscoSlots, dscoEven int) *SCOLink {
	validateSCO(ty, tscoSlots)
	sco := &SCOLink{dev: d, ACL: acl, Type: ty, TscoSlots: tscoSlots, DscoEven: dscoEven}
	d.scoLinks = append(d.scoLinks, sco)
	d.wakeMaster() // the new reservation may precede the parked wake-up
	return sco
}

// AcceptSCO installs the slave end of a voice channel.
func (d *Device) AcceptSCO(ty packet.Type, tscoSlots, dscoEven int) *SCOLink {
	validateSCO(ty, tscoSlots)
	sco := &SCOLink{dev: d, ACL: d.mlink, Type: ty, TscoSlots: tscoSlots, DscoEven: dscoEven}
	d.scoLinks = append(d.scoLinks, sco)
	return sco
}

// RemoveSCO releases the reservation.
func (d *Device) RemoveSCO(sco *SCOLink) {
	kept := d.scoLinks[:0]
	for _, s := range d.scoLinks {
		if s != sco {
			kept = append(kept, s)
		}
	}
	d.scoLinks = kept
}

// SCOLinks returns the device's active voice channels.
func (d *Device) SCOLinks() []*SCOLink { return d.scoLinks }

func validateSCO(ty packet.Type, tscoSlots int) {
	if !ty.IsSCO() {
		panic(fmt.Sprintf("baseband: %v is not a voice packet type", ty))
	}
	if tscoSlots < 2 || tscoSlots%2 != 0 {
		panic(fmt.Sprintf("baseband: Tsco must be even and >= 2, got %d", tscoSlots))
	}
	min := map[packet.Type]int{packet.TypeHV1: 2, packet.TypeHV2: 4, packet.TypeHV3: 6}[ty]
	if tscoSlots < min {
		panic(fmt.Sprintf("baseband: %v needs Tsco >= %d to fit the voice stream", ty, min))
	}
}

// transmitSCOSlot runs the master's reserved slot: send the voice frame
// and listen for the slave's return frame in the following slot.
func (d *Device) transmitSCOSlot(sco *SCOLink, now sim.Time) {
	clk := d.Clock.CLK(now)
	p := &packet.Packet{
		AccessLAP: d.cfg.Addr.LAP,
		Header:    &packet.Header{AMAddr: sco.ACL.AMAddr, Type: sco.Type},
		Payload:   sco.voiceFrame(),
	}
	d.transmit(p, d.cfg.Addr.UAP, clk, d.chanFreq(d.ownSel, clk))
	sco.TxFrames++

	respAt := now + sim.Time(sim.Slots(1))
	d.masterRespAt = respAt
	d.tMasterOpen.At(respAt - sim.Time(d.leadTicks()))
	d.tMasterCls.At(respAt + sim.Time(sim.Microseconds(uint64(d.cfg.CarrierSenseUS))))
	d.scheduleMasterSlot(respAt + sim.Time(sim.Slots(1)))
}

// handleSCORx routes a received voice packet (either direction); on the
// slave it also sends the return frame in the next slot.
func (d *Device) handleSCORx(p *packet.Packet, rxStart sim.Time) {
	var sco *SCOLink
	for _, s := range d.scoLinks {
		if s.ACL != nil && s.ACL.AMAddr == p.Header.AMAddr {
			sco = s
			break
		}
	}
	if sco == nil {
		return
	}
	sco.RxFrames++
	if sco.Sink != nil {
		sco.Sink(p.Payload)
	}
	if d.isMaster {
		return
	}
	// Slave: the return voice frame goes in the next slot. The response
	// reuses the ACL response timer — the scheduler keeps reserved SCO
	// slots and ACL response slots disjoint, so at most one response is
	// pending at a time.
	d.scoRespLink = sco
	d.slaveRespFn = fnTagSCORespond
	d.tSlaveResp.AtFn(rxStart+sim.Time(sim.Slots(1)), d.fnScoRespond)
}

// scoRespond transmits the slave's return voice frame.
func (d *Device) scoRespond() {
	sco := d.scoRespLink
	if sco == nil || sco.ACL == nil {
		return
	}
	clk := d.Clock.CLK(d.now())
	resp := &packet.Packet{
		AccessLAP: sco.ACL.Master.LAP,
		Header:    &packet.Header{AMAddr: sco.ACL.AMAddr, Type: sco.Type},
		Payload:   sco.voiceFrame(),
	}
	d.transmit(resp, sco.ACL.Master.UAP, clk, d.chanFreq(sco.ACL.sel, clk))
	sco.TxFrames++
}
