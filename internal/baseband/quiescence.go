package baseband

import "repro/internal/sim"

// Whole-world quiescence fast-forward for the slave listen loop.
//
// An active-mode slave opens a carrier-sense window at every master
// transmit slot — the dominant event load of an idle piconet. When the
// channel's quiet horizon (channel.QuietUntil: the earliest instant any
// transmitter may spontaneously put a bit on the air) clears a run of
// upcoming windows entirely, the slave elides their events wholesale:
// the power meter books the identical window pattern virtually
// (power.Meter.SkipWindows) and one timer wakes the loop at the first
// window the proof does not cover. A promise revocation mid-skip
// (QuietHorizonShrunk) falls back to the per-slot schedule before the
// newly announced transmission can start, re-opening the receiver
// mid-window if the revocation lands inside one. The result is exact:
// meters, activation counts, supervision decisions and receptions match
// the per-slot schedule tick for tick, because a skipped window is one
// the per-slot schedule would have opened and closed without hearing a
// single bit.

// maxSkipWindows caps one bulk skip (at two slots per window, 2^16
// windows is about 80 s of simulated time). The wake-up window
// re-evaluates the horizon, so an unbounded quiet stretch still
// fast-forwards indefinitely, one capped hop at a time.
const maxSkipWindows = 1 << 16

// tryListenSkip decides, at a window-open instant, whether the upcoming
// run of active-mode listen windows can be skipped in bulk. It returns
// true after arming the wake-up and the virtual meter pattern.
func (d *Device) tryListenSkip(l *Link) bool {
	// Tracing wants every window on the waveform; a pending response
	// (tSlaveResp: ACL or voice return, tSlaveDone: post-response
	// bookkeeping) means our own transmitter is about to act.
	if d.k.Traced() || d.tSlaveResp.Armed() || d.tSlaveDone.Armed() {
		return false
	}
	now := d.now()
	lead := sim.Time(d.leadTicks())
	cs := sim.Time(sim.Microseconds(uint64(d.cfg.CarrierSenseUS)))
	period := sim.Time(sim.Slots(2))
	s0 := d.nextCLKSlot(now) // this window's slot boundary (now == s0-lead)
	q := d.ch.QuietUntil()
	if q <= s0+cs {
		return false // this very window could hear something
	}
	// Window j opens at s0 + j*period - lead. It is skippable while its
	// whole span closes strictly before the quiet horizon...
	k := uint64(maxSkipWindows)
	if q != sim.TimeMax {
		if kq := (uint64(q-s0-cs) + uint64(period) - 1) / uint64(period); kq < k {
			k = kq
		}
	}
	// ...and while its open could not trip the supervision timeout: the
	// per-slot loop checks the budget at every open, and the skip must
	// drop the link at exactly the same window it would have.
	ref := l.lastHeardAt
	if ref == 0 {
		ref = l.createdAt
	}
	deadline := ref + sim.Time(sim.Slots(uint64(d.cfg.SupervisionTimeoutSlots)))
	if deadline+lead < s0 {
		return false // cannot happen: this window's entry check passed
	}
	if kd := uint64(deadline+lead-s0)/uint64(period) + 1; kd < k {
		k = kd
	}
	if k < 2 {
		return false // nothing to elide beyond the ordinary re-arm
	}
	wake := s0 + sim.Time(k*uint64(period)) - lead
	d.RxMeter.SkipWindows(now, sim.Duration(period), sim.Duration(lead+cs), int(k))
	d.listenSkipping = true
	d.skipStart = now
	d.skipK = int(k)
	d.ch.WatchQuiet(d)
	d.slaveSlotFn = fnTagListen
	d.tSlaveSlot.AtFn(wake, d.fnSlaveListenSlot)
	return true
}

// endListenSkip tears down an active bulk skip: settle the virtual
// meter pattern up to now and stop watching the horizon. The wake-up
// timer is the caller's to re-arm (slaveListenSlot, rescheduleSlaveLoop
// and setState all do).
func (d *Device) endListenSkip() {
	if !d.listenSkipping {
		return
	}
	d.listenSkipping = false
	d.RxMeter.CancelSkip()
	d.ch.UnwatchQuiet(d)
}

// QuietHorizonShrunk implements channel.QuietWatcher: a transmitter
// revoked part of the promised quiet, so the bulk skip must hand back
// to the per-slot schedule before that transmission can start. When the
// revocation lands inside a virtual window the receiver really opens
// for the window's remainder — the meter settle has already booked the
// chain on since the window's start, so the accounting stays seamless.
func (d *Device) QuietHorizonShrunk() {
	if !d.listenSkipping {
		return
	}
	now := d.now()
	lead := sim.Time(d.leadTicks())
	cs := sim.Time(sim.Microseconds(uint64(d.cfg.CarrierSenseUS)))
	period := sim.Time(sim.Slots(2))
	var winStart sim.Time
	inWin := false
	if now >= d.skipStart {
		i := uint64(now-d.skipStart) / uint64(period)
		ws := d.skipStart + sim.Time(i*uint64(period))
		if i < uint64(d.skipK) && now < ws+lead+cs {
			inWin, winStart = true, ws
		}
	}
	d.endListenSkip()
	l := d.mlink
	if l == nil || d.state != StateConnection {
		return
	}
	if inWin {
		slotStart := winStart + lead
		d.rxOn(d.chanFreq(l.sel, d.Clock.CLK(slotStart)))
		d.tSlaveCls.At(slotStart + cs)
		d.scheduleSlaveListen(slotStart + period - lead)
		return
	}
	d.scheduleSlaveListen(now)
}
