package baseband

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/bits"
	"repro/internal/btclock"
	"repro/internal/channel"
	"repro/internal/hop"
	"repro/internal/packet"
	"repro/internal/power"
	"repro/internal/sim"
)

// AirMeta annotates transmissions so instrumentation (and the header
// early-abort model) can see what is on the air without reparsing bits.
type AirMeta struct {
	Type   packet.Type
	AMAddr uint8
	LAP    uint32
}

// Device is one Bluetooth unit: clock, radio control, link-controller
// state machine and (in connection state) the master scheduler or slave
// listener. It implements channel.Listener.
type Device struct {
	name string
	k    *sim.Kernel
	ch   *channel.Channel
	cfg  Config
	rng  *sim.Rand

	Clock   *btclock.Clock
	ownSel  *hop.Selector
	giacSel *hop.Selector

	state State
	gen   uint64 // generation counter: bumping invalidates stale events

	// RF bookkeeping.
	rxBusy  bool // mid-reception: hold the RX chain open
	txCount int  // nested transmissions guard (should stay 0/1)
	TxMeter *power.Meter
	RxMeter *power.Meter

	// Traced signals (the paper's waveforms).
	SigState *sim.Signal[string]
	SigTxOn  *sim.Signal[bool]
	SigRxOn  *sim.Signal[bool]
	SigFreq  *sim.Signal[int64]

	// Receive dispatch for the current state; set by each procedure.
	onRx func(tx *channel.Transmission, rx *bits.Vec, collided bool)
	// onRxStart lets connection-state slaves abort packets for other
	// members after the header; nil otherwise.
	onRxStart func(tx *channel.Transmission)

	inq    inquiryState
	scan   scanState
	pg     pageState
	pgscan pageScanState

	// Reusable timers for every self-rescheduling per-slot callback
	// (train steps, listen windows, poll loops, resync steps). Each is
	// allocated once here and re-armed per slot, so the hot loops never
	// hand the kernel a fresh closure. setState stops all of them —
	// the timer analogue of the generation bump that invalidates
	// closure-scheduled events.
	tInqSlot    *sim.Timer // inquiry train step (every 2 slots)
	tInqSecond  *sim.Timer // second ID of the train step (half slot)
	tInqWin1    *sim.Timer // response window for the first ID
	tInqWin2    *sim.Timer // response window for the second ID
	tInqDeadln  *sim.Timer // overall inquiry timeout
	tPgSlot     *sim.Timer // page train step
	tPgSecond   *sim.Timer // second page ID
	tPgWin1     *sim.Timer // page response window 1
	tPgWin2     *sim.Timer // page response window 2
	tPgDeadln   *sim.Timer // overall page timeout
	tMasterSlot *sim.Timer // master TX-opportunity loop
	tMasterOpen *sim.Timer // master response-listen open
	tMasterCls  *sim.Timer // master response-listen close
	tSlaveSlot  *sim.Timer // slave listen loop (also hold-resync entry)
	tSlaveCls   *sim.Timer // slave listen-window close
	tSlaveResp  *sim.Timer // slave response transmission
	tSlaveDone  *sim.Timer // post-response bookkeeping (hold re-entry)
	tHoldStep   *sim.Timer // hold-resync retune loop
	tRetune     *sim.Timer // scan-frequency retune (every 1.28 s)
	stateTimers []*sim.Timer

	// Pre-bound callbacks reused by the timers above and by transmit;
	// binding them once keeps method-value allocations off the hot path.
	fnTxDone          func()
	fnSlaveListenSlot func()
	fnSlaveHoldResync func()
	fnHoldResyncStep  func()
	fnSlaveRespond    func()
	fnScoRespond      func()

	// Pre-assembled ID packets: an ID is just the 68-bit access code of
	// a LAP, so the on-air bits for the device's own LAP and the GIAC
	// are fixed for the device's lifetime (the page target's ID lives in
	// pageState). Transmitting them costs no assembly and no allocation.
	idOwn  *cachedID
	idGIAC *cachedID

	// Scratch for the timer callbacks (the state they would otherwise
	// capture in a closure).
	scanRetuneSel *hop.Selector // selector driving the scan retune loop
	masterRespAt  sim.Time      // response-slot start of the last master TX
	scoRespLink   *SCOLink      // voice link owing the next return frame

	// Which pre-bound callback the two shared timers currently carry
	// (functions are not comparable, so a checkpoint records these tags
	// instead of inspecting the timer).
	slaveSlotFn timerFn // tSlaveSlot: listen window vs hold resync
	slaveRespFn timerFn // tSlaveResp: ACL response vs SCO return frame

	// masterParked marks a master whose TX loop long-skipped to the next
	// deadline because no member had traffic, a due poll, an SCO
	// reservation or a beacon; new work re-arms the loop early (see
	// Link.Send and wakeMaster).
	masterParked bool

	// quiet is this device's standing spontaneous-TX declaration in the
	// channel's quiet-horizon bookkeeping (see channel.QuietUntil); the
	// listenSkip fields track a bulk-skipped slave listen schedule
	// (see quiescence.go).
	quiet          *channel.TxPromise
	listenSkipping bool
	skipStart      sim.Time
	skipK          int

	// Connection state.
	isMaster         bool
	lastServedAM     uint8                // round-robin anchor for pickLink
	links            [8]*Link             // master: indexed by AM_ADDR (1-7)
	nLinks           int                  // live entries in links
	mlink            *Link                // slave: the link to the master
	beaconEverySlots int                  // park beacon period (master)
	scoLinks         []*SCOLink           // reserved voice channels
	ctlCache         map[ctlKey]*cachedID // assembled NULL/POLL patterns
	afhMap           *hop.ChannelMap      // adaptive hop set (nil = all 79)
	assess           Assessment           // per-frequency reception tallies

	// OnConnected fires when a connection completes (both roles).
	OnConnected func(l *Link)
	// OnDisconnected fires when a link dies: supervision timeout or an
	// explicit DropLink.
	OnDisconnected func(l *Link, reason string)
	// OnLMP receives LLID-3 payloads (the Link Manager's channel).
	OnLMP func(l *Link, payload []byte)
	// OnData receives LLID-1/2 payloads (the host's channel).
	OnData func(l *Link, payload []byte, llid uint8)

	// Counters for the experiments.
	Counters Counters
}

// Counters aggregates per-device protocol events.
type Counters struct {
	TxPackets    int
	RxPackets    int
	RxErrors     int // access-code hits that failed later checks
	Collisions   int
	IDsHeard     int
	FHSHeard     int
	Polls        int
	Retransmits  int
	DupsFiltered int
	// MembershipSwitches counts scatternet membership activations — how
	// often the radio retuned from one piconet's slot grid to another's.
	MembershipSwitches int
}

// FreqObs tallies reception outcomes on one RF channel.
type FreqObs struct {
	OK  int // packets that passed the HEC/CRC checks on this channel
	Bad int // collisions, jam hits and HEC/CRC failures
}

// Assessment is the per-frequency channel-assessment tally a device
// accumulates while in connection state: every reception outcome is
// booked against the RF channel it arrived on. The coexistence layer's
// classifier reads a window of these tallies, marks channels with a high
// error fraction as bad, and installs the surviving set as an AFH
// channel map over LMP — the learned counterpart of the oracle
// hop.ExcludeRange maps the early AFH experiments hand-picked.
type Assessment [hop.NumChannels]FreqObs

// New creates a device attached to a kernel and channel. Traced signals
// register with whatever tracers are already on the kernel.
func New(k *sim.Kernel, ch *channel.Channel, name string, cfg Config) *Device {
	cfg.Normalize()
	d := &Device{
		name:    name,
		k:       k,
		ch:      ch,
		cfg:     cfg,
		rng:     sim.NewRand(cfg.Seed),
		Clock:   btclock.New(cfg.ClockPhase),
		ownSel:  hop.NewSelector(cfg.Addr.Addr28()),
		giacSel: hop.NewSelector(hop.Addr28(access.GIAC, 0)),
		TxMeter: power.NewMeter(k),
		RxMeter: power.NewMeter(k),
	}
	// A fresh device is in standby: it transmits nothing until a
	// procedure starts (and every procedure start goes through setState,
	// which re-declares the promise).
	d.quiet = ch.NewTxPromise(sim.TimeMax)
	d.SigState = sim.NewString(k, name+".state", StateStandby.String())
	d.SigTxOn = sim.NewBool(k, name+".enable_tx_RF", false)
	d.SigRxOn = sim.NewBool(k, name+".enable_rx_RF", false)
	d.SigFreq = sim.NewInt(k, name+".freq", 7, 0)

	d.tInqSlot = k.NewTimer(d.inquiryTxSlot)
	d.tInqSecond = k.NewTimer(d.inquirySecondID)
	d.tInqWin1 = k.NewTimer(d.inquiryRxWin1)
	d.tInqWin2 = k.NewTimer(d.inquiryRxWin2)
	d.tInqDeadln = k.NewTimer(d.finishInquiry)
	d.tPgSlot = k.NewTimer(d.pageTxSlot)
	d.tPgSecond = k.NewTimer(d.pageSecondID)
	d.tPgWin1 = k.NewTimer(d.pageRxWin1)
	d.tPgWin2 = k.NewTimer(d.pageRxWin2)
	d.tPgDeadln = k.NewTimer(d.pageFail)
	d.tMasterSlot = k.NewTimer(d.masterSlot)
	d.tMasterOpen = k.NewTimer(d.masterRespOpen)
	d.tMasterCls = k.NewTimer(d.rxOffIfIdle)
	d.tSlaveSlot = k.NewTimer(nil)
	d.tSlaveCls = k.NewTimer(d.rxOffIfIdle)
	d.tSlaveResp = k.NewTimer(d.slaveRespond)
	d.tSlaveDone = k.NewTimer(d.slaveRespDone)
	d.tHoldStep = k.NewTimer(d.holdResyncStep)
	d.tRetune = k.NewTimer(d.scanRetune)
	d.stateTimers = []*sim.Timer{
		d.tInqSlot, d.tInqSecond, d.tInqWin1, d.tInqWin2, d.tInqDeadln,
		d.tPgSlot, d.tPgSecond, d.tPgWin1, d.tPgWin2, d.tPgDeadln,
		d.tMasterSlot, d.tMasterOpen, d.tMasterCls,
		d.tSlaveSlot, d.tSlaveCls, d.tSlaveResp, d.tSlaveDone,
		d.tHoldStep, d.tRetune,
	}

	d.fnTxDone = d.txDone
	d.fnSlaveListenSlot = d.slaveListenSlot
	d.fnSlaveHoldResync = d.slaveHoldResync
	d.fnHoldResyncStep = d.holdResyncStep
	d.fnSlaveRespond = d.slaveRespond
	d.fnScoRespond = d.scoRespond

	d.idOwn = newCachedID(d.cfg.Addr.LAP)
	d.idGIAC = newCachedID(access.GIAC)
	return d
}

// Name implements channel.Listener.
func (d *Device) Name() string { return d.name }

// Addr returns the device address.
func (d *Device) Addr() BDAddr { return d.cfg.Addr }

// Config returns the normalized configuration.
func (d *Device) Config() Config { return d.cfg }

// State returns the current link-controller state.
func (d *Device) State() State { return d.state }

// IsMaster reports whether the device owns a piconet.
func (d *Device) IsMaster() bool { return d.isMaster }

// Links returns a snapshot of the master's links keyed by AM_ADDR.
// (Internally links live in a fixed AM_ADDR-indexed array; the map is
// built per call for the convenience of tests and tooling.)
func (d *Device) Links() map[uint8]*Link {
	m := make(map[uint8]*Link, d.nLinks)
	for am, l := range d.links {
		if l != nil {
			m[uint8(am)] = l
		}
	}
	return m
}

// MasterLink returns the slave's link to its master (nil if none).
func (d *Device) MasterLink() *Link { return d.mlink }

// setState transitions the state machine, invalidating every event
// scheduled under the previous state: closure-scheduled events die by
// the generation bump, timer-scheduled ones are stopped outright.
func (d *Device) setState(s State) {
	d.endListenSkip()
	d.state = s
	d.gen++
	for _, t := range d.stateTimers {
		t.Stop()
	}
	d.masterParked = false
	d.SigState.Set(s.String())
	d.onRx = nil
	d.onRxStart = nil
	// Re-declare the spontaneous-TX promise for the new state. Standby
	// devices and connection-state slaves only ever transmit in reaction
	// to a reception (responses, resync answers, voice returns), so on a
	// quiet medium they stay quiet; every other state runs trains or TX
	// loops that may start at any slot. Role flags are set before the
	// transition (startMasterLoop / startSlaveLoop), so isMaster is
	// already correct here.
	if s == StateStandby || (s == StateConnection && !d.isMaster) {
		d.quiet.Promise(sim.TimeMax)
	} else {
		d.quiet.Promise(0)
	}
}

// after schedules fn to run after delay unless the state machine has
// since transitioned.
func (d *Device) after(delay sim.Duration, fn func()) {
	gen := d.gen
	d.k.Schedule(delay, func() {
		if d.gen == gen {
			fn()
		}
	})
}

// at schedules fn at an absolute time under the same staleness rule.
func (d *Device) at(t sim.Time, fn func()) {
	gen := d.gen
	d.k.At(t, func() {
		if d.gen == gen {
			fn()
		}
	})
}

// now is shorthand for the kernel clock.
func (d *Device) now() sim.Time { return d.k.Now() }

// rxOn tunes the receiver to freq and raises enable_rx_RF.
func (d *Device) rxOn(freq int) {
	d.ch.Tune(d, freq)
	d.RxMeter.Set(true)
	d.SigRxOn.Set(true)
	d.SigFreq.Set(int64(freq))
}

// rxOff lowers the receiver unless a packet is mid-air for us; the
// reception handler decides again at RxEnd.
func (d *Device) rxOff() {
	if d.rxBusy {
		return
	}
	d.rxOffForce()
}

// rxOffForce unconditionally shuts the receiver, abandoning any packet
// in flight (state transitions, header-abort).
func (d *Device) rxOffForce() {
	d.rxBusy = false
	d.ch.Untune(d)
	d.RxMeter.Set(false)
	d.SigRxOn.Set(false)
}

// transmit assembles and sends p at freq, driving the TX meter and
// signal for the packet's air time. Payload-less control packets (POLL,
// NULL, the park beacon) dominate idle piconet traffic and assemble to
// one of a few bit patterns — those come from the device's control
// cache instead of re-running the whitener and FEC every slot.
func (d *Device) transmit(p *packet.Packet, uap uint8, clk uint32, freq int) {
	if h := p.Header; h != nil && (h.Type == packet.TypeNull || h.Type == packet.TypePoll) {
		c := d.cachedCtl(p, uap, clk)
		d.transmitVec(c.vec, c.meta, freq)
		return
	}
	meta := AirMeta{Type: p.Type(), LAP: p.AccessLAP}
	if p.Header != nil {
		meta.AMAddr = p.Header.AMAddr
	}
	d.transmitVec(p.Assemble(uap, clk), meta, freq)
}

// ctlKey identifies one assembled control-packet bit pattern: everything
// Assemble folds into the air bits of a payload-less packet. The LAP and
// UAP vary per piconet (a scatternet bridge transmits under several),
// the whitener seed is CLK6-1, and the header byte packs the remaining
// on-air header fields.
type ctlKey struct {
	lap  uint32
	uap  uint8
	seed uint8
	hdr  uint16 // AM_ADDR | type<<3 | flow<<7 | arqn<<8 | seqn<<9
}

// cachedCtl returns the assembled + boxed form of a NULL/POLL packet,
// assembling on first use. Entries are immutable once stored: the vec
// rides the channel read-only (the Listener contract), exactly like the
// pre-assembled ID packets of the page/inquiry trains.
func (d *Device) cachedCtl(p *packet.Packet, uap uint8, clk uint32) *cachedID {
	h := p.Header
	key := ctlKey{
		lap:  p.AccessLAP,
		uap:  uap,
		seed: uint8(clk>>1) & 0x3F,
		hdr:  uint16(h.AMAddr&7) | uint16(h.Type&0xF)<<3 | boolWord(h.Flow)<<7 | boolWord(h.ARQN)<<8 | boolWord(h.SEQN)<<9,
	}
	if c := d.ctlCache[key]; c != nil {
		return c
	}
	if d.ctlCache == nil {
		d.ctlCache = make(map[ctlKey]*cachedID)
	}
	c := &cachedID{
		vec:  p.Assemble(uap, clk),
		meta: AirMeta{Type: h.Type, LAP: p.AccessLAP, AMAddr: h.AMAddr},
	}
	d.ctlCache[key] = c
	return c
}

func boolWord(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

// cachedID is a pre-assembled, pre-boxed ID packet: the 68-bit access
// code of one LAP plus its boxed AirMeta annotation.
type cachedID struct {
	vec  *bits.Vec
	meta any // boxed AirMeta
}

// newCachedID assembles and boxes the ID packet of a LAP.
func newCachedID(lap uint32) *cachedID {
	return &cachedID{
		vec:  packet.NewID(lap).Assemble(0, 0),
		meta: AirMeta{Type: packet.TypeID, LAP: lap},
	}
}

// transmitID sends a pre-assembled, pre-boxed ID (see idOwnVec /
// idGIACVec): the steady-state path of the inquiry and page trains,
// which skips packet assembly and metadata boxing entirely.
func (d *Device) transmitID(id *cachedID, freq int) {
	d.transmitVec(id.vec, id.meta, freq)
}

// transmitVec puts assembled bits on the air, driving the TX meter and
// signal for the packet's air time. meta is pre-boxed by the caller so
// the hot paths can reuse one boxed value per packet identity.
func (d *Device) transmitVec(v *bits.Vec, meta any, freq int) {
	d.txCount++
	d.TxMeter.Set(true)
	d.SigTxOn.Set(true)
	d.SigFreq.Set(int64(freq))
	d.ch.Transmit(d.name, freq, v, meta)
	d.Counters.TxPackets++
	d.k.Schedule(sim.Duration(v.Len()*sim.BitTicks), d.fnTxDone)
}

// txDone lowers the TX meter when the last nested transmission ends.
func (d *Device) txDone() {
	d.txCount--
	if d.txCount == 0 {
		d.TxMeter.Set(false)
		d.SigTxOn.Set(false)
	}
}

// rxOffIfIdle closes the listen window unless a packet is mid-air — the
// shared close callback of every carrier-sense window.
func (d *Device) rxOffIfIdle() {
	if !d.rxBusy {
		d.rxOff()
	}
}

// RxStart implements channel.Listener: a packet began on our frequency.
func (d *Device) RxStart(tx *channel.Transmission) {
	d.rxBusy = true
	if d.onRxStart != nil {
		d.onRxStart(tx)
	}
}

// RxEnd implements channel.Listener: packet delivery (or collision).
func (d *Device) RxEnd(tx *channel.Transmission, rx *bits.Vec, collided bool) {
	d.rxBusy = false
	if collided {
		d.Counters.Collisions++
	}
	if d.onRx != nil {
		d.onRx(tx, rx, collided)
	} else {
		d.rxOff()
	}
}

// Detach resets the device to standby, dropping links, sync and any
// scheduled activity (the paper's enable_detach_reset).
func (d *Device) Detach() {
	d.setState(StateStandby)
	d.rxOffForce()
	d.isMaster = false
	d.links = [8]*Link{}
	d.nLinks = 0
	d.mlink = nil
	d.pgscan = pageScanState{}
	d.Clock.DropSync()
}

// parse decodes rx with the device's correlator threshold.
func (d *Device) parse(rx *bits.Vec, lap uint32, uap uint8, clk uint32) (*packet.Packet, *packet.RxInfo, error) {
	return packet.Parse(rx, lap, uap, clk, d.cfg.CorrelatorThreshold)
}

// leadTicks converts the RX lead to kernel ticks.
func (d *Device) leadTicks() sim.Duration {
	return sim.Microseconds(uint64(d.cfg.RxLeadUS))
}

// nextCLKSlot returns the next master transmit-slot boundary — piconet
// clock CLK ≡ 0 (mod 4) — at or after t. Slaves carry a CLKN→CLK offset,
// so this must not be confused with the native-clock grid.
func (d *Device) nextCLKSlot(t sim.Time) sim.Time {
	off := d.Clock.Offset() & 3
	return d.Clock.NextTickTime(t, 4, (4-off)&3)
}

// nextCLKSlotAfterLead returns the next master slot whose lead-advanced
// listen window lies strictly in the future (so rescheduling from within
// an event can never chain at the same tick).
func (d *Device) nextCLKSlotAfterLead(from sim.Time) sim.Time {
	t := d.nextCLKSlot(from)
	for t <= d.now()+sim.Time(d.leadTicks()) {
		t = d.nextCLKSlot(t + 1)
	}
	return t
}

// SetAFH installs an adaptive channel map for connection-state hopping
// (nil restores the full 79-channel set). Both ends of a piconet must
// agree; lmp.Manager.SetAFH negotiates it over the air.
func (d *Device) SetAFH(m *hop.ChannelMap) { d.afhMap = m }

// AFHMap returns the current adaptive channel map (nil = full set).
func (d *Device) AFHMap() *hop.ChannelMap { return d.afhMap }

// Assessment returns a copy of the per-frequency reception tallies
// accumulated since the last ResetAssessment.
func (d *Device) Assessment() Assessment { return d.assess }

// ResetAssessment clears the per-frequency tallies, opening a fresh
// channel-classification window.
func (d *Device) ResetAssessment() { d.assess = Assessment{} }

// observeFreq books one connection-state reception outcome against the
// RF channel it arrived on.
func (d *Device) observeFreq(freq int, ok bool) {
	if freq < 0 || freq >= hop.NumChannels {
		return
	}
	if ok {
		d.assess[freq].OK++
	} else {
		d.assess[freq].Bad++
	}
}

// chanFreq computes a connection-state frequency through the adaptive
// channel map.
func (d *Device) chanFreq(sel *hop.Selector, clk uint32) int {
	return sel.BasicAFH(clk, d.afhMap)
}

// Now exposes the kernel clock to upper layers.
func (d *Device) Now() sim.Time { return d.k.Now() }

// After schedules fn on the device's kernel after a slot delay. Unlike
// internal events it is not invalidated by state transitions; upper
// layers (LMP, HCI, applications) use it for their own timers. The
// returned EventID lets those layers capture the pending arm in a
// checkpoint (see Kernel.EventInfo); callers that never snapshot may
// ignore it.
func (d *Device) After(slots uint64, fn func()) sim.EventID {
	return d.k.Schedule(sim.Slots(slots), fn)
}

// AfterID is After with the pending event re-armed at an absolute time
// on an explicit shard — the restore-side counterpart used by upper
// layers re-arming captured timers through a sim.RearmSet.
func (d *Device) AfterID(shard int, at sim.Time, fn func()) sim.EventID {
	return d.k.AtOn(shard, at, fn)
}

// String identifies the device in logs.
func (d *Device) String() string {
	return fmt.Sprintf("%s[%s %s]", d.name, d.cfg.Addr, d.state)
}
