package baseband

import "repro/internal/sim"

// checkSupervision enforces the link supervision timeout: a link whose
// peer has been silent too long is torn down. Hold periods suspend the
// check (the silence is negotiated), and a master cannot supervise a
// parked slave (parked members never transmit).
func (d *Device) checkSupervision(now sim.Time) {
	budget := sim.Time(sim.Slots(uint64(d.cfg.SupervisionTimeoutSlots)))
	if d.isMaster {
		// Fixed AM_ADDR order, not map order: simultaneous timeouts must
		// tear down in a deterministic sequence.
		for am := uint8(1); am <= 7; am++ {
			l := d.links[am]
			if l == nil {
				continue
			}
			if l.mode == ModePark {
				continue
			}
			if l.mode == ModeHold && now < l.holdUntil+budget {
				continue
			}
			ref := l.lastHeardAt
			if ref == 0 {
				ref = l.createdAt
			}
			if now-ref > budget {
				d.DropLink(l, "supervision timeout")
			}
		}
		return
	}
	l := d.mlink
	if l == nil {
		return
	}
	if l.mode == ModeHold && now < l.holdUntil+budget {
		return
	}
	ref := l.lastHeardAt
	if ref == 0 {
		ref = l.createdAt
	}
	if now-ref > budget {
		d.DropLink(l, "supervision timeout")
	}
}

// DropLink tears a link down locally (the peer discovers the loss via
// its own supervision timeout) and reports the reason upward.
func (d *Device) DropLink(l *Link, reason string) {
	if d.isMaster {
		if d.links[l.AMAddr] != l {
			return
		}
		d.links[l.AMAddr] = nil
		d.nLinks--
		if d.nLinks == 0 {
			d.isMaster = false
			d.setState(StateStandby)
			d.rxOffForce()
		}
	} else {
		if d.mlink != l {
			return
		}
		d.mlink = nil
		d.Clock.DropSync()
		d.setState(StateStandby)
		d.rxOffForce()
	}
	if d.OnDisconnected != nil {
		d.OnDisconnected(l, reason)
	}
}

// Vanish makes the device disappear from the air instantly (battery
// pulled): all links drop without notifying anyone, the radio dies.
// Peers discover the loss through their supervision timeouts — the
// failure-injection hook used by the robustness tests.
func (d *Device) Vanish() {
	d.setState(StateStandby)
	d.rxOffForce()
	d.isMaster = false
	d.links = [8]*Link{}
	d.nLinks = 0
	d.mlink = nil
}
