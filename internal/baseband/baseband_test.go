package baseband

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/packet"
	"repro/internal/sim"
)

// rig is the shared test harness: kernel, channel and named devices.
type rig struct {
	k  *sim.Kernel
	ch *channel.Channel
}

func newRig(ber float64) *rig {
	k := sim.NewKernel()
	return &rig{k: k, ch: channel.New(k, sim.NewRand(0xC0FFEE), channel.Config{BER: ber})}
}

func (r *rig) device(name string, lap uint32, phase uint32) *Device {
	return New(r.k, r.ch, name, Config{
		Addr:       BDAddr{LAP: lap, UAP: uint8(lap >> 16), NAP: 0x1234},
		ClockPhase: phase,
		Seed:       uint64(lap)*977 + 13,
	})
}

func TestConfigNormalize(t *testing.T) {
	c := (&Config{}).Normalize()
	if c.CorrelatorThreshold != 7 || c.NInquiry != 64 || c.BackoffMaxSlots != 1023 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Seed == 0 {
		t.Fatal("seed must be derived")
	}
	c2 := (&Config{NInquiry: 256}).Normalize()
	if c2.NInquiry != 256 {
		t.Fatal("explicit value overwritten")
	}
}

func TestStrings(t *testing.T) {
	if StateInquiryScan.String() != "INQUIRY SCAN" || StateConnection.String() != "CONNECTION" {
		t.Fatal("State strings wrong")
	}
	if ModeSniff.String() != "SNIFF" || ModeHold.String() != "HOLD" {
		t.Fatal("Mode strings wrong")
	}
	a := BDAddr{LAP: 0xABCDEF, UAP: 0x12, NAP: 0x3456}
	if a.String() != "3456:12:ABCDEF" {
		t.Fatalf("BDAddr string = %s", a.String())
	}
	if State(99).String() == "" || Mode(99).String() == "" {
		t.Fatal("unknown enums must still print")
	}
}

func TestLinkSendChunks(t *testing.T) {
	l := &Link{PacketType: packet.TypeDM1} // max 17 bytes
	l.Send(make([]byte, 40), packet.LLIDL2CAPStart)
	if len(l.txq) != 3 {
		t.Fatalf("chunks = %d, want 3", len(l.txq))
	}
	if l.txq[0].llid != packet.LLIDL2CAPStart {
		t.Fatal("first chunk LLID wrong")
	}
	if l.txq[1].llid != packet.LLIDL2CAPContinue || l.txq[2].llid != packet.LLIDL2CAPContinue {
		t.Fatal("continuation LLID wrong")
	}
	if len(l.txq[0].data) != 17 || len(l.txq[2].data) != 6 {
		t.Fatal("chunk sizes wrong")
	}
	if l.QueueLen() != 3 {
		t.Fatal("QueueLen wrong")
	}
}

func TestLinkARQDedup(t *testing.T) {
	d := &Device{}
	l := &Link{dev: d}
	h := &packet.Header{SEQN: true}
	if !l.processRx(h, true) {
		t.Fatal("first payload must deliver")
	}
	if l.processRx(h, true) {
		t.Fatal("duplicate SEQN must be filtered")
	}
	if d.Counters.DupsFiltered != 1 {
		t.Fatal("dup counter wrong")
	}
	h2 := &packet.Header{SEQN: false}
	if !l.processRx(h2, true) {
		t.Fatal("toggled SEQN must deliver")
	}
}

func TestLinkAckClearsPending(t *testing.T) {
	l := &Link{dev: &Device{}, PacketType: packet.TypeDM1, Master: BDAddr{LAP: 1}}
	l.Send([]byte{1, 2, 3}, packet.LLIDL2CAPStart)
	p := l.nextPacket(true)
	if p.Header.Type != packet.TypeDM1 || l.pending == nil {
		t.Fatal("data packet not built")
	}
	l.processRx(&packet.Header{ARQN: true}, false)
	if l.pending != nil {
		t.Fatal("ACK did not clear pending")
	}
	p2 := l.nextPacket(true)
	if p2.Header.Type != packet.TypePoll {
		t.Fatalf("empty queue should POLL, got %v", p2.Header.Type)
	}
}

func TestLinkRetransmitOnNak(t *testing.T) {
	dev := &Device{}
	l := &Link{dev: dev, PacketType: packet.TypeDM1, Master: BDAddr{LAP: 1}}
	l.Send([]byte{9}, packet.LLIDL2CAPStart)
	first := l.nextPacket(true)
	l.processRx(&packet.Header{ARQN: false}, false) // NAK
	second := l.nextPacket(true)
	if second.Header.SEQN != first.Header.SEQN {
		t.Fatal("retransmission must keep SEQN")
	}
	if dev.Counters.Retransmits != 1 {
		t.Fatal("retransmit not counted")
	}
}

func TestSniffWindow(t *testing.T) {
	l := &Link{sniffT: 20, sniffAttempt: 2, sniffOffset: 0}
	// Period = 10 even slots; windows at indices 0,1, 10,11, ...
	for _, c := range []struct {
		idx  uint32
		want bool
	}{{0, true}, {1, true}, {2, false}, {9, false}, {10, true}, {11, true}, {12, false}} {
		if got := l.inSniffWindow(c.idx); got != c.want {
			t.Errorf("inSniffWindow(%d) = %v, want %v", c.idx, got, c.want)
		}
	}
}

// connectPair builds a two-device piconet directly through page/page
// scan (no inquiry) with an exact clock estimate, and runs until
// connected. Returns master, slave and their links.
func connectPair(t *testing.T, r *rig, m, s *Device) (*Link, *Link) {
	t.Helper()
	var mLink, sLink *Link
	m.OnConnected = func(l *Link) { mLink = l }
	s.OnConnected = func(l *Link) { sLink = l }
	s.StartPageScan()
	est := m.EstimateOf(InquiryResult{CLKN: s.Clock.CLKN(r.k.Now()), At: r.k.Now()}, 0)
	m.StartPage(s.Addr(), est, 2048, func(l *Link, ok bool) {})
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(600)))
	if mLink == nil || sLink == nil {
		t.Fatalf("pair did not connect: master=%v slave=%v (m state %v, s state %v)",
			mLink != nil, sLink != nil, m.State(), s.State())
	}
	return mLink, sLink
}

func TestPageConnectsQuickly(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x111111, 0)
	s := r.device("slave", 0x222222, 12345)
	ml, sl := connectPair(t, r, m, s)
	if !m.IsMaster() || s.IsMaster() {
		t.Fatal("roles wrong")
	}
	if ml.AMAddr != sl.AMAddr || ml.AMAddr == 0 {
		t.Fatalf("AM_ADDR mismatch: %d vs %d", ml.AMAddr, sl.AMAddr)
	}
	if ml.Peer != s.Addr() || sl.Peer != m.Addr() {
		t.Fatal("peer addresses wrong")
	}
	// The paper: ~17 slots in absence of noise. Allow slack for phase.
	if got := m.PageSlots(); got > 64 {
		t.Fatalf("page took %d slots, want ~17", got)
	}
	// Clocks agree after FHS sync.
	now := r.k.Now()
	if m.Clock.CLK(now) != s.Clock.CLK(now) {
		t.Fatalf("piconet clocks disagree: %d vs %d", m.Clock.CLK(now), s.Clock.CLK(now))
	}
}

func TestInquiryDiscovers(t *testing.T) {
	r := newRig(0)
	inq := r.device("inquirer", 0x333333, 0)
	scn := r.device("scanner", 0x444444, 99999)
	scn.StartInquiryScan()
	var results []InquiryResult
	ok := false
	inq.StartInquiry(4096, 1, func(rs []InquiryResult, o bool) { results, ok = rs, o })
	r.k.RunUntil(sim.Time(sim.Slots(5000)))
	if !ok || len(results) != 1 {
		t.Fatalf("inquiry failed: ok=%v results=%d", ok, len(results))
	}
	if results[0].Addr != scn.Addr() {
		t.Fatalf("discovered %v, want %v", results[0].Addr, scn.Addr())
	}
	// The reported clock must be close to the scanner's true clock.
	trueCLKN := scn.Clock.CLKN(results[0].At)
	diff := int32(trueCLKN) - int32(results[0].CLKN)
	if diff < 0 {
		diff = -diff
	}
	if diff > 3 {
		t.Fatalf("FHS clock off by %d half-slots", diff)
	}
}

func TestFullPiconetCreation(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x515151, 0)
	s := r.device("slave", 0x626262, 777777)
	s.StartInquiryScan()
	connected := false
	m.StartInquiry(4096, 1, func(rs []InquiryResult, ok bool) {
		if !ok {
			t.Error("inquiry phase failed")
			return
		}
		s.StartPageScan()
		m.StartPage(rs[0].Addr, m.EstimateOf(rs[0], 0), 2048, func(l *Link, ok bool) {
			connected = ok
		})
	})
	r.k.RunUntil(sim.Time(sim.Slots(8000)))
	if !connected {
		t.Fatalf("piconet not created (m=%v s=%v)", m.State(), s.State())
	}
}

func TestDataMasterToSlave(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x111122, 0)
	s := r.device("slave", 0x222233, 5000)
	ml, _ := connectPair(t, r, m, s)
	var got []byte
	s.OnData = func(l *Link, payload []byte, llid uint8) { got = append(got, payload...) }
	msg := []byte("hello bluetooth world from the master device!")
	ml.Send(msg, packet.LLIDL2CAPStart)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(400)))
	if string(got) != string(msg) {
		t.Fatalf("slave received %q, want %q", got, msg)
	}
	if ml.QueueLen() != 0 {
		t.Fatal("master queue not drained")
	}
}

func TestDataSlaveToMaster(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x111133, 0)
	s := r.device("slave", 0x222244, 600)
	_, sl := connectPair(t, r, m, s)
	var got []byte
	m.OnData = func(l *Link, payload []byte, llid uint8) { got = append(got, payload...) }
	msg := []byte("uplink data rides on the polling scheme")
	sl.Send(msg, packet.LLIDL2CAPStart)
	// The slave can only send when polled: within a few Tpoll periods.
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(600)))
	if string(got) != string(msg) {
		t.Fatalf("master received %q, want %q", got, msg)
	}
}

func TestDataSurvivesNoise(t *testing.T) {
	r := newRig(1.0 / 300)
	m := r.device("master", 0x414141, 0)
	s := r.device("slave", 0x525252, 31337)
	ml, _ := connectPair(t, r, m, s)
	received := 0
	s.OnData = func(l *Link, payload []byte, llid uint8) { received += len(payload) }
	const n = 30
	for i := 0; i < n; i++ {
		ml.Send([]byte{byte(i), byte(i + 1), byte(i + 2)}, packet.LLIDL2CAPStart)
	}
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(4000)))
	if received != 3*n {
		t.Fatalf("delivered %d bytes, want %d (ARQ must recover losses)", received, 3*n)
	}
}

func TestMultiSlavePiconet(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x121212, 0)
	slaves := []*Device{
		r.device("slave1", 0x232323, 1111),
		r.device("slave2", 0x343434, 2222),
		r.device("slave3", 0x454545, 3333),
	}
	connected := 0
	m.OnConnected = func(l *Link) {}
	// Page each slave in sequence (one page procedure at a time).
	var pageNext func(i int)
	pageNext = func(i int) {
		if i >= len(slaves) {
			return
		}
		s := slaves[i]
		s.OnConnected = func(l *Link) { connected++ }
		s.StartPageScan()
		est := m.EstimateOf(InquiryResult{CLKN: s.Clock.CLKN(r.k.Now()), At: r.k.Now()}, 0)
		m.StartPage(s.Addr(), est, 2048, func(l *Link, ok bool) {
			if !ok {
				t.Errorf("page of slave %d failed", i)
				return
			}
			pageNext(i + 1)
		})
	}
	pageNext(0)
	r.k.RunUntil(sim.Time(sim.Slots(4000)))
	if connected != 3 {
		t.Fatalf("connected %d slaves, want 3", connected)
	}
	if len(m.Links()) != 3 {
		t.Fatalf("master has %d links", len(m.Links()))
	}
	seen := map[uint8]bool{}
	for am := range m.Links() {
		if seen[am] || am == 0 {
			t.Fatal("AM_ADDR duplicated or zero")
		}
		seen[am] = true
	}
	// All slaves keep being polled: their lastHeard advances.
	before := r.k.Now()
	r.k.RunUntil(before + sim.Time(sim.Slots(300)))
	for am, l := range m.Links() {
		if l.lastHeardAt <= before-sim.Time(sim.Slots(100)) {
			t.Fatalf("slave %d not heard from recently", am)
		}
	}
}

func TestSniffReducesSlaveActivity(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x616161, 0)
	s := r.device("slave", 0x727272, 444)
	ml, sl := connectPair(t, r, m, s)

	// Measure active-mode RX+TX activity over a window.
	s.RxMeter.Reset()
	s.TxMeter.Reset()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(2000)))
	activeAct := s.RxMeter.Activity() + s.TxMeter.Activity()

	// Enter sniff with Tsniff = 100 slots.
	ml.EnterSniff(100, 2, 0)
	sl.EnterSniff(100, 2, 0)
	s.RxMeter.Reset()
	s.TxMeter.Reset()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(2000)))
	sniffAct := s.RxMeter.Activity() + s.TxMeter.Activity()

	if sniffAct >= activeAct {
		t.Fatalf("sniff activity %.4f >= active %.4f", sniffAct, activeAct)
	}
	// The slave must still be reachable: master polls at anchors.
	if sl.lastHeardAt == 0 {
		t.Fatal("sniffing slave never heard the master")
	}
}

func TestSniffTrafficStillDelivered(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x818181, 0)
	s := r.device("slave", 0x929292, 555)
	ml, sl := connectPair(t, r, m, s)
	ml.EnterSniff(40, 2, 0)
	sl.EnterSniff(40, 2, 0)
	got := 0
	s.OnData = func(l *Link, p []byte, llid uint8) { got += len(p) }
	ml.Send([]byte{1, 2, 3, 4, 5}, packet.LLIDL2CAPStart)
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(300)))
	if got != 5 {
		t.Fatalf("sniffed slave received %d bytes, want 5", got)
	}
}

func TestHoldDarkensRF(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0xA1A1A1, 0)
	s := r.device("slave", 0xB2B2B2, 666)
	ml, sl := connectPair(t, r, m, s)
	_ = ml

	ml.EnterHold(400)
	sl.EnterHold(400)
	// Let any in-flight exchange settle, then measure inside the hold.
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(10)))
	s.RxMeter.Reset()
	s.TxMeter.Reset()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(350)))
	if a := s.RxMeter.Activity() + s.TxMeter.Activity(); a != 0 {
		t.Fatalf("RF active during hold: %.5f", a)
	}
	// After hold expiry the slave resynchronises and is heard again.
	holdEnd := r.k.Now() + sim.Time(sim.Slots(50))
	r.k.RunUntil(holdEnd + sim.Time(sim.Slots(200)))
	if sl.Mode() != ModeActive {
		t.Fatalf("slave mode after hold = %v, want ACTIVE", sl.Mode())
	}
	if ml.lastHeardAt < holdEnd {
		t.Fatal("master never heard the slave after hold")
	}
}

func TestRepeatingHoldCycles(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0xC1C1C1, 0)
	s := r.device("slave", 0xD2D2D2, 888)
	ml, sl := connectPair(t, r, m, s)
	ml.EnterHoldRepeating(200)
	sl.EnterHoldRepeating(200)
	s.RxMeter.Reset()
	s.TxMeter.Reset()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(3000)))
	act := s.RxMeter.Activity() + s.TxMeter.Activity()
	// Roughly resync-window / hold-period; must be far below active mode
	// (~2.6%) but nonzero (resyncs happen).
	if act <= 0 {
		t.Fatal("repeating hold never resynced")
	}
	if act > 0.02 {
		t.Fatalf("repeating-hold activity %.4f too high", act)
	}
	if sl.Mode() != ModeHold {
		t.Fatalf("slave left repeating hold: %v", sl.Mode())
	}
}

func TestParkBeacons(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0xE1E1E1, 0)
	s := r.device("slave", 0xF2F2F2, 999)
	ml, sl := connectPair(t, r, m, s)
	ml.EnterPark(64)
	sl.EnterPark(64)
	s.RxMeter.Reset()
	s.TxMeter.Reset()
	before := r.k.Now()
	r.k.RunUntil(before + sim.Time(sim.Slots(2000)))
	act := s.RxMeter.Activity() + s.TxMeter.Activity()
	if act <= 0 || act > 0.01 {
		t.Fatalf("parked activity = %.5f, want small but nonzero", act)
	}
	if s.TxMeter.OnTime() != 0 {
		t.Fatal("parked slave must not transmit")
	}
	// Unpark and verify the slave is active again.
	ml.Unpark()
	sl.Unpark()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(200)))
	if ml.lastHeardAt <= before {
		t.Fatal("unparked slave not heard")
	}
}

func TestDetachResets(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x101010, 0)
	s := r.device("slave", 0x202020, 123)
	connectPair(t, r, m, s)
	s.Detach()
	m.Detach()
	if m.State() != StateStandby || s.State() != StateStandby {
		t.Fatal("detach must return to standby")
	}
	if len(m.Links()) != 0 || s.MasterLink() != nil {
		t.Fatal("links must be dropped")
	}
	if s.Clock.Offset() != 0 {
		t.Fatal("slave clock offset must clear")
	}
}

func TestPageTimeoutFails(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x303030, 0)
	s := r.device("slave", 0x404040, 321)
	// Slave is NOT in page scan: the page must time out.
	est := m.EstimateOf(InquiryResult{CLKN: s.Clock.CLKN(0), At: 0}, 0)
	var called, ok bool
	m.StartPage(s.Addr(), est, 256, func(l *Link, o bool) { called, ok = true, o })
	r.k.RunUntil(sim.Time(sim.Slots(400)))
	if !called || ok {
		t.Fatalf("page should fail: called=%v ok=%v", called, ok)
	}
	if m.State() != StateStandby {
		t.Fatalf("master state after failed page = %v", m.State())
	}
}

func TestInquiryTimeoutFails(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x505050, 0)
	var called, ok bool
	m.StartInquiry(512, 1, func(rs []InquiryResult, o bool) { called, ok = true, o })
	r.k.RunUntil(sim.Time(sim.Slots(700)))
	if !called || ok {
		t.Fatalf("inquiry with nobody listening must fail: called=%v ok=%v", called, ok)
	}
}

func TestSlaveHeaderAbortOnOtherTraffic(t *testing.T) {
	r := newRig(0)
	m := r.device("master", 0x606060, 0)
	s1 := r.device("slave1", 0x707070, 100)
	s2 := r.device("slave2", 0x808080, 200)
	ml1, _ := connectPair(t, r, m, s1)
	connectPair(t, r, m, s2)
	// Saturate slave1 with big packets; slave2 should abort each after
	// the header and stay cheap.
	ml1.PacketType = packet.TypeDH5
	for i := 0; i < 40; i++ {
		ml1.Send(make([]byte, 300), packet.LLIDL2CAPStart)
	}
	s2.RxMeter.Reset()
	r.k.RunUntil(r.k.Now() + sim.Time(sim.Slots(1500)))
	// Slave2's RX on-time must be far below slave1's (which receives the
	// full 5-slot packets).
	if s2.RxMeter.Activity() > 0.05 {
		t.Fatalf("slave2 activity %.4f: header abort not working", s2.RxMeter.Activity())
	}
}
