// Package coex is the multi-piconet coexistence engine: N independent
// piconets — each a master with up to 7 slaves, hopping on its own
// BD_ADDR-derived sequence — on one shared channel.Channel, with
// inter-piconet collision attribution and adaptive channel
// classification (the learning half of the v1.2 AFH story).
//
// Deprecated: the engine lives in internal/netspec now; this package
// is a thin adapter kept for one PR so existing callers migrate at
// their own pace. New code should declare a netspec.Spec — a Config
// here compiles to exactly that — and use the World.Metrics surface.
package coex

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/packet"
)

// AFHMode selects how each piconet manages its hop set.
//
// Deprecated: use netspec.AFHMode.
type AFHMode = netspec.AFHMode

// Hop-set management modes.
const (
	// AFHOff hops the classic full 79-channel sequence.
	AFHOff = netspec.AFHOff
	// AFHOracle installs ExcludeRange(OracleLo, OracleHi) over LMP.
	AFHOracle = netspec.AFHOracle
	// AFHAdaptive learns the map from per-frequency reception tallies.
	AFHAdaptive = netspec.AFHAdaptive
)

// Piconet is one master-plus-slaves group inside the shared medium.
//
// Deprecated: use netspec.PiconetState.
type Piconet = netspec.PiconetState

// Config describes the coexistence world to build.
//
// Deprecated: declare a netspec.Spec instead; see Config.Spec for the
// exact translation.
type Config struct {
	// Piconets is the number of co-located piconets (default 1).
	Piconets int
	// Slaves is the number of slaves per piconet, 1..7 (default 1).
	Slaves int
	// PacketType carries the pumped traffic (default DM1).
	PacketType packet.Type
	// PumpDepth is the transmit-queue depth the traffic pump maintains
	// per link (default 4).
	PumpDepth int

	// AFH selects the hop-set management mode (default AFHOff).
	AFH AFHMode
	// OracleLo..OracleHi is the band AFHOracle excludes.
	OracleLo, OracleHi int
	// AssessWindowSlots is the classification period of AFHAdaptive
	// (default 2000 slots = 1.25 s).
	AssessWindowSlots int
	// MinObservations is how many receptions a channel needs inside one
	// window before its classification may change (default 4).
	MinObservations int
	// BadThreshold is the error fraction at or above which an observed
	// channel is classified bad (default 0.25).
	BadThreshold float64
	// TpollSlots is the masters' maximum polling interval (default
	// 1<<20, effectively never — the pumped data is the poll).
	TpollSlots int
	// ReprobeWindows bounds how long a bad verdict can outlive its
	// evidence (default 8).
	ReprobeWindows int
}

// Spec translates the config into the equivalent netspec world: N
// identical piconet stanzas plus one saturating bulk-traffic stanza
// covering all of them.
func (c Config) Spec() netspec.Spec {
	if c.Piconets == 0 {
		c.Piconets = 1
	}
	if c.Slaves == 0 {
		c.Slaves = 1
	}
	if c.Piconets < 0 {
		panic(fmt.Sprintf("coex: invalid topology %d piconets x %d slaves", c.Piconets, c.Slaves))
	}
	if c.TpollSlots == 0 {
		// The engine's historical default: the pumped data is the poll.
		c.TpollSlots = netspec.TpollNever
	}
	piconets := make([]netspec.Piconet, 0, c.Piconets)
	for i := 0; i < c.Piconets; i++ {
		piconets = append(piconets, netspec.Piconet{
			Slaves:            c.Slaves,
			TpollSlots:        c.TpollSlots,
			AFH:               c.AFH,
			OracleLo:          c.OracleLo,
			OracleHi:          c.OracleHi,
			AssessWindowSlots: c.AssessWindowSlots,
			MinObservations:   c.MinObservations,
			BadThreshold:      c.BadThreshold,
			ReprobeWindows:    c.ReprobeWindows,
		})
	}
	return netspec.Spec{
		Piconets: piconets,
		Traffic: []netspec.Traffic{
			netspec.BulkTraffic(netspec.AllPiconets,
				netspec.WithPacketType(c.PacketType),
				netspec.WithPumpDepth(c.PumpDepth)),
		},
	}
}

// Net is a set of co-located piconets sharing one radio medium; it
// embeds the built netspec.World, whose richer Metrics surface is
// available alongside the legacy Totals.
//
// Deprecated: use netspec.Build / netspec.World.
type Net struct {
	*netspec.World
}

// Build stands the configured piconets up on s's shared channel.
// Traffic and (for AFHAdaptive) the classification loop start with
// StartTraffic. Build panics on an invalid config, as it always did.
//
// Deprecated: use netspec.Build.
func Build(s *core.Simulation, cfg Config) *Net {
	w, err := netspec.Build(s, cfg.Spec())
	if err != nil {
		panic("coex: " + err.Error())
	}
	return &Net{World: w}
}

// New is Build on a fresh world: one simulation, one shared channel.
//
// Deprecated: use netspec.Build with core.NewSimulation.
func New(opt core.Options, cfg Config) *Net {
	return Build(core.NewSimulation(opt), cfg)
}

// Wrap adapts an already built netspec world to the legacy Net
// surface.
func Wrap(w *netspec.World) *Net { return &Net{World: w} }

// StartTraffic starts the saturating master-to-slave pump on every
// link and, in AFHAdaptive mode, the per-piconet classification loops.
func (n *Net) StartTraffic() { n.World.Start() }

// ResetStats opens a fresh measurement window (see
// netspec.World.ResetMetrics).
func (n *Net) ResetStats() { n.World.ResetMetrics() }

// Totals summarises a measurement window across the whole net.
//
// Deprecated: use netspec.World.Metrics.
type Totals struct {
	// Bytes is the payload total delivered to every slave.
	Bytes int
	// PerPiconet is the payload total per piconet, in build order.
	PerPiconet []int
	// Retransmits sums the masters' ARQ retransmissions.
	Retransmits int
	// Inter and Intra are the attributed collision-pair counts.
	Inter, Intra int
	// MapUpdates sums the adaptive channel-map installs over the net's
	// whole lifetime (not zeroed by ResetStats).
	MapUpdates int
}

// Totals reads the current window's counters.
func (n *Net) Totals() Totals {
	m := n.World.Metrics()
	return Totals{
		Bytes:       m.Bytes,
		PerPiconet:  m.PerPiconet,
		Retransmits: m.Retransmits,
		Inter:       m.Inter,
		Intra:       m.Intra,
		MapUpdates:  m.MapUpdates,
	}
}

// ConvergenceSlots returns a warm-up horizon after which an adaptive
// net with the given assessment window has classified at least twice
// and completed the LMP map switch.
func ConvergenceSlots(assessWindowSlots int) uint64 {
	return netspec.ConvergenceSlots(assessWindowSlots)
}

// GoodputKbps converts a delivered-byte count over a slot horizon into
// kbit/s (one slot = 625 µs).
func GoodputKbps(bytes int, slots uint64) float64 {
	return netspec.GoodputKbps(bytes, slots)
}
