// Package coex is the multi-piconet coexistence engine: it stands up N
// independent piconets — each a master with up to 7 slaves, hopping on
// its own BD_ADDR-derived sequence — on one shared channel.Channel, so
// inter-piconet co-channel collisions emerge naturally from the medium's
// resolver exactly as the paper's shared-medium model (Fig. 2) and its
// coexistence references [3-5] describe. On top of the orchestration it
// implements adaptive channel classification, the learning half of the
// v1.2 AFH story: each master tallies per-frequency reception outcomes
// (collisions, jam hits, HEC/CRC failures) in connection state,
// periodically classifies channels good/bad, and installs the surviving
// set as a hop.ChannelMap over the LMP set-AFH procedure — replacing the
// oracle hop.ExcludeRange maps the early AFH experiments hand-picked
// with a map learned from the air.
package coex

import (
	"fmt"
	"sort"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/hop"
	"repro/internal/lmp"
	"repro/internal/packet"
)

// AFHMode selects how each piconet manages its hop set.
type AFHMode int

// Hop-set management modes.
const (
	// AFHOff hops the classic full 79-channel sequence.
	AFHOff AFHMode = iota
	// AFHOracle installs ExcludeRange(OracleLo, OracleHi) over LMP right
	// after the piconets are built — the hand-picked map of the original
	// coexistence experiments, kept as the upper reference.
	AFHOracle
	// AFHAdaptive learns the map: every AssessWindowSlots the master
	// classifies channels from its per-frequency reception tallies and
	// installs the good set over LMP when the classification changes.
	AFHAdaptive
)

// Config describes the coexistence world to build.
type Config struct {
	// Piconets is the number of co-located piconets (default 1).
	Piconets int
	// Slaves is the number of slaves per piconet, 1..7 (default 1).
	Slaves int
	// PacketType carries the pumped traffic (default DM1).
	PacketType packet.Type
	// PumpDepth is the transmit-queue depth the traffic pump maintains
	// per link (default 4).
	PumpDepth int

	// AFH selects the hop-set management mode (default AFHOff).
	AFH AFHMode
	// OracleLo..OracleHi is the band AFHOracle excludes.
	OracleLo, OracleHi int
	// AssessWindowSlots is the classification period of AFHAdaptive
	// (default 2000 slots = 1.25 s).
	AssessWindowSlots int
	// MinObservations is how many receptions a channel needs inside one
	// window before its classification may change (default 4).
	MinObservations int
	// BadThreshold is the error fraction at or above which an observed
	// channel is classified bad (default 0.25).
	BadThreshold float64

	// TpollSlots is the masters' maximum polling interval. The default
	// (1<<20, effectively never) suits the saturating pumps of the
	// coexistence experiments, where the data itself is the poll; the
	// scatternet layer overrides it so idle links stay supervised by
	// regular POLLs.
	TpollSlots int
	// ReprobeWindows bounds how long a bad verdict can outlive its
	// evidence: an excluded channel is never hopped on, so it collects
	// no observations — after this many consecutive silent windows it is
	// re-admitted on probation and re-excluded next window if still bad
	// (default 8). Without this the hop set could only ever shrink.
	ReprobeWindows int
}

// normalize fills zero fields with defaults.
func (c *Config) normalize() {
	if c.Piconets == 0 {
		c.Piconets = 1
	}
	if c.Slaves == 0 {
		c.Slaves = 1
	}
	if c.Piconets < 1 || c.Slaves < 1 || c.Slaves > 7 {
		panic(fmt.Sprintf("coex: invalid topology %d piconets x %d slaves", c.Piconets, c.Slaves))
	}
	if c.PacketType == 0 {
		c.PacketType = packet.TypeDM1
	}
	if c.PumpDepth == 0 {
		c.PumpDepth = 4
	}
	if c.AssessWindowSlots == 0 {
		c.AssessWindowSlots = 2000
	}
	if c.MinObservations == 0 {
		c.MinObservations = 4
	}
	if c.BadThreshold == 0 {
		c.BadThreshold = 0.25
	}
	if c.ReprobeWindows == 0 {
		c.ReprobeWindows = 8
	}
	if c.TpollSlots == 0 {
		c.TpollSlots = 1 << 20
	}
	if c.AssessWindowSlots < 0 || c.MinObservations < 0 || c.ReprobeWindows < 0 ||
		c.BadThreshold < 0 || c.BadThreshold > 1 {
		panic(fmt.Sprintf("coex: invalid classifier config %+v", *c))
	}
	if c.AFH == AFHOracle {
		// An unset band would silently install ExcludeRange(0, 0) — a
		// 78-channel map indistinguishable from plain hopping — and poison
		// every learned-vs-oracle comparison built on it.
		if c.OracleLo == 0 && c.OracleHi == 0 {
			panic("coex: AFHOracle requires OracleLo/OracleHi")
		}
		if c.OracleLo < 0 || c.OracleHi < c.OracleLo || c.OracleHi >= hop.NumChannels {
			panic(fmt.Sprintf("coex: invalid oracle band %d..%d", c.OracleLo, c.OracleHi))
		}
	}
}

// Piconet is one master-plus-slaves group inside the shared medium.
type Piconet struct {
	// Index is the piconet's position in Net.Piconets.
	Index int
	// Master owns the piconet; its BD_ADDR drives the hop sequence.
	Master *baseband.Device
	// Slaves in AM_ADDR order.
	Slaves []*baseband.Device
	// Links are the master-side ACL links, one per slave.
	Links []*baseband.Link
	// LMP is the master's link manager (slaves carry their own
	// responders internally).
	LMP *lmp.Manager
	// Received counts payload bytes delivered to each slave since the
	// last ResetStats.
	Received []int
	// MapUpdates counts adaptive channel-map installs.
	MapUpdates int

	slaveLMPs []*lmp.Manager
	bad       [hop.NumChannels]bool
	rate      [hop.NumChannels]float64 // last observed error fraction
	quiet     [hop.NumChannels]int     // consecutive windows bad with no evidence
	cur       *hop.ChannelMap          // nil = full 79-channel set
}

// CurrentMap returns the channel map the piconet currently hops on
// (nil = the full 79-channel set).
func (p *Piconet) CurrentMap() *hop.ChannelMap { return p.cur }

// Net is a set of co-located piconets sharing one radio medium.
type Net struct {
	// Sim owns the kernel and the shared channel.
	Sim *core.Simulation
	// Piconets in build order.
	Piconets []*Piconet

	cfg   Config
	owner map[string]int // device name -> piconet index

	// InterCollisions counts collision pairs whose transmitters belong
	// to different piconets; IntraCollisions counts same-piconet pairs
	// (TDD makes those rare). Reset by ResetStats.
	InterCollisions int
	IntraCollisions int
}

// Build stands the configured piconets up on s's shared channel: device
// creation with distinct BD_ADDRs, sequential paging of every slave, and
// LMP managers on both ends of every link. Traffic and (for AFHAdaptive)
// the classification loop start with StartTraffic. Build panics if a
// piconet cannot be assembled, which cannot happen at BER 0 with sane
// timeouts.
func Build(s *core.Simulation, cfg Config) *Net {
	cfg.normalize()
	n := &Net{Sim: s, cfg: cfg, owner: make(map[string]int)}
	s.Ch.SetCollisionHook(n.onCollision)
	for i := 0; i < cfg.Piconets; i++ {
		n.Piconets = append(n.Piconets, n.buildPiconet(i))
	}
	if cfg.AFH == AFHOracle {
		cm := hop.ExcludeRange(cfg.OracleLo, cfg.OracleHi)
		for _, p := range n.Piconets {
			n.install(p, cm)
		}
	}
	return n
}

// New is Build on a fresh world: one simulation, one shared channel.
func New(opt core.Options, cfg Config) *Net {
	return Build(core.NewSimulation(opt), cfg)
}

// buildPiconet creates and connects piconet i.
func (n *Net) buildPiconet(i int) *Piconet {
	p := &Piconet{Index: i}
	mname := fmt.Sprintf("p%d.master", i)
	p.Master = n.Sim.AddDevice(mname, baseband.Config{
		Addr: baseband.BDAddr{
			LAP: 0x1A0000 + uint32(i)*0x01357,
			UAP: uint8(0x10 + i),
			NAP: uint16(0x0100 + i),
		},
		// Default 1<<20: the pumped data is the poll; keep explicit
		// polls out of the way.
		TpollSlots: n.cfg.TpollSlots,
	})
	n.owner[mname] = i
	for j := 0; j < n.cfg.Slaves; j++ {
		sname := fmt.Sprintf("p%d.slave%d", i, j+1)
		sl := n.Sim.AddDevice(sname, baseband.Config{
			Addr: baseband.BDAddr{
				LAP: 0x5B0000 + uint32(i)*0x02000 + uint32(j)*0x00111,
				UAP: uint8(0x80 + i*8 + j),
				NAP: uint16(0x0200 + i),
			},
			TpollSlots: n.cfg.TpollSlots,
			// Foreign piconets can collide with the page handshake; scan
			// continuously so retries land promptly.
			PageScanWindowSlots:   2048,
			PageScanIntervalSlots: 2048,
		})
		n.owner[sname] = i
		p.Slaves = append(p.Slaves, sl)
	}
	p.Links = n.Sim.BuildPiconet(p.Master, p.Slaves...)
	p.LMP = lmp.Attach(p.Master)
	for _, sl := range p.Slaves {
		p.slaveLMPs = append(p.slaveLMPs, lmp.Attach(sl))
	}
	p.Received = make([]int, len(p.Slaves))
	for j, sl := range p.Slaves {
		idx := j
		sl.OnData = func(_ *baseband.Link, payload []byte, _ uint8) {
			p.Received[idx] += len(payload)
		}
	}
	return p
}

// AdoptDevice registers an externally created device (a scatternet
// bridge, a monitoring node) as belonging to piconet index for the
// collision attribution. A bridge belongs to two piconets at once; by
// convention the scatternet layer books it under its first membership,
// so its collision pairs split the same way its presence time does.
func (n *Net) AdoptDevice(d *baseband.Device, piconet int) {
	if piconet < 0 || piconet >= len(n.Piconets) {
		panic(fmt.Sprintf("coex: piconet index %d out of range", piconet))
	}
	n.owner[d.Name()] = piconet
}

// onCollision attributes one collision pair to inter- or intra-piconet
// interference by the transmitters' owners.
func (n *Net) onCollision(existing, incoming *channel.Transmission) {
	a, aok := n.owner[existing.From]
	b, bok := n.owner[incoming.From]
	if !aok || !bok {
		return
	}
	if a == b {
		n.IntraCollisions++
	} else {
		n.InterCollisions++
	}
}

// ConvergenceSlots returns a warm-up horizon after which an adaptive
// net with the given assessment window has classified at least twice
// and completed the LMP map switch: two windows plus the negotiated AFH
// instant with slack. Experiments measure after this horizon so every
// arm (off/oracle/adaptive) sees an identical protocol.
func ConvergenceSlots(assessWindowSlots int) uint64 {
	return uint64(2*assessWindowSlots) + 600
}

// StartTraffic starts a saturating master-to-slave pump on every link
// (keeping PumpDepth packets queued, refilled every two slots) and, in
// AFHAdaptive mode, the per-piconet classification loops.
func (n *Net) StartTraffic() {
	for _, p := range n.Piconets {
		for _, l := range p.Links {
			l.PacketType = n.cfg.PacketType
			link := l
			master := p.Master
			chunk := make([]byte, n.cfg.PacketType.MaxPayload())
			var pump func()
			pump = func() {
				for link.QueueLen() < n.cfg.PumpDepth {
					link.Send(chunk, packet.LLIDL2CAPStart)
				}
				master.After(2, pump)
			}
			pump()
		}
		if n.cfg.AFH == AFHAdaptive {
			n.startClassifier(p)
		}
	}
}

// startClassifier arms the periodic channel-assessment loop on p's
// master.
func (n *Net) startClassifier(p *Piconet) {
	p.Master.ResetAssessment()
	w := uint64(n.cfg.AssessWindowSlots)
	var tick func()
	tick = func() {
		n.classify(p)
		p.Master.After(w, tick)
	}
	p.Master.After(w, tick)
}

// classify closes one assessment window: channels with enough
// observations are re-classified by error fraction, bad verdicts that
// outlived their evidence are re-probed, the good set is padded back up
// to hop.MinAFHChannels with the least-bad channels if needed, and a
// changed map is installed over LMP.
func (n *Net) classify(p *Piconet) {
	a := p.Master.Assessment()
	p.Master.ResetAssessment()
	for ch := 0; ch < hop.NumChannels; ch++ {
		total := a[ch].OK + a[ch].Bad
		if total < n.cfg.MinObservations {
			// Too little evidence to re-classify. An excluded channel is
			// never hopped on, so its verdict would otherwise be permanent
			// and the hop set could only shrink: after ReprobeWindows
			// silent windows re-admit it on probation — if the interferer
			// is still there the next window re-excludes it.
			if p.bad[ch] && total == 0 {
				p.quiet[ch]++
				if p.quiet[ch] >= n.cfg.ReprobeWindows {
					p.bad[ch] = false
					p.quiet[ch] = 0
				}
			}
			continue
		}
		rate := float64(a[ch].Bad) / float64(total)
		p.rate[ch] = rate
		p.bad[ch] = rate >= n.cfg.BadThreshold
		p.quiet[ch] = 0
	}
	used := make([]int, 0, hop.NumChannels)
	for ch := 0; ch < hop.NumChannels; ch++ {
		if !p.bad[ch] {
			used = append(used, ch)
		}
	}
	if len(used) < hop.MinAFHChannels {
		used = padToMinimum(used, p)
	}
	var cm *hop.ChannelMap
	if len(used) < hop.NumChannels {
		cm = hop.NewChannelMap(used)
	}
	if sameMap(p.cur, cm) {
		return
	}
	n.install(p, cm)
}

// padToMinimum re-admits the least-bad excluded channels (ascending
// error fraction, ties by channel index — deterministic) until the spec
// minimum is met.
func padToMinimum(used []int, p *Piconet) []int {
	type cand struct {
		ch   int
		rate float64
	}
	var cands []cand
	for ch := 0; ch < hop.NumChannels; ch++ {
		if p.bad[ch] {
			cands = append(cands, cand{ch, p.rate[ch]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rate != cands[j].rate {
			return cands[i].rate < cands[j].rate
		}
		return cands[i].ch < cands[j].ch
	})
	for _, c := range cands {
		if len(used) >= hop.MinAFHChannels {
			break
		}
		used = append(used, c.ch)
	}
	return used
}

// sameMap reports whether two channel maps select the same hop set.
func sameMap(a, b *hop.ChannelMap) bool {
	if a == nil || b == nil {
		return a == b
	}
	am, bm := a.Bitmask(), b.Bitmask()
	for i := range am {
		if am[i] != bm[i] {
			return false
		}
	}
	return true
}

// install pushes cm to every slave over the LMP set-AFH procedure; both
// ends of each link switch at the negotiated future instant.
func (n *Net) install(p *Piconet, cm *hop.ChannelMap) {
	p.cur = cm
	p.MapUpdates++
	for _, l := range p.Links {
		p.LMP.SetAFH(l, cm, nil)
	}
}

// ResetStats opens a fresh measurement window: delivered-byte tallies,
// collision attribution and every device's protocol counters are
// zeroed, and the RF-activity meters restart. MapUpdates is lifetime
// and deliberately survives the reset.
func (n *Net) ResetStats() {
	n.InterCollisions = 0
	n.IntraCollisions = 0
	for _, p := range n.Piconets {
		for j := range p.Received {
			p.Received[j] = 0
		}
		p.Master.Counters = baseband.Counters{}
		core.ResetMeters(p.Master)
		for _, sl := range p.Slaves {
			sl.Counters = baseband.Counters{}
			core.ResetMeters(sl)
		}
	}
}

// Totals summarises a measurement window across the whole net.
type Totals struct {
	// Bytes is the payload total delivered to every slave.
	Bytes int
	// PerPiconet is the payload total per piconet, in build order.
	PerPiconet []int
	// Retransmits sums the masters' ARQ retransmissions.
	Retransmits int
	// Inter and Intra are the attributed collision-pair counts.
	Inter, Intra int
	// MapUpdates sums the adaptive channel-map installs over the net's
	// whole lifetime — unlike the other fields it is NOT zeroed by
	// ResetStats, so convergence remains visible across windows.
	MapUpdates int
}

// Totals reads the current window's counters.
func (n *Net) Totals() Totals {
	t := Totals{Inter: n.InterCollisions, Intra: n.IntraCollisions}
	for _, p := range n.Piconets {
		sum := 0
		for _, r := range p.Received {
			sum += r
		}
		t.PerPiconet = append(t.PerPiconet, sum)
		t.Bytes += sum
		t.Retransmits += p.Master.Counters.Retransmits
		t.MapUpdates += p.MapUpdates
	}
	return t
}

// GoodputKbps converts a delivered-byte count over a slot horizon into
// kbit/s (one slot = 625 µs).
func GoodputKbps(bytes int, slots uint64) float64 {
	if slots == 0 {
		return 0
	}
	return float64(bytes) * 8 / 1000 / (float64(slots) * 625e-6)
}
