package coex

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hop"
)

// build stands up a net on a fresh world and starts traffic.
func build(seed uint64, cfg Config) *Net {
	n := New(core.Options{Seed: seed}, cfg)
	n.StartTraffic()
	return n
}

func TestFourPiconetsCollideAcrossPiconets(t *testing.T) {
	n := build(7, Config{Piconets: 4})
	n.Sim.RunSlots(64)
	n.ResetStats()
	n.Sim.RunSlots(4000)
	tot := n.Totals()
	if len(n.Piconets) != 4 {
		t.Fatalf("built %d piconets", len(n.Piconets))
	}
	for i, p := range n.Piconets {
		if len(p.Links) != 1 {
			t.Fatalf("piconet %d has %d links", i, len(p.Links))
		}
		if tot.PerPiconet[i] == 0 {
			t.Fatalf("piconet %d delivered nothing", i)
		}
	}
	if tot.Inter == 0 {
		t.Fatal("four uncoordinated piconets must collide across piconets")
	}
	// TDD inside a piconet leaves essentially no room for intra-piconet
	// overlap; inter-piconet pairs must dominate.
	if tot.Intra > tot.Inter {
		t.Fatalf("intra collisions (%d) exceed inter (%d)", tot.Intra, tot.Inter)
	}
}

func TestGoodputDegradesWithPiconetCount(t *testing.T) {
	perLink := func(piconets int) float64 {
		n := build(11, Config{Piconets: piconets})
		n.Sim.RunSlots(64)
		n.ResetStats()
		n.Sim.RunSlots(4000)
		return GoodputKbps(n.Totals().Bytes, 4000) / float64(piconets)
	}
	one, four := perLink(1), perLink(4)
	if one <= 0 {
		t.Fatal("no baseline goodput")
	}
	if four >= one {
		t.Fatalf("no degradation: %v vs %v kbps", four, one)
	}
	if four < one*0.7 {
		t.Fatalf("FHSS should keep degradation mild: %v vs %v kbps", four, one)
	}
}

func TestAdaptiveClassifierLearnsJammedBand(t *testing.T) {
	const lo, hi = 30, 52
	n := New(core.Options{Seed: 3}, Config{
		Piconets:          1,
		AFH:               AFHAdaptive,
		AssessWindowSlots: 1500,
	})
	n.Sim.Ch.AddJammer(lo, hi, 0.9)
	n.StartTraffic()
	// Two windows plus the LMP switch instant.
	n.Sim.RunSlots(ConvergenceSlots(1500))
	p := n.Piconets[0]
	cm := p.CurrentMap()
	if cm == nil {
		t.Fatal("classifier never installed a map")
	}
	if p.MapUpdates == 0 {
		t.Fatal("MapUpdates not counted")
	}
	excluded := 0
	for ch := lo; ch <= hi; ch++ {
		if !cm.Used(ch) {
			excluded++
		}
	}
	if excluded < (hi-lo+1)*8/10 {
		t.Fatalf("learned map excludes only %d/%d jammed channels", excluded, hi-lo+1)
	}
	// Clean channels must stay in the map.
	keptClean := 0
	for ch := 0; ch < hop.NumChannels; ch++ {
		if (ch < lo || ch > hi) && cm.Used(ch) {
			keptClean++
		}
	}
	if keptClean < (hop.NumChannels-(hi-lo+1))*9/10 {
		t.Fatalf("learned map dropped clean channels: only %d kept", keptClean)
	}
	// Both ends must actually hop on the learned map (LMP installed it).
	if p.Master.AFHMap() == nil || p.Slaves[0].AFHMap() == nil {
		t.Fatal("map not installed on both ends over LMP")
	}
}

func TestAdaptiveRecoversGoodputUnderJammer(t *testing.T) {
	measure := func(mode AFHMode) float64 {
		n := New(core.Options{Seed: 5}, Config{
			Piconets:          1,
			AFH:               mode,
			OracleLo:          30,
			OracleHi:          52,
			AssessWindowSlots: 1500,
		})
		n.Sim.Ch.AddJammer(30, 52, 0.9)
		n.StartTraffic()
		n.Sim.RunSlots(ConvergenceSlots(1500)) // same warm-up for every arm
		n.ResetStats()
		n.Sim.RunSlots(6000)
		return GoodputKbps(n.Totals().Bytes, 6000)
	}
	plain, oracle, learned := measure(AFHOff), measure(AFHOracle), measure(AFHAdaptive)
	if plain <= 0 || oracle <= 0 {
		t.Fatalf("no goodput: plain %v oracle %v", plain, oracle)
	}
	if oracle <= plain*1.1 {
		t.Fatalf("oracle AFH did not help: %v vs plain %v", oracle, plain)
	}
	// The acceptance bar: the learned map recovers >= 80% of the oracle
	// map's goodput under the 22-channel jammer.
	if learned < oracle*0.8 {
		t.Fatalf("learned map recovers only %.1f%% of oracle goodput (%v vs %v kbps)",
			learned/oracle*100, learned, oracle)
	}
}

func TestMinimumChannelSetRespected(t *testing.T) {
	// Jam almost the whole band: the classifier must keep at least the
	// spec minimum of 20 channels rather than panic in NewChannelMap.
	n := New(core.Options{Seed: 9}, Config{
		Piconets:          1,
		AFH:               AFHAdaptive,
		AssessWindowSlots: 1500,
	})
	n.Sim.Ch.AddJammer(0, 74, 0.95)
	n.StartTraffic()
	n.Sim.RunSlots(4 * 1500)
	cm := n.Piconets[0].CurrentMap()
	if cm == nil {
		t.Skip("classifier saw too few observations to act") // extremely hostile band
	}
	if cm.N() < hop.MinAFHChannels {
		t.Fatalf("map has %d channels, below the spec minimum %d", cm.N(), hop.MinAFHChannels)
	}
}

func TestReprobeReadmitsAfterJammerLeaves(t *testing.T) {
	// A bad verdict must not outlive its evidence forever: once the
	// jammer goes away, the re-probe mechanism re-admits the band and
	// the next window confirms it clean.
	const lo, hi = 30, 52
	n := New(core.Options{Seed: 15}, Config{
		Piconets:          1,
		AFH:               AFHAdaptive,
		AssessWindowSlots: 1000,
		ReprobeWindows:    3,
	})
	n.Sim.Ch.AddJammer(lo, hi, 0.9)
	n.StartTraffic()
	n.Sim.RunSlots(ConvergenceSlots(1000))
	if n.Piconets[0].CurrentMap() == nil {
		t.Fatal("classifier never excluded the jammed band")
	}
	n.Sim.Ch.ClearJammers()
	// Three silent windows to trigger the re-probe, one to confirm the
	// channels clean, plus the LMP switch instant.
	n.Sim.RunSlots(5*1000 + 600)
	cm := n.Piconets[0].CurrentMap()
	readmitted := 0
	for ch := lo; ch <= hi; ch++ {
		if cm == nil || cm.Used(ch) {
			readmitted++
		}
	}
	if readmitted < (hi-lo+1)*8/10 {
		t.Fatalf("only %d/%d formerly-jammed channels re-admitted after the jammer left", readmitted, hi-lo+1)
	}
}

func TestMultiSlaveFairness(t *testing.T) {
	// Saturating pumps on every link must not let AM_ADDR 1 monopolise
	// the master's transmit slots: the round-robin scheduler has to give
	// every slave a comparable share.
	n := build(27, Config{Piconets: 1, Slaves: 3})
	n.Sim.RunSlots(64)
	n.ResetStats()
	n.Sim.RunSlots(6000)
	p := n.Piconets[0]
	total := 0
	for _, r := range p.Received {
		total += r
	}
	if total == 0 {
		t.Fatal("no traffic delivered")
	}
	for j, r := range p.Received {
		share := float64(r) / float64(total)
		if share < 0.2 {
			t.Fatalf("slave %d starved: got %d/%d bytes (share %.2f)", j+1, r, total, share)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, int, int) {
		n := build(21, Config{Piconets: 3})
		n.Sim.RunSlots(64)
		n.ResetStats()
		n.Sim.RunSlots(3000)
		tot := n.Totals()
		return tot.Bytes, tot.Inter, tot.Intra
	}
	b1, i1, x1 := run()
	b2, i2, x2 := run()
	if b1 != b2 || i1 != i2 || x1 != x2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", b1, i1, x1, b2, i2, x2)
	}
}

func TestResetStatsOpensFreshWindow(t *testing.T) {
	n := build(13, Config{Piconets: 2})
	n.Sim.RunSlots(2000)
	if n.Totals().Bytes == 0 {
		t.Fatal("no traffic before reset")
	}
	n.ResetStats()
	tot := n.Totals()
	if tot.Bytes != 0 || tot.Inter != 0 || tot.Intra != 0 || tot.Retransmits != 0 {
		t.Fatalf("reset left residue: %+v", tot)
	}
}
