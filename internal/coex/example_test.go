package coex_test

import (
	"fmt"

	"repro/internal/coex"
	"repro/internal/core"
)

// Build stands independent piconets up on one shared medium; their
// uncoordinated hop sequences collide at the ~1/79 per-slot chance
// level, and the engine attributes each collision pair to inter- or
// intra-piconet interference.
func ExampleBuild() {
	s := core.NewSimulation(core.Options{Seed: 7})
	net := coex.Build(s, coex.Config{Piconets: 2})
	net.StartTraffic()
	s.RunSlots(2000)

	tot := net.Totals()
	fmt.Println("piconets:", len(net.Piconets))
	fmt.Println("links per piconet:", len(net.Piconets[0].Links))
	fmt.Println("both piconets delivered data:", tot.PerPiconet[0] > 0 && tot.PerPiconet[1] > 0)
	fmt.Println("inter-piconet collisions observed:", tot.Inter > 0)
	// Output:
	// piconets: 2
	// links per piconet: 1
	// both piconets delivered data: true
	// inter-piconet collisions observed: true
}
