package hci

import (
	"testing"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/sim"
)

type world struct {
	k  *sim.Kernel
	ch *channel.Channel
}

func newWorld() *world {
	k := sim.NewKernel()
	return &world{k: k, ch: channel.New(k, sim.NewRand(7), channel.Config{})}
}

func (w *world) controller(name string, lap uint32, phase uint32) *Controller {
	dev := baseband.New(w.k, w.ch, name, baseband.Config{
		Addr:       baseband.BDAddr{LAP: lap, UAP: uint8(lap >> 8), NAP: 0xBEEF},
		ClockPhase: phase,
	})
	return Attach(dev)
}

func TestInquiryThroughHCI(t *testing.T) {
	w := newWorld()
	a := w.controller("a", 0x100001, 0)
	b := w.controller("b", 0x200002, 5555)
	var results []InquiryResultEvent
	var complete *InquiryCompleteEvent
	a.Events = func(e Event) {
		switch ev := e.(type) {
		case InquiryResultEvent:
			results = append(results, ev)
		case InquiryCompleteEvent:
			complete = &ev
		}
	}
	b.WriteScanEnable(true, false)
	a.Inquiry(4096, 1)
	w.k.RunUntil(sim.Time(sim.Slots(5000)))
	if complete == nil || !complete.OK || len(results) != 1 {
		t.Fatalf("inquiry failed: complete=%+v results=%d", complete, len(results))
	}
	if results[0].Result.Addr != b.Dev().Addr() {
		t.Fatal("wrong device discovered")
	}
}

func TestFullConnectionLifecycle(t *testing.T) {
	w := newWorld()
	a := w.controller("a", 0x111101, 0)
	b := w.controller("b", 0x222202, 9999)

	var aConn, bConn *ConnectionCompleteEvent
	var aData []byte
	var bMode *ModeChangeEvent
	var bDisc bool
	a.Events = func(e Event) {
		if ev, ok := e.(ConnectionCompleteEvent); ok {
			aConn = &ev
		}
		if ev, ok := e.(DataEvent); ok {
			aData = append(aData, ev.Payload...)
		}
	}
	b.Events = func(e Event) {
		switch ev := e.(type) {
		case ConnectionCompleteEvent:
			bConn = &ev
		case ModeChangeEvent:
			bMode = &ev
		case DisconnectionCompleteEvent:
			bDisc = true
		}
	}

	// Discover, then connect.
	b.WriteScanEnable(true, false)
	a.Inquiry(4096, 1)
	w.k.RunUntil(sim.Time(sim.Slots(5000)))
	b.WriteScanEnable(false, true)
	if err := a.CreateConnection(b.Dev().Addr(), 2048); err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(w.k.Now() + sim.Time(sim.Slots(1000)))
	if aConn == nil || !aConn.OK || bConn == nil || !bConn.OK {
		t.Fatalf("connection incomplete: a=%+v b=%+v", aConn, bConn)
	}

	// Data from slave to master through handles.
	if err := b.SendData(bConn.Handle, []byte("sensor reading 42")); err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(w.k.Now() + sim.Time(sim.Slots(400)))
	if string(aData) != "sensor reading 42" {
		t.Fatalf("master data = %q", aData)
	}

	// Sniff via HCI command.
	if err := a.SniffMode(aConn.Handle, 100, 2, 0); err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(w.k.Now() + sim.Time(sim.Slots(800)))
	if bMode == nil || bMode.Mode != baseband.ModeSniff {
		t.Fatalf("slave mode change = %+v", bMode)
	}
	if a.Link(aConn.Handle).Mode() != baseband.ModeSniff {
		t.Fatal("master link not in sniff")
	}

	// Disconnect propagates.
	if err := a.Disconnect(aConn.Handle); err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(w.k.Now() + sim.Time(sim.Slots(600)))
	if !bDisc {
		t.Fatal("slave never saw the disconnect")
	}
	if a.Link(aConn.Handle) != nil {
		t.Fatal("handle must be released")
	}
}

func TestCreateConnectionRequiresInquiry(t *testing.T) {
	w := newWorld()
	a := w.controller("a", 0x300003, 0)
	if err := a.CreateConnection(baseband.BDAddr{LAP: 0x9}, 100); err == nil {
		t.Fatal("paging an unknown device must error")
	}
}

func TestUnknownHandleErrors(t *testing.T) {
	w := newWorld()
	a := w.controller("a", 0x400004, 0)
	if a.SendData(42, []byte{1}) == nil ||
		a.SniffMode(42, 10, 1, 0) == nil ||
		a.ExitSniffMode(42) == nil ||
		a.HoldMode(42, 10) == nil ||
		a.ParkMode(42, 10) == nil ||
		a.Disconnect(42) == nil {
		t.Fatal("unknown handles must error")
	}
}

func TestEventNames(t *testing.T) {
	events := []Event{
		InquiryResultEvent{}, InquiryCompleteEvent{}, ConnectionCompleteEvent{},
		DisconnectionCompleteEvent{}, ModeChangeEvent{}, DataEvent{},
	}
	seen := map[string]bool{}
	for _, e := range events {
		n := e.eventName()
		if n == "" || seen[n] {
			t.Fatalf("event name %q duplicated or empty", n)
		}
		seen[n] = true
	}
}
