// Package hci provides the Host Controller Interface of the paper's
// Fig. 1: the command/event boundary between a host application and the
// Bluetooth module (link manager + baseband). It is deliberately thin —
// commands map onto baseband/LMP procedures and completions surface as
// events — but it gives the examples and experiments the same API shape
// a real host stack would use.
package hci

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/lmp"
	"repro/internal/packet"
)

// ConnHandle identifies an open ACL connection at the HCI boundary.
type ConnHandle uint16

// Event is a controller-to-host notification.
type Event interface{ eventName() string }

// InquiryResultEvent reports one discovered device.
type InquiryResultEvent struct {
	Result baseband.InquiryResult
}

// InquiryCompleteEvent ends an inquiry.
type InquiryCompleteEvent struct {
	Found int
	OK    bool
}

// ConnectionCompleteEvent reports the outcome of CreateConnection or an
// incoming connection (on the slave).
type ConnectionCompleteEvent struct {
	Handle ConnHandle
	Peer   baseband.BDAddr
	OK     bool
}

// DisconnectionCompleteEvent reports a closed link.
type DisconnectionCompleteEvent struct {
	Handle ConnHandle
}

// ModeChangeEvent reports a power-mode transition.
type ModeChangeEvent struct {
	Handle ConnHandle
	Mode   baseband.Mode
}

// DataEvent delivers received ACL data to the host.
type DataEvent struct {
	Handle  ConnHandle
	Payload []byte
}

func (InquiryResultEvent) eventName() string         { return "inquiry_result" }
func (InquiryCompleteEvent) eventName() string       { return "inquiry_complete" }
func (ConnectionCompleteEvent) eventName() string    { return "connection_complete" }
func (DisconnectionCompleteEvent) eventName() string { return "disconnection_complete" }
func (ModeChangeEvent) eventName() string            { return "mode_change" }
func (DataEvent) eventName() string                  { return "data" }

// Controller is the HCI front of one device.
type Controller struct {
	dev *baseband.Device
	lm  *lmp.Manager

	// Events receives every controller event; set before issuing
	// commands. A nil handler drops events.
	Events func(Event)

	handles    map[ConnHandle]*baseband.Link
	byLink     map[*baseband.Link]ConnHandle
	nextHandle ConnHandle
	lastInq    map[baseband.BDAddr]baseband.InquiryResult
}

// Attach builds a Controller over a baseband device, wiring the LMP
// manager and data path.
func Attach(dev *baseband.Device) *Controller {
	c := &Controller{
		dev:        dev,
		lm:         lmp.Attach(dev),
		handles:    make(map[ConnHandle]*baseband.Link),
		byLink:     make(map[*baseband.Link]ConnHandle),
		nextHandle: 1,
		lastInq:    make(map[baseband.BDAddr]baseband.InquiryResult),
	}
	dev.OnConnected = c.onConnected
	dev.OnData = c.onData
	c.lm.OnModeChange = c.onModeChange
	c.lm.OnDetach = c.onDetach
	return c
}

// Dev exposes the underlying device (for meters and signals).
func (c *Controller) Dev() *baseband.Device { return c.dev }

// LM exposes the link manager (for advanced LMP use).
func (c *Controller) LM() *lmp.Manager { return c.lm }

// Link resolves a handle (nil if unknown).
func (c *Controller) Link(h ConnHandle) *baseband.Link { return c.handles[h] }

// Handle resolves a link's handle (0 if unknown).
func (c *Controller) Handle(l *baseband.Link) ConnHandle { return c.byLink[l] }

func (c *Controller) emit(e Event) {
	if c.Events != nil {
		c.Events(e)
	}
}

func (c *Controller) onConnected(l *baseband.Link) {
	h := c.nextHandle
	c.nextHandle++
	c.handles[h] = l
	c.byLink[l] = h
	c.emit(ConnectionCompleteEvent{Handle: h, Peer: l.Peer, OK: true})
}

func (c *Controller) onData(l *baseband.Link, payload []byte, llid uint8) {
	if h, ok := c.byLink[l]; ok {
		c.emit(DataEvent{Handle: h, Payload: payload})
	}
}

func (c *Controller) onModeChange(l *baseband.Link, m baseband.Mode) {
	if h, ok := c.byLink[l]; ok {
		c.emit(ModeChangeEvent{Handle: h, Mode: m})
	}
}

func (c *Controller) onDetach(l *baseband.Link) {
	if h, ok := c.byLink[l]; ok {
		delete(c.handles, h)
		delete(c.byLink, l)
		c.emit(DisconnectionCompleteEvent{Handle: h})
	}
}

// Inquiry runs device discovery for at most timeoutSlots, reporting up
// to maxResponses devices.
func (c *Controller) Inquiry(timeoutSlots, maxResponses int) {
	c.dev.StartInquiry(timeoutSlots, maxResponses, func(rs []baseband.InquiryResult, ok bool) {
		for _, r := range rs {
			c.lastInq[r.Addr] = r
			c.emit(InquiryResultEvent{Result: r})
		}
		c.emit(InquiryCompleteEvent{Found: len(rs), OK: ok})
	})
}

// WriteScanEnable turns inquiry scan and/or page scan on (a real HCI
// multiplexes both; this model runs one scan type at a time, favouring
// page scan, which is what connection establishment needs).
func (c *Controller) WriteScanEnable(inquiryScan, pageScan bool) {
	switch {
	case pageScan:
		c.dev.StartPageScan()
	case inquiryScan:
		c.dev.StartInquiryScan()
	default:
		c.dev.StopScan()
	}
}

// CreateConnection pages a previously discovered device and, on
// baseband connection, runs LMP setup. The ConnectionCompleteEvent
// carries the assigned handle.
func (c *Controller) CreateConnection(addr baseband.BDAddr, timeoutSlots int) error {
	r, ok := c.lastInq[addr]
	if !ok {
		return fmt.Errorf("hci: %v not in inquiry cache; run Inquiry first", addr)
	}
	est := c.dev.EstimateOf(r, 0)
	c.dev.StartPage(addr, est, timeoutSlots, func(l *baseband.Link, ok bool) {
		if !ok {
			c.emit(ConnectionCompleteEvent{Peer: addr, OK: false})
			return
		}
		c.lm.StartSetup(l)
	})
	return nil
}

// SendData queues ACL data on a connection.
func (c *Controller) SendData(h ConnHandle, data []byte) error {
	l, ok := c.handles[h]
	if !ok {
		return fmt.Errorf("hci: unknown handle %d", h)
	}
	l.Send(data, packet.LLIDL2CAPStart)
	return nil
}

// SniffMode requests sniff mode on a connection (master side).
func (c *Controller) SniffMode(h ConnHandle, tsniff, attempt, offset int) error {
	l, ok := c.handles[h]
	if !ok {
		return fmt.Errorf("hci: unknown handle %d", h)
	}
	c.lm.RequestSniff(l, tsniff, attempt, offset, func(accepted bool) {
		if accepted {
			c.emit(ModeChangeEvent{Handle: h, Mode: baseband.ModeSniff})
		}
	})
	return nil
}

// ExitSniffMode returns a connection to active mode.
func (c *Controller) ExitSniffMode(h ConnHandle) error {
	l, ok := c.handles[h]
	if !ok {
		return fmt.Errorf("hci: unknown handle %d", h)
	}
	c.lm.RequestUnsniff(l, func(accepted bool) {
		if accepted {
			c.emit(ModeChangeEvent{Handle: h, Mode: baseband.ModeActive})
		}
	})
	return nil
}

// HoldMode requests a hold period on a connection.
func (c *Controller) HoldMode(h ConnHandle, holdSlots int) error {
	l, ok := c.handles[h]
	if !ok {
		return fmt.Errorf("hci: unknown handle %d", h)
	}
	c.lm.RequestHold(l, holdSlots, func(accepted bool) {
		if accepted {
			c.emit(ModeChangeEvent{Handle: h, Mode: baseband.ModeHold})
		}
	})
	return nil
}

// ParkMode parks a connection.
func (c *Controller) ParkMode(h ConnHandle, beaconSlots int) error {
	l, ok := c.handles[h]
	if !ok {
		return fmt.Errorf("hci: unknown handle %d", h)
	}
	c.lm.RequestPark(l, beaconSlots, func(accepted bool) {
		if accepted {
			c.emit(ModeChangeEvent{Handle: h, Mode: baseband.ModePark})
		}
	})
	return nil
}

// Disconnect detaches a connection.
func (c *Controller) Disconnect(h ConnHandle) error {
	l, ok := c.handles[h]
	if !ok {
		return fmt.Errorf("hci: unknown handle %d", h)
	}
	c.lm.Detach(l)
	delete(c.handles, h)
	delete(c.byLink, l)
	c.emit(DisconnectionCompleteEvent{Handle: h})
	return nil
}
