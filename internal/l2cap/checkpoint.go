package l2cap

import (
	"fmt"
	"sort"

	"repro/internal/baseband"
)

// Checkpoint/restore for the L2CAP layer. Channel state is plain data
// (CIDs, PSM, lifecycle state, the per-link reassembly buffer); the
// callbacks (OnSDU, OnClose, PSM acceptors) are the application's and
// are re-wired by whatever layer owns them after restore. A channel
// still waiting for its connection response holds a completion closure
// that cannot be serialized, so the quiescent-edge contract excludes
// mid-handshake muxes from capture.

// ChannelCheckpoint is one open channel's identity.
type ChannelCheckpoint struct {
	PSM       uint16
	LocalCID  uint16
	RemoteCID uint16
}

// LinkMuxCheckpoint is the captured L2CAP state of one link, keyed by
// peer address.
type LinkMuxCheckpoint struct {
	Peer     baseband.BDAddr
	Buf      []byte
	NextCID  uint16
	Channels []ChannelCheckpoint // ascending LocalCID
}

// MuxCheckpoint is the captured state of one device's L2CAP entity.
type MuxCheckpoint struct {
	SignID uint8
	Links  []LinkMuxCheckpoint // caller's link order
}

// Quiescent reports whether the mux has no signalling transaction in
// progress: no channel awaiting a connection response and no
// outstanding echo.
func (m *Mux) Quiescent() bool {
	if m.echoDone != nil {
		return false
	}
	for _, st := range m.links {
		for _, ch := range st.channels {
			if ch.state == StateWaitConnRsp {
				return false
			}
		}
	}
	return true
}

// Checkpoint captures the mux's state for links, in the caller's
// (deterministic) order. Links the mux never saw traffic on are
// captured with empty state, so restore symmetry holds regardless of
// which links exchanged frames before the snapshot.
func (m *Mux) Checkpoint(links []*baseband.Link) (*MuxCheckpoint, error) {
	if !m.Quiescent() {
		return nil, fmt.Errorf("l2cap: %s has a signalling transaction in progress", m.dev.Name())
	}
	ck := &MuxCheckpoint{SignID: m.signID}
	for _, l := range links {
		lc := LinkMuxCheckpoint{Peer: l.Peer, NextCID: cidDynamic}
		if st, ok := m.links[l]; ok {
			lc.Buf = append([]byte(nil), st.buf...)
			lc.NextCID = st.nextCID
			for _, ch := range st.channels {
				lc.Channels = append(lc.Channels, ChannelCheckpoint{
					PSM: ch.PSM, LocalCID: ch.LocalCID, RemoteCID: ch.RemoteCID,
				})
			}
			sort.Slice(lc.Channels, func(i, j int) bool {
				return lc.Channels[i].LocalCID < lc.Channels[j].LocalCID
			})
		}
		ck.Links = append(ck.Links, lc)
	}
	return ck, nil
}

// Restore imposes ck on a fresh mux, matching captured link state to
// restored links by peer address. All restored channels are open;
// their OnSDU/OnClose callbacks are nil until the owner re-wires them.
func (m *Mux) Restore(links []*baseband.Link, ck *MuxCheckpoint) error {
	byPeer := make(map[baseband.BDAddr]*baseband.Link, len(links))
	for _, l := range links {
		byPeer[l.Peer] = l
	}
	m.signID = ck.SignID
	for _, lc := range ck.Links {
		l, ok := byPeer[lc.Peer]
		if !ok {
			return fmt.Errorf("l2cap: %s mux state references unknown link %v", m.dev.Name(), lc.Peer)
		}
		st := m.stateFor(l)
		st.buf = append(st.buf[:0], lc.Buf...)
		st.nextCID = lc.NextCID
		for _, cc := range lc.Channels {
			st.channels[cc.LocalCID] = &Channel{
				mux: m, link: l, PSM: cc.PSM,
				LocalCID: cc.LocalCID, RemoteCID: cc.RemoteCID,
				state: StateOpen,
			}
		}
	}
	return nil
}

// Channels returns the open channels on l in ascending LocalCID order —
// the deterministic enumeration restore callers use to re-wire OnSDU.
func (m *Mux) Channels(l *baseband.Link) []*Channel {
	st, ok := m.links[l]
	if !ok {
		return nil
	}
	out := make([]*Channel, 0, len(st.channels))
	for _, ch := range st.channels {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LocalCID < out[j].LocalCID })
	return out
}
