package l2cap

import (
	"testing"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/packet"
	"repro/internal/sim"
)

const testPSM = 0x1001

// world wires two connected devices with L2CAP entities.
type world struct {
	k      *sim.Kernel
	mm, sm *Mux
	ml, sl *baseband.Link
}

func newWorld(t *testing.T, ber float64) *world {
	t.Helper()
	k := sim.NewKernel()
	ch := channel.New(k, sim.NewRand(99), channel.Config{BER: ber})
	m := baseband.New(k, ch, "master", baseband.Config{Addr: baseband.BDAddr{LAP: 0x111101, UAP: 1}})
	s := baseband.New(k, ch, "slave", baseband.Config{Addr: baseband.BDAddr{LAP: 0x222202, UAP: 2}, ClockPhase: 777})
	w := &world{k: k, mm: Attach(m), sm: Attach(s)}
	m.OnConnected = func(l *baseband.Link) { w.ml = l }
	s.OnConnected = func(l *baseband.Link) { w.sl = l }
	s.StartPageScan()
	est := m.EstimateOf(baseband.InquiryResult{CLKN: s.Clock.CLKN(0), At: 0}, 0)
	m.StartPage(s.Addr(), est, 2048, nil)
	k.RunUntil(sim.Time(sim.Slots(600)))
	if w.ml == nil || w.sl == nil {
		t.Fatal("pair did not connect")
	}
	return w
}

func (w *world) run(slots uint64) { w.k.RunUntil(w.k.Now() + sim.Time(sim.Slots(slots))) }

func TestChannelOpenSendClose(t *testing.T) {
	w := newWorld(t, 0)
	var serverCh *Channel
	var serverGot [][]byte
	w.sm.RegisterPSM(testPSM, func(ch *Channel) {
		serverCh = ch
		ch.OnSDU = func(sdu []byte) { serverGot = append(serverGot, sdu) }
	})
	var clientCh *Channel
	w.mm.Connect(w.ml, testPSM, func(ch *Channel, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		clientCh = ch
	})
	w.run(400)
	if clientCh == nil || serverCh == nil {
		t.Fatal("channel not established")
	}
	if clientCh.State() != StateOpen || serverCh.State() != StateOpen {
		t.Fatal("states not open")
	}
	if clientCh.RemoteCID != serverCh.LocalCID || serverCh.RemoteCID != clientCh.LocalCID {
		t.Fatalf("CID pairing wrong: %x/%x vs %x/%x",
			clientCh.LocalCID, clientCh.RemoteCID, serverCh.LocalCID, serverCh.RemoteCID)
	}

	if err := clientCh.Send([]byte("first SDU")); err != nil {
		t.Fatal(err)
	}
	if err := clientCh.Send([]byte("second SDU")); err != nil {
		t.Fatal(err)
	}
	w.run(400)
	if len(serverGot) != 2 || string(serverGot[0]) != "first SDU" || string(serverGot[1]) != "second SDU" {
		t.Fatalf("server got %q", serverGot)
	}

	closed := false
	serverCh.OnClose = func() { closed = true }
	clientCh.Disconnect()
	w.run(400)
	if !closed {
		t.Fatal("server never saw the close")
	}
	if clientCh.State() != StateClosed || serverCh.State() != StateClosed {
		t.Fatal("channels not closed")
	}
	if clientCh.Send([]byte("x")) == nil {
		t.Fatal("send on closed channel must error")
	}
}

func TestLargeSDUSegmentation(t *testing.T) {
	w := newWorld(t, 0)
	var got []byte
	w.sm.RegisterPSM(testPSM, func(ch *Channel) {
		ch.OnSDU = func(sdu []byte) { got = append([]byte(nil), sdu...) }
	})
	var client *Channel
	w.mm.Connect(w.ml, testPSM, func(ch *Channel, err error) { client = ch })
	w.run(300)
	// A 1 kB SDU spans ~60 DM1 chunks.
	sdu := make([]byte, 1000)
	for i := range sdu {
		sdu[i] = byte(i * 7)
	}
	if err := client.Send(sdu); err != nil {
		t.Fatal(err)
	}
	w.run(1500)
	if len(got) != 1000 {
		t.Fatalf("reassembled %d bytes, want 1000", len(got))
	}
	for i := range got {
		if got[i] != byte(i*7) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestLargeSDUWithDH5AndNoise(t *testing.T) {
	// BER 1/5000: a 2871-bit DH5 survives ~57% of the time, so the ARQ
	// visibly works without starving the link.
	w := newWorld(t, 1.0/5000)
	w.ml.PacketType = packet.TypeDH5
	w.sl.PacketType = packet.TypeDH5
	var got []byte
	w.sm.RegisterPSM(testPSM, func(ch *Channel) {
		ch.OnSDU = func(sdu []byte) { got = append([]byte(nil), sdu...) }
	})
	var client *Channel
	w.mm.Connect(w.ml, testPSM, func(ch *Channel, err error) { client = ch })
	w.run(600)
	if client == nil {
		t.Fatal("no channel")
	}
	sdu := make([]byte, 2000)
	for i := range sdu {
		sdu[i] = byte(i)
	}
	if err := client.Send(sdu); err != nil {
		t.Fatal(err)
	}
	w.run(4000)
	if len(got) != 2000 {
		t.Fatalf("reassembled %d bytes under noise (ARQ must recover)", len(got))
	}
}

func TestUnknownPSMRefused(t *testing.T) {
	w := newWorld(t, 0)
	var refusedPSM uint16
	w.sm.OnUnknownPSM = func(psm uint16) { refusedPSM = psm }
	var gotErr error
	called := false
	w.mm.Connect(w.ml, 0x0F0F, func(ch *Channel, err error) {
		called = true
		gotErr = err
	})
	w.run(400)
	if !called || gotErr != ErrRefused {
		t.Fatalf("refusal not delivered: called=%v err=%v", called, gotErr)
	}
	if refusedPSM != 0x0F0F {
		t.Fatalf("OnUnknownPSM got %#x", refusedPSM)
	}
}

func TestEcho(t *testing.T) {
	w := newWorld(t, 0)
	var echoed []byte
	w.mm.Echo(w.ml, []byte("ping?"), func(b []byte) { echoed = b })
	w.run(300)
	if string(echoed) != "ping?" {
		t.Fatalf("echo = %q", echoed)
	}
}

func TestBidirectionalChannels(t *testing.T) {
	w := newWorld(t, 0)
	// Server on the master, client on the slave: channels work both ways
	// (slave-initiated signalling rides the polling scheme).
	var got string
	w.mm.RegisterPSM(testPSM, func(ch *Channel) {
		ch.OnSDU = func(sdu []byte) { got = string(sdu) }
	})
	var client *Channel
	w.sm.Connect(w.sl, testPSM, func(ch *Channel, err error) { client = ch })
	w.run(600)
	if client == nil {
		t.Fatal("slave-initiated channel failed")
	}
	if err := client.Send([]byte("uplink sdu")); err != nil {
		t.Fatal(err)
	}
	w.run(400)
	if got != "uplink sdu" {
		t.Fatalf("master got %q", got)
	}
}

func TestTwoChannelsSameLink(t *testing.T) {
	w := newWorld(t, 0)
	gots := map[uint16]string{}
	w.sm.RegisterPSM(0x21, func(ch *Channel) {
		ch.OnSDU = func(sdu []byte) { gots[0x21] = string(sdu) }
	})
	w.sm.RegisterPSM(0x23, func(ch *Channel) {
		ch.OnSDU = func(sdu []byte) { gots[0x23] = string(sdu) }
	})
	var c1, c2 *Channel
	w.mm.Connect(w.ml, 0x21, func(ch *Channel, err error) { c1 = ch })
	w.mm.Connect(w.ml, 0x23, func(ch *Channel, err error) { c2 = ch })
	w.run(600)
	if c1 == nil || c2 == nil {
		t.Fatal("channels not established")
	}
	if c1.LocalCID == c2.LocalCID {
		t.Fatal("CID collision")
	}
	c1.Send([]byte("for 21"))
	c2.Send([]byte("for 23"))
	w.run(400)
	if gots[0x21] != "for 21" || gots[0x23] != "for 23" {
		t.Fatalf("demux wrong: %v", gots)
	}
}
