// Package l2cap implements the Logical Link Control and Adaptation
// Protocol of the paper's Fig. 1 stack: channel multiplexing over ACL
// links with PSM-based connection signalling and SDU segmentation/
// reassembly (basic mode B-frames). Applications talk to channels;
// the baseband's LLID start/continue bits carry the segmentation.
package l2cap

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/baseband"
	"repro/internal/packet"
)

// Well-known channel identifiers.
const (
	cidSignaling = 0x0001
	cidDynamic   = 0x0040 // first allocatable CID
)

// Signalling command codes (spec part D §4).
const (
	codeConnReq = 0x02
	codeConnRsp = 0x03
	codeDiscReq = 0x06
	codeDiscRsp = 0x07
	codeEchoReq = 0x08
	codeEchoRsp = 0x09
)

// Connection response results.
const (
	resultSuccess    = 0x0000
	resultRefusedPSM = 0x0002
)

// ChannelState tracks a channel's lifecycle.
type ChannelState int

// Channel states.
const (
	StateClosed ChannelState = iota
	StateWaitConnRsp
	StateOpen
)

// Channel is one L2CAP channel endpoint.
type Channel struct {
	mux       *Mux
	link      *baseband.Link
	PSM       uint16
	LocalCID  uint16
	RemoteCID uint16
	state     ChannelState

	// OnSDU receives complete reassembled service data units.
	OnSDU func(sdu []byte)
	// OnClose fires when the channel closes (either end).
	OnClose func()

	connectDone func(*Channel, error)
}

// State returns the channel's lifecycle state.
func (c *Channel) State() ChannelState { return c.state }

// Link returns the ACL link the channel rides on. Relays use it to gate
// their drains on the baseband transmit queue, keeping backpressure —
// and its statistics — at the L2CAP layer instead of piling frames
// into the link.
func (c *Channel) Link() *baseband.Link { return c.link }

// Send transmits one SDU over the channel as a single B-frame.
func (c *Channel) Send(sdu []byte) error {
	if c.state != StateOpen {
		return fmt.Errorf("l2cap: channel %#x not open", c.LocalCID)
	}
	c.mux.sendFrame(c.link, c.RemoteCID, sdu)
	return nil
}

// Disconnect closes the channel, notifying the peer.
func (c *Channel) Disconnect() {
	if c.state == StateClosed {
		return
	}
	req := make([]byte, 4)
	binary.LittleEndian.PutUint16(req[0:2], c.RemoteCID)
	binary.LittleEndian.PutUint16(req[2:4], c.LocalCID)
	c.mux.sendSignal(c.link, codeDiscReq, c.mux.nextID(), req)
	c.mux.closeChannel(c)
}

// linkState holds per-link reassembly and channel state.
type linkState struct {
	buf      []byte
	channels map[uint16]*Channel // by local CID
	nextCID  uint16
}

// Mux is the L2CAP entity of one device.
type Mux struct {
	dev    *baseband.Device
	links  map[*baseband.Link]*linkState
	psms   map[uint16]func(*Channel)
	signID uint8
	// echoDone holds the pending echo callback (one outstanding echo).
	echoDone func([]byte)
	// OnUnknownPSM observes refused inbound connections (diagnostics).
	OnUnknownPSM func(psm uint16)
}

// Attach builds the L2CAP entity over a device, taking ownership of its
// ACL data path (LLID 1/2 traffic is L2CAP by definition).
func Attach(dev *baseband.Device) *Mux {
	m := &Mux{
		dev:   dev,
		links: make(map[*baseband.Link]*linkState),
		psms:  make(map[uint16]func(*Channel)),
	}
	dev.OnData = m.receive
	return m
}

// Dev returns the underlying device.
func (m *Mux) Dev() *baseband.Device { return m.dev }

// RegisterPSM installs an acceptor for inbound channels on a protocol/
// service multiplexer value (e.g. 0x0003 RFCOMM, 0x0001 SDP).
func (m *Mux) RegisterPSM(psm uint16, accept func(*Channel)) {
	m.psms[psm] = accept
}

func (m *Mux) nextID() uint8 {
	m.signID++
	if m.signID == 0 {
		m.signID = 1
	}
	return m.signID
}

func (m *Mux) stateFor(l *baseband.Link) *linkState {
	st, ok := m.links[l]
	if !ok {
		st = &linkState{channels: make(map[uint16]*Channel), nextCID: cidDynamic}
		m.links[l] = st
	}
	return st
}

// Connect opens a channel to the peer's PSM over an established ACL
// link; done fires with the open channel or an error.
func (m *Mux) Connect(l *baseband.Link, psm uint16, done func(*Channel, error)) *Channel {
	st := m.stateFor(l)
	ch := &Channel{
		mux: m, link: l, PSM: psm,
		LocalCID:    st.nextCID,
		state:       StateWaitConnRsp,
		connectDone: done,
	}
	st.nextCID++
	st.channels[ch.LocalCID] = ch
	req := make([]byte, 4)
	binary.LittleEndian.PutUint16(req[0:2], psm)
	binary.LittleEndian.PutUint16(req[2:4], ch.LocalCID)
	m.sendSignal(l, codeConnReq, m.nextID(), req)
	return ch
}

// Echo sends an echo request (L2CAP ping); done receives the echoed
// payload.
func (m *Mux) Echo(l *baseband.Link, payload []byte, done func([]byte)) {
	m.echoDone = done
	m.sendSignal(l, codeEchoReq, m.nextID(), payload)
}

// sendFrame emits one B-frame on a link.
func (m *Mux) sendFrame(l *baseband.Link, cid uint16, payload []byte) {
	frame := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint16(frame[0:2], uint16(len(payload)))
	binary.LittleEndian.PutUint16(frame[2:4], cid)
	copy(frame[4:], payload)
	l.Send(frame, packet.LLIDL2CAPStart)
}

// sendSignal emits a signalling command on CID 1.
func (m *Mux) sendSignal(l *baseband.Link, code, id uint8, payload []byte) {
	cmd := make([]byte, 4+len(payload))
	cmd[0] = code
	cmd[1] = id
	binary.LittleEndian.PutUint16(cmd[2:4], uint16(len(payload)))
	copy(cmd[4:], payload)
	m.sendFrame(l, cidSignaling, cmd)
}

// receive reassembles B-frames from baseband chunks.
func (m *Mux) receive(l *baseband.Link, chunk []byte, llid uint8) {
	st := m.stateFor(l)
	if llid == packet.LLIDL2CAPStart {
		st.buf = st.buf[:0]
	}
	st.buf = append(st.buf, chunk...)
	for len(st.buf) >= 4 {
		length := int(binary.LittleEndian.Uint16(st.buf[0:2]))
		if len(st.buf) < 4+length {
			return // wait for more chunks
		}
		cid := binary.LittleEndian.Uint16(st.buf[2:4])
		payload := append([]byte(nil), st.buf[4:4+length]...)
		st.buf = st.buf[4+length:]
		m.dispatch(l, st, cid, payload)
	}
}

// dispatch routes a complete frame.
func (m *Mux) dispatch(l *baseband.Link, st *linkState, cid uint16, payload []byte) {
	if cid == cidSignaling {
		m.handleSignal(l, st, payload)
		return
	}
	if ch, ok := st.channels[cid]; ok && ch.state == StateOpen {
		if ch.OnSDU != nil {
			ch.OnSDU(payload)
		}
	}
}

// ErrRefused reports a connection refused by the peer.
var ErrRefused = errors.New("l2cap: connection refused")

// handleSignal processes signalling commands.
func (m *Mux) handleSignal(l *baseband.Link, st *linkState, cmd []byte) {
	if len(cmd) < 4 {
		return
	}
	code, id := cmd[0], cmd[1]
	n := int(binary.LittleEndian.Uint16(cmd[2:4]))
	if len(cmd) < 4+n {
		return
	}
	body := cmd[4 : 4+n]
	switch code {
	case codeConnReq:
		if len(body) < 4 {
			return
		}
		psm := binary.LittleEndian.Uint16(body[0:2])
		scid := binary.LittleEndian.Uint16(body[2:4])
		accept, ok := m.psms[psm]
		rsp := make([]byte, 8)
		if !ok {
			// DCID stays 0; SCID and result report the refusal.
			binary.LittleEndian.PutUint16(rsp[2:4], scid)
			binary.LittleEndian.PutUint16(rsp[4:6], resultRefusedPSM)
			m.sendSignal(l, codeConnRsp, id, rsp)
			if m.OnUnknownPSM != nil {
				m.OnUnknownPSM(psm)
			}
			return
		}
		ch := &Channel{
			mux: m, link: l, PSM: psm,
			LocalCID:  st.nextCID,
			RemoteCID: scid,
			state:     StateOpen,
		}
		st.nextCID++
		st.channels[ch.LocalCID] = ch
		binary.LittleEndian.PutUint16(rsp[0:2], ch.LocalCID)
		binary.LittleEndian.PutUint16(rsp[2:4], scid)
		binary.LittleEndian.PutUint16(rsp[4:6], resultSuccess)
		m.sendSignal(l, codeConnRsp, id, rsp)
		accept(ch)
	case codeConnRsp:
		if len(body) < 6 {
			return
		}
		dcid := binary.LittleEndian.Uint16(body[0:2])
		scid := binary.LittleEndian.Uint16(body[2:4])
		result := binary.LittleEndian.Uint16(body[4:6])
		ch, ok := st.channels[scid]
		if !ok || ch.state != StateWaitConnRsp {
			return
		}
		if result != resultSuccess {
			delete(st.channels, scid)
			ch.state = StateClosed
			if ch.connectDone != nil {
				ch.connectDone(nil, ErrRefused)
			}
			return
		}
		ch.RemoteCID = dcid
		ch.state = StateOpen
		if ch.connectDone != nil {
			ch.connectDone(ch, nil)
		}
	case codeDiscReq:
		if len(body) < 4 {
			return
		}
		dcid := binary.LittleEndian.Uint16(body[0:2])
		if ch, ok := st.channels[dcid]; ok {
			m.sendSignal(l, codeDiscRsp, id, body)
			m.closeChannel(ch)
		}
	case codeDiscRsp:
		// Channel already removed locally at Disconnect time.
	case codeEchoReq:
		m.sendSignal(l, codeEchoRsp, id, body)
	case codeEchoRsp:
		if m.echoDone != nil {
			done := m.echoDone
			m.echoDone = nil
			done(append([]byte(nil), body...))
		}
	}
}

// closeChannel removes a channel and notifies its owner.
func (m *Mux) closeChannel(c *Channel) {
	if st, ok := m.links[c.link]; ok {
		delete(st.channels, c.LocalCID)
	}
	if c.state != StateClosed {
		c.state = StateClosed
		if c.OnClose != nil {
			c.OnClose()
		}
	}
}
