// Package stats collects the summary statistics the experiment harness
// reports: means with confidence intervals over repeated simulations,
// success/failure counters, and formatted series for the figure tables.
//
// Every accumulator is mergeable (Sample.Merge, Counter.Merge,
// CounterMap.Merge), which is what lets the parallel runner fan replicas
// out across workers and still reproduce the serial accumulation bit for
// bit: per-replica accumulators merged in replica order are
// indistinguishable from one accumulator fed serially. Table renders
// aligned text or CSV with a stable float format, so byte-comparison of
// tables is a valid determinism check.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// Merge appends every observation of o to s, preserving o's order. It
// is the accumulator-combining half of the parallel runner: replica
// samples merged in replica order reproduce the serial sample exactly.
func (s *Sample) Merge(o *Sample) { s.xs = append(s.xs, o.xs...) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of the 95% confidence interval on the
// mean under a normal approximation.
func (s *Sample) CI95() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(len(s.xs)))
}

// Quantile returns the q-th (0..1) order statistic by nearest rank.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Min returns the smallest observation (0 for empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Occupancy is a time-weighted gauge for queue depths: every Observe
// books the previous depth for the time it was held, so Mean is the
// true time average ∫depth·dt / observed span rather than a per-event
// average (a queue that sits at depth 10 for a thousand slots and at 0
// for one slot should not average 5). Times are caller units — the
// simulators feed slot counts. Like the other accumulators it merges:
// replica gauges combined in any order reproduce the pooled time
// average, which is what lets the parallel runner fan scatternet
// replicas out and still report one bridge-queue figure.
type Occupancy struct {
	cur    int
	lastAt uint64
	live   bool

	weighted float64 // ∫ depth dt over the observed span
	span     uint64  // total observed time
	// Max is the largest depth ever observed.
	Max int
}

// Observe records that the depth changed to depth at time now; the
// previous depth is charged for the elapsed interval. Non-monotonic
// times are ignored (the gauge never goes backwards).
func (o *Occupancy) Observe(depth int, now uint64) {
	if o.live && now >= o.lastAt {
		o.weighted += float64(o.cur) * float64(now-o.lastAt)
		o.span += now - o.lastAt
	}
	o.cur = depth
	o.lastAt = now
	o.live = true
	if depth > o.Max {
		o.Max = depth
	}
}

// Finish closes the observation window at now, charging the current
// depth up to that instant. Call once at the end of a measurement;
// further Observes reopen the window.
func (o *Occupancy) Finish(now uint64) { o.Observe(o.cur, now) }

// Mean returns the time-weighted average depth over the observed span
// (0 before any interval has closed).
func (o *Occupancy) Mean() float64 {
	if o.span == 0 {
		return 0
	}
	return o.weighted / float64(o.span)
}

// Span returns the total observed time.
func (o *Occupancy) Span() uint64 { return o.span }

// Merge pools b's observed time into o: integrals and spans add, the
// maximum is the larger of the two. Merging is order-independent.
func (o *Occupancy) Merge(b *Occupancy) {
	o.weighted += b.weighted
	o.span += b.span
	if b.Max > o.Max {
		o.Max = b.Max
	}
}

// Counter tracks success rates over trials.
type Counter struct {
	Success int
	Total   int
}

// Observe records one trial.
func (c *Counter) Observe(ok bool) {
	c.Total++
	if ok {
		c.Success++
	}
}

// Rate returns the success fraction (0 for no trials).
func (c *Counter) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Success) / float64(c.Total)
}

// FailureRate returns 1 - Rate for non-empty counters, else 0.
func (c *Counter) FailureRate() float64 {
	if c.Total == 0 {
		return 0
	}
	return 1 - c.Rate()
}

// Merge adds o's trials to c.
func (c *Counter) Merge(o Counter) {
	c.Success += o.Success
	c.Total += o.Total
}

// CounterMap tracks success rates under string keys — per-outcome or
// per-scenario counters that parallel replicas produce independently
// and the runner folds together.
type CounterMap map[string]*Counter

// Observe records one trial under key, creating the counter on first use.
func (m CounterMap) Observe(key string, ok bool) {
	c := m[key]
	if c == nil {
		c = &Counter{}
		m[key] = c
	}
	c.Observe(ok)
}

// Get returns the counter for key (a zero Counter if absent).
func (m CounterMap) Get(key string) Counter {
	if c := m[key]; c != nil {
		return *c
	}
	return Counter{}
}

// Merge folds every counter of o into m.
func (m CounterMap) Merge(o CounterMap) {
	for k, c := range o {
		if c == nil {
			continue
		}
		dst := m[k]
		if dst == nil {
			dst = &Counter{}
			m[k] = dst
		}
		dst.Merge(*c)
	}
}

// Keys returns the keys in sorted order, for deterministic reports.
func (m CounterMap) Keys() []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Table is a simple fixed-column report the experiment binaries print;
// it renders both human-readable text and CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Columns: cols}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders an aligned text table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		sb.WriteString(strings.Join(r, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}
