package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.CI95() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Sample stddev of that classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 must be positive")
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("Q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("Q1 = %v", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %v", q)
	}
	var empty Sample
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // summing extreme magnitudes overflows; out of scope
			}
			s.Add(x)
		}
		if len(xs) == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9*math.Abs(s.Min())-1e-9 &&
			m <= s.Max()+1e-9*math.Abs(s.Max())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 || c.FailureRate() != 0 {
		t.Fatal("empty counter must report 0")
	}
	for i := 0; i < 10; i++ {
		c.Observe(i < 7)
	}
	if c.Rate() != 0.7 {
		t.Fatalf("Rate = %v", c.Rate())
	}
	if math.Abs(c.FailureRate()-0.3) > 1e-12 {
		t.Fatalf("FailureRate = %v", c.FailureRate())
	}
	if c.Success != 7 || c.Total != 10 {
		t.Fatalf("counts %d/%d", c.Success, c.Total)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Fig 6", "BER", "mean TS", "ci95")
	tbl.AddRow("1/100", 1556.2, 10.5)
	tbl.AddRow("1/30", 1801.0, 22.0)
	out := tbl.String()
	if !strings.Contains(out, "== Fig 6 ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1556") || !strings.Contains(out, "1801") {
		t.Fatalf("missing data:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "BER,mean TS,ci95\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "1/100,1556,10.5") {
		t.Fatalf("CSV row wrong:\n%s", csv)
	}
}

func TestTableIntFormatting(t *testing.T) {
	tbl := NewTable("", "n")
	tbl.AddRow(42)
	if !strings.Contains(tbl.CSV(), "42") {
		t.Fatal("int row lost")
	}
	if strings.Contains(tbl.String(), "==") {
		t.Fatal("empty title must not render a banner")
	}
}

func TestSampleMergeReproducesSerial(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var serial Sample
	for _, x := range xs {
		serial.Add(x)
	}
	// Split into per-replica chunks and merge in order, as the parallel
	// runner's reduction does.
	var merged Sample
	for i := 0; i < len(xs); i += 3 {
		var chunk Sample
		for _, x := range xs[i:min(i+3, len(xs))] {
			chunk.Add(x)
		}
		merged.Merge(&chunk)
	}
	if merged.N() != serial.N() || merged.Mean() != serial.Mean() ||
		merged.StdDev() != serial.StdDev() || merged.CI95() != serial.CI95() {
		t.Fatalf("merged sample differs: n=%d mean=%v vs n=%d mean=%v",
			merged.N(), merged.Mean(), serial.N(), serial.Mean())
	}
	if merged.Quantile(0.5) != serial.Quantile(0.5) {
		t.Fatal("merged quantile differs")
	}
}

func TestCounterMerge(t *testing.T) {
	var a, b Counter
	a.Observe(true)
	a.Observe(false)
	b.Observe(true)
	b.Observe(true)
	a.Merge(b)
	if a.Total != 4 || a.Success != 3 {
		t.Fatalf("merged counter = %+v", a)
	}
	if a.Rate() != 0.75 {
		t.Fatalf("rate = %v", a.Rate())
	}
}

func TestCounterMap(t *testing.T) {
	m := CounterMap{}
	m.Observe("created", true)
	m.Observe("created", false)
	m.Observe("aborted", true)

	o := CounterMap{}
	o.Observe("created", true)
	o.Observe("timeout", false)
	m.Merge(o)

	if got := m.Get("created"); got.Total != 3 || got.Success != 2 {
		t.Fatalf("created = %+v", got)
	}
	if got := m.Get("timeout"); got.Total != 1 || got.Success != 0 {
		t.Fatalf("timeout = %+v", got)
	}
	if got := m.Get("missing"); got.Total != 0 {
		t.Fatalf("missing key = %+v", got)
	}
	want := []string{"aborted", "created", "timeout"}
	keys := m.Keys()
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestOccupancyTimeWeightedMean(t *testing.T) {
	var o Occupancy
	o.Observe(0, 0)   // depth 0 from t=0
	o.Observe(10, 10) // 0 held for 10
	o.Observe(2, 20)  // 10 held for 10
	o.Finish(40)      // 2 held for 20
	// ∫ = 0*10 + 10*10 + 2*20 = 140 over span 40.
	if got := o.Mean(); got != 3.5 {
		t.Fatalf("Mean = %v, want 3.5", got)
	}
	if o.Max != 10 {
		t.Fatalf("Max = %d, want 10", o.Max)
	}
	if o.Span() != 40 {
		t.Fatalf("Span = %d, want 40", o.Span())
	}
	// Finish is idempotent at the same instant.
	o.Finish(40)
	if got := o.Mean(); got != 3.5 {
		t.Fatalf("Mean after re-Finish = %v", got)
	}
}

func TestOccupancyEmptyAndBackwards(t *testing.T) {
	var o Occupancy
	if o.Mean() != 0 || o.Max != 0 {
		t.Fatal("zero value must read as empty")
	}
	o.Observe(5, 100)
	o.Observe(7, 50) // time going backwards is ignored, depth still tracked
	if o.Max != 7 {
		t.Fatalf("Max = %d", o.Max)
	}
	if o.Span() != 0 {
		t.Fatalf("backwards interval booked: span %d", o.Span())
	}
}

func TestOccupancyMergePoolsReplicas(t *testing.T) {
	var a, b Occupancy
	a.Observe(4, 0)
	a.Finish(10) // 4 for 10
	b.Observe(8, 0)
	b.Finish(30) // 8 for 30
	a.Merge(&b)
	// Pooled: (40 + 240) / 40 = 7.
	if got := a.Mean(); got != 7 {
		t.Fatalf("merged Mean = %v, want 7", got)
	}
	if a.Max != 8 || a.Span() != 40 {
		t.Fatalf("merged Max/Span = %d/%d", a.Max, a.Span())
	}
}
