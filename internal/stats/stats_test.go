package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.CI95() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Sample stddev of that classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 must be positive")
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("Q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("Q1 = %v", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %v", q)
	}
	var empty Sample
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // summing extreme magnitudes overflows; out of scope
			}
			s.Add(x)
		}
		if len(xs) == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9*math.Abs(s.Min())-1e-9 &&
			m <= s.Max()+1e-9*math.Abs(s.Max())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 || c.FailureRate() != 0 {
		t.Fatal("empty counter must report 0")
	}
	for i := 0; i < 10; i++ {
		c.Observe(i < 7)
	}
	if c.Rate() != 0.7 {
		t.Fatalf("Rate = %v", c.Rate())
	}
	if math.Abs(c.FailureRate()-0.3) > 1e-12 {
		t.Fatalf("FailureRate = %v", c.FailureRate())
	}
	if c.Success != 7 || c.Total != 10 {
		t.Fatalf("counts %d/%d", c.Success, c.Total)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Fig 6", "BER", "mean TS", "ci95")
	tbl.AddRow("1/100", 1556.2, 10.5)
	tbl.AddRow("1/30", 1801.0, 22.0)
	out := tbl.String()
	if !strings.Contains(out, "== Fig 6 ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1556") || !strings.Contains(out, "1801") {
		t.Fatalf("missing data:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "BER,mean TS,ci95\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "1/100,1556,10.5") {
		t.Fatalf("CSV row wrong:\n%s", csv)
	}
}

func TestTableIntFormatting(t *testing.T) {
	tbl := NewTable("", "n")
	tbl.AddRow(42)
	if !strings.Contains(tbl.CSV(), "42") {
		t.Fatal("int row lost")
	}
	if strings.Contains(tbl.String(), "==") {
		t.Fatal("empty title must not render a banner")
	}
}
