package stats

import "encoding/json"

// sampleSummary is the wire shape of a Sample: the summary statistics
// the experiment tables print, not the raw observations — a latency
// sample can hold one entry per delivered SDU, far too heavy for a
// metrics response. Marshaling is deterministic (a pure function of
// the observations), which is what lets the service layer's
// determinism contract extend to whole JSON bodies.
type sampleSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
}

// MarshalJSON encodes the sample as its summary statistics.
func (s Sample) MarshalJSON() ([]byte, error) {
	return json.Marshal(sampleSummary{
		N: s.N(), Mean: s.Mean(), StdDev: s.StdDev(),
		Min: s.Min(), Max: s.Max(),
		P50: s.Quantile(0.5), P95: s.Quantile(0.95),
	})
}
