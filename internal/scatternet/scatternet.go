// Package scatternet builds scatternets: a chain of piconets joined by
// bridge devices, each bridge a slave in two piconets at once,
// timesharing its single radio between the two hop sequences and
// relaying L2CAP frames store-and-forward.
//
// Deprecated: the engine lives in internal/netspec now; this package
// is a thin adapter kept for one PR so existing callers migrate at
// their own pace. New code should declare a netspec.Spec — a Config
// here compiles to exactly that — and use the World.Metrics surface.
package scatternet

import (
	"fmt"

	"repro/internal/coex"
	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/packet"
)

// Membership is one of a bridge's two piconet attachments.
//
// Deprecated: use netspec.Membership.
type Membership = netspec.Membership

// Bridge is one scatternet bridge.
//
// Deprecated: use netspec.BridgeState.
type Bridge = netspec.BridgeState

// FlowSpec names one end-to-end traffic flow by device names.
//
// Deprecated: use netspec.FlowSpec.
type FlowSpec = netspec.FlowSpec

// Flow is a running flow with its delivery accounting.
//
// Deprecated: use netspec.Flow.
type Flow = netspec.Flow

// Config describes the scatternet to build: a chain of Piconets joined
// by Piconets-1 bridges.
//
// Deprecated: declare a netspec.Spec instead; see Config.Spec for the
// exact translation.
type Config struct {
	// Piconets is the chain length (default 2, minimum 2).
	Piconets int
	// Slaves is the number of regular slaves per piconet (default 1).
	// Middle masters additionally host two bridges, so Slaves+2 must
	// stay within the 7 active members a piconet supports.
	Slaves int

	// PresencePeriodSlots is the bridge timesharing period T (multiple
	// of 4; default 256 slots = 160 ms).
	PresencePeriodSlots int
	// PresenceDuty is the fraction of the period the bridge radio is
	// present in some piconet, split evenly between the two. In (0, 1];
	// default 0.8.
	PresenceDuty float64
	// GuardEvenSlots shortens each presence window by this many even
	// slots (default 2).
	GuardEvenSlots int

	// PacketType carries the relayed traffic (default DM1).
	PacketType packet.Type
	// SDUBytes is the payload size of each relayed L2CAP SDU
	// (default 64).
	SDUBytes int
	// PumpDepth bounds how many frames a traffic pump or bridge drain
	// keeps in a baseband transmit queue (default 2).
	PumpDepth int
	// TpollSlots is the masters' polling interval (default 64 —
	// scatternet links are mostly idle and stay alive through POLLs).
	TpollSlots int
	// MaxQueueFrames bounds each bridge's store-and-forward backlog
	// (default 32).
	MaxQueueFrames int
}

// withDefaults fills the zero fields the Spec translation needs
// locally (the rest default inside netspec).
func (c Config) withDefaults() Config {
	if c.Piconets == 0 {
		c.Piconets = 2
	}
	if c.Slaves == 0 {
		c.Slaves = 1
	}
	if c.TpollSlots == 0 {
		c.TpollSlots = 64
	}
	if c.SDUBytes == 0 {
		c.SDUBytes = 64
	}
	if c.PumpDepth == 0 {
		c.PumpDepth = 2
	}
	return c
}

// normalize validates the config and fills every default, panicking on
// an invalid topology as the pre-netspec engine did. The default
// values themselves live in netspec: the resolved spec is mirrored
// back into the config so the engine's table stays the single source.
func (c *Config) normalize() {
	*c = c.withDefaults()
	spec := c.Spec() // panics on Piconets < 2
	if err := spec.Validate(); err != nil {
		panic("scatternet: " + err.Error())
	}
	b := spec.Resolved().Bridges[0]
	c.PresencePeriodSlots = b.PresencePeriodSlots
	c.PresenceDuty = b.PresenceDuty
	c.GuardEvenSlots = b.GuardEvenSlots
	c.PacketType = b.PacketType
	c.PumpDepth = b.PumpDepth
	c.MaxQueueFrames = b.MaxQueueFrames
}

// Spec translates the config into the equivalent netspec world: a
// chain of identical piconet stanzas joined by bridge stanzas. Flows
// are not part of the translation — StartTraffic adds them, as this
// package always did.
func (c Config) Spec() netspec.Spec {
	c = c.withDefaults()
	if c.Piconets < 2 {
		panic(fmt.Sprintf("scatternet: need at least 2 piconets, got %d", c.Piconets))
	}
	piconets := make([]netspec.Piconet, 0, c.Piconets)
	for i := 0; i < c.Piconets; i++ {
		piconets = append(piconets, netspec.Piconet{
			Slaves:     c.Slaves,
			TpollSlots: c.TpollSlots,
		})
	}
	bridges := make([]netspec.Bridge, 0, c.Piconets-1)
	for i := 0; i < c.Piconets-1; i++ {
		bridges = append(bridges, netspec.Bridge{
			A: i, B: i + 1,
			PresencePeriodSlots: c.PresencePeriodSlots,
			PresenceDuty:        c.PresenceDuty,
			GuardEvenSlots:      c.GuardEvenSlots,
			PacketType:          c.PacketType,
			PumpDepth:           c.PumpDepth,
			MaxQueueFrames:      c.MaxQueueFrames,
		})
	}
	return netspec.Spec{Piconets: piconets, Bridges: bridges}
}

// Net is a built scatternet; it embeds the netspec.World, whose richer
// Metrics surface is available alongside the legacy Totals.
//
// Deprecated: use netspec.Build / netspec.World.
type Net struct {
	*netspec.World
	// Coex is the legacy view of the underlying multi-piconet world.
	Coex *coex.Net

	cfg Config
}

// MasterName returns the device name of piconet i's master.
func MasterName(i int) string { return netspec.MasterName(i) }

// SlaveName returns the device name of slave j (1-based) in piconet i.
func SlaveName(i, j int) string { return netspec.SlaveName(i, j) }

// BridgeName returns the device name of bridge i.
func BridgeName(i int) string { return netspec.BridgeName(i) }

// New is Build on a fresh world.
//
// Deprecated: use netspec.Build with core.NewSimulation.
func New(opt core.Options, cfg Config) *Net {
	return Build(core.NewSimulation(opt), cfg)
}

// Build stands the scatternet up on s. It panics if any stage cannot
// complete, as it always did; it advances simulated time (paging,
// channel setup and LMP negotiation all happen on the air).
//
// Deprecated: use netspec.Build.
func Build(s *core.Simulation, cfg Config) *Net {
	cfg.normalize()
	w, err := netspec.Build(s, cfg.Spec())
	if err != nil {
		panic("scatternet: " + err.Error())
	}
	return &Net{World: w, Coex: coex.Wrap(w), cfg: cfg}
}

// StartTraffic starts the given flows (DefaultFlow when none are
// passed): each origin keeps an SDU stream toward its destination,
// gated on its first-hop baseband queue so backpressure propagates to
// the bridges instead of piling up at the source link.
func (n *Net) StartTraffic(flows ...FlowSpec) {
	n.World.StartFlows(n.cfg.SDUBytes, n.cfg.PumpDepth, flows...)
}

// ResetStats opens a fresh measurement window (see
// netspec.World.ResetMetrics).
func (n *Net) ResetStats() { n.World.ResetMetrics() }

// Totals summarises the current measurement window.
//
// Deprecated: use netspec.World.Metrics.
type Totals struct {
	// DeliveredBytes is the end-to-end SDU payload delivered.
	DeliveredBytes int
	// ForwardedFrames counts frames relayed across all bridges;
	// DroppedFrames counts the ones the bounded queues refused.
	ForwardedFrames int
	DroppedFrames   int
	// FwdLatencyMeanSlots is the mean bridge store-and-forward latency.
	FwdLatencyMeanSlots float64
	// E2ELatencyMeanSlots is the mean end-to-end delivery latency.
	E2ELatencyMeanSlots float64
	// QueueMeanDepth and QueueMaxDepth describe the pooled bridge
	// backlog (time-weighted mean, absolute max).
	QueueMeanDepth float64
	QueueMaxDepth  int
	// MembershipSwitches counts bridge radio retunes.
	MembershipSwitches int
	// RouteMisses counts undeliverable frames (0 in a healthy net).
	RouteMisses int
}

// Totals reads the current window's counters without closing it.
func (n *Net) Totals() Totals {
	m := n.World.Metrics()
	return Totals{
		DeliveredBytes:      m.EndToEndBytes,
		ForwardedFrames:     m.ForwardedFrames,
		DroppedFrames:       m.DroppedFrames,
		FwdLatencyMeanSlots: m.FwdLatency.Mean(),
		E2ELatencyMeanSlots: m.E2ELatency.Mean(),
		QueueMeanDepth:      m.Queue.Mean,
		QueueMaxDepth:       m.Queue.Max,
		MembershipSwitches:  m.MembershipSwitches,
		RouteMisses:         m.RouteMisses,
	}
}

// GoodputKbps converts delivered payload over a slot horizon into
// kbit/s.
func GoodputKbps(bytes int, slots uint64) float64 {
	return netspec.GoodputKbps(bytes, slots)
}
