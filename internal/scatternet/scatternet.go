// Package scatternet builds scatternets on top of the coexistence
// engine: a chain of piconets joined by bridge devices, each bridge a
// slave in two piconets at once, timesharing its single radio between
// the two hop sequences. The timesharing is expressed with the
// machinery the lower layers already have — a bridge holds one
// baseband.Membership per piconet (clock offset, hop selector,
// AM_ADDR) and pins a sniff window on each link over the LMP
// slot-offset/presence handshake, so each master only addresses the
// bridge while its radio is actually parked on that piconet. Above the
// baseband the bridge runs store-and-forward at L2CAP: frames bound
// for the other piconet queue at the bridge and drain during that
// piconet's presence window, with time-weighted queue-depth and
// forwarding-latency statistics.
package scatternet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/baseband"
	"repro/internal/btclock"
	"repro/internal/coex"
	"repro/internal/core"
	"repro/internal/l2cap"
	"repro/internal/lmp"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
)

// relayPSM is the protocol/service multiplexer value the scatternet
// relay protocol rides on.
const relayPSM = 0x0F

// Config describes the scatternet to build: a chain of Piconets joined
// by Piconets-1 bridges.
type Config struct {
	// Piconets is the chain length (default 2, minimum 2).
	Piconets int
	// Slaves is the number of regular slaves per piconet (default 1).
	// Middle masters additionally host two bridges, so Slaves+2 must
	// stay within the 7 active members a piconet supports.
	Slaves int

	// PresencePeriodSlots is the bridge timesharing period T: each
	// bridge cycles through both its piconets once per period. Must be
	// a multiple of 4 (windows land on even-slot boundaries); default
	// 256 slots = 160 ms.
	PresencePeriodSlots int
	// PresenceDuty is the fraction of the period the bridge radio is
	// present in some piconet, split evenly between the two (the rest
	// is guard and retune time). In (0, 1]; default 0.8.
	PresenceDuty float64
	// GuardEvenSlots shortens each presence window by this many even
	// slots so a multi-slot exchange never straddles a retune boundary
	// (default 2).
	GuardEvenSlots int

	// PacketType carries the relayed traffic (default DM1).
	PacketType packet.Type
	// SDUBytes is the payload size of each relayed L2CAP SDU
	// (default 64).
	SDUBytes int
	// PumpDepth bounds how many frames a traffic pump or bridge drain
	// keeps in a baseband transmit queue; beyond it, backpressure stays
	// at L2CAP where the queue statistics live (default 2).
	PumpDepth int
	// TpollSlots is the masters' polling interval (default 64 — unlike
	// the coexistence experiments, scatternet links are mostly idle and
	// stay alive through POLLs).
	TpollSlots int

	// MaxQueueFrames bounds each bridge's store-and-forward backlog
	// (both directions pooled); frames beyond it are dropped and
	// counted. Without a bound a saturating source pushes the queue —
	// and the forwarding latency — toward infinity whenever the inbound
	// window outpaces the outbound one (default 32).
	MaxQueueFrames int
}

// normalize fills zero fields with defaults and validates the topology.
func (c *Config) normalize() {
	if c.Piconets == 0 {
		c.Piconets = 2
	}
	if c.Slaves == 0 {
		c.Slaves = 1
	}
	if c.PresencePeriodSlots == 0 {
		c.PresencePeriodSlots = 256
	}
	if c.PresenceDuty == 0 {
		c.PresenceDuty = 0.8
	}
	if c.GuardEvenSlots == 0 {
		c.GuardEvenSlots = 2
	}
	if c.PacketType == 0 {
		c.PacketType = packet.TypeDM1
	}
	if c.SDUBytes == 0 {
		c.SDUBytes = 64
	}
	if c.PumpDepth == 0 {
		c.PumpDepth = 2
	}
	if c.TpollSlots == 0 {
		c.TpollSlots = 64
	}
	if c.MaxQueueFrames == 0 {
		c.MaxQueueFrames = 32
	}
	if c.Piconets < 2 {
		panic(fmt.Sprintf("scatternet: need at least 2 piconets, got %d", c.Piconets))
	}
	bridgesPerMiddle := 2
	if c.Piconets == 2 {
		bridgesPerMiddle = 1
	}
	if c.Slaves < 1 || c.Slaves+bridgesPerMiddle > 7 {
		panic(fmt.Sprintf("scatternet: %d slaves + %d bridges exceed 7 active members", c.Slaves, bridgesPerMiddle))
	}
	if c.PresencePeriodSlots < 64 || c.PresencePeriodSlots%4 != 0 {
		panic(fmt.Sprintf("scatternet: presence period must be a multiple of 4 and >= 64, got %d", c.PresencePeriodSlots))
	}
	if c.PresenceDuty < 0 || c.PresenceDuty > 1 {
		panic(fmt.Sprintf("scatternet: presence duty %g out of (0,1]", c.PresenceDuty))
	}
	if c.windowEvenSlots() < 1 {
		panic(fmt.Sprintf("scatternet: duty %g leaves no presence window after the %d-even-slot guard",
			c.PresenceDuty, c.GuardEvenSlots))
	}
}

// windowEvenSlots is the per-membership sniff attempt: half the duty
// share of the period, in even slots, minus the guard.
func (c *Config) windowEvenSlots() int {
	return int(c.PresenceDuty*float64(c.PresencePeriodSlots)/4) - c.GuardEvenSlots
}

// Membership is one of a bridge's two piconet attachments.
type Membership struct {
	// Piconet is the chain index of the attached piconet.
	Piconet int
	// Link is the bridge-side ACL link to that piconet's master.
	Link *baseband.Link
	// MasterLink is the master-side end of the same link.
	MasterLink *baseband.Link
	// BB is the baseband membership (clock offset, hop sequence).
	BB *baseband.Membership
	// Out is the relay channel from the bridge to the piconet's master.
	Out *l2cap.Channel
	// SniffOffset and AttemptEvenSlots are the negotiated presence
	// window in the piconet's even-slot index domain.
	SniffOffset      int
	AttemptEvenSlots int

	clockOffset uint32
}

// queuedFrame is one store-and-forward entry.
type queuedFrame struct {
	sdu []byte
	at  uint64 // enqueue time in slots
}

// Bridge is one scatternet bridge: a device that is slave in the two
// adjacent piconets and relays L2CAP frames between them.
type Bridge struct {
	// Index is the chain position: bridge i joins piconets i and i+1.
	Index int
	// Dev is the bridge device.
	Dev *baseband.Device
	// LMP runs the bridge side of the presence handshakes.
	LMP *lmp.Manager
	// Members are the two attachments, lower piconet first.
	Members [2]*Membership

	// QueueDepth tracks the store-and-forward queue depth over time
	// (both directions pooled), in slots.
	QueueDepth stats.Occupancy
	// FwdLatency samples per-frame forwarding latency — enqueue at the
	// bridge to drain into the outgoing window — in slots.
	FwdLatency stats.Sample
	// Forwarded counts frames relayed across the bridge.
	Forwarded int
	// Dropped counts frames the bounded queue refused.
	Dropped int

	active int
	q      [2][]queuedFrame
	node   *node
	net    *Net
}

// ActiveMembership returns the index (0 or 1) of the currently
// activated membership.
func (b *Bridge) ActiveMembership() int { return b.active }

// depth is the total store-and-forward backlog across both directions.
func (b *Bridge) depth() int { return len(b.q[0]) + len(b.q[1]) }

// node is one relay participant (master, slave or bridge): its L2CAP
// entity, the relay channels to its neighbours and the next-hop table.
type node struct {
	name   string
	dev    *baseband.Device
	mux    *l2cap.Mux
	chans  map[string]*l2cap.Channel // neighbour name -> relay channel
	peers  []string                  // neighbour names in attach order (deterministic)
	next   map[string]string         // destination -> neighbour name
	bridge *Bridge                   // non-nil on bridges
}

// FlowSpec names one end-to-end traffic flow by device names.
type FlowSpec struct {
	From, To string
}

// Flow is a running flow with its delivery accounting.
type Flow struct {
	FlowSpec
	// SentBytes and DeliveredBytes count SDU payload over the current
	// measurement window.
	SentBytes, DeliveredBytes int
	// Latency samples end-to-end delivery latency in slots.
	Latency stats.Sample
}

// Net is a built scatternet.
type Net struct {
	// Sim owns the kernel and shared channel.
	Sim *core.Simulation
	// Coex is the underlying multi-piconet world (masters, slaves,
	// collision attribution).
	Coex *coex.Net
	// Bridges in chain order.
	Bridges []*Bridge
	// Flows started by StartTraffic.
	Flows []*Flow

	// DeliveredBytes is the SDU payload total delivered at final
	// destinations since the last ResetStats.
	DeliveredBytes int
	// E2ELatency samples end-to-end latency across all flows, in slots.
	E2ELatency stats.Sample
	// RouteMisses counts frames dropped for lack of a route.
	RouteMisses int

	cfg   Config
	nodes map[string]*node
	names map[baseband.BDAddr]string
	t0    uint64 // presence grid anchor, kernel ticks
}

// MasterName returns the device name of piconet i's master.
func MasterName(i int) string { return fmt.Sprintf("p%d.master", i) }

// SlaveName returns the device name of slave j (1-based) in piconet i.
func SlaveName(i, j int) string { return fmt.Sprintf("p%d.slave%d", i, j) }

// BridgeName returns the device name of bridge i.
func BridgeName(i int) string { return fmt.Sprintf("bridge%d", i) }

// DefaultFlow is the canonical end-to-end flow: from the first
// piconet's master to the first slave of the last piconet — every hop
// of the chain, both directions of every bridge window exercised on
// the way.
func (n *Net) DefaultFlow() FlowSpec {
	return FlowSpec{From: MasterName(0), To: SlaveName(n.cfg.Piconets-1, 1)}
}

// New is Build on a fresh world.
func New(opt core.Options, cfg Config) *Net {
	return Build(core.NewSimulation(opt), cfg)
}

// Build stands the scatternet up on s: the base piconets through the
// coexistence engine, one bridge per adjacent pair (paged into both
// piconets sequentially), relay channels over every ACL link, the
// presence handshake on both bridge links, and finally the presence
// scheduler that timeshares each bridge's radio. Build panics if any
// stage cannot complete, which cannot happen at BER 0 with sane
// parameters; it advances simulated time (paging, channel setup and
// LMP negotiation all happen on the air).
func Build(s *core.Simulation, cfg Config) *Net {
	cfg.normalize()
	n := &Net{
		Sim:   s,
		cfg:   cfg,
		nodes: make(map[string]*node),
		names: make(map[baseband.BDAddr]string),
	}
	n.Coex = coex.Build(s, coex.Config{
		Piconets:   cfg.Piconets,
		Slaves:     cfg.Slaves,
		PacketType: cfg.PacketType,
		TpollSlots: cfg.TpollSlots,
	})

	// Every master and slave becomes a relay node. Attaching the L2CAP
	// entity takes over OnData, which is the point: all host traffic in
	// a scatternet is L2CAP.
	for _, p := range n.Coex.Piconets {
		n.addNode(p.Master)
		for _, sl := range p.Slaves {
			n.addNode(sl)
		}
	}
	// Relay channels master->slave inside every piconet.
	opened := 0
	want := 0
	for _, p := range n.Coex.Piconets {
		mn := n.nodes[p.Master.Name()]
		for _, l := range p.Links {
			want++
			link := l
			mn.mux.Connect(link, relayPSM, func(ch *l2cap.Channel, err error) {
				if err != nil {
					panic("scatternet: intra-piconet relay channel refused: " + err.Error())
				}
				n.registerChannel(mn, ch)
				opened++
			})
		}
	}
	n.runUntil(2048, "intra-piconet channel setup", func() bool { return opened == want })

	for i := 0; i < cfg.Piconets-1; i++ {
		n.Bridges = append(n.Bridges, n.buildBridge(i))
	}
	n.buildRoutes()

	// Anchor the presence grid far enough out that every handshake
	// finishes first; the sniff windows are periodic, so the anchor only
	// fixes phases, not a start time.
	period := uint64(cfg.PresencePeriodSlots) * sim.SlotTicks
	n.t0 = (uint64(s.K.Now())/period + 2) * period
	for _, b := range n.Bridges {
		n.negotiatePresence(b)
	}
	for _, b := range n.Bridges {
		n.startScheduler(b)
		n.startDrain(b)
	}
	return n
}

// addNode wires a device into the relay: L2CAP entity plus the accept
// side of the relay PSM.
func (n *Net) addNode(d *baseband.Device) *node {
	nd := &node{
		name:  d.Name(),
		dev:   d,
		mux:   l2cap.Attach(d),
		chans: make(map[string]*l2cap.Channel),
		next:  make(map[string]string),
	}
	nd.mux.RegisterPSM(relayPSM, func(ch *l2cap.Channel) {
		n.registerChannel(nd, ch)
	})
	n.nodes[nd.name] = nd
	n.names[d.Addr()] = nd.name
	return nd
}

// registerChannel books an open relay channel under the neighbour's
// device name and points its SDU handler at the relay.
func (n *Net) registerChannel(nd *node, ch *l2cap.Channel) {
	peer, ok := n.names[ch.Link().Peer]
	if !ok {
		panic("scatternet: relay channel to unknown device")
	}
	if _, dup := nd.chans[peer]; !dup {
		nd.peers = append(nd.peers, peer)
	}
	nd.chans[peer] = ch
	ch.OnSDU = func(sdu []byte) { n.onSDU(nd, sdu) }
}

// buildBridge creates bridge i and pages it into piconets i and i+1.
func (n *Net) buildBridge(i int) *Bridge {
	d := n.Sim.AddDevice(BridgeName(i), baseband.Config{
		Addr: baseband.BDAddr{
			LAP: 0x7D0000 + uint32(i)*0x11111,
			UAP: uint8(0xB0 + i),
			NAP: uint16(0x0300 + i),
		},
		TpollSlots: n.cfg.TpollSlots,
		// Scan continuously: the second page-in must not wait for an R1
		// scan interval, and foreign piconets can collide with the
		// handshake.
		PageScanWindowSlots:   2048,
		PageScanIntervalSlots: 2048,
	})
	b := &Bridge{Index: i, Dev: d, LMP: lmp.Attach(d), net: n}
	b.node = n.addNode(d)
	b.node.bridge = b
	// Attribute the bridge's collisions to its lower piconet (it spends
	// half its presence in each; the attribution needs one owner).
	n.Coex.AdoptDevice(d, i)

	b.Members[0] = n.joinPiconet(b, i)
	bb0 := d.SuspendMembership()
	b.Members[0].BB = bb0
	b.Members[1] = n.joinPiconet(b, i+1)
	b.Members[1].BB = d.CaptureMembership()
	b.active = 1
	return b
}

// joinPiconet pages the bridge into piconet pi, opens the relay channel
// to its master, and records the piconet's clock offset. The bridge is
// left active in that piconet.
func (n *Net) joinPiconet(b *Bridge, pi int) *Membership {
	p := n.Coex.Piconets[pi]
	links := n.Sim.BuildPiconet(p.Master, b.Dev)
	m := &Membership{
		Piconet:     pi,
		Link:        b.Dev.MasterLink(),
		MasterLink:  links[0],
		clockOffset: b.Dev.Clock.Offset(),
	}
	m.Link.PacketType = n.cfg.PacketType
	m.MasterLink.PacketType = n.cfg.PacketType
	done := false
	b.node.mux.Connect(m.Link, relayPSM, func(ch *l2cap.Channel, err error) {
		if err != nil {
			panic("scatternet: bridge relay channel refused: " + err.Error())
		}
		m.Out = ch
		n.registerChannel(b.node, ch)
		done = true
	})
	n.runUntil(4096, "bridge relay channel setup", func() bool { return done })
	return m
}

// negotiatePresence runs the LMP timing handshake on both of b's links:
// slot offset first, then the sniff window that pins the bridge's
// presence in that piconet. Membership 1 is negotiated first (the
// bridge is already active there after its join), then the bridge
// switches to membership 0 for the second handshake.
func (n *Net) negotiatePresence(b *Bridge) {
	for _, mi := range []int{1, 0} {
		m := b.Members[mi]
		if b.active != mi {
			b.activate(mi)
		}
		m.AttemptEvenSlots = n.cfg.windowEvenSlots()
		m.SniffOffset = n.sniffOffsetFor(b, mi)
		accepted := false
		b.LMP.RequestPresence(m.Link, n.cfg.PresencePeriodSlots, m.AttemptEvenSlots,
			m.SniffOffset, n.slotOffsetUS(b, mi), func(ok bool) { accepted = ok })
		n.runUntil(4096, "presence negotiation", func() bool { return accepted })
	}
}

// sniffOffsetFor maps membership mi's absolute window start — the grid
// anchor plus half a period per membership index — into that piconet's
// even-slot index domain. The +1 even slot keeps the window strictly
// inside the absolute half-period after activation boundary rounding.
func (n *Net) sniffOffsetFor(b *Bridge, mi int) int {
	half := uint64(n.cfg.PresencePeriodSlots) * sim.SlotTicks / 2
	start := sim.Time(n.t0 + uint64(mi)*half)
	clk := (b.Dev.Clock.CLKN(start) + b.Members[mi].clockOffset) & btclock.Mask
	period := uint32(n.cfg.PresencePeriodSlots / 2) // even slots per period
	return int(((clk >> 2) + 1) % period)
}

// slotOffsetUS is the announced phase difference between the bridge's
// other piconet's TDD frame and membership mi's, in microseconds.
func (n *Net) slotOffsetUS(b *Bridge, mi int) uint16 {
	other := b.Members[1-mi].clockOffset
	this := b.Members[mi].clockOffset
	diff := (other - this) & 3 // half-slots within the 2-slot TDD frame
	return uint16(uint64(diff) * 3125 / 10)
}

// activate switches the bridge radio to membership mi.
func (b *Bridge) activate(mi int) {
	b.active = mi
	b.Dev.ActivateMembership(b.Members[mi].BB)
}

// startScheduler arms the presence scheduler: at every half-period
// boundary of the grid the bridge retunes to the membership whose
// window opens there. Scheduled on the kernel directly — membership
// switches must survive the state-generation bumps they themselves
// cause.
func (n *Net) startScheduler(b *Bridge) {
	half := uint64(n.cfg.PresencePeriodSlots) * sim.SlotTicks / 2
	now := uint64(n.Sim.K.Now())
	k := uint64(0)
	if now >= n.t0 {
		k = (now-n.t0)/half + 1
	}
	var step func(k uint64)
	step = func(k uint64) {
		b.activate(int(k % 2))
		n.Sim.K.At(sim.Time(n.t0+(k+1)*half), func() { step(k + 1) })
	}
	n.Sim.K.At(sim.Time(n.t0+k*half), func() { step(k) })
}

// startDrain arms the bridge's store-and-forward drain: every two slots
// it moves frames from the active membership's queue into its link, as
// long as the baseband queue stays shallow — so the backlog (and its
// statistics) live at L2CAP, and frames only drain during the piconet's
// presence window because only then does the master empty the link.
func (n *Net) startDrain(b *Bridge) {
	var tick func()
	tick = func() {
		b.drain()
		b.Dev.After(2, tick)
	}
	tick()
}

// drain moves queued frames for the active membership into its link.
func (b *Bridge) drain() {
	m := b.Members[b.active]
	if m.Out == nil {
		return
	}
	now := b.net.Sim.Now()
	moved := false
	for len(b.q[b.active]) > 0 && m.Link.QueueLen() < b.net.cfg.PumpDepth {
		f := b.q[b.active][0]
		b.q[b.active] = b.q[b.active][1:]
		b.FwdLatency.Add(float64(now - f.at))
		b.Forwarded++
		m.Out.Send(f.sdu)
		moved = true
	}
	if moved {
		b.QueueDepth.Observe(b.depth(), now)
	}
}

// enqueue books one frame for the membership that reaches neighbour.
func (b *Bridge) enqueue(neighbour string, sdu []byte) {
	mi := -1
	for i, m := range b.Members {
		if b.net.names[m.Link.Peer] == neighbour {
			mi = i
			break
		}
	}
	if mi < 0 {
		b.net.RouteMisses++
		return
	}
	if b.depth() >= b.net.cfg.MaxQueueFrames {
		b.Dropped++
		return
	}
	now := b.net.Sim.Now()
	b.q[mi] = append(b.q[mi], queuedFrame{sdu: sdu, at: now})
	b.QueueDepth.Observe(b.depth(), now)
}

// buildRoutes computes every node's next-hop table by breadth-first
// search over the relay topology. Deterministic: adjacency is walked in
// attach order.
func (n *Net) buildRoutes() {
	order := n.nodeOrder()
	for _, src := range order {
		nd := n.nodes[src]
		// BFS from src over neighbour lists.
		prev := map[string]string{src: ""}
		queue := []string{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range n.nodes[cur].peers {
				if _, seen := prev[nb]; seen {
					continue
				}
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
		for _, dst := range order {
			if dst == src {
				continue
			}
			// Walk back from dst to the neighbour of src on the path.
			hop, cur := "", dst
			for cur != "" && cur != src {
				hop, cur = cur, prev[cur]
			}
			if cur == src && hop != "" {
				nd.next[dst] = hop
			}
		}
	}
}

// nodeOrder lists node names deterministically: masters and slaves in
// build order, then bridges.
func (n *Net) nodeOrder() []string {
	var out []string
	for _, p := range n.Coex.Piconets {
		out = append(out, p.Master.Name())
		for _, sl := range p.Slaves {
			out = append(out, sl.Name())
		}
	}
	for _, b := range n.Bridges {
		out = append(out, b.Dev.Name())
	}
	return out
}

// route forwards sdu toward dst from nd: bridges queue it for the
// membership window, everyone else sends it straight down the link.
func (n *Net) route(nd *node, dst string, sdu []byte) {
	hop, ok := nd.next[dst]
	if !ok {
		n.RouteMisses++
		return
	}
	if nd.bridge != nil {
		nd.bridge.enqueue(hop, sdu)
		return
	}
	ch, ok := nd.chans[hop]
	if !ok {
		n.RouteMisses++
		return
	}
	ch.Send(sdu)
}

// onSDU handles a relay frame arriving at nd: deliver or forward.
func (n *Net) onSDU(nd *node, sdu []byte) {
	fr, ok := decodeFrame(sdu)
	if !ok {
		return
	}
	if fr.dst == nd.name {
		n.DeliveredBytes += len(fr.payload)
		lat := float64(n.Sim.Now() - fr.origin)
		n.E2ELatency.Add(lat)
		if int(fr.flow) < len(n.Flows) {
			f := n.Flows[fr.flow]
			f.DeliveredBytes += len(fr.payload)
			f.Latency.Add(lat)
		}
		return
	}
	n.route(nd, fr.dst, sdu)
}

// StartTraffic starts the given flows (DefaultFlow when none are
// passed): each origin keeps an SDU stream toward its destination,
// gated on its first-hop baseband queue so backpressure propagates to
// the bridges instead of piling up at the source link.
func (n *Net) StartTraffic(flows ...FlowSpec) {
	if len(flows) == 0 {
		flows = []FlowSpec{n.DefaultFlow()}
	}
	if len(flows) > 255 {
		panic("scatternet: at most 255 flows")
	}
	for _, spec := range flows {
		src, ok := n.nodes[spec.From]
		if !ok {
			panic("scatternet: unknown flow origin " + spec.From)
		}
		if _, ok := n.nodes[spec.To]; !ok {
			panic("scatternet: unknown flow destination " + spec.To)
		}
		if src.bridge != nil {
			panic("scatternet: bridges relay, they do not originate flows")
		}
		f := &Flow{FlowSpec: spec}
		idx := uint8(len(n.Flows))
		n.Flows = append(n.Flows, f)
		n.startPump(src, f, idx)
	}
}

// startPump arms one origin's SDU stream.
func (n *Net) startPump(src *node, f *Flow, idx uint8) {
	hop, ok := src.next[f.To]
	if !ok {
		panic("scatternet: no route from " + f.From + " to " + f.To)
	}
	ch := src.chans[hop]
	payload := make([]byte, n.cfg.SDUBytes)
	var tick func()
	tick = func() {
		if ch.Link().QueueLen() < n.cfg.PumpDepth {
			ch.Send(encodeFrame(idx, f.To, n.Sim.Now(), payload))
			f.SentBytes += len(payload)
		}
		src.dev.After(2, tick)
	}
	tick()
}

// frame is the decoded relay header.
type frame struct {
	flow    uint8
	dst     string
	origin  uint64 // origin send time in slots
	payload []byte
}

// encodeFrame serialises the relay header in front of the payload:
// flow index, destination name, origin timestamp.
func encodeFrame(flow uint8, dst string, origin uint64, payload []byte) []byte {
	if len(dst) > 255 {
		panic("scatternet: destination name too long")
	}
	out := make([]byte, 0, 2+len(dst)+8+len(payload))
	out = append(out, flow, uint8(len(dst)))
	out = append(out, dst...)
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], origin)
	out = append(out, ts[:]...)
	return append(out, payload...)
}

// decodeFrame parses a relay frame.
func decodeFrame(b []byte) (frame, bool) {
	if len(b) < 2 {
		return frame{}, false
	}
	dl := int(b[1])
	if len(b) < 2+dl+8 {
		return frame{}, false
	}
	return frame{
		flow:    b[0],
		dst:     string(b[2 : 2+dl]),
		origin:  binary.LittleEndian.Uint64(b[2+dl : 2+dl+8]),
		payload: b[2+dl+8:],
	}, true
}

// runUntil advances the kernel in slot chunks until cond holds, or
// panics after limitSlots.
func (n *Net) runUntil(limitSlots uint64, what string, cond func() bool) {
	deadline := n.Sim.K.Now() + sim.Time(sim.Slots(limitSlots))
	for !cond() && n.Sim.K.Now() < deadline {
		n.Sim.K.RunUntil(n.Sim.K.Now() + sim.Time(sim.Slots(16)))
	}
	if !cond() {
		panic("scatternet: " + what + " timed out")
	}
}

// ResetStats opens a fresh measurement window: delivery and latency
// accounting, bridge queue statistics and every device's counters and
// meters restart. Queued frames stay queued — the backlog is state,
// not statistics — and the fresh queue gauge is seeded with the
// current depth.
func (n *Net) ResetStats() {
	n.DeliveredBytes = 0
	n.RouteMisses = 0
	n.E2ELatency = stats.Sample{}
	for _, f := range n.Flows {
		f.SentBytes, f.DeliveredBytes = 0, 0
		f.Latency = stats.Sample{}
	}
	now := n.Sim.Now()
	for _, b := range n.Bridges {
		b.QueueDepth = stats.Occupancy{}
		b.QueueDepth.Observe(b.depth(), now)
		b.FwdLatency = stats.Sample{}
		b.Forwarded = 0
		b.Dropped = 0
		b.Dev.Counters = baseband.Counters{}
		core.ResetMeters(b.Dev)
	}
	n.Coex.ResetStats()
}

// Totals summarises the current measurement window.
type Totals struct {
	// DeliveredBytes is the end-to-end SDU payload delivered.
	DeliveredBytes int
	// ForwardedFrames counts frames relayed across all bridges;
	// DroppedFrames counts the ones the bounded queues refused.
	ForwardedFrames int
	DroppedFrames   int
	// FwdLatencyMeanSlots is the mean bridge store-and-forward latency.
	FwdLatencyMeanSlots float64
	// E2ELatencyMeanSlots is the mean end-to-end delivery latency.
	E2ELatencyMeanSlots float64
	// QueueMeanDepth and QueueMaxDepth describe the pooled bridge
	// backlog (time-weighted mean, absolute max).
	QueueMeanDepth float64
	QueueMaxDepth  int
	// MembershipSwitches counts bridge radio retunes.
	MembershipSwitches int
	// RouteMisses counts undeliverable frames (0 in a healthy net).
	RouteMisses int
}

// Totals reads the current window's counters without closing it.
func (n *Net) Totals() Totals {
	t := Totals{
		DeliveredBytes:      n.DeliveredBytes,
		E2ELatencyMeanSlots: n.E2ELatency.Mean(),
		RouteMisses:         n.RouteMisses,
	}
	now := n.Sim.Now()
	var q stats.Occupancy
	var fwd stats.Sample
	for _, b := range n.Bridges {
		t.ForwardedFrames += b.Forwarded
		t.DroppedFrames += b.Dropped
		t.MembershipSwitches += b.Dev.Counters.MembershipSwitches
		qc := b.QueueDepth // copy; Finish must not disturb the live gauge
		qc.Finish(now)
		q.Merge(&qc)
		fwd.Merge(&b.FwdLatency)
	}
	t.FwdLatencyMeanSlots = fwd.Mean()
	t.QueueMeanDepth = q.Mean()
	t.QueueMaxDepth = q.Max
	return t
}

// GoodputKbps converts delivered payload over a slot horizon into
// kbit/s.
func GoodputKbps(bytes int, slots uint64) float64 {
	return coex.GoodputKbps(bytes, slots)
}
