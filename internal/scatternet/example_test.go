package scatternet_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scatternet"
)

// Build chains two piconets through one bridge: the bridge is paged
// into both, pins a presence window on each link over the LMP
// slot-offset/sniff handshake, and then timeshares its radio between
// the two hop sequences while relaying L2CAP frames store-and-forward.
func ExampleBuild() {
	s := core.NewSimulation(core.Options{Seed: 7})
	net := scatternet.Build(s, scatternet.Config{Piconets: 2})
	net.StartTraffic() // master p0 -> slave of p1, across the bridge

	s.RunSlots(uint64(3 * 256)) // let the presence pipeline fill
	net.ResetStats()
	s.RunSlots(8000)

	tot := net.Totals()
	fmt.Println("bridges:", len(net.Bridges))
	fmt.Println("delivered across piconets:", tot.DeliveredBytes > 0)
	fmt.Println("bridge forwarded frames:", tot.ForwardedFrames > 0)
	fmt.Println("radio timeshared:", tot.MembershipSwitches > 40)
	fmt.Println("route misses:", tot.RouteMisses)
	// Output:
	// bridges: 1
	// delivered across piconets: true
	// bridge forwarded frames: true
	// radio timeshared: true
	// route misses: 0
}
