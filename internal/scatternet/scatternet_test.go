package scatternet

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// build stands a scatternet up and starts the given flows.
func build(seed uint64, cfg Config, flows ...FlowSpec) *Net {
	n := New(core.Options{Seed: seed}, cfg)
	n.StartTraffic(flows...)
	return n
}

// measure runs a settle window, resets, and measures for slots.
func measure(n *Net, slots uint64) Totals {
	n.Sim.RunSlots(uint64(3 * n.cfg.PresencePeriodSlots))
	n.ResetStats()
	n.Sim.RunSlots(slots)
	return n.Totals()
}

func TestBridgeDeliversAcrossPiconets(t *testing.T) {
	n := build(7, Config{Piconets: 2})
	tot := measure(n, 8000)
	if tot.DeliveredBytes == 0 {
		t.Fatal("no end-to-end delivery across the bridge")
	}
	if tot.RouteMisses != 0 {
		t.Fatalf("%d route misses", tot.RouteMisses)
	}
	if tot.ForwardedFrames == 0 {
		t.Fatal("bridge forwarded nothing")
	}
	// The radio must actually have timeshared: 8000 slots / half-period
	// of 128 slots is ~62 boundaries.
	if tot.MembershipSwitches < 40 {
		t.Fatalf("only %d membership switches over 8000 slots", tot.MembershipSwitches)
	}
	// With a saturating source the bounded queue pins the forwarding
	// latency near capacity/drain-rate; far beyond that means the bound
	// stopped working and the queue diverged.
	maxLat := float64(n.cfg.MaxQueueFrames) * float64(n.cfg.PresencePeriodSlots) / 4
	if tot.FwdLatencyMeanSlots <= 0 || tot.FwdLatencyMeanSlots > maxLat {
		t.Fatalf("forwarding latency %v slots implausible (bound %v)", tot.FwdLatencyMeanSlots, maxLat)
	}
	if tot.E2ELatencyMeanSlots < tot.FwdLatencyMeanSlots {
		t.Fatalf("end-to-end latency %v below bridge latency %v",
			tot.E2ELatencyMeanSlots, tot.FwdLatencyMeanSlots)
	}
	if tot.QueueMaxDepth == 0 {
		t.Fatal("queue gauge never saw the backlog")
	}
	f := n.Flows[0]
	if f.DeliveredBytes != tot.DeliveredBytes {
		t.Fatalf("flow accounting (%d) disagrees with net accounting (%d)",
			f.DeliveredBytes, tot.DeliveredBytes)
	}
}

func TestReverseFlowUsesOppositeWindows(t *testing.T) {
	n := build(11, Config{Piconets: 2},
		FlowSpec{From: SlaveName(1, 1), To: MasterName(0)})
	tot := measure(n, 8000)
	if tot.DeliveredBytes == 0 {
		t.Fatal("reverse flow delivered nothing")
	}
	if tot.RouteMisses != 0 {
		t.Fatalf("%d route misses", tot.RouteMisses)
	}
}

func TestChainOfThreePiconets(t *testing.T) {
	n := build(13, Config{Piconets: 3})
	tot := measure(n, 12000)
	if len(n.Bridges) != 2 {
		t.Fatalf("chain of 3 needs 2 bridges, got %d", len(n.Bridges))
	}
	if tot.DeliveredBytes == 0 {
		t.Fatal("no delivery across a two-bridge chain")
	}
	for _, b := range n.Bridges {
		if b.Forwarded == 0 {
			t.Fatalf("bridge %d forwarded nothing", b.Index)
		}
	}
}

func TestGoodputMonotoneInPresenceDuty(t *testing.T) {
	delivered := func(duty float64) int {
		n := build(17, Config{Piconets: 2, PresenceDuty: duty})
		return measure(n, 8000).DeliveredBytes
	}
	lo, mid, hi := delivered(0.3), delivered(0.6), delivered(0.9)
	if lo <= 0 {
		t.Fatal("no goodput at duty 0.3")
	}
	if !(lo < mid && mid < hi) {
		t.Fatalf("goodput not monotone in duty: %d, %d, %d bytes", lo, mid, hi)
	}
}

// TestShortPeriodBoundaries stresses the retune boundary: with a 64-slot
// period the bridge switches piconets every 32 slots, so mid-exchange
// abandons happen constantly and everything must still flow.
func TestShortPeriodBoundaries(t *testing.T) {
	n := build(19, Config{Piconets: 2, PresencePeriodSlots: 64, PresenceDuty: 1, GuardEvenSlots: 2})
	tot := measure(n, 8000)
	if tot.DeliveredBytes == 0 {
		t.Fatal("no delivery under rapid timesharing")
	}
	if tot.MembershipSwitches < 200 {
		t.Fatalf("only %d switches with a 64-slot period", tot.MembershipSwitches)
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	run := func() string {
		n := build(23, Config{Piconets: 2})
		tot := measure(n, 4000)
		return fmt.Sprintf("%+v", tot)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical seeds diverged:\n%s\n%s", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		cfg.normalize()
	}
	mustPanic("1 piconet", Config{Piconets: 1})
	mustPanic("odd period", Config{PresencePeriodSlots: 130})
	mustPanic("tiny period", Config{PresencePeriodSlots: 32})
	mustPanic("duty over 1", Config{PresenceDuty: 1.5})
	mustPanic("window eaten by guard", Config{PresenceDuty: 0.03})
	mustPanic("too many members", Config{Piconets: 3, Slaves: 6})
	ok := Config{}
	ok.normalize()
	if ok.Piconets != 2 || ok.PresencePeriodSlots != 256 || ok.PresenceDuty != 0.8 {
		t.Fatalf("defaults wrong: %+v", ok)
	}
}
