package runner

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// collatzLen is a tiny deterministic "simulation": the trial result
// depends only on its inputs, like a seeded kernel run.
func collatzLen(seed uint64, p int) int {
	n := seed + uint64(p)*17
	steps := 0
	for n > 1 {
		if n%2 == 0 {
			n /= 2
		} else {
			n = 3*n + 1
		}
		steps++
	}
	return steps
}

func testSweep(points, replicas int) Sweep[int, int] {
	pts := make([]int, points)
	for i := range pts {
		pts[i] = i * 3
	}
	return Sweep[int, int]{
		Name:     "test",
		Points:   pts,
		Replicas: replicas,
		Seed:     func(point, replica int) uint64 { return uint64(point)<<16 | uint64(replica) },
		Trial:    collatzLen,
	}
}

func TestRunShapeAndPlacement(t *testing.T) {
	sw := testSweep(5, 7)
	res := sw.Run(Config{Workers: Serial})
	if len(res) != 5 {
		t.Fatalf("points = %d", len(res))
	}
	for p, rs := range res {
		if len(rs) != 7 {
			t.Fatalf("point %d has %d replicas", p, len(rs))
		}
		for r, got := range rs {
			want := collatzLen(sw.Seed(p, r), sw.Points[p])
			if got != want {
				t.Fatalf("res[%d][%d] = %d, want %d", p, r, got, want)
			}
		}
	}
}

func TestRunDeterministicAcrossSchedules(t *testing.T) {
	sw := testSweep(8, 40)
	want := sw.Run(Config{Workers: Serial})
	for _, cfg := range []Config{
		{Workers: 1},
		{Workers: 4},
		{Workers: 16},
		{Workers: 4, Jobs: 7},
		{Workers: 3, Jobs: 1000}, // batch larger than the sweep
	} {
		got := sw.Run(cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("config %+v changed results", cfg)
		}
	}
}

func TestRunProgressCountsEveryTrial(t *testing.T) {
	sw := testSweep(4, 9)
	var calls, last atomic.Int64
	sw.Run(Config{Workers: 4, Progress: func(name string, done, total int) {
		if name != "test" {
			t.Errorf("progress name = %q", name)
		}
		if total != 36 {
			t.Errorf("total = %d", total)
		}
		calls.Add(1)
		if int64(done) > last.Load() {
			last.Store(int64(done))
		}
	}})
	if calls.Load() != 36 {
		t.Fatalf("progress calls = %d, want 36 (one per trial at batch 1)", calls.Load())
	}
	if last.Load() != 36 {
		t.Fatalf("final done = %d", last.Load())
	}
}

func TestRunContextCancel(t *testing.T) {
	// A context canceled mid-sweep stops the replica loop: some trials
	// ran, the rest stayed at their zero value, and Run returned instead
	// of draining the whole cursor. The trial itself cancels after a
	// fixed number of completions so the test is schedule-independent.
	for _, workers := range []int{Serial, 1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		sw := testSweep(10, 20)
		trial := sw.Trial
		sw.Trial = func(seed uint64, p int) int {
			if ran.Add(1) == 5 {
				cancel()
			}
			return trial(seed, p)
		}
		res := sw.Run(Config{Workers: workers, Context: ctx})
		if len(res) != 10 || len(res[0]) != 20 {
			t.Fatalf("workers %d: result shape %dx%d", workers, len(res), len(res[0]))
		}
		got := int(ran.Load())
		if got >= 200 {
			t.Fatalf("workers %d: cancellation did not stop the sweep (%d trials ran)", workers, got)
		}
		if got < 5 {
			t.Fatalf("workers %d: only %d trials ran before cancel", workers, got)
		}
		cancel()
	}

	// A pre-canceled context runs nothing at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	sw := testSweep(3, 3)
	sw.Trial = func(seed uint64, p int) int { ran.Add(1); return 0 }
	sw.Run(Config{Workers: Serial, Context: ctx})
	if ran.Load() != 0 {
		t.Fatalf("pre-canceled context ran %d trials", ran.Load())
	}
}

func TestRunEmptyAndDegenerate(t *testing.T) {
	sw := testSweep(0, 5)
	if res := sw.Run(Config{}); len(res) != 0 {
		t.Fatalf("empty sweep returned %d points", len(res))
	}
	// Replicas < 1 is clamped to one replica.
	sw = testSweep(2, 0)
	res := sw.Run(Config{})
	if len(res) != 2 || len(res[0]) != 1 {
		t.Fatalf("degenerate sweep shape: %d points, %d replicas", len(res), len(res[0]))
	}
}

func TestDefaultSeedIsPerTrialUnique(t *testing.T) {
	sw := Sweep[int, uint64]{
		Points:   []int{0, 1, 2},
		Replicas: 50,
		Trial:    func(seed uint64, _ int) uint64 { return seed },
	}
	res := sw.Run(Config{Workers: 2})
	seen := make(map[uint64]bool)
	for _, rs := range res {
		for _, s := range rs {
			if seen[s] {
				t.Fatalf("duplicate default seed %d", s)
			}
			seen[s] = true
		}
	}
}

func TestFlattenAndCross(t *testing.T) {
	got := Flatten([][]int{{1, 9}, {2}, {3}})
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Flatten = %v", got)
	}
	pairs := Cross([]string{"a", "b"}, []int{1, 2, 3})
	if len(pairs) != 6 || pairs[0] != (Pair[string, int]{"a", 1}) || pairs[5] != (Pair[string, int]{"b", 3}) {
		t.Fatalf("Cross = %v", pairs)
	}
}

func TestDefaultWorkersOverride(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers fallback = %d", DefaultWorkers())
	}
	// Serial default still runs correctly.
	SetDefaultWorkers(Serial)
	sw := testSweep(3, 4)
	if !reflect.DeepEqual(sw.Run(Config{}), sw.Run(Config{Workers: 2})) {
		t.Fatal("serial default diverged from pool run")
	}
}

func TestReducePoints(t *testing.T) {
	sw := testSweep(3, 5)
	res := sw.Run(Config{Workers: 2})
	sums := ReducePoints(sw.Points, res, func(p int, rs []int) string {
		total := 0
		for _, r := range rs {
			total += r
		}
		return fmt.Sprintf("%d:%d", p, total)
	})
	if len(sums) != 3 {
		t.Fatalf("sums = %v", sums)
	}
	for i, s := range sums {
		want := 0
		for r := 0; r < 5; r++ {
			want += collatzLen(sw.Seed(i, r), sw.Points[i])
		}
		if s != fmt.Sprintf("%d:%d", sw.Points[i], want) {
			t.Fatalf("sums[%d] = %q", i, s)
		}
	}
}
