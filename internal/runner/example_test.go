package runner_test

import (
	"fmt"

	"repro/internal/runner"
)

// A Sweep declares the axes of an embarrassingly parallel experiment;
// Run fans the (point, replica) trials out across a worker pool and
// stores results by index, so any worker count yields identical output.
func ExampleSweep_Run() {
	sw := runner.Sweep[int, int]{
		Name:     "squares",
		Points:   []int{1, 2, 3},
		Replicas: 2,
		Trial:    func(seed uint64, p int) int { return p * p },
	}
	results := sw.Run(runner.Config{Workers: runner.Serial})
	fmt.Println(results)

	// ReducePoints folds the replicas of each point, in replica order.
	sums := runner.ReducePoints(sw.Points, results, func(p int, rs []int) int {
		total := 0
		for _, r := range rs {
			total += r
		}
		return total
	})
	fmt.Println(sums)
	// Output:
	// [[1 1] [4 4] [9 9]]
	// [2 8 18]
}
