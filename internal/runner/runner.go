// Package runner is the declarative trial engine behind the experiments
// layer. The paper's evaluation is embarrassingly parallel — every data
// point is an independent (parameter, seed) replica of a deterministic
// simulation — so a Sweep describes the axes (parameter points, replica
// count, seed derivation) plus a Trial function, and the engine fans the
// replicas out across a worker pool.
//
// Determinism is the contract: a Trial must build its own simulation
// world (its own sim.Kernel) from nothing but the seed and the parameter
// point, so results depend only on (point, replica) and never on the
// execution schedule. The engine stores each result at its (point,
// replica) index, which makes serial, single-worker and N-worker runs
// produce byte-identical tables.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Serial is the Workers value that runs every trial inline on the
// calling goroutine, with no pool at all.
const Serial = -1

// Config controls how a sweep is executed. The zero value uses the
// package defaults (see SetDefaultWorkers / SetDefaultJobs).
type Config struct {
	// Workers is the pool size: 0 uses the package default (which in
	// turn defaults to GOMAXPROCS), Serial (-1) runs inline on the
	// calling goroutine, n >= 1 spawns exactly n workers.
	Workers int
	// Jobs is the batch size — how many consecutive replicas one
	// scheduled job covers. Larger batches amortise scheduling overhead
	// for very short trials; 0 uses the package default (1).
	Jobs int
	// Progress, when non-nil, overrides the package-level progress hook
	// for this run. It is called with the completed and total trial
	// counts after every batch, from whichever worker finished it.
	// Prefer this over SetProgress wherever runs can overlap — the
	// service layer streams one channel per job, and a global hook
	// would interleave them.
	Progress func(name string, done, total int)
	// Context, when non-nil, cancels the replica loop: once it is done,
	// no further trial starts (in-flight trials finish their current
	// batch entry) and Run returns with the unreached results left at
	// their zero values. Callers that care whether the sweep completed
	// check Context.Err() — a canceled run's results are partial by
	// construction and must not be reported as a campaign.
	Context context.Context
}

var (
	defaultWorkers atomic.Int64 // 0 => GOMAXPROCS
	defaultJobs    atomic.Int64 // 0 => 1

	progressMu   sync.Mutex
	progressHook func(name string, done, total int)
)

// SetDefaultWorkers sets the pool size used by sweeps whose Config
// leaves Workers at 0. n = 0 restores the GOMAXPROCS default; Serial
// (-1) makes every such sweep run inline. cmd binaries wire their
// -workers flag here so the experiments API needs no plumbing.
func SetDefaultWorkers(n int) { defaultWorkers.Store(int64(n)) }

// DefaultWorkers reports the effective default pool size.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n != 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultJobs sets the batch size used by sweeps whose Config leaves
// Jobs at 0 (values < 1 restore the default of one replica per job).
func SetDefaultJobs(n int) { defaultJobs.Store(int64(n)) }

// SetProgress installs a package-level progress hook streamed by every
// sweep that does not carry its own (nil disables). cmd/btexp uses this
// to render live per-sweep progress on stderr.
func SetProgress(fn func(name string, done, total int)) {
	progressMu.Lock()
	progressHook = fn
	progressMu.Unlock()
}

func defaultProgress() func(name string, done, total int) {
	progressMu.Lock()
	defer progressMu.Unlock()
	return progressHook
}

// Sweep describes one embarrassingly parallel experiment: Replicas
// independent trials at each point of Points.
type Sweep[P, R any] struct {
	// Name labels the sweep in progress reports.
	Name string
	// Points are the parameter axis (BER points, Tsniff values, config
	// variants — anything the Trial understands).
	Points []P
	// Replicas is the number of independent trials per point (>= 1).
	Replicas int
	// Seed derives the trial seed from the point and replica indices.
	// Nil uses uint64(replica)*1_000_003 + uint64(point) + 1. The seed,
	// not the schedule, must be the only source of randomness.
	Seed func(point, replica int) uint64
	// Trial runs one replica and returns its result. It must be pure up
	// to the seed: no shared mutable state, its own simulation world.
	Trial func(seed uint64, p P) R
}

// Run executes the sweep under cfg and returns the results indexed as
// [point][replica]. The indexing — not completion order — defines the
// layout, so any worker count yields identical output.
func (s Sweep[P, R]) Run(cfg Config) [][]R {
	if s.Trial == nil {
		panic("runner: Sweep.Trial is nil")
	}
	replicas := s.Replicas
	if replicas < 1 {
		replicas = 1
	}
	seedOf := s.Seed
	if seedOf == nil {
		seedOf = func(point, replica int) uint64 {
			return uint64(replica)*1_000_003 + uint64(point) + 1
		}
	}
	results := make([][]R, len(s.Points))
	for i := range results {
		results[i] = make([]R, replicas)
	}
	total := len(s.Points) * replicas
	if total == 0 {
		return results
	}

	progress := cfg.Progress
	if progress == nil {
		progress = defaultProgress()
	}
	var done atomic.Int64
	report := func(n int) {
		if progress == nil {
			return
		}
		progress(s.Name, int(done.Add(int64(n))), total)
	}

	workers := cfg.Workers
	if workers == 0 {
		workers = DefaultWorkers()
	}
	if workers <= Serial {
		workers = Serial
	}

	// One flat trial index per (point, replica); a job is a batch of
	// consecutive indices claimed with an atomic cursor. When neither
	// the config nor the package default pins a batch size, size jobs so
	// each worker claims the cursor a handful of times: per-replica jobs
	// make very short trials pay an atomic round-trip and a shared
	// cache-line write into the results rows for every replica, which is
	// measurable contention at micro-trial rates. Batching by consecutive
	// indices also keeps each results row written by one worker. The
	// (point, replica) indexing is untouched, so the output is identical.
	batch := cfg.Jobs
	if batch < 1 {
		if batch = int(defaultJobs.Load()); batch < 1 {
			if workers > 0 && total > workers {
				batch = total / (workers * 8)
			}
			if batch < 1 {
				batch = 1
			}
		}
	}
	// Cancellation gates the replica loop itself: every batch claim —
	// serial or pooled — re-checks the context, so a canceled campaign
	// stops within one trial rather than one batch row. Trials that
	// want to stop mid-replica additionally watch the same context from
	// inside their Trial closure (the service layer runs its simulation
	// horizon in slot chunks for exactly this).
	canceled := func() bool {
		return cfg.Context != nil && cfg.Context.Err() != nil
	}
	runRange := func(start, end int) {
		for j := start; j < end; j++ {
			if canceled() {
				return
			}
			point, replica := j/replicas, j%replicas
			results[point][replica] = s.Trial(seedOf(point, replica), s.Points[point])
		}
		report(end - start)
	}

	if workers == Serial {
		for start := 0; start < total && !canceled(); start += batch {
			runRange(start, min(start+batch, total))
		}
		return results
	}
	if max := (total + batch - 1) / batch; workers > max {
		workers = max
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(batch))) - batch
				if start >= total || canceled() {
					return
				}
				runRange(start, min(start+batch, total))
			}
		}()
	}
	wg.Wait()
	return results
}

// ForkSweep is a Sweep whose replicas fork from one per-point
// checkpoint instead of each settling its own world. Prepare runs once
// per point, serially and in point order (it typically builds a world,
// runs the settle horizon and snapshots it); the replicas then restore
// from the captured bytes in parallel, each under its own fork seed.
// Replica 0 forks with seed 0 — byte-identical to the straight
// continuation of the settled world — and every later replica perturbs
// the arm's RNG streams with its sweep-derived seed.
type ForkSweep[P, R any] struct {
	// Name labels the sweep in progress reports.
	Name string
	// Points are the parameter axis.
	Points []P
	// Replicas is the number of forks per point (>= 1).
	Replicas int
	// Seed derives the settle seed (replica 0) and the fork seeds
	// (replicas >= 1) like Sweep.Seed. Nil uses the same default.
	Seed func(point, replica int) uint64
	// Prepare settles one world for p under the point's base seed and
	// returns its serialized checkpoint.
	Prepare func(seed uint64, p P) ([]byte, error)
	// Trial restores one replica from the checkpoint bytes under
	// forkSeed (0 = resume the captured streams exactly) and measures.
	Trial func(ck []byte, forkSeed uint64, p P) R
}

// Run executes the fork sweep under cfg: every point's Prepare first,
// then the replica fan-out with the same (point, replica) result
// layout as Sweep.Run. A Prepare error aborts before any trial runs.
func (s ForkSweep[P, R]) Run(cfg Config) ([][]R, error) {
	if s.Prepare == nil || s.Trial == nil {
		panic("runner: ForkSweep needs Prepare and Trial")
	}
	seedOf := s.Seed
	if seedOf == nil {
		seedOf = func(point, replica int) uint64 {
			return uint64(replica)*1_000_003 + uint64(point) + 1
		}
	}
	cks := make([][]byte, len(s.Points))
	for i, p := range s.Points {
		if cfg.Context != nil && cfg.Context.Err() != nil {
			return nil, cfg.Context.Err()
		}
		ck, err := s.Prepare(seedOf(i, 0), p)
		if err != nil {
			return nil, err
		}
		cks[i] = ck
	}
	idx := make([]int, len(s.Points))
	for i := range idx {
		idx[i] = i
	}
	inner := Sweep[int, R]{
		Name:     s.Name,
		Points:   idx,
		Replicas: s.Replicas,
		Seed: func(point, replica int) uint64 {
			if replica == 0 {
				return 0 // replica 0 resumes the settled streams exactly
			}
			return seedOf(point, replica)
		},
		Trial: func(seed uint64, pi int) R {
			return s.Trial(cks[pi], seed, s.Points[pi])
		},
	}
	return inner.Run(cfg), nil
}

// ReducePoints folds the replica results of each point — in replica
// order, so reductions built on order-sensitive accumulators stay
// deterministic — into one output row per point.
func ReducePoints[P, R, Out any](points []P, results [][]R, reduce func(p P, rs []R) Out) []Out {
	out := make([]Out, len(points))
	for i, p := range points {
		out[i] = reduce(p, results[i])
	}
	return out
}

// Flatten returns the first replica of every point — the result shape
// of single-replica sweeps, where each point is one measurement.
func Flatten[R any](results [][]R) []R {
	out := make([]R, len(results))
	for i, rs := range results {
		out[i] = rs[0]
	}
	return out
}

// Pair is one cell of a two-axis sweep.
type Pair[A, B any] struct {
	A A
	B B
}

// Cross returns the row-major cross product of two axes, the point set
// for sweeps over e.g. (packet type, BER).
func Cross[A, B any](as []A, bs []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(as)*len(bs))
	for _, a := range as {
		for _, b := range bs {
			out = append(out, Pair[A, B]{a, b})
		}
	}
	return out
}
