// Package btclock models the 28-bit Bluetooth native clock (CLKN): a
// free-running 3.2 kHz counter every device owns, the piconet clock CLK
// derived from the master's CLKN, and the offset arithmetic slaves use to
// stay synchronised after the page procedure. The paper's synchronisation
// behaviour — who knows whose clock, and when — lives here.
package btclock

import "repro/internal/sim"

// Mask keeps clock values inside the 28-bit counter.
const Mask = (1 << 28) - 1

// Clock is a device's view of a Bluetooth clock: the native counter is
// the simulation time (in half slots) plus the device's power-on phase;
// the piconet clock adds a learned offset toward the master's native
// clock.
type Clock struct {
	phase  uint32 // native phase: CLKN at simulation time zero
	offset uint32 // CLK = CLKN + offset (mod 2^28); zero for a master
}

// New returns a clock with the given power-on phase, in half slots.
// Real devices boot at arbitrary times, so experiments draw phases at
// random; phase 0 aligns CLKN with the simulation clock.
func New(phase uint32) *Clock {
	return &Clock{phase: phase & Mask}
}

// ticksPerCLKN is the kernel ticks per CLKN increment (312.5 µs).
const ticksPerCLKN = sim.HalfSlotTicks

// CLKN returns the 28-bit native clock at simulation time t.
func (c *Clock) CLKN(t sim.Time) uint32 {
	return (uint32(uint64(t)/ticksPerCLKN) + c.phase) & Mask
}

// CLK returns the piconet clock at time t (native clock plus offset).
func (c *Clock) CLK(t sim.Time) uint32 {
	return (c.CLKN(t) + c.offset) & Mask
}

// Phase returns the power-on phase, so a checkpoint can rebuild the
// clock with New(Phase()) + SetOffset(Offset()).
func (c *Clock) Phase() uint32 { return c.phase }

// Offset returns the current CLKN→CLK offset.
func (c *Clock) Offset() uint32 { return c.offset }

// SetOffset installs a new offset, as the slave does when the FHS packet
// delivers the master's clock during page response.
func (c *Clock) SetOffset(off uint32) { c.offset = off & Mask }

// SyncTo computes and installs the offset that makes CLK equal the
// master clock value observed at time t (from a received FHS).
func (c *Clock) SyncTo(masterCLK uint32, t sim.Time) {
	c.offset = (masterCLK - c.CLKN(t)) & Mask
}

// DropSync clears the offset (detach / reset).
func (c *Clock) DropSync() { c.offset = 0 }

// NextTickTime returns the earliest simulation time >= t at which the
// native clock satisfies CLKN mod modulus == residue. It panics if
// modulus is not a power of two (the protocol only uses 2, 4, and slot
// multiples).
func (c *Clock) NextTickTime(t sim.Time, modulus, residue uint32) sim.Time {
	if modulus == 0 || modulus&(modulus-1) != 0 {
		panic("btclock: modulus must be a power of two")
	}
	// Round t up to the next CLKN boundary, then step whole CLKN ticks.
	base := (uint64(t) + ticksPerCLKN - 1) / ticksPerCLKN * ticksPerCLKN
	curAtBase := (uint32(base/ticksPerCLKN) + c.phase) & Mask
	delta := (residue - curAtBase) & (modulus - 1)
	return sim.Time(base + uint64(delta)*ticksPerCLKN)
}

// SlotStart reports whether the native clock is at the start of a slot
// (CLKN even) at time t, assuming t lies on a CLKN boundary.
func (c *Clock) SlotStart(t sim.Time) bool { return c.CLKN(t)&1 == 0 }

// EstimatedClock is another device's clock as learned from an FHS packet:
// the estimate may later drift or be offset for testing estimate errors.
type EstimatedClock struct {
	base  *Clock
	delta uint32 // estimate = owner's CLKN + delta
}

// Estimate captures target's clock as seen through owner's native clock
// at time t, with an optional error in half slots (positive = estimate
// runs fast).
func Estimate(owner *Clock, targetCLKN uint32, t sim.Time, errHalfSlots int32) *EstimatedClock {
	delta := (targetCLKN - owner.CLKN(t) + uint32(errHalfSlots)) & Mask
	return &EstimatedClock{base: owner, delta: delta}
}

// CLKE returns the estimated clock at time t.
func (e *EstimatedClock) CLKE(t sim.Time) uint32 {
	return (e.base.CLKN(t) + e.delta) & Mask
}
