package btclock

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCLKNAdvancesEveryHalfSlot(t *testing.T) {
	c := New(0)
	if c.CLKN(0) != 0 {
		t.Fatal("CLKN(0) != 0 with zero phase")
	}
	if c.CLKN(sim.HalfSlotTicks) != 1 {
		t.Fatal("CLKN must increment each 312.5us")
	}
	if c.CLKN(sim.HalfSlotTicks-1) != 0 {
		t.Fatal("CLKN incremented early")
	}
	if c.CLKN(sim.SlotTicks*10) != 20 {
		t.Fatal("10 slots must be 20 CLKN ticks")
	}
}

func TestPhaseWrap(t *testing.T) {
	c := New(Mask) // starts at max value
	if c.CLKN(0) != Mask {
		t.Fatal("phase not applied")
	}
	if c.CLKN(sim.HalfSlotTicks) != 0 {
		t.Fatal("CLKN must wrap at 2^28")
	}
}

func TestSyncToMakesCLKAgree(t *testing.T) {
	f := func(masterPhase, slavePhase uint32, when uint16) bool {
		m := New(masterPhase)
		s := New(slavePhase)
		t0 := sim.Time(uint64(when) * sim.HalfSlotTicks)
		s.SyncTo(m.CLK(t0), t0)
		// After sync, slave CLK tracks master CLK at all future times.
		for dt := uint64(0); dt < 10; dt++ {
			ti := t0 + sim.Time(dt*sim.SlotTicks)
			if s.CLK(ti) != m.CLK(ti) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDropSync(t *testing.T) {
	s := New(5)
	s.SetOffset(100)
	if s.Offset() != 100 {
		t.Fatal("offset not set")
	}
	if s.CLK(0) != 105 {
		t.Fatalf("CLK = %d, want 105", s.CLK(0))
	}
	s.DropSync()
	if s.CLK(0) != s.CLKN(0) {
		t.Fatal("DropSync must restore CLK == CLKN")
	}
}

func TestNextTickTime(t *testing.T) {
	c := New(0)
	// From t=1 (mid first half-slot), the next CLKN ≡ 0 (mod 4) is CLKN=4.
	got := c.NextTickTime(1, 4, 0)
	if got != sim.Time(4*sim.HalfSlotTicks) {
		t.Fatalf("NextTickTime = %v, want %v", got, sim.Time(4*sim.HalfSlotTicks))
	}
	// Exactly on a satisfying boundary: stays there.
	at := sim.Time(8 * sim.HalfSlotTicks)
	if c.NextTickTime(at, 4, 0) != at {
		t.Fatal("NextTickTime must not skip a satisfying boundary")
	}
	// Master TX slots: CLKN ≡ 0 (mod 4); from one, the next is 4 ticks on.
	if c.NextTickTime(at+1, 4, 0) != at+sim.Time(4*sim.HalfSlotTicks) {
		t.Fatal("NextTickTime from just past a boundary wrong")
	}
}

func TestNextTickTimeResidues(t *testing.T) {
	c := New(3) // phase offsets the residues
	tt := c.NextTickTime(0, 4, 2)
	if c.CLKN(tt)%4 != 2 {
		t.Fatalf("NextTickTime landed on CLKN %d (mod 4 = %d)", c.CLKN(tt), c.CLKN(tt)%4)
	}
	if uint64(tt)%sim.HalfSlotTicks != 0 {
		t.Fatal("NextTickTime must land on a CLKN boundary")
	}
}

func TestNextTickTimePanicsOnBadModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two modulus did not panic")
		}
	}()
	New(0).NextTickTime(0, 3, 0)
}

func TestEstimate(t *testing.T) {
	owner := New(1000)
	targetCLKN := uint32(5000)
	e := Estimate(owner, targetCLKN, 0, 0)
	if e.CLKE(0) != 5000 {
		t.Fatalf("CLKE(0) = %d", e.CLKE(0))
	}
	// The estimate advances in lockstep with real time.
	if e.CLKE(sim.HalfSlotTicks*7) != 5007 {
		t.Fatalf("CLKE after 7 ticks = %d", e.CLKE(sim.HalfSlotTicks*7))
	}
	// An estimate error shifts the view.
	e2 := Estimate(owner, targetCLKN, 0, -2)
	if e2.CLKE(0) != 4998 {
		t.Fatalf("CLKE with error = %d", e2.CLKE(0))
	}
}

func TestSlotStart(t *testing.T) {
	c := New(0)
	if !c.SlotStart(0) {
		t.Fatal("t=0 is a slot start for phase 0")
	}
	if c.SlotStart(sim.HalfSlotTicks) {
		t.Fatal("half-slot boundary is not a slot start")
	}
	odd := New(1)
	if odd.SlotStart(0) {
		t.Fatal("odd phase at t=0 is mid-slot")
	}
}
