package coding

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/sim"
)

func randVec(r *sim.Rand, n int) *bits.Vec {
	v := bits.NewVec(n)
	for i := 0; i < n; i++ {
		v.AppendBit(uint8(r.Uint64()))
	}
	return v
}

func TestFEC13RoundTrip(t *testing.T) {
	r := sim.NewRand(1)
	for trial := 0; trial < 50; trial++ {
		in := randVec(r, 18)
		enc := EncodeFEC13(in)
		if enc.Len() != 54 {
			t.Fatalf("encoded len = %d", enc.Len())
		}
		dec, corrected, ok := DecodeFEC13(enc)
		if !ok || corrected != 0 || !dec.Equal(in) {
			t.Fatalf("clean round trip failed (ok=%v corrected=%d)", ok, corrected)
		}
	}
}

func TestFEC13CorrectsSingleErrorPerTriple(t *testing.T) {
	r := sim.NewRand(2)
	in := randVec(r, 18)
	enc := EncodeFEC13(in)
	// Flip exactly one bit in every triple.
	for i := 0; i < enc.Len(); i += 3 {
		enc.FlipBit(i + r.Intn(3))
	}
	dec, corrected, ok := DecodeFEC13(enc)
	if !ok || !dec.Equal(in) {
		t.Fatal("single error per triple not corrected")
	}
	if corrected != 18 {
		t.Fatalf("corrected = %d, want 18", corrected)
	}
}

func TestFEC13TwoErrorsFlipBit(t *testing.T) {
	in := bits.FromBools(false, false)
	enc := EncodeFEC13(in)
	enc.FlipBit(0)
	enc.FlipBit(1)
	dec, _, ok := DecodeFEC13(enc)
	if !ok {
		t.Fatal("decode refused")
	}
	if dec.Bit(0) != 1 {
		t.Fatal("two errors in a triple should majority-flip the bit")
	}
}

func TestFEC13BadLength(t *testing.T) {
	if _, _, ok := DecodeFEC13(bits.FromBools(true, false)); ok {
		t.Fatal("length 2 accepted")
	}
}

func TestFEC23RoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := (int(nRaw)%12 + 1) * 10 // multiples of 10 up to 120
		r := sim.NewRand(seed)
		in := randVec(r, n)
		enc := EncodeFEC23(in)
		if enc.Len() != n/10*15 {
			return false
		}
		dec, corrected, ok := DecodeFEC23(enc)
		return ok && corrected == 0 && dec.Equal(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFEC23CorrectsAnySingleError(t *testing.T) {
	r := sim.NewRand(3)
	in := randVec(r, 10)
	enc := EncodeFEC23(in)
	for pos := 0; pos < 15; pos++ {
		bad := enc.Clone()
		bad.FlipBit(pos)
		dec, corrected, ok := DecodeFEC23(bad)
		if !ok || corrected != 1 || !dec.Equal(in) {
			t.Fatalf("error at pos %d not corrected (ok=%v)", pos, ok)
		}
	}
}

func TestFEC23PaddingShorterInput(t *testing.T) {
	in := bits.FromBools(true, true, true) // 3 bits -> padded to 10
	enc := EncodeFEC23(in)
	if enc.Len() != 15 {
		t.Fatalf("len = %d, want 15", enc.Len())
	}
	dec, _, ok := DecodeFEC23(enc)
	if !ok || dec.Len() != 10 {
		t.Fatal("decode of padded block failed")
	}
	for i := 0; i < 3; i++ {
		if dec.Bit(i) != 1 {
			t.Fatal("payload bits lost")
		}
	}
	for i := 3; i < 10; i++ {
		if dec.Bit(i) != 0 {
			t.Fatal("padding bits not zero")
		}
	}
}

func TestFEC23DetectsDoubleErrors(t *testing.T) {
	r := sim.NewRand(4)
	in := randVec(r, 10)
	enc := EncodeFEC23(in)
	detected, silent := 0, 0
	for a := 0; a < 15; a++ {
		for b := a + 1; b < 15; b++ {
			bad := enc.Clone()
			bad.FlipBit(a)
			bad.FlipBit(b)
			dec, _, ok := DecodeFEC23(bad)
			if !ok {
				detected++
			} else if !dec.Equal(in) {
				silent++
			}
		}
	}
	// The expurgated (15,10) code with (D+1) factor detects all double
	// errors (minimum distance 4): none may decode, silently or not.
	if detected != 105 || silent != 0 {
		t.Fatalf("double errors: detected=%d silent=%d, want 105/0", detected, silent)
	}
}

func TestFEC23BadLength(t *testing.T) {
	if _, _, ok := DecodeFEC23(randVec(sim.NewRand(1), 14)); ok {
		t.Fatal("length 14 accepted")
	}
}

func TestHECDetectsChanges(t *testing.T) {
	r := sim.NewRand(5)
	hdr := randVec(r, 10)
	const uap = 0x47
	h := HEC(hdr, uap)
	if !CheckHEC(hdr, uap, h) {
		t.Fatal("clean HEC check failed")
	}
	for i := 0; i < 10; i++ {
		bad := hdr.Clone()
		bad.FlipBit(i)
		if CheckHEC(bad, uap, h) {
			t.Fatalf("single-bit change at %d not detected", i)
		}
	}
	if CheckHEC(hdr, uap+1, h) {
		t.Fatal("wrong UAP accepted")
	}
}

func TestCRC16DetectsChanges(t *testing.T) {
	r := sim.NewRand(6)
	payload := randVec(r, 160)
	const uap = 0x12
	c := CRC16(payload, uap)
	if !CheckCRC16(payload, uap, c) {
		t.Fatal("clean CRC check failed")
	}
	for trial := 0; trial < 50; trial++ {
		bad := payload.Clone()
		bad.FlipBit(r.Intn(payload.Len()))
		if CheckCRC16(bad, uap, c) {
			t.Fatal("single-bit corruption not detected")
		}
	}
}

func TestCRC16KnownDegenerate(t *testing.T) {
	// All-zero payload with UAP 0 must give CRC 0 (register never fills).
	z := bits.NewVec(16)
	z.AppendUint(0, 16)
	if CRC16(z, 0) != 0 {
		t.Fatal("zero payload, zero UAP should give zero CRC")
	}
	// And a nonzero UAP must not.
	if CRC16(z, 1) == 0 {
		t.Fatal("UAP must affect CRC")
	}
}

func TestWhitenerSymmetric(t *testing.T) {
	f := func(seed uint64, clk uint32) bool {
		r := sim.NewRand(seed)
		v := randVec(r, 200)
		orig := v.Clone()
		NewWhitener(clk).Apply(v)
		NewWhitener(clk).Apply(v)
		return v.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWhitenerActuallyWhitens(t *testing.T) {
	v := bits.NewVec(100)
	v.AppendUint(0, 64)
	v.AppendUint(0, 36)
	orig := v.Clone()
	NewWhitener(0x155).Apply(v)
	if v.Equal(orig) {
		t.Fatal("whitener left all-zero payload unchanged")
	}
	// Period of a maximal 7-bit LFSR is 127; the stream must not be
	// constant within that.
	w := NewWhitener(0)
	ones := 0
	for i := 0; i < 127; i++ {
		ones += int(w.NextBit())
	}
	if ones == 0 || ones == 127 {
		t.Fatalf("whitening stream degenerate: %d ones in 127", ones)
	}
}

func TestWhitenerClockDependence(t *testing.T) {
	a, b := NewWhitener(2), NewWhitener(4)
	diff := false
	for i := 0; i < 20; i++ {
		if a.NextBit() != b.NextBit() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different clocks produced identical whitening")
	}
}
