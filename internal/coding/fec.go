// Package coding implements the Bluetooth baseband channel codes used by
// the packet layer: the rate-1/3 repetition FEC that protects packet
// headers, the rate-2/3 shortened (15,10) Hamming FEC used by DM packets
// and the FHS payload, the 8-bit header-error-check (HEC), the CRC-16 on
// payloads, and the data-whitening LFSR. All operate on bits.Vec in
// on-air order, matching the Bluetooth 1.2 baseband specification the
// paper models.
package coding

import "repro/internal/bits"

// EncodeFEC13 triples every input bit (rate-1/3 repetition code).
func EncodeFEC13(in *bits.Vec) *bits.Vec {
	out := bits.NewVec(in.Len() * 3)
	AppendFEC13(out, in)
	return out
}

// AppendFEC13 appends the rate-1/3 encoding of in directly to out,
// saving the intermediate vector on the packet assembly path.
func AppendFEC13(out, in *bits.Vec) {
	t := out.Grow(in.Len() * 3)
	for i := 0; i < in.Len(); i++ {
		b := in.Bit(i)
		t[3*i] = b
		t[3*i+1] = b
		t[3*i+2] = b
	}
}

// DecodeFEC13 majority-votes each bit triple. The input length must be a
// multiple of 3; corrupted lengths are the caller's error to handle.
// It also reports how many triples needed correction, a useful channel
// quality measure.
func DecodeFEC13(in *bits.Vec) (out *bits.Vec, corrected int, ok bool) {
	return DecodeFEC13Range(in, 0, in.Len())
}

// DecodeFEC13Range decodes bits [from, to) of in without copying them
// into a separate vector first (the packet parser decodes the header
// straight out of the received air stream).
func DecodeFEC13Range(in *bits.Vec, from, to int) (out *bits.Vec, corrected int, ok bool) {
	if (to-from)%3 != 0 {
		return nil, 0, false
	}
	n := (to - from) / 3
	out = bits.NewVec(n)
	t := out.Grow(n)
	for i := 0; i < n; i++ {
		j := from + 3*i
		sum := in.Bit(j) + in.Bit(j+1) + in.Bit(j+2)
		if sum >= 2 {
			t[i] = 1
		}
		if sum == 1 || sum == 2 {
			corrected++
		}
	}
	return out, corrected, true
}

// fec23Gen is the generator polynomial of the (15,10) shortened Hamming
// code, g(D) = (D+1)(D^4+D+1) = D^5 + D^4 + D^2 + 1, per Bluetooth 1.2
// part B §7.5. Bit i of the constant is the coefficient of D^i.
const fec23Gen = 0b110101

// fec23ParityLen is the number of parity bits per block.
const fec23ParityLen = 5

// fec23DataLen is the number of data bits per block.
const fec23DataLen = 10

// fec23Parity computes the 5 parity bits for a 10-bit data word (bit i =
// coefficient of D^i, LSB-first air order) by polynomial division of
// data(D)·D^5 by g(D).
func fec23Parity(data uint16) uint8 {
	// Work MSB-down over the 15-bit codeword register.
	reg := uint32(data) << fec23ParityLen
	for i := fec23DataLen + fec23ParityLen - 1; i >= fec23ParityLen; i-- {
		if reg&(1<<i) != 0 {
			reg ^= uint32(fec23Gen) << (i - fec23ParityLen)
		}
	}
	return uint8(reg & 0x1F)
}

// fec23Syndromes maps each 5-bit syndrome to the single codeword bit
// position that produces it, enabling single-error correction.
var fec23Syndromes = buildFEC23Syndromes()

func buildFEC23Syndromes() map[uint8]int {
	m := make(map[uint8]int, 15)
	for pos := 0; pos < fec23DataLen+fec23ParityLen; pos++ {
		var data uint16
		var parity uint8
		if pos < fec23ParityLen {
			parity = 1 << pos
		} else {
			data = 1 << (pos - fec23ParityLen)
		}
		syn := fec23Parity(data) ^ parity
		m[syn] = pos
	}
	return m
}

// EncodeFEC23 encodes the input with the (15,10) shortened Hamming code.
// The input is zero-padded to a multiple of 10 bits; the caller records
// the true payload length (the packet layer always knows it from the
// payload header, exactly as the standard prescribes).
func EncodeFEC23(in *bits.Vec) *bits.Vec {
	nBlocks := (in.Len() + fec23DataLen - 1) / fec23DataLen
	out := bits.NewVec(nBlocks * (fec23DataLen + fec23ParityLen))
	for b := 0; b < nBlocks; b++ {
		var data uint16
		for i := 0; i < fec23DataLen; i++ {
			idx := b*fec23DataLen + i
			if idx < in.Len() {
				data |= uint16(in.Bit(idx)) << i
			}
		}
		out.AppendUint(uint64(data), fec23DataLen)
		out.AppendUint(uint64(fec23Parity(data)), fec23ParityLen)
	}
	return out
}

// DecodeFEC23 decodes 15-bit blocks, correcting single-bit errors per
// block. ok is false if the input length is not a multiple of 15 or any
// block has an uncorrectable (multi-bit) error pattern.
func DecodeFEC23(in *bits.Vec) (out *bits.Vec, corrected int, ok bool) {
	const blockLen = fec23DataLen + fec23ParityLen
	if in.Len()%blockLen != 0 {
		return nil, 0, false
	}
	out = bits.NewVec(in.Len() / blockLen * fec23DataLen)
	for b := 0; b < in.Len(); b += blockLen {
		data := uint16(in.Uint(b, fec23DataLen))
		parity := uint8(in.Uint(b+fec23DataLen, fec23ParityLen))
		syn := fec23Parity(data) ^ parity
		if syn != 0 {
			pos, found := fec23Syndromes[syn]
			if !found {
				return nil, corrected, false
			}
			corrected++
			if pos >= fec23ParityLen {
				data ^= 1 << (pos - fec23ParityLen)
			}
			// Errors in parity bits need no data correction.
		}
		out.AppendUint(uint64(data), fec23DataLen)
	}
	return out, corrected, true
}
