package coding

import "repro/internal/bits"

// hecGen is the HEC generator polynomial g(D) = D^8 + D^7 + D^5 + D^2 +
// D + 1 (Bluetooth 1.2 part B §7.1.1), coefficients of D^0..D^7 in the
// low bits; the D^8 term is implicit in the shift-out.
const hecGen = 0b10100111

// HEC computes the 8-bit header error check over the 10 header bits,
// with the LFSR initialised to the device's UAP, exactly as the link
// controller does before FEC-1/3 encoding the header.
func HEC(header *bits.Vec, uap uint8) uint8 {
	return HECRange(header, 0, header.Len(), uap)
}

// HECRange computes the HEC over bits [from, to) of v, so the parser
// can check a header in place without slicing it out.
func HECRange(v *bits.Vec, from, to int, uap uint8) uint8 {
	reg := uap
	for i := from; i < to; i++ {
		msb := (reg >> 7) & 1
		reg <<= 1
		if msb^v.Bit(i) == 1 {
			reg ^= hecGen
		}
	}
	return reg
}

// CheckHEC recomputes the HEC and compares.
func CheckHEC(header *bits.Vec, uap, got uint8) bool {
	return HEC(header, uap) == got
}

// crcGen is the CRC-16 CCITT generator D^16 + D^12 + D^5 + 1.
const crcGen = 0x1021

// crcTab[b] is the register delta after clocking the 8 bits of b
// (MSB first) through an all-zero register — the standard byte-at-a-time
// CRC table, derived from the same generator the bitwise loop uses.
var crcTab = func() (tab [256]uint16) {
	for b := 0; b < 256; b++ {
		reg := uint16(b) << 8
		for i := 0; i < 8; i++ {
			if reg&0x8000 != 0 {
				reg = reg<<1 ^ crcGen
			} else {
				reg <<= 1
			}
		}
		tab[b] = reg
	}
	return
}()

// CRC16 computes the payload CRC with the register preset to UAP in the
// high byte (Bluetooth 1.2 part B §7.1.2). Bits are consumed a byte at a
// time through crcTab; the sub-byte tail falls back to single shifts.
func CRC16(payload *bits.Vec, uap uint8) uint16 {
	return CRC16Range(payload, 0, payload.Len(), uap)
}

// CRC16Range computes the CRC over bits [from, to) of v in place — the
// parser checks received payloads without copying them out first.
func CRC16Range(v *bits.Vec, from, to int, uap uint8) uint16 {
	reg := uint16(uap) << 8
	i := from
	for ; i+8 <= to; i += 8 {
		reg = reg<<8 ^ crcTab[uint8(reg>>8)^v.Uint8MSBAt(i)]
	}
	for ; i < to; i++ {
		msb := uint8(reg >> 15)
		reg <<= 1
		if msb^v.Bit(i) == 1 {
			reg ^= crcGen
		}
	}
	return reg
}

// CheckCRC16 recomputes the payload CRC and compares.
func CheckCRC16(payload *bits.Vec, uap uint8, got uint16) bool {
	return CRC16(payload, uap) == got
}

// Whitener is the data-whitening LFSR g(D) = D^7 + D^4 + 1, seeded from
// the master clock bits CLK6-1 with bit 6 forced to one (Bluetooth 1.2
// part B §7.2). Whitening is applied to header and payload after
// HEC/CRC generation and removed before checking, which the symmetric
// XOR stream gives us for free.
type Whitener struct {
	reg uint8 // 7-bit state
}

// NewWhitener seeds the LFSR from the clock.
func NewWhitener(clk uint32) *Whitener {
	seed := uint8(clk>>1)&0x3F | 0x40
	return &Whitener{reg: seed}
}

// NextBit returns the next whitening bit.
func (w *Whitener) NextBit() uint8 {
	out := (w.reg >> 6) & 1
	fb := out ^ ((w.reg >> 3) & 1) // taps at D^7 and D^4
	w.reg = (w.reg<<1 | fb) & 0x7F
	return out
}

// whitenStream[s] holds the next 8 whitening bits (LSB first) produced
// from state s, and whitenNext[s] the state after emitting them. Both
// are derived from NextBit, so the table walk is the bitwise LFSR.
var whitenStream, whitenNext = func() (stream, next [128]uint8) {
	for s := 0; s < 128; s++ {
		w := Whitener{reg: uint8(s)}
		for j := 0; j < 8; j++ {
			stream[s] |= w.NextBit() << j
		}
		next[s] = w.reg
	}
	return
}()

// Apply XORs the whitening stream over v in place starting at the
// current LFSR position, eight bits per table step.
func (w *Whitener) Apply(v *bits.Vec) {
	n := v.Len()
	i := 0
	for ; i+8 <= n; i += 8 {
		v.XorUint8At(i, whitenStream[w.reg])
		w.reg = whitenNext[w.reg]
	}
	for ; i < n; i++ {
		if w.NextBit() == 1 {
			v.FlipBit(i)
		}
	}
}
