package coding

import (
	"math/rand"
	"testing"

	"repro/internal/bits"
)

// randVec returns n random bits from r.
func rndVec(r *rand.Rand, n int) *bits.Vec {
	v := bits.NewVec(n)
	for i := 0; i < n; i++ {
		v.AppendBit(uint8(r.Intn(2)))
	}
	return v
}

// applyBitwise is the original whitening loop the table walk replaced;
// the tests below hold the optimised path to it bit for bit.
func applyBitwise(w *Whitener, v *bits.Vec) {
	for i := 0; i < v.Len(); i++ {
		if w.NextBit() == 1 {
			v.FlipBit(i)
		}
	}
}

func TestWhitenerApplyMatchesBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 18, 54, 126, 240, 2745} {
		for trial := 0; trial < 8; trial++ {
			clk := r.Uint32()
			a := rndVec(r, n)
			b := a.Clone()
			wa, wb := NewWhitener(clk), NewWhitener(clk)
			wa.Apply(a)
			applyBitwise(wb, b)
			if !a.Equal(b) {
				t.Fatalf("n=%d clk=%#x: table whitening diverges from bitwise", n, clk)
			}
			if wa.reg != wb.reg {
				t.Fatalf("n=%d clk=%#x: LFSR state %#x != %#x after Apply", n, clk, wa.reg, wb.reg)
			}
		}
	}
}

// crc16Bitwise is the original CRC loop.
func crc16Bitwise(payload *bits.Vec, uap uint8) uint16 {
	reg := uint16(uap) << 8
	for i := 0; i < payload.Len(); i++ {
		msb := uint8(reg >> 15)
		reg <<= 1
		if msb^payload.Bit(i) == 1 {
			reg ^= crcGen
		}
	}
	return reg
}

func TestCRC16TableMatchesBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 7, 8, 9, 16, 31, 160, 339, 2712} {
		for trial := 0; trial < 8; trial++ {
			uap := uint8(r.Uint32())
			v := rndVec(r, n)
			if got, want := CRC16(v, uap), crc16Bitwise(v, uap); got != want {
				t.Fatalf("n=%d uap=%#x: CRC16 = %#x, bitwise = %#x", n, uap, got, want)
			}
		}
	}
}

func TestCRC16RangeMatchesSlice(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	v := rndVec(r, 300)
	for trial := 0; trial < 32; trial++ {
		from := r.Intn(200)
		to := from + r.Intn(v.Len()-from)
		uap := uint8(r.Uint32())
		if got, want := CRC16Range(v, from, to, uap), CRC16(v.Slice(from, to), uap); got != want {
			t.Fatalf("[%d,%d): CRC16Range = %#x, sliced = %#x", from, to, got, want)
		}
	}
}

func TestHECRangeMatchesSlice(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	v := rndVec(r, 64)
	for trial := 0; trial < 32; trial++ {
		from := r.Intn(40)
		to := from + r.Intn(v.Len()-from)
		uap := uint8(r.Uint32())
		if got, want := HECRange(v, from, to, uap), HEC(v.Slice(from, to), uap); got != want {
			t.Fatalf("[%d,%d): HECRange = %#x, sliced = %#x", from, to, got, want)
		}
	}
}

func TestAppendFEC13MatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 18, 80} {
		in := rndVec(r, n)
		prefix := rndVec(r, 5)
		out := prefix.Clone()
		AppendFEC13(out, in)
		want := prefix.Clone()
		want.AppendVec(EncodeFEC13(in))
		if !out.Equal(want) {
			t.Fatalf("n=%d: AppendFEC13 diverges from EncodeFEC13", n)
		}
	}
}

func TestDecodeFEC13RangeMatchesSlice(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	v := rndVec(r, 240)
	for trial := 0; trial < 32; trial++ {
		from := r.Intn(60)
		to := from + 3*r.Intn((v.Len()-from)/3)
		gotV, gotC, gotOK := DecodeFEC13Range(v, from, to)
		wantV, wantC, wantOK := DecodeFEC13(v.Slice(from, to))
		if gotOK != wantOK || gotC != wantC || (gotOK && !gotV.Equal(wantV)) {
			t.Fatalf("[%d,%d): DecodeFEC13Range diverges from sliced decode", from, to)
		}
	}
	if _, _, ok := DecodeFEC13Range(v, 0, 7); ok {
		t.Fatal("non-multiple-of-3 range must fail")
	}
}
