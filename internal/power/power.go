// Package power measures RF activity — the fraction of wall-clock time a
// device's transmitter and receiver chains are enabled — which is the
// quantity the paper's Figs 10-12 plot, and converts it to average power
// with a simple front-end model. The link controller toggles the meters
// exactly when it raises/lowers the enable_tx_RF / enable_rx_RF signals,
// so activity here is the integral of the waveforms in Figs 5 and 9.
package power

import "repro/internal/sim"

// Meter integrates the on-time of one RF chain (TX or RX).
//
// Besides explicit Set transitions, a meter can carry one virtual
// periodic on-window pattern (SkipWindows): the accounting a bulk-skipped
// listen schedule would have produced is settled lazily, on the first
// read or transition at or after each virtual window, so eliding the
// per-window events changes nothing observable — on-time, activation
// counts and mid-pattern Resets all land on the exact values the
// event-per-window schedule produces.
type Meter struct {
	k       *sim.Kernel
	on      bool
	since   sim.Time
	total   sim.Duration
	starts  int
	started sim.Time // measurement window start

	// Virtual window pattern: patCount windows of patWidth ticks, the
	// i-th opening at patStart + i*patPeriod. patCount == 0 means none.
	patStart  sim.Time
	patPeriod sim.Duration
	patWidth  sim.Duration
	patCount  int
}

// NewMeter returns a meter with its measurement window opening now.
func NewMeter(k *sim.Kernel) *Meter {
	return &Meter{k: k, started: k.Now()}
}

// settle books every virtual window the clock has reached. Windows fully
// in the past contribute width and one activation each; a window still
// open at the current instant flips the chain on with since at the
// window's start — exactly the state the per-window Set pair would have
// left — and stays at the head of the pattern until it closes. The loop
// runs at most once per skipped window over the pattern's lifetime.
func (m *Meter) settle() {
	for m.patCount > 0 {
		now := m.k.Now()
		start := m.patStart
		if now < start {
			return // pattern entirely in the future
		}
		if end := start + sim.Time(m.patWidth); now < end {
			// Straddling window: open it, keep it as the pattern head.
			if !m.on {
				m.on = true
				m.since = start
				m.starts++
			}
			return
		}
		// Window fully elapsed: consume it.
		if m.on {
			// Opened as a straddler by an earlier settle (activation
			// already counted); close it at its nominal end.
			m.total += m.patWidth - sim.Duration(m.since-start)
			m.on = false
		} else {
			m.total += m.patWidth
			m.starts++
		}
		m.patStart += sim.Time(m.patPeriod)
		m.patCount--
	}
}

// SkipWindows installs a virtual on-window pattern: count windows of
// width ticks, the first opening at first, repeating every period. The
// chain must be off and no pattern pending; width must be shorter than
// period so consecutive windows cannot merge.
func (m *Meter) SkipWindows(first sim.Time, period, width sim.Duration, count int) {
	if m.patCount != 0 {
		panic("power: SkipWindows over a pending pattern")
	}
	if m.on {
		panic("power: SkipWindows with the chain on")
	}
	if count <= 0 || width == 0 || width >= period {
		panic("power: SkipWindows pattern malformed")
	}
	m.patStart, m.patPeriod, m.patWidth, m.patCount = first, period, width, count
}

// CancelSkip settles the pattern up to the current instant and drops the
// remaining virtual windows. A window straddling now stays open as real
// chain state — the caller resuming a per-event schedule closes it with
// an ordinary Set(false) at the window's nominal end.
func (m *Meter) CancelSkip() {
	m.settle()
	m.patCount = 0
}

// Set switches the chain on or off. Redundant sets are ignored.
func (m *Meter) Set(on bool) {
	m.settle()
	if on == m.on {
		return
	}
	now := m.k.Now()
	if on {
		m.since = now
		m.starts++
	} else {
		m.total += sim.Duration(now - m.since)
	}
	m.on = on
}

// On reports the current chain state.
func (m *Meter) On() bool { m.settle(); return m.on }

// OnTime returns the accumulated on-duration including a currently open
// interval.
func (m *Meter) OnTime() sim.Duration {
	m.settle()
	t := m.total
	if m.on {
		t += sim.Duration(m.k.Now() - m.since)
	}
	return t
}

// Activations counts off→on transitions (wake-up events cost energy in
// real front ends; the ablation benches report them).
func (m *Meter) Activations() int { m.settle(); return m.starts }

// Activity returns the on-time fraction of the window since the meter
// (or the last Reset) started. It is 0 when no time has elapsed.
func (m *Meter) Activity() float64 {
	elapsed := m.k.Now() - m.started
	if elapsed == 0 {
		return 0
	}
	return float64(m.OnTime()) / float64(elapsed)
}

// Reset restarts the measurement window now, preserving the chain state
// and any virtual windows still ahead of the clock.
func (m *Meter) Reset() {
	m.settle()
	m.total = 0
	m.starts = 0
	m.started = m.k.Now()
	if m.on {
		m.since = m.k.Now()
		m.starts = 1
	}
}

// MeterState is the checkpoint image of a Meter: chain state plus any
// virtual window pattern still ahead of the clock. Window accumulators
// (on-time, activations, window start) are deliberately absent — every
// forked arm re-opens its measurement window with Reset immediately
// after restore, exactly as the straight-through run does, so only the
// state that shapes *future* accounting needs to survive.
type MeterState struct {
	On        bool
	PatStart  sim.Time
	PatPeriod sim.Duration
	PatWidth  sim.Duration
	PatCount  int
}

// CheckpointState settles the meter to the current instant and returns
// its checkpoint image.
func (m *Meter) CheckpointState() MeterState {
	m.settle()
	return MeterState{
		On:        m.on,
		PatStart:  m.patStart,
		PatPeriod: m.patPeriod,
		PatWidth:  m.patWidth,
		PatCount:  m.patCount,
	}
}

// RestoreState imposes a checkpointed image on a meter whose kernel
// clock stands at the snapshot instant. An open interval restarts at
// now — the same normalization Reset applies on the straight-through
// arm, so post-restore accounting matches it exactly.
func (m *Meter) RestoreState(st MeterState) {
	now := m.k.Now()
	m.on = st.On
	m.since = now
	m.total = 0
	m.started = now
	m.starts = 0
	if m.on {
		m.starts = 1
	}
	m.patStart, m.patPeriod, m.patWidth, m.patCount = st.PatStart, st.PatPeriod, st.PatWidth, st.PatCount
}

// Profile is a simple RF front-end power model: static currents while a
// chain is enabled. Defaults are representative of the 0.18 µm CMOS
// radios the paper cites (tens of mW per active chain).
type Profile struct {
	TxMW    float64 // power while the transmitter is on
	RxMW    float64 // power while the receiver is on
	SleepMW float64 // residual power when both chains are off
}

// DefaultProfile mirrors the van Zeijl et al. radio the paper references:
// ~30 mW TX, ~33 mW RX, ~0.1 mW sleep.
func DefaultProfile() Profile { return Profile{TxMW: 30, RxMW: 33, SleepMW: 0.1} }

// Average computes the mean power over the measurement window given the
// two chain meters.
func (p Profile) Average(tx, rx *Meter) float64 {
	return p.TxMW*tx.Activity() + p.RxMW*rx.Activity() + p.SleepMW
}
