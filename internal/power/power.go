// Package power measures RF activity — the fraction of wall-clock time a
// device's transmitter and receiver chains are enabled — which is the
// quantity the paper's Figs 10-12 plot, and converts it to average power
// with a simple front-end model. The link controller toggles the meters
// exactly when it raises/lowers the enable_tx_RF / enable_rx_RF signals,
// so activity here is the integral of the waveforms in Figs 5 and 9.
package power

import "repro/internal/sim"

// Meter integrates the on-time of one RF chain (TX or RX).
type Meter struct {
	k       *sim.Kernel
	on      bool
	since   sim.Time
	total   sim.Duration
	starts  int
	started sim.Time // measurement window start
}

// NewMeter returns a meter with its measurement window opening now.
func NewMeter(k *sim.Kernel) *Meter {
	return &Meter{k: k, started: k.Now()}
}

// Set switches the chain on or off. Redundant sets are ignored.
func (m *Meter) Set(on bool) {
	if on == m.on {
		return
	}
	now := m.k.Now()
	if on {
		m.since = now
		m.starts++
	} else {
		m.total += sim.Duration(now - m.since)
	}
	m.on = on
}

// On reports the current chain state.
func (m *Meter) On() bool { return m.on }

// OnTime returns the accumulated on-duration including a currently open
// interval.
func (m *Meter) OnTime() sim.Duration {
	t := m.total
	if m.on {
		t += sim.Duration(m.k.Now() - m.since)
	}
	return t
}

// Activations counts off→on transitions (wake-up events cost energy in
// real front ends; the ablation benches report them).
func (m *Meter) Activations() int { return m.starts }

// Activity returns the on-time fraction of the window since the meter
// (or the last Reset) started. It is 0 when no time has elapsed.
func (m *Meter) Activity() float64 {
	elapsed := m.k.Now() - m.started
	if elapsed == 0 {
		return 0
	}
	return float64(m.OnTime()) / float64(elapsed)
}

// Reset restarts the measurement window now, preserving the chain state.
func (m *Meter) Reset() {
	m.total = 0
	m.starts = 0
	m.started = m.k.Now()
	if m.on {
		m.since = m.k.Now()
		m.starts = 1
	}
}

// Profile is a simple RF front-end power model: static currents while a
// chain is enabled. Defaults are representative of the 0.18 µm CMOS
// radios the paper cites (tens of mW per active chain).
type Profile struct {
	TxMW    float64 // power while the transmitter is on
	RxMW    float64 // power while the receiver is on
	SleepMW float64 // residual power when both chains are off
}

// DefaultProfile mirrors the van Zeijl et al. radio the paper references:
// ~30 mW TX, ~33 mW RX, ~0.1 mW sleep.
func DefaultProfile() Profile { return Profile{TxMW: 30, RxMW: 33, SleepMW: 0.1} }

// Average computes the mean power over the measurement window given the
// two chain meters.
func (p Profile) Average(tx, rx *Meter) float64 {
	return p.TxMW*tx.Activity() + p.RxMW*rx.Activity() + p.SleepMW
}
