package power

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestMeterIntegration(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(100, func() { m.Set(true) })
	k.Schedule(300, func() { m.Set(false) })
	k.Schedule(1000, func() {})
	k.Run()
	if m.OnTime() != 200 {
		t.Fatalf("OnTime = %d, want 200", m.OnTime())
	}
	if got := m.Activity(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Activity = %v, want 0.2", got)
	}
	if m.Activations() != 1 {
		t.Fatalf("Activations = %d", m.Activations())
	}
}

func TestMeterOpenIntervalCounted(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(0, func() { m.Set(true) })
	k.Schedule(500, func() {})
	k.Run()
	if !m.On() {
		t.Fatal("meter should be on")
	}
	if m.OnTime() != 500 {
		t.Fatalf("open interval OnTime = %d", m.OnTime())
	}
	if m.Activity() != 1.0 {
		t.Fatalf("Activity = %v, want 1", m.Activity())
	}
}

func TestRedundantSetsIgnored(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(10, func() { m.Set(true) })
	k.Schedule(20, func() { m.Set(true) })
	k.Schedule(30, func() { m.Set(false) })
	k.Schedule(40, func() { m.Set(false) })
	k.Run()
	if m.OnTime() != 20 || m.Activations() != 1 {
		t.Fatalf("OnTime=%d Activations=%d", m.OnTime(), m.Activations())
	}
}

func TestZeroElapsedActivity(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	if m.Activity() != 0 {
		t.Fatal("Activity at t=0 must be 0")
	}
}

func TestReset(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(0, func() { m.Set(true) })
	k.Schedule(100, func() { m.Set(false) })
	k.Schedule(200, func() { m.Reset() })
	k.Schedule(400, func() {})
	k.Run()
	if m.OnTime() != 0 {
		t.Fatalf("OnTime after reset = %d", m.OnTime())
	}
	if m.Activity() != 0 {
		t.Fatalf("Activity after reset = %v", m.Activity())
	}
}

func TestResetWhileOn(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(0, func() { m.Set(true) })
	k.Schedule(100, func() { m.Reset() })
	k.Schedule(200, func() {})
	k.Run()
	// The open interval restarts at the reset point.
	if m.OnTime() != 100 {
		t.Fatalf("OnTime = %d, want 100", m.OnTime())
	}
	if m.Activations() != 1 {
		t.Fatalf("Activations = %d, want 1", m.Activations())
	}
}

func TestProfileAverage(t *testing.T) {
	k := sim.NewKernel()
	tx, rx := NewMeter(k), NewMeter(k)
	k.Schedule(0, func() { tx.Set(true) })
	k.Schedule(250, func() { tx.Set(false); rx.Set(true) })
	k.Schedule(1000, func() {})
	k.Run()
	p := Profile{TxMW: 40, RxMW: 20, SleepMW: 1}
	// tx on 25%, rx on 75%.
	want := 40*0.25 + 20*0.75 + 1
	if got := p.Average(tx, rx); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Average = %v, want %v", got, want)
	}
	d := DefaultProfile()
	if d.TxMW <= 0 || d.RxMW <= 0 {
		t.Fatal("default profile degenerate")
	}
}

// patternWorld drives one meter with real per-window Set pairs and a
// second with the equivalent SkipWindows pattern on the same kernel, so
// every probe compares the virtual accounting against ground truth.
func patternWorld(k *sim.Kernel, first sim.Time, period, width sim.Duration, count int) (real, virt *Meter) {
	real, virt = NewMeter(k), NewMeter(k)
	for i := 0; i < count; i++ {
		start := first + sim.Time(i)*sim.Time(period)
		k.At(start, func() { real.Set(true) })
		k.At(start+sim.Time(width), func() { real.Set(false) })
	}
	virt.SkipWindows(first, period, width, count)
	return real, virt
}

func probeEqual(t *testing.T, ctx string, k *sim.Kernel, real, virt *Meter) {
	t.Helper()
	if virt.OnTime() != real.OnTime() {
		t.Fatalf("%s at %d: OnTime virtual %d, real %d", ctx, k.Now(), virt.OnTime(), real.OnTime())
	}
	if virt.Activations() != real.Activations() {
		t.Fatalf("%s at %d: Activations virtual %d, real %d", ctx, k.Now(), virt.Activations(), real.Activations())
	}
	if virt.On() != real.On() {
		t.Fatalf("%s at %d: On virtual %v, real %v", ctx, k.Now(), virt.On(), real.On())
	}
}

func TestSkipWindowsMatchesRealSets(t *testing.T) {
	k := sim.NewKernel()
	real, virt := patternWorld(k, 100, 50, 12, 5)
	// Probe at every tick across the pattern and beyond, including
	// window starts, interiors, ends, gaps, and the far side.
	for at := sim.Time(0); at <= 400; at++ {
		k.At(at, func() { probeEqual(t, "sweep", k, real, virt) })
	}
	k.Run()
	if virt.OnTime() != 5*12 {
		t.Fatalf("total OnTime = %d, want 60", virt.OnTime())
	}
	if virt.Activations() != 5 {
		t.Fatalf("Activations = %d, want 5", virt.Activations())
	}
}

func TestSkipWindowsStraddlerStaysOpen(t *testing.T) {
	k := sim.NewKernel()
	real, virt := patternWorld(k, 100, 50, 12, 3)
	// First read lands mid-window 1: the straddler opens with since at
	// the window start, then closes at its nominal end on a later read.
	k.At(155, func() {
		if !virt.On() {
			t.Fatal("straddling window should be open")
		}
		probeEqual(t, "mid-straddler", k, real, virt)
	})
	k.At(190, func() { probeEqual(t, "after straddler", k, real, virt) })
	k.Run()
}

func TestSkipWindowsResetMidPattern(t *testing.T) {
	k := sim.NewKernel()
	real, virt := patternWorld(k, 100, 50, 12, 4)
	// Reset in a gap and mid-window; remaining windows must still book.
	k.At(170, func() { real.Reset(); virt.Reset() })
	k.At(205, func() { real.Reset(); virt.Reset() })
	for _, at := range []sim.Time{171, 206, 230, 270, 300} {
		k.At(at, func() { probeEqual(t, "post-reset", k, real, virt) })
	}
	k.Run()
}

func TestCancelSkipMidWindowHandsOffChainState(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	m.SkipWindows(100, 50, 12, 4)
	k.At(205, func() {
		m.CancelSkip()
		if !m.On() {
			t.Fatal("cancel inside a window must leave the chain on")
		}
		// The resuming per-event schedule closes the window for real.
		k.At(212, func() { m.Set(false) })
	})
	k.Run()
	// Windows 0, 1 fully virtual; window 2 (200..212) handed off; window
	// 3 dropped by the cancel.
	if m.OnTime() != 3*12 {
		t.Fatalf("OnTime = %d, want 36", m.OnTime())
	}
	if m.Activations() != 3 {
		t.Fatalf("Activations = %d, want 3", m.Activations())
	}
	if m.On() {
		t.Fatal("chain should be off after the real close")
	}
}

func TestCancelSkipForceOffMidWindow(t *testing.T) {
	k := sim.NewKernel()
	real, virt := patternWorld(k, 100, 50, 12, 4)
	// A state transition force-closes the chain mid-window (rxOffForce):
	// the real schedule sees Set(false) at the same instant.
	k.At(207, func() {
		real.Set(false)
		virt.CancelSkip()
		virt.Set(false)
		probeEqual(t, "force-off", k, real, virt)
	})
	// The real world's remaining Set pairs still run; mirror them on the
	// cancelled meter to keep the comparison meaningful.
	k.At(250, func() { virt.Set(true) })
	k.At(262, func() { virt.Set(false) })
	k.At(300, func() { probeEqual(t, "after force-off", k, real, virt) })
	k.Run()
}

func TestSkipWindowsRejectsMisuse(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("width >= period", func() { m.SkipWindows(0, 10, 10, 1) })
	mustPanic("zero count", func() { m.SkipWindows(0, 10, 2, 0) })
	m.Set(true)
	mustPanic("chain on", func() { m.SkipWindows(0, 10, 2, 1) })
	m.Set(false)
	m.SkipWindows(100, 10, 2, 3)
	mustPanic("pattern pending", func() { m.SkipWindows(200, 10, 2, 1) })
}
