package power

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestMeterIntegration(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(100, func() { m.Set(true) })
	k.Schedule(300, func() { m.Set(false) })
	k.Schedule(1000, func() {})
	k.Run()
	if m.OnTime() != 200 {
		t.Fatalf("OnTime = %d, want 200", m.OnTime())
	}
	if got := m.Activity(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Activity = %v, want 0.2", got)
	}
	if m.Activations() != 1 {
		t.Fatalf("Activations = %d", m.Activations())
	}
}

func TestMeterOpenIntervalCounted(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(0, func() { m.Set(true) })
	k.Schedule(500, func() {})
	k.Run()
	if !m.On() {
		t.Fatal("meter should be on")
	}
	if m.OnTime() != 500 {
		t.Fatalf("open interval OnTime = %d", m.OnTime())
	}
	if m.Activity() != 1.0 {
		t.Fatalf("Activity = %v, want 1", m.Activity())
	}
}

func TestRedundantSetsIgnored(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(10, func() { m.Set(true) })
	k.Schedule(20, func() { m.Set(true) })
	k.Schedule(30, func() { m.Set(false) })
	k.Schedule(40, func() { m.Set(false) })
	k.Run()
	if m.OnTime() != 20 || m.Activations() != 1 {
		t.Fatalf("OnTime=%d Activations=%d", m.OnTime(), m.Activations())
	}
}

func TestZeroElapsedActivity(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	if m.Activity() != 0 {
		t.Fatal("Activity at t=0 must be 0")
	}
}

func TestReset(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(0, func() { m.Set(true) })
	k.Schedule(100, func() { m.Set(false) })
	k.Schedule(200, func() { m.Reset() })
	k.Schedule(400, func() {})
	k.Run()
	if m.OnTime() != 0 {
		t.Fatalf("OnTime after reset = %d", m.OnTime())
	}
	if m.Activity() != 0 {
		t.Fatalf("Activity after reset = %v", m.Activity())
	}
}

func TestResetWhileOn(t *testing.T) {
	k := sim.NewKernel()
	m := NewMeter(k)
	k.Schedule(0, func() { m.Set(true) })
	k.Schedule(100, func() { m.Reset() })
	k.Schedule(200, func() {})
	k.Run()
	// The open interval restarts at the reset point.
	if m.OnTime() != 100 {
		t.Fatalf("OnTime = %d, want 100", m.OnTime())
	}
	if m.Activations() != 1 {
		t.Fatalf("Activations = %d, want 1", m.Activations())
	}
}

func TestProfileAverage(t *testing.T) {
	k := sim.NewKernel()
	tx, rx := NewMeter(k), NewMeter(k)
	k.Schedule(0, func() { tx.Set(true) })
	k.Schedule(250, func() { tx.Set(false); rx.Set(true) })
	k.Schedule(1000, func() {})
	k.Run()
	p := Profile{TxMW: 40, RxMW: 20, SleepMW: 1}
	// tx on 25%, rx on 75%.
	want := 40*0.25 + 20*0.75 + 1
	if got := p.Average(tx, rx); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Average = %v, want %v", got, want)
	}
	d := DefaultProfile()
	if d.TxMW <= 0 || d.RxMW <= 0 {
		t.Fatal("default profile degenerate")
	}
}
