package bits

import (
	"testing"
	"testing/quick"
)

func TestResolveTruthTable(t *testing.T) {
	cases := []struct {
		a, b, want Logic
	}{
		{LZ, LZ, LZ},
		{LZ, L0, L0},
		{LZ, L1, L1},
		{L0, LZ, L0},
		{L1, LZ, L1},
		{L0, L0, LX},
		{L0, L1, LX},
		{L1, L1, LX},
		{LX, LZ, LX},
		{LX, L1, LX},
	}
	for _, c := range cases {
		if got := Resolve(c.a, c.b); got != c.want {
			t.Errorf("Resolve(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLogicString(t *testing.T) {
	if L0.String() != "0" || L1.String() != "1" || LZ.String() != "Z" || LX.String() != "X" {
		t.Fatal("Logic.String wrong")
	}
	if Logic(9).String() != "?" {
		t.Fatal("invalid logic should print ?")
	}
}

func TestAppendUintLSBFirst(t *testing.T) {
	v := NewVec(8)
	v.AppendUint(0b1101, 4)
	want := []uint8{1, 0, 1, 1} // LSB first
	for i, w := range want {
		if v.Bit(i) != w {
			t.Fatalf("bit %d = %d, want %d (vec %v)", i, v.Bit(i), w, v)
		}
	}
}

func TestUintRoundTrip(t *testing.T) {
	f := func(x uint64, shift uint8) bool {
		n := int(shift%64) + 1
		v := NewVec(n)
		v.AppendUint(x, n)
		mask := ^uint64(0)
		if n < 64 {
			mask = (1 << n) - 1
		}
		return v.Uint(0, n) == x&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		v := NewVec(len(data) * 8)
		v.AppendBytes(data)
		got := v.Bytes()
		if len(got) != len(data) {
			return len(data) == 0 && len(got) == 0
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceIsIndependent(t *testing.T) {
	v := FromBools(true, false, true, true)
	s := v.Slice(1, 3)
	s.FlipBit(0)
	if v.Bit(1) != 0 {
		t.Fatal("Slice shares storage with parent")
	}
	if s.Len() != 2 {
		t.Fatal("Slice length wrong")
	}
}

func TestHammingDistance(t *testing.T) {
	a := FromBools(true, false, true)
	b := FromBools(true, true, true)
	if d := a.HammingDistance(b); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
	c := FromBools(true)
	if d := a.HammingDistance(c); d != 2 {
		t.Fatalf("length-mismatch distance = %d, want 2", d)
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal")
	}
	if a.Equal(b) {
		t.Fatal("different vecs reported equal")
	}
}

func TestFlipAndXor(t *testing.T) {
	v := FromBools(false, false, false, false)
	v.FlipBit(2)
	if v.Uint(0, 4) != 0b0100 {
		t.Fatalf("flip wrong: %v", v)
	}
	mask := FromBools(true, true)
	v.XorInto(1, mask)
	if v.Bit(1) != 1 || v.Bit(2) != 0 {
		t.Fatalf("xor wrong: %v", v)
	}
}

func TestOnesAndString(t *testing.T) {
	v := FromBools(true, false, true, true, true)
	if v.Ones() != 4 {
		t.Fatalf("Ones = %d", v.Ones())
	}
	if v.String() != "1011 1" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestUintPanicsOver64(t *testing.T) {
	v := NewVec(80)
	v.AppendUint(0, 65)
	defer func() {
		if recover() == nil {
			t.Error("Uint(>64) did not panic")
		}
	}()
	v.Uint(0, 65)
}

// Property: flipping a bit twice restores the vector.
func TestDoubleFlipIdentity(t *testing.T) {
	f := func(data []byte, idx uint16) bool {
		if len(data) == 0 {
			return true
		}
		v := NewVec(len(data) * 8)
		v.AppendBytes(data)
		i := int(idx) % v.Len()
		orig := v.Clone()
		v.FlipBit(i)
		if v.Equal(orig) {
			return false
		}
		v.FlipBit(i)
		return v.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
