// Package bits provides the bit-level data types shared by the coding,
// packet and channel layers: dense bit vectors in on-air (LSB-first)
// order and the four-valued logic the paper's channel resolver uses
// (0, 1, Z for a silent wire, X for a collision).
package bits

import (
	"fmt"
	"strings"
)

// Logic is a four-valued channel symbol.
type Logic uint8

// The four channel symbol values from the paper's Fig. 2 channel model.
const (
	L0 Logic = iota // logic zero
	L1              // logic one
	LZ              // high impedance: nobody transmitting
	LX              // undefined: collision between transmitters
)

// String renders the symbol the way waveform viewers print it.
func (l Logic) String() string {
	switch l {
	case L0:
		return "0"
	case L1:
		return "1"
	case LZ:
		return "Z"
	case LX:
		return "X"
	}
	return "?"
}

// Resolve implements the channel resolver: combining what two transmitters
// drive onto the shared medium. Z is the identity; any two driven values
// collide to X.
func Resolve(a, b Logic) Logic {
	switch {
	case a == LZ:
		return b
	case b == LZ:
		return a
	default:
		return LX
	}
}

// Vec is a bit vector in transmission order: bit 0 is the first bit on
// air. Bluetooth transmits each field LSB first, so AppendUint pushes the
// low-order bit first.
type Vec struct {
	bits []uint8 // one byte per bit; 0 or 1
}

// NewVec returns an empty vector with capacity for n bits.
func NewVec(n int) *Vec { return &Vec{bits: make([]uint8, 0, n)} }

// FromBools builds a vector from explicit bit values.
func FromBools(vals ...bool) *Vec {
	v := NewVec(len(vals))
	for _, b := range vals {
		v.AppendBit(boolToBit(b))
	}
	return v
}

func boolToBit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Len returns the number of bits.
func (v *Vec) Len() int { return len(v.bits) }

// Bit returns bit i (0 or 1).
func (v *Vec) Bit(i int) uint8 { return v.bits[i] }

// SetBit overwrites bit i.
func (v *Vec) SetBit(i int, b uint8) { v.bits[i] = b & 1 }

// FlipBit inverts bit i (the channel's noise model).
func (v *Vec) FlipBit(i int) { v.bits[i] ^= 1 }

// AppendBit appends one bit.
func (v *Vec) AppendBit(b uint8) { v.bits = append(v.bits, b&1) }

// AppendUint appends the low n bits of x, LSB first (Bluetooth field
// order).
func (v *Vec) AppendUint(x uint64, n int) {
	for i := 0; i < n; i++ {
		v.AppendBit(uint8(x >> i))
	}
}

// AppendVec appends all bits of o.
func (v *Vec) AppendVec(o *Vec) { v.bits = append(v.bits, o.bits...) }

// Grow appends n zero bits and returns the appended tail as a writable
// slice (one byte per bit), letting encoders fill positions directly
// instead of appending bit by bit.
func (v *Vec) Grow(n int) []uint8 {
	old := len(v.bits)
	if cap(v.bits) < old+n {
		nb := make([]uint8, old, old+n)
		copy(nb, v.bits)
		v.bits = nb
	}
	v.bits = v.bits[:old+n]
	tail := v.bits[old:]
	for i := range tail {
		tail[i] = 0
	}
	return tail
}

// XorUint8At XORs the 8 bits of b, LSB first, into positions [i, i+8).
func (v *Vec) XorUint8At(i int, b uint8) {
	t := v.bits[i : i+8 : i+8]
	t[0] ^= b & 1
	t[1] ^= b >> 1 & 1
	t[2] ^= b >> 2 & 1
	t[3] ^= b >> 3 & 1
	t[4] ^= b >> 4 & 1
	t[5] ^= b >> 5 & 1
	t[6] ^= b >> 6 & 1
	t[7] ^= b >> 7 & 1
}

// Uint8MSBAt packs bits [i, i+8) into a byte with bit i as the MSB —
// the order a shift register consumes the air stream.
func (v *Vec) Uint8MSBAt(i int) uint8 {
	t := v.bits[i : i+8 : i+8]
	return t[0]<<7 | t[1]<<6 | t[2]<<5 | t[3]<<4 | t[4]<<3 | t[5]<<2 | t[6]<<1 | t[7]
}

// AppendBytes appends bytes LSB-first, in slice order.
func (v *Vec) AppendBytes(bs []byte) {
	tail := v.Grow(len(bs) * 8)
	for k, b := range bs {
		t := tail[k*8 : k*8+8 : k*8+8]
		t[0] = b & 1
		t[1] = b >> 1 & 1
		t[2] = b >> 2 & 1
		t[3] = b >> 3 & 1
		t[4] = b >> 4 & 1
		t[5] = b >> 5 & 1
		t[6] = b >> 6 & 1
		t[7] = b >> 7 & 1
	}
}

// Uint reads n bits starting at offset, LSB first, as an integer.
// It panics if the range exceeds the vector.
func (v *Vec) Uint(offset, n int) uint64 {
	if n > 64 {
		panic("bits: Uint reads at most 64 bits")
	}
	b := v.bits[offset : offset+n]
	var x uint64
	i := 0
	for ; i+8 <= n; i += 8 {
		t := b[i : i+8 : i+8]
		x |= uint64(t[0]|t[1]<<1|t[2]<<2|t[3]<<3|t[4]<<4|t[5]<<5|t[6]<<6|t[7]<<7) << i
	}
	for ; i < n; i++ {
		x |= uint64(b[i]) << i
	}
	return x
}

// Slice returns an independent copy of bits [from, to).
func (v *Vec) Slice(from, to int) *Vec {
	out := NewVec(to - from)
	out.bits = append(out.bits, v.bits[from:to]...)
	return out
}

// Clone returns a deep copy.
func (v *Vec) Clone() *Vec { return v.Slice(0, v.Len()) }

// Bytes packs the bits into bytes, LSB-first within each byte; the last
// byte is zero-padded. This inverts AppendBytes.
func (v *Vec) Bytes() []byte { return v.BytesRange(0, len(v.bits)) }

// BytesRange packs bits [from, to) into bytes like Bytes, without an
// intermediate Slice copy.
func (v *Vec) BytesRange(from, to int) []byte {
	b := v.bits[from:to]
	out := make([]byte, (len(b)+7)/8)
	i := 0
	for ; i+8 <= len(b); i += 8 {
		t := b[i : i+8 : i+8]
		out[i/8] = t[0] | t[1]<<1 | t[2]<<2 | t[3]<<3 | t[4]<<4 | t[5]<<5 | t[6]<<6 | t[7]<<7
	}
	for ; i < len(b); i++ {
		out[i/8] |= b[i] << (i % 8)
	}
	return out
}

// HammingDistance counts differing bit positions against o over the first
// min(len) bits plus the length difference.
func (v *Vec) HammingDistance(o *Vec) int {
	n := v.Len()
	if o.Len() < n {
		n = o.Len()
	}
	d := v.Len() - n + o.Len() - n
	for i := 0; i < n; i++ {
		if v.bits[i] != o.bits[i] {
			d++
		}
	}
	return d
}

// Equal reports whether v and o hold identical bits.
func (v *Vec) Equal(o *Vec) bool {
	return v.Len() == o.Len() && v.HammingDistance(o) == 0
}

// XorInto XORs o into v starting at offset (used by whitening).
func (v *Vec) XorInto(offset int, o *Vec) {
	for i := 0; i < o.Len(); i++ {
		v.bits[offset+i] ^= o.bits[i]
	}
}

// String renders the vector as a 0/1 string in air order, grouping
// nibbles for readability.
func (v *Vec) String() string {
	var sb strings.Builder
	for i, b := range v.bits {
		if i > 0 && i%4 == 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", b)
	}
	return sb.String()
}

// Ones counts set bits.
func (v *Vec) Ones() int {
	n := 0
	for _, b := range v.bits {
		n += int(b)
	}
	return n
}
