// Package packet implements the Bluetooth baseband packet formats the
// paper's transmitter/receiver modules build and interpret: the ID
// packet (bare access code), NULL/POLL control packets, the FHS packet
// that carries address and clock during piconet creation, and the
// DM1/3/5 (FEC-protected) and DH1/3/5 (unprotected) data packets whose
// noise behaviour the paper's throughput/power analyses compare.
//
// Assembly follows the standard's transmit chain: header → HEC →
// whitening → FEC 1/3; payload → CRC → whitening → (FEC 2/3 for DM/FHS).
// Parsing runs the chain backwards and reports exactly which stage a
// corrupted packet dies at, which is what the BER experiments measure.
package packet

import (
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/bits"
	"repro/internal/coding"
)

// Type is the 4-bit packet type code from the packet header (ACL types
// of Bluetooth 1.2 part B §6.5).
type Type uint8

// Packet type codes. ID is not a real header type (an ID packet has no
// header); it gets a sentinel value for logging and dispatch.
const (
	TypeNull Type = 0x0
	TypePoll Type = 0x1
	TypeFHS  Type = 0x2
	TypeDM1  Type = 0x3
	TypeDH1  Type = 0x4
	TypeHV1  Type = 0x5
	TypeHV2  Type = 0x6
	TypeHV3  Type = 0x7
	TypeAUX1 Type = 0x9
	TypeDM3  Type = 0xA
	TypeDH3  Type = 0xB
	TypeDM5  Type = 0xE
	TypeDH5  Type = 0xF
	TypeID   Type = 0xFF
)

// String names the type for traces and logs.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypePoll:
		return "POLL"
	case TypeFHS:
		return "FHS"
	case TypeDM1:
		return "DM1"
	case TypeDH1:
		return "DH1"
	case TypeHV1:
		return "HV1"
	case TypeHV2:
		return "HV2"
	case TypeHV3:
		return "HV3"
	case TypeAUX1:
		return "AUX1"
	case TypeDM3:
		return "DM3"
	case TypeDH3:
		return "DH3"
	case TypeDM5:
		return "DM5"
	case TypeDH5:
		return "DH5"
	case TypeID:
		return "ID"
	}
	return fmt.Sprintf("TYPE(%d)", uint8(t))
}

// Slots returns how many 625 µs slots the type occupies on air.
func (t Type) Slots() int {
	switch t {
	case TypeDM3, TypeDH3:
		return 3
	case TypeDM5, TypeDH5:
		return 5
	default:
		return 1
	}
}

// IsSCO reports whether the type is a synchronous (voice) packet: fixed
// length, no CRC, no retransmission.
func (t Type) IsSCO() bool {
	switch t {
	case TypeHV1, TypeHV2, TypeHV3:
		return true
	}
	return false
}

// MaxPayload returns the maximum user-payload bytes for a data type
// (zero for control packets). For the HV types it is also the exact
// required length.
func (t Type) MaxPayload() int {
	switch t {
	case TypeHV1:
		return 10
	case TypeHV2:
		return 20
	case TypeHV3:
		return 30
	case TypeDM1:
		return 17
	case TypeDH1:
		return 27
	case TypeAUX1:
		return 29
	case TypeDM3:
		return 121
	case TypeDH3:
		return 183
	case TypeDM5:
		return 224
	case TypeDH5:
		return 339
	default:
		return 0
	}
}

// fec23 reports whether the payload is rate-2/3 FEC protected.
func (t Type) fec23() bool {
	switch t {
	case TypeFHS, TypeDM1, TypeDM3, TypeDM5, TypeHV2:
		return true
	}
	return false
}

// fec13Payload reports whether the payload is rate-1/3 FEC protected
// (only HV1 voice).
func (t Type) fec13Payload() bool { return t == TypeHV1 }

// hasCRC reports whether the payload carries a CRC-16.
func (t Type) hasCRC() bool {
	switch t {
	case TypeDM1, TypeDM3, TypeDM5, TypeDH1, TypeDH3, TypeDH5, TypeFHS:
		return true
	}
	return false
}

// payloadHeaderBits is 8 for single-slot data packets, 16 for multi-slot.
func (t Type) payloadHeaderBits() int {
	switch t {
	case TypeDM1, TypeDH1, TypeAUX1:
		return 8
	case TypeDM3, TypeDH3, TypeDM5, TypeDH5:
		return 16
	}
	return 0
}

// LLID values for the payload header's logical channel field.
const (
	LLIDL2CAPContinue = 0x1
	LLIDL2CAPStart    = 0x2
	LLIDLMP           = 0x3
)

// Header is the 18-bit packet header (before HEC/FEC).
type Header struct {
	AMAddr uint8 // 3-bit active member address; 0 = broadcast
	Type   Type
	Flow   bool // baseband flow control
	ARQN   bool // acknowledgement of the previous reception
	SEQN   bool // sequence bit for duplicate filtering
}

// FHSPayload is the decoded content of an FHS packet: everything a
// scanner needs to join (or create) a piconet.
type FHSPayload struct {
	LAP    uint32 // lower address part of the sender
	UAP    uint8
	NAP    uint16
	Class  uint32 // 24-bit class of device
	AMAddr uint8  // AM_ADDR assigned to the recipient (page response)
	CLK    uint32 // sender's CLKN bits 27-2 at transmission, re-shifted
	SR     uint8  // scan repetition field
}

// Packet is a baseband packet in logical form.
type Packet struct {
	// AccessLAP selects the access code: the master's LAP in connection
	// state (CAC), the paged device's LAP (DAC), or GIAC for inquiry.
	AccessLAP uint32
	// Header is nil exactly for ID packets.
	Header *Header
	// FHS is set when Header.Type == TypeFHS.
	FHS *FHSPayload
	// Payload is the user/LMP data of DM/DH/AUX packets.
	Payload []byte
	// LLID tags the payload's logical channel.
	LLID uint8
	// PFlow is the payload-header flow bit.
	PFlow bool
}

// NewID builds an ID packet for a LAP (inquiry or page trains).
func NewID(lap uint32) *Packet { return &Packet{AccessLAP: lap} }

// IsID reports whether p is an ID packet.
func (p *Packet) IsID() bool { return p.Header == nil }

// Type returns the packet type, TypeID for ID packets.
func (p *Packet) Type() Type {
	if p.Header == nil {
		return TypeID
	}
	return p.Header.Type
}

// AirBits returns the on-air length in bits (= duration in µs at
// 1 Mbit/s).
func (p *Packet) AirBits() int {
	if p.IsID() {
		return 68
	}
	n := 72 + 54 // access code with trailer + FEC-1/3 header
	t := p.Header.Type
	switch {
	case t == TypeFHS:
		n += 240 // (144 info + 16 CRC) · 3/2
	case t.IsSCO():
		n += 240 // all HV types fill 240 payload bits
	case t.MaxPayload() > 0:
		bits := t.payloadHeaderBits() + 8*len(p.Payload)
		if t.hasCRC() {
			bits += 16
		}
		if t.fec23() {
			bits = (bits + 9) / 10 * 15
		}
		n += bits
	}
	return n
}

// Errors reported by Parse, ordered by receive-chain stage.
var (
	ErrAccessCode = errors.New("packet: access code correlation failed")
	ErrHeaderFEC  = errors.New("packet: header FEC unrecoverable")
	ErrHEC        = errors.New("packet: header error check failed")
	ErrPayloadFEC = errors.New("packet: payload FEC unrecoverable")
	ErrCRC        = errors.New("packet: payload CRC failed")
	ErrMalformed  = errors.New("packet: malformed payload structure")
)

// RxInfo reports reception quality for instrumentation.
type RxInfo struct {
	SyncErrors      int // bit errors in the sync word
	HeaderCorrected int // FEC-1/3 corrections in the header
	PayloadFixed    int // FEC-2/3 corrections in the payload
}

// Assemble serialises the packet to on-air bits. uap and clk are the
// receiver-agreed values (sender's UAP for HEC/CRC, piconet clock for
// whitening); for ID packets they are unused.
func (p *Packet) Assemble(uap uint8, clk uint32) *bits.Vec {
	if p.IsID() {
		return access.Code(p.AccessLAP, false)
	}
	out := bits.NewVec(p.AirBits())
	access.AppendCode(out, p.AccessLAP, true)

	w := coding.NewWhitener(clk)

	hdr := bits.NewVec(18)
	h := p.Header
	hdr.AppendUint(uint64(h.AMAddr&0x7), 3)
	hdr.AppendUint(uint64(h.Type&0xF), 4)
	hdr.AppendBit(boolBit(h.Flow))
	hdr.AppendBit(boolBit(h.ARQN))
	hdr.AppendBit(boolBit(h.SEQN))
	hec := coding.HEC(hdr, uap)
	hdr.AppendUint(uint64(hec), 8)
	w.Apply(hdr)
	coding.AppendFEC13(out, hdr)

	pl := p.payloadBits(uap)
	if pl == nil {
		return out
	}
	w.Apply(pl)
	switch {
	case p.Header.Type.fec13Payload():
		coding.AppendFEC13(out, pl)
	case p.Header.Type.fec23():
		out.AppendVec(coding.EncodeFEC23(pl))
	default:
		out.AppendVec(pl)
	}
	return out
}

// payloadBits builds the unwhitened, un-FEC'd payload bit string
// (payload header + data + CRC), or nil for NULL/POLL.
func (p *Packet) payloadBits(uap uint8) *bits.Vec {
	t := p.Header.Type
	switch t {
	case TypeNull, TypePoll:
		return nil
	case TypeFHS:
		return p.fhsBits(uap)
	}
	if t.IsSCO() {
		if len(p.Payload) != t.MaxPayload() {
			panic(fmt.Sprintf("packet: %v voice frame must be exactly %d bytes, got %d",
				t, t.MaxPayload(), len(p.Payload)))
		}
		body := bits.NewVec(8 * len(p.Payload))
		body.AppendBytes(p.Payload)
		return body
	}
	if len(p.Payload) > t.MaxPayload() {
		panic(fmt.Sprintf("packet: %v payload %d exceeds max %d", t, len(p.Payload), t.MaxPayload()))
	}
	body := bits.NewVec(t.payloadHeaderBits() + 8*len(p.Payload) + 16)
	if t.payloadHeaderBits() == 8 {
		body.AppendUint(uint64(p.LLID&0x3), 2)
		body.AppendBit(boolBit(p.PFlow))
		body.AppendUint(uint64(len(p.Payload)), 5)
	} else {
		body.AppendUint(uint64(p.LLID&0x3), 2)
		body.AppendBit(boolBit(p.PFlow))
		body.AppendUint(uint64(len(p.Payload)), 9)
		body.AppendUint(0, 4) // undefined bits
	}
	body.AppendBytes(p.Payload)
	if t.hasCRC() {
		crc := coding.CRC16(body, uap)
		body.AppendUint(uint64(crc), 16)
	}
	return body
}

// fhsBits serialises the FHS information (144 bits) plus CRC.
func (p *Packet) fhsBits(uap uint8) *bits.Vec {
	f := p.FHS
	v := bits.NewVec(160)
	v.AppendUint(uint64(access.SyncWord(f.LAP)>>30), 34) // parity bits field
	v.AppendUint(uint64(f.LAP&0xFFFFFF), 24)
	v.AppendUint(0, 2)                // undefined
	v.AppendUint(uint64(f.SR&0x3), 2) // scan repetition
	v.AppendUint(0, 2)                // scan period (reserved in 1.2)
	v.AppendUint(uint64(f.UAP), 8)
	v.AppendUint(uint64(f.NAP), 16)
	v.AppendUint(uint64(f.Class&0xFFFFFF), 24)
	v.AppendUint(uint64(f.AMAddr&0x7), 3)
	v.AppendUint(uint64((f.CLK>>2)&0x3FFFFFF), 26) // CLK27-2
	v.AppendUint(0, 3)                             // page scan mode
	crc := coding.CRC16(v, uap)
	v.AppendUint(uint64(crc), 16)
	return v
}

func boolBit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Parse decodes received on-air bits. expectLAP is the access code the
// receiver's correlator is armed with; uap/clk as in Assemble; threshold
// is the correlator's sync-error budget. ID packets parse as soon as the
// access code correlates and the length is the bare 68-bit form.
func Parse(rx *bits.Vec, expectLAP uint32, uap uint8, clk uint32, threshold int) (*Packet, *RxInfo, error) {
	// One allocation covers the packet, header and quality report — the
	// receive path runs once per delivered transmission and dominated the
	// allocator before they were fused.
	a := &struct {
		p    Packet
		h    Header
		info RxInfo
	}{}
	info := &a.info
	errs, ok := access.Correlate(rx, expectLAP, threshold)
	info.SyncErrors = errs
	if !ok {
		return nil, info, ErrAccessCode
	}
	if rx.Len() < 72+54 {
		a.p.AccessLAP = expectLAP
		return &a.p, info, nil
	}

	w := coding.NewWhitener(clk)
	hdrBits, corrected, ok := coding.DecodeFEC13Range(rx, 72, 72+54)
	if !ok {
		return nil, info, ErrHeaderFEC
	}
	info.HeaderCorrected = corrected
	w.Apply(hdrBits)
	hec := uint8(hdrBits.Uint(10, 8))
	if coding.HECRange(hdrBits, 0, 10, uap) != hec {
		return nil, info, ErrHEC
	}
	a.h = Header{
		AMAddr: uint8(hdrBits.Uint(0, 3)),
		Type:   Type(hdrBits.Uint(3, 4)),
		Flow:   hdrBits.Bit(7) == 1,
		ARQN:   hdrBits.Bit(8) == 1,
		SEQN:   hdrBits.Bit(9) == 1,
	}
	h := &a.h
	a.p = Packet{AccessLAP: expectLAP, Header: h}
	p := &a.p

	switch h.Type {
	case TypeNull, TypePoll:
		return p, info, nil
	}
	body := rx.Slice(72+54, rx.Len())
	if h.Type.IsSCO() {
		return parseSCO(p, body, w, info)
	}
	if h.Type.fec23() {
		dec, fixed, ok := coding.DecodeFEC23(body)
		if !ok {
			return nil, info, ErrPayloadFEC
		}
		info.PayloadFixed = fixed
		body = dec
	}
	w.Apply(body)

	if h.Type == TypeFHS {
		return p, info, parseFHS(p, body, uap)
	}

	phb := h.Type.payloadHeaderBits()
	if phb == 0 || body.Len() < phb {
		return nil, info, ErrMalformed
	}
	var length int
	if phb == 8 {
		p.LLID = uint8(body.Uint(0, 2))
		p.PFlow = body.Bit(2) == 1
		length = int(body.Uint(3, 5))
	} else {
		p.LLID = uint8(body.Uint(0, 2))
		p.PFlow = body.Bit(2) == 1
		length = int(body.Uint(3, 9))
	}
	if length > h.Type.MaxPayload() {
		return nil, info, ErrMalformed
	}
	end := phb + 8*length
	crcBits := 0
	if h.Type.hasCRC() {
		crcBits = 16
	}
	if body.Len() < end+crcBits {
		return nil, info, ErrMalformed
	}
	if crcBits > 0 {
		crc := uint16(body.Uint(end, 16))
		if coding.CRC16Range(body, 0, end, uap) != crc {
			return nil, info, ErrCRC
		}
	}
	p.Payload = body.BytesRange(phb, end)
	if length == 0 {
		p.Payload = nil
	}
	return p, info, nil
}

// parseSCO decodes a voice payload: HV1 majority-votes its repetition
// code, HV2's Hamming blocks may declare an erasure, HV3 delivers the
// raw (possibly corrupted) bits — voice has no CRC and no ARQ.
func parseSCO(p *Packet, body *bits.Vec, w *coding.Whitener, info *RxInfo) (*Packet, *RxInfo, error) {
	t := p.Header.Type
	want := t.MaxPayload() * 8
	switch {
	case t.fec13Payload():
		dec, fixed, ok := coding.DecodeFEC13(body)
		if !ok || dec.Len() < want {
			return nil, info, ErrPayloadFEC
		}
		info.PayloadFixed = fixed
		body = dec
	case t.fec23():
		dec, fixed, ok := coding.DecodeFEC23(body)
		if !ok || dec.Len() < want {
			return nil, info, ErrPayloadFEC
		}
		info.PayloadFixed = fixed
		body = dec
	default:
		if body.Len() < want {
			return nil, info, ErrMalformed
		}
	}
	w.Apply(body)
	p.Payload = body.BytesRange(0, want)
	return p, info, nil
}

// parseFHS decodes the FHS information field into p.FHS.
func parseFHS(p *Packet, body *bits.Vec, uap uint8) error {
	if body.Len() < 160 {
		return ErrMalformed
	}
	crc := uint16(body.Uint(144, 16))
	if !coding.CheckCRC16(body.Slice(0, 144), uap, crc) {
		return ErrCRC
	}
	f := &FHSPayload{
		LAP:    uint32(body.Uint(34, 24)),
		SR:     uint8(body.Uint(60, 2)),
		UAP:    uint8(body.Uint(64, 8)),
		NAP:    uint16(body.Uint(72, 16)),
		Class:  uint32(body.Uint(88, 24)),
		AMAddr: uint8(body.Uint(112, 3)),
		CLK:    uint32(body.Uint(115, 26)) << 2,
	}
	p.FHS = f
	return nil
}
