package packet

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/sim"
)

const (
	testLAP uint32 = 0x21043A
	testUAP uint8  = 0x47
	testCLK uint32 = 0x155
)

func mkData(t Type, n int, seed uint64) *Packet {
	r := sim.NewRand(seed)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	return &Packet{
		AccessLAP: testLAP,
		Header:    &Header{AMAddr: 3, Type: t, SEQN: true},
		Payload:   data,
		LLID:      LLIDL2CAPStart,
	}
}

func TestIDPacketRoundTrip(t *testing.T) {
	p := NewID(access.GIAC)
	v := p.Assemble(0, 0)
	if v.Len() != 68 {
		t.Fatalf("ID air bits = %d, want 68", v.Len())
	}
	got, info, err := Parse(v, access.GIAC, 0, 0, access.DefaultCorrelatorThreshold)
	if err != nil || !got.IsID() || info.SyncErrors != 0 {
		t.Fatalf("ID parse failed: %v", err)
	}
	if got.Type() != TypeID {
		t.Fatal("type sentinel wrong")
	}
}

func TestControlPacketRoundTrip(t *testing.T) {
	for _, ty := range []Type{TypeNull, TypePoll} {
		p := &Packet{AccessLAP: testLAP, Header: &Header{AMAddr: 2, Type: ty, ARQN: true}}
		v := p.Assemble(testUAP, testCLK)
		if v.Len() != 126 {
			t.Fatalf("%v air bits = %d, want 126", ty, v.Len())
		}
		got, _, err := Parse(v, testLAP, testUAP, testCLK, 7)
		if err != nil {
			t.Fatalf("%v parse: %v", ty, err)
		}
		h := got.Header
		if h.Type != ty || h.AMAddr != 2 || !h.ARQN || h.SEQN || h.Flow {
			t.Fatalf("%v header mismatch: %+v", ty, h)
		}
	}
}

func TestDataPacketRoundTrip(t *testing.T) {
	cases := []struct {
		ty   Type
		n    int
		bits int
	}{
		{TypeDM1, 17, 72 + 54 + (8+17*8+16+9)/10*15},
		{TypeDH1, 27, 72 + 54 + 8 + 27*8 + 16},
		{TypeDM3, 121, 0},
		{TypeDH3, 183, 0},
		{TypeDM5, 224, 0},
		{TypeDH5, 339, 72 + 54 + 16 + 339*8 + 16},
		{TypeAUX1, 29, 72 + 54 + 8 + 29*8},
	}
	for _, c := range cases {
		p := mkData(c.ty, c.n, uint64(c.n))
		v := p.Assemble(testUAP, testCLK)
		if v.Len() != p.AirBits() {
			t.Fatalf("%v: Assemble len %d != AirBits %d", c.ty, v.Len(), p.AirBits())
		}
		if c.bits != 0 && v.Len() != c.bits {
			t.Fatalf("%v: air bits %d, want %d", c.ty, v.Len(), c.bits)
		}
		got, _, err := Parse(v, testLAP, testUAP, testCLK, 7)
		if err != nil {
			t.Fatalf("%v parse: %v", c.ty, err)
		}
		if got.Header.Type != c.ty || len(got.Payload) != c.n {
			t.Fatalf("%v: got type %v len %d", c.ty, got.Header.Type, len(got.Payload))
		}
		for i := range got.Payload {
			if got.Payload[i] != p.Payload[i] {
				t.Fatalf("%v: payload byte %d differs", c.ty, i)
			}
		}
		if got.LLID != LLIDL2CAPStart {
			t.Fatalf("%v: LLID lost", c.ty)
		}
	}
}

func TestEmptyPayloadRoundTrip(t *testing.T) {
	p := mkData(TypeDM1, 0, 1)
	got, _, err := Parse(p.Assemble(testUAP, testCLK), testLAP, testUAP, testCLK, 7)
	if err != nil || got.Payload != nil {
		t.Fatalf("empty payload: err=%v payload=%v", err, got.Payload)
	}
}

func TestMaxSlotDurations(t *testing.T) {
	// The standard's maximum air times per type (1 bit = 1 us): 366 us
	// for 1-slot packets, 1622/1626 us for DH3/DM3, 2871 us for 5-slot.
	limits := map[Type]int{
		TypeDM1: 366, TypeDH1: 366, TypeAUX1: 366,
		TypeDM3: 1626, TypeDH3: 1622,
		TypeDM5: 2871, TypeDH5: 2871,
	}
	for ty, lim := range limits {
		p := mkData(ty, ty.MaxPayload(), 9)
		if got := p.AirBits(); got > lim {
			t.Errorf("%v max-size packet is %d us > %d us slot budget", ty, got, lim)
		}
	}
	if TypeDM1.Slots() != 1 || TypeDH3.Slots() != 3 || TypeDM5.Slots() != 5 {
		t.Fatal("Slots() wrong")
	}
}

func TestFHSRoundTrip(t *testing.T) {
	f := func(lap uint32, uap uint8, nap uint16, class uint32, am uint8, clk uint32, sr uint8) bool {
		want := &FHSPayload{
			LAP: lap & 0xFFFFFF, UAP: uap, NAP: nap, Class: class & 0xFFFFFF,
			AMAddr: am & 0x7, CLK: clk & 0x0FFFFFFC, SR: sr & 0x3,
		}
		p := &Packet{
			AccessLAP: testLAP,
			Header:    &Header{AMAddr: want.AMAddr, Type: TypeFHS},
			FHS:       want,
		}
		v := p.Assemble(testUAP, testCLK)
		got, _, err := Parse(v, testLAP, testUAP, testCLK, 7)
		if err != nil {
			return false
		}
		g := got.FHS
		return g.LAP == want.LAP && g.UAP == want.UAP && g.NAP == want.NAP &&
			g.Class == want.Class && g.AMAddr == want.AMAddr &&
			g.CLK == want.CLK && g.SR == want.SR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFHSAirLength(t *testing.T) {
	p := &Packet{AccessLAP: testLAP, Header: &Header{Type: TypeFHS}, FHS: &FHSPayload{LAP: 1}}
	if p.AirBits() != 366 {
		t.Fatalf("FHS air bits = %d, want 366", p.AirBits())
	}
}

func TestWrongLAPRejected(t *testing.T) {
	p := mkData(TypeDH1, 5, 2)
	v := p.Assemble(testUAP, testCLK)
	if _, _, err := Parse(v, 0x00FF00, testUAP, testCLK, 7); !errors.Is(err, ErrAccessCode) {
		t.Fatalf("err = %v, want ErrAccessCode", err)
	}
}

func TestWrongUAPFailsHEC(t *testing.T) {
	p := mkData(TypeDH1, 5, 3)
	v := p.Assemble(testUAP, testCLK)
	if _, _, err := Parse(v, testLAP, testUAP+1, testCLK, 7); !errors.Is(err, ErrHEC) {
		t.Fatalf("err = %v, want ErrHEC", err)
	}
}

func TestWrongClockFailsParse(t *testing.T) {
	// Whitening differs -> header bits scramble -> HEC virtually always
	// fails (or header FEC breaks). Either way the packet must not parse.
	p := mkData(TypeDH1, 5, 4)
	v := p.Assemble(testUAP, testCLK)
	if _, _, err := Parse(v, testLAP, testUAP, testCLK+2, 7); err == nil {
		t.Fatal("packet with wrong whitening clock parsed")
	}
}

func TestHeaderSurvivesFECCorrectableErrors(t *testing.T) {
	p := mkData(TypeDH1, 10, 5)
	v := p.Assemble(testUAP, testCLK)
	// Flip one bit in each of the first 10 header triples (72..126).
	for i := 0; i < 10; i++ {
		v.FlipBit(72 + 3*i)
	}
	got, info, err := Parse(v, testLAP, testUAP, testCLK, 7)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if info.HeaderCorrected != 10 {
		t.Fatalf("HeaderCorrected = %d, want 10", info.HeaderCorrected)
	}
	if got.Header.Type != TypeDH1 {
		t.Fatal("header corrupted despite FEC")
	}
}

func TestDMPayloadSurvivesSingleErrorPerBlock(t *testing.T) {
	p := mkData(TypeDM1, 17, 6)
	v := p.Assemble(testUAP, testCLK)
	payloadStart := 72 + 54
	for b := payloadStart; b+15 <= v.Len(); b += 15 {
		v.FlipBit(b + 7)
	}
	got, info, err := Parse(v, testLAP, testUAP, testCLK, 7)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if info.PayloadFixed == 0 {
		t.Fatal("no payload corrections recorded")
	}
	for i := range got.Payload {
		if got.Payload[i] != p.Payload[i] {
			t.Fatal("payload corrupted despite FEC")
		}
	}
}

func TestDHPayloadErrorFailsCRC(t *testing.T) {
	p := mkData(TypeDH1, 10, 7)
	v := p.Assemble(testUAP, testCLK)
	v.FlipBit(72 + 54 + 20) // one payload bit; DH has no FEC
	if _, _, err := Parse(v, testLAP, testUAP, testCLK, 7); !errors.Is(err, ErrCRC) {
		t.Fatalf("err = %v, want ErrCRC", err)
	}
}

func TestDMPayloadDoubleErrorDetected(t *testing.T) {
	p := mkData(TypeDM1, 17, 8)
	v := p.Assemble(testUAP, testCLK)
	start := 72 + 54
	v.FlipBit(start + 1)
	v.FlipBit(start + 2) // two errors in one 15-bit block
	_, _, err := Parse(v, testLAP, testUAP, testCLK, 7)
	if !errors.Is(err, ErrPayloadFEC) && !errors.Is(err, ErrCRC) {
		t.Fatalf("err = %v, want payload FEC or CRC failure", err)
	}
}

func TestOversizePayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversize payload did not panic")
		}
	}()
	mkData(TypeDM1, 18, 9).Assemble(testUAP, testCLK)
}

func TestTypeStrings(t *testing.T) {
	if TypeID.String() != "ID" || TypeDM1.String() != "DM1" || TypeFHS.String() != "FHS" {
		t.Fatal("String() wrong")
	}
	if TypeHV1.String() != "HV1" {
		t.Fatal("HV1 String() wrong")
	}
	if Type(0x8).String() != "TYPE(8)" {
		t.Fatal("unknown type String() wrong")
	}
}

// Property: any packet that parses cleanly round-trips its header fields.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(am uint8, flow, arqn, seqn bool) bool {
		p := &Packet{
			AccessLAP: testLAP,
			Header:    &Header{AMAddr: am & 7, Type: TypePoll, Flow: flow, ARQN: arqn, SEQN: seqn},
		}
		got, _, err := Parse(p.Assemble(testUAP, testCLK), testLAP, testUAP, testCLK, 7)
		if err != nil {
			return false
		}
		h := got.Header
		return h.AMAddr == am&7 && h.Flow == flow && h.ARQN == arqn && h.SEQN == seqn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mkVoice(t Type, seed uint64) *Packet {
	r := sim.NewRand(seed)
	data := make([]byte, t.MaxPayload())
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	return &Packet{
		AccessLAP: testLAP,
		Header:    &Header{AMAddr: 1, Type: t},
		Payload:   data,
	}
}

func TestHVRoundTrip(t *testing.T) {
	for _, ty := range []Type{TypeHV1, TypeHV2, TypeHV3} {
		p := mkVoice(ty, uint64(ty))
		v := p.Assemble(testUAP, testCLK)
		if v.Len() != 366 {
			t.Fatalf("%v air bits = %d, want 366", ty, v.Len())
		}
		got, _, err := Parse(v, testLAP, testUAP, testCLK, 7)
		if err != nil {
			t.Fatalf("%v parse: %v", ty, err)
		}
		if len(got.Payload) != ty.MaxPayload() {
			t.Fatalf("%v payload len %d", ty, len(got.Payload))
		}
		for i := range got.Payload {
			if got.Payload[i] != p.Payload[i] {
				t.Fatalf("%v payload corrupted at %d", ty, i)
			}
		}
	}
}

func TestHV1SurvivesHeavyErrors(t *testing.T) {
	p := mkVoice(TypeHV1, 1)
	v := p.Assemble(testUAP, testCLK)
	// One error per payload triple: rate-1/3 voice shrugs it off.
	for i := 72 + 54; i+3 <= v.Len(); i += 3 {
		v.FlipBit(i)
	}
	got, info, err := Parse(v, testLAP, testUAP, testCLK, 7)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if info.PayloadFixed == 0 {
		t.Fatal("no corrections recorded")
	}
	for i := range got.Payload {
		if got.Payload[i] != p.Payload[i] {
			t.Fatal("voice corrupted despite FEC 1/3")
		}
	}
}

func TestHV3DeliversCorruptedBitsWithoutError(t *testing.T) {
	p := mkVoice(TypeHV3, 2)
	v := p.Assemble(testUAP, testCLK)
	v.FlipBit(72 + 54 + 10) // payload bit error; HV3 has no protection
	got, _, err := Parse(v, testLAP, testUAP, testCLK, 7)
	if err != nil {
		t.Fatalf("HV3 must deliver despite errors: %v", err)
	}
	diff := false
	for i := range got.Payload {
		if got.Payload[i] != p.Payload[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("flipped bit did not surface in HV3 payload")
	}
}

func TestHV2ErasureOnDoubleBlockError(t *testing.T) {
	p := mkVoice(TypeHV2, 3)
	v := p.Assemble(testUAP, testCLK)
	start := 72 + 54
	v.FlipBit(start + 1)
	v.FlipBit(start + 2)
	if _, _, err := Parse(v, testLAP, testUAP, testCLK, 7); !errors.Is(err, ErrPayloadFEC) {
		t.Fatalf("err = %v, want ErrPayloadFEC erasure", err)
	}
}

func TestHVWrongLengthPanics(t *testing.T) {
	p := &Packet{AccessLAP: testLAP, Header: &Header{Type: TypeHV1}, Payload: []byte{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("short voice frame did not panic")
		}
	}()
	p.Assemble(testUAP, testCLK)
}

func TestIsSCO(t *testing.T) {
	for _, ty := range []Type{TypeHV1, TypeHV2, TypeHV3} {
		if !ty.IsSCO() {
			t.Fatalf("%v must be SCO", ty)
		}
		if ty.Slots() != 1 {
			t.Fatalf("%v must be single slot", ty)
		}
	}
	if TypeDM1.IsSCO() || TypePoll.IsSCO() {
		t.Fatal("ACL/control types must not be SCO")
	}
}
