package packet

import "fmt"

// typeNames maps every named packet type to its String form, for the
// text codec. The map is the inverse of String for all named types.
var typeNames = map[Type]string{
	TypeNull: "NULL", TypePoll: "POLL", TypeFHS: "FHS",
	TypeDM1: "DM1", TypeDH1: "DH1",
	TypeHV1: "HV1", TypeHV2: "HV2", TypeHV3: "HV3",
	TypeAUX1: "AUX1",
	TypeDM3:  "DM3", TypeDH3: "DH3", TypeDM5: "DM5", TypeDH5: "DH5",
	TypeID: "ID",
}

// typeByName is the inverse of typeNames, built once at init.
var typeByName = func() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

// ParseType resolves a packet-type name ("DM1", "HV3", ...) as printed
// by Type.String. Unknown names return an error.
func ParseType(name string) (Type, error) {
	if t, ok := typeByName[name]; ok {
		return t, nil
	}
	return 0, fmt.Errorf("packet: unknown type %q", name)
}

// MarshalText encodes the type as its String name, which is what the
// netspec JSON wire format carries. Unnamed codes refuse to marshal
// rather than emit a form UnmarshalText cannot read back.
func (t Type) MarshalText() ([]byte, error) {
	if n, ok := typeNames[t]; ok {
		return []byte(n), nil
	}
	return nil, fmt.Errorf("packet: type %#x has no wire name", uint8(t))
}

// UnmarshalText decodes a type name produced by MarshalText.
func (t *Type) UnmarshalText(text []byte) error {
	v, err := ParseType(string(text))
	if err != nil {
		return err
	}
	*t = v
	return nil
}
