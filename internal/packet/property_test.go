package packet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: AirBits always equals the assembled length, for every type,
// payload size and header-field combination — the schedulers rely on it
// to reserve slots.
func TestAirBitsMatchesAssembleProperty(t *testing.T) {
	types := []Type{TypeNull, TypePoll, TypeDM1, TypeDH1, TypeAUX1,
		TypeDM3, TypeDH3, TypeDM5, TypeDH5, TypeHV1, TypeHV2, TypeHV3}
	f := func(tyIdx uint8, nRaw uint16, am uint8, flow, arqn, seqn bool, llid uint8) bool {
		ty := types[int(tyIdx)%len(types)]
		n := 0
		if ty.IsSCO() {
			n = ty.MaxPayload()
		} else if ty.MaxPayload() > 0 {
			n = int(nRaw) % (ty.MaxPayload() + 1)
		}
		p := &Packet{
			AccessLAP: testLAP,
			Header:    &Header{AMAddr: am & 7, Type: ty, Flow: flow, ARQN: arqn, SEQN: seqn},
			Payload:   make([]byte, n),
			LLID:      llid & 3,
		}
		return p.Assemble(testUAP, testCLK).Len() == p.AirBits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a clean round trip preserves every payload byte for every
// ACL data type and size.
func TestPayloadRoundTripProperty(t *testing.T) {
	types := []Type{TypeDM1, TypeDH1, TypeDM3, TypeDH3, TypeDM5, TypeDH5}
	f := func(tyIdx uint8, nRaw uint16, seed uint64, clk uint32) bool {
		ty := types[int(tyIdx)%len(types)]
		n := int(nRaw) % (ty.MaxPayload() + 1)
		r := sim.NewRand(seed)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		p := &Packet{
			AccessLAP: testLAP,
			Header:    &Header{AMAddr: 1, Type: ty},
			Payload:   data,
			LLID:      LLIDL2CAPStart,
		}
		clk &= (1 << 28) - 1
		got, _, err := Parse(p.Assemble(testUAP, clk), testLAP, testUAP, clk, 7)
		if err != nil || len(got.Payload) != n {
			return false
		}
		for i := range data {
			if got.Payload[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single random bit error anywhere in a DM1 packet never
// yields a silently corrupted payload — it is either corrected (FEC) or
// detected (correlator, HEC, FEC erasure or CRC).
func TestNoSilentCorruptionProperty(t *testing.T) {
	f := func(seed uint64, bitIdx uint16) bool {
		r := sim.NewRand(seed)
		data := make([]byte, 17)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		p := &Packet{
			AccessLAP: testLAP,
			Header:    &Header{AMAddr: 2, Type: TypeDM1, SEQN: true},
			Payload:   data,
			LLID:      LLIDL2CAPStart,
		}
		v := p.Assemble(testUAP, testCLK)
		v.FlipBit(int(bitIdx) % v.Len())
		got, _, err := Parse(v, testLAP, testUAP, testCLK, 7)
		if err != nil {
			return true // detected: fine
		}
		if got.Header.AMAddr != 2 || got.Header.Type != TypeDM1 || !got.Header.SEQN {
			return false // silent header corruption
		}
		if len(got.Payload) != len(data) {
			return false
		}
		for i := range data {
			if got.Payload[i] != data[i] {
				return false // silent payload corruption
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
