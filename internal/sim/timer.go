package sim

// Timer is a reusable one-shot event: the kernel-facing closure is
// allocated once, at construction, and every subsequent arm reuses it.
// Re-arming a timer from within its own callback (a self-rescheduling
// slot loop) therefore allocates nothing, which is what keeps the
// per-slot callbacks of the baseband layer off the garbage collector.
//
// A timer holds at most one pending event. Arming an armed timer
// cancels the previous arm first — callers that need two concurrent
// pending callbacks use two timers.
type Timer struct {
	k    *Kernel
	id   EventID // 0 while idle
	fire Event   // the once-allocated wrapper handed to the kernel
	fn   Event   // current callback, swapped per arm
}

// NewTimer creates an idle timer on the kernel. fn is the default
// callback; ScheduleFn/AtFn can override it per arm. Pass nil when every
// arm supplies its own callback.
func (k *Kernel) NewTimer(fn Event) *Timer {
	t := &Timer{k: k, fn: fn}
	t.fire = func() {
		t.id = 0
		t.fn()
	}
	return t
}

// Armed reports whether the timer has a pending event.
func (t *Timer) Armed() bool { return t.id != 0 }

// Stop cancels the pending event, if any, and reports whether one was
// cancelled. Stopping an idle timer is a no-op.
func (t *Timer) Stop() bool {
	if t.id == 0 {
		return false
	}
	ok := t.k.Cancel(t.id)
	t.id = 0
	return ok
}

// Schedule arms the timer to run its callback after delay ticks,
// replacing any pending arm.
func (t *Timer) Schedule(delay Duration) {
	t.Stop()
	t.id = t.k.Schedule(delay, t.fire)
}

// At arms the timer to run its callback at absolute time at, replacing
// any pending arm.
func (t *Timer) At(at Time) {
	t.Stop()
	t.id = t.k.At(at, t.fire)
}

// ScheduleFn replaces the timer's callback — for this arm and every
// later one until the next *Fn call — and arms it after delay ticks.
// Passing a pre-bound method value keeps the arm allocation-free.
// Callers that alternate callbacks on one timer must use the *Fn
// variants for every arm (plain Schedule/At re-fire whichever callback
// was installed last).
func (t *Timer) ScheduleFn(delay Duration, fn Event) {
	t.fn = fn
	t.Schedule(delay)
}

// AtFn is ScheduleFn at an absolute time: the replaced callback
// persists across later arms.
func (t *Timer) AtFn(at Time, fn Event) {
	t.fn = fn
	t.At(at)
}

// Pending reports the pending arm's timestamp, global sequence number
// and owning shard (see Kernel.EventInfo). ok is false when the timer
// is idle — snapshot code captures exactly the armed timers.
func (t *Timer) Pending() (at Time, seq uint64, shard int, ok bool) {
	if t.id == 0 {
		return 0, 0, 0, false
	}
	return t.k.EventInfo(t.id)
}

// AtOnFn arms the timer at absolute time at on an explicit shard with
// fn installed as the callback (persisting across later arms, like
// AtFn). Restore uses it to re-arm a captured timer on the shard it
// occupied at snapshot time.
func (t *Timer) AtOnFn(shard int, at Time, fn Event) {
	t.fn = fn
	t.Stop()
	t.id = t.k.AtOn(shard, at, t.fire)
}
