package sim

// Tracer receives value changes from traced signals. The VCD writer in
// internal/vcd implements it; tests use in-memory tracers.
type Tracer interface {
	// Declare registers a signal before the first change is recorded and
	// returns an opaque handle used for subsequent changes.
	Declare(name, kind string, width int) int
	// Change records that signal handle h took value v at time t. Values
	// are bool, int64/uint64, or string depending on the declared kind.
	Change(t Time, h int, v any)
}

// AddTracer attaches a tracer that future signals will register with.
func (k *Kernel) AddTracer(tr Tracer) { k.tracers = append(k.tracers, tr) }

type traceRef struct {
	tr Tracer
	h  int
}

// Signal is a traced, change-notifying value holder, the analogue of a
// SystemC sc_signal at behavioural level. Writes take effect immediately
// (the kernel's same-time event ordering supplies delta-cycle semantics);
// subscribers run synchronously on change.
type Signal[T comparable] struct {
	k       *Kernel
	name    string
	value   T
	refs    []traceRef
	watches []func(T)
}

// NewSignal creates a signal with an initial value and registers it with
// every tracer attached to the kernel. kind is the VCD-level type: "wire"
// for bool, "integer" for numeric, "string" for text.
func NewSignal[T comparable](k *Kernel, name, kind string, width int, initial T) *Signal[T] {
	s := &Signal[T]{k: k, name: name, value: initial}
	for _, tr := range k.tracers {
		h := tr.Declare(name, kind, width)
		s.refs = append(s.refs, traceRef{tr, h})
		tr.Change(k.now, h, initial)
	}
	return s
}

// NewBool creates a 1-bit traced signal.
func NewBool(k *Kernel, name string, initial bool) *Signal[bool] {
	return NewSignal(k, name, "wire", 1, initial)
}

// NewInt creates an integer traced signal of the given bit width.
func NewInt(k *Kernel, name string, width int, initial int64) *Signal[int64] {
	return NewSignal(k, name, "integer", width, initial)
}

// NewString creates a text signal (rendered as a VCD real-string).
func NewString(k *Kernel, name, initial string) *Signal[string] {
	return NewSignal(k, name, "string", 8, initial)
}

// Name returns the signal's hierarchical name.
func (s *Signal[T]) Name() string { return s.name }

// Get returns the current value.
func (s *Signal[T]) Get() T { return s.value }

// Set writes a new value; if it differs from the current one the change is
// traced and watchers run immediately.
func (s *Signal[T]) Set(v T) {
	if v == s.value {
		return
	}
	s.value = v
	for _, r := range s.refs {
		r.tr.Change(s.k.now, r.h, v)
	}
	for _, w := range s.watches {
		w(v)
	}
}

// Watch registers fn to run synchronously on every value change.
func (s *Signal[T]) Watch(fn func(T)) { s.watches = append(s.watches, fn) }
