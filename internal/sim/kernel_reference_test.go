package sim

import (
	"testing"
)

// This file pins the calendar-queue scheduler against a naive reference
// model: a sorted list ordered by (at, seq) with eager deletion. The
// reference is obviously correct and obviously slow; the kernel must
// produce the identical fire order and census over randomized scripts of
// schedule / cancel / step / run-until operations, including same-tick
// bursts, far-future (overflow-heap) events, off-grid timestamps, and
// cancels through stale and recycled EventIDs.

type refEntry struct {
	at  Time
	seq uint64
	sid int // script-level event identity
}

// refModel is the sorted-list reference scheduler.
type refModel struct {
	list []refEntry
	now  Time
}

func (m *refModel) insert(e refEntry) {
	i := len(m.list)
	for i > 0 && (e.at < m.list[i-1].at ||
		(e.at == m.list[i-1].at && e.seq < m.list[i-1].seq)) {
		i--
	}
	m.list = append(m.list, refEntry{})
	copy(m.list[i+1:], m.list[i:])
	m.list[i] = e
}

func (m *refModel) remove(sid int) {
	for i, e := range m.list {
		if e.sid == sid {
			m.list = append(m.list[:i], m.list[i+1:]...)
			return
		}
	}
	panic("reference model: removing unknown event")
}

// runUntil pops everything due by limit, appending sids in fire order.
func (m *refModel) runUntil(limit Time, out []int) []int {
	for len(m.list) > 0 && m.list[0].at <= limit {
		out = append(out, m.list[0].sid)
		m.now = m.list[0].at
		m.list = m.list[1:]
	}
	if m.now < limit {
		m.now = limit
	}
	return out
}

// step pops one event if due; reports whether one ran.
func (m *refModel) step(out []int) ([]int, bool) {
	if len(m.list) == 0 {
		return out, false
	}
	out = append(out, m.list[0].sid)
	m.now = m.list[0].at
	m.list = m.list[1:]
	return out, true
}

func TestKernelMatchesReferenceModel(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		runReferenceScript(t, seed)
	}
}

func runReferenceScript(t *testing.T, seed uint64) {
	t.Helper()
	k := NewKernel()
	r := NewRand(seed)
	model := &refModel{}
	var fired, expect []int
	firedSet := make(map[int]bool) // sids whose events have fired
	live := make([]int, 0)         // sids scheduled and not yet cancelled by the script
	ids := make(map[int]EventID)   // script id -> kernel id
	var dead []EventID             // fired or cancelled ids (stale-cancel fodder)
	seq := uint64(0)               // mirrors the kernel's schedule order
	sid := 0

	check := func(ctx string) {
		t.Helper()
		if len(fired) != len(expect) {
			t.Fatalf("seed %d %s: kernel fired %d events, reference %d", seed, ctx, len(fired), len(expect))
		}
		for i := range expect {
			if fired[i] != expect[i] {
				t.Fatalf("seed %d %s: fire order diverged at %d: kernel sid %d, reference sid %d",
					seed, ctx, i, fired[i], expect[i])
			}
		}
		if k.Pending() != len(model.list) {
			t.Fatalf("seed %d %s: census diverged: kernel %d pending, reference %d",
				seed, ctx, k.Pending(), len(model.list))
		}
		if k.Now() != model.now {
			t.Fatalf("seed %d %s: clocks diverged: kernel %v, reference %v", seed, ctx, k.Now(), model.now)
		}
	}

	for op := 0; op < 3000; op++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // schedule a burst
			var d Duration
			switch r.Intn(4) {
			case 0:
				d = Duration(r.Intn(3)) // same-tick / delta-cycle
			case 1:
				d = Duration(r.Intn(5 * SlotTicks)) // near, off-grid
			case 2:
				d = Slots(uint64(r.Intn(2 * defaultBuckets))) // slot-aligned, straddles the window edge
			case 3:
				d = Slots(uint64(1000+r.Intn(100000))) + Duration(r.Intn(7)) // far future: overflow heap
			}
			for burst := 1 + r.Intn(3); burst > 0; burst-- {
				my := sid
				sid++
				seq++
				id := k.Schedule(d, func() { fired = append(fired, my); firedSet[my] = true })
				model.insert(refEntry{at: k.Now() + Time(d), seq: seq, sid: my})
				live = append(live, my)
				ids[my] = id
			}
		case 6: // cancel through a held id (live, or fired with a recycled slot)
			if len(live) == 0 {
				continue
			}
			i := r.Intn(len(live))
			my := live[i]
			live = append(live[:i], live[i+1:]...)
			if firedSet[my] {
				// The event already ran; its id is stale and its pool slot
				// may since have been recycled. Cancel must refuse.
				if k.Cancel(ids[my]) {
					t.Fatalf("seed %d: cancel of fired sid %d reported true", seed, my)
				}
				check("after cancel of fired id")
			} else {
				if !k.Cancel(ids[my]) {
					t.Fatalf("seed %d: cancel of live sid %d reported false", seed, my)
				}
				model.remove(my)
			}
			dead = append(dead, ids[my])
			delete(ids, my)
		case 7: // stale cancel: fired or already-cancelled (possibly recycled slot)
			if len(dead) == 0 {
				continue
			}
			if k.Cancel(dead[r.Intn(len(dead))]) {
				t.Fatalf("seed %d: stale cancel reported true", seed)
			}
			check("after stale cancel")
		case 8: // bounded run
			limit := k.Now() + Time(r.Intn(100*SlotTicks))
			k.RunUntil(limit)
			expect = model.runUntil(limit, expect)
			check("after RunUntil")
		case 9: // single step
			var want bool
			expect, want = model.step(expect)
			if got := k.Step(); got != want {
				t.Fatalf("seed %d: Step = %v, reference %v", seed, got, want)
			}
			check("after Step")
		}
	}
	// Drain. Run leaves the clock at the last event rather than TimeMax.
	k.Run()
	for len(model.list) > 0 {
		expect, _ = model.step(expect)
	}
	if len(fired) != len(expect) {
		t.Fatalf("seed %d drain: kernel fired %d, reference %d", seed, len(fired), len(expect))
	}
	for i := range expect {
		if fired[i] != expect[i] {
			t.Fatalf("seed %d drain: order diverged at %d", seed, i)
		}
	}
	if k.Pending() != 0 {
		t.Fatalf("seed %d drain: %d events still pending", seed, k.Pending())
	}
}
