package sim

import (
	"fmt"
	"testing"
)

// Shard-scaling benches for the conservative kernel. On the 1-core dev
// container every shard count runs the same serial merge, so these
// numbers measure windowing/merge overhead, not speedup; multicore CI
// reads the scaling (see bench/README.md).

// benchShardedSlotGrid drives the kernel's dominant workload shape:
// per-shard self-rescheduling slot callbacks (a piconet's TX/RX loops)
// with a periodic cross-shard hand-off (a medium delivery).
func benchShardedSlotGrid(b *testing.B, shards int) {
	k := NewKernelShards(shards)
	k.SetCouplingHorizon(func() Time { return k.Now() + Time(Slots(4)) })
	fired := 0
	var pump func(sh int) Event
	pump = func(sh int) Event {
		var fn Event
		fn = func() {
			fired++
			if fired%64 == 0 {
				k.ScheduleOn((sh+1)%shards, Slots(1), fn)
			} else {
				k.Schedule(Slots(1), fn)
			}
		}
		return fn
	}
	for s := 0; s < shards; s++ {
		for j := 0; j < 4; j++ {
			k.ScheduleOn(s, Duration(j), pump(s))
		}
	}
	b.ResetTimer()
	k.RunUntil(Time(Slots(uint64(b.N))))
	b.StopTimer()
	if fired == 0 {
		b.Fatal("bench fired nothing")
	}
	b.ReportMetric(float64(fired)/float64(b.N), "events/slot")
}

// BenchmarkShardedKernelSlotGrid: slot-grid events through 1, 2 and 4
// shards. shards=1 takes the serial fast path — its delta against the
// committed baseline is the zero-regression gate; shards>1 adds the
// window merge.
func BenchmarkShardedKernelSlotGrid(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedSlotGrid(b, shards)
		})
	}
}

// BenchmarkShardedKernelWindowOverhead isolates the barrier cost: idle
// shards whose only event stream lives on shard 0, so every window
// opening pays the full refresh scan with nothing to merge.
func BenchmarkShardedKernelWindowOverhead(b *testing.B) {
	for _, shards := range []int{2, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			k := NewKernelShards(shards)
			n := 0
			var fn Event
			fn = func() {
				n++
				k.Schedule(Slots(1), fn)
			}
			k.ScheduleOn(0, 0, fn)
			b.ResetTimer()
			k.RunUntil(Time(Slots(uint64(b.N))))
		})
	}
}
