package sim

import (
	"runtime"
	"testing"
)

// This file pins the sharded conservative kernel. The contract under
// test is a strong one: shard count, shard assignment, the coupling
// horizon, GOMAXPROCS, and window retraction are all unobservable —
// every configuration fires the exact event sequence of the serial
// kernel, because sharding only changes where events are stored and
// when per-shard queue maintenance runs, never the merged (at, seq)
// order.

// runShardedReferenceScript drives a sharded kernel through the same
// randomized script family as TestKernelMatchesReferenceModel — plus
// cross-shard ScheduleOn hand-offs, affinity moves, nested schedules
// from inside callbacks, and mid-run window retractions — and checks
// fire order, census and clock against the sorted-list reference.
func runShardedReferenceScript(t *testing.T, seed uint64, shards int) {
	t.Helper()
	k := NewKernelShards(shards)
	// A horizon that stretches windows a few slots past their edge:
	// deterministic in `now` so it cannot perturb anything, wide enough
	// that barriers and mid-window firing both happen.
	k.SetCouplingHorizon(func() Time { return k.Now() + Time(Slots(3)) })
	r := NewRand(seed)
	model := &refModel{}
	var fired, expect []int
	firedSet := make(map[int]bool)
	live := make([]int, 0)
	ids := make(map[int]EventID)
	var dead []EventID
	seq := uint64(0)
	sid := 0

	check := func(ctx string) {
		t.Helper()
		if len(fired) != len(expect) {
			t.Fatalf("seed %d shards %d %s: kernel fired %d events, reference %d",
				seed, shards, ctx, len(fired), len(expect))
		}
		for i := range expect {
			if fired[i] != expect[i] {
				t.Fatalf("seed %d shards %d %s: fire order diverged at %d: kernel sid %d, reference sid %d",
					seed, shards, ctx, i, fired[i], expect[i])
			}
		}
		if k.Pending() != len(model.list) {
			t.Fatalf("seed %d shards %d %s: census diverged: kernel %d pending, reference %d",
				seed, shards, ctx, k.Pending(), len(model.list))
		}
		if k.Now() != model.now {
			t.Fatalf("seed %d shards %d %s: clocks diverged: kernel %v, reference %v",
				seed, shards, ctx, k.Now(), model.now)
		}
	}

	randDelay := func() Duration {
		switch r.Intn(4) {
		case 0:
			return Duration(r.Intn(3))
		case 1:
			return Duration(r.Intn(5 * SlotTicks))
		case 2:
			return Slots(uint64(r.Intn(2 * defaultBuckets)))
		default:
			return Slots(uint64(1000+r.Intn(100000))) + Duration(r.Intn(7))
		}
	}

	for op := 0; op < 3000; op++ {
		switch r.Intn(12) {
		case 0, 1, 2, 3: // schedule a burst on the current affinity shard
			d := randDelay()
			for burst := 1 + r.Intn(3); burst > 0; burst-- {
				my := sid
				sid++
				seq++
				id := k.Schedule(d, func() { fired = append(fired, my); firedSet[my] = true })
				model.insert(refEntry{at: k.Now() + Time(d), seq: seq, sid: my})
				live = append(live, my)
				ids[my] = id
			}
		case 4, 5: // cross-shard hand-off: explicit target shard
			d := randDelay()
			target := r.Intn(shards)
			my := sid
			sid++
			seq++
			// The callback itself schedules a child with no explicit
			// shard — it must inherit `target` (checked below) and fire
			// in plain (at, seq) order like everything else.
			childDelay := Duration(r.Intn(2 * SlotTicks))
			id := k.ScheduleOn(target, d, func() {
				fired = append(fired, my)
				firedSet[my] = true
				child := sid
				sid++
				seq++
				cid := k.Schedule(childDelay, func() { fired = append(fired, child); firedSet[child] = true })
				if sh, _, _ := decodeID(cid); sh != target {
					t.Errorf("seed %d: child of shard-%d event landed on shard %d", seed, target, sh)
				}
				model.insert(refEntry{at: k.Now() + Time(childDelay), seq: seq, sid: child})
				live = append(live, child)
				ids[child] = cid
			})
			if sh, _, _ := decodeID(id); sh != target {
				t.Fatalf("seed %d: ScheduleOn(%d) issued an ID on shard %d", seed, target, sh)
			}
			model.insert(refEntry{at: k.Now() + Time(d), seq: seq, sid: my})
			live = append(live, my)
			ids[my] = id
		case 6: // move the construction-time affinity
			k.SetAffinity(r.Intn(shards))
		case 7: // cancel through a held id
			if len(live) == 0 {
				continue
			}
			i := r.Intn(len(live))
			my := live[i]
			live = append(live[:i], live[i+1:]...)
			if firedSet[my] {
				if k.Cancel(ids[my]) {
					t.Fatalf("seed %d: cancel of fired sid %d reported true", seed, my)
				}
			} else {
				if !k.Cancel(ids[my]) {
					t.Fatalf("seed %d: cancel of live sid %d reported false", seed, my)
				}
				model.remove(my)
			}
			dead = append(dead, ids[my])
			delete(ids, my)
			check("after cancel")
		case 8: // stale cancel
			if len(dead) == 0 {
				continue
			}
			if k.Cancel(dead[r.Intn(len(dead))]) {
				t.Fatalf("seed %d: stale cancel reported true", seed)
			}
		case 9: // retract the open window: a horizon revocation mid-run
			k.RetractWindow(k.Now() + Time(r.Intn(SlotTicks)))
		case 10: // bounded run
			limit := k.Now() + Time(r.Intn(100*SlotTicks))
			k.RunUntil(limit)
			expect = model.runUntil(limit, expect)
			check("after RunUntil")
		case 11: // single step
			var want bool
			expect, want = model.step(expect)
			if got := k.Step(); got != want {
				t.Fatalf("seed %d: Step = %v, reference %v", seed, got, want)
			}
			check("after Step")
		}
	}
	k.Run()
	for len(model.list) > 0 {
		expect, _ = model.step(expect)
	}
	check("after drain")
	if k.Pending() != 0 {
		t.Fatalf("seed %d: %d events still pending after drain", seed, k.Pending())
	}
}

// TestShardedKernelMatchesReferenceModel runs the randomized script
// against the sorted-list reference over shard counts 2, 4 and 8.
func TestShardedKernelMatchesReferenceModel(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 6; seed++ {
			runShardedReferenceScript(t, seed, shards)
		}
	}
}

// TestShardedKernelForkedRefresh re-runs the reference script with
// GOMAXPROCS forced above 1, so refreshShards takes the forked branch
// even on a single-core machine — the branch the -race CI step needs to
// see executing.
func TestShardedKernelForkedRefresh(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for seed := uint64(1); seed <= 4; seed++ {
		runShardedReferenceScript(t, seed, 4)
	}
}

// shardedScriptTrace replays one deterministic event script and returns
// the fire order. Used to compare configurations that must be
// indistinguishable.
func shardedScriptTrace(shards, gomaxprocs int, horizon bool) []int {
	prev := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(prev)
	k := NewKernelShards(shards)
	if horizon {
		k.SetCouplingHorizon(func() Time { return k.Now() + Time(Slots(8)) })
	}
	var fired []int
	r := NewRand(99)
	sid := 0
	// Self-rescheduling chains on every shard, plus random cross-shard
	// hand-offs: the pattern a sharded world produces.
	var pump func(hops int) Event
	pump = func(hops int) Event {
		my := sid
		sid++
		return func() {
			fired = append(fired, my)
			if hops > 0 {
				d := Duration(r.Intn(3 * SlotTicks))
				if r.Intn(3) == 0 {
					k.ScheduleOn(r.Intn(shards)%k.Shards(), d, pump(hops-1))
				} else {
					k.Schedule(d, pump(hops-1))
				}
			}
		}
	}
	for i := 0; i < 32; i++ {
		k.ScheduleOn(i%shards, Duration(i*17), pump(40))
	}
	k.Run()
	return fired
}

// TestShardAndGOMAXPROCSUnobservable: the same script over shard counts
// {1, 2, 4, 8}, GOMAXPROCS {1, 4}, horizon on/off must fire the exact
// same sequence. (shards modulo k.Shards() keeps the script's hand-off
// targets valid on the serial kernel; the RNG draw sequence is
// identical in every configuration because firing order is.)
func TestShardAndGOMAXPROCSUnobservable(t *testing.T) {
	want := shardedScriptTrace(1, 1, false)
	if len(want) == 0 {
		t.Fatal("baseline script fired nothing")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, procs := range []int{1, 4} {
			for _, horizon := range []bool{false, true} {
				got := shardedScriptTrace(shards, procs, horizon)
				if len(got) != len(want) {
					t.Fatalf("shards=%d procs=%d horizon=%v fired %d events, want %d",
						shards, procs, horizon, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d procs=%d horizon=%v diverged at %d: got sid %d, want %d",
							shards, procs, horizon, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardWindowAccounting: windows open, the forked-refresh counter
// only moves when GOMAXPROCS allows, and ShardStats' live census agrees
// with Pending.
func TestShardWindowAccounting(t *testing.T) {
	k := NewKernelShards(4)
	for i := 0; i < 4; i++ {
		sh := i
		k.ScheduleOn(sh, Slots(uint64(1+i)), func() {})
	}
	st := k.ShardStats()
	if st.Shards != 4 || st.Windows != 0 {
		t.Fatalf("pre-run stats: %+v", st)
	}
	total := 0
	for _, l := range st.Live {
		total += l
	}
	if total != k.Pending() {
		t.Fatalf("live census %d != Pending %d", total, k.Pending())
	}
	k.Run()
	st = k.ShardStats()
	if st.Windows == 0 {
		t.Fatal("sharded run crossed no window barriers")
	}
	if runtime.GOMAXPROCS(0) == 1 && st.ParRefresh != 0 {
		t.Fatalf("forked refresh ran on GOMAXPROCS=1: %+v", st)
	}
}

// TestShardedStopAndRunUntilClock: Stop and the RunUntil clock contract
// behave identically on a sharded kernel.
func TestShardedStopAndRunUntilClock(t *testing.T) {
	k := NewKernelShards(3)
	n := 0
	for i := 0; i < 10; i++ {
		k.ScheduleOn(i%3, Slots(uint64(i+1)), func() {
			n++
			if n == 5 {
				k.Stop()
			}
		})
	}
	k.RunUntil(Time(Slots(100)))
	if n != 5 {
		t.Fatalf("Stop did not halt the sharded loop: %d events ran", n)
	}
	if got := k.RunUntil(Time(Slots(100))); got != Time(Slots(100)) {
		t.Fatalf("RunUntil clock = %v, want %v", got, Time(Slots(100)))
	}
	if k.Pending() != 0 {
		t.Fatalf("%d events pending after drain", k.Pending())
	}
}

// TestShardValidation pins the argument guards: shard counts and
// ScheduleOn/SetAffinity targets outside range must panic rather than
// corrupt the EventID encoding.
func TestShardValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewKernelShards(0)", func() { NewKernelShards(0) })
	mustPanic("NewKernelShards(257)", func() { NewKernelShards(MaxShards + 1) })
	k := NewKernelShards(2)
	mustPanic("ScheduleOn(2)", func() { k.ScheduleOn(2, 1, func() {}) })
	mustPanic("ScheduleOn(-1)", func() { k.ScheduleOn(-1, 1, func() {}) })
	mustPanic("SetAffinity(5)", func() { k.SetAffinity(5) })
	if NewKernelShards(MaxShards).Shards() != MaxShards {
		t.Fatal("MaxShards kernel did not build")
	}
}
