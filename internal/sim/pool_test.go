package sim

import (
	"testing"
)

// TestScheduleOverflowPanics pins the overflow guard: a delay that
// wraps k.now + delay past the end of the time axis must panic instead
// of silently scheduling the event in the past.
func TestScheduleOverflowPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(100, func() {})
	k.Run() // leave now > 0 so the wrap is strict
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing Schedule did not panic")
		}
	}()
	k.Schedule(Duration(^uint64(0)), func() {})
}

// TestScheduleNearOverflowStillWorks: the largest non-wrapping delay is
// legal (TimeMax is a valid timestamp, used as the Run sentinel).
func TestScheduleNearOverflowStillWorks(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Schedule(Duration(^uint64(0)), func() { ran = true }) // now = 0: lands on TimeMax
	if k.Run() != TimeMax || !ran {
		t.Fatal("event at TimeMax did not run")
	}
}

// TestCancelOfFiredIDWithRecycledSlot: once an event fires, its pool
// slot may be reused by a new event. Cancelling the stale ID must
// report false and must not touch the slot's new occupant.
func TestCancelOfFiredIDWithRecycledSlot(t *testing.T) {
	k := NewKernel()
	fired := 0
	id1 := k.Schedule(1, func() { fired++ })
	k.Run()
	// id1's slot is free; this Schedule recycles it.
	id2 := k.Schedule(1, func() { fired++ })
	if _, slot1, _ := decodeID(id1); func() bool { _, s2, _ := decodeID(id2); return s2 != slot1 }() {
		t.Fatalf("test premise broken: slot not recycled (id1=%x id2=%x)", id1, id2)
	}
	if k.Cancel(id1) {
		t.Fatal("cancelling a fired ID must report false")
	}
	if k.Pending() != 1 {
		t.Fatalf("stale Cancel disturbed the recycled slot: pending=%d", k.Pending())
	}
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if k.Cancel(id2) {
		t.Fatal("cancelling id2 after it fired must report false")
	}
}

// TestCancelScheduleChurnAcrossCompactBoundary hammers the pool with
// interleaved Schedule/Cancel waves that repeatedly cross the
// minCompactLen threshold in both directions, then checks that the
// survivors fire exactly once, in (at, seq) order.
func TestCancelScheduleChurnAcrossCompactBoundary(t *testing.T) {
	k := NewKernel()
	r := NewRand(42)
	type ev struct {
		at    Time
		order int
	}
	var want []ev
	var got []ev
	ids := make(map[EventID]Time)
	order := 0
	for wave := 0; wave < 50; wave++ {
		// Grow: schedule a batch around the compaction threshold.
		n := 8 + r.Intn(minCompactLen*2)
		for i := 0; i < n; i++ {
			at := k.Now() + Time(1+r.Intn(1000))
			o := order
			order++
			id := k.At(at, func() { got = append(got, ev{k.Now(), o}) })
			ids[id] = at
		}
		// Shrink: cancel a random majority so compaction triggers.
		for id := range ids {
			if r.Intn(3) > 0 {
				if !k.Cancel(id) {
					t.Fatal("live event failed to cancel")
				}
				delete(ids, id)
			}
		}
		// Fire a few steps so the pool recycles mid-churn.
		for i := 0; i < 4 && k.Step(); i++ {
		}
		for id, at := range ids {
			if at <= k.Now() {
				delete(ids, id) // fired by Step
			}
		}
	}
	for _, at := range ids {
		want = append(want, ev{at, 0})
	}
	remaining := k.Pending()
	if remaining != len(ids) {
		t.Fatalf("Pending = %d, want %d survivors", remaining, len(ids))
	}
	got = got[:0]
	k.Run()
	if len(got) != remaining {
		t.Fatalf("ran %d events, want %d", len(got), remaining)
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("events fired out of time order: %v after %v", got[i].at, got[i-1].at)
		}
	}
	_ = want
}

// TestPooledOrderMatchesReference pins the same-tick total order of the
// pooled queue against a straightforward reference model: events
// scheduled under heavy cancel churn must fire exactly in (at, then
// schedule-order) sequence — the determinism contract pooling must not
// bend.
func TestPooledOrderMatchesReference(t *testing.T) {
	k := NewKernel()
	r := NewRand(7)
	type ref struct {
		at  Time
		seq int
	}
	var model []ref
	var fired []int
	seq := 0
	for i := 0; i < 500; i++ {
		at := Time(r.Intn(40)) // few distinct ticks: plenty of same-tick ties
		s := seq
		seq++
		id := k.At(at, func() { fired = append(fired, s) })
		if r.Intn(4) == 0 {
			k.Cancel(id)
		} else {
			model = append(model, ref{at, s})
		}
	}
	// Reference order: stable sort by time, ties by schedule order.
	for i := 1; i < len(model); i++ {
		for j := i; j > 0 && (model[j].at < model[j-1].at ||
			(model[j].at == model[j-1].at && model[j].seq < model[j-1].seq)); j-- {
			model[j], model[j-1] = model[j-1], model[j]
		}
	}
	k.Run()
	if len(fired) != len(model) {
		t.Fatalf("fired %d events, want %d", len(fired), len(model))
	}
	for i := range model {
		if fired[i] != model[i].seq {
			t.Fatalf("order diverged at %d: fired seq %d, want %d", i, fired[i], model[i].seq)
		}
	}
}

// TestStepAndRunUntilShareCancelledBookkeeping drives the same
// cancel-heavy schedule through Step and RunUntil interleaved; the
// shared nextLive/take path must keep the tombstone counter exact so
// heap compaction never fires on a wrong census. Far-future due times
// force every event through the overflow heap, the lazy-cancel side.
func TestStepAndRunUntilShareCancelledBookkeeping(t *testing.T) {
	k := NewKernel()
	fired := 0
	var ids []EventID
	base := Slots(1000000)
	for i := 0; i < 4*minCompactLen; i++ {
		ids = append(ids, k.Schedule(base+Duration(1+i), func() { fired++ }))
	}
	// Cancel every other event: half the heap is tombstones.
	for i := 0; i < len(ids); i += 2 {
		k.Cancel(ids[i])
	}
	// Alternate single steps with bounded runs.
	for i := 0; k.Pending() > 0; i++ {
		if i%2 == 0 {
			k.Step()
		} else {
			k.RunUntil(k.Now() + 3)
		}
	}
	if fired != len(ids)/2 {
		t.Fatalf("fired = %d, want %d", fired, len(ids)/2)
	}
	q := k.shards[0]
	if q.heapCancelled != 0 || len(q.heap) != 0 || q.calCount != 0 {
		t.Fatalf("bookkeeping drifted: cancelled=%d heap=%d cal=%d",
			q.heapCancelled, len(q.heap), q.calCount)
	}
}

// TestSteadyStateSchedulingDoesNotGrowPool: a self-rescheduling timer
// loop (the baseband slot-callback pattern) must reuse one pool slot
// forever rather than growing the event pool.
func TestSteadyStateSchedulingDoesNotGrowPool(t *testing.T) {
	k := NewKernel()
	n := 0
	var tick Event
	tick = func() {
		n++
		if n < 10000 {
			k.Schedule(10, tick)
		}
	}
	k.Schedule(10, tick)
	k.Run()
	if n != 10000 {
		t.Fatalf("ticks = %d", n)
	}
	if len(k.shards[0].nodes) > 4 {
		t.Fatalf("steady-state loop grew the pool to %d nodes", len(k.shards[0].nodes))
	}
}
