package sim

import "sort"

// Checkpoint support: the kernel itself is never serialized. A snapshot
// instead captures, per layer, every pending event's (at, seq, shard)
// triple via EventInfo/Timer.Pending, and a restore re-schedules the
// same callbacks on a fresh kernel. Correctness rests on the re-arm
// ordering theorem: every event pending at snapshot time S carries a
// sequence number smaller than any event scheduled after S (seq is a
// single monotonic kernel-global counter), so re-arming the captured
// events in ascending original (at, seq) order hands them fresh
// sequence numbers that preserve every relative ordering — among each
// other and against all post-restore scheduling.
//
// RearmSet is the cross-layer half of that theorem. Same-instant events
// owned by different layers (a netspec traffic pump and the baseband
// slot timer it feeds, say) must interleave exactly as they did in the
// original run, so each layer appends its captured arms here and one
// Execute call replays the global sorted order.

// Rearm is one captured pending event: its original (At, Seq) position
// in the global order and an Arm closure that re-schedules it (via
// Timer.AtOnFn or Kernel.AtOn, on the event's original shard).
type Rearm struct {
	At  Time
	Seq uint64
	Arm func()
}

// RearmSet accumulates captured pending events across layers during a
// restore and replays them in the original global order.
type RearmSet struct {
	rearms []Rearm
}

// Add appends one captured event. Order of Add calls is irrelevant;
// Execute sorts.
func (s *RearmSet) Add(at Time, seq uint64, arm func()) {
	s.rearms = append(s.rearms, Rearm{At: at, Seq: seq, Arm: arm})
}

// Len reports how many captured events are waiting to be re-armed.
func (s *RearmSet) Len() int { return len(s.rearms) }

// Execute re-arms every captured event in ascending original (At, Seq)
// order — (At, Seq) pairs are unique, so the order is total — then
// empties the set. Arm closures run with the restored kernel's clock
// already at the snapshot instant, so scheduling at the original
// absolute time is always legal.
func (s *RearmSet) Execute() {
	sort.Slice(s.rearms, func(i, j int) bool {
		if s.rearms[i].At != s.rearms[j].At {
			return s.rearms[i].At < s.rearms[j].At
		}
		return s.rearms[i].Seq < s.rearms[j].Seq
	})
	for i := range s.rearms {
		s.rearms[i].Arm()
	}
	s.rearms = s.rearms[:0]
}
