package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBoolEdgeProbabilities(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := NewRand(12345)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.02) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.02) > 0.003 {
		t.Fatalf("Bool(0.02) frequency = %v", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(5)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide %d/100 times", same)
	}
}

// Property: mean of Intn(n) over many draws is near (n-1)/2 for any n.
func TestIntnMeanProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		r := NewRand(seed)
		sum := 0
		const draws = 20000
		for i := 0; i < draws; i++ {
			sum += r.Intn(n)
		}
		mean := float64(sum) / draws
		want := float64(n-1) / 2
		return math.Abs(mean-want) < float64(n)*0.05+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
