package sim

// Rand is a small, fast, deterministic PRNG (xorshift64*) used everywhere
// randomness is needed in the simulator: channel bit errors, backoff
// draws, clock phases. Seeding it explicitly makes whole simulations
// reproducible, which the statistical experiments rely on.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero is remapped so the
// generator never sticks).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Split derives an independent generator; handy for giving each device
// its own stream while keeping a single scenario seed.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() | 1)
}

// State returns the generator's exact stream position so a checkpoint
// can serialize it; SetState(State()) resumes the stream bit-for-bit.
func (r *Rand) State() uint64 { return r.state }

// SetState overwrites the stream position with a value previously
// returned by State.
func (r *Rand) SetState(s uint64) { r.state = s }

// ForkState derives a restored stream position from a checkpointed one.
// Seed zero returns state unchanged (exact resume); any other seed
// perturbs the position deterministically, so two forks of one
// checkpoint with different seeds diverge while each (state, seed)
// pair stays reproducible. The zero state is remapped exactly as in
// NewRand so a fork can never produce a stuck generator.
func ForkState(state, seed uint64) uint64 {
	if seed == 0 {
		return state
	}
	x := state ^ (seed * 0x9E3779B97F4A7C15)
	if x == 0 {
		x = seed | 1
	}
	return x
}
