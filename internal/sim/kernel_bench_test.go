package sim

import (
	"testing"
)

// Scheduler microbenchmarks: the three load shapes the baseband layer
// puts on the kernel, isolated from the rest of the model so queue
// changes are measurable apart from full-figure sweeps. See
// bench/README.md for how to read them.

// BenchmarkKernelSlotGrid is the steady-state hot path: a handful of
// self-rescheduling slot callbacks (TX loops, listen windows) marching
// down the 625 µs grid. Every schedule lands in the calendar window and
// every pop comes off the cursor bucket.
func BenchmarkKernelSlotGrid(b *testing.B) {
	k := NewKernel()
	const loops = 16
	for i := 0; i < loops; i++ {
		var fn Event
		fn = func() { k.Schedule(Slots(1), fn) }
		k.Schedule(Slots(1)+Duration(i*(SlotTicks/loops)), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// BenchmarkKernelCancelChurn is the re-armed timer pattern (Tpoll
// deadlines, response windows): every packet stops a pending timer and
// schedules a fresh one nearby. In-window cancels unlink eagerly, so the
// structures must stay at one live node throughout.
func BenchmarkKernelCancelChurn(b *testing.B) {
	k := NewKernel()
	nop := func() {}
	id := k.Schedule(Slots(50), nop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Cancel(id)
		id = k.Schedule(Slots(uint64(50+i%50)), nop)
	}
}

// BenchmarkKernelFarFutureMix interleaves slot-grid traffic with
// supervision-style far-future timeouts that are re-armed long before
// they fire — the load that exercises the overflow heap, its lazy
// cancellation, and window migration at once.
func BenchmarkKernelFarFutureMix(b *testing.B) {
	k := NewKernel()
	nop := func() {}
	superv := k.Schedule(Slots(32000), nop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(Slots(uint64(1+i%8))+Duration(i%3), nop)
		if i%4 == 0 {
			k.Cancel(superv)
			superv = k.Schedule(Slots(32000), nop)
		}
		k.Step()
	}
}
