package sim

import "testing"

// TestTimerRearmAllocFree: the self-rescheduling pattern must not
// allocate per arm — the whole point of the primitive.
func TestTimerRearmAllocFree(t *testing.T) {
	k := NewKernel()
	n := 0
	var tm *Timer
	tm = k.NewTimer(func() {
		n++
		if n < 1000 {
			tm.Schedule(5)
		}
	})
	tm.Schedule(5)
	allocs := testing.AllocsPerRun(1, func() { k.Run() })
	if n != 1000 {
		t.Fatalf("ticks = %d", n)
	}
	if allocs > 0 {
		t.Fatalf("timer re-arm loop allocated %.1f objects per run", allocs)
	}
}

// TestTimerRearmReplacesPending: arming an armed timer must cancel the
// previous arm — exactly one firing per arm cycle.
func TestTimerRearmReplacesPending(t *testing.T) {
	k := NewKernel()
	n := 0
	tm := k.NewTimer(func() { n++ })
	tm.Schedule(10)
	tm.Schedule(20) // replaces the first arm
	k.Run()
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
	if k.Now() != 20 {
		t.Fatalf("fired at %v, want 20", k.Now())
	}
}

// TestTimerStop covers Stop on armed, idle and fired timers.
func TestTimerStop(t *testing.T) {
	k := NewKernel()
	n := 0
	tm := k.NewTimer(func() { n++ })
	if tm.Stop() {
		t.Fatal("stopping an idle timer must report false")
	}
	tm.Schedule(5)
	if !tm.Armed() {
		t.Fatal("timer not armed after Schedule")
	}
	if !tm.Stop() {
		t.Fatal("stopping an armed timer must report true")
	}
	k.Run()
	if n != 0 {
		t.Fatal("stopped timer fired")
	}
	tm.Schedule(5)
	k.Run()
	if n != 1 || tm.Armed() {
		t.Fatalf("n=%d armed=%v after firing", n, tm.Armed())
	}
	if tm.Stop() {
		t.Fatal("stopping a fired timer must report false")
	}
}

// TestTimerScheduleFn: per-arm callbacks replace the default and stick
// for the firing, without disturbing a concurrent timer.
func TestTimerScheduleFn(t *testing.T) {
	k := NewKernel()
	var order []string
	a := k.NewTimer(func() { order = append(order, "default") })
	a.ScheduleFn(10, func() { order = append(order, "override") })
	b := k.NewTimer(nil)
	b.AtFn(5, func() { order = append(order, "b") })
	k.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "override" {
		t.Fatalf("order = %v", order)
	}
}

// TestTimerRearmFromOwnCallback: the slot-loop pattern — re-arming from
// inside the callback — must leave Armed() true for the new arm.
func TestTimerRearmFromOwnCallback(t *testing.T) {
	k := NewKernel()
	n := 0
	var tm *Timer
	tm = k.NewTimer(func() {
		n++
		if n == 1 && tm.Armed() {
			t.Fatal("Armed() true while the firing is in progress")
		}
		if n < 3 {
			tm.Schedule(7)
		}
	})
	tm.Schedule(7)
	k.Run()
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}
