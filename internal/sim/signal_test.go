package sim

import "testing"

type memTracer struct {
	names   []string
	changes []struct {
		t Time
		h int
		v any
	}
}

func (m *memTracer) Declare(name, kind string, width int) int {
	m.names = append(m.names, name)
	return len(m.names) - 1
}

func (m *memTracer) Change(t Time, h int, v any) {
	m.changes = append(m.changes, struct {
		t Time
		h int
		v any
	}{t, h, v})
}

func TestSignalTraceAndWatch(t *testing.T) {
	k := NewKernel()
	tr := &memTracer{}
	k.AddTracer(tr)
	s := NewBool(k, "rx_on", false)

	var seen []bool
	s.Watch(func(v bool) { seen = append(seen, v) })

	k.Schedule(10, func() { s.Set(true) })
	k.Schedule(20, func() { s.Set(true) }) // no change: no trace, no watch
	k.Schedule(30, func() { s.Set(false) })
	k.Run()

	if len(tr.names) != 1 || tr.names[0] != "rx_on" {
		t.Fatalf("declared = %v", tr.names)
	}
	// initial + two real changes
	if len(tr.changes) != 3 {
		t.Fatalf("changes = %d, want 3", len(tr.changes))
	}
	if tr.changes[1].t != 10 || tr.changes[1].v != true {
		t.Fatalf("change[1] = %+v", tr.changes[1])
	}
	if tr.changes[2].t != 30 || tr.changes[2].v != false {
		t.Fatalf("change[2] = %+v", tr.changes[2])
	}
	if len(seen) != 2 || seen[0] != true || seen[1] != false {
		t.Fatalf("watched = %v", seen)
	}
}

func TestSignalKinds(t *testing.T) {
	k := NewKernel()
	i := NewInt(k, "freq", 7, 3)
	if i.Get() != 3 {
		t.Fatal("int initial wrong")
	}
	i.Set(78)
	if i.Get() != 78 {
		t.Fatal("int set wrong")
	}
	s := NewString(k, "state", "STANDBY")
	s.Set("INQUIRY")
	if s.Get() != "INQUIRY" {
		t.Fatal("string set wrong")
	}
	if s.Name() != "state" {
		t.Fatal("name wrong")
	}
}

func TestSignalNoTracerOK(t *testing.T) {
	k := NewKernel()
	b := NewBool(k, "x", false)
	b.Set(true) // must not panic without tracers
	if !b.Get() {
		t.Fatal("value lost")
	}
}
