package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Conservative sharded execution.
//
// A sharded kernel (NewKernelShards) partitions the event queue into N
// independent shardQueues — typically one per spatial cell or piconet,
// assigned by the layer above — while preserving the exact global
// (at, seq) firing order of the serial kernel. The conservative part is
// *when queue maintenance happens*, not *what fires when*:
//
//	window open            barrier              window open
//	     |  shard 0: advance cursor, migrate, peek  |
//	     |  shard 1: advance cursor, migrate, peek  |   ...
//	     |  shard 2: advance cursor, migrate, peek  |
//	     +----- fire merged (at, seq) minimum ------+
//
// At each window edge every shard fast-forwards its own calendar cursor
// to the window start and refreshes its cached head — strictly
// shard-local work, forked across goroutines when more than one shard
// has catching-up to do and GOMAXPROCS allows. Between edges the driver
// fires the global minimum across the cached heads, which costs one
// O(shards) comparison per event instead of a full queue scan.
//
// The window end is max(next slot edge, coupling horizon): the 625 µs
// slot grid guarantees a shard cannot receive cross-shard work inside
// its current slot except through the medium, and channel.QuietUntil()
// bounds when the medium can next couple shards (it pins to `now` while
// any transmission is in flight). Because callbacks always execute in
// the single global order on the driver goroutine, a window that is too
// long can never reorder events — a stale or revoked horizon degrades
// refresh batching, never determinism. That is what makes shard count
// and GOMAXPROCS unobservable in output, and what the shard-equivalence
// suite pins byte-for-byte.

// Shards reports the number of event-queue shards (1 for NewKernel).
func (k *Kernel) Shards() int { return len(k.shards) }

// SetAffinity directs subsequent Schedule/At calls at a shard until the
// next event fires (firing an event sets the affinity to its shard).
// Layers above use it while constructing a world so each device's
// initial self-scheduling chain starts on the device's shard.
func (k *Kernel) SetAffinity(shard int) {
	if shard < 0 || shard >= len(k.shards) {
		panic(fmt.Sprintf("sim: SetAffinity(%d) with %d shards", shard, len(k.shards)))
	}
	k.cur = shard
}

// Affinity reports the current scheduling shard: the shard of the most
// recently fired event, or the last SetAffinity target.
func (k *Kernel) Affinity() int { return k.cur }

// SetCouplingHorizon installs the medium-coupling probe used to extend
// shard windows past the next slot edge (core wires channel.QuietUntil
// here). fn is called at window openings only; nil reverts to pure
// slot-edge windows. The horizon is a batching hint: a horizon that is
// too optimistic cannot reorder events, because callbacks always fire
// in the merged global order.
func (k *Kernel) SetCouplingHorizon(fn func() Time) { k.horizon = fn }

// RetractWindow shrinks the current shard window in response to a
// coupling-horizon revocation (a quiet promise withdrawn mid-window,
// e.g. a reactive-only device deciding to transmit). The next event at
// or past t then re-opens the window, re-reading the horizon. Ordering
// is unaffected either way; retracting keeps window accounting honest
// and refresh batches aligned with real coupling points.
func (k *Kernel) RetractWindow(t Time) {
	if t < k.now {
		t = k.now
	}
	if t < k.windowEnd {
		k.windowEnd = t
	}
}

// ShardStats is a snapshot of sharded-execution counters, for benches
// and scaling diagnostics.
type ShardStats struct {
	Shards     int    // number of event-queue shards
	Windows    uint64 // window openings (barriers crossed)
	ParRefresh uint64 // window openings whose shard refresh ran forked
	Live       []int  // pending events per shard
}

// ShardStats returns current sharded-execution counters. On a
// single-shard kernel Windows and ParRefresh stay zero.
func (k *Kernel) ShardStats() ShardStats {
	st := ShardStats{
		Shards:     len(k.shards),
		Windows:    k.windows,
		ParRefresh: k.parRefresh,
		Live:       make([]int, len(k.shards)),
	}
	for i, sq := range k.shards {
		st.Live[i] = sq.live
	}
	return st
}

// earliest returns the shard and pool slot of the globally earliest
// pending event under the (at, seq) order, or (nil, -1) when every
// shard is drained. Heads are cached per shard, so the steady-state
// cost is one comparison per shard.
func (k *Kernel) earliest() (*shardQueue, int32) {
	var best *shardQueue
	bestSlot := int32(-1)
	for _, sq := range k.shards {
		s := sq.peek()
		if s < 0 {
			continue
		}
		if bestSlot < 0 || lessEvent(&sq.nodes[s], &best.nodes[bestSlot]) {
			best, bestSlot = sq, s
		}
	}
	return best, bestSlot
}

// runSharded is RunUntil's driver loop for kernels with 2+ shards. It
// fires the merged (at, seq) minimum exactly as the serial loop does;
// windows only decide when the per-shard cursor/head maintenance runs
// (and whether it forks).
func (k *Kernel) runSharded(limit Time) {
	for !k.stopped {
		if k.now >= k.windowEnd {
			k.openWindow(k.now)
		}
		sq, s := k.earliest()
		if s < 0 {
			break
		}
		at := sq.nodes[s].at
		if at > limit {
			break
		}
		if at >= k.windowEnd {
			// Barrier: every shard has drained up to the window edge.
			// Re-open at the event time (which may sit many windows
			// ahead after an idle stretch) and re-merge — the horizon
			// may have moved while this window was current.
			k.openWindow(at)
			continue
		}
		k.cur = sq.id
		sq.take(s)
		k.fire(sq, s)
	}
}

// openWindow starts a window at start: computes the exclusive end
// (next slot edge, extended to the coupling horizon when one is
// installed) and brings every shard's cursor and cached head up to
// date, forking the refresh across goroutines when more than one shard
// needs it and the machine has cores to use.
func (k *Kernel) openWindow(start Time) {
	s := uint64(start)/SlotTicks + 1
	end := TimeMax
	if s <= ^uint64(0)/SlotTicks {
		end = Time(s * SlotTicks)
	}
	if k.horizon != nil {
		if h := k.horizon(); h > end {
			end = h
		}
	}
	k.windowEnd = end
	k.windows++
	k.refreshShards(start)
}

// refreshShards fast-forwards each shard's calendar cursor to start's
// slot (migrating newly in-window heap events) and recomputes stale
// cached heads. Everything touched is shard-local — nodes, buckets,
// heap, free list, head — so the forked branch is race-free by
// construction; the race-detector CI runs pin that.
func (k *Kernel) refreshShards(start Time) {
	slot := uint64(start) / SlotTicks
	need := k.scratch[:0]
	for _, sq := range k.shards {
		if sq.curSlot < slot || sq.head == headUnknown {
			need = append(need, sq)
		}
	}
	k.scratch = need[:0]
	if len(need) >= 2 && runtime.GOMAXPROCS(0) > 1 {
		k.parRefresh++
		var wg sync.WaitGroup
		wg.Add(len(need))
		for _, sq := range need {
			go func(sq *shardQueue) {
				defer wg.Done()
				sq.advanceTo(slot)
				sq.peek()
			}(sq)
		}
		wg.Wait()
		return
	}
	for _, sq := range need {
		sq.advanceTo(slot)
		sq.peek()
	}
}

// advanceTo fast-forwards the calendar cursor to slot. Every pending
// event's timestamp is >= now >= the window start, so its slot index is
// >= slot and the advance can never strand a chained event behind the
// cursor; migrate then pulls newly in-window heap events into their
// buckets (ordering-neutral, as always).
func (sq *shardQueue) advanceTo(slot uint64) {
	if slot > sq.curSlot {
		sq.curSlot = slot
		sq.recalcLim()
		sq.migrate()
	}
}
