package sim

import (
	"testing"
)

// Table-driven edge cases for Kernel.NextDue, the quiescence probe the
// whole-world idle fast-forward trusts (see baseband's quiescence
// path). Until now it was only exercised incidentally; these cases pin
// it across the calendar-window/overflow-heap boundary, immediately
// after cursor-advance migration and window-doubling rehash, through
// heap tombstones, and across shards.
func TestNextDueEdgeCases(t *testing.T) {
	calLim0 := func() Time { return NewKernel().shards[0].calLim } // initial window edge
	cases := []struct {
		name string
		make func() *Kernel // build a kernel in the state under test
		want Time
		ok   bool
	}{
		{
			name: "empty kernel",
			make: NewKernel,
			ok:   false,
		},
		{
			name: "calendar-only event",
			make: func() *Kernel {
				k := NewKernel()
				k.Schedule(Slots(3), func() {})
				return k
			},
			want: Time(Slots(3)), ok: true,
		},
		{
			name: "heap-only event (beyond the window)",
			make: func() *Kernel {
				k := NewKernel()
				k.Schedule(Slots(defaultBuckets*10), func() {})
				if k.shards[0].calCount != 0 || len(k.shards[0].heap) != 1 {
					t.Fatal("premise broken: event not in the overflow heap")
				}
				return k
			},
			want: Time(Slots(defaultBuckets * 10)), ok: true,
		},
		{
			name: "one tick inside the window edge goes to the calendar",
			make: func() *Kernel {
				k := NewKernel()
				k.At(calLim0()-1, func() {})
				if k.shards[0].calCount != 1 {
					t.Fatal("premise broken: calLim-1 not in the calendar")
				}
				return k
			},
			want: calLim0() - 1, ok: true,
		},
		{
			name: "exactly at the window edge goes to the heap",
			make: func() *Kernel {
				k := NewKernel()
				k.At(calLim0(), func() {})
				if len(k.shards[0].heap) != 1 {
					t.Fatal("premise broken: calLim event not in the heap")
				}
				return k
			},
			want: calLim0(), ok: true,
		},
		{
			name: "straddling the boundary reports the calendar side",
			make: func() *Kernel {
				k := NewKernel()
				k.At(calLim0()+5, func() {})
				k.At(calLim0()-5, func() {})
				return k
			},
			want: calLim0() - 5, ok: true,
		},
		{
			name: "after migrate: heap event pulled into the advanced window",
			make: func() *Kernel {
				k := NewKernel()
				far := Time(Slots(defaultBuckets + 10))
				k.At(far, func() {})                           // heap at schedule time
				k.At(Time(Slots(defaultBuckets-2)), func() {}) // near the old edge
				k.RunUntil(Time(Slots(defaultBuckets - 1)))    // cursor advance migrates
				q := k.shards[0]
				if q.calCount != 1 || len(q.heap) != 0 {
					t.Fatalf("premise broken: not migrated (cal=%d heap=%d)", q.calCount, len(q.heap))
				}
				return k
			},
			want: Time(Slots(defaultBuckets + 10)), ok: true,
		},
		{
			name: "after window-doubling rehash",
			make: func() *Kernel {
				k := NewKernel()
				// Overfill the calendar to force growCalendar, with the
				// minimum scheduled in the middle of the pour.
				for i := 0; i < 2*defaultBuckets; i++ {
					k.Schedule(Slots(uint64(5+i%7)), func() {})
				}
				k.Schedule(Slots(2), func() {})
				for i := 0; i < defaultBuckets; i++ {
					k.Schedule(Slots(uint64(5+i%7)), func() {})
				}
				if len(k.shards[0].bucketHead) <= defaultBuckets {
					t.Fatal("premise broken: calendar did not double")
				}
				return k
			},
			want: Time(Slots(2)), ok: true,
		},
		{
			name: "widened window admits a formerly-out-of-window event",
			make: func() *Kernel {
				k := NewKernel()
				beyond := Time(Slots(defaultBuckets + 50)) // heap under the initial window
				k.At(beyond, func() {})
				for i := 0; i < 3*defaultBuckets; i++ { // force doubling: window now covers `beyond`
					k.Schedule(Slots(uint64(i%11)), func() {})
				}
				k.RunUntil(Time(Slots(defaultBuckets))) // drain near work; cursor advance migrates
				q := k.shards[0]
				if len(q.heap) != 0 || q.calCount != 1 {
					t.Fatalf("premise broken: beyond-event not migrated (cal=%d heap=%d)", q.calCount, len(q.heap))
				}
				return k
			},
			want: Time(Slots(defaultBuckets + 50)), ok: true,
		},
		{
			name: "sees through cancelled heap tombstones",
			make: func() *Kernel {
				k := NewKernel()
				early := k.Schedule(Slots(1000), func() {})
				k.Schedule(Slots(2000), func() {})
				k.Cancel(early) // tombstone at the heap head
				return k
			},
			want: Time(Slots(2000)), ok: true,
		},
		{
			name: "all events cancelled",
			make: func() *Kernel {
				k := NewKernel()
				a := k.Schedule(Slots(3), func() {})
				b := k.Schedule(Slots(3000), func() {})
				k.Cancel(a)
				k.Cancel(b)
				return k
			},
			ok: false,
		},
		{
			name: "degenerate far-future window (calLim overflow guard)",
			make: func() *Kernel {
				k := NewKernel()
				k.At(TimeMax-5, func() {})
				k.At(TimeMax-9, func() {})
				return k
			},
			want: TimeMax - 9, ok: true,
		},
		{
			name: "sharded: global minimum across shards",
			make: func() *Kernel {
				k := NewKernelShards(4)
				k.ScheduleOn(3, Slots(9), func() {})
				k.ScheduleOn(1, Slots(4), func() {})
				k.ScheduleOn(2, Slots(defaultBuckets*100), func() {})
				return k
			},
			want: Time(Slots(4)), ok: true,
		},
		{
			name: "sharded: minimum in an overflow heap on a non-zero shard",
			make: func() *Kernel {
				k := NewKernelShards(2)
				k.ScheduleOn(0, Slots(defaultBuckets*200), func() {})
				k.ScheduleOn(1, Slots(defaultBuckets*100), func() {})
				return k
			},
			want: Time(Slots(defaultBuckets * 100)), ok: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := tc.make()
			due, ok := k.NextDue()
			if ok != tc.ok {
				t.Fatalf("NextDue ok = %v, want %v", ok, tc.ok)
			}
			if ok && due != tc.want {
				t.Fatalf("NextDue = %v, want %v", due, tc.want)
			}
			// NextDue is a pure probe: asking again, and then draining,
			// must agree with itself.
			if due2, ok2 := k.NextDue(); due2 != due || ok2 != ok {
				t.Fatalf("NextDue not idempotent: (%v,%v) then (%v,%v)", due, ok, due2, ok2)
			}
			if ok {
				if end := k.Run(); end < due {
					t.Fatalf("drain ended at %v, before the reported due time %v", end, due)
				}
			}
		})
	}
}
