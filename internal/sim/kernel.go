// Package sim implements a deterministic discrete-event simulation kernel
// in the style of the SystemC scheduler the paper's model runs on.
//
// Time is counted in integer ticks of 0.5 µs so that every Bluetooth
// timing quantity (1 µs bit, 312.5 µs half slot, 625 µs slot) is an exact
// integer. Events scheduled for the same tick fire in the order they were
// scheduled (a total order that plays the role of SystemC delta cycles),
// which makes every simulation run bit-for-bit reproducible.
//
// The scheduler is a calendar queue over the 625 µs slot grid: near-future
// events hash into per-slot buckets (O(1) schedule/cancel/pop for the
// slot-aligned traffic that dominates the model) while far-future events —
// supervision timeouts, long sniff intervals — wait in an overflow binary
// heap until the calendar window reaches them. Event nodes live in a pool
// and recycled slots carry a generation tag so stale EventIDs can never
// touch a reused slot. The scheduler is allocation-free in steady state.
// See ARCHITECTURE.md, "Performance model".
package sim

import (
	"fmt"
	"math/bits"
)

// Time is a simulation timestamp in ticks (0.5 µs units).
type Time uint64

// Duration is a span of simulation time in ticks (0.5 µs units).
type Duration uint64

// Tick granularity constants. All Bluetooth timing in this repository is
// expressed with these so that slot arithmetic stays integral.
const (
	// TicksPerMicrosecond is the kernel resolution: 2 ticks = 1 µs.
	TicksPerMicrosecond = 2
	// BitTicks is the on-air duration of one symbol at 1 Mbit/s.
	BitTicks = 2
	// HalfSlotTicks is 312.5 µs, the Bluetooth native-clock period (3.2 kHz).
	HalfSlotTicks = 625
	// SlotTicks is one 625 µs Bluetooth time slot.
	SlotTicks = 1250
)

// TimeMax is the end-of-time sentinel: Run executes until the queue
// drains by running until this limit.
const TimeMax = Time(^uint64(0))

// Microseconds converts a microsecond count to a Duration.
func Microseconds(us uint64) Duration { return Duration(us * TicksPerMicrosecond) }

// Slots converts a slot count to a Duration.
func Slots(n uint64) Duration { return Duration(n * SlotTicks) }

// Micros reports t in microseconds (truncating the half-microsecond bit).
func (t Time) Micros() uint64 { return uint64(t) / TicksPerMicrosecond }

// Slot reports the index of the 625 µs slot containing t.
func (t Time) Slot() uint64 { return uint64(t) / SlotTicks }

// String formats the time as microseconds for logs and waveforms.
func (t Time) String() string {
	us2 := uint64(t)
	if us2%2 == 0 {
		return fmt.Sprintf("%dus", us2/2)
	}
	return fmt.Sprintf("%d.5us", us2/2)
}

// Event is a callback scheduled to run at a simulation time.
type Event func()

// EventID identifies a scheduled event so it can be cancelled. An ID
// packs the pool slot of the event with the slot's generation at
// scheduling time, so an ID held past its event's firing (or
// cancellation) is recognised as stale even after the slot is recycled.
type EventID uint64

// The zero EventID is never issued (slots are encoded +1), so callers
// can use 0 as "no event pending".

const (
	evFree      = iota // slot is on the free list
	evPending          // scheduled, will fire
	evCancelled        // still in the overflow heap, dropped when popped
)

// Where a pending event currently lives.
const (
	locNone = iota // free / not enqueued
	locCal         // chained into a calendar bucket
	locHeap        // in the overflow heap
)

type scheduledEvent struct {
	at    Time
	seq   uint64 // tie-break: schedule order
	fn    Event
	next  int32  // successor in the bucket chain (calendar only), -1 = none
	gen   uint32 // slot generation, bumped on every release
	state uint8
	loc   uint8
}

func makeID(slot int32, gen uint32) EventID {
	return EventID(uint64(gen)<<32 | uint64(uint32(slot+1)))
}

// decodeID splits an EventID into pool slot and generation.
func decodeID(id EventID) (slot int32, gen uint32) {
	return int32(uint32(id)) - 1, uint32(id >> 32)
}

// defaultBuckets is the initial calendar width in slots. 256 slots
// (160 ms) covers Tpoll deadlines, sniff/hold wakeups and parked-master
// horizons without a detour through the overflow heap; the calendar
// doubles on its own when occupancy outgrows it.
const defaultBuckets = 256

// Kernel is the simulation scheduler. The zero value is not usable; create
// one with NewKernel.
type Kernel struct {
	now   Time
	nodes []scheduledEvent // event pool; calendar chains and heap index into it
	free  []int32          // recycled pool slots

	// Calendar: one bucket per slot over a power-of-two window of
	// [curSlot, curSlot+len(bucketHead)) slot indices. Chains are kept
	// sorted by (at, seq); occ is a bitmap of non-empty buckets.
	bucketHead []int32
	bucketTail []int32
	occ        []uint64
	bmask      uint64 // len(bucketHead) - 1
	curSlot    uint64 // slot index of the last fired event (cursor)
	calLim     Time   // events with at < calLim go in the calendar; 0 = heap only
	calCount   int

	// Overflow heap: binary min-heap over (at, seq) for events at or
	// beyond calLim. Cancellation here is lazy (tombstones + compaction).
	heap          []int32
	heapCancelled int

	live    int // pending (not cancelled) events across both structures
	nextSeq uint64
	running bool
	stopped bool
	tracers []Tracer
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	k.initBuckets(defaultBuckets)
	return k
}

// initBuckets (re)allocates the calendar arrays for n buckets (a power of
// two, multiple of 64) and recomputes the window limit. Chains are not
// preserved; callers re-insert.
func (k *Kernel) initBuckets(n int) {
	k.bucketHead = make([]int32, n)
	k.bucketTail = make([]int32, n)
	for i := range k.bucketHead {
		k.bucketHead[i] = -1
		k.bucketTail[i] = -1
	}
	k.occ = make([]uint64, n/64)
	k.bmask = uint64(n) - 1
	k.recalcLim()
}

// recalcLim recomputes the calendar window's exclusive upper bound. Near
// the end of the time axis the window would overflow; calLim = 0 then
// routes every new event to the overflow heap, which is ordering-correct
// at any horizon.
func (k *Kernel) recalcLim() {
	end := k.curSlot + uint64(len(k.bucketHead))
	if end < k.curSlot || end > ^uint64(0)/SlotTicks {
		k.calLim = 0
		return
	}
	k.calLim = Time(end * SlotTicks)
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports how many events are scheduled and not yet fired.
func (k *Kernel) Pending() int { return k.live }

// Traced reports whether any tracer is attached. Behavioural layers use
// this to disable event-eliding fast paths that would hide signal
// transitions from a waveform.
func (k *Kernel) Traced() bool { return len(k.tracers) > 0 }

// alloc takes a pool slot off the free list (or grows the pool).
func (k *Kernel) alloc() int32 {
	if n := len(k.free); n > 0 {
		slot := k.free[n-1]
		k.free = k.free[:n-1]
		return slot
	}
	k.nodes = append(k.nodes, scheduledEvent{})
	return int32(len(k.nodes) - 1)
}

// release recycles a pool slot, bumping its generation so any EventID
// still referring to it is recognised as stale.
func (k *Kernel) release(slot int32) {
	n := &k.nodes[slot]
	n.fn = nil // drop the closure reference eagerly
	n.gen++
	n.state = evFree
	n.loc = locNone
	n.next = -1
	k.free = append(k.free, slot)
}

// Schedule runs fn after delay ticks. A delay of zero fires fn later in
// the current tick, after all previously scheduled same-time events.
func (k *Kernel) Schedule(delay Duration, fn Event) EventID {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	at := k.now + Time(delay)
	if at < k.now {
		panic(fmt.Sprintf("sim: Schedule(%d) overflows the time axis (now %v)", uint64(delay), k.now))
	}
	slot := k.alloc()
	k.nextSeq++
	n := &k.nodes[slot]
	n.at, n.seq, n.fn, n.state = at, k.nextSeq, fn, evPending
	if k.calLim != 0 && at < k.calLim {
		k.calInsert(slot)
	} else {
		n.loc = locHeap
		k.heapPush(slot)
	}
	k.live++
	return makeID(slot, n.gen)
}

// At runs fn at absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn Event) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, k.now))
	}
	return k.Schedule(Duration(t-k.now), fn)
}

// lessNode orders pool slots by (at, seq): earlier time first, then
// schedule order — the same-tick total order that stands in for SystemC
// delta cycles. seq is globally unique, so the order is total no matter
// which structure the events sit in.
func (k *Kernel) lessNode(a, b int32) bool {
	na, nb := &k.nodes[a], &k.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

// --- calendar ---

// bucketOf maps an event time to its bucket index. Only valid for times
// inside the current window.
func (k *Kernel) bucketOf(at Time) uint64 {
	return (uint64(at) / SlotTicks) & k.bmask
}

// calInsertRaw chains slot s into its bucket, keeping the chain sorted by
// (at, seq). Appends at the tail are O(1), which covers the dominant
// pattern: per-slot callbacks re-armed in monotonically increasing
// (at, seq) order.
func (k *Kernel) calInsertRaw(s int32) {
	n := &k.nodes[s]
	n.loc = locCal
	b := k.bucketOf(n.at)
	h := k.bucketHead[b]
	switch {
	case h < 0:
		k.bucketHead[b], k.bucketTail[b] = s, s
		n.next = -1
		k.occ[b>>6] |= 1 << (b & 63)
	case k.lessNode(k.bucketTail[b], s):
		k.nodes[k.bucketTail[b]].next = s
		n.next = -1
		k.bucketTail[b] = s
	case k.lessNode(s, h):
		n.next = h
		k.bucketHead[b] = s
	default:
		p := h
		for {
			nx := k.nodes[p].next
			if nx < 0 || k.lessNode(s, nx) {
				break
			}
			p = nx
		}
		n.next = k.nodes[p].next
		k.nodes[p].next = s
	}
}

// calInsert is calInsertRaw plus census and skew handling: when live
// calendar events outnumber buckets 2:1 the calendar doubles, widening
// the window (which may strand fewer events in the overflow heap).
func (k *Kernel) calInsert(s int32) {
	k.calInsertRaw(s)
	k.calCount++
	if k.calCount > 2*len(k.bucketHead) {
		k.growCalendar()
	}
}

// growCalendar doubles the bucket count and rehashes every chained event.
// Relative order is untouched: chains are rebuilt from the same (at, seq)
// keys. Deferred migration of newly in-window heap events happens on the
// next cursor advance.
func (k *Kernel) growCalendar() {
	moved := make([]int32, 0, k.calCount)
	for b := range k.bucketHead {
		for s := k.bucketHead[b]; s >= 0; {
			nx := k.nodes[s].next
			moved = append(moved, s)
			s = nx
		}
	}
	k.initBuckets(2 * len(k.bucketHead))
	for _, s := range moved {
		k.calInsertRaw(s)
	}
}

// calUnlink removes slot s from its bucket chain (eager cancellation —
// the calendar never carries tombstones).
func (k *Kernel) calUnlink(s int32) {
	n := &k.nodes[s]
	b := k.bucketOf(n.at)
	if k.bucketHead[b] == s {
		k.bucketHead[b] = n.next
		if n.next < 0 {
			k.bucketTail[b] = -1
			k.occ[b>>6] &^= 1 << (b & 63)
		}
	} else {
		p := k.bucketHead[b]
		for k.nodes[p].next != s {
			p = k.nodes[p].next
		}
		k.nodes[p].next = n.next
		if k.bucketTail[b] == s {
			k.bucketTail[b] = p
		}
	}
	k.calCount--
}

// occScan returns the first non-empty bucket index in [from, to), if any.
func (k *Kernel) occScan(from, to uint64) (uint64, bool) {
	for wi := from >> 6; wi < (to+63)>>6; wi++ {
		w := k.occ[wi]
		if wi == from>>6 {
			w &= ^uint64(0) << (from & 63)
		}
		if w != 0 {
			b := wi<<6 + uint64(bits.TrailingZeros64(w))
			if b < to {
				return b, true
			}
			return 0, false
		}
	}
	return 0, false
}

// calMin returns the pool slot of the earliest calendar event, or -1.
// The scan starts at the cursor's bucket and wraps: within the window
// [curSlot, curSlot+nb), circular bucket order equals slot order, and
// each sorted chain keeps its minimum at the head.
func (k *Kernel) calMin() int32 {
	if k.calCount == 0 {
		return -1
	}
	start := k.curSlot & k.bmask
	if b, ok := k.occScan(start, uint64(len(k.bucketHead))); ok {
		return k.bucketHead[b]
	}
	if b, ok := k.occScan(0, start); ok {
		return k.bucketHead[b]
	}
	return -1
}

// --- overflow heap ---

func (k *Kernel) heapPush(slot int32) {
	k.heap = append(k.heap, slot)
	q := k.heap
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.lessNode(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (k *Kernel) siftDown(i int) {
	q := k.heap
	n := len(q)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && k.lessNode(q[right], q[left]) {
			smallest = right
		}
		if !k.lessNode(q[smallest], q[i]) {
			return
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

// heapPop removes and returns the head of the heap (which must not be
// empty).
func (k *Kernel) heapPop() int32 {
	q := k.heap
	head := q[0]
	last := len(q) - 1
	q[0] = q[last]
	k.heap = q[:last]
	if last > 0 {
		k.siftDown(0)
	}
	return head
}

// heapPeekLive drops (and recycles) cancelled entries at the head of the
// heap and returns the pool slot of its next live event without removing
// it (-1 when empty).
func (k *Kernel) heapPeekLive() int32 {
	for len(k.heap) > 0 {
		head := k.heap[0]
		if k.nodes[head].state == evPending {
			return head
		}
		k.heapPop()
		k.heapCancelled--
		k.release(head)
	}
	return -1
}

// minCompactLen keeps compaction from churning on tiny heaps, where
// lazy deletion is cheaper than a rebuild.
const minCompactLen = 64

// compact rebuilds the overflow heap without the cancelled entries.
// Ordering is untouched: the heap invariant is re-established over the
// same (at, seq) keys, so compaction can never change the event schedule.
func (k *Kernel) compact() {
	liveQ := k.heap[:0]
	for _, slot := range k.heap {
		if k.nodes[slot].state == evPending {
			liveQ = append(liveQ, slot)
		} else {
			k.release(slot)
		}
	}
	k.heap = liveQ
	for i := len(k.heap)/2 - 1; i >= 0; i-- {
		k.siftDown(i)
	}
	k.heapCancelled = 0
}

// --- scheduling core ---

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
//
// Calendar events unlink eagerly (chains are short, and the bucket is
// derivable from the timestamp). Heap entries are tombstoned and dropped
// lazily when they surface; once tombstones outnumber the live entries
// the heap is compacted so cancel-heavy workloads (supervision timeouts
// re-armed on every packet) keep it proportional to the live count.
func (k *Kernel) Cancel(id EventID) bool {
	slot, gen := decodeID(id)
	if slot < 0 || int(slot) >= len(k.nodes) {
		return false
	}
	n := &k.nodes[slot]
	if n.state != evPending || n.gen != gen {
		return false
	}
	k.live--
	if n.loc == locCal {
		k.calUnlink(slot)
		k.release(slot)
	} else {
		n.state = evCancelled
		n.fn = nil
		k.heapCancelled++
		if k.heapCancelled > len(k.heap)/2 && len(k.heap) >= minCompactLen {
			k.compact()
		}
	}
	return true
}

// nextLive returns the pool slot of the earliest pending event without
// removing it (-1 when none). Correctness does not depend on the window
// invariant: the calendar minimum and the heap minimum are compared under
// the global (at, seq) order, so even a degraded split (calLim = 0) keeps
// the schedule exact.
func (k *Kernel) nextLive() int32 {
	c := k.calMin()
	h := k.heapPeekLive()
	if c < 0 {
		return h
	}
	if h >= 0 && k.lessNode(h, c) {
		return h
	}
	return c
}

// take removes slot s — which must be the value nextLive just returned —
// from its structure and advances the calendar cursor to its slot,
// migrating newly in-window heap events into the calendar.
func (k *Kernel) take(s int32) {
	n := &k.nodes[s]
	if n.loc == locCal {
		b := k.bucketOf(n.at)
		k.bucketHead[b] = n.next
		if n.next < 0 {
			k.bucketTail[b] = -1
			k.occ[b>>6] &^= 1 << (b & 63)
		}
		k.calCount--
	} else {
		k.heapPop()
	}
	if ns := uint64(n.at) / SlotTicks; ns > k.curSlot {
		k.curSlot = ns
		k.recalcLim()
		k.migrate()
	}
}

// migrate moves heap events that now fall inside the calendar window into
// their buckets. Every migrated event's slot is at or beyond the cursor,
// so the move can never reorder anything already due.
func (k *Kernel) migrate() {
	for {
		h := k.heapPeekLive()
		if h < 0 || k.calLim == 0 || k.nodes[h].at >= k.calLim {
			return
		}
		k.heapPop()
		k.calInsert(h)
	}
}

// fire advances the clock to the event in slot and runs its callback. The
// slot is released before the callback runs, so cancelling the firing
// event's own ID from within it is a no-op.
func (k *Kernel) fire(slot int32) {
	n := &k.nodes[slot]
	k.now = n.at
	fn := n.fn
	k.live--
	k.release(slot)
	fn()
}

// NextDue reports the timestamp of the earliest pending event, if any —
// the kernel's quiescence probe. A caller holding a guarantee that no new
// work arrives before that time (see channel.QuietUntil) may elide
// intermediate bookkeeping events entirely.
func (k *Kernel) NextDue() (Time, bool) {
	s := k.nextLive()
	if s < 0 {
		return 0, false
	}
	return k.nodes[s].at, true
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the final simulation time.
func (k *Kernel) Run() Time { return k.RunUntil(TimeMax) }

// RunUntil executes events with timestamps <= limit (or until Stop). The
// simulation clock is left at min(limit, time of last event) so that
// measurements over a fixed horizon are well defined.
func (k *Kernel) RunUntil(limit Time) Time {
	if k.running {
		panic("sim: RunUntil re-entered from within an event")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for !k.stopped {
		s := k.nextLive()
		if s < 0 || k.nodes[s].at > limit {
			break
		}
		k.take(s)
		k.fire(s)
	}
	if k.now < limit && limit != TimeMax {
		k.now = limit
	}
	return k.now
}

// Step executes exactly one event (skipping cancelled ones) and reports
// whether an event ran. Running() is true for the duration of the
// callback, exactly as under RunUntil.
func (k *Kernel) Step() bool {
	slot := k.nextLive()
	if slot < 0 {
		return false
	}
	prev := k.running
	k.running = true
	defer func() { k.running = prev }()
	k.take(slot)
	k.fire(slot)
	return true
}

// Running reports whether the kernel is currently inside RunUntil —
// i.e. whether the caller is executing from within an event.
func (k *Kernel) Running() bool { return k.running }
