// Package sim implements a deterministic discrete-event simulation kernel
// in the style of the SystemC scheduler the paper's model runs on.
//
// Time is counted in integer ticks of 0.5 µs so that every Bluetooth
// timing quantity (1 µs bit, 312.5 µs half slot, 625 µs slot) is an exact
// integer. Events scheduled for the same tick fire in the order they were
// scheduled (a total order that plays the role of SystemC delta cycles),
// which makes every simulation run bit-for-bit reproducible.
//
// The scheduler is a calendar queue over the 625 µs slot grid: near-future
// events hash into per-slot buckets (O(1) schedule/cancel/pop for the
// slot-aligned traffic that dominates the model) while far-future events —
// supervision timeouts, long sniff intervals — wait in an overflow binary
// heap until the calendar window reaches them. Event nodes live in a pool
// and recycled slots carry a generation tag so stale EventIDs can never
// touch a reused slot. The scheduler is allocation-free in steady state.
// See ARCHITECTURE.md, "Performance model".
//
// A kernel optionally runs in sharded conservative mode (NewKernelShards):
// the event queue partitions into independent per-shard calendar queues
// advanced inside coupling-horizon-bounded time windows, while callbacks
// still execute in the single global (at, seq) order — shard count is
// unobservable in output. See shard.go and ARCHITECTURE.md, "Conservative
// parallelism".
package sim

import (
	"fmt"
	"math/bits"
)

// Time is a simulation timestamp in ticks (0.5 µs units).
type Time uint64

// Duration is a span of simulation time in ticks (0.5 µs units).
type Duration uint64

// Tick granularity constants. All Bluetooth timing in this repository is
// expressed with these so that slot arithmetic stays integral.
const (
	// TicksPerMicrosecond is the kernel resolution: 2 ticks = 1 µs.
	TicksPerMicrosecond = 2
	// BitTicks is the on-air duration of one symbol at 1 Mbit/s.
	BitTicks = 2
	// HalfSlotTicks is 312.5 µs, the Bluetooth native-clock period (3.2 kHz).
	HalfSlotTicks = 625
	// SlotTicks is one 625 µs Bluetooth time slot.
	SlotTicks = 1250
)

// TimeMax is the end-of-time sentinel: Run executes until the queue
// drains by running until this limit.
const TimeMax = Time(^uint64(0))

// Microseconds converts a microsecond count to a Duration.
func Microseconds(us uint64) Duration { return Duration(us * TicksPerMicrosecond) }

// Slots converts a slot count to a Duration.
func Slots(n uint64) Duration { return Duration(n * SlotTicks) }

// Micros reports t in microseconds (truncating the half-microsecond bit).
func (t Time) Micros() uint64 { return uint64(t) / TicksPerMicrosecond }

// Slot reports the index of the 625 µs slot containing t.
func (t Time) Slot() uint64 { return uint64(t) / SlotTicks }

// String formats the time as microseconds for logs and waveforms.
func (t Time) String() string {
	us2 := uint64(t)
	if us2%2 == 0 {
		return fmt.Sprintf("%dus", us2/2)
	}
	return fmt.Sprintf("%d.5us", us2/2)
}

// Event is a callback scheduled to run at a simulation time.
type Event func()

// EventID identifies a scheduled event so it can be cancelled. An ID
// packs the owning shard and pool slot of the event with the slot's
// generation at scheduling time, so an ID held past its event's firing
// (or cancellation) is recognised as stale even after the slot is
// recycled.
type EventID uint64

// The zero EventID is never issued (slots are encoded +1), so callers
// can use 0 as "no event pending".

// EventID layout: bits 0..23 pool slot + 1, bits 24..31 owning shard,
// bits 32..63 generation tag.
const (
	idSlotBits = 24
	idSlotMask = 1<<idSlotBits - 1

	// MaxShards bounds NewKernelShards: the shard index must fit the
	// EventID's shard field.
	MaxShards = 256

	// maxPoolSlots caps one shard's event pool so slot+1 fits the ID's
	// slot field. ~16.7M simultaneously pending events per shard is far
	// beyond any world this model builds; exceeding it panics loudly.
	maxPoolSlots = idSlotMask - 1
)

const (
	evFree      = iota // slot is on the free list
	evPending          // scheduled, will fire
	evCancelled        // still in the overflow heap, dropped when popped
)

// Where a pending event currently lives.
const (
	locNone = iota // free / not enqueued
	locCal         // chained into a calendar bucket
	locHeap        // in the overflow heap
)

type scheduledEvent struct {
	at    Time
	seq   uint64 // tie-break: schedule order
	fn    Event
	next  int32  // successor in the bucket chain (calendar only), -1 = none
	gen   uint32 // slot generation, bumped on every release
	state uint8
	loc   uint8
}

func makeID(shard int, slot int32, gen uint32) EventID {
	return EventID(uint64(gen)<<32 | uint64(shard)<<idSlotBits | uint64(uint32(slot+1)))
}

// decodeID splits an EventID into owning shard, pool slot and generation.
func decodeID(id EventID) (shard int, slot int32, gen uint32) {
	return int(uint32(id) >> idSlotBits), int32(uint32(id)&idSlotMask) - 1, uint32(id >> 32)
}

// defaultBuckets is the initial calendar width in slots. 256 slots
// (160 ms) covers Tpoll deadlines, sniff/hold wakeups and parked-master
// horizons without a detour through the overflow heap; the calendar
// doubles on its own when occupancy outgrows it.
const defaultBuckets = 256

// Cached-head sentinels (shardQueue.head).
const (
	headNone    = int32(-1) // known empty: no pending event in this shard
	headUnknown = int32(-2) // cache invalid; recompute via peek
)

// shardQueue is one shard's event queue: a calendar over the slot grid
// plus an overflow heap and a pooled node store, exactly the structure
// the whole kernel used to be. A single-shard kernel is one shardQueue;
// a sharded kernel merges N of them under the global (at, seq) order.
// All shardQueue methods touch only the shard's own state, which is
// what makes the window-edge fork-join in shard.go race-free.
type shardQueue struct {
	id    int
	nodes []scheduledEvent // event pool; calendar chains and heap index into it
	free  []int32          // recycled pool slots

	// Calendar: one bucket per slot over a power-of-two window of
	// [curSlot, curSlot+len(bucketHead)) slot indices. Chains are kept
	// sorted by (at, seq); occ is a bitmap of non-empty buckets.
	bucketHead []int32
	bucketTail []int32
	occ        []uint64
	bmask      uint64 // len(bucketHead) - 1
	curSlot    uint64 // slot index of the last fired event (cursor)
	calLim     Time   // events with at < calLim go in the calendar; 0 = heap only
	calCount   int

	// Overflow heap: binary min-heap over (at, seq) for events at or
	// beyond calLim. Cancellation here is lazy (tombstones + compaction).
	heap          []int32
	heapCancelled int

	live int   // pending (not cancelled) events in this shard
	head int32 // cached earliest live pool slot (headNone / headUnknown)
}

// Kernel is the simulation scheduler. The zero value is not usable; create
// one with NewKernel (serial) or NewKernelShards (sharded conservative
// mode — see shard.go).
type Kernel struct {
	now     Time
	shards  []*shardQueue
	cur     int // shard affinity: where Schedule puts new events
	nextSeq uint64
	running bool
	stopped bool
	tracers []Tracer

	// Conservative windowing (sharded mode only; see shard.go).
	horizon    func() Time // medium-coupling horizon probe, nil = none
	windowEnd  Time        // exclusive end of the current window
	windows    uint64      // barriers crossed (window openings)
	parRefresh uint64      // window openings that forked per-shard refresh
	scratch    []*shardQueue
}

// NewKernel returns an empty single-shard kernel at time zero.
func NewKernel() *Kernel { return NewKernelShards(1) }

// NewKernelShards returns an empty kernel at time zero whose event queue
// is partitioned into n independent shards (1 <= n <= MaxShards). Event
// execution order is identical for every n — sharding changes how the
// queue is stored and advanced, never what fires when; the shard
// equivalence suite pins this.
func NewKernelShards(n int) *Kernel {
	if n < 1 || n > MaxShards {
		panic(fmt.Sprintf("sim: shard count %d out of 1..%d", n, MaxShards))
	}
	k := &Kernel{shards: make([]*shardQueue, n)}
	for i := range k.shards {
		sq := &shardQueue{id: i, head: headNone}
		sq.initBuckets(defaultBuckets)
		k.shards[i] = sq
	}
	return k
}

// initBuckets (re)allocates the calendar arrays for n buckets (a power of
// two, multiple of 64) and recomputes the window limit. Chains are not
// preserved; callers re-insert.
func (sq *shardQueue) initBuckets(n int) {
	sq.bucketHead = make([]int32, n)
	sq.bucketTail = make([]int32, n)
	for i := range sq.bucketHead {
		sq.bucketHead[i] = -1
		sq.bucketTail[i] = -1
	}
	sq.occ = make([]uint64, n/64)
	sq.bmask = uint64(n) - 1
	sq.recalcLim()
}

// recalcLim recomputes the calendar window's exclusive upper bound. Near
// the end of the time axis the window would overflow; calLim = 0 then
// routes every new event to the overflow heap, which is ordering-correct
// at any horizon.
func (sq *shardQueue) recalcLim() {
	end := sq.curSlot + uint64(len(sq.bucketHead))
	if end < sq.curSlot || end > ^uint64(0)/SlotTicks {
		sq.calLim = 0
		return
	}
	sq.calLim = Time(end * SlotTicks)
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports how many events are scheduled and not yet fired.
func (k *Kernel) Pending() int {
	n := 0
	for _, sq := range k.shards {
		n += sq.live
	}
	return n
}

// Traced reports whether any tracer is attached. Behavioural layers use
// this to disable event-eliding fast paths that would hide signal
// transitions from a waveform.
func (k *Kernel) Traced() bool { return len(k.tracers) > 0 }

// alloc takes a pool slot off the free list (or grows the pool).
func (sq *shardQueue) alloc() int32 {
	if n := len(sq.free); n > 0 {
		slot := sq.free[n-1]
		sq.free = sq.free[:n-1]
		return slot
	}
	if len(sq.nodes) >= maxPoolSlots {
		panic(fmt.Sprintf("sim: shard %d event pool exceeds %d pending events", sq.id, maxPoolSlots))
	}
	sq.nodes = append(sq.nodes, scheduledEvent{})
	return int32(len(sq.nodes) - 1)
}

// release recycles a pool slot, bumping its generation so any EventID
// still referring to it is recognised as stale.
func (sq *shardQueue) release(slot int32) {
	n := &sq.nodes[slot]
	n.fn = nil // drop the closure reference eagerly
	n.gen++
	n.state = evFree
	n.loc = locNone
	n.next = -1
	sq.free = append(sq.free, slot)
}

// Schedule runs fn after delay ticks on the current affinity shard (the
// shard of the event being fired, so a device's self-rescheduling slot
// loops stay on the device's shard). A delay of zero fires fn later in
// the current tick, after all previously scheduled same-time events.
func (k *Kernel) Schedule(delay Duration, fn Event) EventID {
	return k.ScheduleOn(k.cur, delay, fn)
}

// ScheduleOn runs fn after delay ticks on an explicit shard — the
// cross-shard hand-off primitive (e.g. a delivery event routed to the
// receiver cell's owning shard). On a single-shard kernel, shard 0 is
// the only legal value. The target shard changes nothing about when fn
// fires relative to other events; the global (at, seq) order is shared
// by all shards.
func (k *Kernel) ScheduleOn(shard int, delay Duration, fn Event) EventID {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	if shard < 0 || shard >= len(k.shards) {
		panic(fmt.Sprintf("sim: ScheduleOn(%d) with %d shards", shard, len(k.shards)))
	}
	at := k.now + Time(delay)
	if at < k.now {
		panic(fmt.Sprintf("sim: Schedule(%d) overflows the time axis (now %v)", uint64(delay), k.now))
	}
	sq := k.shards[shard]
	slot := sq.alloc()
	k.nextSeq++
	n := &sq.nodes[slot]
	n.at, n.seq, n.fn, n.state = at, k.nextSeq, fn, evPending
	if sq.calLim != 0 && at < sq.calLim {
		sq.calInsert(slot)
	} else {
		n.loc = locHeap
		sq.heapPush(slot)
	}
	sq.live++
	// Keep the cached head exact: a valid cache stays valid unless the
	// newcomer is the new minimum (a new event can never un-schedule the
	// old minimum).
	if sq.head == headNone || (sq.head >= 0 && sq.lessNode(slot, sq.head)) {
		sq.head = slot
	}
	return makeID(shard, slot, n.gen)
}

// At runs fn at absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn Event) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, k.now))
	}
	return k.Schedule(Duration(t-k.now), fn)
}

// AtOn runs fn at absolute time t on an explicit shard (see ScheduleOn).
// Checkpoint restore uses it to re-arm captured events on their
// original shard so the restored world's shard placement — and with it
// the exact window/refresh schedule — matches the straight-through run.
func (k *Kernel) AtOn(shard int, t Time, fn Event) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: AtOn(%v) is in the past (now %v)", t, k.now))
	}
	return k.ScheduleOn(shard, Duration(t-k.now), fn)
}

// EventInfo reports a pending event's timestamp, global sequence number
// and owning shard. ok is false for fired, cancelled or stale IDs —
// exactly the IDs Cancel would reject. Snapshot code uses it to capture
// where every pending timer sits in the global (at, seq) order.
func (k *Kernel) EventInfo(id EventID) (at Time, seq uint64, shard int, ok bool) {
	sh, slot, gen := decodeID(id)
	if sh >= len(k.shards) {
		return 0, 0, 0, false
	}
	sq := k.shards[sh]
	if slot < 0 || int(slot) >= len(sq.nodes) {
		return 0, 0, 0, false
	}
	n := &sq.nodes[slot]
	if n.state != evPending || n.gen != gen {
		return 0, 0, 0, false
	}
	return n.at, n.seq, sh, true
}

// lessEvent orders events by (at, seq): earlier time first, then
// schedule order — the same-tick total order that stands in for SystemC
// delta cycles. seq is issued by one kernel-global counter, so the order
// is total across every shard and structure.
func lessEvent(a, b *scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// lessNode is lessEvent over two pool slots of the same shard.
func (sq *shardQueue) lessNode(a, b int32) bool {
	return lessEvent(&sq.nodes[a], &sq.nodes[b])
}

// --- calendar ---

// bucketOf maps an event time to its bucket index. Only valid for times
// inside the current window.
func (sq *shardQueue) bucketOf(at Time) uint64 {
	return (uint64(at) / SlotTicks) & sq.bmask
}

// calInsertRaw chains slot s into its bucket, keeping the chain sorted by
// (at, seq). Appends at the tail are O(1), which covers the dominant
// pattern: per-slot callbacks re-armed in monotonically increasing
// (at, seq) order.
func (sq *shardQueue) calInsertRaw(s int32) {
	n := &sq.nodes[s]
	n.loc = locCal
	b := sq.bucketOf(n.at)
	h := sq.bucketHead[b]
	switch {
	case h < 0:
		sq.bucketHead[b], sq.bucketTail[b] = s, s
		n.next = -1
		sq.occ[b>>6] |= 1 << (b & 63)
	case sq.lessNode(sq.bucketTail[b], s):
		sq.nodes[sq.bucketTail[b]].next = s
		n.next = -1
		sq.bucketTail[b] = s
	case sq.lessNode(s, h):
		n.next = h
		sq.bucketHead[b] = s
	default:
		p := h
		for {
			nx := sq.nodes[p].next
			if nx < 0 || sq.lessNode(s, nx) {
				break
			}
			p = nx
		}
		n.next = sq.nodes[p].next
		sq.nodes[p].next = s
	}
}

// calInsert is calInsertRaw plus census and skew handling: when live
// calendar events outnumber buckets 2:1 the calendar doubles, widening
// the window (which may strand fewer events in the overflow heap).
func (sq *shardQueue) calInsert(s int32) {
	sq.calInsertRaw(s)
	sq.calCount++
	if sq.calCount > 2*len(sq.bucketHead) {
		sq.growCalendar()
	}
}

// growCalendar doubles the bucket count and rehashes every chained event.
// Relative order is untouched: chains are rebuilt from the same (at, seq)
// keys. Deferred migration of newly in-window heap events happens on the
// next cursor advance.
func (sq *shardQueue) growCalendar() {
	moved := make([]int32, 0, sq.calCount)
	for b := range sq.bucketHead {
		for s := sq.bucketHead[b]; s >= 0; {
			nx := sq.nodes[s].next
			moved = append(moved, s)
			s = nx
		}
	}
	sq.initBuckets(2 * len(sq.bucketHead))
	for _, s := range moved {
		sq.calInsertRaw(s)
	}
}

// calUnlink removes slot s from its bucket chain (eager cancellation —
// the calendar never carries tombstones).
func (sq *shardQueue) calUnlink(s int32) {
	n := &sq.nodes[s]
	b := sq.bucketOf(n.at)
	if sq.bucketHead[b] == s {
		sq.bucketHead[b] = n.next
		if n.next < 0 {
			sq.bucketTail[b] = -1
			sq.occ[b>>6] &^= 1 << (b & 63)
		}
	} else {
		p := sq.bucketHead[b]
		for sq.nodes[p].next != s {
			p = sq.nodes[p].next
		}
		sq.nodes[p].next = n.next
		if sq.bucketTail[b] == s {
			sq.bucketTail[b] = p
		}
	}
	sq.calCount--
}

// occScan returns the first non-empty bucket index in [from, to), if any.
func (sq *shardQueue) occScan(from, to uint64) (uint64, bool) {
	for wi := from >> 6; wi < (to+63)>>6; wi++ {
		w := sq.occ[wi]
		if wi == from>>6 {
			w &= ^uint64(0) << (from & 63)
		}
		if w != 0 {
			b := wi<<6 + uint64(bits.TrailingZeros64(w))
			if b < to {
				return b, true
			}
			return 0, false
		}
	}
	return 0, false
}

// calMin returns the pool slot of the earliest calendar event, or -1.
// The scan starts at the cursor's bucket and wraps: within the window
// [curSlot, curSlot+nb), circular bucket order equals slot order, and
// each sorted chain keeps its minimum at the head.
func (sq *shardQueue) calMin() int32 {
	if sq.calCount == 0 {
		return -1
	}
	start := sq.curSlot & sq.bmask
	if b, ok := sq.occScan(start, uint64(len(sq.bucketHead))); ok {
		return sq.bucketHead[b]
	}
	if b, ok := sq.occScan(0, start); ok {
		return sq.bucketHead[b]
	}
	return -1
}

// --- overflow heap ---

func (sq *shardQueue) heapPush(slot int32) {
	sq.heap = append(sq.heap, slot)
	q := sq.heap
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sq.lessNode(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (sq *shardQueue) siftDown(i int) {
	q := sq.heap
	n := len(q)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && sq.lessNode(q[right], q[left]) {
			smallest = right
		}
		if !sq.lessNode(q[smallest], q[i]) {
			return
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

// heapPop removes and returns the head of the heap (which must not be
// empty).
func (sq *shardQueue) heapPop() int32 {
	q := sq.heap
	head := q[0]
	last := len(q) - 1
	q[0] = q[last]
	sq.heap = q[:last]
	if last > 0 {
		sq.siftDown(0)
	}
	return head
}

// heapPeekLive drops (and recycles) cancelled entries at the head of the
// heap and returns the pool slot of its next live event without removing
// it (-1 when empty).
func (sq *shardQueue) heapPeekLive() int32 {
	for len(sq.heap) > 0 {
		head := sq.heap[0]
		if sq.nodes[head].state == evPending {
			return head
		}
		sq.heapPop()
		sq.heapCancelled--
		sq.release(head)
	}
	return -1
}

// minCompactLen keeps compaction from churning on tiny heaps, where
// lazy deletion is cheaper than a rebuild.
const minCompactLen = 64

// compact rebuilds the overflow heap without the cancelled entries.
// Ordering is untouched: the heap invariant is re-established over the
// same (at, seq) keys, so compaction can never change the event schedule.
func (sq *shardQueue) compact() {
	liveQ := sq.heap[:0]
	for _, slot := range sq.heap {
		if sq.nodes[slot].state == evPending {
			liveQ = append(liveQ, slot)
		} else {
			sq.release(slot)
		}
	}
	sq.heap = liveQ
	for i := len(sq.heap)/2 - 1; i >= 0; i-- {
		sq.siftDown(i)
	}
	sq.heapCancelled = 0
}

// --- scheduling core ---

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
//
// Calendar events unlink eagerly (chains are short, and the bucket is
// derivable from the timestamp). Heap entries are tombstoned and dropped
// lazily when they surface; once tombstones outnumber the live entries
// the heap is compacted so cancel-heavy workloads (supervision timeouts
// re-armed on every packet) keep it proportional to the live count.
func (k *Kernel) Cancel(id EventID) bool {
	shard, slot, gen := decodeID(id)
	if shard >= len(k.shards) {
		return false
	}
	sq := k.shards[shard]
	if slot < 0 || int(slot) >= len(sq.nodes) {
		return false
	}
	n := &sq.nodes[slot]
	if n.state != evPending || n.gen != gen {
		return false
	}
	sq.live--
	if sq.head == slot {
		sq.head = headUnknown
	}
	if n.loc == locCal {
		sq.calUnlink(slot)
		sq.release(slot)
	} else {
		n.state = evCancelled
		n.fn = nil
		sq.heapCancelled++
		if sq.heapCancelled > len(sq.heap)/2 && len(sq.heap) >= minCompactLen {
			sq.compact()
		}
	}
	return true
}

// nextLive returns the pool slot of the shard's earliest pending event
// without removing it (-1 when none). Correctness does not depend on the
// window invariant: the calendar minimum and the heap minimum are
// compared under the global (at, seq) order, so even a degraded split
// (calLim = 0) keeps the schedule exact.
func (sq *shardQueue) nextLive() int32 {
	c := sq.calMin()
	h := sq.heapPeekLive()
	if c < 0 {
		return h
	}
	if h >= 0 && sq.lessNode(h, c) {
		return h
	}
	return c
}

// peek returns the shard's earliest pending pool slot through the head
// cache (headNone when the shard is empty). The cache is invalidated
// when its minimum is consumed or cancelled, and updated in place when a
// newly scheduled event undercuts it, so steady-state firing pays one
// scan per pop exactly as the unsharded kernel did.
func (sq *shardQueue) peek() int32 {
	if sq.head == headUnknown {
		sq.head = sq.nextLive()
	}
	return sq.head
}

// take removes slot s — which must be the value peek just returned —
// from its structure and advances the calendar cursor to its slot,
// migrating newly in-window heap events into the calendar.
func (sq *shardQueue) take(s int32) {
	n := &sq.nodes[s]
	if n.loc == locCal {
		b := sq.bucketOf(n.at)
		sq.bucketHead[b] = n.next
		if n.next < 0 {
			sq.bucketTail[b] = -1
			sq.occ[b>>6] &^= 1 << (b & 63)
		}
		sq.calCount--
	} else {
		sq.heapPop()
	}
	sq.head = headUnknown
	if ns := uint64(n.at) / SlotTicks; ns > sq.curSlot {
		sq.curSlot = ns
		sq.recalcLim()
		sq.migrate()
	}
}

// migrate moves heap events that now fall inside the calendar window into
// their buckets. Every migrated event's slot is at or beyond the cursor,
// so the move can never reorder anything already due.
func (sq *shardQueue) migrate() {
	for {
		h := sq.heapPeekLive()
		if h < 0 || sq.calLim == 0 || sq.nodes[h].at >= sq.calLim {
			return
		}
		sq.heapPop()
		sq.calInsert(h)
	}
}

// fire advances the clock to the event in the shard's slot and runs its
// callback. The slot is released before the callback runs, so cancelling
// the firing event's own ID from within it is a no-op.
func (k *Kernel) fire(sq *shardQueue, slot int32) {
	n := &sq.nodes[slot]
	k.now = n.at
	fn := n.fn
	sq.live--
	sq.release(slot)
	fn()
}

// NextDue reports the timestamp of the earliest pending event across all
// shards, if any — the kernel's quiescence probe. A caller holding a
// guarantee that no new work arrives before that time (see
// channel.QuietUntil) may elide intermediate bookkeeping events entirely.
func (k *Kernel) NextDue() (Time, bool) {
	sq, s := k.earliest()
	if s < 0 {
		return 0, false
	}
	return sq.nodes[s].at, true
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the final simulation time.
func (k *Kernel) Run() Time { return k.RunUntil(TimeMax) }

// RunUntil executes events with timestamps <= limit (or until Stop). The
// simulation clock is left at min(limit, time of last event) so that
// measurements over a fixed horizon are well defined.
func (k *Kernel) RunUntil(limit Time) Time {
	if k.running {
		panic("sim: RunUntil re-entered from within an event")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	if len(k.shards) == 1 {
		// Serial fast path: no merge, no windows — the unsharded kernel.
		sq := k.shards[0]
		for !k.stopped {
			s := sq.peek()
			if s < 0 || sq.nodes[s].at > limit {
				break
			}
			sq.take(s)
			k.fire(sq, s)
		}
	} else {
		k.runSharded(limit)
	}
	if k.now < limit && limit != TimeMax {
		k.now = limit
	}
	return k.now
}

// Step executes exactly one event (skipping cancelled ones) and reports
// whether an event ran. Running() is true for the duration of the
// callback, exactly as under RunUntil.
func (k *Kernel) Step() bool {
	sq, slot := k.earliest()
	if slot < 0 {
		return false
	}
	prev := k.running
	k.running = true
	defer func() { k.running = prev }()
	k.cur = sq.id
	sq.take(slot)
	k.fire(sq, slot)
	return true
}

// Running reports whether the kernel is currently inside RunUntil —
// i.e. whether the caller is executing from within an event.
func (k *Kernel) Running() bool { return k.running }
