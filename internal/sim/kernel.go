// Package sim implements a deterministic discrete-event simulation kernel
// in the style of the SystemC scheduler the paper's model runs on.
//
// Time is counted in integer ticks of 0.5 µs so that every Bluetooth
// timing quantity (1 µs bit, 312.5 µs half slot, 625 µs slot) is an exact
// integer. Events scheduled for the same tick fire in the order they were
// scheduled (a total order that plays the role of SystemC delta cycles),
// which makes every simulation run bit-for-bit reproducible.
//
// The scheduler is allocation-free in steady state: event nodes live in a
// pool indexed by the priority queue, and cancelled or fired slots are
// recycled under a generation tag so stale EventIDs can never touch a
// reused slot. See ARCHITECTURE.md, "Performance model".
package sim

import (
	"fmt"
)

// Time is a simulation timestamp in ticks (0.5 µs units).
type Time uint64

// Duration is a span of simulation time in ticks (0.5 µs units).
type Duration uint64

// Tick granularity constants. All Bluetooth timing in this repository is
// expressed with these so that slot arithmetic stays integral.
const (
	// TicksPerMicrosecond is the kernel resolution: 2 ticks = 1 µs.
	TicksPerMicrosecond = 2
	// BitTicks is the on-air duration of one symbol at 1 Mbit/s.
	BitTicks = 2
	// HalfSlotTicks is 312.5 µs, the Bluetooth native-clock period (3.2 kHz).
	HalfSlotTicks = 625
	// SlotTicks is one 625 µs Bluetooth time slot.
	SlotTicks = 1250
)

// TimeMax is the end-of-time sentinel: Run executes until the queue
// drains by running until this limit.
const TimeMax = Time(^uint64(0))

// Microseconds converts a microsecond count to a Duration.
func Microseconds(us uint64) Duration { return Duration(us * TicksPerMicrosecond) }

// Slots converts a slot count to a Duration.
func Slots(n uint64) Duration { return Duration(n * SlotTicks) }

// Micros reports t in microseconds (truncating the half-microsecond bit).
func (t Time) Micros() uint64 { return uint64(t) / TicksPerMicrosecond }

// Slot reports the index of the 625 µs slot containing t.
func (t Time) Slot() uint64 { return uint64(t) / SlotTicks }

// String formats the time as microseconds for logs and waveforms.
func (t Time) String() string {
	us2 := uint64(t)
	if us2%2 == 0 {
		return fmt.Sprintf("%dus", us2/2)
	}
	return fmt.Sprintf("%d.5us", us2/2)
}

// Event is a callback scheduled to run at a simulation time.
type Event func()

// EventID identifies a scheduled event so it can be cancelled. An ID
// packs the pool slot of the event with the slot's generation at
// scheduling time, so an ID held past its event's firing (or
// cancellation) is recognised as stale even after the slot is recycled.
type EventID uint64

// The zero EventID is never issued (slots are encoded +1), so callers
// can use 0 as "no event pending".

const (
	evFree      = iota // slot is on the free list
	evPending          // scheduled, will fire
	evCancelled        // still in the queue, dropped when popped
)

type scheduledEvent struct {
	at    Time
	seq   uint64 // tie-break: schedule order
	fn    Event
	gen   uint32 // slot generation, bumped on every release
	state uint8
}

func makeID(slot int32, gen uint32) EventID {
	return EventID(uint64(gen)<<32 | uint64(uint32(slot+1)))
}

// decodeID splits an EventID into pool slot and generation.
func decodeID(id EventID) (slot int32, gen uint32) {
	return int32(uint32(id)) - 1, uint32(id >> 32)
}

// Kernel is the simulation scheduler. The zero value is not usable; create
// one with NewKernel.
type Kernel struct {
	now       Time
	nodes     []scheduledEvent // event pool; queue entries index into it
	free      []int32          // recycled pool slots
	queue     []int32          // binary min-heap over (at, seq)
	live      int              // pending (not cancelled) events in queue
	cancelled int              // cancelled entries still sitting in queue
	nextSeq   uint64
	running   bool
	stopped   bool
	tracers   []Tracer
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports how many events are scheduled and not yet fired.
func (k *Kernel) Pending() int { return k.live }

// alloc takes a pool slot off the free list (or grows the pool).
func (k *Kernel) alloc() int32 {
	if n := len(k.free); n > 0 {
		slot := k.free[n-1]
		k.free = k.free[:n-1]
		return slot
	}
	k.nodes = append(k.nodes, scheduledEvent{})
	return int32(len(k.nodes) - 1)
}

// release recycles a pool slot, bumping its generation so any EventID
// still referring to it is recognised as stale.
func (k *Kernel) release(slot int32) {
	n := &k.nodes[slot]
	n.fn = nil // drop the closure reference eagerly
	n.gen++
	n.state = evFree
	k.free = append(k.free, slot)
}

// Schedule runs fn after delay ticks. A delay of zero fires fn later in
// the current tick, after all previously scheduled same-time events.
func (k *Kernel) Schedule(delay Duration, fn Event) EventID {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	at := k.now + Time(delay)
	if at < k.now {
		panic(fmt.Sprintf("sim: Schedule(%d) overflows the time axis (now %v)", uint64(delay), k.now))
	}
	slot := k.alloc()
	k.nextSeq++
	n := &k.nodes[slot]
	n.at, n.seq, n.fn, n.state = at, k.nextSeq, fn, evPending
	k.push(slot)
	k.live++
	return makeID(slot, n.gen)
}

// At runs fn at absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn Event) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, k.now))
	}
	return k.Schedule(Duration(t-k.now), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
//
// Cancelled entries are dropped lazily when they reach the head of the
// queue; once they outnumber the live entries the queue is compacted so
// cancel-heavy workloads (supervision timeouts re-armed on every packet)
// keep the heap proportional to the live event count.
func (k *Kernel) Cancel(id EventID) bool {
	slot, gen := decodeID(id)
	if slot < 0 || int(slot) >= len(k.nodes) {
		return false
	}
	n := &k.nodes[slot]
	if n.state != evPending || n.gen != gen {
		return false
	}
	n.state = evCancelled
	n.fn = nil
	k.live--
	k.cancelled++
	if k.cancelled > len(k.queue)/2 && len(k.queue) >= minCompactLen {
		k.compact()
	}
	return true
}

// minCompactLen keeps compaction from churning on tiny queues, where
// lazy deletion is cheaper than a rebuild.
const minCompactLen = 64

// compact rebuilds the heap without the cancelled entries. Ordering is
// untouched: the heap invariant is re-established over the same (at,
// seq) keys, so compaction can never change the event schedule.
func (k *Kernel) compact() {
	liveQ := k.queue[:0]
	for _, slot := range k.queue {
		if k.nodes[slot].state == evPending {
			liveQ = append(liveQ, slot)
		} else {
			k.release(slot)
		}
	}
	k.queue = liveQ
	for i := len(k.queue)/2 - 1; i >= 0; i-- {
		k.siftDown(i)
	}
	k.cancelled = 0
}

// less orders queue entries by (at, seq): earlier time first, then
// schedule order — the same-tick total order that stands in for SystemC
// delta cycles.
func (k *Kernel) less(a, b int32) bool {
	na, nb := &k.nodes[a], &k.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

func (k *Kernel) push(slot int32) {
	k.queue = append(k.queue, slot)
	// Sift up.
	q := k.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (k *Kernel) siftDown(i int) {
	q := k.queue
	n := len(q)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && k.less(q[right], q[left]) {
			smallest = right
		}
		if !k.less(q[smallest], q[i]) {
			return
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

// pop removes and returns the head of the queue (which must not be
// empty).
func (k *Kernel) pop() int32 {
	q := k.queue
	head := q[0]
	last := len(q) - 1
	q[0] = q[last]
	k.queue = q[:last]
	if last > 0 {
		k.siftDown(0)
	}
	return head
}

// popLive is the single pop path shared by RunUntil and Step: it drops
// (and recycles) cancelled entries at the head of the queue and pops the
// next live event, returning its pool slot or -1 when the queue is
// empty. Keeping one implementation means the cancelled-counter
// bookkeeping cannot drift between the two run loops.
func (k *Kernel) popLive() int32 {
	for len(k.queue) > 0 {
		slot := k.pop()
		if k.nodes[slot].state != evPending {
			k.cancelled--
			k.release(slot)
			continue
		}
		return slot
	}
	return -1
}

// peekLive drops cancelled entries at the head and returns the pool slot
// of the next live event without removing it (-1 when empty).
func (k *Kernel) peekLive() int32 {
	for len(k.queue) > 0 {
		head := k.queue[0]
		if k.nodes[head].state == evPending {
			return head
		}
		k.pop()
		k.cancelled--
		k.release(head)
	}
	return -1
}

// fire pops the event in slot off the bookkeeping, advances the clock
// and runs the callback. The slot is released before the callback runs,
// so cancelling the firing event's own ID from within it is a no-op.
func (k *Kernel) fire(slot int32) {
	n := &k.nodes[slot]
	k.now = n.at
	fn := n.fn
	k.live--
	k.release(slot)
	fn()
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the final simulation time.
func (k *Kernel) Run() Time { return k.RunUntil(TimeMax) }

// RunUntil executes events with timestamps <= limit (or until Stop). The
// simulation clock is left at min(limit, time of last event) so that
// measurements over a fixed horizon are well defined.
func (k *Kernel) RunUntil(limit Time) Time {
	if k.running {
		panic("sim: RunUntil re-entered from within an event")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for !k.stopped {
		head := k.peekLive()
		if head < 0 || k.nodes[head].at > limit {
			break
		}
		k.fire(k.pop())
	}
	if k.now < limit && limit != TimeMax {
		k.now = limit
	}
	return k.now
}

// Step executes exactly one event (skipping cancelled ones) and reports
// whether an event ran. Running() is true for the duration of the
// callback, exactly as under RunUntil.
func (k *Kernel) Step() bool {
	slot := k.popLive()
	if slot < 0 {
		return false
	}
	prev := k.running
	k.running = true
	defer func() { k.running = prev }()
	k.fire(slot)
	return true
}

// Running reports whether the kernel is currently inside RunUntil —
// i.e. whether the caller is executing from within an event.
func (k *Kernel) Running() bool { return k.running }
