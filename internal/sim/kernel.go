// Package sim implements a deterministic discrete-event simulation kernel
// in the style of the SystemC scheduler the paper's model runs on.
//
// Time is counted in integer ticks of 0.5 µs so that every Bluetooth
// timing quantity (1 µs bit, 312.5 µs half slot, 625 µs slot) is an exact
// integer. Events scheduled for the same tick fire in the order they were
// scheduled (a total order that plays the role of SystemC delta cycles),
// which makes every simulation run bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in ticks (0.5 µs units).
type Time uint64

// Duration is a span of simulation time in ticks (0.5 µs units).
type Duration uint64

// Tick granularity constants. All Bluetooth timing in this repository is
// expressed with these so that slot arithmetic stays integral.
const (
	// TicksPerMicrosecond is the kernel resolution: 2 ticks = 1 µs.
	TicksPerMicrosecond = 2
	// BitTicks is the on-air duration of one symbol at 1 Mbit/s.
	BitTicks = 2
	// HalfSlotTicks is 312.5 µs, the Bluetooth native-clock period (3.2 kHz).
	HalfSlotTicks = 625
	// SlotTicks is one 625 µs Bluetooth time slot.
	SlotTicks = 1250
)

// Microseconds converts a microsecond count to a Duration.
func Microseconds(us uint64) Duration { return Duration(us * TicksPerMicrosecond) }

// Slots converts a slot count to a Duration.
func Slots(n uint64) Duration { return Duration(n * SlotTicks) }

// Micros reports t in microseconds (truncating the half-microsecond bit).
func (t Time) Micros() uint64 { return uint64(t) / TicksPerMicrosecond }

// Slot reports the index of the 625 µs slot containing t.
func (t Time) Slot() uint64 { return uint64(t) / SlotTicks }

// String formats the time as microseconds for logs and waveforms.
func (t Time) String() string {
	us2 := uint64(t)
	if us2%2 == 0 {
		return fmt.Sprintf("%dus", us2/2)
	}
	return fmt.Sprintf("%d.5us", us2/2)
}

// Event is a callback scheduled to run at a simulation time.
type Event func()

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type scheduledEvent struct {
	at     Time
	seq    uint64 // tie-break: schedule order
	id     EventID
	fn     Event
	cancel bool
	index  int // heap index
}

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Kernel is the simulation scheduler. The zero value is not usable; create
// one with NewKernel.
type Kernel struct {
	now       Time
	queue     eventQueue
	pending   map[EventID]*scheduledEvent
	cancelled int // cancelled entries still sitting in queue
	nextSeq   uint64
	nextID    EventID
	running   bool
	stopped   bool
	tracers   []Tracer
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{pending: make(map[EventID]*scheduledEvent)}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports how many events are scheduled and not yet fired.
func (k *Kernel) Pending() int { return len(k.pending) }

// Schedule runs fn after delay ticks. A delay of zero fires fn later in
// the current tick, after all previously scheduled same-time events.
func (k *Kernel) Schedule(delay Duration, fn Event) EventID {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	k.nextSeq++
	k.nextID++
	ev := &scheduledEvent{at: k.now + Time(delay), seq: k.nextSeq, id: k.nextID, fn: fn}
	heap.Push(&k.queue, ev)
	k.pending[ev.id] = ev
	return ev.id
}

// At runs fn at absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn Event) EventID {
	if t < k.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, k.now))
	}
	return k.Schedule(Duration(t-k.now), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
//
// Cancelled entries are dropped lazily when they reach the head of the
// queue; once they outnumber the live entries the queue is compacted so
// cancel-heavy workloads (supervision timeouts re-armed on every packet)
// keep the heap proportional to the live event count.
func (k *Kernel) Cancel(id EventID) bool {
	ev, ok := k.pending[id]
	if !ok {
		return false
	}
	ev.cancel = true
	delete(k.pending, id)
	k.cancelled++
	if k.cancelled > len(k.queue)/2 && len(k.queue) >= minCompactLen {
		k.compact()
	}
	return true
}

// minCompactLen keeps compaction from churning on tiny queues, where
// lazy deletion is cheaper than a rebuild.
const minCompactLen = 64

// compact rebuilds the heap without the cancelled entries. Ordering is
// untouched: the heap invariant is re-established over the same (at,
// seq) keys, so compaction can never change the event schedule.
func (k *Kernel) compact() {
	live := k.queue[:0]
	for _, ev := range k.queue {
		if !ev.cancel {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(k.queue); i++ {
		k.queue[i] = nil
	}
	k.queue = live
	for i, ev := range k.queue {
		ev.index = i
	}
	heap.Init(&k.queue)
	k.cancelled = 0
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the final simulation time.
func (k *Kernel) Run() Time { return k.RunUntil(Time(^uint64(0))) }

// RunUntil executes events with timestamps <= limit (or until Stop). The
// simulation clock is left at min(limit, time of last event) so that
// measurements over a fixed horizon are well defined.
func (k *Kernel) RunUntil(limit Time) Time {
	if k.running {
		panic("sim: RunUntil re-entered from within an event")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for len(k.queue) > 0 && !k.stopped {
		ev := k.queue[0]
		if ev.at > limit {
			break
		}
		heap.Pop(&k.queue)
		if ev.cancel {
			k.cancelled--
			continue
		}
		delete(k.pending, ev.id)
		k.now = ev.at
		ev.fn()
	}
	if k.now < limit && limit != Time(^uint64(0)) {
		k.now = limit
	}
	return k.now
}

// Step executes exactly one event (skipping cancelled ones) and reports
// whether an event ran.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*scheduledEvent)
		if ev.cancel {
			k.cancelled--
			continue
		}
		delete(k.pending, ev.id)
		k.now = ev.at
		ev.fn()
		return true
	}
	return false
}
