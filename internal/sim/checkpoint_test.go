package sim

import "testing"

func TestRandStateRoundTrip(t *testing.T) {
	a := NewRand(42)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	st := a.State()
	b := NewRand(1)
	b.SetState(st)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: resumed stream diverged: %x vs %x", i, x, y)
		}
	}
}

func TestForkState(t *testing.T) {
	if got := ForkState(12345, 0); got != 12345 {
		t.Fatalf("seed 0 must be a passthrough, got %x", got)
	}
	if ForkState(12345, 7) == 12345 {
		t.Fatal("nonzero seed must perturb the state")
	}
	if ForkState(12345, 7) != ForkState(12345, 7) {
		t.Fatal("fork must be deterministic")
	}
	if ForkState(12345, 7) == ForkState(12345, 8) {
		t.Fatal("different seeds must fork differently")
	}
	// A (state, seed) pair that collides to zero must not stick the
	// generator.
	seed := uint64(3)
	state := seed * 0x9E3779B97F4A7C15
	if ForkState(state, seed) == 0 {
		t.Fatal("fork must never produce the stuck zero state")
	}
}

func TestEventInfo(t *testing.T) {
	k := NewKernelShards(2)
	id := k.ScheduleOn(1, Slots(3), func() {})
	at, seq, shard, ok := k.EventInfo(id)
	if !ok || at != Time(Slots(3)) || shard != 1 || seq == 0 {
		t.Fatalf("EventInfo = (%v, %d, %d, %v)", at, seq, shard, ok)
	}
	k.Cancel(id)
	if _, _, _, ok := k.EventInfo(id); ok {
		t.Fatal("EventInfo must reject a cancelled ID")
	}
	id2 := k.Schedule(0, func() {})
	k.RunUntil(Time(Slots(1)))
	if _, _, _, ok := k.EventInfo(id2); ok {
		t.Fatal("EventInfo must reject a fired ID")
	}
	if _, _, _, ok := k.EventInfo(0); ok {
		t.Fatal("EventInfo must reject the zero ID")
	}
}

func TestTimerPendingAndAtOnFn(t *testing.T) {
	k := NewKernelShards(4)
	tm := k.NewTimer(nil)
	if _, _, _, ok := tm.Pending(); ok {
		t.Fatal("idle timer must not report pending")
	}
	fired := false
	tm.AtOnFn(3, Time(Slots(5)), func() { fired = true })
	at, _, shard, ok := tm.Pending()
	if !ok || at != Time(Slots(5)) || shard != 3 {
		t.Fatalf("Pending = (%v, shard %d, %v)", at, shard, ok)
	}
	k.RunUntil(Time(Slots(6)))
	if !fired {
		t.Fatal("AtOnFn arm did not fire")
	}
	if _, _, _, ok := tm.Pending(); ok {
		t.Fatal("fired timer must not report pending")
	}
}

// TestRearmSetPreservesOrder pins the re-arm ordering theorem: a set of
// same-instant and distinct-instant events captured from one kernel and
// re-armed (in arbitrary Add order) on a fresh kernel must fire in the
// original global order, interleaved correctly with events scheduled
// after the restore.
func TestRearmSetPreservesOrder(t *testing.T) {
	k1 := NewKernelShards(2)
	type cap struct {
		at    Time
		seq   uint64
		shard int
		label int
	}
	var caps []cap
	// Schedule 8 events, several sharing timestamps, across both shards.
	delays := []Duration{Slots(2), Slots(1), Slots(2), Slots(1), Slots(3), Slots(2), Slots(1), Slots(3)}
	for i, d := range delays {
		id := k1.ScheduleOn(i%2, d, func() {})
		at, seq, shard, ok := k1.EventInfo(id)
		if !ok {
			t.Fatalf("event %d not pending", i)
		}
		caps = append(caps, cap{at, seq, shard, i})
	}

	// The reference order: ascending (at, seq) = ascending (at, schedule
	// order).
	var want []int
	for _, d := range []Duration{Slots(1), Slots(2), Slots(3)} {
		for i, dd := range delays {
			if dd == d {
				want = append(want, i)
			}
		}
	}

	k2 := NewKernelShards(2)
	var got []int
	var set RearmSet
	// Add in a scrambled order; Execute must sort it out.
	for _, idx := range []int{5, 0, 7, 2, 4, 1, 6, 3} {
		c := caps[idx]
		label := c.label
		shard, at := c.shard, c.at
		set.Add(c.at, c.seq, func() {
			k2.AtOn(shard, at, func() { got = append(got, label) })
		})
	}
	set.Execute()
	if set.Len() != 0 {
		t.Fatalf("Execute must drain the set, %d left", set.Len())
	}
	// A post-restore event at an already-captured instant must fire
	// after every re-armed event at that instant (it was scheduled
	// later in both runs).
	k2.AtOn(0, Time(Slots(2)), func() { got = append(got, 99) })
	// want = [Slots(1) x3, Slots(2) x3, Slots(3) x2]; 99 lands after
	// the re-armed Slots(2) trio.
	wantFull := append(append([]int{}, want[:6]...), 99)
	wantFull = append(wantFull, want[6:]...)
	k2.Run()
	if len(got) != len(wantFull) {
		t.Fatalf("fired %d events, want %d", len(got), len(wantFull))
	}
	for i := range got {
		if got[i] != wantFull[i] {
			t.Fatalf("fire order %v, want %v", got, wantFull)
		}
	}
}
