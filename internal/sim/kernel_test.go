package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(20, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(10, func() { got = append(got, 2) }) // same time, later schedule
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Fatalf("final time = %v, want 20", k.Now())
	}
}

func TestZeroDelayRunsAfterSameTimeEvents(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Schedule(5, func() {
		got = append(got, "a")
		k.Schedule(0, func() { got = append(got, "delta") })
	})
	k.Schedule(5, func() { got = append(got, "b") })
	k.Run()
	want := []string{"a", "b", "delta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	id := k.Schedule(10, func() { ran = true })
	if !k.Cancel(id) {
		t.Fatal("first Cancel should report true")
	}
	if k.Cancel(id) {
		t.Fatal("second Cancel should report false")
	}
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelFromOtherEvent(t *testing.T) {
	k := NewKernel()
	ran := false
	id := k.Schedule(10, func() { ran = true })
	k.Schedule(5, func() { k.Cancel(id) })
	k.Run()
	if ran {
		t.Fatal("event cancelled at t=5 still ran at t=10")
	}
}

func TestRunUntilAdvancesClockToLimit(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.Schedule(1000, func() {})
	end := k.RunUntil(100)
	if end != 100 {
		t.Fatalf("RunUntil(100) = %v, want 100", end)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (the t=1000 event)", k.Pending())
	}
	// Continue: the future event must still fire.
	fired := k.Step()
	if !fired || k.Now() != 1000 {
		t.Fatalf("Step fired=%v now=%v, want true/1000", fired, k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Duration(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestAtPanicsOnPast(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestSchedulePanicsOnNil(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	k.Schedule(1, nil)
}

func TestTimeConversions(t *testing.T) {
	if Microseconds(625) != Duration(SlotTicks) {
		t.Fatal("625us != one slot")
	}
	if Slots(3) != 3*SlotTicks {
		t.Fatal("Slots(3) wrong")
	}
	if Time(SlotTicks*7).Slot() != 7 {
		t.Fatal("Slot() wrong")
	}
	if Time(5).String() != "2.5us" {
		t.Fatalf("String = %q", Time(5).String())
	}
	if Time(4).String() != "2us" {
		t.Fatalf("String = %q", Time(4).String())
	}
	if Time(SlotTicks).Micros() != 625 {
		t.Fatal("Micros wrong")
	}
}

// Property: with any batch of scheduled delays, events fire in
// non-decreasing time order and the kernel visits every one.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		k := NewKernel()
		var fired []Time
		for _, d := range delays {
			k.Schedule(Duration(d), func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilReentryPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant RunUntil did not panic")
			}
		}()
		k.Run()
	})
	k.Run()
}

func TestCancelCompactsQueue(t *testing.T) {
	k := NewKernel()
	nop := func() {}
	// Schedule far-future events and cancel almost all of them, the
	// supervision-timeout pattern: a timer re-armed on every packet.
	const n = 10000
	ids := make([]EventID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, k.Schedule(Slots(uint64(1000+i)), nop))
	}
	for _, id := range ids[:n-1] {
		if !k.Cancel(id) {
			t.Fatal("cancel failed")
		}
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	// These events are far beyond the calendar window, so they all sit in
	// the overflow heap; compaction must have dropped the cancelled
	// entries instead of retaining them until their (distant) due times
	// are popped.
	q := k.shards[0]
	if len(q.heap) > minCompactLen {
		t.Fatalf("heap holds %d entries for 1 live event", len(q.heap))
	}
	if q.heapCancelled > len(q.heap) {
		t.Fatalf("cancelled count %d exceeds heap length %d", q.heapCancelled, len(q.heap))
	}
}

func TestCancelCompactionPreservesOrder(t *testing.T) {
	k := NewKernel()
	var fired []int
	ids := make([]EventID, 0, 512)
	for i := 0; i < 512; i++ {
		i := i
		// Interleave due times so the heap is well shuffled.
		ids = append(ids, k.Schedule(Slots(uint64((i*37)%512)), func() {
			fired = append(fired, i)
		}))
	}
	// Cancel two thirds, forcing at least one compaction.
	for i, id := range ids {
		if i%3 != 0 {
			k.Cancel(id)
		}
	}
	k.Run()
	if len(fired) != 512/3+1 {
		t.Fatalf("fired %d events", len(fired))
	}
	for j := 1; j < len(fired); j++ {
		a, b := fired[j-1], fired[j]
		ta, tb := (a*37)%512, (b*37)%512
		if ta > tb || (ta == tb && a > b) {
			t.Fatalf("order violated: event %d (t=%d) before %d (t=%d)", a, ta, b, tb)
		}
	}
}

func TestCancelHeavyChurnStaysBounded(t *testing.T) {
	k := NewKernel()
	nop := func() {}
	// Continuously re-armed timeout: schedule, cancel, re-schedule.
	var id EventID
	id = k.Schedule(Slots(100000), nop)
	maxLen := 0
	for i := 0; i < 50000; i++ {
		k.Cancel(id)
		id = k.Schedule(Slots(100000+uint64(i)), nop)
		if len(k.shards[0].heap) > maxLen {
			maxLen = len(k.shards[0].heap)
		}
	}
	if maxLen > 4*minCompactLen {
		t.Fatalf("heap grew to %d entries under cancel churn", maxLen)
	}
}

// TestCancelChurnInCalendarWindowUnlinksEagerly: the same re-arm pattern
// on near-future (in-window) events must not leave tombstones at all —
// calendar cancellation is an eager unlink.
func TestCancelChurnInCalendarWindowUnlinksEagerly(t *testing.T) {
	k := NewKernel()
	nop := func() {}
	var id EventID
	id = k.Schedule(Slots(10), nop)
	for i := 0; i < 50000; i++ {
		k.Cancel(id)
		id = k.Schedule(Slots(uint64(10+i%50)), nop)
		if k.shards[0].calCount != 1 {
			t.Fatalf("calendar census = %d after re-arm %d, want 1", k.shards[0].calCount, i)
		}
	}
	if len(k.shards[0].nodes) > 4 {
		t.Fatalf("re-arm churn grew the pool to %d nodes", len(k.shards[0].nodes))
	}
}

// TestNextDue pins the quiescence probe: it must report the earliest
// pending timestamp across both the calendar and the overflow heap,
// see through cancelled heap tombstones, and go quiet when drained.
func TestNextDue(t *testing.T) {
	k := NewKernel()
	if _, ok := k.NextDue(); ok {
		t.Fatal("empty kernel reports work due")
	}
	far := k.Schedule(Slots(500000), func() {}) // overflow heap
	if due, ok := k.NextDue(); !ok || due != Time(Slots(500000)) {
		t.Fatalf("NextDue = %v,%v want far event", due, ok)
	}
	k.Schedule(Slots(3), func() {}) // calendar
	if due, ok := k.NextDue(); !ok || due != Time(Slots(3)) {
		t.Fatalf("NextDue = %v,%v want calendar event", due, ok)
	}
	k.RunUntil(Time(Slots(4)))
	if due, ok := k.NextDue(); !ok || due != Time(Slots(500000)) {
		t.Fatalf("NextDue after run = %v,%v want far event", due, ok)
	}
	k.Cancel(far)
	if _, ok := k.NextDue(); ok {
		t.Fatal("NextDue sees a cancelled heap event")
	}
	if k.Run() != Time(Slots(4)) || k.Pending() != 0 {
		t.Fatal("drained kernel in a bad state")
	}
}

// TestCalendarWindowMigration: events scheduled beyond the calendar
// window start in the overflow heap and must migrate into the calendar
// as the cursor advances, firing in exact (at, seq) order throughout.
func TestCalendarWindowMigration(t *testing.T) {
	k := NewKernel()
	var fired []uint64
	// Span several windows: defaultBuckets slots apart guarantees many
	// events start out of window.
	for i := 0; i < 50; i++ {
		slot := uint64(i) * defaultBuckets / 3
		k.At(Time(Slots(slot)), func() { fired = append(fired, slot) })
	}
	k.Run()
	if len(fired) != 50 {
		t.Fatalf("fired %d events, want 50", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("migration broke order: %v", fired)
		}
	}
	if len(k.shards[0].heap) != 0 || k.shards[0].calCount != 0 {
		t.Fatalf("leftover entries: heap=%d cal=%d", len(k.shards[0].heap), k.shards[0].calCount)
	}
}

// TestCalendarGrowsOnSkew: pouring far more in-window events into the
// calendar than it has buckets must trigger a resize, and the resize
// must preserve the same-tick schedule order.
func TestCalendarGrowsOnSkew(t *testing.T) {
	k := NewKernel()
	var fired []int
	n := 4 * defaultBuckets
	for i := 0; i < n; i++ {
		i := i
		// Many same-tick ties on a handful of nearby slots.
		k.At(Time(Slots(uint64(i%7))), func() { fired = append(fired, i) })
	}
	if len(k.shards[0].bucketHead) <= defaultBuckets {
		t.Fatalf("calendar did not grow: %d buckets for %d events", len(k.shards[0].bucketHead), n)
	}
	k.Run()
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if a%7 > b%7 || (a%7 == b%7 && a > b) {
			t.Fatalf("resize broke (at, seq) order at %d: %d before %d", i, a, b)
		}
	}
}
