package sim

import (
	"testing"
)

// FuzzShardedKernel throws arbitrary byte-driven scripts of schedule /
// cancel / cross-shard hand-off / run / step / retract operations at a
// sharded kernel and checks the two invariants the conservative
// windowing must never bend:
//
//   - monotone delivery: events fire in exactly the (at, seq) order of
//     the naive sorted-list reference — never early, never reordered;
//   - exact census: no event is lost or duplicated, Pending always
//     equals the reference list's length, and the clocks agree.
//
// The script bytes choose shard counts, delays (same-tick, off-grid,
// window-edge, far-future heap), cancel targets and window retractions,
// so the corpus explores the calendar/heap boundary and barrier edges.
// CI runs this as a fuzz smoke alongside FuzzPlacementValidation.
func FuzzShardedKernel(f *testing.F) {
	f.Add([]byte{3, 0, 10, 1, 40, 2, 200, 6, 7, 4})
	f.Add([]byte{1, 5, 5, 5, 5, 5})
	f.Add([]byte{8, 2, 0, 2, 64, 3, 128, 6, 3, 255, 7, 7, 7})
	f.Add([]byte{2, 9, 1, 9, 2, 8, 9, 3, 6, 6})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 {
			return
		}
		shards := 1 + int(script[0])%8
		k := NewKernelShards(shards)
		k.SetCouplingHorizon(func() Time { return k.Now() + Time(Slots(2)) })
		model := &refModel{}
		var fired, expect []int
		var live []EventID
		liveSid := make(map[EventID]int)
		seq := uint64(0)
		sid := 0

		next := func(i *int) byte {
			if *i >= len(script) {
				return 0
			}
			b := script[*i]
			*i++
			return b
		}
		delayFor := func(b byte) Duration {
			switch b % 4 {
			case 0:
				return Duration(b % 3) // same tick
			case 1:
				return Duration(uint64(b) * 97) // off-grid
			case 2:
				return Slots(uint64(b) * uint64(defaultBuckets) / 32) // window edge
			default:
				return Slots(uint64(1000)*uint64(b) + 1) // overflow heap
			}
		}
		check := func(ctx string) {
			t.Helper()
			if len(fired) != len(expect) {
				t.Fatalf("%s: fired %d events, reference %d", ctx, len(fired), len(expect))
			}
			for i := range expect {
				if fired[i] != expect[i] {
					t.Fatalf("%s: order diverged at %d: got sid %d, want %d", ctx, i, fired[i], expect[i])
				}
			}
			if k.Pending() != len(model.list) {
				t.Fatalf("%s: census diverged: kernel %d, reference %d", ctx, k.Pending(), len(model.list))
			}
			if k.Now() != model.now {
				t.Fatalf("%s: clocks diverged: kernel %v, reference %v", ctx, k.Now(), model.now)
			}
		}

		for i := 1; i < len(script); {
			op := next(&i)
			switch op % 7 {
			case 0, 1: // schedule on the affinity shard
				d := delayFor(next(&i))
				my := sid
				sid++
				seq++
				id := k.Schedule(d, func() { fired = append(fired, my) })
				model.insert(refEntry{at: k.Now() + Time(d), seq: seq, sid: my})
				live = append(live, id)
				liveSid[id] = my
			case 2: // cross-shard hand-off
				target := int(next(&i)) % shards
				d := delayFor(next(&i))
				my := sid
				sid++
				seq++
				id := k.ScheduleOn(target, d, func() { fired = append(fired, my) })
				if sh, _, _ := decodeID(id); sh != target {
					t.Fatalf("ScheduleOn(%d) issued shard-%d ID", target, sh)
				}
				model.insert(refEntry{at: k.Now() + Time(d), seq: seq, sid: my})
				live = append(live, id)
				liveSid[id] = my
			case 3: // cancel a script-chosen live event
				if len(live) == 0 {
					continue
				}
				j := int(next(&i)) % len(live)
				id := live[j]
				live = append(live[:j], live[j+1:]...)
				my := liveSid[id]
				delete(liveSid, id)
				if k.Cancel(id) {
					model.remove(my)
				}
				// Cancel returning false means the event already fired
				// through an earlier run/step; the reference popped it too.
				check("after cancel")
			case 4: // bounded run
				limit := k.Now() + Time(Slots(uint64(next(&i))))
				k.RunUntil(limit)
				expect = model.runUntil(limit, expect)
				check("after RunUntil")
			case 5: // single step
				var want bool
				expect, want = model.step(expect)
				if got := k.Step(); got != want {
					t.Fatalf("Step = %v, reference %v", got, want)
				}
				check("after Step")
			case 6: // horizon revocation at the window edge
				k.RetractWindow(k.Now() + Time(uint64(next(&i))))
			}
		}
		k.Run()
		for len(model.list) > 0 {
			expect, _ = model.step(expect)
		}
		check("after drain")
	})
}
