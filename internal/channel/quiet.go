package channel

import (
	"repro/internal/sim"
)

// Quiet-horizon bookkeeping: the whole-world generalisation of the
// master TX loop's long-skip. Every potential transmitter registers a
// TxPromise — a standing declaration of the earliest time it may
// spontaneously put a packet on the air. The minimum over all promises
// (pinned to the present while anything is mid-air) is a proven quiet
// horizon: a listener that only ever reacts to receptions can skip its
// carrier-sense windows up to that horizon wholesale, because no bit can
// reach its antenna before then. Promise shrinks are pushed to watchers
// synchronously, so a skipping listener resumes its per-slot schedule
// before the newly promised transmission can begin.

// TxPromise is one transmitter's declaration. Zero means "may transmit
// at any moment" (no promise); sim.TimeMax means "reactive only" — this
// device transmits solely in response to receptions, so on a quiet
// medium it stays quiet by induction.
type TxPromise struct {
	c     *Channel
	until sim.Time
}

// NewTxPromise registers a transmitter with the channel's quiet-horizon
// bookkeeping and returns its handle. Registration counts as a shrink
// (the new actor may transmit sooner than anyone promised), so current
// watchers are notified.
func (c *Channel) NewTxPromise(until sim.Time) *TxPromise {
	p := &TxPromise{c: c, until: until}
	c.promises = append(c.promises, p)
	c.notifyQuietShrunk()
	return p
}

// Until returns the promise's current declaration.
func (p *TxPromise) Until() sim.Time { return p.until }

// Promise moves the declaration. Extending it is free; shrinking it —
// new work appeared earlier than promised — notifies every watcher
// before returning, which is what keeps a skipped listen schedule from
// sleeping through the transmission the shrink announces.
func (p *TxPromise) Promise(until sim.Time) {
	if until == p.until {
		return
	}
	shrunk := until < p.until
	p.until = until
	if shrunk {
		p.c.notifyQuietShrunk()
	}
}

// QuietUntil returns the earliest time any registered transmitter may
// spontaneously transmit. While a transmission is on the air (or its
// delivery event is still pending) the horizon is pinned to the present:
// reactive responses chain off deliveries, so nothing is provably quiet
// until the air clears. A result at or before now means "not quiet".
func (c *Channel) QuietUntil() sim.Time {
	if c.inFlight > 0 {
		return c.k.Now()
	}
	q := sim.TimeMax
	for _, p := range c.promises {
		if p.until < q {
			q = p.until
		}
	}
	return q
}

// QuietWatcher is notified, synchronously, when the quiet horizon may
// have moved earlier: a promise shrank or a new transmitter registered.
type QuietWatcher interface {
	QuietHorizonShrunk()
}

// WatchQuiet subscribes w to horizon shrinks. Watchers are notified in
// subscription order — a deterministic order, since world construction
// and the event schedule are deterministic.
func (c *Channel) WatchQuiet(w QuietWatcher) {
	c.quietWatchers = append(c.quietWatchers, w)
}

// UnwatchQuiet removes w, preserving the order of the remaining
// watchers. Removing a watcher that is not subscribed is a no-op.
func (c *Channel) UnwatchQuiet(w QuietWatcher) {
	for i, x := range c.quietWatchers {
		if x == w {
			c.quietWatchers = append(c.quietWatchers[:i], c.quietWatchers[i+1:]...)
			return
		}
	}
}

// notifyQuietShrunk fans the shrink out over a snapshot, because
// watchers typically unsubscribe (and may resubscribe) from inside the
// callback.
func (c *Channel) notifyQuietShrunk() {
	if len(c.quietWatchers) == 0 {
		return
	}
	ws := append(c.watcherScratch[:0], c.quietWatchers...)
	for _, w := range ws {
		w.QuietHorizonShrunk()
	}
	c.watcherScratch = ws[:0]
}
