package channel

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/bits"
	"repro/internal/sim"
)

// spatialSetup builds a spatial channel with every fakeRx placed and
// tuned.
func spatialSetup(cfg SpatialConfig) (*sim.Kernel, *Channel) {
	k := sim.NewKernel()
	c := New(k, sim.NewRand(77), Config{})
	c.EnableSpatial(cfg)
	return k, c
}

func TestSpatialDeliveryDisc(t *testing.T) {
	k, c := spatialSetup(SpatialConfig{RangeM: 10, InterferenceM: 20})
	c.Place("master", Position{0, 0})
	near := &fakeRx{name: "near"}       // inside the delivery disc
	annulus := &fakeRx{name: "annulus"} // energy only: no delivery
	far := &fakeRx{name: "far"}         // silence
	c.Place("near", Position{6, 8})     // dist 10, on the disc edge
	c.Place("annulus", Position{0, 15}) // dist 15, in (10, 20]
	c.Place("far", Position{0, 25})     // dist 25, beyond interference
	for _, rx := range []*fakeRx{near, annulus, far} {
		c.Tune(rx, 10)
	}
	k.Schedule(0, func() { c.Transmit("master", 10, vec(50), nil) })
	k.Run()
	if len(near.got) != 1 {
		t.Fatalf("in-range receiver got %d packets, want 1", len(near.got))
	}
	if len(annulus.got)+len(annulus.started) != 0 {
		t.Fatal("annulus receiver decoded a packet")
	}
	if len(far.got)+len(far.started) != 0 {
		t.Fatal("out-of-range receiver heard the packet")
	}
	if got := c.Stats().Deliveries; got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
}

func TestSpatialReuseAndAnnulusCollision(t *testing.T) {
	// Two same-frequency transmitters: farther apart than
	// RangeM+InterferenceM the channel is spatially reused; inside that
	// separation they corrupt each other.
	for _, tc := range []struct {
		name     string
		sep      float64
		collided bool
	}{
		{"reuse", 31, false},   // > 10+20
		{"collide", 29, true},  // one's annulus reaches the other's disc
		{"adjacent", 15, true}, // deep overlap
	} {
		t.Run(tc.name, func(t *testing.T) {
			k, c := spatialSetup(SpatialConfig{RangeM: 10, InterferenceM: 20})
			c.Place("txA", Position{0, 0})
			c.Place("txB", Position{tc.sep, 0})
			rxA := &fakeRx{name: "rxA"}
			rxB := &fakeRx{name: "rxB"}
			c.Place("rxA", Position{1, 0})
			c.Place("rxB", Position{tc.sep - 1, 0})
			c.Tune(rxA, 10)
			c.Tune(rxB, 10)
			k.Schedule(0, func() { c.Transmit("txA", 10, vec(50), nil) })
			k.Schedule(1, func() { c.Transmit("txB", 10, vec(50), nil) })
			k.Run()
			if tc.collided {
				if rxA.collided != 1 || rxB.collided != 1 {
					t.Fatalf("collisions rxA=%d rxB=%d, want 1 each", rxA.collided, rxB.collided)
				}
				if got := c.Stats().Collisions; got != 2 {
					t.Fatalf("stats.Collisions = %d, want 2", got)
				}
			} else {
				if len(rxA.got) != 1 || len(rxB.got) != 1 {
					t.Fatalf("deliveries rxA=%d rxB=%d, want 1 each (spatial reuse)", len(rxA.got), len(rxB.got))
				}
				if got := c.Stats().Collisions; got != 0 {
					t.Fatalf("stats.Collisions = %d, want 0", got)
				}
			}
		})
	}
}

func TestPlaceRebucketsListener(t *testing.T) {
	// Mobility: re-placing a tuned listener moves it between shard cells
	// immediately — deliveries follow the new position.
	k, c := spatialSetup(SpatialConfig{RangeM: 10, CellM: 5})
	c.Place("master", Position{0, 0})
	rx := &fakeRx{name: "rover"}
	c.Place("rover", Position{500, 500}) // far outside range
	c.Tune(rx, 10)
	k.Schedule(0, func() { c.Transmit("master", 10, vec(50), nil) })
	k.Schedule(100*sim.BitTicks, func() { c.Place("rover", Position{3, 4}) }) // dist 5: in range
	k.Schedule(101*sim.BitTicks, func() { c.Transmit("master", 10, vec(50), nil) })
	k.Schedule(300*sim.BitTicks, func() { c.Place("rover", Position{-300, 200}) })
	k.Schedule(301*sim.BitTicks, func() { c.Transmit("master", 10, vec(50), nil) })
	k.Run()
	if len(rx.got) != 1 {
		t.Fatalf("rover got %d packets, want exactly the one sent while in range", len(rx.got))
	}
	if got, ok := c.PositionOf("rover"); !ok || got != (Position{-300, 200}) {
		t.Fatalf("PositionOf(rover) = %v, %v", got, ok)
	}
}

// bruteEligible recomputes, by an O(n) scan over every registered
// receiver, the names of the listeners a transmission from `from` at
// `now` on `freq` must snapshot — the reference model for the cell
// index.
func bruteEligible(c *Channel, from string, freq int, now sim.Time) []string {
	sp := c.spatial
	pos := sp.pos[from]
	var states []*tuneState
	for _, st := range c.receivers {
		if st.on && st.freq == freq && st.since <= now && st.busy == nil &&
			st.l.Name() != from && dist2(st.pos, pos) <= sp.rangeM2 {
			states = append(states, st)
		}
	}
	sortListeners(states)
	names := make([]string, len(states))
	for i, st := range states {
		names[i] = st.l.Name()
	}
	return names
}

func eligibleNames(tx *Transmission) []string {
	names := make([]string, len(tx.eligible))
	for i, st := range tx.eligible {
		names[i] = st.l.Name()
	}
	return names
}

func TestSpatialIndexMatchesBruteForce(t *testing.T) {
	// Property test: on randomized placements, ranges and cell sizes the
	// sharded receiver snapshot must equal a naive O(n) distance scan,
	// in the same order (the determinism contract).
	rng := sim.NewRand(0xC0FFEE)
	for trial := 0; trial < 60; trial++ {
		rangeM := 1 + 40*rng.Float64()
		interferenceM := rangeM * (1 + rng.Float64())
		// Cell sizes from "much smaller than range" to "much larger".
		cellM := (rangeM + interferenceM) * math.Pow(2, float64(rng.Intn(7)-3))
		k := sim.NewKernel()
		c := New(k, sim.NewRand(rng.Uint64()), Config{})
		c.EnableSpatial(SpatialConfig{RangeM: rangeM, InterferenceM: interferenceM, CellM: cellM})

		world := 20 + 100*rng.Float64() // floor side, in meters
		n := 5 + rng.Intn(40)
		rxs := make([]*fakeRx, n)
		for i := range rxs {
			name := fmt.Sprintf("rx%02d", i)
			rxs[i] = &fakeRx{name: name}
			c.Place(name, Position{world * (rng.Float64() - 0.5), world * (rng.Float64() - 0.5)})
			c.Tune(rxs[i], rng.Intn(4)) // few frequencies: plenty of co-channel listeners
		}
		c.Place("tx", Position{world * (rng.Float64() - 0.5), world * (rng.Float64() - 0.5)})

		for shot := 0; shot < 8; shot++ {
			// Occasionally retune or move a listener between shots.
			if i := rng.Intn(n); rng.Bool(0.5) {
				c.Tune(rxs[i], rng.Intn(4))
			}
			if i := rng.Intn(n); rng.Bool(0.3) {
				c.Place(rxs[i].name, Position{world * (rng.Float64() - 0.5), world * (rng.Float64() - 0.5)})
			}
			freq := rng.Intn(4)
			want := bruteEligible(c, "tx", freq, k.Now())
			tx := c.Transmit("tx", freq, vec(20), nil)
			if got := eligibleNames(tx); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d shot %d (range %.1f cell %.1f): sharded set %v != brute force %v",
					trial, shot, rangeM, cellM, got, want)
			}
			k.Run() // drain the delivery events before the next shot
		}
	}
}

// logRx records delivery outcomes in order, for medium-equivalence
// comparison.
type logRx struct {
	name string
	log  []string
}

func (l *logRx) Name() string             { return l.name }
func (l *logRx) RxStart(tx *Transmission) { l.log = append(l.log, "start:"+tx.From) }
func (l *logRx) RxEnd(tx *Transmission, rx *bits.Vec, collided bool) {
	l.log = append(l.log, fmt.Sprintf("end:%s:%v", tx.From, collided))
}

// TestSpatialInfiniteRangeMatchesGlobal drives the global medium and a
// spatial medium with a range wider than the world through the same
// randomized Tune/Transmit schedule and demands identical delivery logs
// and channel stats — the channel-level reference-model equivalence.
func TestSpatialInfiniteRangeMatchesGlobal(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		type op struct {
			at    sim.Duration
			tune  int // receiver index, -1 for transmit
			freq  int
			nbits int
		}
		// One schedule, generated once per seed, replayed on both media.
		rng := sim.NewRand(seed * 999)
		const n = 12
		var ops []op
		for i := 0; i < 120; i++ {
			o := op{at: sim.Duration(rng.Intn(3000)), freq: rng.Intn(5), tune: -1, nbits: 10 + rng.Intn(80)}
			if rng.Bool(0.6) {
				o.tune = rng.Intn(n)
			}
			ops = append(ops, o)
		}
		run := func(spatial bool) ([][]string, Stats) {
			k := sim.NewKernel()
			c := New(k, sim.NewRand(seed), Config{BER: 0.01, Delay: 3})
			if spatial {
				c.EnableSpatial(SpatialConfig{RangeM: 1e9, CellM: 40})
				prng := sim.NewRand(seed * 7)
				c.Place("tx", Position{prng.Float64() * 100, prng.Float64() * 100})
				for i := 0; i < n; i++ {
					c.Place(fmt.Sprintf("rx%02d", i), Position{prng.Float64() * 100, prng.Float64() * 100})
				}
			}
			rxs := make([]*logRx, n)
			for i := range rxs {
				rxs[i] = &logRx{name: fmt.Sprintf("rx%02d", i)}
			}
			for _, o := range ops {
				o := o
				k.Schedule(o.at, func() {
					if o.tune >= 0 {
						c.Tune(rxs[o.tune], o.freq)
					} else {
						c.Transmit("tx", o.freq, vec(o.nbits), nil)
					}
				})
			}
			k.Run()
			logs := make([][]string, n)
			for i, rx := range rxs {
				logs[i] = rx.log
			}
			return logs, c.Stats()
		}
		glogs, gstats := run(false)
		slogs, sstats := run(true)
		if gstats != sstats {
			t.Fatalf("seed %d: stats diverge:\nglobal  %+v\nspatial %+v", seed, gstats, sstats)
		}
		if !reflect.DeepEqual(glogs, slogs) {
			t.Fatalf("seed %d: delivery logs diverge", seed)
		}
	}
}

func TestEnableSpatialGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	_, c := setup(0, 0)
	c.Tune(&fakeRx{name: "early"}, 3)
	mustPanic("enable after tune", func() { c.EnableSpatial(SpatialConfig{RangeM: 10}) })

	_, c2 := setup(0, 0)
	mustPanic("zero range", func() { c2.EnableSpatial(SpatialConfig{}) })
	mustPanic("NaN range", func() { c2.EnableSpatial(SpatialConfig{RangeM: math.NaN()}) })
	mustPanic("shrunk interference", func() { c2.EnableSpatial(SpatialConfig{RangeM: 10, InterferenceM: 5}) })
	c2.EnableSpatial(SpatialConfig{RangeM: 10})
	mustPanic("double enable", func() { c2.EnableSpatial(SpatialConfig{RangeM: 10}) })
	mustPanic("unplaced tune", func() { c2.Tune(&fakeRx{name: "ghost"}, 3) })
	c2.Place("solo", Position{0, 0})
	c2.Tune(&fakeRx{name: "solo"}, 3)
	mustPanic("duplicate name", func() { c2.Tune(&fakeRx{name: "solo"}, 4) })
	mustPanic("unplaced transmit", func() { c2.Transmit("ghost", 3, vec(10), nil) })
}
