package channel

import "repro/internal/sim"

// Checkpoint accessors. The channel itself is never serialized
// wholesale: the quiescent-edge snapshot contract (see core.Snapshot)
// guarantees no transmission is in flight, tune states are rebuilt by
// the restored devices re-Tuning, and the spatial index is rebuilt from
// the world's placement layout. What must survive exactly is the noise
// RNG's stream position and each transmitter's quiet-horizon promise.

// InFlight reports how many transmissions still have a pending delivery
// event. Snapshot refuses to run unless this is zero — with packets on
// the air there is no quiescent edge to capture.
func (c *Channel) InFlight() int { return c.inFlight }

// RNGState returns the exact position of the channel's noise RNG stream
// (bit-error and jammer-duty draws) for a checkpoint.
func (c *Channel) RNGState() uint64 { return c.rng.State() }

// SetRNGState overwrites the noise RNG's stream position with a value
// previously returned by RNGState (optionally forked — see
// sim.ForkState).
func (c *Channel) SetRNGState(s uint64) { c.rng.SetState(s) }

// QuietWatchers returns the current quiet-horizon subscribers in
// notification order. Watcher callbacks have side effects (they
// schedule events), so a checkpoint must capture this order and a
// restore must re-subscribe in it — re-subscribing in device
// construction order would reorder the notification fan-out and
// diverge from the straight run.
func (c *Channel) QuietWatchers() []QuietWatcher {
	return append([]QuietWatcher(nil), c.quietWatchers...)
}

// RestoreUntil imposes a checkpointed declaration without notifying
// quiet watchers: restore runs before any event fires, and the listen
// schedules that shrink notifications would wake are themselves rebuilt
// from the same checkpoint, so a notification here could only perturb
// state that is about to be overwritten.
func (p *TxPromise) RestoreUntil(t sim.Time) { p.until = t }
