package channel

import (
	"testing"

	"repro/internal/sim"
)

func TestJammerDestroysInBand(t *testing.T) {
	k, c := setup(0, 0)
	c.AddJammer(30, 52, 1.0)
	rxIn := &fakeRx{name: "in"}
	rxOut := &fakeRx{name: "out"}
	c.Tune(rxIn, 40)  // jammed band
	c.Tune(rxOut, 10) // clear band
	k.Schedule(0, func() { c.Transmit("a", 40, vec(50), nil) })
	k.Schedule(200, func() { c.Transmit("a", 10, vec(50), nil) })
	k.Run()
	if len(rxIn.got) != 0 || rxIn.collided != 1 {
		t.Fatalf("in-band packet survived the jammer: got=%d collided=%d",
			len(rxIn.got), rxIn.collided)
	}
	if len(rxOut.got) != 1 || rxOut.collided != 0 {
		t.Fatalf("out-of-band packet affected: got=%d collided=%d",
			len(rxOut.got), rxOut.collided)
	}
	if c.Stats().Jammed != 1 {
		t.Fatalf("Jammed = %d", c.Stats().Jammed)
	}
}

func TestJammerDutyCycle(t *testing.T) {
	k, c := setup(0, 0)
	c.AddJammer(0, 78, 0.5)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 5)
	const n = 2000
	for i := 0; i < n; i++ {
		at := sim.Time(uint64(i) * 200)
		k.At(at, func() { c.Transmit("a", 5, vec(50), nil) })
	}
	k.Run()
	frac := float64(len(rx.got)) / n
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("50%% jammer let %.2f through", frac)
	}
}

func TestClearJammers(t *testing.T) {
	k, c := setup(0, 0)
	c.AddJammer(0, 78, 1.0)
	c.ClearJammers()
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 0)
	k.Schedule(0, func() { c.Transmit("a", 0, vec(20), nil) })
	k.Run()
	if len(rx.got) != 1 {
		t.Fatal("cleared jammer still active")
	}
}

func TestJammerValidation(t *testing.T) {
	_, c := setup(0, 0)
	for name, fn := range map[string]func(){
		"bad range": func() { c.AddJammer(50, 40, 0.5) },
		"bad high":  func() { c.AddJammer(0, 79, 0.5) },
		"bad duty":  func() { c.AddJammer(0, 10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
