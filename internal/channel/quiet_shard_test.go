package channel

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/sim"
)

// Satellite coverage for quiet-horizon revocation racing a shard-window
// edge. quiet_test.go pins the promise/watcher machinery on the serial
// kernel; here the kernel is sharded, delivery events are routed to a
// transmitter's home shard (as core wires it), and the coupling horizon
// feeding the kernel's windows is channel.QuietUntil itself. The race
// under test: a wide promise lets the kernel open a generous window,
// then — with another shard already holding an in-window transmission —
// the promise is revoked and a new transmission starts earlier than the
// window assumed. The revocation must notify watchers synchronously,
// retract the window, and leave every delivery (including the
// cross-shard collision) byte-identical to the serial kernel's.

// retractor mirrors core's horizonWatcher: a QuietWatcher that pulls
// the kernel's open window back to the new horizon.
type retractor struct {
	k *sim.Kernel
	c *Channel
	n int
}

func (r *retractor) QuietHorizonShrunk() {
	r.n++
	r.k.RetractWindow(r.c.QuietUntil())
}

// quietShardScript runs the revocation-vs-window-edge scenario on a
// kernel with the given shard count and returns a trace of everything
// observable: delivery timeline, watcher activations, channel stats.
func quietShardScript(shards int) string {
	k := sim.NewKernelShards(shards)
	c := New(k, sim.NewRand(77), Config{BER: 0, Delay: 2})
	var trace []string
	rx := &traceRx{name: "rx", out: &trace, k: k}
	rx2 := &traceRx{name: "rx2", out: &trace, k: k}
	c.Tune(rx, 10)
	c.Tune(rx2, 10)

	// Route each transmitter's delivery events to its own shard, the
	// way core does per spatial cell: "early" lives on the last shard,
	// "late" on shard 0.
	homes := map[string]int{"early": shards - 1, "late": 0}
	c.SetShardRouter(func(from string) int { return homes[from] })

	w := &retractor{k: k, c: c}
	c.WatchQuiet(w)
	if shards > 1 {
		k.SetCouplingHorizon(c.QuietUntil)
	}

	// A reactive-only transmitter: promise = TimeMax, so the kernel's
	// first window opens as wide as the schedule allows.
	p := c.NewTxPromise(sim.TimeMax)

	// Shard 0 holds an in-window transmission ending at t=900*2+1000+2.
	k.ScheduleOn(0, 1000, func() { c.Transmit("late", 10, vec(900), nil) })

	// Mid-flight, from the opposite shard, the promise is revoked and a
	// transmission starts immediately — earlier than any open window
	// assumed, overlapping the in-flight packet on the same frequency.
	k.ScheduleOn((shards-1)%shards, 1400, func() {
		p.Promise(k.Now()) // revocation: watcher fires synchronously
		c.Transmit("early", 10, vec(200), nil)
	})

	// A later clean packet proves the world keeps running after the
	// revoked window.
	k.ScheduleOn(0, sim.SlotTicks*20, func() { c.Transmit("late", 10, vec(100), nil) })

	k.Run()
	st := c.Stats()
	trace = append(trace,
		fmt.Sprintf("watcher=%d", w.n),
		fmt.Sprintf("tx=%d collisions=%d deliveries=%d flipped=%d",
			st.Transmissions, st.Collisions, st.Deliveries, st.FlippedBits),
		fmt.Sprintf("end=%v pending=%d", k.Now(), k.Pending()))
	return fmt.Sprint(trace)
}

// traceRx records every receiver callback with its timestamp.
type traceRx struct {
	name string
	out  *[]string
	k    *sim.Kernel
}

func (r *traceRx) Name() string { return r.name }
func (r *traceRx) RxStart(tx *Transmission) {
	*r.out = append(*r.out, fmt.Sprintf("%v %s start %s", r.k.Now(), r.name, tx.From))
}
func (r *traceRx) RxEnd(tx *Transmission, rx *bits.Vec, collided bool) {
	n := -1 // collided deliveries carry no payload
	if rx != nil {
		n = rx.Len()
	}
	*r.out = append(*r.out, fmt.Sprintf("%v %s end %s collided=%v len=%d",
		r.k.Now(), r.name, tx.From, collided, n))
}

func TestQuietRevocationRacesShardWindowEdge(t *testing.T) {
	serial := quietShardScript(1)
	for _, shards := range []int{2, 4} {
		if got := quietShardScript(shards); got != serial {
			t.Fatalf("shards=%d diverged from serial:\nserial:  %s\nsharded: %s", shards, serial, got)
		}
	}
	// The scenario must actually contain the race it claims to cover:
	// two watcher activations (promise registration + the mid-flight
	// revocation) and the collision the revoked window was hiding.
	for _, needle := range []string{"watcher=2", "collisions=2"} {
		if !strings.Contains(serial, needle) {
			t.Fatalf("scenario lost its race ingredients (%q missing):\n%s", needle, serial)
		}
	}
}

// TestQuietWatcherSeesInFlightPinWhileShardWindowOpen: the revocation
// notification runs while another shard's transmission is mid-air, so
// the watcher's own QuietUntil read must come back pinned to now — the
// retraction target is the present, not the revoked promise's old
// horizon.
func TestQuietWatcherSeesInFlightPinWhileShardWindowOpen(t *testing.T) {
	k := sim.NewKernelShards(2)
	c := New(k, sim.NewRand(77), Config{BER: 0, Delay: 2})
	rx := &fakeRx{name: "rx"}
	c.Tune(rx, 10)
	c.SetShardRouter(func(from string) int {
		if from == "m" {
			return 1
		}
		return 0
	})
	k.SetCouplingHorizon(c.QuietUntil)
	p := c.NewTxPromise(sim.TimeMax)
	pinned := false
	w := &fakeWatcher{name: "w"}
	w.onEvent = func(*fakeWatcher) {
		if q := c.QuietUntil(); q == k.Now() {
			pinned = true
			k.RetractWindow(q)
		} else {
			t.Errorf("watcher saw horizon %v with a packet in flight (now %v)", q, k.Now())
		}
	}
	c.WatchQuiet(w)
	// Shard 1 holds the in-flight transmission; shard 0 revokes mid-air.
	k.ScheduleOn(1, 100, func() { c.Transmit("m", 10, vec(400), nil) })
	k.ScheduleOn(0, 300, func() { p.Promise(k.Now() + 50) })
	k.Run()
	if w.shrunk == 0 || !pinned {
		t.Fatalf("revocation not observed under in-flight pin (shrunk=%d pinned=%v)", w.shrunk, pinned)
	}
	if len(rx.got) != 1 {
		t.Fatalf("delivery broken by the revocation: %d packets", len(rx.got))
	}
}
