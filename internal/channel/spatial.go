package channel

import (
	"fmt"
	"math"
)

// This file holds the spatial medium: positions, the path-loss range
// model and the cell-sharded receiver index. The model is strictly
// opt-in — a Channel without EnableSpatial behaves exactly as the
// paper's single shared ether (every tuned radio hears every
// transmission), and the spatial path with a range wider than the
// world reproduces that behaviour bit for bit (the reference-model
// equivalence suite pins this).
//
// Geometry is a flat two-dimensional floor in meters. Propagation is a
// two-threshold path-loss disc around each transmitter:
//
//   - dist <= RangeM            delivery: the receiver decodes the packet
//   - RangeM < dist <= InterferenceM   annulus: energy only — the signal
//     cannot be decoded but still feeds the four-valued collision
//     resolver as interference
//   - dist > InterferenceM      silence: the transmission does not exist
//     for that radio
//
// Collision resolution stays at the model's per-transmission
// granularity: two overlapping same-frequency transmissions corrupt
// each other iff their transmitters are within RangeM + InterferenceM
// of each other — the nearest distance at which one transmitter's
// interference annulus can still reach a receiver inside the other's
// delivery disc. Beyond that separation the same RF channel is
// spatially reused without damage, which is exactly the effect that
// caps the old global medium at a handful of piconets.
//
// Sharding: tuned receivers are bucketed into square cells of side
// CellM (default RangeM + InterferenceM, so a 3x3 neighbourhood always
// covers the delivery disc). Transmit scans only the cells the
// delivery disc can touch, so per-packet receiver work is bounded by
// cell occupancy instead of the world's radio count.
//
// Determinism contract: the delivery fan-out order never depends on
// cell geometry. Candidate receivers are collected cell by cell and
// then sorted by (name, registration sequence) — see sortListeners —
// so any shard size, and the unsharded global scan, produce the same
// eligible order. Jammers remain geography-free: a static interferer
// occupies its band everywhere on the floor.

// Position is a point on the simulated floor, in meters.
type Position struct {
	X, Y float64
}

// dist2 returns the squared distance between two positions.
func dist2(a, b Position) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// SpatialConfig parameterises the range model.
type SpatialConfig struct {
	// RangeM is the delivery radius in meters: receivers within it
	// decode the transmission. Required, > 0.
	RangeM float64
	// InterferenceM is the outer radius of the interference annulus:
	// between RangeM and InterferenceM a transmission cannot be decoded
	// but still collides. Defaults to RangeM (no annulus); must be >=
	// RangeM.
	InterferenceM float64
	// CellM is the shard cell side. Defaults to RangeM + InterferenceM
	// so one ring of neighbouring cells always covers the delivery
	// disc; smaller cells trade wider neighbourhood scans for tighter
	// occupancy. Must be > 0 when set.
	CellM float64
}

// cellKey addresses one shard cell.
type cellKey struct {
	x, y int32
}

// spatialState carries the spatial medium of one Channel.
type spatialState struct {
	cfg      SpatialConfig
	rangeM2  float64 // delivery disc, squared
	collide2 float64 // transmitter-pair collision distance, squared
	reach    int32   // neighbourhood radius in cells for the delivery scan

	pos    map[string]Position   // declared placements, by radio name
	byName map[string]*tuneState // registered listeners, by name
	cells  map[cellKey][]*tuneState
}

// EnableSpatial switches the channel from the global shared ether to
// the spatial medium. It must be called before any radio tunes or
// transmits: the cell index is built from scratch and existing
// listeners have no positions. Every radio that subsequently tunes or
// transmits must have been placed with Place, and names must be unique
// (positions are keyed by name).
func (c *Channel) EnableSpatial(cfg SpatialConfig) {
	if c.spatial != nil {
		panic("channel: spatial medium already enabled")
	}
	if len(c.receivers) > 0 || c.stats.Transmissions > 0 {
		panic("channel: EnableSpatial must run before any Tune or Transmit")
	}
	if !(cfg.RangeM > 0) {
		panic(fmt.Sprintf("channel: spatial range %v must be > 0", cfg.RangeM))
	}
	if cfg.InterferenceM == 0 {
		cfg.InterferenceM = cfg.RangeM
	}
	if !(cfg.InterferenceM >= cfg.RangeM) {
		panic(fmt.Sprintf("channel: interference radius %v < range %v", cfg.InterferenceM, cfg.RangeM))
	}
	if cfg.CellM == 0 {
		cfg.CellM = cfg.RangeM + cfg.InterferenceM
	}
	if !(cfg.CellM > 0) {
		panic(fmt.Sprintf("channel: cell side %v must be > 0", cfg.CellM))
	}
	sum := cfg.RangeM + cfg.InterferenceM
	c.spatial = &spatialState{
		cfg:      cfg,
		rangeM2:  cfg.RangeM * cfg.RangeM,
		collide2: sum * sum,
		reach:    cellReach(cfg.RangeM, cfg.CellM),
		pos:      make(map[string]Position),
		byName:   make(map[string]*tuneState),
		cells:    make(map[cellKey][]*tuneState),
	}
}

// Spatial reports whether the spatial medium is enabled.
func (c *Channel) Spatial() bool { return c.spatial != nil }

// cellReach is how many cells away from the transmitter's cell the
// delivery disc can still touch a listener.
func cellReach(rangeM, cellM float64) int32 {
	r := math.Ceil(rangeM / cellM)
	if r < 1 {
		r = 1
	}
	if r > 1<<20 { // a degenerate range/cell ratio; scan stays finite
		r = 1 << 20
	}
	return int32(r)
}

// cellCoord quantises one coordinate, clamped so pathological float
// inputs cannot overflow the int32 key space (correctness is preserved
// either way — the distance check filters — only sharding degrades).
func cellCoord(v, cellM float64) int32 {
	f := math.Floor(v / cellM)
	if f > math.MaxInt32 {
		return math.MaxInt32
	}
	if f < math.MinInt32 {
		return math.MinInt32
	}
	return int32(f)
}

func (sp *spatialState) cellOf(p Position) cellKey {
	return cellKey{cellCoord(p.X, sp.cfg.CellM), cellCoord(p.Y, sp.cfg.CellM)}
}

// Place declares (or updates) the position of the named radio. Every
// transmitter and listener of a spatial channel must be placed before
// its first Transmit or Tune. Re-placing a registered listener moves it
// between shard cells immediately — a packet already mid-air keeps the
// receiver snapshot taken at its start, matching the global medium's
// delivery contract.
func (c *Channel) Place(name string, p Position) {
	sp := c.spatial
	if sp == nil {
		panic("channel: Place requires EnableSpatial")
	}
	sp.pos[name] = p
	if st := sp.byName[name]; st != nil {
		old := sp.cellOf(st.pos)
		st.pos = p
		if nk := sp.cellOf(p); nk != old {
			sp.unbucket(st, old)
			sp.cells[nk] = append(sp.cells[nk], st)
		}
	}
}

// PositionOf returns the declared position of a radio (false if it was
// never placed or the spatial medium is off).
func (c *Channel) PositionOf(name string) (Position, bool) {
	if c.spatial == nil {
		return Position{}, false
	}
	p, ok := c.spatial.pos[name]
	return p, ok
}

// register indexes a newly created tuneState: position lookup, name
// uniqueness, cell bucket.
func (sp *spatialState) register(st *tuneState) {
	name := st.l.Name()
	p, ok := sp.pos[name]
	if !ok {
		panic(fmt.Sprintf("channel: listener %q tuned on a spatial medium without a position (call Place first)", name))
	}
	if sp.byName[name] != nil {
		panic(fmt.Sprintf("channel: duplicate listener name %q on a spatial medium", name))
	}
	sp.byName[name] = st
	st.pos = p
	k := sp.cellOf(p)
	sp.cells[k] = append(sp.cells[k], st)
}

// unbucket removes st from the cell slice it currently occupies.
func (sp *spatialState) unbucket(st *tuneState, k cellKey) {
	bucket := sp.cells[k]
	for i, other := range bucket {
		if other == st {
			bucket[i] = bucket[len(bucket)-1]
			sp.cells[k] = bucket[:len(bucket)-1]
			return
		}
	}
}

// txPosition resolves a transmitter's position.
func (sp *spatialState) txPosition(from string) Position {
	p, ok := sp.pos[from]
	if !ok {
		panic(fmt.Sprintf("channel: transmitter %q has no position (call Place first)", from))
	}
	return p
}

// gatherEligible appends every listener the transmission can deliver
// to — tuned to freq, idle, in the delivery disc — scanning only the
// cell neighbourhood the disc touches. The caller sorts the result, so
// cell iteration order is irrelevant (the determinism contract above).
func (sp *spatialState) gatherEligible(tx *Transmission, from string) {
	take := func(st *tuneState) {
		if st.on && st.freq == tx.Freq && st.since <= tx.Start && st.busy == nil &&
			st.l.Name() != from && dist2(st.pos, tx.pos) <= sp.rangeM2 {
			tx.eligible = append(tx.eligible, st)
			st.busy = tx
		}
	}
	center := sp.cellOf(tx.pos)
	// The delivery disc spans at most `reach` cells in each direction;
	// saturating adds keep degenerate keys from wrapping.
	lox, hix := satAdd(center.x, -sp.reach), satAdd(center.x, sp.reach)
	loy, hiy := satAdd(center.y, -sp.reach), satAdd(center.y, sp.reach)
	// When the range is wide relative to the cell size (the equivalence
	// harness's "infinite range", or a degenerate config) the
	// neighbourhood holds more cells than the world has occupied ones;
	// walking the occupied set is then strictly cheaper and — because
	// the caller sorts — yields the identical snapshot.
	side := int64(hix-lox) + 1
	if side*side > int64(len(sp.cells)) {
		for k, bucket := range sp.cells {
			if k.x < lox || k.x > hix || k.y < loy || k.y > hiy {
				continue
			}
			for _, st := range bucket {
				take(st)
			}
		}
		return
	}
	for cx := lox; ; cx++ {
		for cy := loy; ; cy++ {
			for _, st := range sp.cells[cellKey{cx, cy}] {
				take(st)
			}
			if cy == hiy {
				break
			}
		}
		if cx == hix {
			break
		}
	}
}

// satAdd adds with saturation at the int32 bounds.
func satAdd(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > math.MaxInt32 {
		return math.MaxInt32
	}
	if s < math.MinInt32 {
		return math.MinInt32
	}
	return int32(s)
}
