package channel

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// The spatial medium's perf contract: per-packet receiver work scales
// with cell occupancy, not world population. The dense benchmark puts
// every listener in the transmitter's neighbourhood (worst case, all
// of them snapshot); the sparse benchmark spreads a much larger world
// out so the 3x3 neighbourhood holds only a handful; the churn
// benchmark prices mobility across a cell boundary.

// benchWorld tunes n listeners at the given positions on frequency 0
// and returns a kernel/channel pair ready to transmit.
func benchWorld(b *testing.B, cfg SpatialConfig, pos []Position) (*sim.Kernel, *Channel) {
	b.Helper()
	k := sim.NewKernel()
	c := New(k, sim.NewRand(1), Config{})
	c.EnableSpatial(cfg)
	c.Place("tx", Position{0, 0})
	for i, p := range pos {
		name := fmt.Sprintf("rx%04d", i)
		c.Place(name, p)
		c.Tune(&fakeRx{name: name}, 0)
	}
	return k, c
}

// BenchmarkSpatialDenseCell: 64 co-channel listeners inside one cell
// with the transmitter — every packet snapshots all of them.
func BenchmarkSpatialDenseCell(b *testing.B) {
	pos := make([]Position, 64)
	for i := range pos {
		pos[i] = Position{float64(i % 8), float64(i / 8)}
	}
	k, c := benchWorld(b, SpatialConfig{RangeM: 20}, pos)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transmit("tx", 0, vec(50), nil)
		k.Run()
	}
}

// BenchmarkSpatialSparseWorld: 1024 listeners on a 100 m grid with a
// 12 m range — the whole world is registered but each packet touches
// only the transmitter's cell neighbourhood.
func BenchmarkSpatialSparseWorld(b *testing.B) {
	pos := make([]Position, 1024)
	for i := range pos {
		pos[i] = Position{float64(i%32) * 100, float64(i/32) * 100}
	}
	k, c := benchWorld(b, SpatialConfig{RangeM: 12, InterferenceM: 22}, pos)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Transmit("tx", 0, vec(50), nil)
		k.Run()
	}
}

// BenchmarkSpatialCellChurn: a tuned listener ping-pongs across a cell
// boundary every iteration — the unbucket/rebucket cost of mobility.
func BenchmarkSpatialCellChurn(b *testing.B) {
	pos := make([]Position, 64)
	for i := range pos {
		pos[i] = Position{float64(i % 8), float64(i / 8)}
	}
	_, c := benchWorld(b, SpatialConfig{RangeM: 20}, pos)
	// CellM defaults to 2*RangeM = 40 m: these two positions live in
	// adjacent cells.
	a, z := Position{39, 0}, Position{41, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			c.Place("rx0000", a)
		} else {
			c.Place("rx0000", z)
		}
	}
}
