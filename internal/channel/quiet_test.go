package channel

import (
	"testing"

	"repro/internal/sim"
)

type fakeWatcher struct {
	name    string
	shrunk  int
	onEvent func(w *fakeWatcher)
}

func (w *fakeWatcher) QuietHorizonShrunk() {
	w.shrunk++
	if w.onEvent != nil {
		w.onEvent(w)
	}
}

func TestQuietUntilIsMinOverPromises(t *testing.T) {
	_, c := setup(0, 0)
	if q := c.QuietUntil(); q != sim.TimeMax {
		t.Fatalf("empty channel QuietUntil = %v, want TimeMax", q)
	}
	a := c.NewTxPromise(sim.TimeMax)
	b := c.NewTxPromise(5000)
	if q := c.QuietUntil(); q != 5000 {
		t.Fatalf("QuietUntil = %v, want 5000", q)
	}
	a.Promise(3000)
	if q := c.QuietUntil(); q != 3000 {
		t.Fatalf("QuietUntil = %v, want 3000", q)
	}
	b.Promise(sim.TimeMax)
	if q := c.QuietUntil(); q != 3000 {
		t.Fatalf("QuietUntil = %v, want 3000 (a still binds)", q)
	}
	if a.Until() != 3000 || b.Until() != sim.TimeMax {
		t.Fatalf("Until() = %v, %v", a.Until(), b.Until())
	}
}

func TestQuietUntilPinnedWhileInFlight(t *testing.T) {
	k, c := setup(0, 0)
	c.NewTxPromise(sim.TimeMax)
	k.Schedule(100, func() { c.Transmit("m", 10, vec(50), nil) })
	k.Schedule(120, func() {
		if q := c.QuietUntil(); q != k.Now() {
			t.Fatalf("mid-air QuietUntil = %v, want now %v", q, k.Now())
		}
	})
	// After delivery the horizon reopens.
	k.Schedule(1000, func() {
		if q := c.QuietUntil(); q != sim.TimeMax {
			t.Fatalf("post-delivery QuietUntil = %v, want TimeMax", q)
		}
	})
	k.Run()
}

func TestPromiseShrinkNotifiesWatchers(t *testing.T) {
	_, c := setup(0, 0)
	p := c.NewTxPromise(sim.TimeMax)
	w := &fakeWatcher{name: "w"}
	c.WatchQuiet(w)
	p.Promise(700) // shrink
	if w.shrunk != 1 {
		t.Fatalf("shrink notifications = %d, want 1", w.shrunk)
	}
	p.Promise(700) // no-op
	p.Promise(900) // grow
	if w.shrunk != 1 {
		t.Fatalf("grow/no-op must not notify; got %d", w.shrunk)
	}
	// A new transmitter registering counts as a shrink.
	c.NewTxPromise(100)
	if w.shrunk != 2 {
		t.Fatalf("registration notifications = %d, want 2", w.shrunk)
	}
	c.UnwatchQuiet(w)
	p.Promise(10)
	if w.shrunk != 2 {
		t.Fatalf("unwatched watcher notified; got %d", w.shrunk)
	}
	c.UnwatchQuiet(w) // removing twice is a no-op
}

func TestWatcherMayUnsubscribeInCallback(t *testing.T) {
	_, c := setup(0, 0)
	p := c.NewTxPromise(sim.TimeMax)
	var order []string
	a := &fakeWatcher{name: "a"}
	b := &fakeWatcher{name: "b"}
	a.onEvent = func(w *fakeWatcher) { order = append(order, "a"); c.UnwatchQuiet(a) }
	b.onEvent = func(w *fakeWatcher) { order = append(order, "b"); c.UnwatchQuiet(b) }
	c.WatchQuiet(a)
	c.WatchQuiet(b)
	p.Promise(50)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("notification order = %v, want [a b]", order)
	}
	// Both unsubscribed from inside the callback; no one hears the next.
	p.Promise(10)
	if a.shrunk != 1 || b.shrunk != 1 {
		t.Fatalf("post-unsubscribe notifications: a=%d b=%d", a.shrunk, b.shrunk)
	}
}
