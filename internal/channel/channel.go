// Package channel models the shared radio medium exactly as the paper's
// Fig. 2 does: a digital module connecting every device, emulating
// (a) channel noise as random inversions of on-air bits, (b) the
// modulator/demodulator delay, and (c) collisions — when two devices
// transmit overlapping in time on the same RF channel the resolver
// forces the received value to the undefined symbol 'X' and receivers
// drop the packet. A device that is not transmitting leaves the wire in
// high impedance 'Z'; frequency selectivity comes from the FHSS model:
// a receiver only hears transmissions on the channel it is tuned to.
//
// The paper's medium is a single shared ether — every tuned radio
// hears every transmission. EnableSpatial (see spatial.go) optionally
// adds geometry on top: radios get floor positions, a two-threshold
// path-loss model decides per-receiver reachability (delivery disc,
// interference-only annulus, silence beyond), and the medium shards
// into square cells so a transmission only scans its cell
// neighbourhood instead of the global receivers slice.
package channel

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/hop"
	"repro/internal/sim"
)

// Transmission describes one packet on the air. Transmissions are
// pooled by the channel: once the delivery event has run, the node (and
// its once-allocated delivery closures) is recycled for a later packet,
// so steady-state traffic does not allocate. Listeners must not retain
// the pointer past their RxEnd callback.
type Transmission struct {
	From     string   // transmitter name, for logs and stats
	Freq     int      // RF channel 0..78
	Start    sim.Time // first bit leaves the antenna
	End      sim.Time // last bit (excluding demodulator delay)
	Bits     *bits.Vec
	Meta     any      // opaque annotation (packet type) for stats/logs
	pos      Position // transmitter position (spatial medium only)
	collided bool     // set when another transmission overlapped on Freq

	// Pool plumbing: the owning channel, the snapshot of receivers that
	// were tuned at Start (reused between incarnations), and the two
	// delivery events, allocated once when the node is first created.
	ch       *Channel
	eligible []*tuneState
	startFn  sim.Event // RxStart fan-out after the demodulator delay
	endFn    sim.Event // delivery/collision fan-out at End + delay
}

// Duration returns the on-air time.
func (t *Transmission) Duration() sim.Duration { return sim.Duration(t.End - t.Start) }

// Listener is a tuned receiver. RxStart fires (after the demodulator
// delay) when a packet begins on the tuned frequency, letting the
// baseband keep its RF window open to packet end; RxEnd delivers the
// (noise-corrupted) bits or reports a collision. The delivered bits may
// be shared with other receivers (and, on a noiseless channel, with the
// transmitter): listeners must treat rx as read-only.
type Listener interface {
	Name() string
	RxStart(tx *Transmission)
	RxEnd(tx *Transmission, rx *bits.Vec, collided bool)
}

// FreqCount tallies the per-RF-channel breakdown of the aggregate
// counters; the coexistence layer and its adaptive-AFH classifier read
// these to see where on the band the damage happens.
type FreqCount struct {
	Transmissions int `json:"transmissions"`
	Deliveries    int `json:"deliveries"`
	Collisions    int `json:"collisions"`
	Jammed        int `json:"jammed"`
}

// Stats counts channel-level events for the experiment reports.
type Stats struct {
	Transmissions int
	Deliveries    int
	Collisions    int // transmissions corrupted by overlap
	FlippedBits   int // total noise-inverted bits delivered
	Jammed        int // transmissions destroyed by static interferers

	// PerFreq breaks the counters down by RF channel 0..78.
	PerFreq [hop.NumChannels]FreqCount
}

// Config sets the channel's physical parameters.
type Config struct {
	// BER is the bit error rate: probability each delivered bit is
	// inverted. The paper sweeps 1/100 .. 1/30.
	BER float64
	// Delay models the modulator+demodulator latency applied to
	// delivery times.
	Delay sim.Duration
}

// Jammer is a static interferer (an 802.11 network parked on part of
// the ISM band): transmissions on its channels are corrupted with the
// given probability. This is the coexistence scenario of the paper's
// references [3-5] and the motivation for the v1.2 AFH extension.
type Jammer struct {
	LoChannel int
	HiChannel int
	Duty      float64 // probability a hit transmission is destroyed
}

// Channel is the shared medium.
type Channel struct {
	k   *sim.Kernel
	rng *sim.Rand
	cfg Config

	tuned       map[Listener]*tuneState
	receivers   []*tuneState // same states in registration order
	active      []*Transmission
	txFree      []*Transmission // recycled transmission nodes
	jammers     []Jammer
	stats       Stats
	onCollision func(existing, incoming *Transmission)
	spatial     *spatialState         // nil = the global shared ether (see spatial.go)
	shardOf     func(from string) int // delivery-event shard router; nil = inherit affinity

	// Quiet-horizon bookkeeping (see quiet.go).
	promises       []*TxPromise
	quietWatchers  []QuietWatcher
	watcherScratch []QuietWatcher
	inFlight       int // transmissions with a pending delivery event
}

// tuneState tracks one listener's receiver. The struct persists across
// Tune/Untune cycles (Untune only clears `on`), so the per-slot
// receiver windows of every device reuse one allocation — and Transmit
// scans the stable receivers slice (or, on a spatial medium, the cell
// buckets) instead of iterating a map.
type tuneState struct {
	l     Listener
	seq   int // registration order; ties the eligible sort (see sortListeners)
	on    bool
	freq  int
	since sim.Time
	busy  *Transmission // packet currently being received
	pos   Position      // listener position (spatial medium only)
}

// New creates a channel on the kernel with its own noise RNG stream.
func New(k *sim.Kernel, rng *sim.Rand, cfg Config) *Channel {
	if cfg.BER < 0 || cfg.BER >= 1 {
		panic(fmt.Sprintf("channel: BER %v out of [0,1)", cfg.BER))
	}
	return &Channel{k: k, rng: rng, cfg: cfg, tuned: make(map[Listener]*tuneState)}
}

// Stats returns a copy of the counters.
func (c *Channel) Stats() Stats { return c.stats }

// SetBER changes the bit error rate mid-simulation (used by sweeps).
func (c *Channel) SetBER(ber float64) {
	if ber < 0 || ber >= 1 {
		panic(fmt.Sprintf("channel: BER %v out of [0,1)", ber))
	}
	c.cfg.BER = ber
}

// AddJammer installs a static interferer over channels [lo, hi].
func (c *Channel) AddJammer(lo, hi int, duty float64) {
	if lo < 0 || hi >= hop.NumChannels || lo > hi {
		panic(fmt.Sprintf("channel: jammer range %d..%d invalid", lo, hi))
	}
	if duty < 0 || duty > 1 {
		panic(fmt.Sprintf("channel: jammer duty %v invalid", duty))
	}
	c.jammers = append(c.jammers, Jammer{LoChannel: lo, HiChannel: hi, Duty: duty})
}

// ClearJammers removes all static interferers.
func (c *Channel) ClearJammers() { c.jammers = nil }

// SetCollisionHook installs fn, invoked once per overlapping
// transmission pair at the instant the overlap is detected (the already
// airborne transmission first, the newcomer second). The coexistence
// layer uses it to attribute collisions to piconets; nil disables.
func (c *Channel) SetCollisionHook(fn func(existing, incoming *Transmission)) {
	c.onCollision = fn
}

// jammed decides whether a transmission on freq is destroyed by an
// interferer.
func (c *Channel) jammed(freq int) bool {
	for _, j := range c.jammers {
		if freq >= j.LoChannel && freq <= j.HiChannel && c.rng.Bool(j.Duty) {
			return true
		}
	}
	return false
}

// Tune points l's receiver at freq from the current instant. Retuning
// while a packet is mid-air abandons that packet and opens a fresh
// listen window — whatever frequency the retune targets, including the
// one already tuned. Only an idle retune to the same frequency is a
// no-op that keeps the original since-time; bouncing away and back
// mid-packet must not silently rejoin the abandoned reception.
func (c *Channel) Tune(l Listener, freq int) {
	if freq < 0 || freq >= hop.NumChannels {
		panic(fmt.Sprintf("channel: freq %d out of range", freq))
	}
	st := c.tuned[l]
	if st == nil {
		st = &tuneState{l: l, seq: len(c.receivers)}
		c.tuned[l] = st
		c.receivers = append(c.receivers, st)
		if c.spatial != nil {
			c.spatial.register(st)
		}
	} else if st.on && st.freq == freq && st.busy == nil {
		return // already listening idle there; keep the original since-time
	}
	st.on = true
	st.freq = freq
	st.since = c.k.Now()
	st.busy = nil
}

// Untune stops l's receiver.
func (c *Channel) Untune(l Listener) {
	if st := c.tuned[l]; st != nil {
		st.on = false
		st.busy = nil
	}
}

// Tuned reports the frequency l listens on, or -1.
func (c *Channel) Tuned(l Listener) int {
	if st := c.tuned[l]; st != nil && st.on {
		return st.freq
	}
	return -1
}

// Transmit puts v on the air at freq from device `from` (which may also
// be a Listener; it never hears itself). Delivery happens at the end of
// the packet plus the demodulator delay, to every listener that was
// already tuned to freq when the first bit arrived and stayed tuned —
// on a spatial medium, only those inside the transmitter's delivery
// disc (see spatial.go).
//
// The returned pointer is only valid until the delivery event at
// End + Delay: the node is recycled afterwards (fields zeroed or
// reused by a later packet). Read what you need synchronously; do not
// retain it.
func (c *Channel) Transmit(from string, freq int, v *bits.Vec, meta any) *Transmission {
	if v.Len() == 0 {
		panic("channel: empty transmission")
	}
	now := c.k.Now()
	sp := c.spatial
	tx := c.allocTx()
	tx.From = from
	tx.Freq = freq
	tx.Start = now
	tx.End = now + sim.Time(v.Len()*sim.BitTicks)
	tx.Bits = v
	tx.Meta = meta
	if sp != nil {
		tx.pos = sp.txPosition(from)
	}
	c.stats.Transmissions++
	c.stats.PerFreq[freq].Transmissions++
	if c.jammed(freq) {
		tx.collided = true
		c.stats.Jammed++
		c.stats.PerFreq[freq].Jammed++
	}

	// Collision resolution: any active transmission overlapping on the
	// same frequency corrupts both (the resolver drives 'X'). On a
	// spatial medium only transmitters close enough that one's
	// interference annulus can reach into the other's delivery disc
	// collide — farther apart, the frequency is spatially reused.
	for _, other := range c.active {
		if other.End > now && other.Freq == freq &&
			(sp == nil || dist2(other.pos, tx.pos) <= sp.collide2) {
			if !other.collided {
				c.stats.Collisions++
				c.stats.PerFreq[freq].Collisions++
			}
			if !tx.collided {
				c.stats.Collisions++
				c.stats.PerFreq[freq].Collisions++
			}
			other.collided = true
			tx.collided = true
			if c.onCollision != nil {
				c.onCollision(other, tx)
			}
		}
	}
	c.pruneActive(now)
	c.active = append(c.active, tx)

	// Snapshot eligible receivers now; they must remain tuned through the
	// end to actually receive (checked again at delivery). A receiver
	// already locked onto an earlier packet stays with it — a colliding
	// newcomer corrupts that packet rather than hijacking the correlator,
	// and at an exact end/start boundary the turnaround is a miss.
	if sp != nil {
		sp.gatherEligible(tx, from)
	} else {
		for _, st := range c.receivers {
			if st.on && st.freq == freq && st.since <= now && st.busy == nil && st.l.Name() != from {
				tx.eligible = append(tx.eligible, st)
				st.busy = tx
			}
		}
	}
	// Deterministic order regardless of registration, cell geometry or
	// shard count (the spatial determinism contract).
	sortListeners(tx.eligible)

	c.inFlight++ // pin the quiet horizon until the delivery event runs
	// On a sharded kernel the two delivery events are the coupling
	// points between shards: route them to the transmitter's owning
	// shard so a piconet's traffic (and its per-receiver noise draws,
	// made inside deliverEnd in fan-out order) stays on one shard. An
	// out-of-range route inherits the firing event's shard, which is
	// always ordering-correct.
	shard := -1
	if c.shardOf != nil {
		if s := c.shardOf(from); s >= 0 && s < c.k.Shards() {
			shard = s
		}
	}
	if shard >= 0 {
		c.k.ScheduleOn(shard, c.cfg.Delay, tx.startFn)
		c.k.ScheduleOn(shard, sim.Duration(tx.End-now)+c.cfg.Delay, tx.endFn)
	} else {
		c.k.Schedule(c.cfg.Delay, tx.startFn)
		c.k.Schedule(sim.Duration(tx.End-now)+c.cfg.Delay, tx.endFn)
	}
	return tx
}

// SetShardRouter installs the delivery-event shard router used on
// sharded kernels: fn maps a transmitter name to the shard that should
// run the transmission's start/end fan-out (typically the transmitter's
// spatial cell — see CellShard). A return outside [0, Shards) means "no
// opinion": the events inherit the current affinity. The router changes
// where delivery events are stored, never when they fire; nil disables
// routing.
func (c *Channel) SetShardRouter(fn func(from string) int) { c.shardOf = fn }

// CellShard maps a placed radio to a deterministic shard index in
// [0, shards) derived from its spatial cell, so radios in the same cell
// — the unit of medium locality — land on the same kernel shard. It
// reports -1 when the spatial medium is off, the radio was never
// placed, or shards < 2 (nothing to partition).
func (c *Channel) CellShard(name string, shards int) int {
	if c.spatial == nil || shards < 2 {
		return -1
	}
	p, ok := c.spatial.pos[name]
	if !ok {
		return -1
	}
	k := c.spatial.cellOf(p)
	// FNV-1a over the cell coordinates: cheap, stable across runs, and
	// spreads neighbouring cells instead of striping them.
	h := uint64(14695981039346656037)
	for _, w := range [2]uint32{uint32(k.x), uint32(k.y)} {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(w >> (8 * i)))
			h *= 1099511628211
		}
	}
	return int(h % uint64(shards))
}

// allocTx takes a transmission node off the free list or creates one,
// wiring its two delivery closures exactly once per node.
func (c *Channel) allocTx() *Transmission {
	if n := len(c.txFree); n > 0 {
		tx := c.txFree[n-1]
		c.txFree = c.txFree[:n-1]
		return tx
	}
	tx := &Transmission{ch: c}
	tx.startFn = tx.deliverStart
	tx.endFn = tx.deliverEnd
	return tx
}

// deliverStart fans RxStart out to the receivers still locked on tx.
func (tx *Transmission) deliverStart() {
	for _, st := range tx.eligible {
		if st.busy == tx {
			st.l.RxStart(tx)
		}
	}
}

// deliverEnd fans the final bits (or the collision verdict) out to the
// receivers that stayed tuned through the whole packet, then recycles
// the transmission node.
func (tx *Transmission) deliverEnd() {
	c := tx.ch
	for _, st := range tx.eligible {
		if st.busy != tx || !st.on || st.freq != tx.Freq {
			continue // retuned or stopped mid-packet
		}
		st.busy = nil
		if tx.collided {
			st.l.RxEnd(tx, nil, true)
			continue
		}
		c.stats.Deliveries++
		c.stats.PerFreq[tx.Freq].Deliveries++
		st.l.RxEnd(tx, c.corrupt(tx.Bits), false)
	}
	// The packet has left the air (End <= now), so it can no longer
	// collide with anything; drop it from the active list and recycle.
	c.inFlight--
	c.pruneActive(c.k.Now())
	tx.Bits = nil
	tx.Meta = nil
	tx.collided = false
	tx.eligible = tx.eligible[:0]
	c.txFree = append(c.txFree, tx)
}

// corrupt applies the BER to a copy of the transmitted bits. A noiseless
// channel hands receivers the transmitted vector itself: the per-receiver
// copy exists only to carry independent noise, and the whole receive
// chain (correlation, FEC, dewhitening, payload extraction) reads rx
// without mutating it — receivers must treat delivered bits as shared
// and read-only, per the Listener contract.
func (c *Channel) corrupt(v *bits.Vec) *bits.Vec {
	if c.cfg.BER == 0 {
		return v
	}
	out := v.Clone()
	for i := 0; i < out.Len(); i++ {
		if c.rng.Bool(c.cfg.BER) {
			out.FlipBit(i)
			c.stats.FlippedBits++
		}
	}
	return out
}

func (c *Channel) pruneActive(now sim.Time) {
	kept := c.active[:0]
	for _, t := range c.active {
		if t.End > now {
			kept = append(kept, t)
		}
	}
	c.active = kept
}

// sortListeners orders the eligible snapshot by (name, registration
// sequence) for reproducibility. The seq tiebreak pins the order even
// for duplicate names and — the spatial determinism contract — makes
// the result independent of the collection order, so the global scan
// and any cell-shard geometry fan deliveries out identically.
func sortListeners(ls []*tuneState) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && less(ls[j], ls[j-1]); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

func less(a, b *tuneState) bool {
	an, bn := a.l.Name(), b.l.Name()
	if an != bn {
		return an < bn
	}
	return a.seq < b.seq
}
