package channel_test

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/channel"
	"repro/internal/sim"
)

// printRx is a minimal channel.Listener that narrates what it hears.
type printRx struct{ name string }

func (p *printRx) Name() string { return p.name }

func (p *printRx) RxStart(tx *channel.Transmission) {
	fmt.Printf("%s: packet from %s started on channel %d\n", p.name, tx.From, tx.Freq)
}

func (p *printRx) RxEnd(tx *channel.Transmission, rx *bits.Vec, collided bool) {
	if collided {
		fmt.Printf("%s: garbled reception\n", p.name)
		return
	}
	fmt.Printf("%s: received %d bits\n", p.name, rx.Len())
}

// A transmission reaches exactly the listeners tuned to its RF channel
// when the first bit hits the air; frequency selectivity is the whole
// FHSS story.
func ExampleChannel_Transmit() {
	k := sim.NewKernel()
	ch := channel.New(k, sim.NewRand(1), channel.Config{})

	slave := &printRx{name: "slave"}
	other := &printRx{name: "other"}
	ch.Tune(slave, 40)
	ch.Tune(other, 41) // one channel off: hears nothing

	k.Schedule(0, func() {
		ch.Transmit("master", 40, bits.FromBools(true, false, true, true), nil)
	})
	k.Run()
	fmt.Println("deliveries:", ch.Stats().Deliveries)
	// Output:
	// slave: packet from master started on channel 40
	// slave: received 4 bits
	// deliveries: 1
}

// Retuning mid-packet abandons the reception — the correlator cannot
// follow a receiver that left the channel, even if it comes straight
// back.
func ExampleChannel_Tune() {
	k := sim.NewKernel()
	ch := channel.New(k, sim.NewRand(1), channel.Config{})

	slave := &printRx{name: "slave"}
	ch.Tune(slave, 10)
	k.Schedule(0, func() {
		ch.Transmit("master", 10, bits.FromBools(true, true, false, true), nil)
	})
	// Hop away while the packet is still on the air: no RxEnd arrives.
	k.Schedule(2, func() { ch.Tune(slave, 20) })
	k.Run()
	fmt.Println("tuned to:", ch.Tuned(slave))
	fmt.Println("deliveries:", ch.Stats().Deliveries)
	// Output:
	// slave: packet from master started on channel 10
	// tuned to: 20
	// deliveries: 0
}
