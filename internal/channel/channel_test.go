package channel

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/sim"
)

type fakeRx struct {
	name     string
	started  []*Transmission
	got      []*bits.Vec
	collided int
	onStart  func(tx *Transmission)
}

func (f *fakeRx) Name() string { return f.name }
func (f *fakeRx) RxStart(tx *Transmission) {
	f.started = append(f.started, tx)
	if f.onStart != nil {
		f.onStart(tx)
	}
}
func (f *fakeRx) RxEnd(tx *Transmission, rx *bits.Vec, collided bool) {
	if collided {
		f.collided++
		return
	}
	f.got = append(f.got, rx)
}

func vec(n int) *bits.Vec {
	v := bits.NewVec(n)
	for i := 0; i < n; i++ {
		v.AppendBit(uint8(i) & 1)
	}
	return v
}

func setup(ber float64, delay sim.Duration) (*sim.Kernel, *Channel) {
	k := sim.NewKernel()
	return k, New(k, sim.NewRand(77), Config{BER: ber, Delay: delay})
}

func TestCleanDelivery(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "slave"}
	c.Tune(rx, 10)
	sent := vec(100)
	k.Schedule(5, func() { c.Transmit("master", 10, sent, nil) })
	k.Run()
	if len(rx.got) != 1 || !rx.got[0].Equal(sent) {
		t.Fatalf("delivery failed: %d packets", len(rx.got))
	}
	if len(rx.started) != 1 {
		t.Fatal("RxStart not signalled")
	}
	if k.Now() != 5+100*sim.BitTicks {
		t.Fatalf("delivery time %v", k.Now())
	}
	if c.Stats().Deliveries != 1 {
		t.Fatal("stats wrong")
	}
}

func TestWrongFrequencyNotHeard(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "slave"}
	c.Tune(rx, 11)
	k.Schedule(0, func() { c.Transmit("master", 10, vec(50), nil) })
	k.Run()
	if len(rx.got) != 0 || len(rx.started) != 0 {
		t.Fatal("received on wrong frequency")
	}
}

func TestLateTunerMissesPacket(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "slave"}
	k.Schedule(0, func() { c.Transmit("master", 10, vec(100), nil) })
	k.Schedule(10, func() { c.Tune(rx, 10) }) // mid-packet: missed sync word
	k.Run()
	if len(rx.got) != 0 {
		t.Fatal("late tuner must not receive")
	}
}

func TestRetuneMidPacketAbandons(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "slave"}
	c.Tune(rx, 10)
	k.Schedule(0, func() { c.Transmit("master", 10, vec(100), nil) })
	k.Schedule(50, func() { c.Tune(rx, 20) })
	k.Run()
	if len(rx.got) != 0 {
		t.Fatal("retuned receiver must abandon the packet")
	}
}

func TestUntuneMidPacketAbandons(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "slave"}
	c.Tune(rx, 10)
	k.Schedule(0, func() { c.Transmit("master", 10, vec(100), nil) })
	k.Schedule(50, func() { c.Untune(rx) })
	k.Run()
	if len(rx.got) != 0 {
		t.Fatal("untuned receiver must abandon the packet")
	}
}

func TestTransmitterDoesNotHearItself(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "master"}
	c.Tune(rx, 10)
	k.Schedule(0, func() { c.Transmit("master", 10, vec(40), nil) })
	k.Run()
	if len(rx.got) != 0 {
		t.Fatal("device heard its own transmission")
	}
}

func TestCollisionCorruptsBoth(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "observer"}
	c.Tune(rx, 10)
	k.Schedule(0, func() { c.Transmit("a", 10, vec(200), nil) })
	k.Schedule(100, func() { c.Transmit("b", 10, vec(200), nil) })
	k.Run()
	if len(rx.got) != 0 {
		t.Fatalf("collided packets delivered clean: %d", len(rx.got))
	}
	// The receiver was locked onto packet a; it observes one garbled
	// reception (the collision), not two.
	if rx.collided != 1 {
		t.Fatalf("collided deliveries = %d, want 1", rx.collided)
	}
	if c.Stats().Collisions != 2 {
		t.Fatalf("collision count = %d (both transmissions corrupted)", c.Stats().Collisions)
	}
}

func TestNoCollisionAcrossFrequencies(t *testing.T) {
	k, c := setup(0, 0)
	rx1 := &fakeRx{name: "r1"}
	rx2 := &fakeRx{name: "r2"}
	c.Tune(rx1, 10)
	c.Tune(rx2, 20)
	k.Schedule(0, func() { c.Transmit("a", 10, vec(200), nil) })
	k.Schedule(100, func() { c.Transmit("b", 20, vec(200), nil) })
	k.Run()
	if len(rx1.got) != 1 || len(rx2.got) != 1 {
		t.Fatal("FHSS must isolate different channels")
	}
}

func TestNoCollisionSequential(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 5)
	k.Schedule(0, func() { c.Transmit("a", 5, vec(50), nil) })
	// 50 bits end at tick 100; a transmission at the exact boundary does
	// not collide, but the receiver is still in turnaround and misses it.
	k.Schedule(100, func() { c.Transmit("b", 5, vec(50), nil) })
	k.Run()
	if rx.collided != 0 {
		t.Fatalf("boundary packets collided: %d", rx.collided)
	}
	if len(rx.got) != 1 {
		t.Fatalf("got %d packets, want 1 (a only; b lost to turnaround)", len(rx.got))
	}
}

func TestSequentialWithGapBothReceived(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 5)
	k.Schedule(0, func() { c.Transmit("a", 5, vec(50), nil) })
	k.Schedule(102, func() { c.Transmit("b", 5, vec(50), nil) })
	k.Run()
	if rx.collided != 0 || len(rx.got) != 2 {
		t.Fatalf("gapped packets: got %d, collided %d, want 2/0", len(rx.got), rx.collided)
	}
}

func TestDelayShiftsDelivery(t *testing.T) {
	k, c := setup(0, sim.Microseconds(5))
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 0)
	var deliveredAt sim.Time
	k.Schedule(0, func() { c.Transmit("a", 0, vec(10), nil) })
	k.Schedule(0, func() {}) // keep kernel busy at 0
	k.Run()
	deliveredAt = k.Now()
	want := sim.Time(10*sim.BitTicks) + sim.Time(sim.Microseconds(5))
	if deliveredAt != want {
		t.Fatalf("delivery at %v, want %v", deliveredAt, want)
	}
	if len(rx.got) != 1 {
		t.Fatal("not delivered")
	}
}

func TestBERFlipsExpectedFraction(t *testing.T) {
	k, c := setup(0.02, 0)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 0)
	const bitsPerPkt, pkts = 1000, 200
	for i := 0; i < pkts; i++ {
		at := sim.Time(uint64(i) * 3000 * sim.BitTicks)
		k.At(at, func() { c.Transmit("a", 0, vec(bitsPerPkt), nil) })
	}
	k.Run()
	if len(rx.got) != pkts {
		t.Fatalf("deliveries = %d", len(rx.got))
	}
	flipped := c.Stats().FlippedBits
	want := 0.02 * bitsPerPkt * pkts
	if float64(flipped) < want*0.8 || float64(flipped) > want*1.2 {
		t.Fatalf("flipped %d bits, want about %.0f", flipped, want)
	}
}

func TestZeroBERNeverFlips(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 0)
	sent := vec(500)
	k.Schedule(0, func() { c.Transmit("a", 0, sent, nil) })
	k.Run()
	if !rx.got[0].Equal(sent) {
		t.Fatal("zero BER corrupted bits")
	}
	// A noiseless channel hands over the transmitted vector itself; the
	// per-receiver copy exists only to carry independent noise (receivers
	// treat rx as shared read-only, per the Listener contract).
	if rx.got[0] != sent {
		t.Fatal("noiseless delivery should not copy the transmitted bits")
	}
}

func TestMultipleListenersAllReceive(t *testing.T) {
	k, c := setup(0, 0)
	rxs := []*fakeRx{{name: "b"}, {name: "a"}, {name: "c"}}
	for _, r := range rxs {
		c.Tune(r, 3)
	}
	k.Schedule(0, func() { c.Transmit("m", 3, vec(30), nil) })
	k.Run()
	for _, r := range rxs {
		if len(r.got) != 1 {
			t.Fatalf("%s missed the broadcast", r.name)
		}
	}
}

func TestTuneIdleIdempotentKeepsSince(t *testing.T) {
	k, c := setup(0, 0)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 7)
	// An idle re-tune to the same frequency is a no-op: the receiver
	// never left the channel, so it stays eligible for a packet that
	// starts after the original Tune.
	k.Schedule(0, func() { c.Tune(rx, 7) })
	k.Schedule(5, func() { c.Transmit("m", 7, vec(100), nil) })
	k.Run()
	if len(rx.got) != 1 {
		t.Fatal("idle idempotent Tune dropped eligibility")
	}
	if c.Tuned(rx) != 7 {
		t.Fatal("Tuned() wrong")
	}
	c.Untune(rx)
	if c.Tuned(rx) != -1 {
		t.Fatal("Tuned() after Untune wrong")
	}
}

func TestRetuneSameFreqMidPacketAbandons(t *testing.T) {
	// Regression: Tune to the currently-busy frequency used to
	// early-return and keep the in-flight reception, so a retune meant
	// to open a fresh listen window silently rejoined the stale packet.
	// A mid-packet retune must abandon the reception whatever frequency
	// it targets, including the one already tuned.
	k, c := setup(0, 0)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 7)
	k.Schedule(0, func() { c.Transmit("m", 7, vec(100), nil) })
	k.Schedule(50, func() { c.Tune(rx, 7) })
	k.Run()
	if len(rx.got) != 0 {
		t.Fatal("mid-packet same-frequency retune must abandon the packet")
	}
	if rx.collided != 0 {
		t.Fatal("abandoned packet must not be reported at all")
	}
}

func TestRetuneAwayAndBackMidPacketAbandons(t *testing.T) {
	// Bouncing away and back mid-packet must behave exactly like any
	// other retune: the abandoned packet stays abandoned, and the fresh
	// window makes the receiver eligible for the next packet only.
	k, c := setup(0, 0)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 7)
	k.Schedule(0, func() { c.Transmit("m", 7, vec(100), nil) })
	k.Schedule(40, func() { c.Tune(rx, 8) })
	k.Schedule(60, func() { c.Tune(rx, 7) })
	// The first packet ends at tick 200; a second starts afterwards and
	// must be received through the re-opened window.
	k.Schedule(250, func() { c.Transmit("m", 7, vec(50), nil) })
	k.Run()
	if len(rx.got) != 1 {
		t.Fatalf("got %d packets, want 1 (first abandoned, second received)", len(rx.got))
	}
	if rx.got[0].Len() != 50 {
		t.Fatalf("received the abandoned packet (len %d)", rx.got[0].Len())
	}
}

func TestPerFreqStats(t *testing.T) {
	k, c := setup(0, 0)
	c.AddJammer(20, 20, 1)
	rx := &fakeRx{name: "r"}
	c.Tune(rx, 10)
	k.Schedule(0, func() { c.Transmit("a", 10, vec(50), nil) })
	k.Schedule(10, func() { c.Transmit("b", 10, vec(50), nil) }) // collides with a
	k.Schedule(500, func() { c.Transmit("a", 20, vec(50), nil) })
	k.Schedule(1000, func() { c.Transmit("a", 30, vec(50), nil) })
	k.Run()
	st := c.Stats()
	if f := st.PerFreq[10]; f.Transmissions != 2 || f.Collisions != 2 || f.Deliveries != 0 {
		t.Fatalf("freq 10 stats wrong: %+v", f)
	}
	if f := st.PerFreq[20]; f.Transmissions != 1 || f.Jammed != 1 {
		t.Fatalf("freq 20 stats wrong: %+v", f)
	}
	if f := st.PerFreq[30]; f.Transmissions != 1 || f.Jammed != 0 {
		t.Fatalf("freq 30 stats wrong: %+v", f)
	}
	if st.Transmissions != 4 || st.Collisions != 2 || st.Jammed != 1 {
		t.Fatalf("aggregate stats wrong: %+v", st)
	}
}

func TestCollisionHookAttributesPairs(t *testing.T) {
	k, c := setup(0, 0)
	var pairs [][2]string
	c.SetCollisionHook(func(existing, incoming *Transmission) {
		pairs = append(pairs, [2]string{existing.From, incoming.From})
	})
	k.Schedule(0, func() { c.Transmit("a", 10, vec(200), nil) })
	k.Schedule(50, func() { c.Transmit("b", 10, vec(200), nil) })
	k.Schedule(100, func() { c.Transmit("c", 10, vec(200), nil) })
	k.Run()
	// b overlaps a; c overlaps both a and b.
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}}
	if len(pairs) != len(want) {
		t.Fatalf("hook fired %d times, want %d: %v", len(pairs), len(want), pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestPanics(t *testing.T) {
	k, c := setup(0, 0)
	for name, fn := range map[string]func(){
		"bad freq":  func() { c.Tune(&fakeRx{name: "x"}, 79) },
		"empty tx":  func() { c.Transmit("a", 0, bits.NewVec(0), nil) },
		"bad BER":   func() { c.SetBER(1.5) },
		"bad BER 2": func() { New(k, sim.NewRand(1), Config{BER: -0.1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTransmissionAccessors(t *testing.T) {
	// Transmission nodes are recycled after delivery, so the accessors
	// must be read before the kernel runs past the packet's end.
	k, c := setup(0, 0)
	k.Schedule(3, func() {
		tx := c.Transmit("m", 1, vec(10), "meta")
		if tx.Duration() != 10*sim.BitTicks {
			t.Errorf("duration = %v", tx.Duration())
		}
		if tx.Meta != "meta" || tx.From != "m" || tx.Freq != 1 {
			t.Error("metadata wrong")
		}
	})
	k.Run()
}
