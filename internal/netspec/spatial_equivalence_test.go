package netspec

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
)

// The reference-model equivalence suite: a spatial medium whose range
// exceeds any distance on the floor must be observationally identical
// to the paper's global shared ether — same Metrics, same channel
// stats, on the same seed. This is what makes the medium refactor
// safe: any reachability, ordering or RNG-discipline bug in the
// sharded path shows up as a diff against the reference model.

// wideOpenPlacement returns a placement whose delivery disc covers any
// legal floor — "infinite range".
func wideOpenPlacement(kind PlacementKind) *Placement {
	return &Placement{Kind: kind, RangeM: MaxRangeM, SpacingM: 10}
}

// buildAndRun builds the spec on a fresh simulation, starts traffic,
// runs a measurement window and returns the world's full observable
// surface.
func buildAndRun(t *testing.T, seed uint64, ber float64, spec Spec, slots uint64) (Metrics, string) {
	t.Helper()
	s := core.NewSimulation(core.Options{Seed: seed, BER: ber})
	w, err := Build(s, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Start()
	w.ResetMetrics()
	s.RunSlots(slots)
	return w.Metrics(), fmt.Sprintf("%+v", s.Ch.Stats())
}

// equivalenceSpecs is a randomized family of worlds covering the
// machinery the medium touches: multi-piconet interference, voice
// reservations, poisson bursts, jammers, sniff, scatternet relay
// flows. Each spec carries the BER it can stand: the bridged world
// runs noise-free because its LMP presence negotiation is not robust
// to heavy noise on any medium — the comparison is between media, not
// a noise stress test.
type eqCase struct {
	spec Spec
	ber  float64
}

func equivalenceSpecs(seed uint64) []eqCase {
	rng := sim.NewRand(seed)
	cases := []eqCase{
		{ber: 1.0 / 80, spec: Spec{ // interfering bulk piconets, a jammer, one sniffed slave
			Piconets: HomogeneousPiconets(2+rng.Intn(3), 1+rng.Intn(3), WithTpoll(TpollNever)),
			Traffic:  []Traffic{BulkTraffic(AllPiconets)},
			Jammers:  []Jammer{{Lo: 0, Hi: 15, Duty: 0.5}},
		}},
		{ber: 1.0 / 80, spec: Spec{ // voice beside poisson data
			Piconets: []Piconet{NewPiconet(2), NewPiconet(1 + rng.Intn(2))},
			Traffic: []Traffic{
				VoiceTraffic(0, packet.TypeHV3, WithSlave(1)),
				PoissonTraffic(1, WithMeanGap(40)),
			},
		}},
		{ber: 0, spec: Spec{ // scatternet chain with an end-to-end flow
			Piconets: HomogeneousPiconets(3, 1),
			Bridges:  ChainBridges(3),
			Traffic:  []Traffic{FlowTraffic(MasterName(0), SlaveName(2, 1))},
		}},
	}
	cases[0].spec.Modes = []PowerMode{{Kind: SniffMode, Piconet: 0, Slave: 1}}
	return cases
}

func TestSpatialInfiniteRangeMatchesGlobalMedium(t *testing.T) {
	kinds := []PlacementKind{PlaceGrid, PlaceRooms, PlaceDisc}
	for seed := uint64(1); seed <= 3; seed++ {
		for si, tc := range equivalenceSpecs(seed) {
			spec := tc.spec
			ber := tc.ber
			kind := kinds[(int(seed)+si)%len(kinds)]
			t.Run(fmt.Sprintf("seed%d/spec%d/%v", seed, si, kind), func(t *testing.T) {
				globalM, globalStats := buildAndRun(t, seed*101, ber, spec, 4000)
				spec.Placement = wideOpenPlacement(kind)
				spatialM, spatialStats := buildAndRun(t, seed*101, ber, spec, 4000)
				if globalStats != spatialStats {
					t.Errorf("channel stats diverge:\nglobal  %s\nspatial %s", globalStats, spatialStats)
				}
				if !reflect.DeepEqual(globalM, spatialM) {
					t.Errorf("metrics diverge:\nglobal  %+v\nspatial %+v", globalM, spatialM)
				}
			})
		}
	}
}

// TestPlacementDoesNotPerturbBaseWorld pins the RNG discipline behind
// the equivalence: computing a layout must not advance the root stream,
// so device seeds and clock phases match a placement-free build.
func TestPlacementDoesNotPerturbBaseWorld(t *testing.T) {
	build := func(pl *Placement) string {
		s := core.NewSimulation(core.Options{Seed: 42})
		w := MustBuild(s, Spec{
			Piconets:  HomogeneousPiconets(2, 2, WithTpoll(TpollNever)),
			Traffic:   []Traffic{BulkTraffic(AllPiconets)},
			Placement: pl,
		})
		w.Start()
		w.ResetMetrics()
		s.RunSlots(2000)
		return fmt.Sprintf("%+v %+v", w.Metrics(), s.Ch.Stats())
	}
	base := build(nil)
	wide := build(wideOpenPlacement(PlaceDisc))
	if base != wide {
		t.Fatalf("layout drew from the root RNG stream:\nbase %s\nwide %s", base, wide)
	}
}

// TestSpatialSeparationDropsInterference is the converse sanity check:
// with a realistic range, well-separated piconets stop colliding with
// each other while traffic keeps flowing — the spatial reuse that
// motivates the whole model.
func TestSpatialSeparationDropsInterference(t *testing.T) {
	run := func(pl *Placement) Metrics {
		s := core.NewSimulation(core.Options{Seed: 7})
		w := MustBuild(s, Spec{
			Piconets:  HomogeneousPiconets(4, 1, WithTpoll(TpollNever)),
			Traffic:   []Traffic{BulkTraffic(AllPiconets)},
			Placement: pl,
		})
		w.Start()
		w.ResetMetrics()
		s.RunSlots(6000)
		return w.Metrics()
	}
	// 60 m pitch with a 10 m range: every piconet is out of everyone
	// else's interference reach.
	apart := run(&Placement{Kind: PlaceGrid, RangeM: 10, SpacingM: 60})
	if apart.Inter != 0 {
		t.Fatalf("separated grid still sees %d inter-piconet collision pairs", apart.Inter)
	}
	if apart.Bytes == 0 {
		t.Fatal("separated grid delivered no traffic")
	}
	together := run(wideOpenPlacement(PlaceGrid))
	if together.Inter == 0 {
		t.Fatal("wide-open world shows no interference; the comparison is vacuous")
	}
}
