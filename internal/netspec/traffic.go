package netspec

import (
	"repro/internal/baseband"
)

// Voice is one running SCO voice stream (master to slave) with its
// delivery accounting.
type Voice struct {
	// Piconet and Slave (1-based) locate the stream.
	Piconet, Slave int
	// MasterSCO and SlaveSCO are the two reservation ends.
	MasterSCO, SlaveSCO *baseband.SCOLink

	perfect                     int
	baseTx, baseRx, basePerfect int
}

// TxFrames, RxFrames and BitPerfect report the current measurement
// window's frame counts.
func (v *Voice) TxFrames() int   { return v.MasterSCO.TxFrames - v.baseTx }
func (v *Voice) RxFrames() int   { return v.SlaveSCO.RxFrames - v.baseRx }
func (v *Voice) BitPerfect() int { return v.perfect - v.basePerfect }

// voicePattern fills outgoing voice frames; a garbled byte marks a
// residual error at the sink.
const voicePattern = byte(0x5A)

// Start fires every Traffic stanza of the spec: bulk/voice/poisson
// sources piconet by piconet (each piconet's adaptive classifier, when
// configured, arms right after its pumps, so classification sees the
// pumped traffic from slot one), then the end-to-end flows in stanza
// order. Call it once, after Build and any caller-side warm-up.
func (w *World) Start() {
	if w.started {
		panic("netspec: World.Start called twice")
	}
	w.started = true
	for _, p := range w.Piconets {
		if p.spec.Detached {
			continue
		}
		for ti := range w.spec.Traffic {
			t := &w.spec.Traffic[ti]
			if t.Kind == TrafficFlow || (t.Piconet != AllPiconets && t.Piconet != p.Index) {
				continue
			}
			switch t.Kind {
			case TrafficBulk:
				w.startBulk(p, t)
			case TrafficVoice:
				w.startVoice(p, t)
			case TrafficPoisson:
				w.startPoisson(p, t)
			}
		}
		if p.spec.AFH == AFHAdaptive {
			w.startClassifier(p)
		}
	}
	for ti := range w.spec.Traffic {
		t := &w.spec.Traffic[ti]
		if t.Kind == TrafficFlow {
			w.startFlow(FlowSpec{From: t.From, To: t.To}, t.SDUBytes, t.PumpDepth)
		}
	}
}

// targetLinks returns the stanza's target links within p, with their
// slave indices (0-based).
func (w *World) targetLinks(p *PiconetState, t *Traffic) ([]int, []*baseband.Link) {
	var idx []int
	var links []*baseband.Link
	for j, l := range p.Links {
		if t.Slave != 0 && j != t.Slave-1 {
			continue
		}
		idx = append(idx, j)
		links = append(links, l)
	}
	return idx, links
}

// startBulk arms a saturating master-to-slave pump on every targeted
// link: PumpDepth packets queued, refilled every two slots.
func (w *World) startBulk(p *PiconetState, t *Traffic) {
	idx, links := w.targetLinks(p, t)
	for k, l := range links {
		l.PacketType = t.PacketType
		w.bulkPump(p, idx[k], t.PumpDepth, t.PacketType.MaxPayload()).start()
	}
}

// startVoice reserves the stanza's SCO channels and wires the
// patterned source and counting sink, one stream per targeted slave
// (reservation offsets spread by slave, as validated).
func (w *World) startVoice(p *PiconetState, t *Traffic) {
	idx, links := w.targetLinks(p, t)
	for k, l := range links {
		j := idx[k]
		v := &Voice{Piconet: p.Index, Slave: j + 1}
		v.MasterSCO = p.Master.AddSCO(l, t.PacketType, t.TscoSlots, t.DscoEven+k)
		v.SlaveSCO = p.Slaves[j].AcceptSCO(t.PacketType, t.TscoSlots, t.DscoEven+k)
		wireVoice(v)
		w.Voices = append(w.Voices, v)
	}
}

// wireVoice points the stream's reservation ends at the patterned
// source and the counting sink (shared by Start and checkpoint
// restore, which rebuilds the closures on restored SCO links).
func wireVoice(v *Voice) {
	size := v.MasterSCO.Type.MaxPayload()
	v.MasterSCO.Source = func() []byte {
		f := make([]byte, size)
		for i := range f {
			f[i] = voicePattern
		}
		return f
	}
	v.SlaveSCO.Sink = func(f []byte) {
		for _, by := range f {
			if by != voicePattern {
				return
			}
		}
		v.perfect++
	}
}

// startPoisson arms an exponential-gap burst source on every targeted
// link. Each source draws from its own split of the simulation's RNG
// (derived here, in deterministic stanza-then-link order), so the
// world stays bit-reproducible.
func (w *World) startPoisson(p *PiconetState, t *Traffic) {
	idx, links := w.targetLinks(p, t)
	for k, l := range links {
		l.PacketType = t.PacketType
		w.poissonPump(p, idx[k], t.MeanGapSlots, t.BurstBytes, w.Sim.SplitRand()).start()
	}
}

// StartFlows starts end-to-end relayed flows outside the spec's
// Traffic stanzas (the scatternet adapter's dynamic entry point). With
// no specs it starts the world's DefaultFlow. It panics on an unknown
// endpoint or a bridge origin, and on a world without bridges.
func (w *World) StartFlows(sduBytes, pumpDepth int, specs ...FlowSpec) {
	if len(specs) == 0 {
		specs = []FlowSpec{w.DefaultFlow()}
	}
	for _, spec := range specs {
		w.startFlow(spec, sduBytes, pumpDepth)
	}
}

// startFlow arms one origin's SDU stream toward its destination, gated
// on its first-hop baseband queue so backpressure propagates to the
// bridges instead of piling up at the source link.
func (w *World) startFlow(spec FlowSpec, sduBytes, pumpDepth int) {
	if w.nodes == nil {
		panic("netspec: flows need a bridged world")
	}
	src, ok := w.nodes[spec.From]
	if !ok {
		panic("netspec: unknown flow origin " + spec.From)
	}
	dst, ok := w.nodes[spec.To]
	if !ok {
		panic("netspec: unknown flow destination " + spec.To)
	}
	if src.bridge != nil || dst.bridge != nil {
		panic("netspec: bridges relay, they neither originate nor terminate flows")
	}
	if len(w.Flows) >= 255 {
		panic("netspec: at most 255 flows")
	}
	idx := len(w.Flows)
	w.Flows = append(w.Flows, &Flow{FlowSpec: spec})
	w.flowPump(idx, sduBytes, pumpDepth).start()
}
