package netspec

import (
	"sort"

	"repro/internal/hop"
)

// This file is the adaptive channel classification engine — the
// learning half of the v1.2 AFH story. Each adaptive master tallies
// per-frequency reception outcomes (collisions, jam hits, HEC/CRC
// failures) in connection state, periodically classifies channels
// good/bad, and installs the surviving set as a hop.ChannelMap over
// the LMP set-AFH procedure.

// startClassifier arms the periodic channel-assessment loop on p's
// master.
func (w *World) startClassifier(p *PiconetState) {
	w.classifierPump(p).start()
}

// classify closes one assessment window: channels with enough
// observations are re-classified by error fraction, bad verdicts that
// outlived their evidence are re-probed, the good set is padded back up
// to hop.MinAFHChannels with the least-bad channels if needed, and a
// changed map is installed over LMP.
func (w *World) classify(p *PiconetState) {
	a := p.Master.Assessment()
	p.Master.ResetAssessment()
	for ch := 0; ch < hop.NumChannels; ch++ {
		total := a[ch].OK + a[ch].Bad
		if total < p.spec.MinObservations {
			// Too little evidence to re-classify. An excluded channel is
			// never hopped on, so its verdict would otherwise be permanent
			// and the hop set could only shrink: after ReprobeWindows
			// silent windows re-admit it on probation — if the interferer
			// is still there the next window re-excludes it.
			if p.bad[ch] && total == 0 {
				p.quiet[ch]++
				if p.quiet[ch] >= p.spec.ReprobeWindows {
					p.bad[ch] = false
					p.quiet[ch] = 0
				}
			}
			continue
		}
		rate := float64(a[ch].Bad) / float64(total)
		p.rate[ch] = rate
		p.bad[ch] = rate >= p.spec.BadThreshold
		p.quiet[ch] = 0
	}
	used := make([]int, 0, hop.NumChannels)
	for ch := 0; ch < hop.NumChannels; ch++ {
		if !p.bad[ch] {
			used = append(used, ch)
		}
	}
	if len(used) < hop.MinAFHChannels {
		used = padToMinimum(used, p)
	}
	var cm *hop.ChannelMap
	if len(used) < hop.NumChannels {
		cm = hop.NewChannelMap(used)
	}
	if sameMap(p.cur, cm) {
		return
	}
	w.install(p, cm)
}

// padToMinimum re-admits the least-bad excluded channels (ascending
// error fraction, ties by channel index — deterministic) until the spec
// minimum is met.
func padToMinimum(used []int, p *PiconetState) []int {
	type cand struct {
		ch   int
		rate float64
	}
	var cands []cand
	for ch := 0; ch < hop.NumChannels; ch++ {
		if p.bad[ch] {
			cands = append(cands, cand{ch, p.rate[ch]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rate != cands[j].rate {
			return cands[i].rate < cands[j].rate
		}
		return cands[i].ch < cands[j].ch
	})
	for _, c := range cands {
		if len(used) >= hop.MinAFHChannels {
			break
		}
		used = append(used, c.ch)
	}
	return used
}

// sameMap reports whether two channel maps select the same hop set.
func sameMap(a, b *hop.ChannelMap) bool {
	if a == nil || b == nil {
		return a == b
	}
	am, bm := a.Bitmask(), b.Bitmask()
	for i := range am {
		if am[i] != bm[i] {
			return false
		}
	}
	return true
}

// install pushes cm to every slave over the LMP set-AFH procedure; both
// ends of each link switch at the negotiated future instant.
func (w *World) install(p *PiconetState, cm *hop.ChannelMap) {
	p.cur = cm
	p.MapUpdates++
	for _, l := range p.Links {
		p.LMP.SetAFH(l, cm, nil)
	}
}
