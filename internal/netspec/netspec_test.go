package netspec

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/baseband"
	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/packet"
)

// world builds a spec on a fresh simulation, failing the test on a
// validation error.
func world(t *testing.T, seed uint64, spec Spec) *World {
	t.Helper()
	w, err := Build(core.NewSimulation(core.Options{Seed: seed}), spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return w
}

// TestValidationNamesOffendingStanza pins the validation contract:
// every malformed stanza comes back as a *StanzaError naming the
// stanza kind and index, with a message that says what is wrong.
func TestValidationNamesOffendingStanza(t *testing.T) {
	onePiconet := []Piconet{NewPiconet(1)}
	cases := []struct {
		name    string
		spec    Spec
		stanza  string
		index   int
		message string
	}{
		{"zero slaves", Spec{Piconets: []Piconet{{}}}, "piconet", 0, "at least 1 slave"},
		{"eight slaves", Spec{Piconets: []Piconet{NewPiconet(8)}}, "piconet", 0, "7 active members"},
		{"oracle band unset", Spec{Piconets: []Piconet{NewPiconet(1, WithOracleAFH(0, 0))}},
			"piconet", 0, "OracleLo/OracleHi"},
		{"bridge unknown piconet", Spec{
			Piconets: []Piconet{NewPiconet(1), NewPiconet(1)},
			Bridges:  []Bridge{NewBridge(0, 5)},
		}, "bridge", 0, "unknown piconet 5"},
		{"bridge self loop", Spec{
			Piconets: []Piconet{NewPiconet(1), NewPiconet(1)},
			Bridges:  []Bridge{NewBridge(1, 1)},
		}, "bridge", 0, "itself"},
		{"bridge over capacity", Spec{
			Piconets: []Piconet{NewPiconet(7), NewPiconet(1)},
			Bridges:  []Bridge{NewBridge(0, 1)},
		}, "piconet", 0, "7 active members"},
		{"bridge to detached", Spec{
			Piconets: []Piconet{NewPiconet(1), NewPiconet(1, Detached())},
			Bridges:  []Bridge{NewBridge(0, 1)},
		}, "bridge", 0, "detached"},
		{"overlapping SCO", Spec{
			Piconets: onePiconet,
			Traffic: []Traffic{
				VoiceTraffic(0, packet.TypeHV3),
				VoiceTraffic(0, packet.TypeHV3, WithTsco(12, 0)), // period 6, offset 0 ≡ 0 mod 3
			},
		}, "traffic", 1, "overlaps traffic[0]"},
		{"aliasing SCO offset", Spec{
			Piconets: onePiconet,
			Traffic: []Traffic{
				VoiceTraffic(0, packet.TypeHV3, WithTsco(6, 3)), // 3 aliases 0 mod Tsco/2
			},
		}, "traffic", 0, "Dsco 3 outside"},
		{"duplicate ACL pump", Spec{
			Piconets: []Piconet{NewPiconet(2)},
			Traffic: []Traffic{
				BulkTraffic(0, WithSlave(2)),
				PoissonTraffic(0), // covers slave 2 again
			},
		}, "traffic", 1, "already carries ACL traffic[0]"},
		{"voice with ACL type", Spec{
			Piconets: onePiconet,
			Traffic:  []Traffic{VoiceTraffic(0, packet.TypeDM1)},
		}, "traffic", 0, "not a voice packet type"},
		{"bulk in bridged world", Spec{
			Piconets: []Piconet{NewPiconet(1), NewPiconet(1)},
			Bridges:  []Bridge{NewBridge(0, 1)},
			Traffic:  []Traffic{BulkTraffic(AllPiconets)},
		}, "traffic", 0, "cannot share a world with bridges"},
		{"flow without bridges", Spec{
			Piconets: onePiconet,
			Traffic:  []Traffic{FlowTraffic(MasterName(0), SlaveName(0, 1))},
		}, "traffic", 0, "at least one bridge"},
		{"flow unknown endpoint", Spec{
			Piconets: []Piconet{NewPiconet(1), NewPiconet(1)},
			Bridges:  []Bridge{NewBridge(0, 1)},
			Traffic:  []Traffic{FlowTraffic(MasterName(0), "nobody")},
		}, "traffic", 0, "not a device"},
		{"flow from bridge", Spec{
			Piconets: []Piconet{NewPiconet(1), NewPiconet(1)},
			Bridges:  []Bridge{NewBridge(0, 1)},
			Traffic:  []Traffic{FlowTraffic(BridgeName(0), SlaveName(0, 1))},
		}, "traffic", 0, "neither originate nor terminate"},
		{"flow into bridge", Spec{
			Piconets: []Piconet{NewPiconet(1), NewPiconet(1)},
			Bridges:  []Bridge{NewBridge(0, 1)},
			Traffic:  []Traffic{FlowTraffic(MasterName(0), BridgeName(0))},
		}, "traffic", 0, "neither originate nor terminate"},
		{"traffic unknown piconet", Spec{
			Piconets: onePiconet,
			Traffic:  []Traffic{BulkTraffic(3)},
		}, "traffic", 0, "unknown piconet 3"},
		{"jammer band", Spec{
			Piconets: onePiconet,
			Jammers:  []Jammer{{Lo: 70, Hi: 90, Duty: 0.5}},
		}, "jammer", 0, "outside"},
		{"jammer duty", Spec{
			Piconets: onePiconet,
			Jammers:  []Jammer{{Lo: 0, Hi: 10, Duty: 1.5}},
		}, "jammer", 0, "duty"},
		{"power unknown slave", Spec{
			Piconets: onePiconet,
			Modes:    []PowerMode{{Kind: SniffMode, Slave: 4}},
		}, "power", 0, "slave 4"},
		{"power missing kind", Spec{
			Piconets: onePiconet,
			Modes:    []PowerMode{{}},
		}, "power", 0, "unknown mode kind"},
		{"probe duplicate name", Spec{
			Piconets: onePiconet,
			Probes: []Probe{
				{Name: "x", Kind: ProbeSlaveActivity, Piconet: AllPiconets},
				{Name: "x", Kind: ProbeMasterActivity, Piconet: AllPiconets},
			},
		}, "probe", 1, "duplicate"},
		{"bridge probe unbridged", Spec{
			Piconets: onePiconet,
			Probes:   []Probe{{Kind: ProbeBridgeActivity}},
		}, "probe", 0, "without bridges"},
		{"bad presence duty", Spec{
			Piconets: []Piconet{NewPiconet(1), NewPiconet(1)},
			Bridges:  []Bridge{NewBridge(0, 1, WithPresence(1.4))},
		}, "bridge", 0, "duty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("invalid spec validated clean")
			}
			var se *StanzaError
			if !errors.As(err, &se) {
				t.Fatalf("error is not a *StanzaError: %v", err)
			}
			if se.Stanza != tc.stanza || se.Index != tc.index {
				t.Fatalf("blamed %s[%d], want %s[%d]: %v", se.Stanza, se.Index, tc.stanza, tc.index, err)
			}
			if !strings.Contains(err.Error(), tc.message) {
				t.Fatalf("message %q does not mention %q", err.Error(), tc.message)
			}
			// Build must refuse the same spec without touching the world.
			if _, berr := Build(core.NewSimulation(core.Options{Seed: 1}), tc.spec); berr == nil {
				t.Fatal("Build accepted a spec Validate rejected")
			}
		})
	}
}

func TestValidSpecsValidate(t *testing.T) {
	specs := []Spec{
		{Piconets: []Piconet{NewPiconet(7)}},
		{
			Piconets: HomogeneousPiconets(3, 2),
			Traffic: []Traffic{
				VoiceTraffic(0, packet.TypeHV3),
				VoiceTraffic(0, packet.TypeHV1, WithTsco(6, 2), WithSlave(2)),
				BulkTraffic(1),
				PoissonTraffic(2),
			},
			Jammers: []Jammer{{Lo: 30, Hi: 52, Duty: 0.9}},
			Modes:   []PowerMode{{Kind: SniffMode, Piconet: 1, TsniffSlots: 64}},
			Probes:  []Probe{{Kind: ProbeSlaveActivity, Piconet: AllPiconets}},
		},
		{
			Piconets: HomogeneousPiconets(3, 5, WithTpoll(64)),
			Bridges:  ChainBridges(3),
			Traffic: []Traffic{
				FlowTraffic(MasterName(0), SlaveName(2, 1)),
				FlowTraffic(MasterName(2), SlaveName(0, 1)),
			},
		},
	}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %d rejected: %v", i, err)
		}
	}
}

// TestTpollDefaultIsBridgeAware pins the conditional default: bridged
// worlds poll every 64 slots so idle links stay supervised, bridge-free
// worlds effectively never (the pumped data is the poll).
func TestTpollDefaultIsBridgeAware(t *testing.T) {
	plain := Spec{Piconets: HomogeneousPiconets(2, 1)}.withDefaults()
	if got := plain.Piconets[0].TpollSlots; got != 0 {
		t.Fatalf("bridge-free Tpoll resolved to %d, want 0 (baseband default)", got)
	}
	bridged := Spec{
		Piconets: HomogeneousPiconets(2, 1),
		Bridges:  ChainBridges(2),
	}.withDefaults()
	if got := bridged.Piconets[0].TpollSlots; got != 64 {
		t.Fatalf("bridged Tpoll default %d, want 64", got)
	}
	explicit := Spec{
		Piconets: HomogeneousPiconets(2, 1, WithTpoll(128)),
		Bridges:  ChainBridges(2),
	}.withDefaults()
	if got := explicit.Piconets[0].TpollSlots; got != 128 {
		t.Fatalf("explicit Tpoll overridden to %d", got)
	}
}

// TestMixedVoiceAndBulkWorld drives the new heterogeneous shape: one
// voice piconet and one bulk piconet sharing the medium, read through
// the unified metrics surface.
func TestMixedVoiceAndBulkWorld(t *testing.T) {
	w := world(t, 11, Spec{
		Piconets: []Piconet{NewPiconet(2), NewPiconet(1)},
		Traffic: []Traffic{
			VoiceTraffic(0, packet.TypeHV3),
			BulkTraffic(1),
		},
	})
	w.Start()
	w.Sim.RunSlots(64)
	w.ResetMetrics()
	w.Sim.RunSlots(4000)
	m := w.Metrics()
	if len(m.Voice) != 2 {
		t.Fatalf("want 2 voice streams, got %d", len(m.Voice))
	}
	for _, v := range m.Voice {
		if v.TxFrames == 0 || v.RxFrames == 0 {
			t.Fatalf("voice stream silent: %+v", v)
		}
		if v.BitPerfect > v.RxFrames {
			t.Fatalf("bit-perfect exceeds delivered: %+v", v)
		}
	}
	if m.PerPiconet[1] == 0 {
		t.Fatal("bulk piconet delivered nothing")
	}
	if m.PerPiconet[0] != 0 {
		t.Fatalf("voice piconet counted ACL bytes: %d", m.PerPiconet[0])
	}
	if m.Slots != 4000 {
		t.Fatalf("window slots %d, want 4000", m.Slots)
	}
	if m.GoodputKbps() <= 0 {
		t.Fatal("no goodput")
	}
	tx := 0
	for _, fc := range m.PerFreq {
		tx += fc.Transmissions
	}
	if tx == 0 {
		t.Fatal("per-frequency window empty")
	}
}

// TestPoissonTrafficDeterministic pins the poisson source: bursts
// arrive, and the same seed reproduces the same delivered-byte count.
func TestPoissonTrafficDeterministic(t *testing.T) {
	run := func() int {
		w := world(t, 23, Spec{
			Piconets: []Piconet{NewPiconet(1)},
			Traffic:  []Traffic{PoissonTraffic(0, WithMeanGap(40), WithBurstBytes(64))},
		})
		w.Start()
		w.ResetMetrics()
		w.Sim.RunSlots(6000)
		return w.Metrics().Bytes
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("poisson source delivered nothing")
	}
	if a != b {
		t.Fatalf("identical seeds diverged: %d vs %d bytes", a, b)
	}
}

// TestDetachedPiconetBuildsUnconnected checks the Detached stanza:
// devices exist, nothing is paged.
func TestDetachedPiconetBuildsUnconnected(t *testing.T) {
	w := world(t, 3, Spec{
		Piconets: []Piconet{NewPiconet(2, Detached())},
	})
	p := w.Piconets[0]
	if p.Master == nil || len(p.Slaves) != 2 {
		t.Fatalf("devices missing: %+v", p)
	}
	if len(p.Links) != 0 || p.LMP != nil {
		t.Fatal("detached piconet was connected")
	}
	if w.Sim.Now() != 0 {
		t.Fatalf("detached build advanced time to slot %d", w.Sim.Now())
	}
}

// TestHCIRoundTrip drives a spec-built HCI world through the host
// command path: inquiry discovers the slave, CreateConnection pages
// it, SendData arrives as a DataEvent on the far controller.
func TestHCIRoundTrip(t *testing.T) {
	w := world(t, 9, Spec{
		Piconets: []Piconet{NewPiconet(1, WithHCI())},
	})
	mc := w.Controller(MasterName(0))
	sc := w.Controller(SlaveName(0, 1))
	if mc == nil || sc == nil {
		t.Fatal("controllers missing on HCI piconet")
	}

	var found *baseband.InquiryResult
	var handle hci.ConnHandle
	connected := false
	mc.Events = func(e hci.Event) {
		switch ev := e.(type) {
		case hci.InquiryResultEvent:
			r := ev.Result
			found = &r
		case hci.ConnectionCompleteEvent:
			if !ev.OK {
				t.Fatal("connection failed")
			}
			handle = ev.Handle
			connected = true
		}
	}
	var got []byte
	sc.Events = func(e hci.Event) {
		if d, ok := e.(hci.DataEvent); ok {
			got = append([]byte(nil), d.Payload...)
		}
	}

	sc.WriteScanEnable(true, false) // inquiry scan
	mc.Inquiry(2048, 1)
	w.Sim.RunSlots(2500)
	if found == nil {
		t.Fatal("inquiry found nothing")
	}

	sc.WriteScanEnable(false, true) // page scan
	if err := mc.CreateConnection(found.Addr, 2048); err != nil {
		t.Fatalf("CreateConnection: %v", err)
	}
	for i := 0; i < 64 && !connected; i++ {
		w.Sim.RunSlots(64)
	}
	if !connected {
		t.Fatal("page never completed")
	}

	if err := mc.SendData(handle, []byte("netspec ping")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
	for i := 0; i < 64 && got == nil; i++ {
		w.Sim.RunSlots(16)
	}
	if string(got) != "netspec ping" {
		t.Fatalf("round trip delivered %q", got)
	}
}

// TestPowerModesLowerActivity checks that the PowerMode stanzas bite:
// a sniffing slave burns measurably less RX than an active one.
func TestPowerModesLowerActivity(t *testing.T) {
	measure := func(modes ...PowerMode) float64 {
		w := world(t, 13, Spec{
			Piconets: []Piconet{NewPiconet(1)},
			Modes:    modes,
			Probes:   []Probe{{Name: "s", Kind: ProbeSlaveActivity, Piconet: 0}},
		})
		w.Sim.RunSlots(1000)
		w.ResetMetrics()
		w.Sim.RunSlots(10000)
		rx := w.Metrics().Probes["s"].Rx
		return rx.Mean()
	}
	active := measure()
	sniff := measure(PowerMode{Kind: SniffMode, TsniffSlots: 200})
	if active <= 0 {
		t.Fatal("active slave shows no RX activity")
	}
	if sniff >= active/2 {
		t.Fatalf("sniff did not save energy: active %.5f, sniff %.5f", active, sniff)
	}
}

// TestStartTwicePanics pins the one-shot Start contract.
func TestStartTwicePanics(t *testing.T) {
	w := world(t, 1, Spec{
		Piconets: []Piconet{NewPiconet(1)},
		Traffic:  []Traffic{BulkTraffic(0)},
	})
	w.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start must panic")
		}
	}()
	w.Start()
}
