package netspec

import "repro/internal/packet"

// This file holds the functional-option constructors: sugar over the
// stanza literals for the common shapes. Options mutate the stanza
// before defaulting, so an unset field still takes its documented
// default — a raw literal and the equivalent constructor build the
// same world.

// PiconetOption mutates a Piconet stanza.
type PiconetOption func(*Piconet)

// NewPiconet builds one piconet stanza with the given slave count.
func NewPiconet(slaves int, opts ...PiconetOption) Piconet {
	p := Piconet{Slaves: slaves}
	for _, o := range opts {
		o(&p)
	}
	return p
}

// HomogeneousPiconets builds n identical piconet stanzas.
func HomogeneousPiconets(n, slaves int, opts ...PiconetOption) []Piconet {
	out := make([]Piconet, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, NewPiconet(slaves, opts...))
	}
	return out
}

// WithName sets the piconet's device-name prefix.
func WithName(name string) PiconetOption {
	return func(p *Piconet) { p.Name = name }
}

// WithTpoll sets the master's maximum polling interval.
func WithTpoll(slots int) PiconetOption {
	return func(p *Piconet) { p.TpollSlots = slots }
}

// WithAdaptiveAFH enables adaptive channel classification with the
// given assessment window.
func WithAdaptiveAFH(assessWindowSlots int) PiconetOption {
	return func(p *Piconet) {
		p.AFH = AFHAdaptive
		p.AssessWindowSlots = assessWindowSlots
	}
}

// WithOracleAFH installs the hand-picked map excluding lo..hi.
func WithOracleAFH(lo, hi int) PiconetOption {
	return func(p *Piconet) {
		p.AFH = AFHOracle
		p.OracleLo, p.OracleHi = lo, hi
	}
}

// Detached builds the piconet's devices without connecting them.
func Detached() PiconetOption {
	return func(p *Piconet) { p.Detached = true }
}

// WithR1PageScan keeps the slaves' standard R1 page-scan discipline
// instead of the continuous scanning multi-piconet worlds default to.
func WithR1PageScan() PiconetOption {
	return func(p *Piconet) { p.R1PageScan = true }
}

// WithHCI attaches an HCI controller to every device (implies
// Detached; the host drives connection establishment).
func WithHCI() PiconetOption {
	return func(p *Piconet) { p.HCI = true }
}

// BridgeOption mutates a Bridge stanza.
type BridgeOption func(*Bridge)

// NewBridge joins piconets a and b.
func NewBridge(a, b int, opts ...BridgeOption) Bridge {
	br := Bridge{A: a, B: b}
	for _, o := range opts {
		o(&br)
	}
	return br
}

// ChainBridges joins piconets 0..piconets-1 into a chain: bridge i
// joins piconets i and i+1.
func ChainBridges(piconets int, opts ...BridgeOption) []Bridge {
	out := make([]Bridge, 0, piconets-1)
	for i := 0; i < piconets-1; i++ {
		out = append(out, NewBridge(i, i+1, opts...))
	}
	return out
}

// WithPresence sets the bridge's presence duty cycle.
func WithPresence(duty float64) BridgeOption {
	return func(b *Bridge) { b.PresenceDuty = duty }
}

// WithPresencePeriod sets the timesharing period in slots.
func WithPresencePeriod(slots int) BridgeOption {
	return func(b *Bridge) { b.PresencePeriodSlots = slots }
}

// WithQueueBound sets the store-and-forward backlog bound.
func WithQueueBound(frames int) BridgeOption {
	return func(b *Bridge) { b.MaxQueueFrames = frames }
}

// TrafficOption mutates a Traffic stanza.
type TrafficOption func(*Traffic)

// BulkTraffic keeps a saturating ACL pump on every link of the
// piconet (AllPiconets = every piconet).
func BulkTraffic(piconet int, opts ...TrafficOption) Traffic {
	t := Traffic{Kind: TrafficBulk, Piconet: piconet}
	for _, o := range opts {
		o(&t)
	}
	return t
}

// VoiceTraffic reserves an SCO voice stream to the targeted slaves.
func VoiceTraffic(piconet int, ty packet.Type, opts ...TrafficOption) Traffic {
	t := Traffic{Kind: TrafficVoice, Piconet: piconet, PacketType: ty}
	for _, o := range opts {
		o(&t)
	}
	return t
}

// PoissonTraffic sends exponentially spaced ACL bursts on every link
// of the piconet.
func PoissonTraffic(piconet int, opts ...TrafficOption) Traffic {
	t := Traffic{Kind: TrafficPoisson, Piconet: piconet}
	for _, o := range opts {
		o(&t)
	}
	return t
}

// FlowTraffic streams SDUs end to end across the scatternet relay.
func FlowTraffic(from, to string, opts ...TrafficOption) Traffic {
	t := Traffic{Kind: TrafficFlow, From: from, To: to}
	for _, o := range opts {
		o(&t)
	}
	return t
}

// WithPacketType sets the ACL carrier (bulk/poisson) or voice type.
func WithPacketType(ty packet.Type) TrafficOption {
	return func(t *Traffic) { t.PacketType = ty }
}

// WithPumpDepth sets the transmit-queue depth the pump maintains.
func WithPumpDepth(depth int) TrafficOption {
	return func(t *Traffic) { t.PumpDepth = depth }
}

// WithSlave narrows the stanza to one slave (1-based).
func WithSlave(slave int) TrafficOption {
	return func(t *Traffic) { t.Slave = slave }
}

// WithTsco sets the SCO reservation period and offset.
func WithTsco(tscoSlots, dscoEven int) TrafficOption {
	return func(t *Traffic) { t.TscoSlots, t.DscoEven = tscoSlots, dscoEven }
}

// WithMeanGap sets the poisson mean inter-burst gap in slots.
func WithMeanGap(slots float64) TrafficOption {
	return func(t *Traffic) { t.MeanGapSlots = slots }
}

// WithBurstBytes sets the poisson burst size.
func WithBurstBytes(bytes int) TrafficOption {
	return func(t *Traffic) { t.BurstBytes = bytes }
}

// WithSDUBytes sets the flow SDU payload size.
func WithSDUBytes(bytes int) TrafficOption {
	return func(t *Traffic) { t.SDUBytes = bytes }
}
