package netspec

import (
	"encoding/binary"

	"repro/internal/baseband"
	"repro/internal/btclock"
	"repro/internal/l2cap"
	"repro/internal/lmp"
	"repro/internal/sim"
	"repro/internal/stats"
)

// relayPSM is the protocol/service multiplexer value the scatternet
// relay protocol rides on.
const relayPSM = 0x0F

// Membership is one of a bridge's two piconet attachments.
type Membership struct {
	// Piconet is the index of the attached piconet.
	Piconet int
	// Link is the bridge-side ACL link to that piconet's master.
	Link *baseband.Link
	// MasterLink is the master-side end of the same link.
	MasterLink *baseband.Link
	// BB is the baseband membership (clock offset, hop sequence).
	BB *baseband.Membership
	// Out is the relay channel from the bridge to the piconet's master.
	Out *l2cap.Channel
	// SniffOffset and AttemptEvenSlots are the negotiated presence
	// window in the piconet's even-slot index domain.
	SniffOffset      int
	AttemptEvenSlots int

	clockOffset uint32
}

// queuedFrame is one store-and-forward entry.
type queuedFrame struct {
	sdu []byte
	at  uint64 // enqueue time in slots
}

// BridgeState is one built scatternet bridge: a device that is slave
// in two piconets and relays L2CAP frames between them.
type BridgeState struct {
	// Index is the bridge's position in World.Bridges.
	Index int
	// Dev is the bridge device.
	Dev *baseband.Device
	// LMP runs the bridge side of the presence handshakes.
	LMP *lmp.Manager
	// Members are the two attachments, stanza field A first.
	Members [2]*Membership

	// QueueDepth tracks the store-and-forward queue depth over time
	// (both directions pooled), in slots.
	QueueDepth stats.Occupancy
	// FwdLatency samples per-frame forwarding latency — enqueue at the
	// bridge to drain into the outgoing window — in slots.
	FwdLatency stats.Sample
	// Forwarded counts frames relayed across the bridge.
	Forwarded int
	// Dropped counts frames the bounded queue refused.
	Dropped int

	spec   Bridge
	t0     uint64 // presence grid anchor, kernel ticks
	active int
	q      [2][]queuedFrame
	node   *node
	world  *World
}

// ActiveMembership returns the index (0 or 1) of the currently
// activated membership.
func (b *BridgeState) ActiveMembership() int { return b.active }

// Spec returns the resolved stanza the bridge was built from.
func (b *BridgeState) Spec() Bridge { return b.spec }

// depth is the total store-and-forward backlog across both directions.
func (b *BridgeState) depth() int { return len(b.q[0]) + len(b.q[1]) }

// node is one relay participant (master, slave or bridge): its L2CAP
// entity, the relay channels to its neighbours and the next-hop table.
type node struct {
	name   string
	dev    *baseband.Device
	mux    *l2cap.Mux
	chans  map[string]*l2cap.Channel // neighbour name -> relay channel
	peers  []string                  // neighbour names in attach order (deterministic)
	next   map[string]string         // destination -> neighbour name
	bridge *BridgeState              // non-nil on bridges
}

// FlowSpec names one end-to-end traffic flow by device names.
type FlowSpec struct {
	From, To string
}

// Flow is a running flow with its delivery accounting.
type Flow struct {
	FlowSpec
	// SentBytes and DeliveredBytes count SDU payload over the current
	// measurement window.
	SentBytes, DeliveredBytes int
	// Latency samples end-to-end delivery latency in slots.
	Latency stats.Sample
}

// buildRelay stands the scatternet machinery up: every connected
// piconet's master and slaves become relay nodes, intra-piconet relay
// channels open, each Bridge stanza is paged into its two piconets,
// routes are computed, and the presence handshake plus scheduler and
// drain start on every bridge.
func (w *World) buildRelay() {
	w.nodes = make(map[string]*node)
	w.names = make(map[baseband.BDAddr]string)

	// Every master and slave becomes a relay node. Attaching the L2CAP
	// entity takes over OnData, which is the point: all host traffic in
	// a scatternet is L2CAP.
	for _, p := range w.Piconets {
		if p.spec.Detached {
			continue
		}
		w.addNode(p.Master)
		for _, sl := range p.Slaves {
			w.addNode(sl)
		}
	}
	// Relay channels master->slave inside every piconet.
	opened := 0
	want := 0
	for _, p := range w.Piconets {
		if p.spec.Detached {
			continue
		}
		mn := w.nodes[p.Master.Name()]
		for _, l := range p.Links {
			want++
			link := l
			mn.mux.Connect(link, relayPSM, func(ch *l2cap.Channel, err error) {
				if err != nil {
					panic("netspec: intra-piconet relay channel refused: " + err.Error())
				}
				w.registerChannel(mn, ch)
				opened++
			})
		}
	}
	w.runUntil(2048, "intra-piconet channel setup", func() bool { return opened == want })

	for i := range w.spec.Bridges {
		w.Bridges = append(w.Bridges, w.buildBridge(i))
	}
	w.buildRoutes()

	// Anchor each bridge's presence grid far enough out that every
	// handshake finishes first; the sniff windows are periodic, so the
	// anchor only fixes phases, not a start time.
	now := uint64(w.Sim.K.Now())
	for _, b := range w.Bridges {
		period := uint64(b.spec.PresencePeriodSlots) * sim.SlotTicks
		b.t0 = (now/period + 2) * period
	}
	for _, b := range w.Bridges {
		w.negotiatePresence(b)
	}
	for _, b := range w.Bridges {
		w.startScheduler(b)
		w.startDrain(b)
	}
}

// addNode wires a device into the relay: L2CAP entity plus the accept
// side of the relay PSM.
func (w *World) addNode(d *baseband.Device) *node {
	nd := &node{
		name:  d.Name(),
		dev:   d,
		mux:   l2cap.Attach(d),
		chans: make(map[string]*l2cap.Channel),
		next:  make(map[string]string),
	}
	nd.mux.RegisterPSM(relayPSM, func(ch *l2cap.Channel) {
		w.registerChannel(nd, ch)
	})
	w.nodes[nd.name] = nd
	w.names[d.Addr()] = nd.name
	return nd
}

// registerChannel books an open relay channel under the neighbour's
// device name and points its SDU handler at the relay.
func (w *World) registerChannel(nd *node, ch *l2cap.Channel) {
	peer, ok := w.names[ch.Link().Peer]
	if !ok {
		panic("netspec: relay channel to unknown device")
	}
	if _, dup := nd.chans[peer]; !dup {
		nd.peers = append(nd.peers, peer)
	}
	nd.chans[peer] = ch
	ch.OnSDU = func(sdu []byte) { w.onSDU(nd, sdu) }
}

// buildBridge creates bridge i and pages it into its two piconets.
func (w *World) buildBridge(i int) *BridgeState {
	sp := w.spec.Bridges[i]
	if w.layout != nil {
		// The relay stands midway between its two masters (reach was
		// checked against the layout before any device was built).
		w.Sim.Ch.Place(BridgeName(i), bridgePosition(w.layout[sp.A].master, w.layout[sp.B].master))
	}
	d := w.Sim.AddDevice(BridgeName(i), baseband.Config{
		Addr: baseband.BDAddr{
			LAP: 0x7D0000 + uint32(i)*0x11111,
			UAP: uint8(0xB0 + i),
			NAP: uint16(0x0300 + i),
		},
		TpollSlots: w.spec.Piconets[sp.A].TpollSlots,
		// Scan continuously: the second page-in must not wait for an R1
		// scan interval, and foreign piconets can collide with the
		// handshake.
		PageScanWindowSlots:   2048,
		PageScanIntervalSlots: 2048,
	})
	b := &BridgeState{Index: i, Dev: d, LMP: lmp.Attach(d), spec: sp, world: w}
	b.node = w.addNode(d)
	b.node.bridge = b
	// Attribute the bridge's collisions to piconet A (it spends half
	// its presence in each; the attribution needs one owner).
	w.AdoptDevice(d, sp.A)

	b.Members[0] = w.joinPiconet(b, sp.A)
	bb0 := d.SuspendMembership()
	b.Members[0].BB = bb0
	b.Members[1] = w.joinPiconet(b, sp.B)
	b.Members[1].BB = d.CaptureMembership()
	b.active = 1
	return b
}

// joinPiconet pages the bridge into piconet pi, opens the relay channel
// to its master, and records the piconet's clock offset. The bridge is
// left active in that piconet.
func (w *World) joinPiconet(b *BridgeState, pi int) *Membership {
	p := w.Piconets[pi]
	links := w.Sim.BuildPiconet(p.Master, b.Dev)
	m := &Membership{
		Piconet:     pi,
		Link:        b.Dev.MasterLink(),
		MasterLink:  links[0],
		clockOffset: b.Dev.Clock.Offset(),
	}
	m.Link.PacketType = b.spec.PacketType
	m.MasterLink.PacketType = b.spec.PacketType
	done := false
	b.node.mux.Connect(m.Link, relayPSM, func(ch *l2cap.Channel, err error) {
		if err != nil {
			panic("netspec: bridge relay channel refused: " + err.Error())
		}
		m.Out = ch
		w.registerChannel(b.node, ch)
		done = true
	})
	w.runUntil(4096, "bridge relay channel setup", func() bool { return done })
	return m
}

// negotiatePresence runs the LMP timing handshake on both of b's links:
// slot offset first, then the sniff window that pins the bridge's
// presence in that piconet. Membership 1 is negotiated first (the
// bridge is already active there after its join), then the bridge
// switches to membership 0 for the second handshake.
func (w *World) negotiatePresence(b *BridgeState) {
	for _, mi := range []int{1, 0} {
		m := b.Members[mi]
		if b.active != mi {
			b.activate(mi)
		}
		m.AttemptEvenSlots = b.spec.windowEvenSlots()
		m.SniffOffset = w.sniffOffsetFor(b, mi)
		accepted := false
		b.LMP.RequestPresence(m.Link, b.spec.PresencePeriodSlots, m.AttemptEvenSlots,
			m.SniffOffset, w.slotOffsetUS(b, mi), func(ok bool) { accepted = ok })
		w.runUntil(4096, "presence negotiation", func() bool { return accepted })
	}
}

// sniffOffsetFor maps membership mi's absolute window start — the grid
// anchor plus half a period per membership index — into that piconet's
// even-slot index domain. The +1 even slot keeps the window strictly
// inside the absolute half-period after activation boundary rounding.
func (w *World) sniffOffsetFor(b *BridgeState, mi int) int {
	half := uint64(b.spec.PresencePeriodSlots) * sim.SlotTicks / 2
	start := sim.Time(b.t0 + uint64(mi)*half)
	clk := (b.Dev.Clock.CLKN(start) + b.Members[mi].clockOffset) & btclock.Mask
	period := uint32(b.spec.PresencePeriodSlots / 2) // even slots per period
	return int(((clk >> 2) + 1) % period)
}

// slotOffsetUS is the announced phase difference between the bridge's
// other piconet's TDD frame and membership mi's, in microseconds.
func (w *World) slotOffsetUS(b *BridgeState, mi int) uint16 {
	other := b.Members[1-mi].clockOffset
	this := b.Members[mi].clockOffset
	diff := (other - this) & 3 // half-slots within the 2-slot TDD frame
	return uint16(uint64(diff) * 3125 / 10)
}

// activate switches the bridge radio to membership mi.
func (b *BridgeState) activate(mi int) {
	b.active = mi
	b.Dev.ActivateMembership(b.Members[mi].BB)
}

// startScheduler arms the presence scheduler: at every half-period
// boundary of the grid the bridge retunes to the membership whose
// window opens there. Scheduled on the kernel directly — membership
// switches must survive the state-generation bumps they themselves
// cause.
func (w *World) startScheduler(b *BridgeState) {
	w.schedPump(b).start()
}

// startDrain arms the bridge's store-and-forward drain: every two slots
// it moves frames from the active membership's queue into its link, as
// long as the baseband queue stays shallow — so the backlog (and its
// statistics) live at L2CAP, and frames only drain during the piconet's
// presence window because only then does the master empty the link.
func (w *World) startDrain(b *BridgeState) {
	w.drainPump(b).start()
}

// drain moves queued frames for the active membership into its link.
func (b *BridgeState) drain() {
	m := b.Members[b.active]
	if m.Out == nil {
		return
	}
	now := b.world.Sim.Now()
	moved := false
	for len(b.q[b.active]) > 0 && m.Link.QueueLen() < b.spec.PumpDepth {
		f := b.q[b.active][0]
		b.q[b.active] = b.q[b.active][1:]
		b.FwdLatency.Add(float64(now - f.at))
		b.Forwarded++
		m.Out.Send(f.sdu)
		moved = true
	}
	if moved {
		b.QueueDepth.Observe(b.depth(), now)
	}
}

// enqueue books one frame for the membership that reaches neighbour.
func (b *BridgeState) enqueue(neighbour string, sdu []byte) {
	mi := -1
	for i, m := range b.Members {
		if b.world.names[m.Link.Peer] == neighbour {
			mi = i
			break
		}
	}
	if mi < 0 {
		b.world.RouteMisses++
		return
	}
	if b.depth() >= b.spec.MaxQueueFrames {
		b.Dropped++
		return
	}
	now := b.world.Sim.Now()
	b.q[mi] = append(b.q[mi], queuedFrame{sdu: sdu, at: now})
	b.QueueDepth.Observe(b.depth(), now)
}

// buildRoutes computes every node's next-hop table by breadth-first
// search over the relay topology. Deterministic: adjacency is walked in
// attach order.
func (w *World) buildRoutes() {
	order := w.nodeOrder()
	for _, src := range order {
		nd := w.nodes[src]
		// BFS from src over neighbour lists.
		prev := map[string]string{src: ""}
		queue := []string{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range w.nodes[cur].peers {
				if _, seen := prev[nb]; seen {
					continue
				}
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
		for _, dst := range order {
			if dst == src {
				continue
			}
			// Walk back from dst to the neighbour of src on the path.
			hop, cur := "", dst
			for cur != "" && cur != src {
				hop, cur = cur, prev[cur]
			}
			if cur == src && hop != "" {
				nd.next[dst] = hop
			}
		}
	}
}

// nodeOrder lists node names deterministically: masters and slaves in
// build order, then bridges.
func (w *World) nodeOrder() []string {
	var out []string
	for _, p := range w.Piconets {
		if p.spec.Detached {
			continue
		}
		out = append(out, p.Master.Name())
		for _, sl := range p.Slaves {
			out = append(out, sl.Name())
		}
	}
	for _, b := range w.Bridges {
		out = append(out, b.Dev.Name())
	}
	return out
}

// route forwards sdu toward dst from nd: bridges queue it for the
// membership window, everyone else sends it straight down the link.
func (w *World) route(nd *node, dst string, sdu []byte) {
	hop, ok := nd.next[dst]
	if !ok {
		w.RouteMisses++
		return
	}
	if nd.bridge != nil {
		nd.bridge.enqueue(hop, sdu)
		return
	}
	ch, ok := nd.chans[hop]
	if !ok {
		w.RouteMisses++
		return
	}
	ch.Send(sdu)
}

// onSDU handles a relay frame arriving at nd: deliver or forward.
func (w *World) onSDU(nd *node, sdu []byte) {
	fr, ok := decodeFrame(sdu)
	if !ok {
		return
	}
	if fr.dst == nd.name {
		w.DeliveredBytes += len(fr.payload)
		lat := float64(w.Sim.Now() - fr.origin)
		w.E2ELatency.Add(lat)
		if int(fr.flow) < len(w.Flows) {
			f := w.Flows[fr.flow]
			f.DeliveredBytes += len(fr.payload)
			f.Latency.Add(lat)
		}
		return
	}
	w.route(nd, fr.dst, sdu)
}

// frame is the decoded relay header.
type frame struct {
	flow    uint8
	dst     string
	origin  uint64 // origin send time in slots
	payload []byte
}

// encodeFrame serialises the relay header in front of the payload:
// flow index, destination name, origin timestamp.
func encodeFrame(flow uint8, dst string, origin uint64, payload []byte) []byte {
	if len(dst) > 255 {
		panic("netspec: destination name too long")
	}
	out := make([]byte, 0, 2+len(dst)+8+len(payload))
	out = append(out, flow, uint8(len(dst)))
	out = append(out, dst...)
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], origin)
	out = append(out, ts[:]...)
	return append(out, payload...)
}

// decodeFrame parses a relay frame.
func decodeFrame(b []byte) (frame, bool) {
	if len(b) < 2 {
		return frame{}, false
	}
	dl := int(b[1])
	if len(b) < 2+dl+8 {
		return frame{}, false
	}
	return frame{
		flow:    b[0],
		dst:     string(b[2 : 2+dl]),
		origin:  binary.LittleEndian.Uint64(b[2+dl : 2+dl+8]),
		payload: b[2+dl+8:],
	}, true
}
