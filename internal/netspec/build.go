package netspec

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/hci"
	"repro/internal/hop"
	"repro/internal/lmp"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PiconetState is one built master-plus-slaves group inside the world.
type PiconetState struct {
	// Index is the piconet's position in World.Piconets (and its
	// identity in the spec).
	Index int
	// Master owns the piconet; its BD_ADDR drives the hop sequence.
	Master *baseband.Device
	// Slaves in AM_ADDR order.
	Slaves []*baseband.Device
	// Links are the master-side ACL links, one per slave (nil for a
	// detached piconet).
	Links []*baseband.Link
	// LMP is the master's link manager (slaves carry their own
	// responders internally; nil for a detached piconet).
	LMP *lmp.Manager
	// Received counts payload bytes delivered to each slave since the
	// last ResetMetrics (unused once a relay takes over the data path).
	Received []int
	// MapUpdates counts adaptive channel-map installs.
	MapUpdates int

	spec      Piconet
	slaveLMPs []*lmp.Manager
	bad       [hop.NumChannels]bool
	rate      [hop.NumChannels]float64 // last observed error fraction
	quiet     [hop.NumChannels]int     // consecutive windows bad with no evidence
	cur       *hop.ChannelMap          // nil = full 79-channel set
}

// CurrentMap returns the channel map the piconet currently hops on
// (nil = the full 79-channel set).
func (p *PiconetState) CurrentMap() *hop.ChannelMap { return p.cur }

// Spec returns the resolved stanza the piconet was built from.
func (p *PiconetState) Spec() Piconet { return p.spec }

// World is a built spec: every piconet, bridge, traffic source and
// probe of the description, standing on one shared medium.
type World struct {
	// Sim owns the kernel and the shared channel.
	Sim *core.Simulation
	// Piconets in build order.
	Piconets []*PiconetState
	// Bridges in stanza order (empty without Bridge stanzas).
	Bridges []*BridgeState
	// Flows are the running end-to-end flows, in start order.
	Flows []*Flow
	// Voices are the running SCO voice streams, in start order.
	Voices []*Voice

	// InterCollisions counts collision pairs whose transmitters belong
	// to different piconets; IntraCollisions counts same-piconet pairs
	// (TDD makes those rare). Reset by ResetMetrics.
	InterCollisions int
	IntraCollisions int
	// DeliveredBytes is the SDU payload total delivered at flow
	// destinations since the last ResetMetrics.
	DeliveredBytes int
	// E2ELatency samples end-to-end delivery latency in slots.
	E2ELatency stats.Sample
	// RouteMisses counts frames dropped for lack of a route.
	RouteMisses int

	spec    Spec
	layout  []piconetLayout // computed positions (nil without Placement)
	owner   map[string]int  // device name -> piconet index
	ctrl    map[string]*hci.Controller
	nodes   map[string]*node
	names   map[baseband.BDAddr]string
	pumps   []*pump // registered self-rescheduling loops, in start order
	started bool
	chBase  channel.Stats // channel counters at the last ResetMetrics
	resetAt uint64        // slot of the last ResetMetrics
}

// Build compiles the spec onto s: device creation with derived
// BD_ADDRs, sequential paging of every connected piconet, LMP managers
// on both ends of every link, bridges with their presence schedules and
// relay channels, jammers and power modes. Traffic (and adaptive
// classification) starts with World.Start. A malformed spec returns a
// *StanzaError naming the offending stanza; construction itself panics
// only on radio-level failure, which cannot happen at BER 0 with sane
// parameters. Build advances simulated time: paging, channel setup and
// LMP negotiation all happen on the air.
func Build(s *core.Simulation, spec Spec) (*World, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	w := &World{
		Sim:   s,
		spec:  spec,
		owner: make(map[string]int),
	}
	if spec.Placement != nil {
		// The layout draws from a stream derived from the seed without
		// advancing the root RNG, so device seeds and clock phases stay
		// exactly those of a placement-free world on the same seed.
		w.layout = spec.layout(s.DerivedRand("netspec.placement"))
		if err := w.checkBridgeReach(); err != nil {
			return nil, err
		}
		s.Ch.EnableSpatial(channel.SpatialConfig{
			RangeM:        spec.Placement.RangeM,
			InterferenceM: spec.Placement.InterferenceM,
		})
	}
	s.Ch.SetCollisionHook(w.onCollision)
	for i := range spec.Piconets {
		w.Piconets = append(w.Piconets, w.buildPiconet(i))
	}
	for _, p := range w.Piconets {
		if p.spec.AFH == AFHOracle {
			w.install(p, hop.ExcludeRange(p.spec.OracleLo, p.spec.OracleHi))
		}
	}
	if len(spec.Bridges) > 0 {
		w.buildRelay()
	}
	for _, j := range spec.Jammers {
		s.Ch.AddJammer(j.Lo, j.Hi, j.Duty)
	}
	for i := range spec.Modes {
		w.applyMode(&spec.Modes[i])
	}
	w.chBase = s.Ch.Stats()
	w.resetAt = s.Now()
	return w, nil
}

// MustBuild is Build for specs known to be valid; it panics on a
// validation error.
func MustBuild(s *core.Simulation, spec Spec) *World {
	w, err := Build(s, spec)
	if err != nil {
		panic(err)
	}
	return w
}

// buildPiconet creates piconet i's devices and, unless the stanza is
// detached, connects and attaches them.
func (w *World) buildPiconet(i int) *PiconetState {
	sp := w.spec.Piconets[i]
	p := &PiconetState{Index: i, spec: sp}
	mname := sp.Name + ".master"
	if w.layout != nil {
		w.Sim.Ch.Place(mname, w.layout[i].master)
	}
	p.Master = w.Sim.AddDevice(mname, baseband.Config{
		Addr: baseband.BDAddr{
			LAP: 0x1A0000 + uint32(i)*0x01357,
			UAP: uint8(0x10 + i),
			NAP: uint16(0x0100 + i),
		},
		// Default 1<<20: the pumped data is the poll; keep explicit
		// polls out of the way.
		TpollSlots: sp.TpollSlots,
	})
	w.owner[mname] = i
	for j := 0; j < sp.Slaves; j++ {
		sname := fmt.Sprintf("%s.slave%d", sp.Name, j+1)
		cfg := baseband.Config{
			Addr: baseband.BDAddr{
				LAP: 0x5B0000 + uint32(i)*0x02000 + uint32(j)*0x00111,
				UAP: uint8(0x80 + i*8 + j),
				NAP: uint16(0x0200 + i),
			},
			TpollSlots: sp.TpollSlots,
		}
		if !sp.R1PageScan {
			// Foreign piconets can collide with the page handshake; scan
			// continuously so retries land promptly.
			cfg.PageScanWindowSlots = 2048
			cfg.PageScanIntervalSlots = 2048
		}
		if w.layout != nil {
			w.Sim.Ch.Place(sname, w.layout[i].slaves[j])
		}
		sl := w.Sim.AddDevice(sname, cfg)
		w.owner[sname] = i
		p.Slaves = append(p.Slaves, sl)
	}
	if sp.HCI {
		if w.ctrl == nil {
			w.ctrl = make(map[string]*hci.Controller)
		}
		w.ctrl[mname] = hci.Attach(p.Master)
		for _, sl := range p.Slaves {
			w.ctrl[sl.Name()] = hci.Attach(sl)
		}
		return p
	}
	if sp.Detached {
		return p
	}
	p.Links = w.Sim.BuildPiconet(p.Master, p.Slaves...)
	p.LMP = lmp.Attach(p.Master)
	for _, sl := range p.Slaves {
		p.slaveLMPs = append(p.slaveLMPs, lmp.Attach(sl))
	}
	p.Received = make([]int, len(p.Slaves))
	for j, sl := range p.Slaves {
		idx := j
		sl.OnData = func(_ *baseband.Link, payload []byte, _ uint8) {
			p.Received[idx] += len(payload)
		}
	}
	return p
}

// Controller returns the HCI controller attached to a device of an
// HCI piconet (nil if the device has none).
func (w *World) Controller(device string) *hci.Controller { return w.ctrl[device] }

// AdoptDevice registers an externally created device (a monitoring
// node, an extra interferer) as belonging to piconet index for the
// collision attribution. A scatternet bridge belongs to two piconets at
// once; by convention the build books it under stanza field A, so its
// collision pairs split the same way its presence time does.
func (w *World) AdoptDevice(d *baseband.Device, piconet int) {
	if piconet < 0 || piconet >= len(w.Piconets) {
		panic(fmt.Sprintf("netspec: piconet index %d out of range", piconet))
	}
	w.owner[d.Name()] = piconet
}

// onCollision attributes one collision pair to inter- or intra-piconet
// interference by the transmitters' owners.
func (w *World) onCollision(existing, incoming *channel.Transmission) {
	a, aok := w.owner[existing.From]
	b, bok := w.owner[incoming.From]
	if !aok || !bok {
		return
	}
	if a == b {
		w.IntraCollisions++
	} else {
		w.InterCollisions++
	}
}

// applyMode enters one PowerMode stanza's low-power mode on both ends
// of every targeted link, directly at baseband.
func (w *World) applyMode(m *PowerMode) {
	for _, p := range w.Piconets {
		if m.Piconet != AllPiconets && m.Piconet != p.Index {
			continue
		}
		if p.spec.Detached {
			continue
		}
		for j, l := range p.Links {
			if m.Slave != 0 && j != m.Slave-1 {
				continue
			}
			sl := p.Slaves[j].MasterLink()
			switch m.Kind {
			case SniffMode:
				l.EnterSniff(m.TsniffSlots, m.AttemptEvenSlots, 0)
				sl.EnterSniff(m.TsniffSlots, m.AttemptEvenSlots, 0)
			case HoldMode:
				l.EnterHoldRepeating(m.TholdSlots)
				sl.EnterHoldRepeating(m.TholdSlots)
			case ParkMode:
				l.EnterPark(m.BeaconSlots)
				sl.EnterPark(m.BeaconSlots)
			}
		}
	}
}

// DefaultFlow is the canonical end-to-end flow of a bridged world:
// from the first piconet's master to the first slave of the last
// piconet — every hop of a chain, both directions of every bridge
// window exercised on the way.
func (w *World) DefaultFlow() FlowSpec {
	last := w.Piconets[len(w.Piconets)-1]
	return FlowSpec{From: w.Piconets[0].Master.Name(), To: last.Slaves[0].Name()}
}

// runUntil advances the kernel in slot chunks until cond holds, or
// panics after limitSlots.
func (w *World) runUntil(limitSlots uint64, what string, cond func() bool) {
	deadline := w.Sim.K.Now() + sim.Time(sim.Slots(limitSlots))
	for !cond() && w.Sim.K.Now() < deadline {
		w.Sim.K.RunUntil(w.Sim.K.Now() + sim.Time(sim.Slots(16)))
	}
	if !cond() {
		panic("netspec: " + what + " timed out")
	}
}

// ConvergenceSlots returns a warm-up horizon after which an adaptive
// piconet with the given assessment window has classified at least
// twice and completed the LMP map switch: two windows plus the
// negotiated AFH instant with slack. Experiments measure after this
// horizon so every arm (off/oracle/adaptive) sees an identical
// protocol.
func ConvergenceSlots(assessWindowSlots int) uint64 {
	return uint64(2*assessWindowSlots) + 600
}
