package netspec

import (
	"math"

	"repro/internal/channel"
	"repro/internal/sim"
)

// This file holds the Placement stanza: the declarative bridge between
// a Spec and the channel's spatial medium (channel.EnableSpatial).
// Without a Placement the world stands on the paper's single shared
// ether, exactly as before — the spatial model is fully opt-in.
//
// Determinism: layouts that draw randomness (rooms, disc, the slave
// scatter) use a stream derived from the simulation seed by
// core.Simulation.DerivedRand, which does NOT advance the root RNG.
// The same seed therefore builds the exact same devices (clock phases,
// noise draws) with or without a Placement — the property the spatial
// reference-model equivalence suite pins byte for byte.

// PlacementKind selects the deployment geometry.
type PlacementKind int

// Placement geometries.
const (
	// PlaceGrid puts piconet masters on a rectangular grid (an office
	// floor): master i sits at column i%Columns, row i/Columns, with
	// SpacingM meters of pitch.
	PlaceGrid PlacementKind = iota + 1
	// PlaceRooms clusters piconets into rooms: rooms sit on their own
	// grid with SpacingM pitch and each hosts PiconetsPerRoom piconets
	// scattered uniformly within ClusterRadiusM of the room center.
	PlaceRooms
	// PlaceDisc scatters piconet masters uniformly over a disc of
	// RadiusM around the origin (a conference hall).
	PlaceDisc
)

func (k PlacementKind) String() string {
	switch k {
	case PlaceGrid:
		return "grid"
	case PlaceRooms:
		return "rooms"
	case PlaceDisc:
		return "disc"
	}
	return "PlacementKind(" + itoa(int(k)) + ")"
}

// itoa avoids pulling strconv into the hot import graph for one
// diagnostic string.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Geometry bounds: the simulator models rooms and halls, not planets.
// Bounded coordinates keep the channel's cell quantisation exact and
// platform-independent for every spec that validates.
const (
	// MinRangeM and MaxRangeM bound the radio range. MaxRangeM is wide
	// enough that a placement with RangeM = MaxRangeM covers any legal
	// floor — the "infinite range" of the equivalence harness.
	MinRangeM = 0.001
	MaxRangeM = 1e9
	// MaxFloorM bounds every layout dimension (pitch, radii, spreads).
	MaxFloorM = 1e6
)

// Placement declares the world's geometry and range model. One stanza
// covers the whole spec (the medium is shared); a nil Spec.Placement
// keeps the global ether.
type Placement struct {
	// Kind selects the deployment geometry. Required.
	Kind PlacementKind `json:"kind"`

	// RangeM is the delivery radius in meters: a receiver inside it
	// decodes the transmission, outside it hears nothing decodable.
	// Required, in [MinRangeM, MaxRangeM].
	RangeM float64 `json:"range_m"`
	// InterferenceM is the outer radius of the interference-only
	// annulus: between RangeM and InterferenceM a transmission cannot
	// be decoded but still feeds the collision resolver. Defaults to
	// RangeM (no annulus); must be in [RangeM, MaxRangeM].
	InterferenceM float64 `json:"interference_m,omitempty"`

	// SpacingM is the grid pitch (PlaceGrid: between masters,
	// PlaceRooms: between room centers), in (0, MaxFloorM]. Default 10.
	SpacingM float64 `json:"spacing_m,omitempty"`
	// Columns is the grid's column count (PlaceGrid). Defaults to
	// ceil(sqrt(piconets)) — a roughly square floor.
	Columns int `json:"columns,omitempty"`
	// RadiusM is the disc radius (PlaceDisc). Defaults to
	// SpacingM * sqrt(piconets), keeping density roughly constant as
	// worlds grow.
	RadiusM float64 `json:"radius_m,omitempty"`
	// ClusterRadiusM is the in-room scatter radius (PlaceRooms), in
	// [0, MaxFloorM]. Default SpacingM/4.
	ClusterRadiusM float64 `json:"cluster_radius_m,omitempty"`
	// PiconetsPerRoom is how many piconets share a room (PlaceRooms).
	// Default 4.
	PiconetsPerRoom int `json:"piconets_per_room,omitempty"`

	// SlaveSpreadM scatters each piconet's slaves (and detached
	// devices) uniformly within this radius of their master. Must stay
	// below RangeM so paging always reaches. Default min(2, RangeM/2).
	SlaveSpreadM float64 `json:"slave_spread_m,omitempty"`
}

// GridPlacement is an office-floor layout: masters on a grid with the
// given pitch, delivering within rangeM.
func GridPlacement(rangeM, spacingM float64) *Placement {
	return &Placement{Kind: PlaceGrid, RangeM: rangeM, SpacingM: spacingM}
}

// RoomPlacement clusters perRoom piconets per room on a room grid with
// the given pitch.
func RoomPlacement(rangeM, spacingM float64, perRoom int) *Placement {
	return &Placement{Kind: PlaceRooms, RangeM: rangeM, SpacingM: spacingM, PiconetsPerRoom: perRoom}
}

// DiscPlacement scatters masters uniformly over a disc of radiusM.
func DiscPlacement(rangeM, radiusM float64) *Placement {
	return &Placement{Kind: PlaceDisc, RangeM: rangeM, RadiusM: radiusM}
}

// WithInterference widens the stanza's interference annulus and
// returns it, for chaining onto a constructor.
func (p *Placement) WithInterference(interferenceM float64) *Placement {
	p.InterferenceM = interferenceM
	return p
}

// withDefaults fills the documented defaults in place (the stanza has
// already been deep-copied by Spec.withDefaults). n is the spec's
// piconet count, which sizes the default grid and disc.
func (p *Placement) withDefaults(n int) {
	if p.InterferenceM == 0 {
		p.InterferenceM = p.RangeM
	}
	if p.SpacingM == 0 {
		p.SpacingM = 10
	}
	if p.Columns == 0 {
		p.Columns = int(math.Ceil(math.Sqrt(float64(n))))
		if p.Columns < 1 {
			p.Columns = 1
		}
	}
	if p.RadiusM == 0 {
		p.RadiusM = p.SpacingM * math.Sqrt(float64(n))
	}
	if p.ClusterRadiusM == 0 {
		p.ClusterRadiusM = p.SpacingM / 4
	}
	if p.PiconetsPerRoom == 0 {
		p.PiconetsPerRoom = 4
	}
	if p.SlaveSpreadM == 0 {
		p.SlaveSpreadM = math.Min(2, p.RangeM/2)
	}
}

// inRange rejects NaN by construction: !(lo <= v && v <= hi) is true
// for every NaN.
func inRange(v, lo, hi float64) bool { return lo <= v && v <= hi }

// validate checks the defaulted stanza. The bounds exist for
// determinism as much as sanity: they keep every coordinate small
// enough that cell quantisation in the channel is exact.
func (p *Placement) validate() error {
	const stanza = "placement"
	if p.Kind < PlaceGrid || p.Kind > PlaceDisc {
		return stanzaErr(stanza, 0, "", "unknown placement kind %d", int(p.Kind))
	}
	if !inRange(p.RangeM, MinRangeM, MaxRangeM) {
		return stanzaErr(stanza, 0, "", "range %gm outside [%g, %g]", p.RangeM, float64(MinRangeM), float64(MaxRangeM))
	}
	if !inRange(p.InterferenceM, p.RangeM, MaxRangeM) {
		return stanzaErr(stanza, 0, "", "interference radius %gm outside [range %gm, %g]",
			p.InterferenceM, p.RangeM, float64(MaxRangeM))
	}
	if !inRange(p.SpacingM, MinRangeM, MaxFloorM) {
		return stanzaErr(stanza, 0, "", "spacing %gm outside [%g, %g]", p.SpacingM, float64(MinRangeM), float64(MaxFloorM))
	}
	if p.Columns < 1 {
		return stanzaErr(stanza, 0, "", "grid needs at least 1 column, got %d", p.Columns)
	}
	if !inRange(p.RadiusM, MinRangeM, MaxFloorM) {
		return stanzaErr(stanza, 0, "", "disc radius %gm outside [%g, %g]", p.RadiusM, float64(MinRangeM), float64(MaxFloorM))
	}
	if !inRange(p.ClusterRadiusM, 0, MaxFloorM) {
		return stanzaErr(stanza, 0, "", "cluster radius %gm outside [0, %g]", p.ClusterRadiusM, float64(MaxFloorM))
	}
	if p.PiconetsPerRoom < 1 {
		return stanzaErr(stanza, 0, "", "rooms need at least 1 piconet each, got %d", p.PiconetsPerRoom)
	}
	if !(p.SlaveSpreadM > 0 && p.SlaveSpreadM < p.RangeM) {
		return stanzaErr(stanza, 0, "", "slave spread %gm must be in (0, range %gm) so paging always reaches",
			p.SlaveSpreadM, p.RangeM)
	}
	if p.SlaveSpreadM > MaxFloorM {
		return stanzaErr(stanza, 0, "", "slave spread %gm exceeds the %g floor bound", p.SlaveSpreadM, float64(MaxFloorM))
	}
	return nil
}

// piconetLayout is one piconet's computed geometry.
type piconetLayout struct {
	master channel.Position
	slaves []channel.Position
}

// layout computes every piconet's positions with a fixed draw order
// (piconet by piconet: master first, then slaves 1..k), so the layout
// is a pure function of (spec, rng stream).
func (s Spec) layout(rng *sim.Rand) []piconetLayout {
	p := s.Placement
	out := make([]piconetLayout, len(s.Piconets))
	for i := range s.Piconets {
		var m channel.Position
		switch p.Kind {
		case PlaceGrid:
			m = channel.Position{
				X: float64(i%p.Columns) * p.SpacingM,
				Y: float64(i/p.Columns) * p.SpacingM,
			}
		case PlaceRooms:
			room := i / p.PiconetsPerRoom
			rooms := (len(s.Piconets) + p.PiconetsPerRoom - 1) / p.PiconetsPerRoom
			cols := int(math.Ceil(math.Sqrt(float64(rooms))))
			center := channel.Position{
				X: float64(room%cols) * p.SpacingM,
				Y: float64(room/cols) * p.SpacingM,
			}
			m = scatter(rng, center, p.ClusterRadiusM)
		case PlaceDisc:
			m = scatter(rng, channel.Position{}, p.RadiusM)
		}
		out[i].master = m
		out[i].slaves = make([]channel.Position, s.Piconets[i].Slaves)
		for j := range out[i].slaves {
			out[i].slaves[j] = scatter(rng, m, p.SlaveSpreadM)
		}
	}
	return out
}

// scatter draws a uniform point on the disc of radius r around c
// (exactly two draws, so the layout's draw order stays fixed even for
// r = 0).
func scatter(rng *sim.Rand, c channel.Position, r float64) channel.Position {
	rad := r * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return channel.Position{X: c.X + rad*math.Cos(theta), Y: c.Y + rad*math.Sin(theta)}
}

// bridgePosition is the midpoint of the two joined masters — the spot
// a real deployment would station a relay.
func bridgePosition(a, b channel.Position) channel.Position {
	return channel.Position{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
}

// checkBridgeReach verifies, post-layout, that every bridge's midpoint
// position can reach both of its masters: layouts are (for rooms and
// disc) random, so this is a build-time check rather than a static
// validation.
func (w *World) checkBridgeReach() error {
	p := w.spec.Placement
	for i := range w.spec.Bridges {
		b := &w.spec.Bridges[i]
		mid := bridgePosition(w.layout[b.A].master, w.layout[b.B].master)
		for _, pi := range []int{b.A, b.B} {
			if d := math.Sqrt(dist2(mid, w.layout[pi].master)); d > p.RangeM {
				return stanzaErr("bridge", i, "",
					"placement puts the bridge %.1fm from piconet %d's master — beyond the %.1fm range",
					d, pi, p.RangeM)
			}
		}
	}
	return nil
}

func dist2(a, b channel.Position) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}
