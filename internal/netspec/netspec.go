// Package netspec is the declarative topology layer of the simulator:
// one Spec value describes a whole radio world — piconets, scatternet
// bridges, traffic sources (saturating ACL pumps, SCO voice, poisson
// bursts, end-to-end relayed flows), jammers, power modes and metric
// probes — and one Build call compiles it onto the baseband, LMP,
// L2CAP and channel machinery the lower layers provide. Every world
// the repo knows how to stand up (a lone piconet of the paper's Fig 5,
// the multi-piconet coexistence experiments, bridged scatternet
// chains, mixed voice/data rooms) is a Spec; the coex and scatternet
// packages remain as thin deprecated adapters over this one.
//
// The layer exists so scenario diversity stops costing boilerplate:
// adding a workload means writing a Spec literal, not threading a new
// config struct through four call sites. Validation names the stanza
// that is wrong, construction is deterministic (the same Spec on the
// same seed reproduces a run bit for bit), and the built World exposes
// one Metrics surface — goodput, latency samples, per-frequency
// channel stats, queue occupancy — so callers stop hand-collecting
// counters.
package netspec

import (
	"fmt"

	"repro/internal/hop"
	"repro/internal/packet"
)

// AllPiconets targets a Traffic, PowerMode or Probe stanza at every
// piconet of the spec.
const AllPiconets = -1

// TpollNever pushes the master's polling interval beyond any
// realistic horizon. Saturating-pump worlds use it so the pumped data
// is the only poll (the coexistence experiments' discipline).
const TpollNever = 1 << 20

// AFHMode selects how a piconet manages its hop set.
type AFHMode int

// Hop-set management modes.
const (
	// AFHOff hops the classic full 79-channel sequence.
	AFHOff AFHMode = iota
	// AFHOracle installs ExcludeRange(OracleLo, OracleHi) over LMP right
	// after the piconets are built — the hand-picked map of the original
	// coexistence experiments, kept as the upper reference.
	AFHOracle
	// AFHAdaptive learns the map: every AssessWindowSlots the master
	// classifies channels from its per-frequency reception tallies and
	// installs the good set over LMP when the classification changes.
	AFHAdaptive
)

// Spec is one declarative world description. The zero value is an
// empty world; stanzas are appended (or assembled with the option
// constructors) and compiled by Build.
type Spec struct {
	// Piconets are the piconet stanzas, in build order. Index in this
	// slice is the piconet's identity everywhere else in the spec.
	Piconets []Piconet `json:"piconets"`
	// Bridges join pairs of piconets into a scatternet.
	Bridges []Bridge `json:"bridges,omitempty"`
	// Traffic stanzas are started by World.Start, in order.
	Traffic []Traffic `json:"traffic,omitempty"`
	// Jammers are static interferers installed after construction, so
	// topology setup happens on a clean medium and every arm of an
	// experiment sees an identical build.
	Jammers []Jammer `json:"jammers,omitempty"`
	// Modes put slaves into low-power modes at the end of construction.
	Modes []PowerMode `json:"modes,omitempty"`
	// Probes name metric selections surfaced by World.Metrics.
	Probes []Probe `json:"probes,omitempty"`
	// Placement, when set, switches the world onto the spatial medium:
	// devices get positions from the declared geometry and transmissions
	// follow the path-loss range model (see placement.go). Nil keeps the
	// paper's single shared ether.
	Placement *Placement `json:"placement,omitempty"`
}

// Piconet declares one master-plus-slaves group.
type Piconet struct {
	// Name is the device-name prefix: the master is "<Name>.master",
	// the slaves "<Name>.slave1"... Defaults to "p<index>".
	Name string `json:"name,omitempty"`
	// Slaves is the number of regular slaves, 1..7 (bridges hosted by
	// this piconet count against the same 7 active members). Required:
	// a zero-slave stanza is a validation error, not a default.
	Slaves int `json:"slaves"`
	// Detached builds the devices without paging them together: no
	// links, no LMP, no traffic. Inquiry/page procedures (or an HCI
	// host) drive connection establishment instead.
	Detached bool `json:"detached,omitempty"`
	// HCI attaches an hci.Controller to every device of the piconet so
	// a host drives it through commands and events. Implies Detached.
	HCI bool `json:"hci,omitempty"`
	// TpollSlots is the master's maximum polling interval. Zero takes
	// the baseband default (50 slots) in bridge-free worlds and 64 when
	// the spec has bridges, whose mostly idle links must stay
	// supervised by regular POLLs; saturating-pump worlds typically set
	// TpollNever so the pumped data is the only poll.
	TpollSlots int `json:"tpoll_slots,omitempty"`
	// R1PageScan keeps the slaves' standard page-scan discipline (the
	// spec's R1: an 18-slot window every 2048 slots) instead of the
	// continuous scanning multi-piconet construction defaults to so
	// foreign-piconet interference cannot starve the page handshake.
	// The single-piconet paper scenarios set it to reproduce the
	// standard's scan behaviour.
	R1PageScan bool `json:"r1_page_scan,omitempty"`

	// AFH selects the hop-set management mode (default AFHOff).
	AFH AFHMode `json:"afh,omitempty"`
	// OracleLo..OracleHi is the band AFHOracle excludes.
	OracleLo int `json:"oracle_lo,omitempty"`
	OracleHi int `json:"oracle_hi,omitempty"`
	// AssessWindowSlots is the classification period of AFHAdaptive
	// (default 2000 slots = 1.25 s).
	AssessWindowSlots int `json:"assess_window_slots,omitempty"`
	// MinObservations is how many receptions a channel needs inside one
	// window before its classification may change (default 4).
	MinObservations int `json:"min_observations,omitempty"`
	// BadThreshold is the error fraction at or above which an observed
	// channel is classified bad (default 0.25).
	BadThreshold float64 `json:"bad_threshold,omitempty"`
	// ReprobeWindows bounds how long a bad verdict can outlive its
	// evidence (default 8): after that many silent windows an excluded
	// channel is re-admitted on probation.
	ReprobeWindows int `json:"reprobe_windows,omitempty"`
}

// Bridge declares one scatternet bridge: a device paged into piconets
// A and B as a slave of both, timesharing its single radio between the
// two hop sequences and relaying L2CAP frames store-and-forward.
type Bridge struct {
	// A and B are the joined piconets' indices (A first: the bridge's
	// collisions are attributed to A, matching its lower presence half).
	A int `json:"a"`
	B int `json:"b"`

	// PresencePeriodSlots is the timesharing period T: the bridge
	// cycles through both piconets once per period. Must be a multiple
	// of 4 (windows land on even-slot boundaries); default 256 slots.
	PresencePeriodSlots int `json:"presence_period_slots,omitempty"`
	// PresenceDuty is the fraction of the period the bridge radio is
	// present in some piconet, split evenly between the two. In (0, 1];
	// default 0.8.
	PresenceDuty float64 `json:"presence_duty,omitempty"`
	// GuardEvenSlots shortens each presence window by this many even
	// slots so a multi-slot exchange never straddles a retune boundary
	// (default 2).
	GuardEvenSlots int `json:"guard_even_slots,omitempty"`
	// PacketType carries the bridge's relay links (default DM1).
	PacketType packet.Type `json:"packet_type,omitempty"`
	// PumpDepth bounds how many frames the bridge drain keeps in a
	// baseband transmit queue; beyond it, backpressure stays at L2CAP
	// where the queue statistics live (default 2).
	PumpDepth int `json:"pump_depth,omitempty"`
	// MaxQueueFrames bounds the store-and-forward backlog (both
	// directions pooled); frames beyond it are dropped and counted
	// (default 32).
	MaxQueueFrames int `json:"max_queue_frames,omitempty"`
}

// TrafficKind selects a traffic stanza's generator.
type TrafficKind int

// Traffic kinds.
const (
	// TrafficBulk keeps a saturating master-to-slave ACL pump running
	// on every targeted link (PumpDepth packets queued, refilled every
	// two slots).
	TrafficBulk TrafficKind = iota + 1
	// TrafficVoice reserves an SCO voice channel master-to-slave and
	// streams patterned frames, counting delivery and bit-perfection.
	TrafficVoice
	// TrafficPoisson sends BurstBytes ACL bursts with exponentially
	// distributed gaps (mean MeanGapSlots) on every targeted link.
	TrafficPoisson
	// TrafficFlow streams SDUs end to end between two named devices
	// across the scatternet relay (requires at least one bridge).
	TrafficFlow
)

func (k TrafficKind) String() string {
	switch k {
	case TrafficBulk:
		return "bulk"
	case TrafficVoice:
		return "voice"
	case TrafficPoisson:
		return "poisson"
	case TrafficFlow:
		return "flow"
	}
	return fmt.Sprintf("TrafficKind(%d)", int(k))
}

// Traffic declares one traffic source.
type Traffic struct {
	// Kind selects the generator. Required.
	Kind TrafficKind `json:"kind"`

	// Piconet targets bulk/voice/poisson stanzas (AllPiconets = every
	// piconet). Ignored by flows.
	Piconet int `json:"piconet,omitempty"`
	// Slave narrows the target to one slave (1-based; 0 = every slave
	// of the piconet).
	Slave int `json:"slave,omitempty"`

	// PacketType is the ACL carrier for bulk/poisson (default DM1) or
	// the HV voice type for voice (default HV3).
	PacketType packet.Type `json:"packet_type,omitempty"`
	// PumpDepth is the transmit-queue depth a bulk pump maintains
	// (default 4) or a flow origin is gated on (default 2).
	PumpDepth int `json:"pump_depth,omitempty"`

	// TscoSlots is the voice reservation period (default full rate for
	// the type: HV1 2, HV2 4, HV3 6).
	TscoSlots int `json:"tsco_slots,omitempty"`
	// DscoEven is the voice reservation offset in even-slot units, used
	// to interleave multiple SCO links (default 0).
	DscoEven int `json:"dsco_even,omitempty"`

	// MeanGapSlots is the poisson mean inter-burst gap (default 100).
	MeanGapSlots float64 `json:"mean_gap_slots,omitempty"`
	// BurstBytes is the poisson burst size (default 256).
	BurstBytes int `json:"burst_bytes,omitempty"`

	// From and To name the flow endpoints (device names; see
	// MasterName/SlaveName).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// SDUBytes is the flow SDU payload size (default 64).
	SDUBytes int `json:"sdu_bytes,omitempty"`
}

// Jammer declares a static interferer occupying channels Lo..Hi: a hit
// transmission is destroyed with probability Duty.
type Jammer struct {
	Lo   int     `json:"lo"`
	Hi   int     `json:"hi"`
	Duty float64 `json:"duty"`
}

// PowerKind selects a low-power mode.
type PowerKind int

// Low-power modes a PowerMode stanza can request.
const (
	// SniffMode puts the link into periodic sniff (TsniffSlots anchor
	// spacing, AttemptEvenSlots window).
	SniffMode PowerKind = iota + 1
	// HoldMode cycles the link through repeating hold periods of
	// TholdSlots.
	HoldMode
	// ParkMode parks the slave on the beacon channel (BeaconSlots).
	ParkMode
)

func (k PowerKind) String() string {
	switch k {
	case SniffMode:
		return "sniff"
	case HoldMode:
		return "hold"
	case ParkMode:
		return "park"
	}
	return fmt.Sprintf("PowerKind(%d)", int(k))
}

// PowerMode declares a low-power mode entered at the end of
// construction, directly at baseband on both ends of the link (the
// paper's Figs 9-12 workloads). LMP-negotiated transitions remain
// available at run time through the piconet's LMP manager.
type PowerMode struct {
	// Kind selects the mode. Required.
	Kind PowerKind `json:"kind"`
	// Piconet targets the stanza (AllPiconets = every piconet).
	Piconet int `json:"piconet,omitempty"`
	// Slave narrows it to one slave (1-based; 0 = every slave).
	Slave int `json:"slave,omitempty"`
	// TsniffSlots is the sniff anchor period (default 100).
	TsniffSlots int `json:"tsniff_slots,omitempty"`
	// AttemptEvenSlots is the sniff attempt window (default 2).
	AttemptEvenSlots int `json:"attempt_even_slots,omitempty"`
	// TholdSlots is the repeating hold period (default 400).
	TholdSlots int `json:"thold_slots,omitempty"`
	// BeaconSlots is the park beacon interval (default 64).
	BeaconSlots int `json:"beacon_slots,omitempty"`
}

// ProbeKind selects what a probe samples.
type ProbeKind int

// Probe kinds.
const (
	// ProbeSlaveActivity samples every targeted slave's TX/RX activity
	// fractions since the last ResetMetrics.
	ProbeSlaveActivity ProbeKind = iota + 1
	// ProbeMasterActivity samples the targeted masters' activity.
	ProbeMasterActivity
	// ProbeBridgeActivity samples every bridge's activity.
	ProbeBridgeActivity
	// ProbePerFreq snapshots the per-RF-channel stats delta of the
	// measurement window (also available world-wide via Metrics.PerFreq).
	ProbePerFreq
)

// Probe names one metric selection; World.Metrics reports it under
// Probes[Name].
type Probe struct {
	// Name keys the result (default "probe<index>").
	Name string `json:"name,omitempty"`
	// Kind selects what is sampled. Required.
	Kind ProbeKind `json:"kind"`
	// Piconet targets activity probes (AllPiconets = every piconet).
	Piconet int `json:"piconet,omitempty"`
}

// MasterName returns the default device name of piconet i's master.
func MasterName(i int) string { return fmt.Sprintf("p%d.master", i) }

// SlaveName returns the default device name of slave j (1-based) in
// piconet i.
func SlaveName(i, j int) string { return fmt.Sprintf("p%d.slave%d", i, j) }

// BridgeName returns the device name of bridge i.
func BridgeName(i int) string { return fmt.Sprintf("bridge%d", i) }

// StanzaError reports a validation failure, naming the offending
// stanza by kind, index and (when set) name.
type StanzaError struct {
	// Stanza is the stanza kind: "piconet", "bridge", "traffic",
	// "jammer", "power", "probe".
	Stanza string
	// Index is the stanza's position in its Spec slice.
	Index int
	// Name is the stanza's name, when it has one.
	Name string
	// Err is the underlying complaint.
	Err error
}

func (e *StanzaError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("netspec: %s[%d] %q: %v", e.Stanza, e.Index, e.Name, e.Err)
	}
	return fmt.Sprintf("netspec: %s[%d]: %v", e.Stanza, e.Index, e.Err)
}

func (e *StanzaError) Unwrap() error { return e.Err }

func stanzaErr(stanza string, index int, name, format string, args ...any) error {
	return &StanzaError{Stanza: stanza, Index: index, Name: name, Err: fmt.Errorf(format, args...)}
}

// fullRateTsco is the full-rate SCO period per voice type.
var fullRateTsco = map[packet.Type]int{
	packet.TypeHV1: 2, packet.TypeHV2: 4, packet.TypeHV3: 6,
}

// withDefaults returns a deep copy of the spec with every zero field
// filled with its documented default. Validation and Build both work
// on the resolved copy, so a Spec literal and the option constructors
// behave identically.
func (s Spec) withDefaults() Spec {
	out := Spec{
		Piconets: append([]Piconet(nil), s.Piconets...),
		Bridges:  append([]Bridge(nil), s.Bridges...),
		Traffic:  append([]Traffic(nil), s.Traffic...),
		Jammers:  append([]Jammer(nil), s.Jammers...),
		Modes:    append([]PowerMode(nil), s.Modes...),
		Probes:   append([]Probe(nil), s.Probes...),
	}
	if s.Placement != nil {
		pl := *s.Placement
		pl.withDefaults(len(out.Piconets))
		out.Placement = &pl
	}
	for i := range out.Piconets {
		p := &out.Piconets[i]
		if p.Name == "" {
			p.Name = fmt.Sprintf("p%d", i)
		}
		if p.HCI {
			p.Detached = true
		}
		if p.TpollSlots == 0 && len(s.Bridges) > 0 {
			p.TpollSlots = 64
		}
		if p.AssessWindowSlots == 0 {
			p.AssessWindowSlots = 2000
		}
		if p.MinObservations == 0 {
			p.MinObservations = 4
		}
		if p.BadThreshold == 0 {
			p.BadThreshold = 0.25
		}
		if p.ReprobeWindows == 0 {
			p.ReprobeWindows = 8
		}
	}
	for i := range out.Bridges {
		b := &out.Bridges[i]
		if b.PresencePeriodSlots == 0 {
			b.PresencePeriodSlots = 256
		}
		if b.PresenceDuty == 0 {
			b.PresenceDuty = 0.8
		}
		if b.GuardEvenSlots == 0 {
			b.GuardEvenSlots = 2
		}
		if b.PacketType == 0 {
			b.PacketType = packet.TypeDM1
		}
		if b.PumpDepth == 0 {
			b.PumpDepth = 2
		}
		if b.MaxQueueFrames == 0 {
			b.MaxQueueFrames = 32
		}
	}
	for i := range out.Traffic {
		t := &out.Traffic[i]
		switch t.Kind {
		case TrafficVoice:
			if t.PacketType == 0 {
				t.PacketType = packet.TypeHV3
			}
			if t.TscoSlots == 0 {
				t.TscoSlots = fullRateTsco[t.PacketType]
			}
		default:
			if t.PacketType == 0 {
				t.PacketType = packet.TypeDM1
			}
		}
		if t.PumpDepth == 0 {
			if t.Kind == TrafficFlow {
				t.PumpDepth = 2
			} else {
				t.PumpDepth = 4
			}
		}
		if t.MeanGapSlots == 0 {
			t.MeanGapSlots = 100
		}
		if t.BurstBytes == 0 {
			t.BurstBytes = 256
		}
		if t.SDUBytes == 0 {
			t.SDUBytes = 64
		}
	}
	for i := range out.Modes {
		m := &out.Modes[i]
		if m.TsniffSlots == 0 {
			m.TsniffSlots = 100
		}
		if m.AttemptEvenSlots == 0 {
			m.AttemptEvenSlots = 2
		}
		if m.TholdSlots == 0 {
			m.TholdSlots = 400
		}
		if m.BeaconSlots == 0 {
			m.BeaconSlots = 64
		}
	}
	for i := range out.Probes {
		if out.Probes[i].Name == "" {
			out.Probes[i].Name = fmt.Sprintf("probe%d", i)
		}
	}
	return out
}

// Resolved returns a copy of the spec with every documented default
// filled in — the exact form Build compiles. Adapters use it to read
// the engine's defaults back instead of duplicating the table.
func (s Spec) Resolved() Spec { return s.withDefaults() }

// windowEvenSlots is a bridge's per-membership sniff attempt: half the
// duty share of the period, in even slots, minus the guard.
func (b *Bridge) windowEvenSlots() int {
	return int(b.PresenceDuty*float64(b.PresencePeriodSlots)/4) - b.GuardEvenSlots
}

// Validate checks the spec (with defaults applied) and returns the
// first violation as a *StanzaError naming the offending stanza.
func (s Spec) Validate() error { return s.withDefaults().validate() }

func (s Spec) validate() error {
	if len(s.Piconets) == 0 {
		return stanzaErr("spec", 0, "", "declares no piconets")
	}
	if s.Placement != nil {
		if err := s.Placement.validate(); err != nil {
			return err
		}
	}
	// Bridges hosted per piconet count against the 7 active members.
	hosted := make([]int, len(s.Piconets))
	for i := range s.Bridges {
		b := &s.Bridges[i]
		for _, pi := range []int{b.A, b.B} {
			if pi < 0 || pi >= len(s.Piconets) {
				return stanzaErr("bridge", i, "", "references unknown piconet %d (world has %d)", pi, len(s.Piconets))
			}
			hosted[pi]++
		}
		if b.A == b.B {
			return stanzaErr("bridge", i, "", "joins piconet %d to itself", b.A)
		}
		if s.Piconets[b.A].Detached || s.Piconets[b.B].Detached {
			return stanzaErr("bridge", i, "", "cannot bridge a detached piconet")
		}
		if b.PresencePeriodSlots < 64 || b.PresencePeriodSlots%4 != 0 {
			return stanzaErr("bridge", i, "", "presence period must be a multiple of 4 and >= 64, got %d", b.PresencePeriodSlots)
		}
		if b.PresenceDuty < 0 || b.PresenceDuty > 1 {
			return stanzaErr("bridge", i, "", "presence duty %g out of (0,1]", b.PresenceDuty)
		}
		if b.windowEvenSlots() < 1 {
			return stanzaErr("bridge", i, "", "duty %g leaves no presence window after the %d-even-slot guard",
				b.PresenceDuty, b.GuardEvenSlots)
		}
		if b.PumpDepth < 1 || b.MaxQueueFrames < 1 {
			return stanzaErr("bridge", i, "", "pump depth and queue bound must be >= 1, got %d and %d",
				b.PumpDepth, b.MaxQueueFrames)
		}
	}
	// Validation sees the defaulted spec, so Name is always set here.
	// Duplicates would collide in the device table (master and slave
	// names derive from the piconet name), which panics deep in core —
	// reject them where the wire format can report the stanza instead.
	names := make(map[string]int)
	for i := range s.Piconets {
		p := &s.Piconets[i]
		if prev, dup := names[p.Name]; dup {
			return stanzaErr("piconet", i, p.Name, "duplicate piconet name (also piconet %d)", prev)
		}
		names[p.Name] = i
		if p.Slaves < 1 {
			return stanzaErr("piconet", i, p.Name, "needs at least 1 slave, got %d", p.Slaves)
		}
		if p.Slaves+hosted[i] > 7 {
			return stanzaErr("piconet", i, p.Name, "%d slaves and %d bridges exceed the 7 active members",
				p.Slaves, hosted[i])
		}
		// Negative Tpoll would wrap through baseband's uint64 slot
		// conversion; TpollNever is the documented "data is the poll"
		// ceiling.
		if p.TpollSlots < 0 || p.TpollSlots > TpollNever {
			return stanzaErr("piconet", i, p.Name, "tpoll %d outside [0, %d]", p.TpollSlots, TpollNever)
		}
		if p.AFH == AFHOracle {
			// An unset band would silently install ExcludeRange(0, 0) — a
			// 78-channel map indistinguishable from plain hopping — and
			// poison every learned-vs-oracle comparison built on it.
			if p.OracleLo == 0 && p.OracleHi == 0 {
				return stanzaErr("piconet", i, p.Name, "AFHOracle requires OracleLo/OracleHi")
			}
			if p.OracleLo < 0 || p.OracleHi < p.OracleLo || p.OracleHi >= hop.NumChannels {
				return stanzaErr("piconet", i, p.Name, "invalid oracle band %d..%d", p.OracleLo, p.OracleHi)
			}
		}
		if p.AssessWindowSlots < 1 || p.MinObservations < 0 || p.ReprobeWindows < 0 ||
			p.BadThreshold < 0 || p.BadThreshold > 1 {
			return stanzaErr("piconet", i, p.Name, "invalid classifier config (window %d, min obs %d, reprobe %d, threshold %g)",
				p.AssessWindowSlots, p.MinObservations, p.ReprobeWindows, p.BadThreshold)
		}
		if p.Detached && hosted[i] > 0 {
			return stanzaErr("piconet", i, p.Name, "detached piconet cannot host a bridge")
		}
	}
	if err := s.validateTraffic(); err != nil {
		return err
	}
	for i := range s.Jammers {
		j := &s.Jammers[i]
		if j.Lo < 0 || j.Hi < j.Lo || j.Hi >= hop.NumChannels {
			return stanzaErr("jammer", i, "", "band %d..%d outside 0..%d", j.Lo, j.Hi, hop.NumChannels-1)
		}
		if j.Duty < 0 || j.Duty > 1 {
			return stanzaErr("jammer", i, "", "duty %g out of [0,1]", j.Duty)
		}
	}
	for i := range s.Modes {
		m := &s.Modes[i]
		if m.Kind < SniffMode || m.Kind > ParkMode {
			return stanzaErr("power", i, "", "unknown mode kind %d", int(m.Kind))
		}
		if err := s.checkTarget("power", i, "", m.Piconet, m.Slave, false); err != nil {
			return err
		}
		if m.TsniffSlots < 1 || m.AttemptEvenSlots < 1 || m.TholdSlots < 1 || m.BeaconSlots < 1 {
			return stanzaErr("power", i, "", "mode parameters must be >= 1 (tsniff %d, attempt %d, thold %d, beacon %d)",
				m.TsniffSlots, m.AttemptEvenSlots, m.TholdSlots, m.BeaconSlots)
		}
		// Baseband invariants, enforced here so a wire spec fails with a
		// stanza diagnostic instead of a panic deep in EnterSniff/Park.
		switch m.Kind {
		case SniffMode:
			if m.TsniffSlots < 2 || m.TsniffSlots%2 != 0 {
				return stanzaErr("power", i, "", "Tsniff must be even and >= 2, got %d", m.TsniffSlots)
			}
			if m.AttemptEvenSlots > m.TsniffSlots/2 {
				return stanzaErr("power", i, "", "sniff attempt %d exceeds Tsniff/2 (%d)", m.AttemptEvenSlots, m.TsniffSlots/2)
			}
		case ParkMode:
			if m.BeaconSlots < 2 || m.BeaconSlots%2 != 0 {
				return stanzaErr("power", i, "", "beacon period must be even and >= 2, got %d", m.BeaconSlots)
			}
		}
	}
	seen := make(map[string]bool)
	for i := range s.Probes {
		p := &s.Probes[i]
		if p.Kind < ProbeSlaveActivity || p.Kind > ProbePerFreq {
			return stanzaErr("probe", i, p.Name, "unknown probe kind %d", int(p.Kind))
		}
		if seen[p.Name] {
			return stanzaErr("probe", i, p.Name, "duplicate probe name")
		}
		seen[p.Name] = true
		if p.Kind == ProbeBridgeActivity && len(s.Bridges) == 0 {
			return stanzaErr("probe", i, p.Name, "bridge probe in a world without bridges")
		}
		if p.Kind == ProbeSlaveActivity || p.Kind == ProbeMasterActivity {
			if err := s.checkTarget("probe", i, p.Name, p.Piconet, 0, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkTarget validates a (piconet, slave) stanza target. Detached
// piconets are valid targets only where detachedOK.
func (s Spec) checkTarget(stanza string, idx int, name string, piconet, slave int, detachedOK bool) error {
	if piconet == AllPiconets {
		if slave != 0 {
			return stanzaErr(stanza, idx, name, "slave %d cannot combine with AllPiconets", slave)
		}
		return nil
	}
	if piconet < 0 || piconet >= len(s.Piconets) {
		return stanzaErr(stanza, idx, name, "references unknown piconet %d (world has %d)", piconet, len(s.Piconets))
	}
	p := &s.Piconets[piconet]
	if !detachedOK && p.Detached {
		return stanzaErr(stanza, idx, name, "targets detached piconet %d", piconet)
	}
	if slave < 0 || slave > p.Slaves {
		return stanzaErr(stanza, idx, name, "slave %d out of piconet %d's 1..%d", slave, piconet, p.Slaves)
	}
	return nil
}

// validateTraffic checks every traffic stanza, including SCO
// reservation overlap across the voice stanzas of one piconet.
func (s Spec) validateTraffic() error {
	bridged := len(s.Bridges) > 0
	// Per-piconet SCO reservations on the master: period (even slots)
	// and offset, with the stanza index for the error message.
	type resv struct {
		period, offset, stanza int
	}
	scos := make(map[int][]resv)
	// One ACL pump per link: a second bulk/poisson stanza on the same
	// link would silently overwrite the first one's packet type and
	// double the load.
	type linkKey struct{ piconet, slave int }
	pumps := make(map[linkKey]int)
	for i := range s.Traffic {
		t := &s.Traffic[i]
		switch t.Kind {
		case TrafficBulk, TrafficPoisson:
			if err := s.checkTarget("traffic", i, "", t.Piconet, t.Slave, false); err != nil {
				return err
			}
			for _, pi := range s.targetPiconets(t.Piconet) {
				slaves := []int{t.Slave}
				if t.Slave == 0 {
					slaves = slaves[:0]
					for j := 1; j <= s.Piconets[pi].Slaves; j++ {
						slaves = append(slaves, j)
					}
				}
				for _, sl := range slaves {
					k := linkKey{pi, sl}
					if prev, dup := pumps[k]; dup {
						return stanzaErr("traffic", i, "",
							"link p%d.slave%d already carries ACL traffic[%d]", pi, sl, prev)
					}
					pumps[k] = i
				}
			}
			if bridged {
				// Relay worlds route all host traffic through L2CAP; a raw
				// ACL pump would feed unparseable frames to the mux.
				return stanzaErr("traffic", i, "", "%v traffic cannot share a world with bridges; use flows", t.Kind)
			}
			if t.PumpDepth < 1 {
				return stanzaErr("traffic", i, "", "pump depth must be >= 1, got %d", t.PumpDepth)
			}
			if t.Kind == TrafficPoisson && (t.MeanGapSlots <= 0 || t.BurstBytes < 1) {
				return stanzaErr("traffic", i, "", "poisson needs positive mean gap and burst size, got %g and %d",
					t.MeanGapSlots, t.BurstBytes)
			}
			if t.PacketType.IsSCO() {
				return stanzaErr("traffic", i, "", "%v is not an ACL carrier", t.PacketType)
			}
		case TrafficVoice:
			if err := s.checkTarget("traffic", i, "", t.Piconet, t.Slave, false); err != nil {
				return err
			}
			if !t.PacketType.IsSCO() {
				return stanzaErr("traffic", i, "", "%v is not a voice packet type", t.PacketType)
			}
			min := fullRateTsco[t.PacketType]
			if t.TscoSlots < min || t.TscoSlots%2 != 0 {
				return stanzaErr("traffic", i, "", "%v needs an even Tsco >= %d, got %d", t.PacketType, min, t.TscoSlots)
			}
			// The reservation wheel indexes even slots modulo Tsco/2;
			// offsets outside [0, Tsco/2) alias through unsigned wrap at
			// runtime and would desynchronise the overlap check below.
			if t.DscoEven < 0 || t.DscoEven >= t.TscoSlots/2 {
				return stanzaErr("traffic", i, "", "Dsco %d outside [0, Tsco/2 = %d)", t.DscoEven, t.TscoSlots/2)
			}
			for _, pi := range s.targetPiconets(t.Piconet) {
				links := 1
				if t.Slave == 0 {
					links = s.Piconets[pi].Slaves
				}
				for k := 0; k < links; k++ {
					nr := resv{period: t.TscoSlots / 2, offset: t.DscoEven + k, stanza: i}
					for _, r := range scos[pi] {
						if scoOverlap(r.period, r.offset, nr.period, nr.offset) {
							return stanzaErr("traffic", i, "",
								"SCO reservation (Tsco %d, Dsco %d) on piconet %d overlaps traffic[%d]",
								t.TscoSlots, nr.offset, pi, r.stanza)
						}
					}
					scos[pi] = append(scos[pi], nr)
				}
			}
		case TrafficFlow:
			if !bridged {
				return stanzaErr("traffic", i, "", "flow traffic needs at least one bridge")
			}
			names := s.deviceNames()
			for _, end := range []string{t.From, t.To} {
				if !names[end] {
					return stanzaErr("traffic", i, "", "flow endpoint %q is not a device of this spec", end)
				}
			}
			if t.From == t.To {
				return stanzaErr("traffic", i, "", "flow endpoints coincide (%q)", t.From)
			}
			for bi := range s.Bridges {
				if t.From == BridgeName(bi) || t.To == BridgeName(bi) {
					return stanzaErr("traffic", i, "",
						"bridges relay, they neither originate nor terminate flows (%q)", BridgeName(bi))
				}
			}
			if t.SDUBytes < 1 || t.PumpDepth < 1 {
				return stanzaErr("traffic", i, "", "SDU size and pump depth must be >= 1, got %d and %d",
					t.SDUBytes, t.PumpDepth)
			}
		default:
			return stanzaErr("traffic", i, "", "missing traffic kind")
		}
	}
	return nil
}

// targetPiconets expands a stanza's piconet selector into the
// connected piconet indices it covers.
func (s Spec) targetPiconets(piconet int) []int {
	if piconet != AllPiconets {
		return []int{piconet}
	}
	var out []int
	for pi := range s.Piconets {
		if !s.Piconets[pi].Detached {
			out = append(out, pi)
		}
	}
	return out
}

// scoOverlap reports whether two SCO reservations ever claim the same
// even slot: with periods p1, p2 and offsets d1, d2 that happens iff
// gcd(p1, p2) divides d1-d2.
func scoOverlap(p1, d1, p2, d2 int) bool {
	d := d1 - d2
	if d < 0 {
		d = -d
	}
	return d%gcd(p1, p2) == 0
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// deviceNames lists every device name the spec will create, for flow
// endpoint validation.
func (s Spec) deviceNames() map[string]bool {
	out := make(map[string]bool)
	for i := range s.Piconets {
		p := &s.Piconets[i]
		out[p.Name+".master"] = true
		for j := 1; j <= p.Slaves; j++ {
			out[fmt.Sprintf("%s.slave%d", p.Name, j)] = true
		}
	}
	for i := range s.Bridges {
		out[BridgeName(i)] = true
	}
	return out
}
