package netspec

import (
	"math"

	"repro/internal/baseband"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Every periodic driver of a built world — traffic pumps, the adaptive
// classifier, the bridge presence scheduler and drain — is one
// self-rescheduling closure. Each is registered as a pump: the closure
// records its pending event's ID every time it re-arms itself, so a
// checkpoint can capture the event's exact (at, seq, shard) position
// via Kernel.EventInfo, and a restored world can rebuild the closure
// from a small serialized descriptor and re-arm it through the shared
// sim.RearmSet alongside the baseband timers.

type pumpKind uint8

// Pump kinds (serialized in checkpoints — append only).
const (
	pumpBulk pumpKind = iota + 1
	pumpPoisson
	pumpFlow
	pumpClassifier
	pumpSched
	pumpDrain
)

// PumpArm is one pump's serialized descriptor: enough identity and
// parameters to rebuild its closure in a restored world, plus the
// pending event's captured position. Restore never consults the spec's
// traffic stanzas — flows can also be started dynamically (StartFlows),
// so the descriptor is self-contained.
type PumpArm struct {
	Kind pumpKind
	// Piconet and Slave (0-based) locate bulk, poisson and classifier
	// pumps; Flow indexes World.Flows; Bridge indexes World.Bridges.
	Piconet, Slave int
	Flow           int
	Bridge         int
	// Depth is the bulk refill / flow gate depth; Bytes the bulk chunk,
	// poisson burst or flow SDU size; MeanGap the poisson mean.
	Depth   int
	Bytes   int
	MeanGap float64
	// RNG is the poisson source's captured stream position.
	RNG uint64
	// NextK is the presence scheduler's next half-period index.
	NextK uint64
	// At, Seq and Shard pin the pending event's captured position.
	At    sim.Time
	Seq   uint64
	Shard int
}

// pump is one live self-rescheduling loop.
type pump struct {
	arm   PumpArm
	dev   *baseband.Device // scheduling device; nil = kernel-scheduled
	rng   *sim.Rand        // poisson source, nil otherwise
	event func()           // what the pending event runs when it fires
	start func()           // initial arming, invoked by World.Start
	id    sim.EventID      // the pending event, refreshed on every re-arm
	nextK uint64           // presence scheduler position
}

func (w *World) addPump(pu *pump) *pump {
	w.pumps = append(w.pumps, pu)
	return pu
}

// rearm schedules the pump's pending event back at its captured
// position through the shared re-arm set.
func (pu *pump) rearm(w *World, set *sim.RearmSet) {
	at, shard := pu.arm.At, pu.arm.Shard
	set.Add(at, pu.arm.Seq, func() {
		if pu.dev != nil {
			pu.id = pu.dev.AfterID(shard, at, pu.event)
		} else {
			pu.id = w.Sim.K.AtOn(shard, at, pu.event)
		}
	})
}

// bulkPump keeps a saturating master-to-slave pump running on the
// link to slave (0-based): depth packets queued, refilled every two
// slots.
func (w *World) bulkPump(p *PiconetState, slave, depth, chunkBytes int) *pump {
	link := p.Links[slave]
	master := p.Master
	chunk := make([]byte, chunkBytes)
	pu := &pump{
		arm: PumpArm{Kind: pumpBulk, Piconet: p.Index, Slave: slave, Depth: depth, Bytes: chunkBytes},
		dev: master,
	}
	var fire func()
	fire = func() {
		for link.QueueLen() < depth {
			link.Send(chunk, packet.LLIDL2CAPStart)
		}
		pu.id = master.After(2, fire)
	}
	pu.event = fire
	pu.start = fire
	return w.addPump(pu)
}

// poissonPump sends burst-byte sends with exponentially distributed
// gaps (mean slots) on the link to slave, drawing from rng.
func (w *World) poissonPump(p *PiconetState, slave int, mean float64, burst int, rng *sim.Rand) *pump {
	link := p.Links[slave]
	master := p.Master
	pu := &pump{
		arm: PumpArm{Kind: pumpPoisson, Piconet: p.Index, Slave: slave, Bytes: burst, MeanGap: mean},
		dev: master,
		rng: rng,
	}
	var arm func()
	send := func() {
		link.Send(make([]byte, burst), packet.LLIDL2CAPStart)
		arm()
	}
	arm = func() {
		gap := uint64(math.Ceil(-mean * math.Log(1-rng.Float64())))
		if gap < 1 {
			gap = 1
		}
		pu.id = master.After(gap, send)
	}
	pu.event = send // the pending event is the send, the gap already drawn
	pu.start = arm
	return w.addPump(pu)
}

// flowPump streams SDUs from flow idx's origin toward its destination,
// gated on the first-hop baseband queue.
func (w *World) flowPump(idx, sduBytes, pumpDepth int) *pump {
	f := w.Flows[idx]
	src := w.nodes[f.From]
	hop, ok := src.next[f.To]
	if !ok {
		panic("netspec: no route from " + f.From + " to " + f.To)
	}
	ch := src.chans[hop]
	payload := make([]byte, sduBytes)
	pu := &pump{
		arm: PumpArm{Kind: pumpFlow, Flow: idx, Depth: pumpDepth, Bytes: sduBytes},
		dev: src.dev,
	}
	var tick func()
	tick = func() {
		if ch.Link().QueueLen() < pumpDepth {
			ch.Send(encodeFrame(uint8(idx), f.To, w.Sim.Now(), payload))
			f.SentBytes += len(payload)
		}
		pu.id = src.dev.After(2, tick)
	}
	pu.event = tick
	pu.start = tick
	return w.addPump(pu)
}

// classifierPump runs the adaptive channel-assessment loop on p's
// master every assessment window.
func (w *World) classifierPump(p *PiconetState) *pump {
	win := uint64(p.spec.AssessWindowSlots)
	pu := &pump{
		arm: PumpArm{Kind: pumpClassifier, Piconet: p.Index},
		dev: p.Master,
	}
	var tick func()
	tick = func() {
		w.classify(p)
		pu.id = p.Master.After(win, tick)
	}
	pu.event = tick
	pu.start = func() {
		p.Master.ResetAssessment()
		pu.id = p.Master.After(win, tick)
	}
	return w.addPump(pu)
}

// schedPump runs the bridge presence scheduler: at every half-period
// boundary of the grid the bridge retunes to the membership whose
// window opens there. Scheduled on the kernel directly — membership
// switches must survive the state-generation bumps they themselves
// cause.
func (w *World) schedPump(b *BridgeState) *pump {
	half := uint64(b.spec.PresencePeriodSlots) * sim.SlotTicks / 2
	pu := &pump{arm: PumpArm{Kind: pumpSched, Bridge: b.Index}}
	var step func()
	step = func() {
		k := pu.nextK
		b.activate(int(k % 2))
		pu.nextK = k + 1
		pu.id = w.Sim.K.At(sim.Time(b.t0+(k+1)*half), step)
	}
	pu.event = step
	pu.start = func() {
		now := uint64(w.Sim.K.Now())
		k := uint64(0)
		if now >= b.t0 {
			k = (now-b.t0)/half + 1
		}
		pu.nextK = k
		pu.id = w.Sim.K.At(sim.Time(b.t0+k*half), step)
	}
	return w.addPump(pu)
}

// drainPump moves frames from the bridge's active store-and-forward
// queue into its link every two slots.
func (w *World) drainPump(b *BridgeState) *pump {
	pu := &pump{arm: PumpArm{Kind: pumpDrain, Bridge: b.Index}, dev: b.Dev}
	var tick func()
	tick = func() {
		b.drain()
		pu.id = b.Dev.After(2, tick)
	}
	pu.event = tick
	pu.start = tick
	return w.addPump(pu)
}
