package netspec

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

// ckSpecs are deliberately busy worlds covering every pump kind and
// every stateful subsystem the checkpoint must carry. Bulk/poisson ACL
// pumps cannot share a world with bridges (validation routes relay
// traffic through flows), so two specs split the coverage: a dense
// multi-piconet world with saturating unprotected bulk (bit errors
// keep consuming the channel RNG across the snapshot point), poisson
// bursts, voice and an adaptive classifier; and a bridged scatternet
// with an end-to-end flow and voice.
func ckSpecs() map[string]Spec {
	return map[string]Spec{
		"dense": {
			Piconets: []Piconet{
				{Slaves: 2, TpollSlots: TpollNever},
				{Slaves: 2, TpollSlots: TpollNever, AFH: AFHAdaptive, AssessWindowSlots: 300},
			},
			Traffic: []Traffic{
				{Kind: TrafficBulk, Piconet: 0, PacketType: packet.TypeDH1, PumpDepth: 3},
				{Kind: TrafficPoisson, Piconet: 1, MeanGapSlots: 40, BurstBytes: 128},
				{Kind: TrafficVoice, Piconet: 0, Slave: 1},
			},
		},
		"bridged": {
			Piconets: []Piconet{
				{Slaves: 2, TpollSlots: 64},
				{Slaves: 2, TpollSlots: 64},
			},
			Bridges: []Bridge{{A: 0, B: 1}},
			Traffic: []Traffic{
				{Kind: TrafficVoice, Piconet: 0, Slave: 2},
				{Kind: TrafficFlow, From: "p0.master", To: "p1.slave1", SDUBytes: 64, PumpDepth: 2},
			},
		},
	}
}

func ckOptions(seed uint64) core.Options {
	return core.Options{Seed: seed, BER: 1.0 / 500}
}

func buildCkWorld(t testing.TB, spec Spec) *World {
	t.Helper()
	s := core.NewSimulation(ckOptions(11))
	w, err := Build(s, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Start()
	return w
}

// worldFingerprint folds every observable surface into one string:
// per-device counters and meter activity, per-link queue and data
// totals, and the full Metrics JSON.
func worldFingerprint(t testing.TB, w *World) string {
	t.Helper()
	out := ""
	for _, d := range w.Sim.Devices() {
		tx, rx := core.Activity(d)
		out += fmt.Sprintf("%s %+v tx=%.9f rx=%.9f\n", d.Name(), d.Counters, tx, rx)
		links := d.Links()
		for am := uint8(1); am <= 7; am++ {
			if l := links[am]; l != nil {
				out += fmt.Sprintf("  link %v q=%d tx=%d rx=%d\n", l.Peer, l.QueueLen(), l.TxData, l.RxData)
			}
		}
		if l := d.MasterLink(); l != nil {
			out += fmt.Sprintf("  mlink %v q=%d tx=%d rx=%d\n", l.Peer, l.QueueLen(), l.TxData, l.RxData)
		}
	}
	m, err := json.Marshal(w.Metrics())
	if err != nil {
		t.Fatalf("Metrics marshal: %v", err)
	}
	return out + string(m)
}

func restoreCkWorld(t testing.TB, ck *WorldCheckpoint, forkSeed uint64) *World {
	t.Helper()
	s := core.NewSimulation(ckOptions(11))
	w, err := RestoreWorld(s, ck, core.RestoreOptions{ForkSeed: forkSeed})
	if err != nil {
		t.Fatalf("RestoreWorld: %v", err)
	}
	return w
}

func TestWorldCheckpointForkEquivalence(t *testing.T) {
	for name, spec := range ckSpecs() {
		t.Run(name, func(t *testing.T) { testForkEquivalence(t, spec) })
	}
}

func testForkEquivalence(t *testing.T, spec Spec) {
	const settle, rest = 400, 600

	w := buildCkWorld(t, spec)
	w.Sim.RunSlots(settle)
	ck, err := w.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Snapshot is read-only (the probe may advance time); w continues
	// as the straight arm from the capture instant.
	if got, want := w.Sim.K.Now(), ck.Core.At; got != want {
		t.Fatalf("straight arm at %v, capture at %v", got, want)
	}

	// Round-trip through bytes: the wire format is the product surface.
	enc, err := ck.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dck, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}

	restored := restoreCkWorld(t, dck, 0)
	if got, want := restored.Sim.K.Now(), ck.Core.At; got != want {
		t.Fatalf("restored clock at %v, want %v", got, want)
	}

	// The measurement protocol: both arms open a fresh window at the
	// fork instant, then run the same horizon.
	w.ResetMetrics()
	restored.ResetMetrics()
	w.Sim.RunSlots(rest)
	restored.Sim.RunSlots(rest)
	a, b := worldFingerprint(t, w), worldFingerprint(t, restored)
	if a != b {
		t.Errorf("straight and restored runs diverge:\n--- straight\n%s\n--- restored\n%s", a, b)
	}

	// A second fork from the same bytes stays byte-equal...
	dck2, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("DecodeCheckpoint (second): %v", err)
	}
	again := restoreCkWorld(t, dck2, 0)
	again.ResetMetrics()
	again.Sim.RunSlots(rest)
	if c := worldFingerprint(t, again); b != c {
		t.Errorf("two identical forks diverge:\n--- first\n%s\n--- second\n%s", b, c)
	}

	// ...while a different fork seed diverges under nonzero BER.
	dck3, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("DecodeCheckpoint (third): %v", err)
	}
	other := restoreCkWorld(t, dck3, 99)
	other.ResetMetrics()
	other.Sim.RunSlots(rest)
	if d := worldFingerprint(t, other); b == d {
		t.Error("fork seed 99 did not diverge from seed 0")
	}
}

func TestSnapshotRefusesHCIWorld(t *testing.T) {
	s := core.NewSimulation(core.Options{Seed: 1})
	w, err := Build(s, Spec{Piconets: []Piconet{{Slaves: 1, HCI: true}}})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := w.Snapshot(); err == nil {
		t.Fatal("Snapshot of an HCI world should fail")
	}
}

// FuzzCheckpointRoundTrip pins the decode contract: arbitrary bytes
// either fail with an error or produce a validated checkpoint — never
// a panic.
func FuzzCheckpointRoundTrip(f *testing.F) {
	s := core.NewSimulation(core.Options{Seed: 3})
	w, err := Build(s, Spec{
		Piconets: []Piconet{{Slaves: 1, TpollSlots: 64}},
		Traffic:  []Traffic{{Kind: TrafficBulk, Piconet: 0}},
	})
	if err != nil {
		f.Fatalf("Build: %v", err)
	}
	w.Start()
	s.RunSlots(64)
	if ck, err := w.Snapshot(); err == nil {
		if b, err := ck.Encode(); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err == nil && ck == nil {
			t.Fatal("nil checkpoint without error")
		}
	})
}
