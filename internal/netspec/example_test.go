package netspec_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netspec"
	"repro/internal/packet"
)

// Build compiles one declarative Spec into a running world. Here two
// piconets share the medium with mixed traffic — an HV3 voice stream
// on the first, a saturating bulk ACL pump on the second — and the
// unified Metrics surface reports both service classes from one read.
func ExampleBuild() {
	s := core.NewSimulation(core.Options{Seed: 7})
	w, err := netspec.Build(s, netspec.Spec{
		Piconets: []netspec.Piconet{
			netspec.NewPiconet(1), // voice piconet
			netspec.NewPiconet(1), // bulk piconet
		},
		Traffic: []netspec.Traffic{
			netspec.VoiceTraffic(0, packet.TypeHV3),
			netspec.BulkTraffic(1),
		},
	})
	if err != nil {
		panic(err)
	}
	w.Start()
	s.RunSlots(64)
	w.ResetMetrics()
	s.RunSlots(4000)

	m := w.Metrics()
	fmt.Println("piconets:", len(w.Piconets))
	fmt.Println("voice streams:", len(m.Voice))
	fmt.Println("voice frames delivered:", m.Voice[0].RxFrames > 0)
	fmt.Println("bulk bytes delivered:", m.PerPiconet[1] > 0)
	fmt.Println("window slots:", m.Slots)
	// Output:
	// piconets: 2
	// voice streams: 1
	// voice frames delivered: true
	// bulk bytes delivered: true
	// window slots: 4000
}

// A malformed stanza comes back as a named validation error instead of
// a half-built world.
func ExampleBuild_validation() {
	_, err := netspec.Build(core.NewSimulation(core.Options{Seed: 1}), netspec.Spec{
		Piconets: []netspec.Piconet{netspec.NewPiconet(3)},
		Bridges:  []netspec.Bridge{netspec.NewBridge(0, 2)},
	})
	fmt.Println(err)
	// Output:
	// netspec: bridge[0]: references unknown piconet 2 (world has 1)
}
