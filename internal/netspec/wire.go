package netspec

// This file is the Spec wire format: JSON field tags live on the stanza
// structs, the enum kinds encode as the stable names below, and
// Canonical renders the one encoding the service layer hashes for its
// result cache. The contract (pinned by FuzzSpecJSONRoundTrip and
// TestSpecJSONRoundTrip) is that Marshal→Unmarshal→Build reproduces a
// world bit for bit: every stanza field either survives the round trip
// verbatim or is a documented default that withDefaults re-fills
// identically on both sides.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// enumText implements both halves of a text codec over a name table.
func enumText(kind string, names map[int]string, v int) ([]byte, error) {
	if n, ok := names[v]; ok {
		return []byte(n), nil
	}
	return nil, fmt.Errorf("netspec: %s %d has no wire name", kind, v)
}

func enumParse(kind string, names map[int]string, text []byte) (int, error) {
	s := string(text)
	for v, n := range names {
		if n == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("netspec: unknown %s %q", kind, s)
}

var afhNames = map[int]string{
	int(AFHOff): "off", int(AFHOracle): "oracle", int(AFHAdaptive): "adaptive",
}

// MarshalText encodes the mode as "off", "oracle" or "adaptive".
func (m AFHMode) MarshalText() ([]byte, error) { return enumText("AFH mode", afhNames, int(m)) }

// UnmarshalText decodes a mode name produced by MarshalText.
func (m *AFHMode) UnmarshalText(text []byte) error {
	v, err := enumParse("AFH mode", afhNames, text)
	if err != nil {
		return err
	}
	*m = AFHMode(v)
	return nil
}

var trafficNames = map[int]string{
	int(TrafficBulk): "bulk", int(TrafficVoice): "voice",
	int(TrafficPoisson): "poisson", int(TrafficFlow): "flow",
}

// MarshalText encodes the kind under its String name.
func (k TrafficKind) MarshalText() ([]byte, error) {
	return enumText("traffic kind", trafficNames, int(k))
}

// UnmarshalText decodes a kind name produced by MarshalText.
func (k *TrafficKind) UnmarshalText(text []byte) error {
	v, err := enumParse("traffic kind", trafficNames, text)
	if err != nil {
		return err
	}
	*k = TrafficKind(v)
	return nil
}

var powerNames = map[int]string{
	int(SniffMode): "sniff", int(HoldMode): "hold", int(ParkMode): "park",
}

// MarshalText encodes the kind under its String name.
func (k PowerKind) MarshalText() ([]byte, error) { return enumText("power kind", powerNames, int(k)) }

// UnmarshalText decodes a kind name produced by MarshalText.
func (k *PowerKind) UnmarshalText(text []byte) error {
	v, err := enumParse("power kind", powerNames, text)
	if err != nil {
		return err
	}
	*k = PowerKind(v)
	return nil
}

var probeNames = map[int]string{
	int(ProbeSlaveActivity):  "slave_activity",
	int(ProbeMasterActivity): "master_activity",
	int(ProbeBridgeActivity): "bridge_activity",
	int(ProbePerFreq):        "per_freq",
}

// MarshalText encodes the probe kind as a stable snake_case name.
func (k ProbeKind) MarshalText() ([]byte, error) { return enumText("probe kind", probeNames, int(k)) }

// UnmarshalText decodes a probe-kind name produced by MarshalText.
func (k *ProbeKind) UnmarshalText(text []byte) error {
	v, err := enumParse("probe kind", probeNames, text)
	if err != nil {
		return err
	}
	*k = ProbeKind(v)
	return nil
}

var placementNames = map[int]string{
	int(PlaceGrid): "grid", int(PlaceRooms): "rooms", int(PlaceDisc): "disc",
}

// MarshalText encodes the geometry under its String name.
func (k PlacementKind) MarshalText() ([]byte, error) {
	return enumText("placement kind", placementNames, int(k))
}

// UnmarshalText decodes a geometry name produced by MarshalText.
func (k *PlacementKind) UnmarshalText(text []byte) error {
	v, err := enumParse("placement kind", placementNames, text)
	if err != nil {
		return err
	}
	*k = PlacementKind(v)
	return nil
}

// Canonical returns the spec's canonical wire encoding: the JSON of the
// resolved spec (every documented default filled in), so two specs that
// build the same world — one terse, one with its defaults spelled out —
// canonicalise to the same bytes. The service layer's result cache keys
// on this encoding. Specs that cannot marshal (an enum without a wire
// name, a NaN coordinate) return the marshal error; such specs never
// validate either.
func (s Spec) Canonical() ([]byte, error) {
	return json.Marshal(s.Resolved())
}

// Hash returns the hex SHA-256 of the canonical encoding — the spec's
// identity in cache keys and logs.
func (s Spec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}
