package netspec

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/hop"
	"repro/internal/l2cap"
	"repro/internal/lmp"
	"repro/internal/sim"
)

// Checkpoint/restore for a built world. A campaign settles one world
// through paging, LMP negotiation and traffic warm-up, snapshots it
// once, and forks every replica and what-if arm from the bytes —
// skipping the settle phase entirely. The capture wraps the core
// checkpoint (kernel clock, RNG streams, devices, pending baseband
// timers) with everything the netspec layer owns: LMP setup state,
// L2CAP channel identities and relay wiring, bridge presence grids and
// store-and-forward queues, classifier verdicts, and the exact pending
// position of every traffic pump.
//
// The measurement protocol mirrors ResetMetrics: window accumulators
// (delivered bytes, latency samples, meters) are not serialized — a
// forked arm calls ResetMetrics right after restore, and the straight
// arm calls it at the same instant, so both windows measure only
// post-fork behaviour. The one lifetime counter Metrics reads
// un-baselined, MapUpdates, is captured.

// PiconetCheckpoint is one piconet's netspec-layer state.
type PiconetCheckpoint struct {
	// MasterLMP and SlaveLMPs are the link managers' setup state (nil
	// for a detached piconet).
	MasterLMP []lmp.LinkSetup
	SlaveLMPs [][]lmp.LinkSetup
	// MapUpdates is the lifetime adaptive-install counter.
	MapUpdates int
	// Bad, Rate and Quiet are the classifier's verdicts; Cur is the
	// installed map's LMP bitmask (nil = full 79-channel set).
	Bad   [hop.NumChannels]bool
	Rate  [hop.NumChannels]float64
	Quiet [hop.NumChannels]int
	Cur   []byte
}

// MembershipCheckpoint is one bridge attachment.
type MembershipCheckpoint struct {
	Piconet          int
	ClockOffset      uint32
	AFHMap           []byte // LMP bitmask; nil = full set
	SniffOffset      int
	AttemptEvenSlots int
}

// QueuedFrame is one serialized store-and-forward entry.
type QueuedFrame struct {
	SDU []byte
	At  uint64
}

// BridgeCheckpoint is one bridge's presence grid, memberships and
// backlog.
type BridgeCheckpoint struct {
	T0      uint64
	Active  int
	LMP     []lmp.LinkSetup
	Members [2]MembershipCheckpoint
	Queues  [2][]QueuedFrame
}

// NodeCheckpoint is one relay participant: its L2CAP state and the
// neighbour attach order (which fixes route computation and is not
// reproducible structurally — channel setup races decide it).
type NodeCheckpoint struct {
	Name  string
	Peers []string
	Mux   *l2cap.MuxCheckpoint
}

// VoiceCheckpoint locates one SCO stream's reservation ends by their
// positions in the devices' SCO link lists.
type VoiceCheckpoint struct {
	Piconet, Slave      int
	MasterIdx, SlaveIdx int
}

// WorldCheckpoint is a full capture of a built (and possibly started)
// world at a quiescent instant.
type WorldCheckpoint struct {
	Spec    Spec
	Core    *core.Checkpoint
	Started bool

	Piconets []PiconetCheckpoint
	Bridges  []BridgeCheckpoint
	Nodes    []NodeCheckpoint
	Voices   []VoiceCheckpoint
	Flows    []FlowSpec
	Pumps    []PumpArm
}

// upperQuiescent reports whether every protocol layer above baseband is
// between transactions: no LMP request awaiting its answer, no deferred
// mode-change, no L2CAP handshake in flight.
func (w *World) upperQuiescent() bool {
	for _, p := range w.Piconets {
		if p.LMP != nil && !p.LMP.Quiescent() {
			return false
		}
		for _, lm := range p.slaveLMPs {
			if !lm.Quiescent() {
				return false
			}
		}
	}
	for _, b := range w.Bridges {
		if !b.LMP.Quiescent() {
			return false
		}
	}
	for _, nd := range w.nodes {
		if !nd.mux.Quiescent() {
			return false
		}
	}
	return true
}

// attachedLinks enumerates d's links deterministically: AM_ADDR 1..7,
// then the slave-side master link, then extras — exactly the order
// baseband's device checkpoint captures them in.
func attachedLinks(d *baseband.Device, extra ...*baseband.Link) []*baseband.Link {
	var out []*baseband.Link
	links := d.Links()
	for am := uint8(1); am <= 7; am++ {
		if l := links[am]; l != nil {
			out = append(out, l)
		}
	}
	if l := d.MasterLink(); l != nil {
		out = append(out, l)
	}
	return append(out, extra...)
}

// linkTo finds the link whose peer is addr.
func linkTo(links []*baseband.Link, addr baseband.BDAddr) *baseband.Link {
	for _, l := range links {
		if l.Peer == addr {
			return l
		}
	}
	return nil
}

// scoIndex locates sco in d's SCO link list.
func scoIndex(d *baseband.Device, sco *baseband.SCOLink) (int, error) {
	for i, s := range d.SCOLinks() {
		if s == sco {
			return i, nil
		}
	}
	return 0, fmt.Errorf("netspec: SCO link not found on %s", d.Name())
}

// Snapshot captures the world at the nearest quiescent slot edge. The
// probe may advance simulated time (the pumps keep running); the
// returned checkpoint's Core.At is the capture instant.
func (w *World) Snapshot() (*WorldCheckpoint, error) {
	if w.ctrl != nil {
		return nil, fmt.Errorf("netspec: HCI worlds are not checkpointable")
	}
	extra := make(map[string][]*baseband.Link)
	for _, b := range w.Bridges {
		// The suspended membership's link is detached from the radio;
		// it must ride the bridge device's capture explicitly.
		extra[b.Dev.Name()] = []*baseband.Link{b.Members[1-b.active].Link}
	}
	cck, err := w.Sim.SnapshotCfg(core.SnapshotConfig{
		ExtraLinks: extra,
		Quiescent:  w.upperQuiescent,
	})
	if err != nil {
		return nil, err
	}
	ck := &WorldCheckpoint{Spec: w.spec, Core: cck, Started: w.started}

	for _, p := range w.Piconets {
		pc := PiconetCheckpoint{
			MapUpdates: p.MapUpdates,
			Bad:        p.bad, Rate: p.rate, Quiet: p.quiet,
		}
		if p.cur != nil {
			pc.Cur = p.cur.Bitmask()
		}
		if p.LMP != nil {
			if pc.MasterLMP, err = p.LMP.Checkpoint(attachedLinks(p.Master)); err != nil {
				return nil, err
			}
			for j, lm := range p.slaveLMPs {
				ls, err := lm.Checkpoint(attachedLinks(p.Slaves[j]))
				if err != nil {
					return nil, err
				}
				pc.SlaveLMPs = append(pc.SlaveLMPs, ls)
			}
		}
		ck.Piconets = append(ck.Piconets, pc)
	}

	for _, b := range w.Bridges {
		bc := BridgeCheckpoint{T0: b.t0, Active: b.active}
		blinks := []*baseband.Link{b.Members[0].Link, b.Members[1].Link}
		if bc.LMP, err = b.LMP.Checkpoint(blinks); err != nil {
			return nil, err
		}
		for mi, m := range b.Members {
			mc := MembershipCheckpoint{
				Piconet:          m.Piconet,
				ClockOffset:      m.BB.ClockOffset(),
				SniffOffset:      m.SniffOffset,
				AttemptEvenSlots: m.AttemptEvenSlots,
			}
			if afh := m.BB.AFHMap(); afh != nil {
				mc.AFHMap = afh.Bitmask()
			}
			bc.Members[mi] = mc
			for _, f := range b.q[mi] {
				bc.Queues[mi] = append(bc.Queues[mi],
					QueuedFrame{SDU: append([]byte(nil), f.sdu...), At: f.at})
			}
		}
		ck.Bridges = append(ck.Bridges, bc)
	}

	if w.nodes != nil {
		for _, name := range w.nodeOrder() {
			nd := w.nodes[name]
			var extras []*baseband.Link
			if nd.bridge != nil {
				extras = extra[name]
			}
			mc, err := nd.mux.Checkpoint(attachedLinks(nd.dev, extras...))
			if err != nil {
				return nil, err
			}
			ck.Nodes = append(ck.Nodes, NodeCheckpoint{
				Name:  name,
				Peers: append([]string(nil), nd.peers...),
				Mux:   mc,
			})
		}
	}

	for _, v := range w.Voices {
		p := w.Piconets[v.Piconet]
		vc := VoiceCheckpoint{Piconet: v.Piconet, Slave: v.Slave}
		if vc.MasterIdx, err = scoIndex(p.Master, v.MasterSCO); err != nil {
			return nil, err
		}
		if vc.SlaveIdx, err = scoIndex(p.Slaves[v.Slave-1], v.SlaveSCO); err != nil {
			return nil, err
		}
		ck.Voices = append(ck.Voices, vc)
	}

	for _, f := range w.Flows {
		ck.Flows = append(ck.Flows, f.FlowSpec)
	}

	for _, pu := range w.pumps {
		arm := pu.arm
		at, seq, shard, ok := w.Sim.K.EventInfo(pu.id)
		if !ok {
			return nil, fmt.Errorf("netspec: pump kind %d has no pending event at the capture instant", arm.Kind)
		}
		arm.At, arm.Seq, arm.Shard = at, seq, shard
		if pu.rng != nil {
			arm.RNG = pu.rng.State()
		}
		arm.NextK = pu.nextK
		ck.Pumps = append(ck.Pumps, arm)
	}
	return ck, nil
}

// RestoreWorld rebuilds ck's world on a freshly constructed Simulation
// (same Options the original was built with). The spec-driven
// construction is replayed without any paging or negotiation — devices,
// links, timers and RNG streams are imposed from the capture, protocol
// managers and relay closures are re-created and re-wired, and every
// pending event is re-armed in its exact captured order. With
// opt.ForkSeed zero the restored world continues byte-identically to a
// straight run; a nonzero seed perturbs every RNG stream of the arm.
func RestoreWorld(s *core.Simulation, ck *WorldCheckpoint, opt core.RestoreOptions) (*World, error) {
	if err := ck.validate(); err != nil {
		return nil, err
	}
	spec := ck.Spec
	w := &World{Sim: s, spec: spec, owner: make(map[string]int)}

	// Geometry and medium configuration must precede core.Restore, which
	// re-tunes the restored radios: positions are name-keyed and the
	// layout stream is derived (never advances the root RNG), so the
	// placement of the original build is reproduced exactly.
	if spec.Placement != nil {
		w.layout = spec.layout(s.DerivedRand("netspec.placement"))
		s.Ch.EnableSpatial(channel.SpatialConfig{
			RangeM:        spec.Placement.RangeM,
			InterferenceM: spec.Placement.InterferenceM,
		})
		for i := range spec.Piconets {
			sp := spec.Piconets[i]
			s.Ch.Place(sp.Name+".master", w.layout[i].master)
			for j := 0; j < sp.Slaves; j++ {
				s.Ch.Place(fmt.Sprintf("%s.slave%d", sp.Name, j+1), w.layout[i].slaves[j])
			}
		}
		for i := range spec.Bridges {
			sp := spec.Bridges[i]
			s.Ch.Place(BridgeName(i), bridgePosition(w.layout[sp.A].master, w.layout[sp.B].master))
		}
	}
	s.Ch.SetCollisionHook(w.onCollision)
	for _, j := range spec.Jammers {
		s.Ch.AddJammer(j.Lo, j.Hi, j.Duty)
	}

	set := opt.Rearm
	if set == nil {
		set = &sim.RearmSet{}
	}
	inner := opt
	inner.Rearm = set
	links, err := s.Restore(ck.Core, inner)
	if err != nil {
		return nil, err
	}

	for i := range spec.Piconets {
		sp := spec.Piconets[i]
		pc := &ck.Piconets[i]
		p := &PiconetState{Index: i, spec: sp}
		mname := sp.Name + ".master"
		if p.Master = s.Device(mname); p.Master == nil {
			return nil, fmt.Errorf("netspec: restored world is missing %s", mname)
		}
		w.owner[mname] = i
		for j := 0; j < sp.Slaves; j++ {
			sname := fmt.Sprintf("%s.slave%d", sp.Name, j+1)
			sl := s.Device(sname)
			if sl == nil {
				return nil, fmt.Errorf("netspec: restored world is missing %s", sname)
			}
			w.owner[sname] = i
			p.Slaves = append(p.Slaves, sl)
		}
		p.MapUpdates = pc.MapUpdates
		p.bad, p.rate, p.quiet = pc.Bad, pc.Rate, pc.Quiet
		if pc.Cur != nil {
			if p.cur, err = hop.FromBitmask(pc.Cur); err != nil {
				return nil, err
			}
		}
		if !sp.Detached {
			mlinks := links[mname]
			for _, sl := range p.Slaves {
				l := linkTo(mlinks, sl.Addr())
				if l == nil {
					return nil, fmt.Errorf("netspec: restored %s has no link to %s", mname, sl.Name())
				}
				p.Links = append(p.Links, l)
			}
			p.LMP = lmp.Attach(p.Master)
			if err := p.LMP.RestoreSetup(mlinks, pc.MasterLMP); err != nil {
				return nil, err
			}
			for j, sl := range p.Slaves {
				lm := lmp.Attach(sl)
				p.slaveLMPs = append(p.slaveLMPs, lm)
				if err := lm.RestoreSetup(links[sl.Name()], pc.SlaveLMPs[j]); err != nil {
					return nil, err
				}
			}
			p.Received = make([]int, len(p.Slaves))
			for j, sl := range p.Slaves {
				idx, pp := j, p
				sl.OnData = func(_ *baseband.Link, payload []byte, _ uint8) {
					pp.Received[idx] += len(payload)
				}
			}
		}
		w.Piconets = append(w.Piconets, p)
	}

	for i := range spec.Bridges {
		sp := spec.Bridges[i]
		bc := &ck.Bridges[i]
		d := s.Device(BridgeName(i))
		if d == nil {
			return nil, fmt.Errorf("netspec: restored world is missing %s", BridgeName(i))
		}
		b := &BridgeState{
			Index: i, Dev: d, LMP: lmp.Attach(d), spec: sp, world: w,
			t0: bc.T0, active: bc.Active,
		}
		w.AdoptDevice(d, sp.A)
		blinks := links[d.Name()]
		for mi := range b.Members {
			mc := &bc.Members[mi]
			p := w.Piconets[mc.Piconet]
			bl := linkTo(blinks, p.Master.Addr())
			ml := linkTo(links[p.Master.Name()], d.Addr())
			if bl == nil || ml == nil {
				return nil, fmt.Errorf("netspec: restored %s has no link pair with %s", d.Name(), p.Master.Name())
			}
			var afh *hop.ChannelMap
			if mc.AFHMap != nil {
				if afh, err = hop.FromBitmask(mc.AFHMap); err != nil {
					return nil, err
				}
			}
			b.Members[mi] = &Membership{
				Piconet: mc.Piconet, Link: bl, MasterLink: ml,
				BB:          baseband.RestoreMembership(bl, mc.ClockOffset, afh),
				SniffOffset: mc.SniffOffset, AttemptEvenSlots: mc.AttemptEvenSlots,
				clockOffset: mc.ClockOffset,
			}
			for _, f := range bc.Queues[mi] {
				b.q[mi] = append(b.q[mi], queuedFrame{sdu: append([]byte(nil), f.SDU...), at: f.At})
			}
		}
		if err := b.LMP.RestoreSetup(blinks, bc.LMP); err != nil {
			return nil, err
		}
		b.QueueDepth.Observe(b.depth(), s.Now())
		w.Bridges = append(w.Bridges, b)
	}

	if len(ck.Nodes) > 0 {
		w.nodes = make(map[string]*node)
		w.names = make(map[baseband.BDAddr]string)
		for i := range ck.Nodes {
			nc := &ck.Nodes[i]
			d := s.Device(nc.Name)
			if d == nil {
				return nil, fmt.Errorf("netspec: restored world is missing relay node %s", nc.Name)
			}
			nd := w.addNode(d)
			if err := nd.mux.Restore(links[nc.Name], nc.Mux); err != nil {
				return nil, err
			}
		}
		for _, b := range w.Bridges {
			nd := w.nodes[b.Dev.Name()]
			nd.bridge = b
			b.node = nd
		}
		// Re-register relay channels in each node's captured attach
		// order: the order decides route computation and SDU fan-out.
		for i := range ck.Nodes {
			nc := &ck.Nodes[i]
			nd := w.nodes[nc.Name]
			for _, peer := range nc.Peers {
				pd := s.Device(peer)
				if pd == nil {
					return nil, fmt.Errorf("netspec: node %s references unknown peer %s", nc.Name, peer)
				}
				l := linkTo(links[nc.Name], pd.Addr())
				if l == nil {
					return nil, fmt.Errorf("netspec: node %s has no link to peer %s", nc.Name, peer)
				}
				chs := nd.mux.Channels(l)
				if len(chs) != 1 {
					return nil, fmt.Errorf("netspec: node %s has %d channels to %s, want 1", nc.Name, len(chs), peer)
				}
				w.registerChannel(nd, chs[0])
			}
		}
		for _, b := range w.Bridges {
			for _, m := range b.Members {
				m.Out = b.node.chans[w.names[m.Link.Peer]]
			}
		}
		w.buildRoutes()
	}

	for _, fs := range ck.Flows {
		w.Flows = append(w.Flows, &Flow{FlowSpec: fs})
	}

	for i := range ck.Voices {
		vc := &ck.Voices[i]
		p := w.Piconets[vc.Piconet]
		sl := p.Slaves[vc.Slave-1]
		msc, ssc := p.Master.SCOLinks(), sl.SCOLinks()
		if vc.MasterIdx >= len(msc) || vc.SlaveIdx >= len(ssc) {
			return nil, fmt.Errorf("netspec: voice stream %d references missing SCO links", i)
		}
		v := &Voice{
			Piconet: vc.Piconet, Slave: vc.Slave,
			MasterSCO: msc[vc.MasterIdx], SlaveSCO: ssc[vc.SlaveIdx],
		}
		wireVoice(v)
		w.Voices = append(w.Voices, v)
	}

	for i := range ck.Pumps {
		pu, err := w.restorePump(ck.Pumps[i], opt.ForkSeed)
		if err != nil {
			return nil, err
		}
		pu.rearm(w, set)
	}

	w.started = ck.Started
	if opt.Rearm == nil {
		set.Execute()
	}
	w.chBase = s.Ch.Stats()
	w.resetAt = s.Now()
	return w, nil
}

// restorePump rebuilds one pump's closure from its descriptor.
func (w *World) restorePump(arm PumpArm, forkSeed uint64) (*pump, error) {
	var pu *pump
	switch arm.Kind {
	case pumpBulk:
		pu = w.bulkPump(w.Piconets[arm.Piconet], arm.Slave, arm.Depth, arm.Bytes)
	case pumpPoisson:
		rng := sim.NewRand(1)
		rng.SetState(sim.ForkState(arm.RNG, forkSeed))
		pu = w.poissonPump(w.Piconets[arm.Piconet], arm.Slave, arm.MeanGap, arm.Bytes, rng)
	case pumpFlow:
		pu = w.flowPump(arm.Flow, arm.Bytes, arm.Depth)
	case pumpClassifier:
		pu = w.classifierPump(w.Piconets[arm.Piconet])
	case pumpSched:
		pu = w.schedPump(w.Bridges[arm.Bridge])
		pu.nextK = arm.NextK
	case pumpDrain:
		pu = w.drainPump(w.Bridges[arm.Bridge])
	default:
		return nil, fmt.Errorf("netspec: unknown pump kind %d", arm.Kind)
	}
	pu.arm = arm
	return pu, nil
}

// validate bounds-checks a checkpoint's cross-references, so a decoded
// capture either restores or fails cleanly.
func (ck *WorldCheckpoint) validate() error {
	if ck.Core == nil {
		return fmt.Errorf("netspec: checkpoint has no core capture")
	}
	np, nb, nf := len(ck.Spec.Piconets), len(ck.Spec.Bridges), len(ck.Flows)
	if len(ck.Piconets) != np {
		return fmt.Errorf("netspec: checkpoint has %d piconet captures for %d stanzas", len(ck.Piconets), np)
	}
	if len(ck.Bridges) != nb {
		return fmt.Errorf("netspec: checkpoint has %d bridge captures for %d stanzas", len(ck.Bridges), nb)
	}
	for i := range ck.Spec.Piconets {
		if ck.Spec.Piconets[i].HCI {
			return fmt.Errorf("netspec: HCI worlds are not checkpointable")
		}
	}
	for i := range ck.Bridges {
		bc := &ck.Bridges[i]
		if bc.Active != 0 && bc.Active != 1 {
			return fmt.Errorf("netspec: bridge %d active membership %d out of range", i, bc.Active)
		}
		for _, mc := range bc.Members {
			if mc.Piconet < 0 || mc.Piconet >= np {
				return fmt.Errorf("netspec: bridge %d references piconet %d", i, mc.Piconet)
			}
		}
	}
	for i := range ck.Voices {
		vc := &ck.Voices[i]
		if vc.Piconet < 0 || vc.Piconet >= np {
			return fmt.Errorf("netspec: voice %d references piconet %d", i, vc.Piconet)
		}
		sp := &ck.Spec.Piconets[vc.Piconet]
		if vc.Slave < 1 || vc.Slave > sp.Slaves {
			return fmt.Errorf("netspec: voice %d references slave %d", i, vc.Slave)
		}
		if vc.MasterIdx < 0 || vc.SlaveIdx < 0 {
			return fmt.Errorf("netspec: voice %d has negative SCO index", i)
		}
	}
	for i := range ck.Pumps {
		arm := &ck.Pumps[i]
		switch arm.Kind {
		case pumpBulk, pumpPoisson, pumpClassifier:
			if arm.Piconet < 0 || arm.Piconet >= np {
				return fmt.Errorf("netspec: pump %d references piconet %d", i, arm.Piconet)
			}
			if arm.Kind != pumpClassifier {
				if arm.Slave < 0 || arm.Slave >= ck.Spec.Piconets[arm.Piconet].Slaves {
					return fmt.Errorf("netspec: pump %d references slave %d", i, arm.Slave)
				}
			}
		case pumpFlow:
			if arm.Flow < 0 || arm.Flow >= nf {
				return fmt.Errorf("netspec: pump %d references flow %d", i, arm.Flow)
			}
		case pumpSched, pumpDrain:
			if arm.Bridge < 0 || arm.Bridge >= nb {
				return fmt.Errorf("netspec: pump %d references bridge %d", i, arm.Bridge)
			}
		default:
			return fmt.Errorf("netspec: pump %d has unknown kind %d", i, arm.Kind)
		}
	}
	return nil
}

// Encode serializes the checkpoint (gob). The bytes are self-contained:
// DecodeCheckpoint plus RestoreWorld rebuild the world in a different
// process, which is how the simulation service forks replicas.
func (ck *WorldCheckpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses serialized checkpoint bytes. Arbitrary input
// returns an error, never panics.
func DecodeCheckpoint(b []byte) (ck *WorldCheckpoint, err error) {
	defer func() {
		if r := recover(); r != nil {
			ck, err = nil, fmt.Errorf("netspec: malformed checkpoint: %v", r)
		}
	}()
	var out WorldCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&out); err != nil {
		return nil, fmt.Errorf("netspec: malformed checkpoint: %w", err)
	}
	if err := out.validate(); err != nil {
		return nil, err
	}
	return &out, nil
}
