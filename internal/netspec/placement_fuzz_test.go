package netspec

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

// FuzzPlacementValidation feeds arbitrary placement stanzas through
// validation and — whenever one validates — through a real Build. The
// contract under fuzz: Validate/Build never panic on any input; a
// rejection is always a typed *StanzaError; an accepted stanza stands
// up a working spatial world. CI runs a short -fuzz smoke on top of
// the seed corpus (see ci.yml).
func FuzzPlacementValidation(f *testing.F) {
	f.Add(int(PlaceGrid), 10.0, 20.0, 10.0, 4, 0.0, 0.0, 0, 2.0)
	f.Add(int(PlaceRooms), 10.0, 0.0, 25.0, 0, 0.0, 3.0, 2, 1.0)
	f.Add(int(PlaceDisc), 10.0, 10.0, 0.0, 0, 50.0, 0.0, 0, 0.0)
	f.Add(0, 0.0, 0.0, 0.0, 0, 0.0, 0.0, 0, 0.0)
	f.Add(int(PlaceGrid), math.NaN(), math.Inf(1), -1.0, -7, math.Inf(-1), math.NaN(), -1, math.NaN())
	f.Add(int(PlaceDisc), 1e9, 1e9, 1e6, 1, 1e6, 1e6, 1, 0.0005)
	f.Add(int(PlaceGrid), 1e-3, 0.0, 1e-3, 1, 0.0, 0.0, 0, 0.0)
	f.Add(99, 5.0, 5.0, 5.0, 5, 5.0, 5.0, 5, 1.0)
	f.Fuzz(func(t *testing.T, kind int, rangeM, interferenceM, spacingM float64,
		columns int, radiusM, clusterRadiusM float64, perRoom int, slaveSpreadM float64) {
		spec := Spec{
			Piconets: []Piconet{NewPiconet(2)},
			Placement: &Placement{
				Kind:            PlacementKind(kind),
				RangeM:          rangeM,
				InterferenceM:   interferenceM,
				SpacingM:        spacingM,
				Columns:         columns,
				RadiusM:         radiusM,
				ClusterRadiusM:  clusterRadiusM,
				PiconetsPerRoom: perRoom,
				SlaveSpreadM:    slaveSpreadM,
			},
		}
		if err := spec.Validate(); err != nil {
			var se *StanzaError
			if !errors.As(err, &se) {
				t.Fatalf("validation rejected the stanza with a %T, want *StanzaError: %v", err, err)
			}
			return
		}
		// The stanza validated: it must build into a running world. Any
		// panic here (cell-key overflow, unplaced device, paging out of
		// range) means validation let a poisonous geometry through.
		s := core.NewSimulation(core.Options{Seed: 0xFADE})
		w, err := Build(s, spec)
		if err != nil {
			var se *StanzaError
			if !errors.As(err, &se) {
				t.Fatalf("Build rejected a validated spec with a %T, want *StanzaError: %v", err, err)
			}
			return
		}
		w.Start()
		s.RunSlots(64)
		if got := s.Ch.Stats().Transmissions; got == 0 {
			t.Fatal("validated spatial world carried no transmissions at all")
		}
	})
}
