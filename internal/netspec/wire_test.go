package netspec

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

// roundTripCases are representative worlds exercising every stanza
// kind the wire format carries: plain piconets, bridges with flows,
// voice reservations, jammers with adaptive and oracle AFH, power
// modes, probes and all three placement geometries.
func roundTripCases() map[string]Spec {
	return map[string]Spec{
		"minimal": {
			Piconets: []Piconet{{Slaves: 1}},
		},
		"office-grid": {
			Piconets:  HomogeneousPiconets(3, 1, WithTpoll(TpollNever)),
			Traffic:   []Traffic{BulkTraffic(AllPiconets)},
			Placement: GridPlacement(12, 10).WithInterference(22),
		},
		"voice-sniff": {
			Piconets: []Piconet{{Slaves: 2, Name: "v"}},
			Traffic: []Traffic{
				VoiceTraffic(0, packet.TypeHV3, WithSlave(1)),
				BulkTraffic(0, WithSlave(2), WithPacketType(packet.TypeDM1)),
			},
			Modes: []PowerMode{{Kind: SniffMode, Piconet: 0, Slave: 2, TsniffSlots: 100}},
		},
		"scatternet-flow": {
			Piconets: HomogeneousPiconets(2, 1),
			Bridges:  ChainBridges(2, WithPresence(0.8)),
			Traffic:  []Traffic{FlowTraffic(MasterName(0), SlaveName(1, 1), WithSDUBytes(64))},
			Probes:   []Probe{{Name: "relay", Kind: ProbeBridgeActivity}},
		},
		"jammer-afh": {
			Piconets: []Piconet{
				NewPiconet(1, WithAdaptiveAFH(2000)),
				NewPiconet(1, WithOracleAFH(30, 52)),
			},
			Traffic: []Traffic{BulkTraffic(AllPiconets)},
			Jammers: []Jammer{{Lo: 30, Hi: 52, Duty: 0.9}},
			Probes: []Probe{
				{Name: "spectrum", Kind: ProbePerFreq},
				{Name: "masters", Kind: ProbeMasterActivity, Piconet: AllPiconets},
			},
		},
		"poisson-rooms": {
			Piconets:  HomogeneousPiconets(2, 2),
			Traffic:   []Traffic{PoissonTraffic(AllPiconets, WithMeanGap(64), WithBurstBytes(128))},
			Modes:     []PowerMode{{Kind: HoldMode, Piconet: 1, Slave: 1, TholdSlots: 200}},
			Placement: RoomPlacement(15, 20, 2),
		},
		"disc-hall": {
			Piconets:  HomogeneousPiconets(2, 1, WithR1PageScan()),
			Traffic:   []Traffic{BulkTraffic(AllPiconets)},
			Placement: DiscPlacement(30, 8),
		},
	}
}

// buildAndMeasure builds the spec at the seed, runs a short window and
// returns the Metrics JSON — the full observable output of a world.
func buildAndMeasure(t *testing.T, spec Spec, seed uint64, slots uint64) []byte {
	t.Helper()
	s := core.NewSimulation(core.Options{Seed: seed})
	w, err := Build(s, spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Start()
	w.ResetMetrics()
	s.RunSlots(slots)
	out, err := json.Marshal(w.Metrics())
	if err != nil {
		t.Fatalf("marshaling metrics: %v", err)
	}
	return out
}

// strictUnmarshal decodes with unknown fields rejected, the posture of
// every wire entry point (the service API and btsim -spec).
func strictUnmarshal(data []byte, spec *Spec) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(spec)
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for name, spec := range roundTripCases() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			enc, err := json.Marshal(spec)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			var back Spec
			if err := strictUnmarshal(enc, &back); err != nil {
				t.Fatalf("Unmarshal of own output: %v\n%s", err, enc)
			}
			c1, err := spec.Canonical()
			if err != nil {
				t.Fatalf("Canonical: %v", err)
			}
			c2, err := back.Canonical()
			if err != nil {
				t.Fatalf("Canonical after round trip: %v", err)
			}
			if !bytes.Equal(c1, c2) {
				t.Fatalf("canonical form changed across the round trip:\n  before: %s\n  after:  %s", c1, c2)
			}
			// The real contract: both sides build the same world.
			m1 := buildAndMeasure(t, spec, 7, 600)
			m2 := buildAndMeasure(t, back, 7, 600)
			if !bytes.Equal(m1, m2) {
				t.Fatalf("metrics diverged across the round trip:\n  before: %s\n  after:  %s", m1, m2)
			}
			// And the resolved form round-trips to itself (defaults are
			// stable under re-resolution).
			r1, err := spec.Resolved().Canonical()
			if err != nil {
				t.Fatalf("Canonical of resolved: %v", err)
			}
			if !bytes.Equal(c1, r1) {
				t.Fatalf("Canonical not idempotent:\n  once:  %s\n  twice: %s", c1, r1)
			}
		})
	}
}

func TestSpecHashDistinguishesSpecs(t *testing.T) {
	a := Spec{Piconets: []Piconet{{Slaves: 1}}}
	b := Spec{Piconets: []Piconet{{Slaves: 2}}}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatalf("distinct specs hash identically: %s", ha)
	}
	// A terse spec and its resolved form are the same world, so they
	// must share a hash — that is what makes the service cache sound.
	hr, err := a.Resolved().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hr {
		t.Fatalf("terse %s != resolved %s", ha, hr)
	}
}

func TestSpecUnknownEnumRefusesToMarshal(t *testing.T) {
	spec := Spec{
		Piconets: []Piconet{{Slaves: 1}},
		Traffic:  []Traffic{{Kind: TrafficKind(99), Piconet: 0}},
	}
	if _, err := json.Marshal(spec); err == nil {
		t.Fatal("unnamed enum value marshaled; the wire would carry an unparseable spec")
	}
	var k TrafficKind
	if err := k.UnmarshalText([]byte("warp")); err == nil {
		t.Fatal("unknown enum name parsed")
	}
}

// FuzzSpecJSONRoundTrip is the wire format's contract check: any JSON
// input either fails to decode, validates into a *StanzaError (and
// Build refuses it the same way), or is a valid spec whose
// Marshal→Unmarshal→Build reproduces the original world's metrics byte
// for byte. Nothing panics.
func FuzzSpecJSONRoundTrip(f *testing.F) {
	for _, spec := range roundTripCases() {
		enc, err := json.Marshal(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	// Invalid shapes: no piconets, too many members, bad enum, bad
	// band, duplicate names.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"piconets":[{"slaves":9}]}`))
	f.Add([]byte(`{"piconets":[{"slaves":1}],"traffic":[{"kind":"warp"}]}`))
	f.Add([]byte(`{"piconets":[{"slaves":1}],"jammers":[{"lo":70,"hi":200,"duty":0.5}]}`))
	f.Add([]byte(`{"piconets":[{"name":"a","slaves":1},{"name":"a","slaves":1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if json.Unmarshal(data, &spec) != nil {
			return // not a Spec at all
		}
		if err := spec.Validate(); err != nil {
			var se *StanzaError
			if !errors.As(err, &se) {
				t.Fatalf("Validate returned %T, want *StanzaError: %v", err, err)
			}
			if _, berr := Build(core.NewSimulation(core.Options{Seed: 1}), spec); berr == nil {
				t.Fatalf("Validate rejected the spec but Build accepted it: %v", err)
			}
			return
		}
		// Bound the fuzz budget: building a world pages every link on
		// the air, so cap the device count rather than the input size.
		devices := len(spec.Bridges)
		for i := range spec.Piconets {
			devices += spec.Piconets[i].Slaves + 1
		}
		if len(spec.Piconets) > 4 || devices > 10 {
			t.Skip("world too large for the fuzz budget")
		}
		// Bound traffic intensity the same way: a poisson pump with a
		// nanoslot mean gap or a gigabyte burst is a valid world that
		// simply costs more than a fuzz iteration can afford.
		for i := range spec.Traffic {
			tr := &spec.Traffic[i]
			if tr.Kind == TrafficPoisson && tr.MeanGapSlots < 1 {
				t.Skip("sub-slot poisson gap too hot for the fuzz budget")
			}
			if tr.BurstBytes > 1<<16 || tr.SDUBytes > 1<<16 || tr.PumpDepth > 64 {
				t.Skip("traffic volume too large for the fuzz budget")
			}
		}

		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec refused to marshal: %v", err)
		}
		var back Spec
		if err := strictUnmarshal(enc, &back); err != nil {
			t.Fatalf("wire output failed strict decode: %v\n%s", err, enc)
		}
		c1, err := spec.Canonical()
		if err != nil {
			t.Fatalf("Canonical: %v", err)
		}
		c2, err := back.Canonical()
		if err != nil {
			t.Fatalf("Canonical after round trip: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical form changed across the round trip:\n  before: %s\n  after:  %s", c1, c2)
		}

		run := func(sp Spec) ([]byte, error) {
			s := core.NewSimulation(core.Options{Seed: 11})
			w, err := Build(s, sp)
			if err != nil {
				return nil, err
			}
			w.Start()
			w.ResetMetrics()
			s.RunSlots(400)
			return json.Marshal(w.Metrics())
		}
		m1, err1 := run(spec)
		m2, err2 := run(back)
		switch {
		case err1 != nil || err2 != nil:
			// Build-time failures (a random layout putting a bridge out
			// of reach) are legal — but both sides of the wire must fail
			// identically.
			if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
				t.Fatalf("Build diverged across the round trip:\n  before: %v\n  after:  %v", err1, err2)
			}
		case !bytes.Equal(m1, m2):
			t.Fatalf("metrics diverged across the round trip:\n  before: %s\n  after:  %s", m1, m2)
		}
	})
}
