package netspec

import (
	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/hop"
	"repro/internal/stats"
)

// OccupancySummary describes a time-weighted queue gauge over the
// measurement window.
type OccupancySummary struct {
	// Mean is the time-weighted mean depth.
	Mean float64 `json:"mean"`
	// Max is the absolute maximum depth observed.
	Max int `json:"max"`
}

// VoiceMetrics reports one SCO stream's window.
type VoiceMetrics struct {
	// Piconet and Slave (1-based) locate the stream.
	Piconet int `json:"piconet"`
	Slave   int `json:"slave"`
	// TxFrames and RxFrames count sent and arrived voice frames.
	TxFrames int `json:"tx_frames"`
	RxFrames int `json:"rx_frames"`
	// BitPerfect counts frames that arrived without any residual error
	// (the audio-quality proxy).
	BitPerfect int `json:"bit_perfect"`
}

// FlowMetrics reports one end-to-end flow's window.
type FlowMetrics struct {
	// From and To name the endpoints.
	From string `json:"from"`
	To   string `json:"to"`
	// SentBytes and DeliveredBytes count SDU payload.
	SentBytes      int `json:"sent_bytes"`
	DeliveredBytes int `json:"delivered_bytes"`
	// Latency samples end-to-end delivery latency in slots.
	Latency stats.Sample `json:"latency"`
}

// ProbeMetrics is one probe's sampled result.
type ProbeMetrics struct {
	// Tx and Rx sample RF-activity fractions over the probe's devices
	// (activity probes).
	Tx stats.Sample `json:"tx"`
	Rx stats.Sample `json:"rx"`
	// PerFreq is the window's per-RF-channel stats delta (per-frequency
	// probes).
	PerFreq []channel.FreqCount `json:"per_freq,omitempty"`
}

// Metrics is the unified result surface of a built world: one read
// covers goodput, latency samples, per-frequency channel stats and
// queue occupancy, whatever mix of stanzas produced them. Windows open
// at ResetMetrics and read (without closing) at Metrics.
type Metrics struct {
	// Slots is the measurement window length.
	Slots uint64 `json:"slots"`

	// Bytes is the payload total delivered on single-hop ACL links
	// (bulk and poisson traffic); PerPiconet breaks it down in build
	// order.
	Bytes      int   `json:"bytes"`
	PerPiconet []int `json:"per_piconet,omitempty"`
	// Retransmits sums the masters' ARQ retransmissions.
	Retransmits int `json:"retransmits"`
	// Inter and Intra are the attributed collision-pair counts.
	Inter int `json:"inter_collisions"`
	Intra int `json:"intra_collisions"`
	// MapUpdates sums adaptive channel-map installs over the world's
	// whole lifetime — unlike the window counters it is NOT zeroed by
	// ResetMetrics, so convergence stays visible across windows.
	MapUpdates int `json:"map_updates"`

	// EndToEndBytes is the SDU payload delivered at flow destinations;
	// E2ELatency samples its delivery latency in slots.
	EndToEndBytes int          `json:"end_to_end_bytes"`
	E2ELatency    stats.Sample `json:"e2e_latency"`
	// Flows breaks the end-to-end accounting down per flow.
	Flows []FlowMetrics `json:"flows,omitempty"`

	// ForwardedFrames and DroppedFrames count the bridges' relay work;
	// FwdLatency samples store-and-forward latency in slots.
	ForwardedFrames int          `json:"forwarded_frames"`
	DroppedFrames   int          `json:"dropped_frames"`
	FwdLatency      stats.Sample `json:"fwd_latency"`
	// Queue describes the pooled bridge backlog.
	Queue OccupancySummary `json:"queue"`
	// MembershipSwitches counts bridge radio retunes.
	MembershipSwitches int `json:"membership_switches"`
	// RouteMisses counts undeliverable frames (0 in a healthy net).
	RouteMisses int `json:"route_misses"`

	// Voice reports every SCO stream.
	Voice []VoiceMetrics `json:"voice,omitempty"`

	// PerFreq is the per-RF-channel stats delta over the window.
	PerFreq []channel.FreqCount `json:"per_freq,omitempty"`

	// Probes holds the named probe results.
	Probes map[string]ProbeMetrics `json:"probes,omitempty"`
}

// GoodputKbps is the window's total delivered payload — single-hop and
// end-to-end — as kbit/s.
func (m *Metrics) GoodputKbps() float64 {
	return GoodputKbps(m.Bytes+m.EndToEndBytes, m.Slots)
}

// PiconetGoodputKbps is piconet i's single-hop goodput as kbit/s.
func (m *Metrics) PiconetGoodputKbps(i int) float64 {
	return GoodputKbps(m.PerPiconet[i], m.Slots)
}

// WorstChannel returns the RF channel with the most collisions this
// window and its count (-1 if the air stayed clean).
func (m *Metrics) WorstChannel() (ch, collisions int) {
	best, worst := 0, -1
	for c := range m.PerFreq {
		if m.PerFreq[c].Collisions > best {
			best, worst = m.PerFreq[c].Collisions, c
		}
	}
	return worst, best
}

// GoodputKbps converts a delivered-byte count over a slot horizon into
// kbit/s (one slot = 625 µs).
func GoodputKbps(bytes int, slots uint64) float64 {
	if slots == 0 {
		return 0
	}
	return float64(bytes) * 8 / 1000 / (float64(slots) * 625e-6)
}

// ResetMetrics opens a fresh measurement window: delivery and latency
// accounting, collision attribution, bridge queue statistics and every
// device's protocol counters and RF-activity meters restart, and the
// per-frequency channel counters are snapshotted. Queued bridge frames
// stay queued — the backlog is state, not statistics — and the fresh
// queue gauge is seeded with the current depth. MapUpdates is lifetime
// and deliberately survives the reset.
func (w *World) ResetMetrics() {
	w.InterCollisions = 0
	w.IntraCollisions = 0
	w.DeliveredBytes = 0
	w.RouteMisses = 0
	w.E2ELatency = stats.Sample{}
	for _, f := range w.Flows {
		f.SentBytes, f.DeliveredBytes = 0, 0
		f.Latency = stats.Sample{}
	}
	now := w.Sim.Now()
	for _, b := range w.Bridges {
		b.QueueDepth = stats.Occupancy{}
		b.QueueDepth.Observe(b.depth(), now)
		b.FwdLatency = stats.Sample{}
		b.Forwarded = 0
		b.Dropped = 0
		b.Dev.Counters = baseband.Counters{}
		core.ResetMeters(b.Dev)
	}
	for _, p := range w.Piconets {
		for j := range p.Received {
			p.Received[j] = 0
		}
		p.Master.Counters = baseband.Counters{}
		core.ResetMeters(p.Master)
		for _, sl := range p.Slaves {
			sl.Counters = baseband.Counters{}
			core.ResetMeters(sl)
		}
	}
	for _, v := range w.Voices {
		v.baseTx = v.MasterSCO.TxFrames
		v.baseRx = v.SlaveSCO.RxFrames
		v.basePerfect = v.perfect
	}
	w.chBase = w.Sim.Ch.Stats()
	w.resetAt = now
}

// Metrics reads the current window without closing it.
func (w *World) Metrics() Metrics {
	now := w.Sim.Now()
	m := Metrics{
		Slots:         now - w.resetAt,
		Inter:         w.InterCollisions,
		Intra:         w.IntraCollisions,
		EndToEndBytes: w.DeliveredBytes,
		RouteMisses:   w.RouteMisses,
		PerFreq:       w.perFreqDelta(),
	}
	m.E2ELatency.Merge(&w.E2ELatency)
	for _, p := range w.Piconets {
		sum := 0
		for _, r := range p.Received {
			sum += r
		}
		m.PerPiconet = append(m.PerPiconet, sum)
		m.Bytes += sum
		m.Retransmits += p.Master.Counters.Retransmits
		m.MapUpdates += p.MapUpdates
	}
	for _, f := range w.Flows {
		fm := FlowMetrics{
			From: f.From, To: f.To,
			SentBytes: f.SentBytes, DeliveredBytes: f.DeliveredBytes,
		}
		fm.Latency.Merge(&f.Latency)
		m.Flows = append(m.Flows, fm)
	}
	var q stats.Occupancy
	for _, b := range w.Bridges {
		m.ForwardedFrames += b.Forwarded
		m.DroppedFrames += b.Dropped
		m.MembershipSwitches += b.Dev.Counters.MembershipSwitches
		qc := b.QueueDepth // copy; Finish must not disturb the live gauge
		qc.Finish(now)
		q.Merge(&qc)
		m.FwdLatency.Merge(&b.FwdLatency)
	}
	m.Queue = OccupancySummary{Mean: q.Mean(), Max: q.Max}
	for _, v := range w.Voices {
		m.Voice = append(m.Voice, VoiceMetrics{
			Piconet: v.Piconet, Slave: v.Slave,
			TxFrames: v.TxFrames(), RxFrames: v.RxFrames(), BitPerfect: v.BitPerfect(),
		})
	}
	if len(w.spec.Probes) > 0 {
		m.Probes = make(map[string]ProbeMetrics, len(w.spec.Probes))
		for i := range w.spec.Probes {
			p := &w.spec.Probes[i]
			m.Probes[p.Name] = w.probe(p, m.PerFreq)
		}
	}
	return m
}

// perFreqDelta is the per-RF-channel stats change since ResetMetrics.
func (w *World) perFreqDelta() []channel.FreqCount {
	cur := w.Sim.Ch.Stats()
	out := make([]channel.FreqCount, hop.NumChannels)
	for ch := range out {
		a, b := cur.PerFreq[ch], w.chBase.PerFreq[ch]
		out[ch] = channel.FreqCount{
			Transmissions: a.Transmissions - b.Transmissions,
			Deliveries:    a.Deliveries - b.Deliveries,
			Collisions:    a.Collisions - b.Collisions,
			Jammed:        a.Jammed - b.Jammed,
		}
	}
	return out
}

// probe evaluates one probe stanza.
func (w *World) probe(p *Probe, perFreq []channel.FreqCount) ProbeMetrics {
	var pm ProbeMetrics
	switch p.Kind {
	case ProbePerFreq:
		pm.PerFreq = perFreq
	case ProbeBridgeActivity:
		for _, b := range w.Bridges {
			tx, rx := core.Activity(b.Dev)
			pm.Tx.Add(tx)
			pm.Rx.Add(rx)
		}
	case ProbeSlaveActivity, ProbeMasterActivity:
		for _, pc := range w.Piconets {
			if p.Piconet != AllPiconets && p.Piconet != pc.Index {
				continue
			}
			if p.Kind == ProbeMasterActivity {
				tx, rx := core.Activity(pc.Master)
				pm.Tx.Add(tx)
				pm.Rx.Add(rx)
				continue
			}
			for _, sl := range pc.Slaves {
				tx, rx := core.Activity(sl)
				pm.Tx.Add(tx)
				pm.Rx.Add(rx)
			}
		}
	}
	return pm
}
