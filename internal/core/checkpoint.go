package core

import (
	"fmt"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/sim"
)

// Checkpoint/restore for the core façade: a warmed-up world is captured
// once at a quiescent slot edge and any number of replicas or what-if
// arms fork from the capture, skipping the settle phase entirely.
//
// The contract is exactness: a restored world with ForkSeed 0 produces
// the byte-identical event sequence a straight run would have from the
// snapshot instant onward. Three properties make this possible:
//
//  1. Quiescence. Snapshot runs only when no transmission is in flight,
//     every device sits in STANDBY or CONNECTION with nothing mid-air
//     or mid-handshake, and (via SnapshotConfig.Quiescent) no upper
//     layer has a transaction open. Everything that remains is plain
//     state plus pending timers.
//
//  2. Re-arm ordering. Every pending event's (at, seq) position is
//     captured; restore re-arms them through one sim.RearmSet, which
//     replays the arms in ascending captured (at, seq) order on the
//     fresh kernel. Fresh sequence numbers are assigned monotonically,
//     so every relative ordering — among re-armed events and against
//     anything scheduled later — is preserved (see sim/checkpoint.go).
//
//  3. Stream positions. Every RNG's exact position is serialized, and
//     ForkState either resumes it (ForkSeed 0) or perturbs every stream
//     of the arm uniformly, making forks diverge by seed.

// DeviceEntry pairs a device name with its captured state, in creation
// order.
type DeviceEntry struct {
	Name  string
	State *baseband.DeviceCheckpoint
}

// Checkpoint is a full capture of a Simulation at a quiescent instant.
// Upper layers (netspec worlds, traffic pumps) wrap it with their own
// state; this layer owns the kernel clock, RNG streams, devices and the
// quiet-watcher subscription order.
type Checkpoint struct {
	At      sim.Time
	Seed    uint64
	Shards  int
	RootRNG uint64
	ChanRNG uint64
	Devices []DeviceEntry
	// QuietWatch lists the devices subscribed to quiet-horizon
	// notifications, in subscription order. Watcher callbacks schedule
	// events, so the notification fan-out order is part of the event
	// order and must survive the round trip.
	QuietWatch []string
}

// SnapshotConfig tunes a capture.
type SnapshotConfig struct {
	// ExtraLinks lists, per device name, detached links that must ride
	// the device's capture (a scatternet bridge's suspended
	// memberships).
	ExtraLinks map[string][]*baseband.Link
	// Quiescent, when non-nil, adds an upper-layer quiescence predicate
	// (e.g. "no LMP transaction open") to the probe.
	Quiescent func() bool
	// MaxProbeSlots bounds how far Snapshot may run the world forward
	// looking for a quiescent slot edge (default 4096).
	MaxProbeSlots uint64
}

// RestoreOptions tunes a restore.
type RestoreOptions struct {
	// ForkSeed perturbs every RNG stream of the restored arm; zero
	// resumes the captured streams exactly (see sim.ForkState).
	ForkSeed uint64
	// Tracer, when non-nil, is attached to the kernel before device
	// construction, so restored signals declare themselves in creation
	// order exactly like a straight traced run.
	Tracer sim.Tracer
	// Rearm, when non-nil, collects timer re-arms instead of executing
	// them: upper layers add their own pending events to the shared set
	// and execute it once, preserving the global captured order. When
	// nil, Restore executes the core re-arms itself.
	Rearm *sim.RearmSet
}

// quiescentBlocker names what blocks a core-level capture right now, or
// returns "".
func (s *Simulation) quiescentBlocker() string {
	if n := s.Ch.InFlight(); n != 0 {
		return fmt.Sprintf("%d transmissions in flight", n)
	}
	for _, name := range s.order {
		if !s.devices[name].Quiescent() {
			return name + " not quiescent"
		}
	}
	return ""
}

// Quiescent reports whether the world is capturable at this instant.
func (s *Simulation) Quiescent() bool { return s.quiescentBlocker() == "" }

// Snapshot captures the world at the nearest quiescent slot edge,
// probing forward slot by slot if the current instant is busy.
func (s *Simulation) Snapshot() (*Checkpoint, error) {
	return s.SnapshotCfg(SnapshotConfig{})
}

// SnapshotCfg is Snapshot with explicit extra links and an upper-layer
// quiescence predicate.
func (s *Simulation) SnapshotCfg(cfg SnapshotConfig) (*Checkpoint, error) {
	if s.trace != nil {
		return nil, fmt.Errorf("core: cannot snapshot a VCD-traced world")
	}
	max := cfg.MaxProbeSlots
	if max == 0 {
		max = 4096
	}
	for probed := uint64(0); ; probed++ {
		blocker := s.quiescentBlocker()
		if blocker == "" && (cfg.Quiescent == nil || cfg.Quiescent()) {
			break
		}
		if blocker == "" {
			blocker = "upper layer busy"
		}
		if probed >= max {
			return nil, fmt.Errorf("core: no quiescent edge within %d slots: %s", max, blocker)
		}
		s.RunSlots(1)
	}
	ck := &Checkpoint{
		At:      s.K.Now(),
		Seed:    s.seed,
		Shards:  s.K.Shards(),
		RootRNG: s.rng.State(),
		ChanRNG: s.Ch.RNGState(),
	}
	for _, name := range s.order {
		dc, err := s.devices[name].Checkpoint(cfg.ExtraLinks[name])
		if err != nil {
			return nil, err
		}
		ck.Devices = append(ck.Devices, DeviceEntry{Name: name, State: dc})
	}
	for _, w := range s.Ch.QuietWatchers() {
		if d, ok := w.(*baseband.Device); ok {
			ck.QuietWatch = append(ck.QuietWatch, d.Name())
		}
	}
	return ck, nil
}

// Restore imposes ck on a freshly built Simulation (same Options; for a
// spatial world, EnableSpatial and Place must already have run). It
// returns each device's restored links in capture order, keyed by
// device name, so upper layers can re-attach their per-link state.
func (s *Simulation) Restore(ck *Checkpoint, opt RestoreOptions) (map[string][]*baseband.Link, error) {
	if len(s.order) != 0 || s.K.Now() != 0 {
		return nil, fmt.Errorf("core: restore target is not a fresh world")
	}
	if s.trace != nil {
		return nil, fmt.Errorf("core: cannot restore into a VCD-traced world")
	}
	if got := s.K.Shards(); got != ck.Shards {
		return nil, fmt.Errorf("core: checkpoint was taken with %d shards, world has %d", ck.Shards, got)
	}
	if opt.Tracer != nil {
		s.K.AddTracer(opt.Tracer)
	}
	set := opt.Rearm
	if set == nil {
		set = &sim.RearmSet{}
	}
	// Jump the clock first: the kernel queue is empty, so RunUntil lands
	// exactly on the snapshot instant, and every construction-time trace
	// record carries t == ck.At (a restore artifact, filtered by the
	// equivalence harness).
	s.K.RunUntil(ck.At)
	links := make(map[string][]*baseband.Link, len(ck.Devices))
	for _, e := range ck.Devices {
		d := s.addDevice(e.Name, e.State.Config)
		ls, err := d.RestoreCheckpoint(e.State, opt.ForkSeed, set)
		if err != nil {
			return nil, err
		}
		links[e.Name] = ls
	}
	s.rng.SetState(sim.ForkState(ck.RootRNG, opt.ForkSeed))
	s.Ch.SetRNGState(sim.ForkState(ck.ChanRNG, opt.ForkSeed))
	// Re-subscribe quiet watchers in the captured order — the horizon
	// watcher of a sharded world was re-added by NewSimulation and
	// always precedes every device subscription.
	for _, name := range ck.QuietWatch {
		d := s.devices[name]
		if d == nil {
			return nil, fmt.Errorf("core: quiet watcher %q not among restored devices", name)
		}
		s.Ch.WatchQuiet(d)
	}
	if opt.Rearm == nil {
		set.Execute()
	}
	return links, nil
}

// compile-time: a device satisfies the watcher interface we re-key by.
var _ channel.QuietWatcher = (*baseband.Device)(nil)
