// Package core is the public façade of the Bluetooth system-level model:
// it assembles the simulation kernel, the noisy channel and any number of
// devices into one Simulation value, and offers scenario helpers for the
// piconet workloads the paper studies (creation under noise, low-power
// modes). Examples, commands and benchmarks all build on this package.
package core

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/baseband"
	"repro/internal/channel"
	"repro/internal/hci"
	"repro/internal/sim"
	"repro/internal/vcd"
)

// Options configures a Simulation.
type Options struct {
	// Seed drives every random stream (channel noise, backoff draws,
	// clock phases). The same seed reproduces a run bit for bit.
	Seed uint64
	// BER is the channel bit error rate (paper sweeps 0 .. 1/30).
	BER float64
	// DelayUS is the modulator/demodulator delay in microseconds.
	DelayUS int
	// TraceTo, when non-nil, receives a VCD dump of every device's
	// enable_tx_RF / enable_rx_RF / state signals (paper Figs 5 and 9).
	TraceTo io.Writer
	// Shards partitions the kernel's event queue for conservative
	// sharded execution (see sim.NewKernelShards). 0 takes the process
	// default (SetDefaultShards, itself defaulting to 1 = serial).
	// Output is byte-identical for every value — the shard-equivalence
	// suite pins this — so the knob is purely about multicore queue
	// maintenance.
	Shards int
}

// defaultShards is the process-wide Options.Shards fallback, settable
// from flags exactly like runner.SetDefaultWorkers.
var defaultShards atomic.Int64

// SetDefaultShards sets the kernel shard count used when Options.Shards
// is zero. Values below 1 reset to 1 (serial).
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards.Store(int64(n))
}

// DefaultShards reports the current process-wide default shard count.
func DefaultShards() int {
	if v := defaultShards.Load(); v > 1 {
		return int(v)
	}
	return 1
}

// Simulation owns one simulated radio world.
type Simulation struct {
	K       *sim.Kernel
	Ch      *channel.Channel
	seed    uint64
	rng     *sim.Rand
	trace   *vcd.Writer
	devices map[string]*baseband.Device
	order   []string
	shardOf map[string]int // round-robin device→shard (sharded kernels only)
}

// NewSimulation builds an empty world.
func NewSimulation(opt Options) *Simulation {
	shards := opt.Shards
	if shards == 0 {
		shards = DefaultShards()
	}
	if shards < 1 {
		shards = 1
	}
	k := sim.NewKernelShards(shards)
	s := &Simulation{
		K:       k,
		seed:    opt.Seed,
		rng:     sim.NewRand(opt.Seed),
		devices: make(map[string]*baseband.Device),
	}
	if opt.TraceTo != nil {
		s.trace = vcd.New(opt.TraceTo)
		k.AddTracer(s.trace)
	}
	s.Ch = channel.New(k, s.rng.Split(), channel.Config{
		BER:   opt.BER,
		Delay: sim.Microseconds(uint64(opt.DelayUS)),
	})
	if shards > 1 {
		s.shardOf = make(map[string]int)
		// The medium is the only cross-shard coupling: its quiet horizon
		// bounds shard windows, delivery events run on the transmitter's
		// shard, and a revoked quiet promise retracts the open window.
		k.SetCouplingHorizon(s.Ch.QuietUntil)
		s.Ch.SetShardRouter(s.ShardOf)
		s.Ch.WatchQuiet(horizonWatcher{s})
	}
	return s
}

// ShardOf maps a device name to its kernel shard: the spatial cell's
// shard when the medium is spatial (radios in one cell share medium
// locality and therefore a shard), else the round-robin shard assigned
// at AddDevice. -1 (inherit current affinity) for unknown names or a
// serial kernel.
func (s *Simulation) ShardOf(name string) int {
	if s.shardOf == nil {
		return -1
	}
	if cell := s.Ch.CellShard(name, s.K.Shards()); cell >= 0 {
		return cell
	}
	if sh, ok := s.shardOf[name]; ok {
		return sh
	}
	return -1
}

// horizonWatcher retracts the kernel's open shard window when a quiet
// promise shrinks: the medium may couple shards earlier than the window
// assumed, so the next window re-reads the horizon at the coupling
// point. Ordering is safe either way (the kernel always fires the
// merged global minimum); retraction keeps window accounting aligned
// with real coupling.
type horizonWatcher struct{ s *Simulation }

func (w horizonWatcher) QuietHorizonShrunk() {
	w.s.K.RetractWindow(w.s.Ch.QuietUntil())
}

// AddDevice creates a device with a derived random clock phase and seed.
// Config fields left zero take calibrated defaults.
func (s *Simulation) AddDevice(name string, cfg baseband.Config) *baseband.Device {
	if cfg.ClockPhase == 0 {
		cfg.ClockPhase = uint32(s.rng.Uint64()) & 0x0FFFFFFF
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.rng.Uint64()
	}
	return s.addDevice(name, cfg)
}

// addDevice constructs the device without touching the root RNG: restore
// paths record the fully drawn Config in the checkpoint and must not
// perturb (or depend on) the stream when rebuilding, even in the
// astronomically unlikely case a recorded draw was itself zero.
func (s *Simulation) addDevice(name string, cfg baseband.Config) *baseband.Device {
	if _, dup := s.devices[name]; dup {
		panic(fmt.Sprintf("core: duplicate device %q", name))
	}
	if s.trace != nil && s.K.Now() > 0 {
		panic("core: with tracing enabled, add all devices before running")
	}
	if s.shardOf != nil {
		// Deterministic round-robin home shard (overridden by the
		// spatial cell in ShardOf once the device is placed). Setting
		// the affinity here puts the device's construction-time event
		// chain on its shard; nothing about firing order changes.
		sh := len(s.order) % s.K.Shards()
		s.shardOf[name] = sh
		s.K.SetAffinity(sh)
	}
	d := baseband.New(s.K, s.Ch, name, cfg)
	s.devices[name] = d
	s.order = append(s.order, name)
	return d
}

// AddController is AddDevice plus an HCI front end.
func (s *Simulation) AddController(name string, cfg baseband.Config) *hci.Controller {
	return hci.Attach(s.AddDevice(name, cfg))
}

// Device returns a device by name (nil if absent).
func (s *Simulation) Device(name string) *baseband.Device { return s.devices[name] }

// Devices returns devices in creation order.
func (s *Simulation) Devices() []*baseband.Device {
	out := make([]*baseband.Device, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.devices[n])
	}
	return out
}

// SplitRand derives an independent deterministic RNG stream from the
// simulation's root stream (advancing it by one draw). Layers that
// need their own randomness — e.g. poisson traffic sources — split at
// a deterministic point instead of sharing the root, so the world
// stays bit-reproducible.
func (s *Simulation) SplitRand() *sim.Rand { return s.rng.Split() }

// DerivedRand returns a deterministic RNG stream keyed by (seed, tag)
// WITHOUT advancing the root stream. Use it for optional layers —
// e.g. netspec placement — whose randomness must not perturb the
// device seeds and clock phases of a world built without them: the
// same Options.Seed then reproduces the exact same base world whether
// or not the optional layer draws. (SplitRand, by contrast, advances
// the root by one draw and is right for always-on consumers.)
func (s *Simulation) DerivedRand(tag string) *sim.Rand {
	// FNV-1a over the tag, folded into the golden-ratio-scrambled seed.
	h := uint64(14695981039346656037)
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return sim.NewRand(h ^ (s.seed+1)*0x9E3779B97F4A7C15)
}

// RunSlots advances the simulation by n slots.
func (s *Simulation) RunSlots(n uint64) {
	s.K.RunUntil(s.K.Now() + sim.Time(sim.Slots(n)))
}

// Now returns the current simulation time in slots.
func (s *Simulation) Now() uint64 { return s.K.Now().Slot() }

// Close flushes the VCD trace (if any).
func (s *Simulation) Close() error {
	if s.trace != nil {
		return s.trace.Close()
	}
	return nil
}

// CreationOutcome reports one piconet-creation attempt (Fig 8 trial).
type CreationOutcome struct {
	InquiryOK    bool
	InquirySlots uint64
	PageOK       bool
	PageSlots    uint64
}

// Created reports whether both phases succeeded.
func (o CreationOutcome) Created() bool { return o.InquiryOK && o.PageOK }

// RunCreation performs a full inquiry-then-page piconet creation between
// master and slave with the paper's timeout discipline (both phases
// bounded by timeoutSlots, the paper's 1.28 s = 2048 slots), and runs
// the kernel until the outcome is decided.
func (s *Simulation) RunCreation(master, slave *baseband.Device, timeoutSlots int) CreationOutcome {
	var out CreationOutcome
	decided := false
	slave.StartInquiryScan()
	master.StartInquiry(timeoutSlots, 1, func(rs []baseband.InquiryResult, ok bool) {
		out.InquiryOK = ok
		out.InquirySlots = master.InquirySlots()
		if !ok {
			decided = true
			return
		}
		slave.StartPageScan()
		master.StartPage(rs[0].Addr, master.EstimateOf(rs[0], 0), timeoutSlots, func(l *baseband.Link, ok bool) {
			out.PageOK = ok
			out.PageSlots = master.PageSlots()
			decided = true
		})
	})
	// Bound the wait: inquiry + page + slack.
	limit := s.K.Now() + sim.Time(sim.Slots(uint64(timeoutSlots)*2+256))
	for !decided && s.K.Now() < limit {
		s.K.RunUntil(s.K.Now() + sim.Time(sim.Slots(16)))
	}
	return out
}

// RunPageOnly performs just the page phase with a perfect clock estimate
// (the paper's Fig 7 setup: devices already synchronised by inquiry).
func (s *Simulation) RunPageOnly(master, slave *baseband.Device, timeoutSlots int) (ok bool, slots uint64) {
	decided := false
	slave.StartPageScan()
	est := master.EstimateOf(baseband.InquiryResult{
		CLKN: slave.Clock.CLKN(s.K.Now()) &^ 3, // FHS-truncated, as inquiry would report
		At:   s.K.Now(),
	}, 0)
	master.StartPage(slave.Addr(), est, timeoutSlots, func(l *baseband.Link, o bool) {
		ok = o
		slots = master.PageSlots()
		decided = true
	})
	limit := s.K.Now() + sim.Time(sim.Slots(uint64(timeoutSlots)+256))
	for !decided && s.K.Now() < limit {
		s.K.RunUntil(s.K.Now() + sim.Time(sim.Slots(16)))
	}
	return ok, slots
}

// BuildPiconet connects the named slaves to the master sequentially
// using direct paging with exact clock knowledge (the Fig 5/9 scenario:
// "all the devices try to connect at the same time"); it returns the
// master-side links in connection order and panics on failure, which
// cannot happen at BER 0 with sane timeouts.
func (s *Simulation) BuildPiconet(master *baseband.Device, slaves ...*baseband.Device) []*baseband.Link {
	links := make([]*baseband.Link, 0, len(slaves))
	idx := 0
	attempts := 0
	const maxAttempts = 10
	var pageNext func()
	pageNext = func() {
		if idx >= len(slaves) {
			return
		}
		sl := slaves[idx]
		// Open the slave's scan window right as its page begins, so the
		// windowed page-scan discipline never leaves the master paging
		// into a closed window.
		sl.StartPageScan()
		est := master.EstimateOf(baseband.InquiryResult{
			CLKN: sl.Clock.CLKN(s.K.Now()),
			At:   s.K.Now(),
		}, 0)
		master.StartPage(sl.Addr(), est, 2048, func(l *baseband.Link, ok bool) {
			if !ok {
				// Noise or interference broke the handshake; retry with a
				// fresh scan window.
				attempts++
				if attempts >= maxAttempts {
					panic(fmt.Sprintf("core: paging %s failed %d times", sl.Name(), attempts))
				}
				pageNext()
				return
			}
			links = append(links, l)
			idx++
			attempts = 0
			pageNext()
		})
	}
	pageNext()
	limit := s.K.Now() + sim.Time(sim.Slots(uint64(2500*maxAttempts*(len(slaves)+1))))
	for len(links) < len(slaves) && s.K.Now() < limit {
		s.K.RunUntil(s.K.Now() + sim.Time(sim.Slots(200)))
	}
	if len(links) != len(slaves) {
		panic(fmt.Sprintf("core: piconet incomplete: %d/%d slaves", len(links), len(slaves)))
	}
	return links
}

// Activity reports a device's RF activity fractions since its meters
// were last reset.
func Activity(d *baseband.Device) (tx, rx float64) {
	return d.TxMeter.Activity(), d.RxMeter.Activity()
}

// ResetMeters restarts the measurement windows of the device's meters.
func ResetMeters(d *baseband.Device) {
	d.TxMeter.Reset()
	d.RxMeter.Reset()
}
