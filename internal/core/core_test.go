package core

import (
	"strings"
	"testing"

	"repro/internal/baseband"
	"repro/internal/packet"
)

func dev(s *Simulation, name string, lap uint32) *baseband.Device {
	return s.AddDevice(name, baseband.Config{Addr: baseband.BDAddr{LAP: lap, UAP: uint8(lap)}})
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		s := NewSimulation(Options{Seed: 99, BER: 1.0 / 80})
		m := dev(s, "m", 0x111111)
		sl := dev(s, "s", 0x222222)
		out := s.RunCreation(m, sl, 2048)
		return out.InquirySlots, out.PageSlots
	}
	i1, p1 := run()
	i2, p2 := run()
	if i1 != i2 || p1 != p2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", i1, p1, i2, p2)
	}
}

func TestSeedsDiffer(t *testing.T) {
	res := map[uint64]bool{}
	for seed := uint64(1); seed <= 5; seed++ {
		s := NewSimulation(Options{Seed: seed})
		m := dev(s, "m", 0x111111)
		sl := dev(s, "s", 0x222222)
		out := s.RunCreation(m, sl, 4096)
		if !out.Created() {
			t.Fatalf("seed %d: noiseless creation failed (inq=%v page=%v)", seed, out.InquiryOK, out.PageOK)
		}
		res[out.InquirySlots] = true
	}
	if len(res) < 2 {
		t.Fatal("inquiry durations identical across seeds; phases not randomised")
	}
}

func TestRunCreationNoiseless(t *testing.T) {
	s := NewSimulation(Options{Seed: 3})
	m := dev(s, "m", 0x515151)
	sl := dev(s, "s", 0x626262)
	out := s.RunCreation(m, sl, 2048)
	if !out.Created() {
		t.Fatalf("creation failed: %+v", out)
	}
	if out.InquirySlots == 0 || out.InquirySlots > 2048 {
		t.Fatalf("inquiry slots = %d", out.InquirySlots)
	}
	if out.PageSlots > 100 {
		t.Fatalf("page slots = %d, want small when synchronised", out.PageSlots)
	}
}

func TestRunPageOnlyFast(t *testing.T) {
	s := NewSimulation(Options{Seed: 4})
	m := dev(s, "m", 0x717171)
	sl := dev(s, "s", 0x828282)
	ok, slots := s.RunPageOnly(m, sl, 2048)
	if !ok {
		t.Fatal("page failed")
	}
	// Paper: ~17 slots noiseless. Our handshake plus train alignment
	// stays in the same few-tens regime.
	if slots > 64 {
		t.Fatalf("page slots = %d, want tens", slots)
	}
}

func TestHighBERKillsPage(t *testing.T) {
	s := NewSimulation(Options{Seed: 5, BER: 1.0 / 15})
	m := dev(s, "m", 0x919191)
	sl := dev(s, "s", 0xA2A2A2)
	ok, _ := s.RunPageOnly(m, sl, 1024)
	if ok {
		t.Fatal("page should be impossible at BER 1/15")
	}
}

func TestBuildPiconetThreeSlaves(t *testing.T) {
	s := NewSimulation(Options{Seed: 6})
	m := dev(s, "master", 0x121212)
	s1 := dev(s, "slave1", 0x232323)
	s2 := dev(s, "slave2", 0x343434)
	s3 := dev(s, "slave3", 0x454545)
	links := s.BuildPiconet(m, s1, s2, s3)
	if len(links) != 3 {
		t.Fatalf("links = %d", len(links))
	}
	if !m.IsMaster() {
		t.Fatal("master flag unset")
	}
	for _, sl := range []*baseband.Device{s1, s2, s3} {
		if sl.MasterLink() == nil {
			t.Fatalf("%s has no master link", sl.Name())
		}
	}
}

func TestVCDTraceWritten(t *testing.T) {
	var sb strings.Builder
	s := NewSimulation(Options{Seed: 7, TraceTo: &sb})
	m := dev(s, "master", 0x616161)
	sl := dev(s, "slave", 0x727272)
	s.BuildPiconet(m, sl)
	s.RunSlots(200)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$var wire 1", "enable_rx_RF", "enable_tx_RF",
		"$scope module master $end", "$scope module slave $end",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q", want)
		}
	}
	if strings.Count(out, "#") < 50 {
		t.Fatal("VCD suspiciously small")
	}
}

func TestActivityHelpers(t *testing.T) {
	s := NewSimulation(Options{Seed: 8})
	m := dev(s, "m", 0x818181)
	sl := dev(s, "s", 0x929292)
	s.BuildPiconet(m, sl)
	ResetMeters(sl)
	s.RunSlots(1000)
	tx, rx := Activity(sl)
	if rx <= 0 {
		t.Fatal("slave RX activity must be positive in active mode")
	}
	if tx < 0 || tx > rx {
		t.Fatalf("odd activity: tx=%v rx=%v", tx, rx)
	}
}

func TestDataThroughCore(t *testing.T) {
	s := NewSimulation(Options{Seed: 9})
	m := dev(s, "m", 0xABAB01)
	sl := dev(s, "s", 0xCDCD02)
	links := s.BuildPiconet(m, sl)
	var got []byte
	sl.OnData = func(l *baseband.Link, p []byte, llid uint8) { got = append(got, p...) }
	links[0].Send([]byte("paper fig workload"), packet.LLIDL2CAPStart)
	s.RunSlots(500)
	if string(got) != "paper fig workload" {
		t.Fatalf("got %q", got)
	}
}

func TestDuplicateDevicePanics(t *testing.T) {
	s := NewSimulation(Options{Seed: 10})
	dev(s, "x", 0x111111)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name must panic")
		}
	}()
	dev(s, "x", 0x222222)
}

func TestAddControllerWorks(t *testing.T) {
	s := NewSimulation(Options{Seed: 11})
	c := s.AddController("hcidev", baseband.Config{Addr: baseband.BDAddr{LAP: 0x424242}})
	if c.Dev().Name() != "hcidev" {
		t.Fatal("controller device wrong")
	}
	if s.Device("hcidev") != c.Dev() {
		t.Fatal("device registry wrong")
	}
	if len(s.Devices()) != 1 {
		t.Fatal("Devices() wrong")
	}
}
