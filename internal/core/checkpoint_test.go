package core

import (
	"fmt"
	"testing"

	"repro/internal/baseband"
	"repro/internal/packet"
)

// fingerprint folds the observable state of every device into a string:
// counters, meter activity, link ARQ positions and data totals.
func fingerprint(s *Simulation) string {
	out := ""
	for _, d := range s.Devices() {
		tx, rx := Activity(d)
		out += fmt.Sprintf("%s %+v tx=%.9f rx=%.9f clkn=%d\n",
			d.Name(), d.Counters, tx, rx, d.Clock.CLKN(s.K.Now()))
		links := d.Links()
		for am := uint8(1); am <= 7; am++ {
			if l := links[am]; l != nil {
				out += fmt.Sprintf("  link %v tx=%d rx=%d\n", l.Peer, l.TxData, l.RxData)
			}
		}
		if l := d.MasterLink(); l != nil {
			out += fmt.Sprintf("  mlink %v tx=%d rx=%d\n", l.Peer, l.TxData, l.RxData)
		}
	}
	return out
}

// buildWorld assembles a noisy two-slave piconet with a deep backlog of
// unprotected DH1 traffic, so bit errors (and the retransmissions they
// cause) keep consuming the channel RNG across the snapshot point.
func buildWorld(shards int) *Simulation {
	s := NewSimulation(Options{Seed: 7, BER: 1.0 / 600, Shards: shards})
	m := s.AddDevice("m", baseband.Config{Addr: baseband.BDAddr{LAP: 0x10, UAP: 1}})
	s1 := s.AddDevice("s1", baseband.Config{Addr: baseband.BDAddr{LAP: 0x21, UAP: 2}})
	s2 := s.AddDevice("s2", baseband.Config{Addr: baseband.BDAddr{LAP: 0x22, UAP: 3}})
	for _, l := range s.BuildPiconet(m, s1, s2) {
		l.PacketType = packet.TypeDH1
		l.Send(make([]byte, 4000), packet.LLIDL2CAPStart)
	}
	return s
}

func TestCheckpointForkEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const settle, rest = 200, 300

			straight := buildWorld(shards)
			straight.RunSlots(settle)
			ckAt := straight.K.Now()

			forked := buildWorld(shards)
			forked.RunSlots(settle)
			ck, err := forked.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			if ck.At != ckAt {
				// The probe may have stepped forward; keep arms aligned.
				straight.K.RunUntil(ck.At)
			}

			restored := NewSimulation(Options{Seed: 7, BER: 1.0 / 600, Shards: shards})
			if _, err := restored.Restore(ck, RestoreOptions{}); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if got, want := restored.K.Now(), ck.At; got != want {
				t.Fatalf("restored clock at %v, want %v", got, want)
			}

			// The measurement protocol: both arms restart their meter
			// windows at the fork point, so activity fractions measure
			// only post-fork behaviour.
			resetAll(straight)
			resetAll(restored)
			straight.RunSlots(rest)
			restored.RunSlots(rest)
			if a, b := fingerprint(straight), fingerprint(restored); a != b {
				t.Errorf("straight and restored runs diverge:\n--- straight\n%s--- restored\n%s", a, b)
			}

			// A second fork from the same bytes stays byte-equal...
			again := NewSimulation(Options{Seed: 7, BER: 1.0 / 600, Shards: shards})
			if _, err := again.Restore(ck, RestoreOptions{}); err != nil {
				t.Fatalf("Restore twice: %v", err)
			}
			resetAll(again)
			again.RunSlots(rest)
			if a, b := fingerprint(restored), fingerprint(again); a != b {
				t.Errorf("two identical forks diverge:\n--- first\n%s--- second\n%s", a, b)
			}

			// ...while a different fork seed diverges under nonzero BER.
			other := NewSimulation(Options{Seed: 7, BER: 1.0 / 600, Shards: shards})
			if _, err := other.Restore(ck, RestoreOptions{ForkSeed: 99}); err != nil {
				t.Fatalf("Restore forked: %v", err)
			}
			resetAll(other)
			other.RunSlots(rest)
			if a, b := fingerprint(restored), fingerprint(other); a == b {
				t.Errorf("fork seed 99 did not diverge from seed 0")
			}
		})
	}
}

func resetAll(s *Simulation) {
	for _, d := range s.Devices() {
		ResetMeters(d)
	}
}

func TestSnapshotRefusesVCDTrace(t *testing.T) {
	s := NewSimulation(Options{Seed: 1, TraceTo: discard{}})
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot of a VCD-traced world should fail")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
