package simd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/netspec"
	"repro/internal/runner"
)

func postJob(t *testing.T, ts *httptest.Server, body string) (int, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var st Status
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding status: %v\n%s", err, data)
		}
	}
	return resp.StatusCode, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: HTTP %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  []byte
}

// streamEvents consumes /v1/jobs/{id}/events until the server closes
// the stream and returns every frame in order.
func streamEvents(t *testing.T, ts *httptest.Server, id string) []sseFrame {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			frames = append(frames, cur)
			cur = sseFrame{}
		}
	}
	return frames
}

func specJSON(t *testing.T) string {
	t.Helper()
	enc, err := json.Marshal(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	return string(enc)
}

func TestServerJobRoundTrip(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial, SnapshotSlots: 512})
	defer e.Close()
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"spec": %s, "seeds": {"first": 1, "count": 3}, "slots": 4096}`, specJSON(t))
	code, st := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", code)
	}

	// The SSE stream must end with an authoritative terminal frame.
	frames := streamEvents(t, ts, st.ID)
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	if frames[0].event != "state" {
		t.Fatalf("first frame %q, want the catch-up state", frames[0].event)
	}
	var final StateEvent
	if err := json.Unmarshal(frames[len(frames)-1].data, &final); err != nil {
		t.Fatalf("terminal frame: %v", err)
	}
	if frames[len(frames)-1].event != "state" || final.State != StateDone {
		t.Fatalf("terminal frame %s %+v, want state/done", frames[len(frames)-1].event, final)
	}

	got := getStatus(t, ts, st.ID)
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("status after stream %+v, want done with result", got)
	}
	if len(got.Result.Points) != 1 || len(got.Result.Points[0].Replicas) != 3 {
		t.Fatalf("result shape %+v, want 1 point x 3 replicas", got.Result)
	}

	// Resubmit: 200 (not 202) and cached.
	code, st2 := postJob(t, ts, body)
	if code != http.StatusOK || !st2.Cached {
		t.Fatalf("resubmit: HTTP %d cached=%v, want 200 cached", code, st2.Cached)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("stats %+v, want hits=1 misses=1", stats.Cache)
	}
	if stats.Jobs[StateDone] != 2 {
		t.Fatalf("stats count %d done jobs, want 2", stats.Jobs[StateDone])
	}
}

func TestServerErrors(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial})
	defer e.Close()
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{`, http.StatusBadRequest},
		{"unknown field", `{"sped": {}}`, http.StatusBadRequest},
		{"no spec", `{"slots": 100}`, http.StatusUnprocessableEntity},
		{"invalid spec", `{"spec": {"piconets": [{"slaves": 9}]}, "slots": 100}`, http.StatusUnprocessableEntity},
	} {
		if code, _ := postJob(t, ts, tc.body); code != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, code, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestServerCancel(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: runner.Serial})
	defer e.Close()
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"spec": %s, "seeds": {"first": 900, "count": 1}, "slots": 5000000}`, specJSON(t))
	code, st := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d, want 202", resp.StatusCode)
	}
	waitFor(t, "cancellation", func() bool { return getStatus(t, ts, st.ID).State == StateCanceled })
}

// TestServerCampaignDeterminism is the service's determinism pin: a
// campaign submitted over HTTP and run on a parallel worker pool
// returns a result byte-identical to the same campaign run in-process
// on the serial reference path. This is the contract that makes the
// result cache — and cross-machine result comparison — sound.
func TestServerCampaignDeterminism(t *testing.T) {
	e := New(Options{MaxJobs: 1, Workers: 4})
	defer e.Close()
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	req := Request{
		Points: []netspec.Spec{
			tinySpec(),
			{
				Piconets:  netspec.HomogeneousPiconets(2, 1),
				Traffic:   []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
				Placement: netspec.GridPlacement(12, 10),
			},
		},
		Seeds:       SeedRange{First: 3, Count: 4},
		Slots:       3000,
		SettleSlots: 64,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, st := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitFor(t, "campaign completion", func() bool { return getStatus(t, ts, st.ID).State == StateDone })

	// Read the result back as raw JSON so no float re-encoding can
	// launder a difference.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var served bytes.Buffer
	if err := json.Compact(&served, raw.Result); err != nil {
		t.Fatal(err)
	}

	ref, err := Run(context.Background(), req, runner.Config{Workers: runner.Serial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), want) {
		t.Fatalf("served campaign diverged from the in-process serial reference:\n  served: %s\n  serial: %s", served.Bytes(), want)
	}
}
