package simd

import (
	"context"
	"testing"

	"repro/internal/netspec"
	"repro/internal/runner"
)

// benchReq is one tiny campaign: a single-slave bulk piconet, one
// seed, a short horizon — the smallest job the service can run, so the
// measured rate is dominated by the engine's per-job machinery plus one
// cheap simulation rather than by the world itself.
func benchReq(seed uint64) Request {
	spec := netspec.Spec{
		Piconets: []netspec.Piconet{{Slaves: 1}},
		Traffic:  []netspec.Traffic{netspec.BulkTraffic(netspec.AllPiconets)},
	}
	return Request{
		Spec:  &spec,
		Seeds: SeedRange{First: seed, Count: 1},
		Slots: 2000,
	}
}

// BenchmarkSimdJobThroughput measures end-to-end jobs per second
// through the engine (submit → run → terminal state): cold with every
// job a distinct campaign that must simulate, warm with every job the
// identical campaign answered from the result cache. The cold/warm gap
// is what the LRU buys a repeated sweep.
func BenchmarkSimdJobThroughput(b *testing.B) {
	bench := func(b *testing.B, req func(i int) Request) {
		e := New(Options{MaxJobs: 1, Workers: runner.Serial, CacheSize: 4})
		defer e.Close()
		// Prime the cache so the warm variant hits from iteration one.
		job, err := e.Submit(req(-1))
		if err != nil {
			b.Fatal(err)
		}
		<-jobDone(job)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := e.Submit(req(i))
			if err != nil {
				b.Fatal(err)
			}
			<-jobDone(job)
			if job.State() != StateDone {
				b.Fatalf("job ended %s", job.State())
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	}
	b.Run("cold", func(b *testing.B) {
		// Every iteration a fresh seed range: guaranteed cache miss.
		bench(b, func(i int) Request { return benchReq(uint64(10_000 + i)) })
	})
	b.Run("warm", func(b *testing.B) {
		// Every iteration the primed campaign: guaranteed cache hit.
		bench(b, func(int) Request { return benchReq(uint64(10_000 - 1)) })
	})
}

// BenchmarkCheckpointFork measures replicas per second on a
// settle-heavy campaign two ways: straight, where every replica
// rebuilds its world and re-pays the full settle horizon, and forked,
// where the settle runs once per campaign and every replica restores
// from the serialized checkpoint. The settle dwarfs the measured
// window by design — that is the workload class the checkpoint-fork
// path exists for — so the replicas/s gap is the feature's headline
// number. Serial workers keep the comparison about simulated work, not
// pool parallelism.
func BenchmarkCheckpointFork(b *testing.B) {
	spec := forkSpec()
	const replicas = 8
	campaign := func(fork bool) Request {
		return Request{
			Spec:        &spec,
			Seeds:       SeedRange{First: 1, Count: replicas},
			Slots:       2000,
			SettleSlots: 20_000,
			Fork:        fork,
		}
	}
	bench := func(b *testing.B, fork bool) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(context.Background(), campaign(fork), runner.Config{Workers: runner.Serial}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*replicas)/b.Elapsed().Seconds(), "replicas/s")
	}
	b.Run("straight", func(b *testing.B) { bench(b, false) })
	b.Run("fork", func(b *testing.B) { bench(b, true) })
}

// jobDone returns a channel that closes when the job goes terminal,
// using the subscription machinery (a terminal job subscribes as an
// already-closed channel, so cache hits cost one channel make).
func jobDone(j *Job) <-chan struct{} {
	done := make(chan struct{})
	ch, _ := j.Subscribe()
	go func() {
		defer close(done)
		for range ch {
		}
		j.Unsubscribe(ch)
	}()
	return done
}
