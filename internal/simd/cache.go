package simd

import "container/list"

// lru is a plain LRU keyed by string, shared by the result cache
// (values are *Result) and the checkpoint cache (values are the
// serialized settle checkpoints of forked campaigns). Values are
// immutable once stored — the engine never mutates a *Result after
// completion and checkpoint bytes are decoded per replica — so hits
// can hand out the shared value without copying. Not goroutine-safe;
// callers serialise access under their own mutex.
type lru[V any] struct {
	cap     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // key -> element whose Value is *lruEntry[V]
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	el, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// put stores the value, evicting the least recently used entry when
// the cache is full. A zero or negative capacity disables caching.
func (c *lru[V]) put(key string, val V) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[V]).key)
	}
	c.entries[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
}

func (c *lru[V]) len() int { return c.order.Len() }
